// Engine-level tests: transactions, persistence, failure injection, and
// the evaluation limits.

#include <gtest/gtest.h>

#include "base/error.h"
#include "core/engine.h"

namespace rel {
namespace {

Value I(int64_t v) { return Value::Int(v); }
Value S(const char* s) { return Value::String(s); }

TEST(Engine, DefinePersistsAcrossQueries) {
  Engine engine;
  engine.Define("def double[x in Nums] : x * 2");
  engine.Insert("Nums", {Tuple({I(1)}), Tuple({I(2)})});
  EXPECT_EQ(engine.Query("def output : double").ToString(),
            "{(1, 2); (2, 4)}");
  // Query-local rules do not persist: `tmp` is unknown (empty) afterwards.
  EXPECT_EQ(engine.Query("def tmp(x) : x = 1\ndef output : tmp").size(), 1u);
  EXPECT_EQ(engine.Query("def output : tmp").size(), 0u);
}

TEST(Engine, QueryDoesNotApplyUpdates) {
  Engine engine;
  engine.Query("def insert(:R, x) : x = 1");
  EXPECT_EQ(engine.Base("R").size(), 0u);
  engine.Exec("def insert(:R, x) : x = 1");
  EXPECT_EQ(engine.Base("R").size(), 1u);
}

TEST(Engine, InsertCreatesRelationOnTheSpot) {
  // Section 3.4: "if ClosedOrders does not exist, it will be created".
  Engine engine;
  TxnResult txn = engine.Exec("def insert(:Fresh, x, y) : x = 1 and y = 2");
  EXPECT_EQ(txn.inserted, 1u);
  EXPECT_TRUE(engine.Base("Fresh").Contains(Tuple({I(1), I(2)})));
}

TEST(Engine, DeleteAndInsertInOneTransaction) {
  Engine engine;
  engine.Insert("R", {Tuple({I(1)}), Tuple({I(2)})});
  TxnResult txn = engine.Exec(
      "def delete(:R, x) : R(x) and x = 1\n"
      "def insert(:R, x) : x = 9");
  EXPECT_EQ(txn.deleted, 1u);
  EXPECT_EQ(txn.inserted, 1u);
  EXPECT_EQ(engine.Base("R").ToString(), "{(2); (9)}");
}

TEST(Engine, UpdatesComputedAgainstPreState) {
  // Both control relations see the snapshot, not each other's effects.
  Engine engine;
  engine.Insert("R", {Tuple({I(1)})});
  engine.Exec("def insert(:R, x) : exists((y) | R(y) and x = y + 1)");
  EXPECT_EQ(engine.Base("R").ToString(), "{(1); (2)}");
}

TEST(Engine, MalformedControlTupleIsError) {
  Engine engine;
  EXPECT_THROW(engine.Exec("def insert(x) : x = 1"), RelError);
  EXPECT_EQ(engine.db().TotalTuples(), 0u);
}

TEST(Engine, ConstraintViolationRollsBackEverything) {
  Engine engine;
  engine.Insert("R", {Tuple({I(5)})});
  engine.Define("ic small(x) requires R(x) implies x < 10");
  EXPECT_THROW(engine.Exec("def insert(:R, x) : x = 50\n"
                           "def delete(:R, x) : R(x) and x = 5"),
               ConstraintViolation);
  // Both the insert and the delete were rolled back.
  EXPECT_EQ(engine.Base("R").ToString(), "{(5)}");
}

TEST(Engine, RollbackDoesNotLeakDemandMemosAcrossTransactions) {
  // Regression guard for the demand-transform evaluation path: the
  // per-(predicate, pattern) demand memos and lowered-extent caches live in
  // the transaction's Interp, so a rolled-back transaction must leave no
  // trace — the next query re-derives everything from the restored base
  // relations. A leak would surface as tc answering from the rolled-back
  // edge set.
  Engine engine;
  engine.options().demand_transform = true;
  engine.Define(
      "def tc(x, y) : edge(x, y)\n"
      "def tc(x, z) : exists((y) | edge(x, y) and tc(y, z))\n"
      "ic no_self_loop() requires forall((x, y) | edge(x, y) implies x != y)");
  engine.Exec("def insert(:edge, x, y) : (x = 1 and y = 2) or "
              "(x = 2 and y = 3)");
  EXPECT_EQ(engine.Query("def output(y) : tc(1, y)").ToString(),
            "{(2); (3)}");

  // This transaction extends the graph AND violates the constraint: the
  // whole edge delta rolls back after tc was demanded against it.
  EXPECT_THROW(engine.Exec("def insert(:edge, x, y) : (x = 3 and y = 4) or "
                           "(x = 5 and y = 5)\n"
                           "def output(y) : tc(1, y)"),
               ConstraintViolation);
  EXPECT_EQ(engine.Base("edge").ToString(), "{(1, 2); (2, 3)}");

  // Re-query through the demand path: the rolled-back edges must be gone.
  EXPECT_EQ(engine.Query("def output(y) : tc(1, y)").ToString(),
            "{(2); (3)}");
  EXPECT_EQ(engine.Query("def output(y) : tc(3, y)").size(), 0u);
}

TEST(Engine, IcWithParametersReportsWitnesses) {
  Engine engine;
  engine.Insert("Quantity", {Tuple({S("a"), I(1)}), Tuple({S("b"), S("x")})});
  engine.Define("ic int_quantities(q) requires Quantity(_, q) implies Int(q)");
  try {
    engine.CheckConstraints();
    FAIL() << "expected violation";
  } catch (const ConstraintViolation& v) {
    EXPECT_EQ(v.ic_name(), "int_quantities");
    EXPECT_NE(std::string(v.what()).find("\"x\""), std::string::npos);
  }
}

TEST(Engine, TransactionLocalIcApplies) {
  Engine engine;
  engine.Insert("R", {Tuple({I(5)})});
  // The ic arrives with the transaction, not via Define.
  EXPECT_THROW(engine.Exec("ic none() requires empty(R)\n"
                           "def insert(:S, x) : x = 1"),
               ConstraintViolation);
  EXPECT_EQ(engine.Base("S").size(), 0u);
}

TEST(Engine, EvalIsExpressionSugar) {
  Engine engine;
  EXPECT_EQ(engine.Eval("1 + 1").ToString(), "{(2)}");
  EXPECT_EQ(engine.Eval("count[{(1);(2)}]").ToString(), "{(2)}");
}

TEST(Engine, OutputAbsentGivesEmpty) {
  Engine engine;
  EXPECT_TRUE(engine.Query("def foo(x) : x = 1").empty());
}

TEST(Engine, UnknownRelationIsEmptyNotError) {
  // Datalog convention: a never-defined name denotes the empty relation.
  Engine engine;
  EXPECT_EQ(engine.Query("def output(x) : NoSuchRel(x)").size(), 0u);
  EXPECT_EQ(engine.Eval("count[NoSuchRel] <++ 0").ToString(), "{(0)}");
}

// --- failure injection -------------------------------------------------------

TEST(Engine, NonConvergentReplacementFixpointIsCapped) {
  Engine engine;
  engine.options().max_iterations = 50;
  // flip oscillates: {()} <-> {} under replacement semantics. The cap must
  // raise a diagnostic naming the offending component and its mode — never
  // return a partial extent.
  try {
    engine.Query("def flip() : not flip()\n"
                 "def output() : flip()");
    FAIL() << "expected non-convergence";
  } catch (const RelError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kNonConvergent);
    std::string what = e.what();
    EXPECT_NE(what.find("flip"), std::string::npos) << what;
    EXPECT_NE(what.find("replacement"), std::string::npos) << what;
  }
}

TEST(Engine, RunawayAccumulationIsCapped) {
  Engine engine;
  engine.options().max_iterations = 100;
  // Counts upward forever: accumulate mode. (With recursion lowering on,
  // the Datalog engine hits its inherited cap first and the component falls
  // back; the saturation loop then raises the authoritative diagnostic.)
  try {
    engine.Query("def n(x) : x = 0\n"
                 "def n(x) : exists((y) | n(y) and x = y + 1)\n"
                 "def output : count[n]");
    FAIL() << "expected non-convergence";
  } catch (const RelError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kNonConvergent);
    std::string what = e.what();
    EXPECT_NE(what.find("'n'"), std::string::npos) << what;
    EXPECT_NE(what.find("accumulate"), std::string::npos) << what;
  }
}

TEST(Engine, RunawaySpecializationIsCapped) {
  Engine engine;
  engine.options().max_instances = 64;
  // Every recursive call specializes on a new relation value.
  EXPECT_THROW(engine.Query("def f[{A}] : count[A] + f[(A, 1)]\n"
                            "def output : f[{(1)}]"),
               RelError);
}

TEST(Engine, ParseErrorsCarryPositions) {
  Engine engine;
  try {
    engine.Query("def output(x) :\n  x = ");
    FAIL();
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2);
  }
}

TEST(Engine, ArityErrorsOnBuiltins) {
  Engine engine;
  try {
    engine.Eval("{(x) : rel_primitive_add(1, 2, 3, x)}");
    FAIL();
  } catch (const RelError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kArity);
  }
}

TEST(Engine, MissingSecondOrderArgs) {
  Engine engine;
  try {
    engine.Eval("sum");  // sum needs its relation argument
    FAIL();
  } catch (const RelError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kArity);
  }
}

TEST(Engine, StdlibCanBeDisabled) {
  Engine engine(/*load_stdlib=*/false);
  EXPECT_EQ(engine.installed_rules(), 0u);
  EXPECT_EQ(engine.Eval("1 + 2").ToString(), "{(3)}");  // builtins remain
  EXPECT_EQ(engine.Query("def output : sum[{(1)}]").size(), 0u);  // no stdlib
}

// --- fixpoint semantics edge cases --------------------------------------------

TEST(Engine, MutualRecursionEvenOdd) {
  Engine engine;
  engine.Define(
      "def even(x) : x = 0\n"
      "def even(x) : exists((y) | x = y + 1 and odd(y) and x <= 10)\n"
      "def odd(x) : exists((y) | x = y + 1 and even(y) and x <= 10)");
  EXPECT_EQ(engine.Query("def output : even").ToString(),
            "{(0); (2); (4); (6); (8); (10)}");
  EXPECT_EQ(engine.Query("def output : odd").size(), 5u);
}

TEST(Engine, StratifiedNegationThroughRecursion) {
  Engine engine;
  engine.Insert("E", {Tuple({I(1), I(2)}), Tuple({I(2), I(3)})});
  engine.Insert("V", {Tuple({I(1)}), Tuple({I(2)}), Tuple({I(3)}),
                      Tuple({I(4)})});
  Relation out = engine.Query(
      "def reach(x) : x = 1\n"
      "def reach(y) : exists((x) | reach(x) and E(x, y))\n"
      "def unreachable(x) : V(x) and not reach(x)\n"
      "def output : unreachable");
  EXPECT_EQ(out.ToString(), "{(4)}");
}

TEST(Engine, SameInstanceSharedWithinQuery) {
  // Two references to TC over the same edges hit the same memoized
  // instance — results must be consistent mid-query.
  Engine engine;
  engine.Insert("E", {Tuple({I(1), I(2)}), Tuple({I(2), I(3)})});
  Relation out = engine.Query(
      "def both(x, y) : TC[E](x, y) and TC[E](x, y)\n"
      "def output : both");
  EXPECT_EQ(out.size(), 3u);
}

TEST(Engine, RecursionThroughSecondOrderTemplate) {
  // A recursive template applied to a derived relation.
  Engine engine;
  engine.Insert("Raw", {Tuple({I(1), I(2), S("x")}), Tuple({I(2), I(3), S("y")})});
  Relation out = engine.Query(
      "def Edges(a, b) : Raw(a, b, _)\n"
      "def output : TC[Edges]");
  EXPECT_EQ(out.size(), 3u);
}

}  // namespace
}  // namespace rel
