// Tests for incremental maintenance through the commit pipeline and the
// session caches (PR 9): the writer-side extent cache surviving commits
// and rollbacks, sessions walking the published delta chain on re-pin,
// Decker-style delta-specialized integrity checking, and the
// affected-component-only invalidation on rule extensions.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/error.h"
#include "core/engine.h"
#include "core/session.h"
#include "data/tuple.h"
#include "data/value.h"

namespace rel {
namespace {

Value I(int64_t v) { return Value::Int(v); }

const char kTc[] =
    "def tc(x, y) : edge(x, y)\n"
    "def tc(x, z) : exists((y) | edge(x, y) and tc(y, z))";

TEST(WriterMaintain, ExtentsCarryAcrossCommits) {
  Engine engine;
  engine.Define(kTc);
  engine.Insert("edge", {Tuple({I(1), I(2)}), Tuple({I(2), I(3)})});

  // First transaction lowers tc against the pre-state and caches its
  // fixpoint; the commit's maintain step moves it to the post-version.
  EXPECT_EQ(engine.Exec("def output(x, y) : tc(x, y)\n"
                        "def insert(:edge, x, y) : x = 3 and y = 4")
                .output.size(),
            3u);
  EXPECT_GT(engine.writer_extent_cache().size(), 0u);
  EXPECT_GT(engine.writer_extent_cache().maintained() +
                engine.writer_extent_cache().restamped(),
            0u);

  // The next transaction's pre-state evaluation hits the maintained entry —
  // no recomputation — and sees the new edge.
  uint64_t hits_before = engine.writer_extent_cache().hits();
  TxnResult r = engine.Exec("def output(x, y) : tc(x, y)");
  EXPECT_EQ(r.output.size(), 6u);
  EXPECT_GT(engine.writer_extent_cache().hits(), hits_before);
}

TEST(WriterMaintain, RollbackDiscardsAbortedEntriesOnly) {
  Engine engine;
  engine.Define(kTc);
  engine.Define("ic no_big() requires forall((x, y) | edge(x, y) implies x < 100)");
  engine.Insert("edge", {Tuple({I(1), I(2)})});

  // Warm the writer cache and pass a full integrity check.
  engine.Exec("def output(x, y) : tc(x, y)");

  // This transaction evaluates tc (maintained to its working version),
  // then aborts on the constraint — the rollback must drop the aborted
  // version's entries so the next commit cannot see (500, 501) in tc.
  EXPECT_THROW(engine.Exec("def output(x, y) : tc(x, y)\n"
                           "def insert(:edge, x, y) : x = 500 and y = 501"),
               ConstraintViolation);
  EXPECT_GT(engine.writer_extent_cache().dropped(), 0u);

  // A different commit re-issues the same working version numbers with
  // different content; cached extents must match it, not the abort.
  engine.Exec("def insert(:edge, x, y) : x = 2 and y = 3");
  EXPECT_EQ(engine.Exec("def output(x, y) : tc(x, y)").output.ToString(),
            "{(1, 2); (1, 3); (2, 3)}");
}

TEST(SessionMaintain, ExtentCacheWalksTheDeltaChain) {
  Engine engine;
  engine.Define(kTc);
  engine.Insert("edge", {Tuple({I(1), I(2)}), Tuple({I(2), I(3)})});

  std::unique_ptr<Session> reader = engine.OpenSession();
  EXPECT_EQ(reader->Query("def output(x, y) : tc(x, y)").size(), 3u);
  EXPECT_GT(reader->extent_cache().size(), 0u);

  // Two commits land elsewhere; the reader re-pins across both and its
  // cached tc fixpoint follows the delta chain instead of being dropped.
  engine.Exec("def insert(:edge, x, y) : x = 3 and y = 4");
  engine.Exec("def insert(:edge, x, y) : x = 4 and y = 5");
  reader->Refresh();
  EXPECT_GT(reader->extent_cache().maintained(), 0u);

  uint64_t hits_before = reader->extent_cache().hits();
  EXPECT_EQ(reader->Query("def output(x, y) : tc(x, y)").size(), 10u);
  EXPECT_GT(reader->extent_cache().hits(), hits_before);
  EXPECT_GT(reader->last_lowering_stats().extent_cache_hits, 0);
}

TEST(SessionMaintain, StalePinBeyondTheWindowFallsBackToRecompute) {
  Engine engine;
  engine.Define(kTc);
  engine.Insert("edge", {Tuple({I(0), I(1)})});

  std::unique_ptr<Session> reader = engine.OpenSession();
  reader->Query("def output(x, y) : tc(x, y)");

  // Push far more commits than the published delta window holds.
  for (int i = 1; i < 14; ++i) {
    engine.Insert("edge", {Tuple({I(i), I(i + 1)})});
  }
  reader->Refresh();
  // Correctness is unconditional: the chain no longer reaches the old pin,
  // so the cache was dropped and the query recomputes.
  EXPECT_EQ(reader->Query("def output(x, y) : tc(x, y)").size(),
            14u * 15u / 2u);
}

TEST(SessionMaintain, DeleteMaintainsThroughDRed) {
  Engine engine;
  engine.Define(kTc);
  // Diamond: deleting (0,1) over-deletes tc(0,3); the 0->2->3 path
  // re-derives it.
  engine.Insert("edge", {Tuple({I(0), I(1)}), Tuple({I(1), I(3)}),
                         Tuple({I(0), I(2)}), Tuple({I(2), I(3)})});

  std::unique_ptr<Session> reader = engine.OpenSession();
  EXPECT_EQ(reader->Query("def output(x, y) : tc(x, y)").size(), 5u);

  engine.Exec("def delete(:edge, x, y) : x = 0 and y = 1");
  reader->Refresh();
  EXPECT_GT(reader->extent_cache().maintained(), 0u);
  EXPECT_EQ(reader->Query("def output(x, y) : tc(x, y)").ToString(),
            "{(0, 2); (0, 3); (1, 3); (2, 3)}");
  EXPECT_GT(reader->extent_cache().maintain_stats().rederived, 0u);
}

TEST(SessionMaintain, MaintainedAnswersMatchFreshSessionByteForByte) {
  Engine engine;
  engine.Define(kTc);
  engine.Insert("edge", {Tuple({I(1), I(2)}), Tuple({I(2), I(3)}),
                         Tuple({I(3), I(4)})});

  std::unique_ptr<Session> warm = engine.OpenSession();
  warm->Query("def output(x, y) : tc(x, y)");

  const char* updates[] = {
      "def insert(:edge, x, y) : x = 4 and y = 5",
      "def delete(:edge, x, y) : x = 2 and y = 3",
      "def insert(:edge, x, y) : x = 2 and y = 5",
  };
  for (const char* update : updates) {
    engine.Exec(update);
    warm->Refresh();
    std::unique_ptr<Session> cold = engine.OpenSession();
    EXPECT_EQ(warm->Query("def output(x, y) : tc(x, y)").ToString(),
              cold->Query("def output(x, y) : tc(x, y)").ToString())
        << "after update: " << update;
  }
}

TEST(DeckerIc, UnrelatedCommitsSkipTheConstraint) {
  Engine engine;
  engine.Define("ic positive(x) requires R(x) implies x > 0");
  engine.Insert("R", {Tuple({I(5)})});

  // First Exec runs the full pass that establishes the verified base.
  engine.Exec("def insert(:other, x) : x = 1");
  uint64_t skipped_before = engine.ic_stats().skipped;
  uint64_t checked_before = engine.ic_stats().checked;

  // This commit never touches R or anything the constraint reads: skipped.
  engine.Exec("def insert(:other, x) : x = 2");
  EXPECT_GT(engine.ic_stats().skipped, skipped_before);
  EXPECT_EQ(engine.ic_stats().checked, checked_before);

  // Touching R re-checks — and still catches the violation.
  EXPECT_THROW(engine.Exec("def insert(:R, x) : x = 0 - 3"),
               ConstraintViolation);
  EXPECT_GT(engine.ic_stats().checked, checked_before);
  EXPECT_TRUE(engine.Base("R").Contains(Tuple({I(5)})));
  EXPECT_FALSE(engine.Base("R").Contains(Tuple({I(-3)})));
}

TEST(DeckerIc, ConstraintOverDerivedRelationSeesBaseChanges) {
  // The constraint reads tc, not edge — the read-set closure must chase
  // through the rules so an edge change still re-checks it.
  Engine engine;
  engine.Define(kTc);
  engine.Define(
      "ic no_loop() requires forall((x, y) | tc(x, y) implies x != y)");
  engine.Insert("edge", {Tuple({I(1), I(2)})});
  engine.Exec("def insert(:other, x) : x = 1");  // full pass

  uint64_t checked_before = engine.ic_stats().checked;
  // Closing the cycle makes tc(1,1) derivable; the commit must abort.
  EXPECT_THROW(engine.Exec("def insert(:edge, x, y) : x = 2 and y = 1"),
               ConstraintViolation);
  EXPECT_GT(engine.ic_stats().checked, checked_before);
  EXPECT_FALSE(engine.Base("edge").Contains(Tuple({I(2), I(1)})));
}

TEST(DeckerIc, DefineForcesAFullPass) {
  Engine engine;
  engine.Define("ic positive(x) requires R(x) implies x > 0");
  engine.Insert("R", {Tuple({I(5)})});
  engine.Exec("def insert(:other, x) : x = 1");  // full pass
  engine.Exec("def insert(:other, x) : x = 2");  // skips
  uint64_t skipped_after_warm = engine.ic_stats().skipped;
  ASSERT_GT(skipped_after_warm, 0u);

  // A new constraint must be evaluated against pre-existing data, so the
  // next commit checks everything even though it touches nothing related.
  engine.Define("ic small(x) requires R(x) implies x < 100");
  uint64_t checked_before = engine.ic_stats().checked;
  engine.Exec("def insert(:other, x) : x = 3");
  EXPECT_GE(engine.ic_stats().checked, checked_before + 2);

  // And the delta regime resumes afterwards.
  engine.Exec("def insert(:other, x) : x = 4");
  EXPECT_GT(engine.ic_stats().skipped, skipped_after_warm);
}

TEST(DeckerIc, TransactionLocalConstraintsAlwaysRun) {
  Engine engine;
  engine.Insert("R", {Tuple({I(1)})});
  engine.Exec("def insert(:other, x) : x = 1");  // full pass (no ics: trivial)
  EXPECT_THROW(engine.Exec("ic none() requires empty(R)\n"
                           "def insert(:other, x) : x = 2"),
               ConstraintViolation);
  EXPECT_FALSE(engine.Base("other").Contains(Tuple({I(2)})));
}

TEST(RuleExtension, OnlyAffectedComponentsAreInvalidated) {
  // Two independent recursive components; a Define extending only `edge`
  // must not evict the cached fixpoint of the link component.
  Engine engine;
  engine.Define(kTc);
  engine.Define(
      "def lc(x, y) : link(x, y)\n"
      "def lc(x, z) : exists((y) | link(x, y) and lc(y, z))");
  engine.Insert("edge", {Tuple({I(1), I(2)})});
  engine.Insert("link", {Tuple({I(7), I(8)}), Tuple({I(8), I(9)})});

  std::unique_ptr<Session> reader = engine.OpenSession();
  reader->Query("def output(x, y) : tc(x, y)");
  reader->Query("def output(x, y) : lc(x, y)");
  size_t cached = reader->extent_cache().size();
  ASSERT_GE(cached, 2u);

  // The new rule feeds `edge` (hence tc) only.
  engine.Define("def edge(x, y) : extra_edge(x, y)");
  reader->Refresh();
  // The lc entry survived; the tc entry is gone.
  EXPECT_LT(reader->extent_cache().size(), cached);
  EXPECT_GT(reader->extent_cache().size(), 0u);

  uint64_t hits_before = reader->extent_cache().hits();
  EXPECT_EQ(reader->Query("def output(x, y) : lc(x, y)").size(), 3u);
  EXPECT_GT(reader->extent_cache().hits(), hits_before);

  // tc reflects the new rule once extra_edge has content.
  engine.Insert("extra_edge", {Tuple({I(2), I(3)})});
  reader->Refresh();
  EXPECT_EQ(reader->Query("def output(x, y) : tc(x, y)").size(), 3u);
}

TEST(RuleExtension, DemandConesFollowTheSamePolicy) {
  Engine engine;
  engine.Define(kTc);
  engine.Define(
      "def lc(x, y) : link(x, y)\n"
      "def lc(x, z) : exists((y) | link(x, y) and lc(y, z))");
  engine.Insert("edge", {Tuple({I(1), I(2)})});
  engine.Insert("link", {Tuple({I(7), I(8)})});

  std::unique_ptr<Session> reader = engine.OpenSession();
  reader->options().demand_transform = true;
  reader->Query("def output(y) : tc(1, y)");
  reader->Query("def output(y) : lc(7, y)");
  size_t cached = reader->demand_cache().size();
  ASSERT_GE(cached, 2u);

  engine.Define("def edge(x, y) : extra_edge(x, y)");
  reader->Refresh();
  EXPECT_LT(reader->demand_cache().size(), cached);
  EXPECT_GT(reader->demand_cache().size(), 0u);
  EXPECT_EQ(reader->Query("def output(y) : lc(7, y)").ToString(), "{(8)}");
}

}  // namespace
}  // namespace rel
