// End-to-end smoke tests: the engine evaluates the simplest programs.

#include <gtest/gtest.h>

#include "core/engine.h"

namespace rel {
namespace {

std::string Eval(Engine& engine, const std::string& expr) {
  return engine.Eval(expr).ToString();
}

TEST(Smoke, ConstantOutput) {
  Engine engine(/*load_stdlib=*/false);
  EXPECT_EQ(engine.Query("def output(x) : x = 1").ToString(), "{(1)}");
}

TEST(Smoke, RelationLiteral) {
  Engine engine(/*load_stdlib=*/false);
  EXPECT_EQ(Eval(engine, "{(1,2,3) ; (4,5,6) ; (7,8,9)}"),
            "{(1, 2, 3); (4, 5, 6); (7, 8, 9)}");
}

TEST(Smoke, Arithmetic) {
  Engine engine(/*load_stdlib=*/false);
  EXPECT_EQ(Eval(engine, "1 + 2 * 3"), "{(7)}");
  EXPECT_EQ(Eval(engine, "2 ^ 10"), "{(1024)}");
  EXPECT_EQ(Eval(engine, "7 % 3"), "{(1)}");
}

TEST(Smoke, BaseRelationJoin) {
  Engine engine(/*load_stdlib=*/false);
  engine.Insert("E", {Tuple({Value::Int(1), Value::Int(2)}),
                      Tuple({Value::Int(2), Value::Int(3)})});
  Relation out =
      engine.Query("def output(x, z) : exists((y) | E(x, y) and E(y, z))");
  EXPECT_EQ(out.ToString(), "{(1, 3)}");
}

TEST(Smoke, StdlibLoads) {
  Engine engine;  // loads and parses the standard library
  EXPECT_GT(engine.installed_rules(), 20u);
  EXPECT_EQ(Eval(engine, "sum[{(1);(2);(3)}]"), "{(6)}");
}

TEST(Smoke, TransitiveClosure) {
  Engine engine;
  engine.Insert("E", {Tuple({Value::Int(1), Value::Int(2)}),
                      Tuple({Value::Int(2), Value::Int(3)}),
                      Tuple({Value::Int(3), Value::Int(4)})});
  Relation out = engine.Query(
      "def tc(x,y) : E(x,y)\n"
      "def tc(x,y) : exists((z) | E(x,z) and tc(z,y))\n"
      "def output(x,y) : tc(x,y)");
  EXPECT_EQ(out.size(), 6u);
  EXPECT_TRUE(out.Contains(Tuple({Value::Int(1), Value::Int(4)})));
}

}  // namespace
}  // namespace rel
