// Safety analysis tests (Section 3.2): unsafe expressions are rejected,
// unsafe subexpressions inside safe expressions evaluate.

#include <gtest/gtest.h>

#include "base/error.h"
#include "core/engine.h"

namespace rel {
namespace {

class Safety : public ::testing::Test {
 protected:
  Safety() {
    engine_.Define("def Fin {(1) ; (2) ; (3)}\n"
                   "def Pairs {(1, -1) ; (2, 3)}");
  }

  void ExpectUnsafe(const std::string& expr) {
    try {
      engine_.Eval(expr);
      FAIL() << expr << " should be unsafe";
    } catch (const RelError& e) {
      EXPECT_EQ(e.kind(), ErrorKind::kSafety) << e.what();
    }
  }

  Engine engine_;
};

TEST_F(Safety, BareInfiniteRelationsAreUnsafe) {
  ExpectUnsafe("Int");
  ExpectUnsafe("add");
  ExpectUnsafe("{(x) : Int(x)}");
  ExpectUnsafe("{(x, y) : x = y}");
}

TEST_F(Safety, NegationAloneIsUnsafe) {
  // def NotP1Price(x) : not ProductPrice("P1", x) — Section 3.1.
  engine_.Define("def PP {(\"P1\", 10)}");
  ExpectUnsafe("{(x) : not PP(\"P1\", x)}");
}

TEST_F(Safety, NegationGuardedIsSafe) {
  engine_.Define("def PP {(\"P1\", 10)}");
  EXPECT_EQ(engine_.Eval("{(x) : Fin(x) and not PP(\"P1\", x)}").size(), 3u);
}

TEST_F(Safety, UnsafeDefUsableWhenGuarded) {
  engine_.Define(
      "def AdditiveInverse(x,y) : Int(x) and Int(y) and add(x,y,0)");
  ExpectUnsafe("AdditiveInverse");
  EXPECT_EQ(
      engine_.Eval("{(x,y) : Pairs(x,y) and AdditiveInverse(x,y)}").ToString(),
      "{(1, -1)}");
}

TEST_F(Safety, InfiniteConditionInSelect) {
  engine_.Define("def Cond(x, y, rest...) : x = y");
  ExpectUnsafe("Cond");
  EXPECT_EQ(engine_.Eval("Select[(Fin, Fin), Cond]").ToString(),
            "{(1, 1); (2, 2); (3, 3)}");
}

TEST_F(Safety, ArithmeticNeedsOneBoundSide) {
  EXPECT_EQ(engine_.Eval("{(x) : Fin(x) and x + 1 = 3}").ToString(), "{(2)}");
  // y unbound on both sides of the addition.
  ExpectUnsafe("{(y) : y + 1 = y}");
}

TEST_F(Safety, WildcardOutputsAreInfinite) {
  ExpectUnsafe("_");
  ExpectUnsafe("(_, 1)");
  ExpectUnsafe("_...");
}

TEST_F(Safety, AggregationOverInfiniteInput) {
  ExpectUnsafe("sum[Int]");
  ExpectUnsafe("count[add]");
}

TEST_F(Safety, SafetyErrorListsConstraints) {
  try {
    engine_.Eval("{(x) : Int(x)}");
    FAIL();
  } catch (const RelError& e) {
    EXPECT_NE(std::string(e.what()).find("no safe evaluation order"),
              std::string::npos);
  }
}

TEST_F(Safety, GuardedByDomainBinding) {
  // `x in Fin` provides the guard that Int(x) cannot.
  EXPECT_EQ(engine_.Eval("{[x in Fin] : x * 10}").ToString(),
            "{(1, 10); (2, 20); (3, 30)}");
}

TEST_F(Safety, ComparisonChainsGuardedLeftToRight) {
  EXPECT_EQ(engine_.Eval("{(x,y) : Fin(x) and y = x + 1 and y < 3}").ToString(),
            "{(1, 2)}");
}

TEST_F(Safety, RangeGuardsItsVariable) {
  EXPECT_EQ(engine_.Eval("{(i) : range(1, 4, 1, i)}").size(), 4u);
  ExpectUnsafe("{(a, i) : range(1, a, 1, i)}");
}

}  // namespace
}  // namespace rel
