// Tests for every relation in the standard library (src/core/stdlib_rel.cc),
// beyond the paper-example coverage.

#include <gtest/gtest.h>

#include "base/error.h"
#include "core/engine.h"

namespace rel {
namespace {

class Stdlib : public ::testing::Test {
 protected:
  std::string Eval(const std::string& expr) {
    return engine_.Eval(expr).ToString();
  }
  Engine engine_;
};

// --- arithmetic wrappers ---

TEST_F(Stdlib, ArithmeticWrappers) {
  EXPECT_EQ(Eval("add[2, 3]"), "{(5)}");
  EXPECT_EQ(Eval("subtract[2, 3]"), "{(-1)}");
  EXPECT_EQ(Eval("multiply[4, 3]"), "{(12)}");
  EXPECT_EQ(Eval("divide[9, 3]"), "{(3)}");
  EXPECT_EQ(Eval("modulo[9, 4]"), "{(1)}");
  EXPECT_EQ(Eval("power[3, 3]"), "{(27)}");
  EXPECT_EQ(Eval("minimum[4, 9]"), "{(4)}");
  EXPECT_EQ(Eval("maximum[4, 9]"), "{(9)}");
  EXPECT_EQ(Eval("abs_value[-7]"), "{(7)}");
  EXPECT_EQ(Eval("floor[2.9]"), "{(2)}");
  EXPECT_EQ(Eval("sqrt[16.0]"), "{(4.0)}");
}

TEST_F(Stdlib, ArithmeticWrappersInvertLikePrimitives) {
  // The inlined wrapper supports the same binding patterns as the builtin.
  EXPECT_EQ(Eval("{(x) : add(x, 3, 10)}"), "{(7)}");
  EXPECT_EQ(Eval("{(y) : multiply(4, y, 12)}"), "{(3)}");
}

TEST_F(Stdlib, InfixOperatorsWorkWithoutStdlib) {
  // The infix operators desugar to primitives, independent of the library
  // (the stdlib's `def (+)` forms are parsed for fidelity; see parser_test).
  Engine e(/*load_stdlib=*/false);
  EXPECT_EQ(e.Eval("2 + 3").ToString(), "{(5)}");
  EXPECT_EQ(e.Eval("2 < 3").ToString(), "{()}");
}

TEST_F(Stdlib, StringWrappers) {
  EXPECT_EQ(Eval("concat[\"ab\", \"cd\"]"), "{(\"abcd\")}");
  EXPECT_EQ(Eval("string_length[\"hello\"]"), "{(5)}");
  EXPECT_EQ(Eval("uppercase[\"aB\"]"), "{(\"AB\")}");
  EXPECT_EQ(Eval("lowercase[\"aB\"]"), "{(\"ab\")}");
  EXPECT_EQ(Eval("substring[\"hello\", 1, 3]"), "{(\"hel\")}");
  EXPECT_EQ(Eval("parse_int[\"17\"]"), "{(17)}");
  EXPECT_EQ(Eval("string[42]"), "{(\"42\")}");
}

// --- core relational operators ---

TEST_F(Stdlib, Empty) {
  EXPECT_EQ(Eval("empty({})"), "{()}");
  EXPECT_EQ(Eval("empty({(1)})"), "{}");
  // empty of an empty *derived* relation.
  engine_.Define("def none(x) : x = 1 and x = 2");
  EXPECT_EQ(Eval("empty(none)"), "{()}");
}

TEST_F(Stdlib, DotJoinArities) {
  engine_.Define("def A {(1, 2) ; (1, 3)}\n"
                 "def B {(2, \"two\") ; (3, \"three\") ; (9, \"nine\")}\n"
                 "def C3 {(1, 2, 3)}");
  EXPECT_EQ(Eval("A.B"), R"({(1, "three"); (1, "two")})");
  // Dot join of a ternary with a binary: joins last-to-first.
  EXPECT_EQ(Eval("C3.{(3, 33)}"), "{(1, 2, 33)}");
  // Unary RHS acts as a filter on the last column.
  EXPECT_EQ(Eval("A.{(3)}"), "{(1)}");
}

TEST_F(Stdlib, LeftOverrideKeyedDefaults) {
  engine_.Define("def A {(1, 10) ; (2, 20)}\n"
                 "def B {(2, 99) ; (3, 30)}");
  EXPECT_EQ(Eval("A <++ B"), "{(1, 10); (2, 20); (3, 30)}");
  EXPECT_EQ(Eval("B <++ A"), "{(1, 10); (2, 99); (3, 30)}");
  EXPECT_EQ(Eval("{} <++ A"), "{(1, 10); (2, 20)}");
  // Scalar default for an empty aggregate (the Section 5.2 idiom).
  EXPECT_EQ(Eval("sum[{}] <++ 0"), "{(0)}");
  EXPECT_EQ(Eval("sum[{(5)}] <++ 0"), "{(5)}");
}

TEST_F(Stdlib, RelationalAlgebra) {
  engine_.Define("def A {(1) ; (2)}\n"
                 "def B {(2) ; (3)}");
  EXPECT_EQ(Eval("Union[A, B]"), "{(1); (2); (3)}");
  EXPECT_EQ(Eval("Intersect[A, B]"), "{(2)}");
  EXPECT_EQ(Eval("Minus[A, B]"), "{(1)}");
  EXPECT_EQ(Eval("Product[A, B]"), "{(1, 2); (1, 3); (2, 2); (2, 3)}");
  // Mixed arities in a union.
  EXPECT_EQ(Eval("Union[A, {(7, 8)}]"), "{(1); (2); (7, 8)}");
}

TEST_F(Stdlib, SelectWithFiniteAndInfiniteConditions) {
  engine_.Define("def A {(1, 1) ; (1, 2) ; (3, 3)}");
  EXPECT_EQ(Eval("Select[A, {(1, 1)}]"), "{(1, 1)}");
  engine_.Define("def Diag(x, y) : x = y");
  EXPECT_EQ(Eval("Select[A, Diag]"), "{(1, 1); (3, 3)}");
}

// --- aggregates ---

TEST_F(Stdlib, Aggregates) {
  EXPECT_EQ(Eval("sum[{(1);(2);(3)}]"), "{(6)}");
  EXPECT_EQ(Eval("prod[{(2);(3);(4)}]"), "{(24)}");
  EXPECT_EQ(Eval("count[{(\"a\");(\"b\")}]"), "{(2)}");
  EXPECT_EQ(Eval("min[{(3.5);(2)}]"), "{(2)}");
  EXPECT_EQ(Eval("max[{(3.5);(2)}]"), "{(3.5)}");
  EXPECT_EQ(Eval("avg[{(1);(2);(3);(6)}]"), "{(3)}");
}

TEST_F(Stdlib, AggregatesOverLastColumn) {
  // Keyed tuples: the aggregate folds the last column across all tuples.
  EXPECT_EQ(Eval("sum[{(\"a\", 1) ; (\"b\", 1) ; (\"c\", 2)}]"), "{(4)}");
  EXPECT_EQ(Eval("count[{(\"a\", 1) ; (\"b\", 1)}]"), "{(2)}");
}

TEST_F(Stdlib, ArgminArgmax) {
  engine_.Define("def Score {(\"a\", 3) ; (\"b\", 1) ; (\"c\", 3)}");
  EXPECT_EQ(Eval("Argmin[Score]"), R"({("b")})");
  EXPECT_EQ(Eval("Argmax[Score]"), R"({("a"); ("c")})");
}

// --- linear algebra ---

TEST_F(Stdlib, LinearAlgebra) {
  engine_.Define("def M {(1,1,2.0) ; (2,2,3.0)}\n"
                 "def X {(1,1.0) ; (2,1.0)}");
  EXPECT_EQ(Eval("dimension[M]"), "{(2)}");
  EXPECT_EQ(Eval("MatrixVector[M, X]"), "{(1, 2.0); (2, 3.0)}");
  EXPECT_EQ(Eval("Transpose[{(1,2,5.0)}]"), "{(2, 1, 5.0)}");
  // Multiplying by the identity is the identity.
  engine_.Define("def I2 {(1,1,1.0) ; (2,2,1.0)}");
  EXPECT_EQ(Eval("MatrixMult[M, I2]"), "{(1, 1, 2.0); (2, 2, 3.0)}");
}

// --- graph library ---

TEST_F(Stdlib, GraphBasics) {
  engine_.Define("def E {(1,2) ; (2,3) ; (3,1) ; (3,4)}");
  EXPECT_EQ(Eval("Nodes[E]"), "{(1); (2); (3); (4)}");
  EXPECT_EQ(Eval("outdegree[E]"), "{(1, 1); (2, 1); (3, 2); (4, 0)}");
  EXPECT_EQ(Eval("indegree[E]"), "{(1, 1); (2, 1); (3, 1); (4, 1)}");
  EXPECT_EQ(Eval("triangle_count[E]"), "{(1)}");
  EXPECT_EQ(Eval("triangle_count[{(1,2)}]"), "{(0)}");
}

TEST_F(Stdlib, TCOnCycle) {
  engine_.Define("def E {(1,2) ; (2,3) ; (3,1)}");
  Relation tc = engine_.Query("def output : TC[E]");
  EXPECT_EQ(tc.size(), 9u);  // complete: every node reaches every node
}

TEST_F(Stdlib, TCMemoizedAcrossUses) {
  engine_.Define("def E {(1,2) ; (2,3)}");
  // Two uses of TC[E] in one query share the instance.
  Relation out = engine_.Query(
      "def output(x) : TC[E](1, x) and TC[E](x, 3)");
  EXPECT_EQ(out.ToString(), "{(2)}");
}

TEST_F(Stdlib, ApspDisconnected) {
  engine_.Define("def V {(1);(2);(3)}\n"
                 "def E {(1,2)}");
  Relation apsp = engine_.Query("def output : APSP_guarded[V, E]");
  // 3 self-distances + one edge; node 3 unreachable from 1 and 2.
  EXPECT_EQ(apsp.size(), 4u);
}

TEST_F(Stdlib, UndirectedEdgeAndReachable) {
  engine_.Define("def E {(1,2) ; (3,2)}");
  EXPECT_EQ(Eval("UndirectedEdge[E]"),
            "{(1, 2); (2, 1); (2, 3); (3, 2)}");
  // Reachable is reflexive on the node set.
  Relation reach = engine_.Query("def output : Reachable[E]");
  EXPECT_TRUE(reach.Contains(Tuple({Value::Int(1), Value::Int(1)})));
  EXPECT_TRUE(reach.Contains(Tuple({Value::Int(1), Value::Int(2)})));
  EXPECT_FALSE(reach.Contains(Tuple({Value::Int(1), Value::Int(3)})));
}

TEST_F(Stdlib, ConnectedComponents) {
  // Two components: {1,2,3} (via undirected edges) and {7,8}.
  engine_.Define("def E {(1,2) ; (3,2) ; (7,8)}");
  EXPECT_EQ(Eval("connected_component[E]"),
            "{(1, 1); (2, 1); (3, 1); (7, 7); (8, 7)}");
  // Distinct component labels = number of components.
  EXPECT_EQ(Eval("count[(l) : connected_component[E](_, l)]"), "{(2)}");
}

TEST_F(Stdlib, ConnectedComponentsSingletonAndCycle) {
  engine_.Define("def E {(1,1) ; (5,6) ; (6,5)}");
  EXPECT_EQ(Eval("connected_component[E]"), "{(1, 1); (5, 5); (6, 5)}");
}

TEST_F(Stdlib, PageRankOnTwoCycle) {
  engine_.Define("def G {(1,2,1.0) ; (2,1,1.0)}");
  Relation pr = engine_.Query("def output : PageRank[G]");
  ASSERT_EQ(pr.size(), 2u);
  for (const Tuple& t : pr.TuplesOfArity(2)) {
    EXPECT_NEAR(t[1].AsDouble(), 0.5, 1e-9);
  }
}

}  // namespace
}  // namespace rel
