#include "core/builtins.h"

#include <gtest/gtest.h>

namespace rel {
namespace {

/// Runs a builtin under a binding pattern; returns all completions.
std::vector<std::vector<Value>> Invoke(const std::string& name,
                                    std::vector<std::optional<Value>> args) {
  const Builtin* b = FindBuiltin(name);
  EXPECT_NE(b, nullptr) << name;
  std::vector<bool> bound;
  for (const auto& a : args) bound.push_back(a.has_value());
  EXPECT_TRUE(b->Supports(bound)) << name;
  std::vector<std::vector<Value>> out;
  b->Eval(args, [&out](const std::vector<Value>& t) { out.push_back(t); });
  return out;
}

bool Supports(const std::string& name, std::vector<bool> bound) {
  return FindBuiltin(name)->Supports(bound);
}

Value I(int64_t v) { return Value::Int(v); }
Value F(double v) { return Value::Float(v); }
Value S(const char* v) { return Value::String(v); }

TEST(Builtins, AddForwardAndInverses) {
  EXPECT_EQ(Invoke("add", {I(2), I(3), std::nullopt}),
            (std::vector<std::vector<Value>>{{I(2), I(3), I(5)}}));
  // Inverse: y from (x, z).
  EXPECT_EQ(Invoke("add", {I(2), std::nullopt, I(5)}),
            (std::vector<std::vector<Value>>{{I(2), I(3), I(5)}}));
  // Inverse: x from (y, z).
  EXPECT_EQ(Invoke("add", {std::nullopt, I(3), I(5)}),
            (std::vector<std::vector<Value>>{{I(2), I(3), I(5)}}));
  // Test pattern.
  EXPECT_EQ(Invoke("add", {I(2), I(3), I(6)}).size(), 0u);
  // All-free unsupported.
  EXPECT_FALSE(Supports("add", {false, false, false}));
  EXPECT_FALSE(Supports("add", {true, false, false}));
}

TEST(Builtins, TypePromotion) {
  EXPECT_EQ(Invoke("add", {I(1), F(0.5), std::nullopt})[0][2], F(1.5));
  EXPECT_EQ(Invoke("multiply", {F(2.0), I(3), std::nullopt})[0][2], F(6.0));
}

TEST(Builtins, DivideIntStaysIntWhenExact) {
  EXPECT_EQ(Invoke("divide", {I(10), I(5), std::nullopt})[0][2], I(2));
  EXPECT_EQ(Invoke("divide", {I(1), I(2), std::nullopt})[0][2], F(0.5));
  // Division by zero: no tuple, not an error.
  EXPECT_EQ(Invoke("divide", {I(1), I(0), std::nullopt}).size(), 0u);
}

TEST(Builtins, ModuloAndPower) {
  EXPECT_EQ(Invoke("modulo", {I(7), I(3), std::nullopt})[0][2], I(1));
  EXPECT_EQ(Invoke("modulo", {I(7), I(0), std::nullopt}).size(), 0u);
  EXPECT_EQ(Invoke("power", {I(2), I(10), std::nullopt})[0][2], I(1024));
  EXPECT_EQ(Invoke("power", {F(4.0), F(0.5), std::nullopt})[0][2], F(2.0));
}

TEST(Builtins, MultiplyInverseVerified) {
  // y = z / x must verify x * y == z: 0 * y = 5 has no solution.
  EXPECT_EQ(Invoke("multiply", {I(0), std::nullopt, I(5)}).size(), 0u);
  EXPECT_EQ(Invoke("multiply", {I(2), std::nullopt, I(5)})[0][1], F(2.5));
}

TEST(Builtins, EqBindsEitherSide) {
  EXPECT_EQ(Invoke("eq", {I(4), std::nullopt}),
            (std::vector<std::vector<Value>>{{I(4), I(4)}}));
  EXPECT_EQ(Invoke("eq", {std::nullopt, S("x")})[0][0], S("x"));
  EXPECT_EQ(Invoke("eq", {I(1), F(1.0)}).size(), 1u);  // numeric equality
  EXPECT_FALSE(Supports("eq", {false, false}));
}

TEST(Builtins, Comparisons) {
  EXPECT_EQ(Invoke("lt", {I(1), I(2)}).size(), 1u);
  EXPECT_EQ(Invoke("lt", {I(2), I(2)}).size(), 0u);
  EXPECT_EQ(Invoke("lt_eq", {I(2), I(2)}).size(), 1u);
  EXPECT_EQ(Invoke("gt", {F(2.5), I(2)}).size(), 1u);
  EXPECT_EQ(Invoke("neq", {I(1), I(2)}).size(), 1u);
  EXPECT_EQ(Invoke("neq", {I(1), F(1.0)}).size(), 0u);
  // Strings compare lexicographically.
  EXPECT_EQ(Invoke("lt", {S("a"), S("b")}).size(), 1u);
  // Mixed kinds are unordered: no tuple.
  EXPECT_EQ(Invoke("lt", {I(1), S("b")}).size(), 0u);
}

TEST(Builtins, TypePredicates) {
  EXPECT_EQ(Invoke("Int", {I(1)}).size(), 1u);
  EXPECT_EQ(Invoke("Int", {F(1.0)}).size(), 0u);
  EXPECT_EQ(Invoke("Float", {F(1.0)}).size(), 1u);
  EXPECT_EQ(Invoke("String", {S("s")}).size(), 1u);
  EXPECT_EQ(Invoke("Number", {I(1)}).size(), 1u);
  EXPECT_EQ(Invoke("Number", {S("1")}).size(), 0u);
  EXPECT_FALSE(Supports("Int", {false}));  // cannot enumerate all integers
}

TEST(Builtins, RangeEnumerates) {
  auto out = Invoke("range", {I(1), I(5), I(2), std::nullopt});
  ASSERT_EQ(out.size(), 3u);  // 1, 3, 5 (inclusive upper bound)
  EXPECT_EQ(out[0][3], I(1));
  EXPECT_EQ(out[2][3], I(5));
  EXPECT_EQ(Invoke("range", {I(1), I(5), I(2), I(4)}).size(), 0u);
  EXPECT_EQ(Invoke("range", {I(1), I(5), I(2), I(3)}).size(), 1u);
  EXPECT_FALSE(Supports("range", {true, true, false, true}));
}

TEST(Builtins, UnaryMath) {
  EXPECT_EQ(Invoke("sqrt", {F(9.0), std::nullopt})[0][1], F(3.0));
  EXPECT_EQ(Invoke("sqrt", {F(-1.0), std::nullopt}).size(), 0u);
  EXPECT_EQ(Invoke("abs", {I(-5), std::nullopt})[0][1], I(5));
  EXPECT_EQ(Invoke("floor", {F(2.7), std::nullopt})[0][1], I(2));
  EXPECT_EQ(Invoke("ceil", {F(2.1), std::nullopt})[0][1], I(3));
  EXPECT_EQ(Invoke("round", {F(2.5), std::nullopt})[0][1], I(3));
}

TEST(Builtins, Strings) {
  EXPECT_EQ(Invoke("concat", {S("ab"), S("cd"), std::nullopt})[0][2], S("abcd"));
  EXPECT_EQ(Invoke("string_length", {S("hello"), std::nullopt})[0][1], I(5));
  EXPECT_EQ(Invoke("uppercase", {S("aBc"), std::nullopt})[0][1], S("ABC"));
  EXPECT_EQ(Invoke("substring", {S("hello"), I(2), I(4), std::nullopt})[0][3],
            S("ell"));
  EXPECT_EQ(Invoke("substring", {S("hi"), I(1), I(5), std::nullopt}).size(), 0u);
  EXPECT_EQ(Invoke("contains", {S("hello"), S("ell")}).size(), 1u);
  EXPECT_EQ(Invoke("starts_with", {S("hello"), S("he")}).size(), 1u);
  EXPECT_EQ(Invoke("ends_with", {S("hello"), S("lo")}).size(), 1u);
  EXPECT_EQ(Invoke("regex_match", {S("a+b"), S("aaab")}).size(), 1u);
  EXPECT_EQ(Invoke("regex_match", {S("a+b"), S("ba")}).size(), 0u);
  EXPECT_EQ(Invoke("parse_int", {S("42"), std::nullopt})[0][1], I(42));
  EXPECT_EQ(Invoke("parse_int", {S("4x"), std::nullopt}).size(), 0u);
}

TEST(Builtins, PrimitiveAliases) {
  EXPECT_EQ(FindBuiltin("rel_primitive_add"), FindBuiltin("add"));
  EXPECT_EQ(FindBuiltin("rel_primitive_eq"), FindBuiltin("eq"));
  EXPECT_EQ(FindBuiltin("no_such_builtin"), nullptr);
}

TEST(Builtins, ApplyAsFunction) {
  const Builtin* add = FindBuiltin("add");
  EXPECT_EQ(*ApplyAsFunction(*add, {I(1), I(2)}), I(3));
  const Builtin* min = FindBuiltin("minimum");
  EXPECT_EQ(*ApplyAsFunction(*min, {I(5), I(2)}), I(2));
  EXPECT_FALSE(ApplyAsFunction(*add, {I(1)}).has_value());  // arity mismatch
}

}  // namespace
}  // namespace rel
