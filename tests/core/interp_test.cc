// Interpreter-internals tests: signature resolution, instance memoization,
// second-order value handling, and fixpoint mode selection — through the
// Interp API directly.

#include "core/interp.h"

#include <gtest/gtest.h>

#include "base/error.h"
#include "core/engine.h"
#include "core/parser.h"

namespace rel {
namespace {

Value I(int64_t v) { return Value::Int(v); }

std::vector<std::shared_ptr<Def>> Defs(const std::string& source) {
  Program program = ParseProgram(source);
  std::vector<std::shared_ptr<Def>> out;
  for (Def& def : program.defs) {
    out.push_back(std::make_shared<Def>(std::move(def)));
  }
  return out;
}

TEST(Interp, DefsGroupedBySignature) {
  Database db;
  Interp interp(&db, Defs("def f[{A}] : count[A]\n"
                          "def f(x) : x = 1\n"
                          "def f(x) : x = 2"));
  EXPECT_TRUE(interp.HasDefs("f"));
  EXPECT_EQ(interp.DefsOf("f", 0).size(), 2u);
  EXPECT_EQ(interp.DefsOf("f", 1).size(), 1u);
  EXPECT_EQ(interp.DefsOf("f", 2).size(), 0u);
  EXPECT_FALSE(interp.HasDefs("g"));
}

TEST(Interp, ResolveSigUsesAnnotations) {
  Database db;
  Interp interp(&db, Defs("def f[{A}] : count[A]\n"
                          "def f(x) : x = 1"));
  std::vector<Arg> plain = {Arg{MakeIdent("whatever"), Annotation::kNone}};
  EXPECT_THROW(interp.ResolveSig("f", plain), RelError);

  std::vector<Arg> fo = {Arg{MakeIdent("w"), Annotation::kFirstOrder}};
  EXPECT_EQ(interp.ResolveSig("f", fo), 0u);
  std::vector<Arg> so = {Arg{MakeIdent("w"), Annotation::kSecondOrder}};
  EXPECT_EQ(interp.ResolveSig("f", so), 1u);
}

TEST(Interp, ResolveSigUnknownNameIsFirstOrder) {
  Database db;
  Interp interp(&db, {});
  EXPECT_EQ(interp.ResolveSig("base_rel", {}), 0u);
}

TEST(Interp, InstanceIncludesBaseFactsAndRules) {
  Database db;
  db.Insert("f", Tuple({I(10)}));
  Interp interp(&db, Defs("def f(x) : x = 1"));
  const Relation& f = interp.EvalInstance("f", 0, {});
  EXPECT_EQ(f.size(), 2u);
  EXPECT_TRUE(f.Contains(Tuple({I(10)})));
  EXPECT_TRUE(f.Contains(Tuple({I(1)})));
}

TEST(Interp, InstancesMemoizedBySecondOrderValue) {
  Database db;
  Interp interp(&db, Defs("def double({A}, x, y) : A(x) and y = x * 2"));
  SOValue arg1 = SOValue::Materialized(
      Relation::FromTuples({Tuple({I(1)}), Tuple({I(2)})}));
  SOValue arg2 = SOValue::Materialized(
      Relation::FromTuples({Tuple({I(2)}), Tuple({I(1)})}));  // same content
  const Relation& r1 = interp.EvalInstance("double", 1, {arg1});
  const Relation& r2 = interp.EvalInstance("double", 1, {arg2});
  // Content-equal second-order arguments share the instance.
  EXPECT_EQ(&r1, &r2);
  EXPECT_EQ(r1.ToString(), "{(1, 2); (2, 4)}");

  SOValue arg3 = SOValue::Materialized(
      Relation::FromTuples({Tuple({I(5)})}));
  const Relation& r3 = interp.EvalInstance("double", 1, {arg3});
  EXPECT_EQ(r3.ToString(), "{(5, 10)}");
}

TEST(Interp, BuiltinSOValuesApplyAsFunctions) {
  Database db;
  Interp interp(&db, {});
  SOValue add = SOValue::ForBuiltin(FindBuiltin("add"));
  EXPECT_EQ(*interp.ApplyBinary(add, I(2), I(3)), I(5));
  SOValue table = SOValue::Materialized(
      Relation::FromTuples({Tuple({I(2), I(3), I(99)})}));
  EXPECT_EQ(*interp.ApplyBinary(table, I(2), I(3)), I(99));
  EXPECT_FALSE(interp.ApplyBinary(table, I(1), I(1)).has_value());
}

TEST(Interp, MaterializeSOFailsOnBuiltins) {
  Database db;
  Interp interp(&db, {});
  SOValue add = SOValue::ForBuiltin(FindBuiltin("add"));
  try {
    interp.MaterializeSO(add);
    FAIL();
  } catch (const RelError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kSafety);
  }
}

TEST(Interp, SafetyFailureIsCachedPerInstance) {
  Database db;
  Interp interp(&db, Defs("def unsafe(x, y) : x = y"));
  EXPECT_THROW(interp.EvalInstance("unsafe", 0, {}), RelError);
  // Second call hits the cached failure (fast path, same error kind).
  try {
    interp.EvalInstance("unsafe", 0, {});
    FAIL();
  } catch (const RelError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kSafety);
  }
}

TEST(Interp, ReplacementModeSelection) {
  Database db;
  Interp interp(&db, Defs("def tc(x,y) : e(x,y)\n"
                          "def tc(x,y) : exists((z) | tc(x,z) and tc(z,y))\n"
                          "def odd(x) : d(x) and not odd(x)"));
  EXPECT_FALSE(interp.UsesReplacement("tc"));
  EXPECT_TRUE(interp.UsesReplacement("odd"));
}

TEST(Interp, SOValueEqualityAndHashing) {
  Relation r = Relation::FromTuples({Tuple({I(1)})});
  SOValue a = SOValue::Materialized(r);
  SOValue b = SOValue::Materialized(r);
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.Hash(), b.Hash());
  SOValue c = SOValue::ForBuiltin(FindBuiltin("add"));
  EXPECT_FALSE(a == c);

  auto expr = MakeIdent("X");
  auto env1 = std::make_shared<Env>();
  env1->vars["x"] = I(1);
  auto env2 = std::make_shared<Env>();
  env2->vars["x"] = I(1);
  SOValue c1 = SOValue::Closure(expr, env1);
  SOValue c2 = SOValue::Closure(expr, env2);
  EXPECT_TRUE(c1 == c2);  // same expression, equal captured environments
  EXPECT_EQ(c1.Hash(), c2.Hash());
  env2->vars["x"] = I(2);
  SOValue c3 = SOValue::Closure(expr, env2);
  EXPECT_FALSE(c1 == c3);
}

TEST(Interp, EvalExprRelUnderEnvironment) {
  Database db;
  Interp interp(&db, {});
  Env env;
  env.vars["x"] = I(7);
  Relation out = interp.EvalExprRel(ParseExpression("(x, x + 1)"), env);
  EXPECT_EQ(out.ToString(), "{(7, 8)}");
}

TEST(Interp, PartialReadsTracked) {
  // Evaluating a recursive instance tuple-at-a-time reads partial values;
  // the counter lets memo tables refuse to cache provisional results.
  // (Lowering is disabled: a lowered component never reads partial values —
  // see Interp.LoweredRecursionReadsNoPartialValues.)
  Database db;
  db.Insert("e", Tuple({I(1), I(2)}));
  db.Insert("e", Tuple({I(2), I(3)}));
  InterpOptions options;
  options.lower_recursion = false;
  Interp interp(&db,
                Defs("def tc(x,y) : e(x,y)\n"
                     "def tc(x,y) : exists((z) | e(x,z) and tc(z,y))"),
                options);
  uint64_t before = interp.partial_reads();
  interp.EvalInstance("tc", 0, {});
  EXPECT_GT(interp.partial_reads(), before);
}

TEST(Interp, LoweredRecursionReadsNoPartialValues) {
  // The same component through the lowering pass: the Datalog engine
  // computes the fixpoint without ever handing out an in-progress extent,
  // and the extent matches the saturation loop's exactly.
  Database db;
  db.Insert("e", Tuple({I(1), I(2)}));
  db.Insert("e", Tuple({I(2), I(3)}));
  Interp lowered(&db,
                 Defs("def tc(x,y) : e(x,y)\n"
                      "def tc(x,y) : exists((z) | e(x,z) and tc(z,y))"));
  Relation via_datalog = lowered.EvalInstance("tc", 0, {});
  EXPECT_EQ(lowered.partial_reads(), 0u);
  EXPECT_EQ(lowered.lowering_stats().components_lowered, 1);

  InterpOptions classic;
  classic.lower_recursion = false;
  Interp interp(&db,
                Defs("def tc(x,y) : e(x,y)\n"
                     "def tc(x,y) : exists((z) | e(x,z) and tc(z,y))"),
                classic);
  EXPECT_EQ(via_datalog, interp.EvalInstance("tc", 0, {}));
  EXPECT_EQ(interp.lowering_stats().components_lowered, 0);
}

}  // namespace
}  // namespace rel
