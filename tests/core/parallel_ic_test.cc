// Tests for the engine's parallel integrity-constraint checking
// (InterpOptions::num_threads > 1): same accept/reject decisions and the
// same deterministic first-failure as the sequential checker, including
// transaction rollback.

#include <gtest/gtest.h>

#include <string>

#include "base/error.h"
#include "core/engine.h"

namespace rel {
namespace {

void SetUpConstraints(Engine& engine, int num_threads) {
  engine.options().num_threads = num_threads;
  engine.Define(
      "ic positive(x) requires R(x) implies x > 0\n"
      "ic small(x) requires R(x) implies x < 100\n"
      "ic named() requires count[R] < 50\n"
      "ic even_pairs(x, y) requires P(x, y) implies x < y");
}

TEST(ParallelConstraints, PassingStateAcceptedAcrossThreadCounts) {
  for (int threads : {1, 2, 8}) {
    Engine engine;
    SetUpConstraints(engine, threads);
    engine.Exec("def insert : {(:R, 1); (:R, 2); (:R, 3)}");
    engine.Exec("def insert : {(:P, 1, 2); (:P, 2, 9)}");
    EXPECT_NO_THROW(engine.CheckConstraints()) << "threads=" << threads;
    EXPECT_EQ(engine.Base("R").size(), 3u);
  }
}

TEST(ParallelConstraints, FirstViolationInOrderMatchesSequential) {
  // Both `positive` and `small` are violated; every thread count must
  // report `positive` (the first in declaration order), like the
  // sequential checker does.
  for (int threads : {1, 2, 8}) {
    Engine engine;
    SetUpConstraints(engine, threads);
    engine.Insert("R", {Tuple({Value::Int(-5)}), Tuple({Value::Int(500)})});
    try {
      engine.CheckConstraints();
      FAIL() << "constraints should have failed (threads=" << threads << ")";
    } catch (const ConstraintViolation& v) {
      EXPECT_NE(std::string(v.what()).find("positive"), std::string::npos)
          << "threads=" << threads << " reported: " << v.what();
    }
  }
}

TEST(ParallelConstraints, ViolatingTransactionRollsBack) {
  for (int threads : {1, 4}) {
    Engine engine;
    SetUpConstraints(engine, threads);
    engine.Exec("def insert : {(:R, 7)}");
    EXPECT_THROW(engine.Exec("def insert : {(:R, -1); (:R, 8)}"),
                 ConstraintViolation)
        << "threads=" << threads;
    // The violating transaction left nothing behind.
    EXPECT_EQ(engine.Base("R").size(), 1u) << "threads=" << threads;
    EXPECT_TRUE(engine.Base("R").Contains(Tuple({Value::Int(7)})));
  }
}

TEST(ParallelConstraints, TransactionLocalConstraintsStillApply) {
  Engine engine;
  engine.options().num_threads = 4;
  engine.Insert("R", {Tuple({Value::Int(1)})});
  // The ic arrives with the transaction; with several installed plus the
  // transaction-local one, the parallel path still sees all of them.
  EXPECT_THROW(engine.Exec("ic nonempty() requires empty(R)\n"
                           "def insert : {(:S, 1)}"),
               ConstraintViolation);
  EXPECT_TRUE(engine.Base("S").empty());
}

}  // namespace
}  // namespace rel
