// E3: the denotational semantics of Figures 3 and 4, equation by equation.
// Each test evaluates an expression form and checks the defined result.

#include <gtest/gtest.h>

#include "base/error.h"
#include "core/engine.h"

namespace rel {
namespace {

Value I(int64_t v) { return Value::Int(v); }
Value S(const char* s) { return Value::String(s); }

class Semantics : public ::testing::Test {
 protected:
  Semantics() : engine_(/*load_stdlib=*/true) {
    engine_.Define("def R {(1,2) ; (3,4)}\n"
                   "def S {(5,6)}\n"
                   "def U {(1) ; (2)}");
  }

  std::string Eval(const std::string& expr) {
    return engine_.Eval(expr).ToString();
  }

  Engine engine_;
};

// J c K = {<c>}
TEST_F(Semantics, Constant) {
  EXPECT_EQ(Eval("42"), "{(42)}");
  EXPECT_EQ(Eval("\"x\""), "{(\"x\")}");
  EXPECT_EQ(Eval("2.5"), "{(2.5)}");
}

// J x K = mu(x): an identifier denotes the relation it is bound to.
TEST_F(Semantics, IdentifierDenotesRelation) {
  EXPECT_EQ(Eval("S"), "{(5, 6)}");
}

// J {E1; E2} K = union.
TEST_F(Semantics, Union) {
  EXPECT_EQ(Eval("{S ; (7,8)}"), "{(5, 6); (7, 8)}");
  // Mixed arities may coexist.
  EXPECT_EQ(Eval("{(1) ; (2,3)}"), "{(1); (2, 3)}");
}

// J (E1, E2) K = Cartesian product.
TEST_F(Semantics, Product) {
  EXPECT_EQ(Eval("(U, S)"), "{(1, 5, 6); (2, 5, 6)}");
  // Product with TRUE {()} is identity; with FALSE {} it is empty.
  EXPECT_EQ(Eval("(S, ())"), "{(5, 6)}");
  EXPECT_EQ(Eval("(S, {})"), "{}");
}

// J E where F K = E x F.
TEST_F(Semantics, Where) {
  EXPECT_EQ(Eval("S where 1 = 1"), "{(5, 6)}");
  EXPECT_EQ(Eval("S where 1 = 2"), "{}");
}

// J [c]:E K = {<c>} x E.
TEST_F(Semantics, AbstractionConstBinding) {
  EXPECT_EQ(Eval("{[9] : S}"), "{(9, 5, 6)}");
}

// J [x]:E K with a guarded variable.
TEST_F(Semantics, AbstractionVarBinding) {
  EXPECT_EQ(Eval("{[x] : U(x)}"), "{(1); (2)}");
  EXPECT_EQ(Eval("{[x in U] : (x, 10)}"), "{(1, 1, 10); (2, 2, 10)}");
}

// J [x...]:E K: tuple-variable bindings.
TEST_F(Semantics, AbstractionTupleVarBinding) {
  EXPECT_EQ(Eval("{[t...] : R(t...)}"), "{(1, 2); (3, 4)}");
}

// J (Bindings):Formula K = J [Bindings]:Formula K.
TEST_F(Semantics, RoundAbstractionEqualsSquareOnFormulas) {
  EXPECT_EQ(Eval("{(x) : U(x)}"), Eval("{[x] : U(x)}"));
}

// J {E}[_] K: wildcard application projects away the first column.
TEST_F(Semantics, WildcardApplication) {
  EXPECT_EQ(Eval("R[_]"), "{(2); (4)}");
  EXPECT_EQ(Eval("R[_, _]"), "{()}");
}

// J {E}[_...] K: drops any-length prefixes.
TEST_F(Semantics, WildcardTupleApplication) {
  // Suffixes after a prefix of any length: full tuples, 1-suffixes, <>.
  EXPECT_EQ(Eval("S[_...]"), "{(); (6); (5, 6)}");
}

// J {E1}[?{E2}] K: join on the first column.
TEST_F(Semantics, FirstOrderAnnotatedApplication) {
  EXPECT_EQ(Eval("R[?{U}]"), "{(2)}");  // only (1,2) has its head in U
}

// J {E1}[&{E2}] K: the whole relation E2 as one argument.
TEST_F(Semantics, SecondOrderAnnotatedApplication) {
  engine_.Define("def f[{A}] : count[A]");
  EXPECT_EQ(Eval("f[&{R}]"), "{(2)}");
}

// Figure 4: {()} and {} are TRUE and FALSE.
TEST_F(Semantics, BooleanLiterals) {
  EXPECT_EQ(Eval("true"), "{()}");
  EXPECT_EQ(Eval("false"), "{}");
  EXPECT_EQ(Eval("{()}"), "{()}");
}

// J {E}(args) K = J {E}[args] K ∩ {()}.
TEST_F(Semantics, FullApplicationIsBoolean) {
  EXPECT_EQ(Eval("R(1, 2)"), "{()}");
  EXPECT_EQ(Eval("R(1, 3)"), "{}");
  EXPECT_EQ(Eval("R(1)"), "{}");  // wrong arity: not in the relation
}

// and = intersection, or = union, not = complement on booleans.
TEST_F(Semantics, Connectives) {
  EXPECT_EQ(Eval("R(1,2) and S(5,6)"), "{()}");
  EXPECT_EQ(Eval("R(1,2) and S(5,7)"), "{}");
  EXPECT_EQ(Eval("R(1,3) or S(5,6)"), "{()}");
  EXPECT_EQ(Eval("not R(1,3)"), "{()}");
  EXPECT_EQ(Eval("not R(1,2)"), "{}");
}

// exists / forall with binding forms.
TEST_F(Semantics, Quantifiers) {
  EXPECT_EQ(Eval("exists((x) | R(x, 2))"), "{()}");
  EXPECT_EQ(Eval("exists((x) | R(x, 9))"), "{}");
  EXPECT_EQ(Eval("forall((x in U) | exists((y) | R(x,y) or x = 2))"), "{()}");
  EXPECT_EQ(Eval("exists((t...) | R(t...))"), "{()}");
  EXPECT_EQ(Eval("forall((x in U) | R(x, _))"), "{}");  // 2 has no R row
}

// reduce[&{op}, &{input}] and the full reduce(op, input, v) formula form.
TEST_F(Semantics, Reduce) {
  EXPECT_EQ(Eval("reduce[rel_primitive_add, U]"), "{(3)}");
  EXPECT_EQ(Eval("reduce(rel_primitive_add, U, 3)"), "{()}");
  EXPECT_EQ(Eval("reduce(rel_primitive_add, U, 4)"), "{}");
  // Aggregation over the last column of higher-arity tuples.
  EXPECT_EQ(Eval("reduce[rel_primitive_add, R]"), "{(6)}");
  // reduce over {} is {} (the basis of the <++ 0 idiom).
  EXPECT_EQ(Eval("reduce[rel_primitive_add, {}]"), "{}");
}

// Non-functional reduce operators are a type error.
TEST_F(Semantics, ReduceRejectsNonFunctionalOperator) {
  // The fold applies the operator to (1, 2); two results for that key.
  engine_.Define("def multi {(1, 2, 10) ; (1, 2, 20)}");
  EXPECT_THROW(Eval("reduce[multi, U]"), RelError);
}

// Defined relations can be used as reduce operators.
TEST_F(Semantics, ReduceWithDefinedOperator) {
  engine_.Define("def clamped_add[x, y] : minimum[add[x, y], 10]");
  EXPECT_EQ(Eval("reduce[clamped_add, {(7);(8);(9)}]"), "{(10)}");
}

// Output is always first-order: relation variables cannot escape.
TEST_F(Semantics, SecondOrderTupleMembership) {
  // Product is second-order: testing membership of a second-order tuple.
  EXPECT_EQ(Eval("Product(R, S, 1, 2, 5, 6)"), "{()}");
  EXPECT_EQ(Eval("Product(R, S, 1, 2, 6, 5)"), "{}");
}

TEST_F(Semantics, EmptyRelationVsEmptyTuple) {
  EXPECT_EQ(Eval("count[{}] <++ 0"), "{(0)}");
  EXPECT_EQ(Eval("count[{()}]"), "{(1)}");  // one (empty) tuple
}

TEST_F(Semantics, EntityValues) {
  Engine e(/*load_stdlib=*/false);
  e.Insert("Owner", {Tuple({Value::Entity("person", "p1"), S("Ann")})});
  EXPECT_EQ(e.Query("def output(x) : Owner(_, x)").ToString(),
            "{(\"Ann\")}");
}

TEST_F(Semantics, DeepRecursionThroughInlinedDefs) {
  engine_.Define(
      "def digits[x in Int] : 1 where x >= 0 and x < 10\n"
      "def digits[x in Int] : 1 + digits[(x - x % 10)/10] where x >= 10");
  EXPECT_EQ(Eval("digits[905617]"), "{(6)}");
}

}  // namespace
}  // namespace rel
