// E1: golden tests for (nearly) every worked example in the paper, run
// against the Figure 1 database. Expected answers are the ones stated in
// the paper's text (Sections 3-5).
//
// The whole suite is parameterized over InterpOptions::lower_recursion
// {off, on}: every example pins BOTH evaluation pipelines — the classic
// tuple-at-a-time saturation loop and the path where qualifying recursive
// components lower onto the indexed Datalog evaluator. Examples without
// recursion are unaffected by the toggle (the lowering only changes how
// recursive fixpoints are computed), so identical expectations apply.

#include <gtest/gtest.h>

#include "base/error.h"
#include "core/engine.h"

namespace rel {
namespace {

Value S(const char* s) { return Value::String(s); }
Value I(int64_t i) { return Value::Int(i); }

/// The Figure 1 database.
void LoadFigure1(Engine& engine) {
  engine.Insert("PaymentOrder", {
                    Tuple({S("Pmt1"), S("O1")}),
                    Tuple({S("Pmt2"), S("O2")}),
                    Tuple({S("Pmt3"), S("O1")}),
                    Tuple({S("Pmt4"), S("O3")}),
                });
  engine.Insert("PaymentAmount", {
                    Tuple({S("Pmt1"), I(20)}),
                    Tuple({S("Pmt2"), I(10)}),
                    Tuple({S("Pmt3"), I(10)}),
                    Tuple({S("Pmt4"), I(90)}),
                });
  engine.Insert("OrderProductQuantity", {
                    Tuple({S("O1"), S("P1"), I(2)}),
                    Tuple({S("O1"), S("P2"), I(1)}),
                    Tuple({S("O2"), S("P1"), I(1)}),
                    Tuple({S("O3"), S("P3"), I(4)}),
                });
  engine.Insert("ProductPrice", {
                    Tuple({S("P1"), I(10)}),
                    Tuple({S("P2"), I(20)}),
                    Tuple({S("P3"), I(30)}),
                    Tuple({S("P4"), I(40)}),
                });
}

class PaperExamples : public ::testing::TestWithParam<bool> {
 protected:
  PaperExamples() {
    engine_.options().lower_recursion = GetParam();
    LoadFigure1(engine_);
  }

  std::string Query(const std::string& source) {
    return engine_.Query(source).ToString();
  }

  Engine engine_;
};

INSTANTIATE_TEST_SUITE_P(Pipelines, PaperExamples, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "lowered" : "interp";
                         });

// --- Section 3.1: Datalog as a starting point ---

TEST_P(PaperExamples, OrderWithPayment) {
  EXPECT_EQ(Query("def OrderWithPayment(y) : exists((x) | PaymentOrder(x,y))\n"
                  "def output(y) : OrderWithPayment(y)"),
            R"({("O1"); ("O2"); ("O3")})");
}

TEST_P(PaperExamples, OrderWithPaymentWildcard) {
  EXPECT_EQ(Query("def OrderWithPayment(y) : PaymentOrder(_,y)\n"
                  "def output(y) : OrderWithPayment(y)"),
            R"({("O1"); ("O2"); ("O3")})");
}

TEST_P(PaperExamples, OrderedProducts) {
  EXPECT_EQ(Query("def OrderedProducts(y) : OrderProductQuantity(_,y,_)\n"
                  "def output(y) : OrderedProducts(y)"),
            R"({("P1"); ("P2"); ("P3")})");
}

TEST_P(PaperExamples, OrderedProductPrice) {
  EXPECT_EQ(
      Query("def OrderedProductPrice(x,y) :\n"
            "  OrderProductQuantity(_,x,_) and ProductPrice(x,y)\n"
            "def output(x,y) : OrderedProductPrice(x,y)"),
      R"({("P1", 10); ("P2", 20); ("P3", 30)})");
}

TEST_P(PaperExamples, NotOrderedViaNegation) {
  EXPECT_EQ(Query("def NotOrdered(x) : ProductPrice(x,_) and\n"
                  "  not exists ((y1,y2) | OrderProductQuantity(y1,x,y2))\n"
                  "def output(x) : NotOrdered(x)"),
            R"({("P4")})");
}

TEST_P(PaperExamples, NotOrderedViaForall) {
  EXPECT_EQ(Query("def NotOrdered(x) : ProductPrice(x,_) and\n"
                  "  forall ((y1,y2) | not OrderProductQuantity(y1,x,y2))\n"
                  "def output(x) : NotOrdered(x)"),
            R"({("P4")})");
}

TEST_P(PaperExamples, NotOrderedViaWildcards) {
  EXPECT_EQ(Query("def NotOrdered(x) :\n"
                  "  ProductPrice(x,_) and not OrderProductQuantity(_,x,_)\n"
                  "def output(x) : NotOrdered(x)"),
            R"({("P4")})");
}

TEST_P(PaperExamples, AlwaysOrderedRestrictedForall) {
  // V = {"O1", "O2"}; products in every order of V: P1 (in O1 and O2).
  EXPECT_EQ(Query("def V {(\"O1\") ; (\"O2\")}\n"
                  "def AlwaysOrdered(x) : ProductPrice(x,_) and\n"
                  "  forall ((o in V) | OrderProductQuantity(o,x,_))\n"
                  "def output(x) : AlwaysOrdered(x)"),
            R"({("P1")})");
}

// --- Section 3.2: infinite relations ---

TEST_P(PaperExamples, DiscountedProductPrice) {
  EXPECT_EQ(
      Query("def DiscountedproductPrice(x,y) :\n"
            "  exists ((z) | ProductPrice(x,z) and add(y,5,z))\n"
            "def output(x,y) : DiscountedproductPrice(x,y)"),
      R"({("P1", 5); ("P2", 15); ("P3", 25); ("P4", 35)})");
}

TEST_P(PaperExamples, UnsafeAloneIsError) {
  EXPECT_THROW(
      Query("def AdditiveInverse(x,y) : Int(x) and Int(y) and add(x,y,0)\n"
            "def output(x,y) : AdditiveInverse(x,y)"),
      RelError);
}

TEST_P(PaperExamples, UnsafeIntersectedWithFiniteIsFine) {
  // The paper: "an expression that intersects AdditiveInverse with a finite
  // set will be seen as safe and thus evaluated to produce a finite result".
  EXPECT_EQ(
      Query("def AdditiveInverse(x,y) : Int(x) and Int(y) and add(x,y,0)\n"
            "def Fin {(1,-1) ; (2,3) ; (-4,4)}\n"
            "def output(x,y) : Fin(x,y) and AdditiveInverse(x,y)"),
      "{(-4, 4); (1, -1)}");
}

TEST_P(PaperExamples, PsychologicallyPriced) {
  engine_.Insert("ProductPrice", {Tuple({S("P9"), I(199)})});
  EXPECT_EQ(Query("def PsychologicallyPriced(x) :\n"
                  "  exists ((y) | ProductPrice(x,y) and y % 100 = 99)\n"
                  "def output(x) : PsychologicallyPriced(x)"),
            R"({("P9")})");
}

// --- Section 3.3: code flow and recursion ---

TEST_P(PaperExamples, BoughtWithExpensiveProduct) {
  const char* program =
      "def SameOrder(p1, p2) :\n"
      "  exists((o) | OrderProductQuantity(o, p1, _)\n"
      "               and OrderProductQuantity(o, p2, _))\n"
      "def SameOrderDiffProduct(p1, p2) : SameOrder(p1, p2) and p1 != p2\n"
      "def Expensive(p) :\n"
      "  exists ((price) | ProductPrice(p,price) and price > 15)\n"
      "def BoughtWithExpensiveProduct(p) :\n"
      "  exists((x in Expensive) | SameOrderDiffProduct(x, p))\n"
      "def output(p) : BoughtWithExpensiveProduct(p)";
  EXPECT_EQ(Query(program), R"({("P1")})");
}

TEST_P(PaperExamples, RuleOrderIrrelevant) {
  const char* reversed =
      "def output(p) : BoughtWithExpensiveProduct(p)\n"
      "def BoughtWithExpensiveProduct(p) :\n"
      "  exists((x in Expensive) | SameOrderDiffProduct(x, p))\n"
      "def Expensive(p) :\n"
      "  exists ((price) | ProductPrice(p,price) and price > 15)\n"
      "def SameOrderDiffProduct(p1, p2) : SameOrder(p1, p2) and p1 != p2\n"
      "def SameOrder(p1, p2) :\n"
      "  exists((o) | OrderProductQuantity(o, p1, _)\n"
      "               and OrderProductQuantity(o, p2, _))";
  EXPECT_EQ(Query(reversed), R"({("P1")})");
}

TEST_P(PaperExamples, SameOrderDiffProductPairs) {
  EXPECT_EQ(
      Query("def SameOrder(p1, p2) :\n"
            "  exists((o) | OrderProductQuantity(o, p1, _)\n"
            "               and OrderProductQuantity(o, p2, _))\n"
            "def output(p1,p2) : SameOrder(p1,p2) and p1 != p2"),
      R"({("P1", "P2"); ("P2", "P1")})");
}

TEST_P(PaperExamples, TransitiveClosureNonLinear) {
  Engine engine;
  engine.options().lower_recursion = GetParam();
  engine.Insert("E", {Tuple({I(1), I(2)}), Tuple({I(2), I(3)}),
                      Tuple({I(3), I(4)}), Tuple({I(10), I(11)})});
  // Non-linear recursion: TC_E occurs twice on the right-hand side.
  Relation out = engine.Query(
      "def TC_E(x,y) : E(x,y)\n"
      "def TC_E(x,y) : exists((z) | TC_E(x,z) and TC_E(z,y))\n"
      "def output(x,y) : TC_E(x,y)");
  EXPECT_EQ(out.size(), 7u);
  EXPECT_TRUE(out.Contains(Tuple({I(1), I(4)})));
  EXPECT_TRUE(out.Contains(Tuple({I(10), I(11)})));
}

TEST_P(PaperExamples, MultipleRulesAreUnion) {
  EXPECT_EQ(Query("def R(x) : x = 1\n"
                  "def R(x) : x = 2\n"
                  "def output(x) : R(x)"),
            "{(1); (2)}");
}

// --- Section 3.4: output and updates ---

TEST_P(PaperExamples, OutputControlRelation) {
  EXPECT_EQ(Query("def output (x) : exists( (y) | ProductPrice(x,y) and y > "
                  "30)"),
            R"({("P4")})");
}

TEST_P(PaperExamples, InsertAndDeleteControlRelations) {
  // OrderTotal / OrderPaid via aggregation (Section 5.2), then close fully
  // paid orders: O1 has total 2*10+1*20=40 and payments 20+10=30 (open);
  // O2 total 10, paid 10 (closed); O3 total 120, paid 90 (open).
  engine_.Define(
      "def Ord(x) : OrderProductQuantity(x,_,_)\n"
      "def OrderLineAmount(o, p, a) :\n"
      "  exists((q, pr) | OrderProductQuantity(o, p, q) and\n"
      "                   ProductPrice(p, pr) and a = q * pr)\n"
      "def OrderTotal[x in Ord] : sum[OrderLineAmount[x]]\n"
      "def OrderPaymentAmount(x,y,z) :\n"
      "  PaymentOrder(y,x) and PaymentAmount(y,z)\n"
      "def OrderPaid[x in Ord] : sum[OrderPaymentAmount[x]]");

  TxnResult txn = engine_.Exec(
      "def delete (:OrderProductQuantity,x,y,z) :\n"
      "  OrderProductQuantity(x,y,z) and\n"
      "  exists( (u) | OrderPaid(x,u) and OrderTotal(x,u) )\n"
      "def insert (:ClosedOrders,x) :\n"
      "  exists( (u) | OrderPaid(x,u) and OrderTotal(x,u))");
  EXPECT_EQ(txn.inserted, 1u);
  EXPECT_EQ(txn.deleted, 1u);
  EXPECT_EQ(engine_.Base("ClosedOrders").ToString(), R"({("O2")})");
  EXPECT_FALSE(engine_.Base("OrderProductQuantity")
                   .Contains(Tuple({S("O2"), S("P1"), I(1)})));
  EXPECT_TRUE(engine_.Base("OrderProductQuantity")
                  .Contains(Tuple({S("O1"), S("P1"), I(2)})));
}

// --- Section 3.5: integrity constraints ---

TEST_P(PaperExamples, TypeConstraintHolds) {
  engine_.Define(
      "ic integer_quantities() requires\n"
      "  forall((x) | OrderProductQuantity(_,_,x) implies Int(x))");
  EXPECT_NO_THROW(engine_.Exec("def insert(:Dummy, x) : x = 1"));
}

TEST_P(PaperExamples, ViolatedConstraintAbortsTransaction) {
  engine_.Define(
      "ic valid_products(x) requires\n"
      "  OrderProductQuantity(_,x,_) implies ProductPrice(x,_)");
  // Inserting an order line for an unpriced product violates the ic;
  // the transaction must roll back.
  EXPECT_THROW(
      engine_.Exec("def insert(:OrderProductQuantity, o, p, q) :\n"
                   "  o = \"O9\" and p = \"Phantom\" and q = 1"),
      ConstraintViolation);
  EXPECT_FALSE(engine_.Base("OrderProductQuantity")
                   .Contains(Tuple({S("O9"), S("Phantom"), I(1)})));
}

// --- Section 4.1: tuple variables ---

TEST_P(PaperExamples, CartesianProductFixedArity) {
  EXPECT_EQ(Query("def R {(1,2) ; (3,4)}\n"
                  "def S {(5,6)}\n"
                  "def ProductRS(a,b,c,d) : R(a,b) and S(c,d)\n"
                  "def output(a,b,c,d) : ProductRS(a,b,c,d)"),
            "{(1, 2, 5, 6); (3, 4, 5, 6)}");
}

TEST_P(PaperExamples, CartesianProductTupleVariables) {
  EXPECT_EQ(Query("def R {(1,2,3)}\n"
                  "def S {(5,6)}\n"
                  "def ProductRS(x..., y...) : R(x...) and S(y...)\n"
                  "def output : ProductRS"),
            "{(1, 2, 3, 5, 6)}");
}

TEST_P(PaperExamples, PrefixesOfTuples) {
  EXPECT_EQ(Query("def R {(1,2)}\n"
                  "def Prefix(x...) : R(x..., _...)\n"
                  "def output : Prefix"),
            "{(); (1); (1, 2)}");
}

TEST_P(PaperExamples, PermutationsViaTranspositions) {
  Relation out = engine_.Query(
      "def R {(1,2,3)}\n"
      "def Perm(x...) : R(x...)\n"
      "def Perm(x...,a,y...,b,z...) : Perm(x...,b,y...,a,z...)\n"
      "def output : Perm");
  EXPECT_EQ(out.size(), 6u);  // 3! permutations
  EXPECT_TRUE(out.Contains(Tuple({I(3), I(2), I(1)})));
  EXPECT_TRUE(out.Contains(Tuple({I(2), I(3), I(1)})));
}

// --- Sections 4.2/4.3: relation variables and relational application ---

TEST_P(PaperExamples, ProductAsSecondOrderRelationFullApplication) {
  engine_.Define("def R {(1,2) ; (3,4)}\ndef S {(5,6)}");
  EXPECT_EQ(Query("def output : Product(R, S, 1, 2, 5, 6)"), "{()}");
  EXPECT_EQ(Query("def output : Product(R, S, 1, 2, 5, 7)"), "{}");
}

TEST_P(PaperExamples, ProductPartialApplication) {
  engine_.Define("def R {(1,2) ; (3,4)}\ndef S {(5,6)}");
  EXPECT_EQ(Query("def output : Product[R, S]"),
            "{(1, 2, 5, 6); (3, 4, 5, 6)}");
}

TEST_P(PaperExamples, CommaIsCartesianProduct) {
  EXPECT_EQ(Query("def output : (\"P4\", 40)"), R"({("P4", 40)})");
  EXPECT_EQ(engine_.Eval("(PaymentOrder, ProductPrice)").size(), 16u);
}

TEST_P(PaperExamples, PartialApplicationSuffixes) {
  EXPECT_EQ(Query("def output : OrderProductQuantity[\"O1\"]"),
            R"({("P1", 2); ("P2", 1)})");
}

TEST_P(PaperExamples, FullEqualsPartialWhenAllArgsGiven) {
  EXPECT_EQ(Query("def output : OrderProductQuantity[\"O1\",\"P1\",2]"),
            "{()}");
  EXPECT_EQ(Query("def output : OrderProductQuantity(\"O1\",\"P1\",2)"),
            "{()}");
}

// --- Section 4.4: abstraction ---

TEST_P(PaperExamples, RoundAbstractionSetComprehension) {
  EXPECT_EQ(Query("def output : {(x,y) : OrderProductQuantity(x,\"P1\",y)}"),
            R"({("O1", 2); ("O2", 1)})");
}

TEST_P(PaperExamples, SquareAbstractionExample4) {
  // {[x,y] : (OrderProductQuantity[x], PaymentOrder(y,x))}
  Relation out = engine_.Eval(
      "{[x,y] : (OrderProductQuantity[x], PaymentOrder(y,x)) }");
  EXPECT_TRUE(out.Contains(Tuple({S("O1"), S("Pmt1"), S("P1"), I(2)})));
  EXPECT_TRUE(out.Contains(Tuple({S("O1"), S("Pmt1"), S("P2"), I(1)})));
  EXPECT_TRUE(out.Contains(Tuple({S("O1"), S("Pmt3"), S("P1"), I(2)})));
  // O1 has 2 payments x 2 lines, O2 and O3 one payment x one line each.
  EXPECT_EQ(out.size(), 6u);
}

TEST_P(PaperExamples, SquareAbstractionRestrictedRange) {
  engine_.Define("def V {(\"Pmt2\") ; (\"Pmt4\")}");
  EXPECT_EQ(
      Query("def output : {[x, y in V] :\n"
            "  (OrderProductQuantity[x], PaymentOrder(y,x)) }"),
      R"({("O2", "Pmt2", "P1", 1); ("O3", "Pmt4", "P3", 4)})");
}

TEST_P(PaperExamples, WhereIsSugarForConditioning) {
  Relation a = engine_.Eval(
      "{[x,y] : OrderProductQuantity[x] where PaymentOrder(y,x)}");
  Relation b = engine_.Eval(
      "{[x,y] : (OrderProductQuantity[x], PaymentOrder(y,x))}");
  EXPECT_EQ(a, b);
}

// --- Section 5.1: standard library ---

TEST_P(PaperExamples, DotJoin) {
  EXPECT_EQ(Query("def output : PaymentOrder.OrderProductQuantity"),
            engine_
                .Query("def output(p, pr, q) : exists((o) | "
                       "PaymentOrder(p,o) and OrderProductQuantity(o,pr,q))")
                .ToString());
}

TEST_P(PaperExamples, LeftOverride) {
  EXPECT_EQ(Query("def A {(1, 10)}\n"
                  "def B {(1, 99) ; (2, 20)}\n"
                  "def output : left_override[A, B]"),
            "{(1, 10); (2, 20)}");
}

// --- Section 5.2: aggregation and reduce ---

TEST_P(PaperExamples, BasicAggregates) {
  Engine e;
  e.options().lower_recursion = GetParam();
  EXPECT_EQ(e.Eval("sum[{(1);(2);(3)}]").ToString(), "{(6)}");
  EXPECT_EQ(e.Eval("count[{(5);(7);(9)}]").ToString(), "{(3)}");
  EXPECT_EQ(e.Eval("min[{(5);(7);(9)}]").ToString(), "{(5)}");
  EXPECT_EQ(e.Eval("max[{(5);(7);(9)}]").ToString(), "{(9)}");
  EXPECT_EQ(e.Eval("avg[{(2);(4)}]").ToString(), "{(3)}");
}

TEST_P(PaperExamples, SumIsOverWholeRelationNotLastColumn) {
  // sum of {(1,12),(2,12)} is 24 even though the value 12 repeats.
  EXPECT_EQ(Query("def output : sum[{(1,12) ; (2,12)}]"), "{(24)}");
}

TEST_P(PaperExamples, Argmin) {
  EXPECT_EQ(Query("def output : Argmin[{(\"a\", 2) ; (\"b\", 1) ; "
                  "(\"c\", 1)}]"),
            R"({("b"); ("c")})");
}

TEST_P(PaperExamples, GroupedAggregationOrderPaid) {
  const char* program =
      "def Ord(x) : OrderProductQuantity(x,_,_)\n"
      "def OrderPaymentAmount(x,y,z) :\n"
      "  PaymentOrder(y,x) and PaymentAmount(y,z)\n"
      "def OrderPaid[x in Ord] : sum[OrderPaymentAmount[x]]\n"
      "def output : OrderPaid";
  EXPECT_EQ(Query(program), R"({("O1", 30); ("O2", 10); ("O3", 90)})");
}

TEST_P(PaperExamples, GroupedAggregationWithDefault) {
  // Orders without payments get 0 via left override.
  engine_.Insert("OrderProductQuantity", {Tuple({S("O4"), S("P4"), I(1)})});
  const char* program =
      "def Ord(x) : OrderProductQuantity(x,_,_)\n"
      "def OrderPaymentAmount(x,y,z) :\n"
      "  PaymentOrder(y,x) and PaymentAmount(y,z)\n"
      "def OrderPaid[x in Ord] : sum[OrderPaymentAmount[x]] <++ 0\n"
      "def output : OrderPaid";
  EXPECT_EQ(Query(program),
            R"({("O1", 30); ("O2", 10); ("O3", 90); ("O4", 0)})");
}

// --- Section 5.3.1: point-free relational algebra ---

TEST_P(PaperExamples, PointFreeSelectUnion) {
  // sigma_{A1=A2}(R x S) ∪ B
  const char* program =
      "def R {(1) ; (2)}\n"
      "def S {(1) ; (3)}\n"
      "def B {(7, 7)}\n"
      "def Cond12(x1,x2,x...) : {x1=x2}\n"
      "def output : Union[Select[Product[R,S],Cond12],B]";
  EXPECT_EQ(Query(program), "{(1, 1); (7, 7)}");
}

TEST_P(PaperExamples, ProjectionViaAbstraction) {
  EXPECT_EQ(Query("def R {(1,2,3,4) ; (5,6,7,8)}\n"
                  "def output : {(x,y) : R(x,_,y,_...)}"),
            "{(1, 3); (5, 7)}");
}

// --- Section 5.3.2: linear algebra ---

TEST_P(PaperExamples, ScalarProduct) {
  // u=(4,2), v=(3,6): u.v = 24.
  EXPECT_EQ(Query("def U {(1,4) ; (2,2)}\n"
                  "def V {(1,3) ; (2,6)}\n"
                  "def output : ScalarProd[U, V]"),
            "{(24)}");
}

TEST_P(PaperExamples, MatrixMult) {
  // [[1,2],[3,4]] * [[5,6],[7,8]] = [[19,22],[43,50]]
  const char* program =
      "def A {(1,1,1) ; (1,2,2) ; (2,1,3) ; (2,2,4)}\n"
      "def B {(1,1,5) ; (1,2,6) ; (2,1,7) ; (2,2,8)}\n"
      "def output : MatrixMult[A, B]";
  EXPECT_EQ(Query(program),
            "{(1, 1, 19); (1, 2, 22); (2, 1, 43); (2, 2, 50)}");
}

TEST_P(PaperExamples, MatrixVector) {
  // [[1,2],[3,4]] * (5,6) = (17, 39)
  EXPECT_EQ(Query("def A {(1,1,1) ; (1,2,2) ; (2,1,3) ; (2,2,4)}\n"
                  "def V {(1,5) ; (2,6)}\n"
                  "def output : MatrixVector[A, V]"),
            "{(1, 17); (2, 39)}");
}

// --- Section 5.4: graph library ---

TEST_P(PaperExamples, ApspTeaser) {
  // Path graph 1 -> 2 -> 3.
  engine_.Define("def N {(1);(2);(3)}\n"
                 "def NN {(1,2) ; (2,3)}");
  EXPECT_EQ(Query("def output : APSP[N, NN, 1, 3]"), "{(2)}");
  EXPECT_EQ(Query("def output : APSP[N, NN]"),
            "{(1, 1, 0); (1, 2, 1); (1, 3, 2); (2, 2, 0); (2, 3, 1); "
            "(3, 3, 0)}");
}

TEST_P(PaperExamples, ApspBothFormulationsAgree) {
  engine_.Define("def N {(1);(2);(3);(4)}\n"
                 "def NN {(1,2) ; (2,3) ; (3,4) ; (1,3)}");
  EXPECT_EQ(engine_.Query("def output : APSP[N, NN]"),
            engine_.Query("def output : APSP_guarded[N, NN]"));
}

TEST_P(PaperExamples, PageRankConverges) {
  // A 3-cycle: column-stochastic matrix; PageRank converges to uniform.
  engine_.Define(
      "def G {(1,3,1.0) ; (2,1,1.0) ; (3,2,1.0)}");
  Relation out = engine_.Query("def output : PageRank[G]");
  EXPECT_EQ(out.size(), 3u);
  for (const Tuple& t : out.SortedTuples()) {
    ASSERT_EQ(t.arity(), 2u);
    EXPECT_NEAR(t[1].AsDouble(), 1.0 / 3.0, 1e-9);
  }
}

// --- Addendum A: ?/& disambiguation ---

TEST_P(PaperExamples, AddUpDisambiguation) {
  // The paper's listing writes the digit-sum rule with `where x >= 0` and
  // no base case, which has an empty least fixpoint (addUp[0] would require
  // addUp[0]); we add the intended base case addUp[0] = 0.
  engine_.Define(
      "def addUp[{A}] : sum[A]\n"
      "def addUp[x in Int] : 0 where x = 0\n"
      "def addUp[x in Int] : x%10 + addUp[(x-x%10)/10] where x > 0");
  EXPECT_EQ(Query("def output : addUp[?{11;22}]"), "{(2); (4)}");
  EXPECT_EQ(Query("def output : addUp[&{11;22}]"), "{(33)}");
  EXPECT_THROW(Query("def output : addUp[{11;22}]"), RelError);
}

}  // namespace
}  // namespace rel
