// E2: the grammar of Figure 2 plus the paper's sugar, production by
// production. Shapes are checked via the AST printer.

#include "core/parser.h"

#include <gtest/gtest.h>

#include "base/error.h"
#include "core/lexer.h"

namespace rel {
namespace {

std::string Expr(const std::string& src) {
  return ParseExpression(src)->ToString();
}

std::string Rule(const std::string& src) {
  Program p = ParseProgram(src);
  EXPECT_EQ(p.defs.size(), 1u);
  return p.defs[0].ToString();
}

// --- lexer ---

TEST(Lexer, TokenKinds) {
  auto tokens = Lex("def x... _ _... 12 3.5 \"s\" <++ <= != :name");
  std::vector<TokenKind> kinds;
  for (const Token& t : tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds,
            (std::vector<TokenKind>{
                TokenKind::kDef, TokenKind::kTupleVar, TokenKind::kWildcard,
                TokenKind::kWildcardTuple, TokenKind::kInt, TokenKind::kFloat,
                TokenKind::kString, TokenKind::kLeftOverride, TokenKind::kLe,
                TokenKind::kNeq, TokenKind::kColon, TokenKind::kIdent,
                TokenKind::kEof}));
}

TEST(Lexer, CommentsAndEscapes) {
  auto tokens = Lex("a // line comment\n /* block\n comment */ \"x\\n\\\"y\"");
  EXPECT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1].text, "x\n\"y");
}

TEST(Lexer, Errors) {
  EXPECT_THROW(Lex("\"unterminated"), ParseError);
  EXPECT_THROW(Lex("/* unterminated"), ParseError);
  EXPECT_THROW(Lex("#"), ParseError);
  EXPECT_THROW(Lex("! x"), ParseError);
}

TEST(Lexer, NumberEdgeCases) {
  EXPECT_EQ(Lex("1.5e2")[0].float_value, 150.0);
  EXPECT_EQ(Lex("2e-1")[0].float_value, 0.2);
  // '.' not followed by a digit is the dot-join operator.
  auto tokens = Lex("A.B");
  EXPECT_EQ(tokens[1].kind, TokenKind::kDot);
}

// --- rule forms ---

TEST(Parser, BasicRuleForms) {
  EXPECT_EQ(Rule("def R(x,y) : E(x,y)"), "def R(x, y) : E(x, y)");
  EXPECT_EQ(Rule("def R[x] : F[x]"), "def R[x] : F[x]");
  EXPECT_EQ(Rule("def R {(x) : E(x)}"), "def R(x) : E(x)");
  EXPECT_EQ(Rule("def R {(1,2) ; (3,4)}"), "def R[] : {(1, 2); (3, 4)}");
  EXPECT_EQ(Rule("def R = E"), "def R[] : E");
  EXPECT_EQ(Rule("def log[x, y] = rel_primitive_log[x, y]"),
            "def log[x, y] : rel_primitive_log[x, y]");
}

TEST(Parser, HeadBindings) {
  EXPECT_EQ(Rule("def APSP({V},{E},x,y,0) : V(x)"),
            "def APSP({V}, {E}, x, y, 0) : V(x)");
  EXPECT_EQ(Rule("def OrderPaid[x in Ord] : sum[OPA[x]]"),
            "def OrderPaid[x in Ord] : sum[OPA[x]]");
  EXPECT_EQ(Rule("def P(x...) : R(x...)"), "def P(x...) : R(x...)");
  EXPECT_EQ(Rule("def D(:Name, x) : R(x)"),
            "def D(rel:\"Name\", x) : R(x)");
}

TEST(Parser, IntegrityConstraints) {
  Program p = ParseProgram(
      "ic valid(x) requires R(x) implies S(x)");
  ASSERT_EQ(p.defs.size(), 1u);
  EXPECT_TRUE(p.defs[0].is_ic);
  EXPECT_EQ(p.defs[0].params.size(), 1u);
}

TEST(Parser, InlineAnnotation) {
  Program p = ParseProgram("@inline def add[x, y] = rel_primitive_add[x, y]");
  EXPECT_TRUE(p.defs[0].inline_hint);
  EXPECT_THROW(ParseProgram("@nosuch def f : 1"), ParseError);
}

TEST(Parser, OperatorDefinitions) {
  Program p = ParseProgram("def (+)(x, y, z) : rel_primitive_add(x, y, z)");
  EXPECT_EQ(p.defs[0].name, "+");
}

// --- expressions ---

TEST(Parser, InfixDesugaring) {
  EXPECT_EQ(Expr("1 + 2 * 3"),
            "rel_primitive_add[1, rel_primitive_multiply[2, 3]]");
  EXPECT_EQ(Expr("(1 + 2) * 3"),
            "rel_primitive_multiply[rel_primitive_add[1, 2], 3]");
  EXPECT_EQ(Expr("x = y"), "rel_primitive_eq(x, y)");
  EXPECT_EQ(Expr("x - 1"), "rel_primitive_subtract[x, 1]");
  EXPECT_EQ(Expr("2 ^ 3 ^ 2"),  // right associative
            "rel_primitive_power[2, rel_primitive_power[3, 2]]");
  EXPECT_EQ(Expr("-x"), "rel_primitive_negate[x]");
  EXPECT_EQ(Expr("-5"), "-5");  // literal folding
}

TEST(Parser, DotJoinAndLeftOverride) {
  EXPECT_EQ(Expr("A.B"), "dot_join[&{A}, &{B}]");
  EXPECT_EQ(Expr("A <++ B"), "left_override[&{A}, &{B}]");
  EXPECT_EQ(Expr("A.(min[A])"), "dot_join[&{A}, &{min[A]}]");
}

TEST(Parser, BooleanConnectives) {
  EXPECT_EQ(Expr("a(x) and not b(x)"), "(a(x) and not b(x))");
  EXPECT_EQ(Expr("a(x) or b(x)"), "(a(x) or b(x))");
  // implies desugars to not/or.
  EXPECT_EQ(Expr("a(x) implies b(x)"), "(not a(x) or b(x))");
}

TEST(Parser, Quantifiers) {
  EXPECT_EQ(Expr("exists((x) | R(x,y))"), "exists((x) | R(x, y))");
  EXPECT_EQ(Expr("forall((o in V) | R(o))"), "forall((o in V) | R(o))");
  EXPECT_EQ(Expr("exists((x, y) | R(x,y))"), "exists((x, y) | R(x, y))");
  EXPECT_EQ(Expr("exists((t...) | R(t...))"), "exists((t...) | R(t...))");
}

TEST(Parser, ProductsAndUnions) {
  EXPECT_EQ(Expr("(A, B)"), "(A, B)");
  EXPECT_EQ(Expr("{A ; B}"), "{A; B}");
  EXPECT_EQ(Expr("{(1,2) ; (3,4)}"), "{(1, 2); (3, 4)}");
  EXPECT_EQ(Expr("()"), "true");
  EXPECT_EQ(Expr("{}"), "false");
}

TEST(Parser, Abstractions) {
  EXPECT_EQ(Expr("{(x,y) : R(x,y)}"), "{(x, y): R(x, y)}");
  EXPECT_EQ(Expr("{[x] : R[x]}"), "{[x]: R[x]}");
  EXPECT_EQ(Expr("[k] : U[k]"), "{[k]: U[k]}");
  EXPECT_EQ(Expr("{[x, y in V] : R[x,y]}"), "{[x, y in V]: R[x, y]}");
  EXPECT_EQ(Expr("(x,y) : R(x,_,y,_...)"), "{(x, y): R(x, _, y, _...)}");
}

TEST(Parser, Applications) {
  EXPECT_EQ(Expr("F[a,b]"), "F[a, b]");
  EXPECT_EQ(Expr("F(a,b,c)"), "F(a, b, c)");
  EXPECT_EQ(Expr("APSP[V,E](z,y,j-1)"),
            "APSP[V, E](z, y, rel_primitive_subtract[j, 1])");
  EXPECT_EQ(Expr("R[_, x..., _...]"), "R[_, x..., _...]");
  EXPECT_EQ(Expr("addUp[?{11;22}]"), "addUp[?{{11; 22}}]");
  EXPECT_EQ(Expr("addUp[&{11;22}]"), "addUp[&{{11; 22}}]");
  EXPECT_EQ(Expr("reduce[add, A]"), "reduce[add, A]");
}

TEST(Parser, WhereClauses) {
  EXPECT_EQ(Expr("1.0/d where range(1,d,1,i)"),
            "(rel_primitive_divide[1.0, d] where range(1, d, 1, i))");
  EXPECT_EQ(Expr("x where a(x) where b(x)"),
            "((x where a(x)) where b(x))");
}

TEST(Parser, RuleOrderDoesNotMatterToParsing) {
  Program p = ParseProgram(
      "def a(x) : b(x)\n"
      "def b(x) : x = 1");
  EXPECT_EQ(p.defs.size(), 2u);
}

TEST(Parser, Errors) {
  EXPECT_THROW(ParseProgram("def"), ParseError);
  EXPECT_THROW(ParseProgram("def R(x : E(x)"), ParseError);
  EXPECT_THROW(ParseProgram("R(x)"), ParseError);  // missing def
  EXPECT_THROW(ParseExpression("exists(x | )"), ParseError);
  EXPECT_THROW(ParseExpression("(1,"), ParseError);
  EXPECT_THROW(ParseExpression("[x"), ParseError);
}

TEST(Parser, PositionsInErrors) {
  try {
    ParseProgram("def R(x) :\n  E(x,\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_GE(e.line(), 2);
  }
}

}  // namespace
}  // namespace rel
