// Tests for the recursion-lowering pass (src/core/lowering.h): which
// components qualify, extent equality against the tuple-at-a-time fixpoint
// (byte-identical sorted renderings), thread-count invariance, the
// fixpoint-cap interplay, and the fallback for everything outside the
// Datalog fragment.

#include "core/lowering.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "base/error.h"
#include "benchutil/generators.h"
#include "core/engine.h"
#include "core/parser.h"

namespace rel {
namespace {

Value I(int64_t v) { return Value::Int(v); }

std::vector<std::shared_ptr<Def>> Defs(const std::string& source) {
  Program program = ParseProgram(source);
  std::vector<std::shared_ptr<Def>> out;
  for (Def& def : program.defs) {
    out.push_back(std::make_shared<Def>(std::move(def)));
  }
  return out;
}

/// Queries `pred` twice — classic fixpoint and lowered — and checks the
/// extents are equal and render byte-identically. Returns the lowered
/// engine's stats-visible component count for further assertions.
int ExpectLoweredEqualsInterp(const std::string& source,
                              const std::vector<Tuple>& edges,
                              const std::string& pred,
                              int num_threads = 1) {
  Engine classic;
  classic.options().lower_recursion = false;
  classic.Insert("edge", edges);
  Relation expected = classic.Query(source + "\ndef output : " + pred);
  EXPECT_EQ(classic.last_lowering_stats().components_lowered, 0);

  Engine lowered;
  lowered.options().num_threads = num_threads;
  lowered.Insert("edge", edges);
  Relation got = lowered.Query(source + "\ndef output : " + pred);
  EXPECT_EQ(expected, got) << "extent diverges for '" << pred << "'";
  EXPECT_EQ(expected.ToString(), got.ToString())
      << "sorted rendering not byte-identical for '" << pred << "'";
  return lowered.last_lowering_stats().components_lowered;
}

const char kTC[] =
    "def tc(x, y) : edge(x, y)\n"
    "def tc(x, z) : exists((y) | edge(x, y) and tc(y, z))";

TEST(Lowering, TransitiveClosureTakesTheDatalogPath) {
  std::vector<Tuple> edges = benchutil::RandomGraph(24, 70, 3);
  EXPECT_EQ(ExpectLoweredEqualsInterp(kTC, edges, "tc"), 1);
}

TEST(Lowering, ChainClosureAndThreadScalingAgree) {
  std::vector<Tuple> edges = benchutil::ChainGraph(48);
  EXPECT_EQ(ExpectLoweredEqualsInterp(kTC, edges, "tc", /*num_threads=*/1), 1);
  EXPECT_EQ(ExpectLoweredEqualsInterp(kTC, edges, "tc", /*num_threads=*/4), 1);
}

TEST(Lowering, MutualRecursionLowersAsOneComponent) {
  const std::string source =
      "def odd(x, y) : edge(x, y)\n"
      "def odd(x, z) : exists((y) | edge(x, y) and even(y, z))\n"
      "def even(x, z) : exists((y) | edge(x, y) and odd(y, z))";
  std::vector<Tuple> edges = benchutil::RandomGraph(16, 40, 11);
  EXPECT_EQ(ExpectLoweredEqualsInterp(source, edges, "odd"), 1);
  EXPECT_EQ(ExpectLoweredEqualsInterp(source, edges, "even"), 1);
}

TEST(Lowering, SameGenerationWithComparisonLowers) {
  const std::string source =
      "def sg(x, y) : exists((p) | edge(p, x) and edge(p, y) and x != y)\n"
      "def sg(x, y) : exists((a, b) | edge(a, x) and edge(b, y) and sg(a, b))";
  std::vector<Tuple> edges = benchutil::RandomGraph(14, 30, 5);
  EXPECT_EQ(ExpectLoweredEqualsInterp(source, edges, "sg"), 1);
}

TEST(Lowering, ArithmeticBoundedRecursionLowers) {
  const std::string source =
      "def path(x, y, d) : edge(x, y) and d = 1\n"
      "def path(x, z, d) : exists((y, e) | path(x, y, e) and edge(y, z) "
      "and d = e + 1 and e < 5)";
  std::vector<Tuple> edges = benchutil::RandomGraph(12, 30, 7);
  EXPECT_EQ(ExpectLoweredEqualsInterp(source, edges, "path"), 1);
}

TEST(Lowering, ExternalNegationInsideRecursionLowers) {
  // Negating an out-of-component name is monotone for the SCC and becomes a
  // stratified Datalog negation.
  const std::string source =
      "def blocked(x) : x = 2\n"
      "def reach(y) : exists((x) | edge(x, y) and x = 0)\n"
      "def reach(z) : exists((y) | reach(y) and edge(y, z) "
      "and not blocked(y))";
  std::vector<Tuple> edges = benchutil::RandomGraph(16, 48, 21);
  EXPECT_EQ(ExpectLoweredEqualsInterp(source, edges, "reach"), 1);
}

TEST(Lowering, DerivedExternalExtentIsMaterialized) {
  // The recursive component joins a *derived* non-recursive relation: its
  // extent must be evaluated and fed to the Datalog program as EDB facts.
  const std::string source =
      "def fwd(x, y) : edge(x, y) and x < y\n"
      "def up(x, y) : fwd(x, y)\n"
      "def up(x, z) : exists((y) | fwd(x, y) and up(y, z))";
  std::vector<Tuple> edges = benchutil::RandomGraph(18, 54, 13);
  EXPECT_EQ(ExpectLoweredEqualsInterp(source, edges, "up"), 1);
}

TEST(Lowering, BaseFactsUnionWithLoweredRules) {
  // A member name holding base tuples *and* rules: the stored facts seed
  // the Datalog program and survive into the extent.
  Engine lowered;
  lowered.Insert("edge", {Tuple({I(1), I(2)})});
  lowered.Insert("tc", {Tuple({I(7), I(8)})});
  Relation got = lowered.Query(std::string(kTC) + "\ndef output : tc");
  EXPECT_EQ(lowered.last_lowering_stats().components_lowered, 1);
  EXPECT_TRUE(got.Contains(Tuple({I(7), I(8)})));
  EXPECT_TRUE(got.Contains(Tuple({I(1), I(2)})));

  Engine classic;
  classic.options().lower_recursion = false;
  classic.Insert("edge", {Tuple({I(1), I(2)})});
  classic.Insert("tc", {Tuple({I(7), I(8)})});
  EXPECT_EQ(classic.Query(std::string(kTC) + "\ndef output : tc"), got);
}

// --- fallback: non-qualifying components stay on the Interp path -------------

TEST(Lowering, ReplacementComponentsAreNotAttempted) {
  // Non-monotone self-reference uses replacement iteration; the lowering
  // must not even try (UsesReplacement gates it before translation).
  Engine engine;
  engine.Insert("edge", {Tuple({I(1), I(2)})});
  Relation out = engine.Query(
      "def winning(x) : exists((y) | edge(x, y) and not winning(y))\n"
      "def output : winning");
  EXPECT_EQ(engine.last_lowering_stats().components_lowered, 0);
  EXPECT_EQ(engine.last_lowering_stats().components_rejected, 0);
  EXPECT_EQ(out.ToString(), "{(1)}");
}

TEST(Lowering, DisjunctionLowersViaDnfSplit) {
  const std::string source =
      "def r(x, y) : edge(x, y) or edge(y, x)\n"
      "def r(x, z) : exists((y) | r(x, y) and r(y, z))";
  std::vector<Tuple> edges = benchutil::RandomGraph(10, 20, 17);
  // Disjunctive bodies are split into one Datalog rule per DNF branch, so
  // the component stays on the fast path.
  Engine lowered;
  lowered.Insert("edge", edges);
  Relation got = lowered.Query(source + "\ndef output : r");
  EXPECT_EQ(lowered.last_lowering_stats().components_lowered, 1);
  EXPECT_EQ(lowered.last_lowering_stats().components_rejected, 0);

  Engine classic;
  classic.options().lower_recursion = false;
  classic.Insert("edge", edges);
  EXPECT_EQ(classic.Query(source + "\ndef output : r"), got);
}

TEST(Lowering, DnfOverflowFallsBackToInterp) {
  // Each conjunct doubles the DNF branch count; six of them exceed the
  // 16-branch cap, so the component is rejected and the interpreter
  // answers — still correctly.
  std::string body = "(edge(x, y) or edge(y, x))";
  std::string source = "def r(x, y) : " + body;
  for (int i = 0; i < 5; ++i) source += " and " + body;
  source += "\ndef r(x, z) : exists((y) | r(x, y) and r(y, z))";
  std::vector<Tuple> edges = benchutil::RandomGraph(8, 16, 3);
  Engine lowered;
  lowered.Insert("edge", edges);
  Relation got = lowered.Query(source + "\ndef output : r");
  EXPECT_EQ(lowered.last_lowering_stats().components_lowered, 0);
  EXPECT_EQ(lowered.last_lowering_stats().components_rejected, 1);

  Engine classic;
  classic.options().lower_recursion = false;
  classic.Insert("edge", edges);
  EXPECT_EQ(classic.Query(source + "\ndef output : r"), got);
}

TEST(Lowering, SecondOrderRecursionFallsBackToInterp) {
  // The stdlib TC takes a relation argument — second-order, so the
  // component cannot lower; the solver path must still answer.
  Engine engine;
  engine.Insert("E", {Tuple({I(1), I(2)}), Tuple({I(2), I(3)})});
  Relation out = engine.Query("def output : TC[E]");
  EXPECT_EQ(engine.last_lowering_stats().components_lowered, 0);
  EXPECT_EQ(out.ToString(), "{(1, 2); (1, 3); (2, 3)}");
}

TEST(Lowering, AggregationInsideRecursionFallsBack) {
  Engine engine;
  engine.Insert("edge", {Tuple({I(1), I(2)}), Tuple({I(2), I(3)})});
  // count[...] over the component's own predicate is non-monotone:
  // replacement mode, never lowered.
  Relation out = engine.Query(
      "def grow(x) : x = 1\n"
      "def grow(x) : x = count[grow] + 1 and x < 4\n"
      "def output : grow");
  EXPECT_EQ(engine.last_lowering_stats().components_lowered, 0);
  EXPECT_FALSE(out.empty());
}

TEST(Lowering, ArithmeticInsideNegatedAtomFallsBack) {
  // `not r(x + 1)`: the assignment for x + 1 would be emitted positively,
  // outside the negation, so a failing arithmetic ("a" + 1) would falsify
  // the whole body where Rel makes the negation vacuously true. The
  // component must reject and both paths must agree — including on the
  // string row, which only survives via the vacuous negation.
  const std::string source =
      "def q(x) : x = \"a\" or x = 1\n"
      "def r(x) : x = 99\n"
      "def p(x) : q(x) and not r(x + 1)\n"
      "def p(x) : exists((y) | p(y) and edge(y, x))";
  Engine lowered;
  lowered.Insert("edge", {Tuple({I(1), I(5)})});
  Relation got = lowered.Query(source + "\ndef output : p");
  EXPECT_EQ(lowered.last_lowering_stats().components_lowered, 0);
  EXPECT_EQ(lowered.last_lowering_stats().components_rejected, 1);
  EXPECT_TRUE(got.Contains(Tuple({Value::String("a")})));

  Engine classic;
  classic.options().lower_recursion = false;
  classic.Insert("edge", {Tuple({I(1), I(5)})});
  EXPECT_EQ(classic.Query(source + "\ndef output : p"), got);
}

// --- negated comparisons: kUnordered-faithful inverses ------------------------

TEST(Lowering, NegatedComparisonKeepsUnorderedRows) {
  // `not (x < 1)` must hold for x = "a": comparing a string with an int is
  // kUnordered, so the comparison is false and its negation true — exactly
  // Rel's semantics. The naive inverse `x >= 1` is ALSO false on kUnordered
  // and would silently drop the string row, which is why this construct
  // used to reject the whole component. It now lowers via
  // datalog::Literal::NegatedCompare and must agree with the classic path.
  const std::string source =
      "def q(x) : x = \"a\" or x = 0 or x = 5\n"
      "def p(x) : q(x) and not (x < 1)\n"
      "def p(y) : exists((x) | p(x) and edge(x, y))";
  std::vector<Tuple> edges = {Tuple({I(5), I(9)})};

  Engine lowered;
  lowered.Insert("edge", edges);
  Relation got = lowered.Query(source + "\ndef output : p");
  EXPECT_EQ(lowered.last_lowering_stats().components_lowered, 1)
      << "negated comparison must lower, not reject";
  EXPECT_TRUE(got.Contains(Tuple({Value::String("a")})));  // kUnordered row
  EXPECT_TRUE(got.Contains(Tuple({I(5)})));
  EXPECT_TRUE(got.Contains(Tuple({I(9)})));   // derived through the recursion
  EXPECT_FALSE(got.Contains(Tuple({I(0)})));  // 0 < 1 holds, negation drops

  Engine classic;
  classic.options().lower_recursion = false;
  classic.Insert("edge", edges);
  Relation expected = classic.Query(source + "\ndef output : p");
  EXPECT_EQ(expected, got);
  EXPECT_EQ(expected.ToString(), got.ToString());
}

TEST(Lowering, NegatedEqualityIsNotNeq) {
  // `not (x = 1)` and `x != 1` differ on kUnordered operands: both sides of
  // the Datalog engine's kNeq require comparability, so "a" != 1 is false,
  // while not ("a" = 1) is true. The lowering must emit the complement of
  // equality, never kNeq.
  const std::string source =
      "def q(x) : x = \"a\" or x = 1 or x = 2\n"
      "def keep(x) : q(x) and not (x = 1)\n"
      "def keep(y) : exists((x) | keep(x) and edge(x, y))";
  std::vector<Tuple> edges = {Tuple({I(2), I(7)})};

  Engine lowered;
  lowered.Insert("edge", edges);
  Relation got = lowered.Query(source + "\ndef output : keep");
  EXPECT_EQ(lowered.last_lowering_stats().components_lowered, 1);
  EXPECT_TRUE(got.Contains(Tuple({Value::String("a")})));
  EXPECT_TRUE(got.Contains(Tuple({I(2)})));
  EXPECT_TRUE(got.Contains(Tuple({I(7)})));
  EXPECT_FALSE(got.Contains(Tuple({I(1)})));

  Engine classic;
  classic.options().lower_recursion = false;
  classic.Insert("edge", edges);
  EXPECT_EQ(classic.Query(source + "\ndef output : keep"), got);
}

TEST(Lowering, ComputedArgumentInNegatedComparisonStillFallsBack) {
  // `not (x + 1 < 5)`: the auxiliary assignment for x + 1 would sit outside
  // the negation, so a failing arithmetic ("a" + 1) would falsify the body
  // where Rel makes the negation vacuously true. Must reject and agree.
  const std::string source =
      "def q(x) : x = \"a\" or x = 1 or x = 9\n"
      "def p(x) : q(x) and not (x + 1 < 5)\n"
      "def p(y) : exists((x) | p(x) and edge(x, y))";
  std::vector<Tuple> edges = {Tuple({I(9), I(3)})};

  Engine lowered;
  lowered.Insert("edge", edges);
  Relation got = lowered.Query(source + "\ndef output : p");
  EXPECT_EQ(lowered.last_lowering_stats().components_lowered, 0);
  EXPECT_EQ(lowered.last_lowering_stats().components_rejected, 1);
  // The string row survives only through the vacuous negation.
  EXPECT_TRUE(got.Contains(Tuple({Value::String("a")})));

  Engine classic;
  classic.options().lower_recursion = false;
  classic.Insert("edge", edges);
  EXPECT_EQ(classic.Query(source + "\ndef output : p"), got);
}

// --- demand transformation through the engine ---------------------------------

TEST(Lowering, DemandTransformAnswersPointQueriesFromTheCone) {
  // End-to-end wiring: with demand_transform on, a bound application of a
  // recursive component evaluates only the demanded cone (magic-set
  // rewrite on the lowered program) and matches the full evaluation.
  std::vector<Tuple> edges = benchutil::ChainGraph(32);

  Engine full;
  full.Insert("edge", edges);
  Relation expected = full.Query(std::string(kTC) + "\ndef output(y) : tc(0, y)");
  EXPECT_EQ(full.last_lowering_stats().components_demanded, 0);

  Engine demand;
  demand.options().demand_transform = true;
  demand.Insert("edge", edges);
  Relation got = demand.Query(std::string(kTC) + "\ndef output(y) : tc(0, y)");
  EXPECT_EQ(demand.last_lowering_stats().components_demanded, 1);
  EXPECT_EQ(demand.last_lowering_stats().components_lowered, 0)
      << "the demanded query must not also compute the full extent";
  EXPECT_EQ(demand.last_lowering_stats().demanded_tuples, 31u);
  EXPECT_EQ(expected, got);
  EXPECT_EQ(expected.ToString(), got.ToString());
}

TEST(Lowering, DemandedExtentsMemoizePerPattern) {
  std::vector<Tuple> edges = benchutil::ChainGraph(16);
  Engine demand;
  demand.options().demand_transform = true;
  demand.Insert("edge", edges);
  // Two distinct bound applications in one transaction: one demanded
  // evaluation each; a repeat of the same pattern hits the memo.
  Relation out = demand.Query(
      std::string(kTC) +
      "\ndef a(y) : tc(0, y)\ndef b(y) : tc(3, y)\ndef c(y) : tc(0, y)\n"
      "def output(x, y) : a(y) and x = 1\n"
      "def output(x, y) : b(y) and x = 2\n"
      "def output(x, y) : c(y) and x = 3");
  EXPECT_EQ(demand.last_lowering_stats().components_demanded, 2);
  EXPECT_EQ(out.size(), 15u + 12u + 15u);
}

TEST(Lowering, DemandPatternCutoffFallsBackToOneFullEvaluation) {
  // Many distinct bound probes of one component must not run a cone
  // fixpoint each: after kMaxDemandPatterns (8) distinct patterns the
  // interpreter evaluates the full extent once and serves every later
  // lookup from it. Answers stay identical to the demand-off path.
  std::vector<Tuple> edges = benchutil::ChainGraph(16);
  std::string probes;
  for (int i = 0; i < 12; ++i) {
    probes += "def output(x, y) : tc(" + std::to_string(i) + ", y) and x = " +
              std::to_string(i) + "\n";
  }

  Engine full;
  full.Insert("edge", edges);
  Relation expected = full.Query(std::string(kTC) + "\n" + probes);

  Engine demand;
  demand.options().demand_transform = true;
  demand.Insert("edge", edges);
  Relation got = demand.Query(std::string(kTC) + "\n" + probes);
  EXPECT_EQ(expected, got);
  EXPECT_EQ(demand.last_lowering_stats().components_demanded, 8)
      << "demand must stop at the per-component pattern cutoff";
}

TEST(Lowering, ZeroIterationCapDoesNotUnboundTheLoweredFixpoint) {
  // InterpOptions::max_iterations = 0 is a strict cap; to the Datalog
  // engine 0 means unbounded. The lowering must clamp, or a divergent
  // lowered component would hang forever instead of throwing.
  for (bool lower : {false, true}) {
    Engine engine;
    engine.options().lower_recursion = lower;
    engine.options().max_iterations = 0;
    try {
      engine.Query(
          "def n(x) : x = 0\n"
          "def n(x) : exists((y) | n(y) and x = y + 1)\n"
          "def output : n");
      FAIL() << "expected non-convergence (lower_recursion=" << lower << ")";
    } catch (const RelError& e) {
      EXPECT_EQ(e.kind(), ErrorKind::kNonConvergent);
    }
  }
}

TEST(Lowering, RejectionIsRememberedPerComponent) {
  // A rejected component must be translated at most once per Interp; the
  // second member hitting the hook reuses the failure.
  Database db;
  db.Insert("edge", Tuple({I(1), I(2)}));
  InterpOptions options;
  Interp interp(&db,
                Defs("def a(x, y) : edge(x, y) and abs(x, y)\n"
                     "def a(x, z) : exists((y) | a(x, y) and b(y, z))\n"
                     "def b(x, z) : exists((y) | a(x, y) and edge(y, z))"),
                options);
  interp.EvalInstance("a", 0, {});
  interp.EvalInstance("b", 0, {});
  EXPECT_EQ(interp.lowering_stats().components_rejected, 1);
  EXPECT_EQ(interp.lowering_stats().components_lowered, 0);
  ASSERT_EQ(interp.lowering_stats().rejection_notes.size(), 1u);
}

// --- the LowerComponent translator directly ----------------------------------

TEST(LowerComponent, TranslatesTCAndClassifiesNames) {
  auto defs = Defs(kTC);
  ProgramAnalysis analysis(defs);
  std::string why;
  auto lowered = LowerComponent("tc", analysis, defs, &why);
  ASSERT_TRUE(lowered.has_value()) << why;
  EXPECT_EQ(lowered->members, std::vector<std::string>{"tc"});
  EXPECT_EQ(lowered->externals, std::vector<std::string>{"edge"});
  EXPECT_EQ(lowered->program.rules().size(), 2u);
}

TEST(LowerComponent, RejectsOutsideTheFragment) {
  struct Case {
    const char* source;
    const char* name;
  };
  const Case cases[] = {
      // Unsupported builtin.
      {"def t(x, y) : edge(x, y) and abs(x, y)\n"
       "def t(x, z) : exists((y) | t(x, y) and t(y, z))",
       "t"},
      // Second-order parameter inside the component.
      {"def t[{A}] : A\ndef t(x) : exists((y) | t(y) and edge(y, x))", "t"},
      // Negated builtin application (its auxiliary binding cannot be
      // emitted under the negation).
      {"def t(x) : exists((y) | edge(x, y)) and not range(1, 5, 1, x)\n"
       "def t(x) : exists((y) | t(y) and edge(y, x))",
       "t"},
  };
  for (const Case& c : cases) {
    auto defs = Defs(c.source);
    ProgramAnalysis analysis(defs);
    std::string why;
    EXPECT_FALSE(LowerComponent(c.name, analysis, defs, &why).has_value())
        << c.source;
    EXPECT_FALSE(why.empty()) << c.source;
  }
}

// --- fixpoint cap interplay ---------------------------------------------------

TEST(Lowering, CapSurvivesTheLowering) {
  // Value-generating recursion fits the Datalog fragment but never
  // converges; InterpOptions::max_iterations must cap it on both paths
  // with a diagnostic naming the component.
  for (bool lower : {false, true}) {
    Engine engine;
    engine.options().lower_recursion = lower;
    engine.options().max_iterations = 64;
    try {
      engine.Query(
          "def n(x) : x = 0\n"
          "def n(x) : exists((y) | n(y) and x = y + 1)\n"
          "def output : n");
      FAIL() << "expected non-convergence (lower_recursion=" << lower << ")";
    } catch (const RelError& e) {
      EXPECT_EQ(e.kind(), ErrorKind::kNonConvergent);
      EXPECT_NE(std::string(e.what()).find("n"), std::string::npos);
      EXPECT_NE(std::string(e.what()).find("max_iterations"),
                std::string::npos);
    }
  }
}

TEST(Lowering, TerminatingRecursionIgnoresTightInterpCapsLessDeepThanChain) {
  // A lowered fixpoint needs as many rounds as the longest derivation
  // chain; the cap applies to rounds on both paths, so both succeed when
  // the cap exceeds the chain depth and both diagnose when it does not.
  std::vector<Tuple> edges = benchutil::ChainGraph(12);
  for (bool lower : {false, true}) {
    Engine ok;
    ok.options().lower_recursion = lower;
    ok.options().max_iterations = 40;
    ok.Insert("edge", edges);
    EXPECT_EQ(ok.Query(std::string(kTC) + "\ndef output : tc").size(),
              12u * 11u / 2u);

    Engine capped;
    capped.options().lower_recursion = lower;
    capped.options().max_iterations = 3;
    capped.Insert("edge", edges);
    EXPECT_THROW(capped.Query(std::string(kTC) + "\ndef output : tc"),
                 RelError);
  }
}

}  // namespace
}  // namespace rel
