// Dependency / monotonicity analysis tests (stratification, Section 3.3).

#include "core/analysis.h"

#include <gtest/gtest.h>

#include "core/parser.h"

namespace rel {
namespace {

ProgramAnalysis Analyze(const std::string& source) {
  Program program = ParseProgram(source);
  std::vector<std::shared_ptr<Def>> defs;
  for (Def& def : program.defs) {
    defs.push_back(std::make_shared<Def>(std::move(def)));
  }
  return ProgramAnalysis(defs);
}

TEST(Analysis, NonRecursiveChain) {
  ProgramAnalysis a = Analyze(
      "def a(x) : b(x)\n"
      "def b(x) : c(x)");
  EXPECT_FALSE(a.IsRecursive("a"));
  EXPECT_FALSE(a.IsRecursive("b"));
  EXPECT_FALSE(a.UsesReplacement("a"));
  EXPECT_NE(a.ComponentOf("a"), a.ComponentOf("b"));
}

TEST(Analysis, PositiveRecursionAccumulates) {
  ProgramAnalysis a = Analyze(
      "def tc(x,y) : e(x,y)\n"
      "def tc(x,y) : exists((z) | e(x,z) and tc(z,y))");
  EXPECT_TRUE(a.IsRecursive("tc"));
  EXPECT_FALSE(a.UsesReplacement("tc"));
}

TEST(Analysis, MutualRecursionSharesComponent) {
  ProgramAnalysis a = Analyze(
      "def even(x) : x = 0\n"
      "def even(x) : exists((y) | pred(x,y) and odd(y))\n"
      "def odd(x) : exists((y) | pred(x,y) and even(y))");
  EXPECT_EQ(a.ComponentOf("even"), a.ComponentOf("odd"));
  EXPECT_TRUE(a.IsRecursive("even"));
  EXPECT_FALSE(a.UsesReplacement("even"));
}

TEST(Analysis, NegativeSelfReferenceNeedsReplacement) {
  ProgramAnalysis a = Analyze("def p(x) : q(x) and not p(x)");
  EXPECT_TRUE(a.UsesReplacement("p"));
}

TEST(Analysis, NegationAcrossStrataIsFine) {
  ProgramAnalysis a = Analyze(
      "def p(x) : q(x) and not r(x)\n"
      "def r(x) : s(x)");
  EXPECT_FALSE(a.UsesReplacement("p"));
  EXPECT_FALSE(a.UsesReplacement("r"));
}

TEST(Analysis, AggregationOverSelfNeedsReplacement) {
  // `min` is declared so the analysis knows its first argument is
  // second-order (signatures come from the rule set under analysis).
  ProgramAnalysis a = Analyze(
      "def min[{A}] : reduce[rel_primitive_minimum, A]\n"
      "def apsp(x,y,i) : i = min[(j) : apsp(x,y,j)]");
  EXPECT_TRUE(a.UsesReplacement("apsp"));
}

TEST(Analysis, ReduceArgumentsAreAlwaysNonMonotone) {
  ProgramAnalysis a = Analyze(
      "def total(x) : x = reduce[rel_primitive_add, (s): total(s)]");
  EXPECT_TRUE(a.UsesReplacement("total"));
}

TEST(Analysis, SecondOrderArgumentIsConservativelyNonMonotone) {
  ProgramAnalysis a = Analyze(
      "def empty({R}) : not exists((x...) | R(x...))\n"
      "def pr(x) : f(x) where empty(pr)");
  EXPECT_TRUE(a.UsesReplacement("pr"));
}

TEST(Analysis, ForallBodyIsNonMonotone) {
  ProgramAnalysis a = Analyze(
      "def p(x) : q(x) and forall((y in q) | p(y))");
  EXPECT_TRUE(a.UsesReplacement("p"));
}

TEST(Analysis, DoubleNegationIsMonotone) {
  ProgramAnalysis a = Analyze("def p(x) : q(x) and not not p(x)");
  // NNF sees through the double negation... conservatively we still treat
  // syntactic `not` as polarity-flipping twice: positive.
  EXPECT_FALSE(a.UsesReplacement("p"));
}

TEST(Analysis, References) {
  ProgramAnalysis a = Analyze(
      "def a(x) : b(x) and not c(x) and x = 1");
  std::set<std::string> refs = a.References("a");
  EXPECT_TRUE(refs.count("b"));
  EXPECT_TRUE(refs.count("c"));
  EXPECT_FALSE(refs.count("rel_primitive_eq"));  // builtins are not edges
}

TEST(Analysis, DomainBindingsCreateEdges) {
  ProgramAnalysis a = Analyze("def a[x in dom] : x * 2");
  EXPECT_TRUE(a.References("a").count("dom"));
}

}  // namespace
}  // namespace rel
