// Dependency / monotonicity analysis tests (stratification, Section 3.3).

#include "core/analysis.h"

#include <gtest/gtest.h>

#include "core/parser.h"

namespace rel {
namespace {

ProgramAnalysis Analyze(const std::string& source) {
  Program program = ParseProgram(source);
  std::vector<std::shared_ptr<Def>> defs;
  for (Def& def : program.defs) {
    defs.push_back(std::make_shared<Def>(std::move(def)));
  }
  return ProgramAnalysis(defs);
}

TEST(Analysis, NonRecursiveChain) {
  ProgramAnalysis a = Analyze(
      "def a(x) : b(x)\n"
      "def b(x) : c(x)");
  EXPECT_FALSE(a.IsRecursive("a"));
  EXPECT_FALSE(a.IsRecursive("b"));
  EXPECT_FALSE(a.UsesReplacement("a"));
  EXPECT_NE(a.ComponentOf("a"), a.ComponentOf("b"));
}

TEST(Analysis, PositiveRecursionAccumulates) {
  ProgramAnalysis a = Analyze(
      "def tc(x,y) : e(x,y)\n"
      "def tc(x,y) : exists((z) | e(x,z) and tc(z,y))");
  EXPECT_TRUE(a.IsRecursive("tc"));
  EXPECT_FALSE(a.UsesReplacement("tc"));
}

TEST(Analysis, MutualRecursionSharesComponent) {
  ProgramAnalysis a = Analyze(
      "def even(x) : x = 0\n"
      "def even(x) : exists((y) | pred(x,y) and odd(y))\n"
      "def odd(x) : exists((y) | pred(x,y) and even(y))");
  EXPECT_EQ(a.ComponentOf("even"), a.ComponentOf("odd"));
  EXPECT_TRUE(a.IsRecursive("even"));
  EXPECT_FALSE(a.UsesReplacement("even"));
}

TEST(Analysis, NegativeSelfReferenceNeedsReplacement) {
  ProgramAnalysis a = Analyze("def p(x) : q(x) and not p(x)");
  EXPECT_TRUE(a.UsesReplacement("p"));
}

TEST(Analysis, NegationAcrossStrataIsFine) {
  ProgramAnalysis a = Analyze(
      "def p(x) : q(x) and not r(x)\n"
      "def r(x) : s(x)");
  EXPECT_FALSE(a.UsesReplacement("p"));
  EXPECT_FALSE(a.UsesReplacement("r"));
}

TEST(Analysis, AggregationOverSelfNeedsReplacement) {
  // `min` is declared so the analysis knows its first argument is
  // second-order (signatures come from the rule set under analysis).
  ProgramAnalysis a = Analyze(
      "def min[{A}] : reduce[rel_primitive_minimum, A]\n"
      "def apsp(x,y,i) : i = min[(j) : apsp(x,y,j)]");
  EXPECT_TRUE(a.UsesReplacement("apsp"));
}

TEST(Analysis, ReduceArgumentsAreAlwaysNonMonotone) {
  ProgramAnalysis a = Analyze(
      "def total(x) : x = reduce[rel_primitive_add, (s): total(s)]");
  EXPECT_TRUE(a.UsesReplacement("total"));
}

TEST(Analysis, SecondOrderArgumentIsConservativelyNonMonotone) {
  ProgramAnalysis a = Analyze(
      "def empty({R}) : not exists((x...) | R(x...))\n"
      "def pr(x) : f(x) where empty(pr)");
  EXPECT_TRUE(a.UsesReplacement("pr"));
}

TEST(Analysis, ForallBodyIsNonMonotone) {
  ProgramAnalysis a = Analyze(
      "def p(x) : q(x) and forall((y in q) | p(y))");
  EXPECT_TRUE(a.UsesReplacement("p"));
}

TEST(Analysis, DoubleNegationIsMonotone) {
  ProgramAnalysis a = Analyze("def p(x) : q(x) and not not p(x)");
  // NNF sees through the double negation... conservatively we still treat
  // syntactic `not` as polarity-flipping twice: positive.
  EXPECT_FALSE(a.UsesReplacement("p"));
}

TEST(Analysis, References) {
  ProgramAnalysis a = Analyze(
      "def a(x) : b(x) and not c(x) and x = 1");
  std::set<std::string> refs = a.References("a");
  EXPECT_TRUE(refs.count("b"));
  EXPECT_TRUE(refs.count("c"));
  EXPECT_FALSE(refs.count("rel_primitive_eq"));  // builtins are not edges
}

TEST(Analysis, DomainBindingsCreateEdges) {
  ProgramAnalysis a = Analyze("def a[x in dom] : x * 2");
  EXPECT_TRUE(a.References("a").count("dom"));
}

// --- prefix extension (the per-transaction analysis fast path) ---

std::vector<std::shared_ptr<Def>> ParseDefs(const std::string& source) {
  Program program = ParseProgram(source);
  std::vector<std::shared_ptr<Def>> defs;
  for (Def& def : program.defs) {
    defs.push_back(std::make_shared<Def>(std::move(def)));
  }
  return defs;
}

/// Appends `txn` to `shared` and analyzes, reusing `prefix`; `extended`
/// receives whether the fast path was taken.
ProgramAnalysis Extend(const ProgramAnalysis& prefix,
                       const std::vector<std::shared_ptr<Def>>& shared,
                       const std::string& txn) {
  std::vector<std::shared_ptr<Def>> combined = shared;
  for (auto& def : ParseDefs(txn)) combined.push_back(std::move(def));
  return ProgramAnalysis(&prefix, shared.size(), combined);
}

constexpr char kSharedRules[] =
    "def tc(x,y) : edge(x,y)\n"
    "def tc(x,y) : exists((z) | edge(x,z) and tc(z,y))\n"
    "def lc(x) : label(x) and not tc(x, x)";

TEST(Analysis, ExtensionMatchesFullAnalysisOnFreshNames) {
  std::vector<std::shared_ptr<Def>> shared = ParseDefs(kSharedRules);
  ProgramAnalysis prefix(shared);
  const std::string txn = "def output(y) : tc(0, y)\n"
                          "def helper(x) : output(x) and helper(x)";
  ProgramAnalysis ext = Extend(prefix, shared, txn);
  EXPECT_TRUE(ext.extended());

  std::vector<std::shared_ptr<Def>> combined = shared;
  for (auto& def : ParseDefs(txn)) combined.push_back(std::move(def));
  ProgramAnalysis full(combined);
  for (const char* name : {"tc", "lc", "output", "helper", "edge"}) {
    EXPECT_EQ(ext.IsRecursive(name), full.IsRecursive(name)) << name;
    EXPECT_EQ(ext.UsesReplacement(name), full.UsesReplacement(name)) << name;
    EXPECT_EQ(ext.ComponentMembers(name), full.ComponentMembers(name)) << name;
    EXPECT_EQ(ext.References(name), full.References(name)) << name;
  }
  // Component ids must not collide across the prefix boundary.
  EXPECT_NE(ext.ComponentOf("output"), ext.ComponentOf("tc"));
  EXPECT_NE(ext.ComponentOf("helper"), ext.ComponentOf("lc"));
}

TEST(Analysis, ExtensionFallsBackWhenTxnRedefinesSharedName) {
  // An extra tc rule changes tc's own component; the fast path must refuse.
  std::vector<std::shared_ptr<Def>> shared = ParseDefs(kSharedRules);
  ProgramAnalysis prefix(shared);
  ProgramAnalysis ext =
      Extend(prefix, shared, "def tc(x,y) : extra(x,y)");
  EXPECT_FALSE(ext.extended());
  EXPECT_TRUE(ext.References("tc").count("extra"));
}

TEST(Analysis, ExtensionFallsBackWhenTxnDefinesReferencedBase) {
  // `edge` was a base relation the prefix reads; giving it rules can create
  // cycles through prefix defs, so the fast path must refuse.
  std::vector<std::shared_ptr<Def>> shared = ParseDefs(kSharedRules);
  ProgramAnalysis prefix(shared);
  ProgramAnalysis ext = Extend(prefix, shared, "def edge(x,y) : tc(x,y)");
  EXPECT_FALSE(ext.extended());
  // The full analysis sees the new cycle edge <-> tc.
  EXPECT_EQ(ext.ComponentOf("edge"), ext.ComponentOf("tc"));
}

TEST(Analysis, ExtensionKeepsPrefixVerdictsAndSigLookups) {
  std::vector<std::shared_ptr<Def>> shared = ParseDefs(
      "def min[{A}] : reduce[rel_primitive_minimum, A]\n"
      "def apsp(x,y,i) : i = min[(j) : apsp(x,y,j)]");
  ProgramAnalysis prefix(shared);
  // The txn def applies the shared second-order `min`; its signature must
  // resolve through the prefix so the argument is seen as non-monotone.
  ProgramAnalysis ext = Extend(
      prefix, shared, "def best(i) : i = min[(j) : best(j)]");
  EXPECT_TRUE(ext.extended());
  EXPECT_TRUE(ext.UsesReplacement("apsp"));
  EXPECT_TRUE(ext.UsesReplacement("best"));
}

TEST(Analysis, ExtensionIcsNeverForceFallback) {
  std::vector<std::shared_ptr<Def>> shared = ParseDefs(kSharedRules);
  ProgramAnalysis prefix(shared);
  std::vector<std::shared_ptr<Def>> combined = shared;
  for (auto& def :
       ParseDefs("ic no_self() requires forall((x) | label(x) implies x > 0)"))
    combined.push_back(std::move(def));
  ProgramAnalysis ext(&prefix, shared.size(), combined);
  EXPECT_TRUE(ext.extended());
  EXPECT_TRUE(ext.DefReferences(*combined.back()).count("label"));
}

}  // namespace
}  // namespace rel
