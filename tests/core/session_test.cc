// Session/snapshot-isolation tests: pinned readers see byte-identical
// answers no matter what commits around them, writes serialize through the
// commit pipeline with rollback invisible to readers, and the per-session
// demand cache survives read-only transactions. The concurrent tests run
// under TSan in CI — they are the data-race proof of the serving layer.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "base/error.h"
#include "core/engine.h"

namespace rel {
namespace {

Value I(int64_t v) { return Value::Int(v); }

TEST(Session, PinnedReaderIsIsolatedFromCommits) {
  Engine engine;
  engine.Insert("R", {Tuple({I(1)}), Tuple({I(2)})});

  std::unique_ptr<Session> reader = engine.OpenSession();
  const std::string before = reader->Eval("R").ToString();

  engine.Exec("def insert(:R, x) : x = 3");
  // The pin still answers from the pre-commit snapshot...
  EXPECT_EQ(reader->Eval("R").ToString(), before);
  EXPECT_EQ(reader->Base("R").size(), 2u);
  // ... and Refresh() adopts the commit.
  reader->Refresh();
  EXPECT_EQ(reader->Eval("R").ToString(), "{(1); (2); (3)}");
}

TEST(Session, ExecRePinsForReadYourWrites) {
  Engine engine;
  std::unique_ptr<Session> session = engine.OpenSession();
  uint64_t v0 = session->snapshot_version();
  TxnResult txn = session->Exec("def insert(:R, x) : x = 7");
  EXPECT_EQ(txn.inserted, 1u);
  EXPECT_GT(txn.snapshot_version, v0);
  EXPECT_EQ(session->snapshot_version(), txn.snapshot_version);
  EXPECT_EQ(session->Eval("R").ToString(), "{(7)}");
}

TEST(Session, SessionsAreIsolatedUntilRefresh) {
  Engine engine;
  engine.Insert("R", {Tuple({I(1)})});
  std::unique_ptr<Session> a = engine.OpenSession();
  std::unique_ptr<Session> b = engine.OpenSession();

  a->Exec("def insert(:R, x) : x = 2");
  EXPECT_EQ(a->Base("R").size(), 2u);   // writer sees its own commit
  EXPECT_EQ(b->Base("R").size(), 1u);   // b still pinned pre-commit
  b->Refresh();
  EXPECT_EQ(b->Base("R").size(), 2u);
}

TEST(Session, DefineIsEngineWideOnRefresh) {
  Engine engine;
  std::unique_ptr<Session> a = engine.OpenSession();
  std::unique_ptr<Session> b = engine.OpenSession();
  a->Define("def ten : 10");
  EXPECT_EQ(a->Eval("ten").ToString(), "{(10)}");
  // b's pinned snapshot predates the define: `ten` has no rules there and
  // evaluates to the empty relation.
  EXPECT_EQ(b->Eval("ten").size(), 0u);
  b->Refresh();
  EXPECT_EQ(b->Eval("ten").ToString(), "{(10)}");
}

TEST(Session, RolledBackTransactionPublishesNothing) {
  Engine engine;
  engine.Define("ic small(x) requires R(x) implies x < 10");
  engine.Insert("R", {Tuple({I(5)})});

  std::unique_ptr<Session> writer = engine.OpenSession();
  std::unique_ptr<Session> reader = engine.OpenSession();
  uint64_t pinned = reader->snapshot_version();

  EXPECT_THROW(writer->Exec("def insert(:R, x) : x = 50"),
               ConstraintViolation);
  // Nothing was published: a refresh adopts the same version and the same
  // contents.
  reader->Refresh();
  EXPECT_EQ(reader->snapshot_version(), pinned);
  EXPECT_EQ(reader->Base("R").ToString(), "{(5)}");
  // And the writer can commit cleanly afterwards.
  writer->Exec("def insert(:R, x) : x = 6");
  EXPECT_EQ(writer->Base("R").ToString(), "{(5); (6)}");
}

TEST(Session, DemandCacheServesConesAcrossReadOnlyTransactions) {
  Engine engine;
  engine.Define(
      "def tc(x, y) : edge(x, y)\n"
      "def tc(x, z) : exists((y) | edge(x, y) and tc(y, z))");
  engine.Insert("edge", {Tuple({I(1), I(2)}), Tuple({I(2), I(3)}),
                         Tuple({I(3), I(4)})});

  std::unique_ptr<Session> session = engine.OpenSession();
  session->options().demand_transform = true;

  EXPECT_EQ(session->Query("def output(y) : tc(1, y)").ToString(),
            "{(2); (3); (4)}");
  EXPECT_GT(session->last_lowering_stats().components_demanded, 0);
  ASSERT_GT(session->demand_cache().size(), 0u);

  // Same cone, new transaction: served from the session cache — no cone
  // fixpoint runs at all in the second transaction.
  EXPECT_EQ(session->Query("def output(y) : tc(1, y)").ToString(),
            "{(2); (3); (4)}");
  EXPECT_GT(session->last_lowering_stats().demand_cache_hits, 0);
  EXPECT_EQ(session->last_lowering_stats().components_demanded, 0);

  // A commit re-pins to a new version; the cached cone follows it
  // incrementally (delta maintenance, PR 9) instead of being dropped: the
  // fresh answer reflects the new edge with no cone re-derivation at all.
  session->Exec("def insert(:edge, x, y) : x = 4 and y = 5");
  EXPECT_EQ(session->Query("def output(y) : tc(1, y)").ToString(),
            "{(2); (3); (4); (5)}");
  EXPECT_EQ(session->last_lowering_stats().components_demanded, 0);
  EXPECT_GT(session->last_lowering_stats().demand_cache_hits, 0);
  EXPECT_GT(session->demand_cache().maintained(), 0u);
}

TEST(Session, DemandCacheIsNotPoisonedByTransactionLocalRules) {
  // A query-source def that feeds the cone must not produce a cacheable
  // entry a later plain query would wrongly reuse.
  Engine engine;
  engine.Define(
      "def tc(x, y) : edge(x, y)\n"
      "def tc(x, z) : exists((y) | edge(x, y) and tc(y, z))");
  engine.Insert("edge", {Tuple({I(1), I(2)})});

  std::unique_ptr<Session> session = engine.OpenSession();
  session->options().demand_transform = true;

  // This transaction extends `edge` with a local rule: tc(1, *) = {2, 9}.
  EXPECT_EQ(session
                ->Query("def edge(x, y) : x = 2 and y = 9\n"
                        "def output(y) : tc(1, y)")
                .ToString(),
            "{(2); (9)}");
  // The plain cone afterwards must not see 9.
  EXPECT_EQ(session->Query("def output(y) : tc(1, y)").ToString(), "{(2)}");
}

TEST(Session, DefineClearsDemandCache) {
  Engine engine;
  engine.Define(
      "def tc(x, y) : edge(x, y)\n"
      "def tc(x, z) : exists((y) | edge(x, y) and tc(y, z))");
  engine.Insert("edge", {Tuple({I(1), I(2)})});

  std::unique_ptr<Session> session = engine.OpenSession();
  session->options().demand_transform = true;
  session->Query("def output(y) : tc(1, y)");
  ASSERT_GT(session->demand_cache().size(), 0u);

  // New rules change what any cone means: the cache must empty.
  session->Define("def tc(x, y) : x = 1 and y = 100");
  EXPECT_EQ(session->demand_cache().size(), 0u);
  EXPECT_EQ(session->Query("def output(y) : tc(1, y)").ToString(),
            "{(2); (100)}");
}

// --- concurrency (the TSan targets) ---------------------------------------

TEST(SessionConcurrency, PinnedReadersSeeByteIdenticalAnswersDuringWrites) {
  // The PR's acceptance bar: 8 reader sessions pin a snapshot, an active
  // writer commits transaction after transaction underneath them, and every
  // reader's answers stay byte-identical to its pre-commit expectation.
  Engine engine;
  engine.Define(
      "def tc(x, y) : edge(x, y)\n"
      "def tc(x, z) : exists((y) | edge(x, y) and tc(y, z))");
  std::vector<Tuple> chain;
  for (int i = 0; i < 24; ++i) chain.push_back(Tuple({I(i), I(i + 1)}));
  engine.Insert("edge", chain);

  constexpr int kReaders = 8;
  constexpr int kQueriesPerReader = 20;

  // Pin all readers to the pre-write snapshot and record the expected
  // answers sequentially, before any concurrency starts.
  std::vector<std::unique_ptr<Session>> readers;
  std::vector<std::string> expected_tc, expected_count;
  for (int r = 0; r < kReaders; ++r) {
    readers.push_back(engine.OpenSession());
    expected_tc.push_back(
        readers.back()->Query("def output(y) : tc(0, y)").ToString());
    expected_count.push_back(
        readers.back()->Eval("count[edge]").ToString());
  }

  std::atomic<bool> mismatch{false};
  std::vector<std::thread> threads;
  threads.reserve(kReaders + 1);
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      for (int q = 0; q < kQueriesPerReader && !mismatch; ++q) {
        if (readers[r]->Query("def output(y) : tc(0, y)").ToString() !=
                expected_tc[r] ||
            readers[r]->Eval("count[edge]").ToString() != expected_count[r]) {
          mismatch = true;
        }
      }
    });
  }
  // The writer churns: grows the graph one commit at a time, with a
  // rollback mixed in every few transactions.
  threads.emplace_back([&] {
    std::unique_ptr<Session> writer = engine.OpenSession();
    for (int i = 0; i < 30; ++i) {
      int base = 100 + i;
      writer->Exec("def insert(:edge, x, y) : x = " + std::to_string(base) +
                   " and y = " + std::to_string(base + 1));
      if (i % 5 == 0) {
        try {
          writer->Exec(
              "def insert(:edge, x, y) : x = 0 and y = 0\n"
              "ic no_loop() requires forall((a, b) | edge(a, b) "
              "implies a != b)");
          ADD_FAILURE() << "constraint should have fired";
        } catch (const ConstraintViolation&) {
        }
      }
    }
  });
  for (std::thread& t : threads) t.join();

  EXPECT_FALSE(mismatch) << "a pinned reader observed a concurrent commit";
  // Post-state sanity: all 30 writer commits (and no rolled-back loop edge)
  // are in the final snapshot.
  std::unique_ptr<Session> check = engine.OpenSession();
  EXPECT_EQ(check->Base("edge").size(), chain.size() + 30);
  EXPECT_FALSE(check->Base("edge").Contains(Tuple({I(0), I(0)})));
}

TEST(SessionConcurrency, ConcurrentWritersSerializeWithoutLostUpdates) {
  Engine engine;
  constexpr int kWriters = 4;
  constexpr int kCommitsPerWriter = 10;
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&engine, w] {
      std::unique_ptr<Session> session = engine.OpenSession();
      for (int i = 0; i < kCommitsPerWriter; ++i) {
        int v = w * 1000 + i;
        session->Exec("def insert(:R, x) : x = " + std::to_string(v));
        // Read-your-writes holds under contention.
        if (!session->Base("R").Contains(Tuple({I(v)}))) {
          ADD_FAILURE() << "lost own write " << v;
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(engine.Base("R").size(),
            static_cast<size_t>(kWriters * kCommitsPerWriter));
}

TEST(SessionConcurrency, ReadersRunWhileTransactionRollsBack) {
  Engine engine;
  engine.Define("ic cap() requires count[R] < 100");
  engine.Insert("R", {Tuple({I(1)}), Tuple({I(2)})});

  std::unique_ptr<Session> reader = engine.OpenSession();
  const std::string expected = reader->Eval("R").ToString();

  std::atomic<bool> stop{false};
  std::thread churn([&engine, &stop] {
    std::unique_ptr<Session> writer = engine.OpenSession();
    while (!stop) {
      try {
        // Violates `cap` after applying 200 inserts: the whole delta rolls
        // back while readers keep evaluating against their pins.
        writer->Exec("def insert(:R, x) : range(3, 202, 1, x)");
      } catch (const ConstraintViolation&) {
      }
    }
  });
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(reader->Eval("R").ToString(), expected);
  }
  stop = true;
  churn.join();
  // Rollbacks published nothing: even a fresh pin sees the original state.
  reader->Refresh();
  EXPECT_EQ(reader->Eval("R").ToString(), expected);
}

}  // namespace
}  // namespace rel
