// Tests for the planned, indexed Datalog evaluator: strategy equivalence
// over a suite of recursive programs, the comparison-binding and arithmetic
// edge cases, and the EvalStats counters that make the access paths
// observable.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "base/error.h"
#include "benchutil/generators.h"
#include "benchutil/reference.h"
#include "datalog/eval.h"
#include "datalog/program.h"

namespace rel {
namespace datalog {
namespace {

Value I(int64_t v) { return Value::Int(v); }

const Strategy kAllStrategies[] = {Strategy::kNaive, Strategy::kSemiNaive,
                                   Strategy::kSemiNaiveScan};

/// Evaluates `pred` under every strategy and checks the extents agree;
/// returns the (common) result.
Relation EvalAllStrategies(const std::string& source, const std::string& pred,
                           const std::vector<Tuple>* edges = nullptr,
                           const std::string& edge_pred = "edge") {
  Relation reference;
  bool first = true;
  for (Strategy strategy : kAllStrategies) {
    Program p = ParseDatalog(source);
    if (edges) {
      for (const Tuple& e : *edges) p.AddFact(edge_pred, e);
    }
    Relation r = EvaluatePredicate(p, pred, strategy);
    if (first) {
      reference = r;
      first = false;
    } else {
      EXPECT_EQ(r, reference) << "strategy " << static_cast<int>(strategy)
                              << " diverges for '" << pred << "'";
    }
  }
  return reference;
}

TEST(EvalEquivalence, TransitiveClosureOverRandomGraphs) {
  const std::string rules =
      "tc(X,Y) :- edge(X,Y). tc(X,Z) :- edge(X,Y), tc(Y,Z).";
  for (uint64_t seed : {1u, 7u, 42u}) {
    std::vector<Tuple> edges = benchutil::RandomGraph(28, 80, seed);
    Relation tc = EvalAllStrategies(rules, "tc", &edges);
    auto ref = benchutil::TransitiveClosureRef(edges);
    EXPECT_EQ(tc.size(), ref.size());
    for (const auto& [a, b] : ref) {
      EXPECT_TRUE(tc.Contains(Tuple({I(a), I(b)})));
    }
  }
}

TEST(EvalEquivalence, TransitiveClosureOverChain) {
  std::vector<Tuple> edges = benchutil::ChainGraph(40);
  Relation tc = EvalAllStrategies(
      "tc(X,Y) :- edge(X,Y). tc(X,Z) :- edge(X,Y), tc(Y,Z).", "tc", &edges);
  EXPECT_EQ(tc.size(), 40u * 39u / 2u);  // all i < j pairs over nodes 0..39
  EXPECT_TRUE(tc.Contains(Tuple({I(0), I(39)})));
}

TEST(EvalEquivalence, SameGeneration) {
  // Classic same-generation: linear recursion with two EDB probes per step.
  const std::string program =
      "parent(1, 3). parent(1, 4). parent(2, 5).\n"
      "parent(3, 6). parent(4, 7). parent(5, 8).\n"
      "sg(X, Y) :- parent(P, X), parent(P, Y), X != Y.\n"
      "sg(X, Y) :- parent(A, X), parent(B, Y), sg(A, B).";
  Relation sg = EvalAllStrategies(program, "sg");
  EXPECT_TRUE(sg.Contains(Tuple({I(3), I(4)})));   // siblings
  EXPECT_TRUE(sg.Contains(Tuple({I(6), I(7)})));   // cousins via sg(3,4)
  EXPECT_FALSE(sg.Contains(Tuple({I(6), I(8)})));  // 3 and 5 are unrelated
  EXPECT_FALSE(sg.Contains(Tuple({I(3), I(3)})));
  EXPECT_EQ(sg.size(), 4u);  // {(3,4),(4,3),(6,7),(7,6)}
}

TEST(EvalEquivalence, NegationAcrossStrata) {
  const std::string program =
      "node(1). node(2). node(3). node(4).\n"
      "edge(1,2). edge(2,3).\n"
      "reach(X) :- edge(1, X).\n"
      "reach(X) :- reach(Y), edge(Y, X).\n"
      "unreach(X) :- node(X), !reach(X), X != 1.\n"
      "island(X) :- unreach(X), !edge(X, 1).";
  EXPECT_EQ(EvalAllStrategies(program, "unreach").ToString(), "{(4)}");
  EXPECT_EQ(EvalAllStrategies(program, "island").ToString(), "{(4)}");
}

TEST(EvalEquivalence, MixedArityFacts) {
  // One predicate holding tuples of several arities; rules match per arity.
  Program base;
  base.AddFact("r", Tuple({I(1)}));
  base.AddFact("r", Tuple({I(1), I(2)}));
  base.AddFact("r", Tuple({I(2), I(3)}));
  base.AddFact("r", Tuple({I(1), I(2), I(3)}));
  Program rules = ParseDatalog(
      "unary(X) :- r(X).\n"
      "pair(X, Y) :- r(X, Y).\n"
      "chain(X, Z) :- r(X, Y), r(Y, Z).\n"
      "wide(X) :- r(X, _, _).");
  Relation expected_pair, expected_chain;
  bool first = true;
  for (Strategy strategy : kAllStrategies) {
    Program p = base;
    for (const Rule& r : rules.rules()) p.AddRule(r);
    std::map<std::string, Relation> all = Evaluate(p, strategy);
    EXPECT_EQ(all.at("unary").ToString(), "{(1)}");
    EXPECT_EQ(all.at("wide").ToString(), "{(1)}");
    if (first) {
      expected_pair = all.at("pair");
      expected_chain = all.at("chain");
      first = false;
    } else {
      EXPECT_EQ(all.at("pair"), expected_pair);
      EXPECT_EQ(all.at("chain"), expected_chain);
    }
  }
  EXPECT_EQ(expected_pair.size(), 2u);
  EXPECT_EQ(expected_chain.ToString(), "{(1, 3)}");
}

TEST(EvalEquivalence, TriangleRuleMatchesScanAndLeapfrogFires) {
  // The all-free self-join shape: routed through LeapfrogJoin under the
  // indexed strategy, nested scans under the ablation strategies.
  std::vector<Tuple> edges =
      benchutil::SkewedTriangleGraph(60, 8, /*seed=*/3);
  Relation tri = EvalAllStrategies(
      "tri(X, Y, Z) :- e(X, Y), e(Y, Z), e(Z, X).", "tri", &edges, "e");
  EXPECT_GT(tri.size(), 0u);

  Program p = ParseDatalog("tri(X, Y, Z) :- e(X, Y), e(Y, Z), e(Z, X).");
  for (const Tuple& e : edges) p.AddFact("e", e);
  EvalStats stats;
  EvaluatePredicate(p, "tri", Strategy::kSemiNaive, &stats);
  EXPECT_GT(stats.leapfrog_joins, 0u);
}

TEST(EvalStatsCounters, IndexedTCUsesProbesNeverBoundScans) {
  std::vector<Tuple> edges = benchutil::RandomGraph(32, 96, 5);
  Program p = ParseDatalog(
      "tc(X,Y) :- edge(X,Y). tc(X,Z) :- edge(X,Y), tc(Y,Z).");
  for (const Tuple& e : edges) p.AddFact("edge", e);
  EvalStats stats;
  EvaluatePredicate(p, "tc", Strategy::kSemiNaive, &stats);
  EXPECT_GT(stats.index_probes, 0u);
  EXPECT_GT(stats.index_builds, 0u);
  EXPECT_EQ(stats.full_scans, 0u);  // every bound literal goes through an index

  // The scan baseline pays a full relation scan per bound literal instead.
  Program p2 = ParseDatalog(
      "tc(X,Y) :- edge(X,Y). tc(X,Z) :- edge(X,Y), tc(Y,Z).");
  for (const Tuple& e : edges) p2.AddFact("edge", e);
  EvalStats scan_stats;
  EvaluatePredicate(p2, "tc", Strategy::kSemiNaiveScan, &scan_stats);
  EXPECT_GT(scan_stats.full_scans, 0u);
  EXPECT_EQ(scan_stats.index_probes, 0u);
}

TEST(EvalStatsCounters, DerivationCountsAgreeAcrossJoinOrders) {
  // The indexed planner reorders literals; the set of satisfying
  // assignments (and hence tuples_derived) must not change.
  std::vector<Tuple> edges = benchutil::RandomGraph(20, 50, 11);
  uint64_t derived[2];
  int i = 0;
  for (Strategy strategy : {Strategy::kSemiNaive, Strategy::kSemiNaiveScan}) {
    Program p = ParseDatalog(
        "tc(X,Y) :- edge(X,Y). tc(X,Z) :- edge(X,Y), tc(Y,Z).");
    for (const Tuple& e : edges) p.AddFact("edge", e);
    EvalStats stats;
    EvaluatePredicate(p, "tc", strategy, &stats);
    derived[i++] = stats.tuples_derived;
  }
  EXPECT_EQ(derived[0], derived[1]);
}

TEST(CompareBinding, EqualityBindsLhsVariable) {
  for (Strategy strategy : kAllStrategies) {
    Program p = ParseDatalog("n(1). n(2). v(Y) :- n(_), Y = 7.");
    Relation v = EvaluatePredicate(p, "v", strategy);
    EXPECT_EQ(v.ToString(), "{(7)}");
  }
}

TEST(CompareBinding, EqualityBindsRhsVariable) {
  // `c = V` with V unbound must bind symmetrically (used to throw kSafety).
  for (Strategy strategy : kAllStrategies) {
    Program p = ParseDatalog("n(1). n(2). v(Y) :- n(_), 7 = Y.");
    Relation v = EvaluatePredicate(p, "v", strategy);
    EXPECT_EQ(v.ToString(), "{(7)}");
  }
}

TEST(CompareBinding, EqualityBindsFromBoundVariable) {
  for (Strategy strategy : kAllStrategies) {
    Program p = ParseDatalog("n(3). copy(Y) :- n(X), Y = X.");
    EXPECT_EQ(EvaluatePredicate(p, "copy", strategy).ToString(), "{(3)}");
    Program q = ParseDatalog("n(3). copy(Y) :- n(X), X = Y.");
    EXPECT_EQ(EvaluatePredicate(q, "copy", strategy).ToString(), "{(3)}");
  }
}

TEST(CompareBinding, JoinVariableEqualityKeepsNumericSemantics) {
  // X is bound by q, so `X = 1.0` must stay a numeric-tolerant filter
  // (Int 1 == Float 1.0) in every strategy — not become a Float binding
  // probed with type-exact index hashes.
  for (Strategy strategy : kAllStrategies) {
    Program p = ParseDatalog("q(1). q(2). p(X) :- q(X), X = 1.0.");
    EXPECT_EQ(EvaluatePredicate(p, "p", strategy).ToString(), "{(1)}")
        << "strategy " << static_cast<int>(strategy);
  }
}

TEST(CompareBinding, OutputVariableBindingStillUsableInNegation) {
  for (Strategy strategy : kAllStrategies) {
    Program p = ParseDatalog("q(1). r(5). s(V) :- q(_), V = 5, !r(V).");
    EXPECT_TRUE(EvaluatePredicate(p, "s", strategy).empty());
    Program p2 = ParseDatalog("q(1). r(6). s(V) :- q(_), V = 5, !r(V).");
    EXPECT_EQ(EvaluatePredicate(p2, "s", strategy).ToString(), "{(5)}");
  }
}

TEST(CompareBinding, AssignTargetEqualityKeepsNumericSemantics) {
  // X is produced by an assignment, so `X = 5` must stay a numeric filter
  // under the planner even though it is written first; with int facts all
  // strategies agree.
  for (Strategy strategy : kAllStrategies) {
    Program p = ParseDatalog("e(4). h(X) :- X = 5, e(Y), X = Y + 1.");
    EXPECT_EQ(EvaluatePredicate(p, "h", strategy).ToString(), "{(5)}")
        << "strategy " << static_cast<int>(strategy);
  }
  // Mixed-type corner (documented in eval.h): the planner's filter
  // semantics equate Int 5 with the computed Float 5.0.
  Program p = ParseDatalog("e(4.0). h(X) :- X = 5, e(Y), X = Y + 1.");
  EXPECT_EQ(EvaluatePredicate(p, "h", Strategy::kSemiNaive).ToString(),
            "{(5.0)}");
}

TEST(Planner, ReorderableRulesAcceptedByPlannedStrategyOnly) {
  // Documented divergence: the planner is literal-order-independent, so a
  // filter written before its binding atom works under kSemiNaive; the
  // scan baselines evaluate syntactically and throw kSafety.
  Program p = ParseDatalog("q(1). q(-2). p(X) :- X > 0, q(X).");
  EXPECT_EQ(EvaluatePredicate(p, "p", Strategy::kSemiNaive).ToString(),
            "{(1)}");
  Program p2 = ParseDatalog("q(1). q(-2). p(X) :- X > 0, q(X).");
  EXPECT_THROW(EvaluatePredicate(p2, "p", Strategy::kSemiNaiveScan), RelError);
}

TEST(CompareBinding, BothSidesUnboundStillRejected) {
  for (Strategy strategy : kAllStrategies) {
    Program p = ParseDatalog("n(1). bad(X) :- n(_), X = Y.");
    EXPECT_THROW(EvaluatePredicate(p, "bad", strategy), RelError);
  }
}

TEST(ArithGuards, Int64MinDividedByMinusOnePromotesToFloat) {
  for (Strategy strategy : kAllStrategies) {
    Program p = ParseDatalog(
        "m(-9223372036854775808). d(Y) :- m(X), Y = X / -1.");
    Relation d = EvaluatePredicate(p, "d", strategy);
    ASSERT_EQ(d.size(), 1u);
    EXPECT_TRUE(d.Contains(Tuple({Value::Float(9223372036854775808.0)})));
  }
}

TEST(ArithGuards, Int64MinModMinusOneIsZero) {
  // `%` doubles as the comment marker in the text syntax, so the mod rule
  // is built through the API:  r(Y) :- m(X), Y = X % -1.
  for (Strategy strategy : kAllStrategies) {
    Program p;
    p.AddFact("m", Tuple({I(INT64_MIN)}));
    Rule rule;
    rule.head = Atom{"r", {Term::Var(1)}};
    rule.body.push_back(Literal::Positive(Atom{"m", {Term::Var(0)}}));
    rule.body.push_back(
        Literal::Assign(1, ArithOp::kMod, Term::Var(0), Term::Const(I(-1))));
    p.AddRule(rule);
    EXPECT_EQ(EvaluatePredicate(p, "r", strategy).ToString(), "{(0)}");
  }
}

TEST(ArithGuards, PlainDivisionStillWorks) {
  for (Strategy strategy : kAllStrategies) {
    Program p = ParseDatalog(
        "n(6). half(Y) :- n(X), Y = X / 2. third(Y) :- n(X), Y = X / 4.\n"
        "none(Y) :- n(X), Y = X / 0. neg(Y) :- n(X), Y = X / -1.");
    EXPECT_EQ(EvaluatePredicate(p, "half", strategy).ToString(), "{(3)}");
    EXPECT_EQ(EvaluatePredicate(p, "third", strategy).ToString(), "{(1.5)}");
    EXPECT_TRUE(EvaluatePredicate(p, "none", strategy).empty());
    EXPECT_EQ(EvaluatePredicate(p, "neg", strategy).ToString(), "{(-6)}");
  }
}

TEST(Planner, ConstantsInAtomsProbeAsBoundColumns) {
  // A constant column counts as bound, so the planner probes on it.
  std::vector<Tuple> edges = benchutil::RandomGraph(16, 48, 9);
  Relation from0 = EvalAllStrategies(
      "tc(X,Y) :- edge(X,Y). tc(X,Z) :- edge(X,Y), tc(Y,Z).\n"
      "goal(Y) :- tc(0, Y).", "goal", &edges);
  Relation tc = EvalAllStrategies(
      "tc(X,Y) :- edge(X,Y). tc(X,Z) :- edge(X,Y), tc(Y,Z).", "tc", &edges);
  size_t expected = 0;
  tc.ForEach([&](const TupleRef& t) { expected += t[0] == I(0); });
  EXPECT_EQ(from0.size(), expected);
}

TEST(Planner, UnsafeRulesStillRejected) {
  for (Strategy strategy : kAllStrategies) {
    Program head_unbound = ParseDatalog("p(X, Y) :- q(X). q(1).");
    EXPECT_THROW(Evaluate(head_unbound, strategy), RelError);
    Program neg_unbound = ParseDatalog("p(X) :- q(X), !r(X, Y). q(1).");
    EXPECT_THROW(Evaluate(neg_unbound, strategy), RelError);
  }
}

TEST(Planner, BoundedPathArithmeticAcrossStrategies) {
  std::vector<Tuple> edges = benchutil::RandomGraph(12, 30, 13);
  Relation paths = EvalAllStrategies(
      "path(X, Y, D) :- edge(X, Y), D = 1 + 0.\n"
      "path(X, Z, D) :- path(X, Y, E), edge(Y, Z), D = E + 1, E < 6.",
      "path", &edges);
  EXPECT_GT(paths.size(), 0u);
}

}  // namespace
}  // namespace datalog
}  // namespace rel
