// Tests for aggregate rule heads in the Datalog engine and for the Rel
// aggregate lowering that targets them (core/lowering.cc): per-group fold
// semantics, the edge cases both paths must pin identically (empty groups,
// unordered payloads, set-semantics dedup, i64 overflow), the monotonicity
// qualification for recursive aggregates, the incremental-maintenance
// refusal, and byte-identical interpreter-vs-lowered differentials for the
// shapes the paper leans on (shortest paths, PageRank-style level sums,
// matrix products).

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "base/error.h"
#include "core/engine.h"
#include "datalog/eval.h"
#include "datalog/program.h"

namespace rel {
namespace datalog {
namespace {

Value I(int64_t v) { return Value::Int(v); }
Value F(double v) { return Value::Float(v); }
Value S(const char* v) { return Value::String(v); }

const Strategy kAllStrategies[] = {Strategy::kNaive, Strategy::kSemiNaive,
                                   Strategy::kSemiNaiveScan};

/// Deterministic weighted digraph: edge(a, b, w) triples.
std::vector<Tuple> WeightedGraph(int n) {
  std::vector<Tuple> edges;
  for (int i = 0; i < n; ++i) {
    edges.push_back(Tuple({I(i), I((i + 1) % n), I(i % 4 + 1)}));
    edges.push_back(Tuple({I(i), I((i + 3) % n), I(7 - i % 3)}));
    if (i % 2 == 0) edges.push_back(Tuple({I(i), I((i * 2 + 1) % n), I(2)}));
  }
  return edges;
}

/// Floyd–Warshall over WeightedGraph(n) — the reference for sp(X, Y, min D).
std::map<std::pair<int, int>, int64_t> ShortestPathsRef(int n) {
  const int64_t kInf = std::numeric_limits<int64_t>::max() / 4;
  std::vector<std::vector<int64_t>> d(n, std::vector<int64_t>(n, kInf));
  for (const Tuple& e : WeightedGraph(n)) {
    int a = static_cast<int>(e[0].AsInt());
    int b = static_cast<int>(e[1].AsInt());
    d[a][b] = std::min(d[a][b], e[2].AsInt());
  }
  for (int k = 0; k < n; ++k)
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < n; ++j)
        d[i][j] = std::min(d[i][j], d[i][k] + d[k][j]);
  std::map<std::pair<int, int>, int64_t> out;
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      if (d[i][j] < kInf) out[{i, j}] = d[i][j];
  return out;
}

/// Evaluates `pred` under every strategy x thread count and checks the
/// sorted renderings are byte-identical; returns the common extent.
Relation EvalAllConfigs(const std::string& source, const std::string& pred,
                        const std::map<std::string, std::vector<Tuple>>& facts,
                        EvalStats* stats = nullptr) {
  Relation reference;
  std::string reference_text;
  bool first = true;
  for (Strategy strategy : kAllStrategies) {
    for (int threads : {1, 4}) {
      if (strategy != Strategy::kSemiNaive && threads != 1) continue;
      Program p = ParseDatalog(source);
      for (const auto& [name, tuples] : facts) {
        for (const Tuple& t : tuples) p.AddFact(name, t);
      }
      EvalOptions options;
      options.strategy = strategy;
      options.num_threads = threads;
      EvalStats local;
      Relation r = EvaluatePredicate(p, pred, options, &local);
      if (first) {
        reference = r;
        reference_text = r.ToString();
        if (stats) *stats = local;
        first = false;
      } else {
        EXPECT_EQ(r.ToString(), reference_text)
            << "strategy " << static_cast<int>(strategy) << " threads "
            << threads << " diverges for '" << pred << "'";
        if (stats) {
          EXPECT_EQ(local.aggregate_updates, stats->aggregate_updates);
          EXPECT_EQ(local.groups_improved, stats->groups_improved);
        }
      }
    }
  }
  return reference;
}

// --- fold semantics over EDB facts -------------------------------------------

TEST(Aggregate, GroupByFoldsMinMaxSumCount) {
  const std::map<std::string, std::vector<Tuple>> facts = {
      {"sale", {Tuple({I(1), I(10)}), Tuple({I(1), I(3)}), Tuple({I(2), I(7)}),
                Tuple({I(1), I(10)})}}};  // duplicate row: set semantics
  Relation lo = EvalAllConfigs("lo(G, min(V)) :- sale(G, V).", "lo", facts);
  EXPECT_EQ(lo.ToString(), "{(1, 3); (2, 7)}");
  Relation hi = EvalAllConfigs("hi(G, max(V)) :- sale(G, V).", "hi", facts);
  EXPECT_EQ(hi.ToString(), "{(1, 10); (2, 7)}");
  Relation tot = EvalAllConfigs("tot(G, sum(V)) :- sale(G, V).", "tot", facts);
  EXPECT_EQ(tot.ToString(), "{(1, 13); (2, 7)}");
  Relation cnt = EvalAllConfigs("cnt(G, count(V)) :- sale(G, V).", "cnt",
                                facts);
  EXPECT_EQ(cnt.ToString(), "{(1, 2); (2, 1)}");
}

TEST(Aggregate, EmptyGroupProducesNoRowNeverADefault) {
  // No sale rows match the filter: the aggregate relation is empty — there
  // is no (group, 0) or (group, null) row.
  const std::map<std::string, std::vector<Tuple>> facts = {
      {"sale", {Tuple({I(1), I(10)})}}};
  Relation r = EvalAllConfigs("t(G, sum(V)) :- sale(G, V), V > 100.", "t",
                              facts);
  EXPECT_EQ(r.size(), 0u);
}

TEST(Aggregate, WitnessColumnsDistinguishContributions) {
  // Same value through different witnesses counts twice; without the
  // witness the set-deduplicated bucket counts it once. This is the Rel
  // abstraction-binder semantics: sum[(w, v) : ...] vs sum[[g]: v].
  const std::map<std::string, std::vector<Tuple>> facts = {
      {"sale", {Tuple({I(1), I(100), I(5)}), Tuple({I(1), I(200), I(5)})}}};
  Relation with_witness = EvalAllConfigs(
      "t(G, sum(V; W)) :- sale(G, W, V).", "t", facts);
  EXPECT_EQ(with_witness.ToString(), "{(1, 10)}");
  Relation without = EvalAllConfigs("t(G, sum(V)) :- sale(G, W, V).", "t",
                                    facts);
  EXPECT_EQ(without.ToString(), "{(1, 5)}");
}

TEST(Aggregate, UnorderedPayloadsYieldNoResultRow) {
  // min/max over an incomparable bucket (int vs string) mirrors the Rel
  // reduce kernels: the fold produces no value, so the group emits no row.
  // An all-comparable group in the same relation still folds.
  const std::map<std::string, std::vector<Tuple>> facts = {
      {"v", {Tuple({I(1), I(3)}), Tuple({I(1), S("a")}), Tuple({I(2), I(9)})}}};
  Relation r = EvalAllConfigs("m(G, min(V)) :- v(G, V).", "m", facts);
  EXPECT_EQ(r.ToString(), "{(2, 9)}");
}

TEST(Aggregate, NanPayloadKeepsItsUnorderedSemantics) {
  // NaN compares unordered against everything including itself, so a
  // bucket containing NaN folds to nothing — same as the Rel interpreter.
  const std::map<std::string, std::vector<Tuple>> facts = {
      {"v",
       {Tuple({I(1), F(std::numeric_limits<double>::quiet_NaN())}),
        Tuple({I(1), F(2.0)}), Tuple({I(2), F(4.0)})}}};
  Relation r = EvalAllConfigs("m(G, max(V)) :- v(G, V).", "m", facts);
  EXPECT_EQ(r.ToString(), "{(2, 4.0)}");
}

TEST(Aggregate, SumOverflowThrowsTypeError) {
  Program p = ParseDatalog("t(G, sum(V)) :- v(G, V).");
  p.AddFact("v", Tuple({I(1), I(std::numeric_limits<int64_t>::max())}));
  p.AddFact("v", Tuple({I(1), I(1)}));
  try {
    EvaluatePredicate(p, "t", Strategy::kSemiNaive);
    FAIL() << "expected kType on i64 sum overflow";
  } catch (const RelError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kType);
    EXPECT_NE(std::string(e.what()).find("overflow"), std::string::npos);
  }
}

// --- static and dynamic qualification ----------------------------------------

TEST(Aggregate, MixedPlainAndAggregateRulesRefused) {
  Program p = ParseDatalog(
      "t(G, sum(V)) :- v(G, V). t(G, W) :- w(G, W).");
  p.AddFact("v", Tuple({I(1), I(1)}));
  try {
    EvaluatePredicate(p, "t", Strategy::kSemiNaive);
    FAIL() << "expected kType";
  } catch (const RelError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kType);
  }
}

TEST(Aggregate, AggregatePredicateCannotCarryEdbFacts) {
  Program p = ParseDatalog("t(G, sum(V)) :- v(G, V).");
  p.AddFact("v", Tuple({I(1), I(1)}));
  p.AddFact("t", Tuple({I(1), I(1)}));
  EXPECT_THROW(EvaluatePredicate(p, "t", Strategy::kSemiNaive), RelError);
}

TEST(Aggregate, RecursiveMinTaintViolationsRefused) {
  // The changing result D2 feeds a comparison filter: statically rejected.
  const char* kFiltered =
      "sp(X, Y, min(D)) :- edge(X, Y, D). "
      "sp(X, Z, min(D)) :- edge(X, Y, W), sp(Y, Z, D2), D2 < 100, "
      "D = W + D2.";
  // The changing result flows through multiplication (not direction-
  // preserving under negative operands).
  const char* kScaled =
      "sp(X, Y, min(D)) :- edge(X, Y, D). "
      "sp(X, Z, min(D)) :- edge(X, Y, W), sp(Y, Z, D2), D = W * D2.";
  for (const char* source : {kFiltered, kScaled}) {
    Program p = ParseDatalog(source);
    p.AddFact("edge", Tuple({I(0), I(1), I(2)}));
    try {
      EvaluatePredicate(p, "sp", Strategy::kSemiNaive);
      FAIL() << "expected kType for: " << source;
    } catch (const RelError& e) {
      EXPECT_EQ(e.kind(), ErrorKind::kType);
      EXPECT_NE(
          std::string(e.what()).find("non-monotone recursive aggregate"),
          std::string::npos);
    }
  }
}

TEST(Aggregate, RecursiveSumEmitOnceViolationThrows) {
  // A self-feeding sum with no level index: the group's own result loops
  // back into its bucket, so a contribution arrives after publication.
  Program p = ParseDatalog(
      "s(G, sum(V)) :- seed(G, V). s(G, sum(V)) :- s(G, W), V = W + 1.");
  p.AddFact("seed", Tuple({I(1), I(1)}));
  try {
    EvaluatePredicate(p, "s", Strategy::kSemiNaive);
    FAIL() << "expected kType";
  } catch (const RelError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kType);
    EXPECT_NE(std::string(e.what()).find("after its group published"),
              std::string::npos);
  }
}

TEST(Aggregate, MixedOperatorsInOneRecursiveComponentRefused) {
  Program p = ParseDatalog(
      "a(X, min(V)) :- seed(X, V). a(X, min(V)) :- b(X, V). "
      "b(X, max(V)) :- a(X, V).");
  p.AddFact("seed", Tuple({I(1), I(1)}));
  try {
    EvaluatePredicate(p, "a", Strategy::kSemiNaive);
    FAIL() << "expected kType";
  } catch (const RelError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kType);
    EXPECT_NE(std::string(e.what()).find("mixed aggregate operators"),
              std::string::npos);
  }
}

// --- recursive aggregation on the fast path ----------------------------------

TEST(Aggregate, RecursiveShortestPathsMatchFloydWarshall) {
  const std::string rules =
      "sp(X, Y, min(D)) :- edge(X, Y, D). "
      "sp(X, Z, min(D)) :- edge(X, Y, W), sp(Y, Z, D2), D = W + D2.";
  for (int n : {5, 9, 14}) {
    EvalStats stats;
    Relation sp = EvalAllConfigs(rules, "sp", {{"edge", WeightedGraph(n)}},
                                 &stats);
    auto ref = ShortestPathsRef(n);
    ASSERT_EQ(sp.size(), ref.size()) << "n=" << n;
    for (const auto& [key, dist] : ref) {
      EXPECT_TRUE(sp.Contains(Tuple({I(key.first), I(key.second), I(dist)})))
          << "n=" << n << " pair (" << key.first << ", " << key.second << ")";
    }
    EXPECT_GT(stats.aggregate_updates, 0u);
    EXPECT_GE(stats.groups_improved, sp.size());
  }
}

TEST(Aggregate, LevelIndexedRecursiveSumEvaluates) {
  // Each level's groups receive all contributions in one round, so the
  // emit-once guard never fires: s(L) = 2 * s(L-1), four levels deep.
  Program p = ParseDatalog(
      "s(L, sum(V; U)) :- seed(L, U, V). "
      "s(L, sum(V; U)) :- level(L), K = L - 1, s(K, W), u(U), V = W + 0.");
  p.AddFact("seed", Tuple({I(0), I(0), I(3)}));
  p.AddFact("level", Tuple({I(1)}));
  p.AddFact("level", Tuple({I(2)}));
  p.AddFact("u", Tuple({I(0)}));
  p.AddFact("u", Tuple({I(1)}));
  Relation s = EvaluatePredicate(p, "s", Strategy::kSemiNaive);
  EXPECT_EQ(s.ToString(), "{(0, 3); (1, 6); (2, 12)}");
}

// --- incremental maintenance refuses aggregates ------------------------------

TEST(Aggregate, EvaluateDeltaRefusesAggregatePrograms) {
  Program p = ParseDatalog("t(G, sum(V)) :- v(G, V).");
  p.AddFact("v", Tuple({I(1), I(2)}));
  std::map<std::string, Relation> extents =
      Evaluate(p, Strategy::kSemiNaive);
  std::map<std::string, Relation> before = extents;
  std::map<std::string, Relation> base;
  base["v"].Insert(Tuple({I(1), I(2)}));
  EdbDelta delta;
  delta.inserts["v"].Insert(Tuple({I(1), I(5)}));
  DeltaResult result = EvaluateDelta(p, base, delta, &extents);
  EXPECT_FALSE(result.supported);
  EXPECT_FALSE(result.unsupported_reason.empty());
  // Refusal must leave the extents untouched — the caller recomputes.
  EXPECT_EQ(extents.size(), before.size());
  for (const auto& [name, relation] : before) {
    EXPECT_EQ(extents.at(name).ToString(), relation.ToString()) << name;
  }
}

// --- Rel differentials: interpreter vs lowered, byte-identical ---------------

/// Runs `source` (which must define `output`) on a fresh Engine with the
/// given facts; captures lowering stats.
Relation RunRel(const std::string& source, bool lower, int threads,
                const std::map<std::string, std::vector<Tuple>>& facts,
                LoweringStats* stats = nullptr) {
  Engine engine;
  engine.options().lower_recursion = lower;
  engine.options().num_threads = threads;
  for (const auto& [name, tuples] : facts) engine.Insert(name, tuples);
  Relation out = engine.Query(source);
  if (stats) *stats = engine.last_lowering_stats();
  return out;
}

/// Interpreter-vs-lowered differential: byte-identical extents across
/// thread counts, and the component must actually take the fast path.
void ExpectLoweredMatchesInterp(const std::string& source,
                                const std::map<std::string,
                                               std::vector<Tuple>>& facts,
                                int expect_lowered) {
  Relation expected = RunRel(source, /*lower=*/false, 1, facts);
  for (int threads : {1, 4}) {
    LoweringStats stats;
    Relation got = RunRel(source, /*lower=*/true, threads, facts, &stats);
    EXPECT_EQ(got.ToString(), expected.ToString()) << "threads " << threads;
    EXPECT_EQ(stats.components_lowered, expect_lowered)
        << "threads " << threads;
    EXPECT_EQ(stats.components_rejected, 0) << "threads " << threads;
  }
}

TEST(RelAggregate, ApspLowersAndMatchesInterp) {
  ExpectLoweredMatchesInterp(
      "def apsp(x, y, d) : d = min[(j) :\n"
      "    E(x, y, j) or\n"
      "    exists((z, j1, j2) | E(x, z, j1) and apsp(z, y, j2) and\n"
      "        j = j1 + j2)]\n"
      "def output : apsp",
      {{"E", WeightedGraph(10)}}, /*expect_lowered=*/1);
}

TEST(RelAggregate, PagerankStyleLevelSumLowersAndMatchesInterp) {
  // Level-indexed rank propagation: rank at step t sums the scaled ranks
  // of in-neighbors at t-1, with the base mass as an extra contribution
  // row. Both pr and the outdegree count lower.
  ExpectLoweredMatchesInterp(
      "def N(v) : exists((y, w) | E(v, y, w) or E(y, v, w))\n"
      "def odeg(u, d) : d = count[(y, w) : E(u, y, w)]\n"
      "def pr(v, t, r) : r = sum[(u, x) :\n"
      "    (t = 0 and u = 0 - 1 and N(v) and x = 100) or\n"
      "    (range(1, 4, 1, t) and exists((s, rr, d, w) |\n"
      "        s = t - 1 and E(u, v, w) and pr(u, s, rr) and odeg(u, d)\n"
      "        and x = rr / d))]\n"
      "def output : pr",
      {{"E", WeightedGraph(8)}}, /*expect_lowered=*/2);
}

TEST(RelAggregate, MatmulSquareAbstractionLowersAndMatchesInterp) {
  std::vector<Tuple> A, B;
  for (int i = 0; i < 4; ++i)
    for (int k = 0; k < 4; ++k) {
      A.push_back(Tuple({I(i), I(k), I(i * 3 + k + 1)}));
      B.push_back(Tuple({I(k), I(i), I(k * 2 - i + 5)}));
    }
  ExpectLoweredMatchesInterp(
      "def mm(i, j, s) : s = sum[[k] : A[i, k] * B[k, j]]\n"
      "def output : mm",
      {{"A", A}, {"B", B}}, /*expect_lowered=*/1);
}

TEST(RelAggregate, ResultFilterFallsBackToInterp) {
  // A filter on the aggregate result has no classical-fragment equivalent:
  // the component is rejected and the interpreter answers identically.
  const std::string source =
      "def big(g, s) : s = sum[(y, w) : E(g, y, w)] and s > 5\n"
      "def output : big";
  const std::map<std::string, std::vector<Tuple>> facts = {
      {"E", WeightedGraph(6)}};
  Relation expected = RunRel(source, /*lower=*/false, 1, facts);
  LoweringStats stats;
  Relation got = RunRel(source, /*lower=*/true, 1, facts, &stats);
  EXPECT_EQ(got.ToString(), expected.ToString());
  EXPECT_EQ(stats.components_lowered, 0);
  EXPECT_EQ(stats.components_rejected, 1);
}

TEST(RelAggregate, NonMonotoneRecursiveMinFallsBackToInterp) {
  // The comparison on the changing result keeps replacement semantics on
  // the interpreter; the lowered engine's static check rejects it and the
  // answers still agree.
  const std::string source =
      "def sp(x, y, d) : d = min[(j) :\n"
      "    E(x, y, j) or\n"
      "    exists((z, j1, j2) | E(x, z, j1) and sp(z, y, j2) and j2 < 9\n"
      "        and j = j1 + j2)]\n"
      "def output : sp";
  const std::map<std::string, std::vector<Tuple>> facts = {
      {"E", WeightedGraph(6)}};
  Relation expected = RunRel(source, /*lower=*/false, 1, facts);
  LoweringStats stats;
  Relation got = RunRel(source, /*lower=*/true, 1, facts, &stats);
  EXPECT_EQ(got.ToString(), expected.ToString());
  EXPECT_EQ(stats.components_lowered, 0);
  EXPECT_EQ(stats.components_rejected, 1);
}

TEST(RelAggregate, SumOverflowThrowsTypeOnBothPaths) {
  std::vector<Tuple> big = {
      Tuple({I(0), I(std::numeric_limits<int64_t>::max())}),
      Tuple({I(1), I(1)})};
  const std::string source =
      "def t(s) : s = sum[(x, v) : X(x, v)]\ndef output : t";
  for (bool lower : {false, true}) {
    Engine engine;
    engine.options().lower_recursion = lower;
    engine.Insert("X", big);
    try {
      engine.Query(source);
      FAIL() << "expected kType (lower=" << lower << ")";
    } catch (const RelError& e) {
      EXPECT_EQ(e.kind(), ErrorKind::kType) << "lower=" << lower;
    }
  }
}

TEST(RelAggregate, DemandTransformStaysCorrectWithAggregates) {
  // Aggregates are demand-opaque: DemandGoalFor declines, so the magic-set
  // transform never sees an aggregate-bearing component and the filtered
  // query still matches the unfiltered engine's answer.
  const std::map<std::string, std::vector<Tuple>> facts = {
      {"E", WeightedGraph(8)}};
  const std::string source =
      "def apsp(x, y, d) : d = min[(j) :\n"
      "    E(x, y, j) or\n"
      "    exists((z, j1, j2) | E(x, z, j1) and apsp(z, y, j2) and\n"
      "        j = j1 + j2)]\n"
      "def output(y, d) : apsp(2, y, d)";
  Relation expected = RunRel(source, /*lower=*/false, 1, facts);
  Engine engine;
  engine.options().demand_transform = true;
  engine.Insert("E", WeightedGraph(8));
  Relation got = engine.Query(source);
  EXPECT_EQ(got.ToString(), expected.ToString());
}

}  // namespace
}  // namespace datalog
}  // namespace rel
