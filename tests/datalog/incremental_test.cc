// Tests for incremental fixpoint maintenance (datalog::EvaluateDelta):
// insert resumption, DRed deletion with re-derivation, unsupported-shape
// fallbacks, the new EvalStats counters, and a randomized differential
// sweep pinning maintained extents byte-identical to from-scratch
// evaluation across thread counts and plan seeds.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "benchutil/generators.h"
#include "datalog/eval.h"
#include "datalog/index.h"
#include "datalog/program.h"

namespace rel {
namespace datalog {
namespace {

Value I(int64_t v) { return Value::Int(v); }

using Facts = std::map<std::string, std::vector<Tuple>>;

std::map<std::string, Relation> FullEval(const std::string& rules,
                                         const Facts& facts,
                                         const EvalOptions& options) {
  Program p = ParseDatalog(rules);
  for (const auto& [pred, tuples] : facts) {
    for (const Tuple& t : tuples) p.AddFact(pred, t);
  }
  return Evaluate(p, options);
}

/// Applies `delta` to a fact table (set semantics), returning the
/// post-update facts for the from-scratch reference run.
Facts ApplyDelta(Facts facts, const EdbDelta& delta) {
  for (const auto& [pred, removed] : delta.deletes) {
    std::vector<Tuple>& tuples = facts[pred];
    std::vector<Tuple> kept;
    for (const Tuple& t : tuples) {
      if (!removed.Contains(t)) kept.push_back(t);
    }
    tuples = std::move(kept);
  }
  for (const auto& [pred, added] : delta.inserts) {
    added.ForEach([&facts, pred = pred](const TupleRef& t) {
      facts[pred].push_back(t.ToTuple());
    });
  }
  return facts;
}

/// Head predicates that also carry EDB facts keep their surviving base
/// tuples visible to the DRed re-derivation phase via `base_facts`.
std::map<std::string, Relation> BaseFactsFor(const Program& program,
                                             const Facts& post_facts) {
  std::map<std::string, Relation> base;
  for (const Rule& rule : program.rules()) {
    auto it = post_facts.find(rule.head.pred);
    if (it == post_facts.end()) continue;
    Relation& r = base[rule.head.pred];
    for (const Tuple& t : it->second) r.Insert(t);
  }
  return base;
}

/// The core differential check: evaluate `rules` over `pre_facts`, maintain
/// under `delta` with EvaluateDelta, and require the maintained extents to
/// be byte-identical to a from-scratch evaluation of the post-update EDB.
/// Returns the maintenance stats for counter assertions.
EvalStats CheckMaintained(const std::string& rules, const Facts& pre_facts,
                          const EdbDelta& delta, const EvalOptions& options,
                          IndexCache* cache = nullptr) {
  Program p = ParseDatalog(rules);
  std::map<std::string, Relation> extents = FullEval(rules, pre_facts, options);

  Facts post_facts = ApplyDelta(pre_facts, delta);
  std::map<std::string, Relation> base_facts = BaseFactsFor(p, post_facts);

  EvalStats stats;
  DeltaResult result =
      EvaluateDelta(p, base_facts, delta, &extents, options, &stats, cache);
  EXPECT_TRUE(result.supported) << result.unsupported_reason;

  std::map<std::string, Relation> reference =
      FullEval(rules, post_facts, options);
  EXPECT_EQ(extents.size(), reference.size());
  for (const auto& [pred, extent] : reference) {
    auto it = extents.find(pred);
    if (it == extents.end()) {
      ADD_FAILURE() << "missing extent for " << pred;
      continue;
    }
    EXPECT_EQ(it->second.ToString(), extent.ToString())
        << "maintained extent diverges for " << pred;
  }
  return stats;
}

EdbDelta Inserts(const std::string& pred, const std::vector<Tuple>& tuples) {
  EdbDelta delta;
  for (const Tuple& t : tuples) delta.inserts[pred].Insert(t);
  return delta;
}

EdbDelta Deletes(const std::string& pred, const std::vector<Tuple>& tuples) {
  EdbDelta delta;
  for (const Tuple& t : tuples) delta.deletes[pred].Insert(t);
  return delta;
}

const char kTcRules[] =
    "tc(X,Y) :- edge(X,Y). tc(X,Z) :- edge(X,Y), tc(Y,Z).";

TEST(IncrementalInsert, SingleTupleExtendsChainClosure) {
  Facts facts;
  facts["edge"] = benchutil::ChainGraph(24);
  // Appending node 24 extends every suffix path: 24 new closure tuples.
  EvalStats stats = CheckMaintained(kTcRules, facts,
                                    Inserts("edge", {Tuple({I(23), I(24)})}),
                                    EvalOptions{});
  EXPECT_EQ(stats.delta_inserts, 25u);  // 24 tc tuples + the edge itself
  EXPECT_EQ(stats.delta_deletes, 0u);
}

TEST(IncrementalInsert, BatchedAndAcrossThreadsAndSeeds) {
  Facts facts;
  facts["edge"] = benchutil::RandomGraph(30, 70, /*seed=*/3);
  EdbDelta delta = Inserts("edge", {Tuple({I(1), I(29)}), Tuple({I(29), I(0)}),
                                    Tuple({I(12), I(13)})});
  for (int threads : {1, 4}) {
    for (uint64_t seed : {uint64_t{0}, uint64_t{7}}) {
      EvalOptions options;
      options.num_threads = threads;
      options.plan_order_seed = seed;
      CheckMaintained(kTcRules, facts, delta, options);
    }
  }
}

TEST(IncrementalInsert, NoOpDeltaChangesNothing) {
  Facts facts;
  facts["edge"] = benchutil::ChainGraph(8);
  EvalStats stats =
      CheckMaintained(kTcRules, facts, EdbDelta{}, EvalOptions{});
  EXPECT_EQ(stats.delta_inserts, 0u);
  EXPECT_EQ(stats.delta_deletes, 0u);
  EXPECT_EQ(stats.rederived, 0u);
}

TEST(IncrementalDelete, ChainSplitDropsSuffixPairs) {
  Facts facts;
  facts["edge"] = benchutil::ChainGraph(16);
  // Cutting the middle edge removes every path crossing it; nothing has an
  // alternative proof in a chain, so DRed re-derives zero tuples.
  EvalStats stats = CheckMaintained(kTcRules, facts,
                                    Deletes("edge", {Tuple({I(7), I(8)})}),
                                    EvalOptions{});
  EXPECT_GT(stats.delta_deletes, 0u);
  EXPECT_EQ(stats.rederived, 0u);
}

TEST(IncrementalDelete, DiamondRederivesAlternateProofs) {
  // a=0 -> b=1 -> d=3 and a=0 -> c=2 -> d=3: deleting (0,1) over-deletes
  // tc(0,3), which the c-path then restores.
  Facts facts;
  facts["edge"] = {Tuple({I(0), I(1)}), Tuple({I(1), I(3)}),
                   Tuple({I(0), I(2)}), Tuple({I(2), I(3)})};
  EvalStats stats = CheckMaintained(kTcRules, facts,
                                    Deletes("edge", {Tuple({I(0), I(1)})}),
                                    EvalOptions{});
  EXPECT_GT(stats.rederived, 0u);
}

TEST(IncrementalDelete, HeadPredicateBaseFactsSurvive) {
  // tc carries its own EDB fact (10, 11), underivable from edges. Deleting
  // an edge must not sweep it away — base_facts marks it as surviving.
  Facts facts;
  facts["edge"] = {Tuple({I(0), I(1)}), Tuple({I(1), I(2)})};
  facts["tc"] = {Tuple({I(10), I(11)})};
  CheckMaintained(kTcRules, facts, Deletes("edge", {Tuple({I(1), I(2)})}),
                  EvalOptions{});
}

TEST(IncrementalMixed, InsertAndDeleteInOneDelta) {
  Facts facts;
  facts["edge"] = benchutil::RandomGraph(24, 60, /*seed=*/11);
  EdbDelta delta;
  delta.deletes["edge"].Insert(facts["edge"][0]);
  delta.deletes["edge"].Insert(facts["edge"][7]);
  delta.inserts["edge"].Insert(Tuple({I(2), I(23)}));
  delta.inserts["edge"].Insert(Tuple({I(23), I(5)}));
  for (int threads : {1, 2}) {
    EvalOptions options;
    options.num_threads = threads;
    CheckMaintained(kTcRules, facts, delta, options);
  }
}

TEST(IncrementalNegation, UnaffectedStratumStaysMaintainable) {
  // The negated predicate (blocked) is untouched by the delta, so the
  // stratified maintenance stays exact.
  const std::string rules =
      "r(X,Y) :- edge(X,Y), !blocked(X). "
      "r(X,Z) :- edge(X,Y), r(Y,Z).";
  Facts facts;
  facts["edge"] = benchutil::ChainGraph(10);
  facts["blocked"] = {Tuple({I(3)})};
  CheckMaintained(rules, facts, Inserts("edge", {Tuple({I(9), I(10)})}),
                  EvalOptions{});
}

TEST(IncrementalNegation, AffectedNegationFallsBackUnsupported) {
  const std::string rules =
      "r(X,Y) :- edge(X,Y), !blocked(X). "
      "r(X,Z) :- edge(X,Y), r(Y,Z).";
  Program p = ParseDatalog(rules);
  Facts facts;
  facts["edge"] = benchutil::ChainGraph(6);
  facts["blocked"] = {Tuple({I(3)})};
  std::map<std::string, Relation> extents =
      FullEval(rules, facts, EvalOptions{});
  std::map<std::string, Relation> before = extents;

  EdbDelta delta = Inserts("blocked", {Tuple({I(4)})});
  DeltaResult result = EvaluateDelta(p, {}, delta, &extents, EvalOptions{});
  EXPECT_FALSE(result.supported);
  EXPECT_FALSE(result.unsupported_reason.empty());
  // Unsupported means untouched: the caller recomputes from scratch.
  for (const auto& [pred, extent] : before) {
    EXPECT_EQ(extents[pred].ToString(), extent.ToString());
  }
}

TEST(IncrementalIndex, PersistentCacheTakesAppendFastPath) {
  // A persistent IndexCache across successive insert-only maintenances
  // extends indexes in place (sort-suffix + merge) instead of rebuilding.
  Facts facts;
  facts["edge"] = benchutil::ChainGraph(12);
  Program p = ParseDatalog(kTcRules);
  EvalOptions options;
  std::map<std::string, Relation> extents = FullEval(kTcRules, facts, options);

  IndexCache cache;
  EvalStats stats;
  for (int step = 0; step < 3; ++step) {
    EdbDelta delta =
        Inserts("edge", {Tuple({I(12 + step), I(13 + step)})});
    facts = ApplyDelta(facts, delta);
    DeltaResult result = EvaluateDelta(p, BaseFactsFor(p, facts), delta,
                                       &extents, options, &stats, &cache);
    ASSERT_TRUE(result.supported) << result.unsupported_reason;
  }
  EXPECT_GT(stats.index_appends, 0u);

  std::map<std::string, Relation> reference = FullEval(kTcRules, facts, options);
  for (const auto& [pred, extent] : reference) {
    EXPECT_EQ(extents[pred].ToString(), extent.ToString());
  }
}

TEST(IncrementalSweep, RandomUpdateStreamsMatchFromScratch) {
  // Randomized differential: random graphs, random interleaved
  // insert/delete steps, maintained extents checked against from-scratch
  // evaluation after every step, across thread counts.
  const char* programs[] = {
      kTcRules,
      // Nonlinear recursion exercises multiple delta occurrences per rule.
      "tc(X,Y) :- edge(X,Y). tc(X,Z) :- tc(X,Y), tc(Y,Z).",
      // Two mutable EDB predicates feeding one recursion.
      "r(X,Y) :- edge(X,Y). r(X,Y) :- extra(X,Y). "
      "r(X,Z) :- edge(X,Y), r(Y,Z).",
  };
  uint64_t rng = 0x9E3779B97F4A7C15ull;
  auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  for (const char* rules : programs) {
    for (int threads : {1, 2}) {
      Facts facts;
      facts["edge"] = benchutil::RandomGraph(16, 30, /*seed=*/5);
      EvalOptions options;
      options.num_threads = threads;
      Program p = ParseDatalog(rules);
      std::map<std::string, Relation> extents = FullEval(rules, facts, options);
      IndexCache cache;
      for (int step = 0; step < 12; ++step) {
        EdbDelta delta;
        const std::string pred =
            (std::string(rules).find("extra") != std::string::npos &&
             next() % 3 == 0)
                ? "extra"
                : "edge";
        if (next() % 2 == 0 || facts[pred].empty()) {
          int k = 1 + static_cast<int>(next() % 3);
          for (int j = 0; j < k; ++j) {
            Tuple t({I(static_cast<int64_t>(next() % 16)),
                     I(static_cast<int64_t>(next() % 16))});
            bool present = false;
            for (const Tuple& have : facts[pred]) present |= have == t;
            if (!present && !delta.inserts[pred].Contains(t)) {
              delta.inserts[pred].Insert(t);
            }
          }
        } else {
          size_t victim = next() % facts[pred].size();
          delta.deletes[pred].Insert(facts[pred][victim]);
        }
        Facts post = ApplyDelta(facts, delta);
        EvalStats stats;
        DeltaResult result = EvaluateDelta(p, BaseFactsFor(p, post), delta,
                                           &extents, options, &stats, &cache);
        ASSERT_TRUE(result.supported) << result.unsupported_reason;
        std::map<std::string, Relation> reference =
            FullEval(rules, post, options);
        for (const auto& [pred_name, extent] : reference) {
          ASSERT_EQ(extents[pred_name].ToString(), extent.ToString())
              << "step " << step << " diverges for " << pred_name
              << " (threads=" << threads << ")";
        }
        facts = std::move(post);
      }
    }
  }
}

}  // namespace
}  // namespace datalog
}  // namespace rel
