// Tests for the parallel (multi-threaded) indexed evaluator: fixpoints must
// be byte-identical to the sequential ones across thread counts and across
// repeated runs, counters must aggregate coherently, errors must propagate,
// and the single-writer staging discipline must keep concurrent reads of
// frozen relations safe (the ForEach-during-parallel-round property).

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "base/error.h"
#include "base/thread_pool.h"
#include "benchutil/generators.h"
#include "datalog/eval.h"
#include "datalog/program.h"

namespace rel {
namespace datalog {
namespace {

Value I(int64_t v) { return Value::Int(v); }

/// Renders every predicate extent into one deterministic string — the
/// byte-identity witness the determinism tests compare.
std::string Fingerprint(const std::map<std::string, Relation>& extents) {
  std::string out;
  for (const auto& [pred, rel] : extents) {
    out += pred;
    out += "=";
    out += rel.ToString();
    out += "\n";
  }
  return out;
}

/// Evaluates `source` (plus optional edge facts) under `threads` workers.
std::map<std::string, Relation> EvalWith(
    const std::string& source, int threads, EvalStats* stats = nullptr,
    const std::vector<Tuple>* edges = nullptr,
    const std::string& edge_pred = "edge") {
  Program p = ParseDatalog(source);
  if (edges != nullptr) {
    for (const Tuple& e : *edges) p.AddFact(edge_pred, e);
  }
  EvalOptions options;
  options.strategy = Strategy::kSemiNaive;
  options.num_threads = threads;
  return Evaluate(p, options, stats);
}

/// Asserts the program evaluates to byte-identical extents (and identical
/// derivation counts) for num_threads in {1, 2, 8}, each repeated 3 times.
void ExpectDeterministicAcrossThreads(
    const std::string& source, const std::vector<Tuple>* edges = nullptr,
    const std::string& edge_pred = "edge") {
  EvalStats base_stats;
  const std::string reference =
      Fingerprint(EvalWith(source, 1, &base_stats, edges, edge_pred));
  for (int threads : {1, 2, 8}) {
    for (int run = 0; run < 3; ++run) {
      EvalStats stats;
      std::string got =
          Fingerprint(EvalWith(source, threads, &stats, edges, edge_pred));
      EXPECT_EQ(got, reference)
          << "threads=" << threads << " run=" << run << " diverged";
      EXPECT_EQ(stats.tuples_derived, base_stats.tuples_derived)
          << "threads=" << threads << " run=" << run;
      EXPECT_EQ(stats.iterations, base_stats.iterations)
          << "threads=" << threads << " run=" << run;
    }
  }
}

TEST(ParallelDeterminism, TransitiveClosureChainAndRandom) {
  const std::string rules =
      "tc(X,Y) :- edge(X,Y). tc(X,Z) :- edge(X,Y), tc(Y,Z).";
  std::vector<Tuple> chain = benchutil::ChainGraph(60);
  ExpectDeterministicAcrossThreads(rules, &chain);
  std::vector<Tuple> random = benchutil::RandomGraph(48, 144, /*seed=*/17);
  ExpectDeterministicAcrossThreads(rules, &random);
}

TEST(ParallelDeterminism, StratifiedNegation) {
  std::vector<Tuple> edges = benchutil::RandomGraph(32, 80, /*seed=*/5);
  ExpectDeterministicAcrossThreads(
      "node(X) :- edge(X, _). node(X) :- edge(_, X).\n"
      "reach(X) :- edge(0, X).\n"
      "reach(X) :- reach(Y), edge(Y, X).\n"
      "unreach(X) :- node(X), !reach(X), X != 0.\n"
      "island(X) :- unreach(X), !edge(X, 0).",
      &edges);
}

TEST(ParallelDeterminism, MixedArityProgram) {
  Program base;
  base.AddFact("r", Tuple({I(1)}));
  for (int64_t i = 0; i < 40; ++i) {
    base.AddFact("r", Tuple({I(i), I(i + 1)}));
    base.AddFact("r", Tuple({I(i), I(i + 1), I(i + 2)}));
  }
  Program rules = ParseDatalog(
      "unary(X) :- r(X).\n"
      "pair(X, Y) :- r(X, Y).\n"
      "chain(X, Z) :- r(X, Y), r(Y, Z).\n"
      "closure(X, Y) :- r(X, Y).\n"
      "closure(X, Z) :- r(X, Y), closure(Y, Z).\n"
      "wide(X) :- r(X, _, _).");
  EvalStats base_stats;
  std::string reference;
  for (int threads : {1, 2, 8}) {
    for (int run = 0; run < 3; ++run) {
      Program p = base;
      for (const Rule& r : rules.rules()) p.AddRule(r);
      EvalOptions options;
      options.num_threads = threads;
      EvalStats stats;
      std::string got = Fingerprint(Evaluate(p, options, &stats));
      if (reference.empty()) {
        reference = got;
        base_stats = stats;
      }
      EXPECT_EQ(got, reference) << "threads=" << threads << " run=" << run;
      EXPECT_EQ(stats.tuples_derived, base_stats.tuples_derived);
    }
  }
}

TEST(ParallelDeterminism, IndependentComponentsScheduleConcurrently) {
  // Two disjoint recursive components plus a stratum on top: the unit DAG
  // has real width, so threads > 1 actually runs units concurrently.
  std::vector<Tuple> a = benchutil::ChainGraph(40);
  Program p = ParseDatalog(
      "tca(X,Y) :- ea(X,Y). tca(X,Z) :- ea(X,Y), tca(Y,Z).\n"
      "tcb(X,Y) :- eb(X,Y). tcb(X,Z) :- eb(X,Y), tcb(Y,Z).\n"
      "meet(X) :- tca(X, _), tcb(X, _).\n"
      "lonely(X) :- tca(X, _), !meet(X).");
  for (const Tuple& e : a) {
    p.AddFact("ea", e);
    p.AddFact("eb", Tuple({I(e[0].AsInt() + 20), I(e[1].AsInt() + 20)}));
  }
  EvalOptions seq;
  seq.num_threads = 1;
  EvalStats seq_stats;
  std::string reference = Fingerprint(Evaluate(p, seq, &seq_stats));
  // tca/tcb/meet/lonely are four separate units.
  EXPECT_EQ(seq_stats.units, 4);
  for (int threads : {2, 8}) {
    EvalOptions par;
    par.num_threads = threads;
    EvalStats stats;
    EXPECT_EQ(Fingerprint(Evaluate(p, par, &stats)), reference)
        << "threads=" << threads;
    EXPECT_EQ(stats.units, 4);
    EXPECT_EQ(stats.threads, threads);
    EXPECT_EQ(stats.tuples_derived, seq_stats.tuples_derived);
  }
}

TEST(ParallelStats, AggregatedOnceAndStablePrinting) {
  // Big enough that rounds chunk across tasks: counters must be coherent
  // totals (no double counting), and invariant ones must match sequential.
  std::vector<Tuple> edges = benchutil::RandomGraph(64, 192, /*seed=*/23);
  const std::string rules =
      "tc(X,Y) :- edge(X,Y). tc(X,Z) :- edge(X,Y), tc(Y,Z).";
  EvalStats seq;
  EvalWith(rules, 1, &seq, &edges);
  EvalStats par;
  EvalWith(rules, 4, &par, &edges);

  EXPECT_EQ(par.tuples_derived, seq.tuples_derived);
  EXPECT_EQ(par.index_probes, seq.index_probes);
  EXPECT_EQ(par.index_builds, seq.index_builds);
  EXPECT_EQ(par.iterations, seq.iterations);
  EXPECT_EQ(par.full_scans, 0u);
  EXPECT_EQ(par.threads, 4);
  EXPECT_GT(par.par_tasks, 0u);
  EXPECT_GT(par.par_merges, 0u);
  EXPECT_EQ(seq.par_tasks, 0u);

  // ToString is one stable line mentioning every counter exactly once.
  std::string line = par.ToString();
  EXPECT_NE(line.find("tuples_derived="), std::string::npos);
  EXPECT_NE(line.find("par_tasks="), std::string::npos);
  EXPECT_EQ(line, par.ToString());
}

TEST(ParallelErrors, SafetyViolationPropagatesFromWorkers) {
  for (int threads : {2, 8}) {
    Program p = ParseDatalog("p(X, Y) :- q(X). q(1).");
    EvalOptions options;
    options.num_threads = threads;
    EXPECT_THROW(Evaluate(p, options), RelError) << "threads=" << threads;
    Program neg = ParseDatalog("p(X) :- q(X), !r(X, Y). q(1).");
    EXPECT_THROW(Evaluate(neg, options), RelError) << "threads=" << threads;
  }
}

TEST(ParallelSafety, ForEachDuringParallelRound) {
  // The single-writer contract from the evaluator's perspective: a frozen
  // relation may be iterated (ForEach / ForEachOfArityRange / Contains)
  // from many tasks at once while each task inserts into its own staging
  // relation. This is exactly what a parallel round does; here it runs
  // against the raw Relation API so a regression pinpoints the storage
  // layer rather than the evaluator.
  Relation frozen;
  constexpr int kRows = 4096;
  for (int64_t i = 0; i < kRows; ++i) {
    frozen.Insert(Tuple({I(i), I(i * 7 % kRows)}));
  }

  ThreadPool pool(8);
  std::vector<Relation> staging(pool.num_slots());
  std::vector<uint64_t> seen(pool.num_slots(), 0);
  {
    ThreadPool::TaskGroup group(&pool);
    constexpr int kChunks = 64;
    constexpr size_t kPer = kRows / kChunks;
    for (int c = 0; c < kChunks; ++c) {
      group.Run([&, c] {
        int slot = pool.CurrentSlot();
        frozen.ForEachOfArityRange(2, c * kPer, (c + 1) * kPer,
                                   [&](const TupleRef& t) {
                                     ++seen[slot];
                                     if (frozen.Contains(t)) {
                                       staging[slot].Insert(t);
                                     }
                                   });
      });
    }
    group.Wait();
  }
  Relation merged;
  uint64_t visited = 0;
  for (int s = 0; s < pool.num_slots(); ++s) {
    merged.InsertAll(staging[s]);
    visited += seen[s];
  }
  EXPECT_EQ(visited, static_cast<uint64_t>(kRows));
  EXPECT_EQ(merged, frozen);
}

}  // namespace
}  // namespace datalog
}  // namespace rel
