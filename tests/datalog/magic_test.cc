// Differential test harness for the magic-set demand transformation
// (src/datalog/magic.h): for every program in the eval corpus and for
// random monotone programs from a property generator, demand-driven
// evaluation restricted to the goal must equal the goal-filtered full
// fixpoint — across all three strategies, at threads {1, 4}, with
// byte-identical sorted renderings. Plus structural tests of the transform
// (adornments, magic seeds, the all-free no-op, the all-bound
// reachability degeneration) and the cone-shrink stats.

#include "datalog/magic.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "base/rng.h"
#include "benchutil/generators.h"
#include "datalog/eval.h"
#include "datalog/program.h"

namespace rel {
namespace datalog {
namespace {

Value I(int64_t v) { return Value::Int(v); }

using Pattern = std::vector<std::optional<Value>>;

const Strategy kAllStrategies[] = {Strategy::kNaive, Strategy::kSemiNaive,
                                   Strategy::kSemiNaiveScan};

/// Independent reference filter (deliberately not FilterByPattern): the
/// goal-matching tuples of `extent`, via the sorted row-oriented view.
Relation GoalFilter(const Relation& extent, const Pattern& pattern) {
  Relation out;
  for (const Tuple& t : extent.TuplesOfArity(pattern.size())) {
    bool match = true;
    for (size_t i = 0; i < pattern.size() && match; ++i) {
      if (pattern[i].has_value()) match = t[i] == *pattern[i];
    }
    if (match) out.Insert(t);
  }
  return out;
}

/// One corpus/differential case: a program (source text plus optional
/// injected facts) and a goal.
struct Case {
  std::string source;
  const std::vector<Tuple>* facts = nullptr;
  std::string fact_pred;
  std::string pred;
  Pattern pattern;
};

Program BuildProgram(const Case& c) {
  Program p = ParseDatalog(c.source);
  if (c.facts) {
    for (const Tuple& t : *c.facts) p.AddFact(c.fact_pred, t);
  }
  return p;
}

/// The differential assertion: magic-set evaluation restricted to the goal
/// equals the goal-filtered full fixpoint, for every strategy and for
/// threads {1, 4}, with byte-identical sorted renderings.
void ExpectDemandEqualsFiltered(const Case& c, const char* context) {
  Relation reference;
  {
    Program p = BuildProgram(c);
    EvalOptions full;
    reference = GoalFilter(EvaluatePredicate(p, c.pred, full), c.pattern);
  }
  const std::string reference_rendering = reference.ToString();
  for (Strategy strategy : kAllStrategies) {
    for (int threads : {1, 4}) {
      Program p = BuildProgram(c);
      EvalOptions options;
      options.strategy = strategy;
      options.num_threads = threads;
      options.demand_goal = DemandGoal{c.pred, c.pattern};
      Relation demanded = EvaluatePredicate(p, c.pred, options);
      EXPECT_EQ(demanded, reference)
          << context << ": goal '" << c.pred << "' diverges (strategy "
          << static_cast<int>(strategy) << ", threads " << threads << ")\n"
          << c.source;
      EXPECT_EQ(demanded.ToString(), reference_rendering)
          << context << ": rendering not byte-identical for '" << c.pred
          << "' (strategy " << static_cast<int>(strategy) << ", threads "
          << threads << ")";
    }
  }
}

// --- the eval-corpus programs, each pinned under several goal patterns ----

const char kTCRight[] =
    "tc(X,Y) :- edge(X,Y). tc(X,Z) :- edge(X,Y), tc(Y,Z).";
const char kTCLeft[] =
    "tc(X,Y) :- edge(X,Y). tc(X,Z) :- tc(X,Y), edge(Y,Z).";
const char kTCNonLinear[] =
    "tc(X,Y) :- edge(X,Y). tc(X,Z) :- tc(X,Y), tc(Y,Z).";

TEST(MagicDifferential, TransitiveClosureAllFormulations) {
  const char* programs[] = {kTCRight, kTCLeft, kTCNonLinear};
  const Pattern patterns[] = {
      {I(0), std::nullopt},          // point query: forward cone
      {std::nullopt, I(3)},          // inverse: who reaches 3
      {I(0), I(5)},                  // all-bound: reachability check
      {std::nullopt, std::nullopt},  // all-free: must be a no-op
  };
  for (const char* source : programs) {
    for (uint64_t seed : {1u, 7u}) {
      std::vector<Tuple> edges = benchutil::RandomGraph(20, 55, seed);
      for (const Pattern& pattern : patterns) {
        Case c{source, &edges, "edge", "tc", pattern};
        ExpectDemandEqualsFiltered(c, "tc/random");
      }
    }
    std::vector<Tuple> chain = benchutil::ChainGraph(24);
    for (const Pattern& pattern : patterns) {
      Case c{source, &chain, "edge", "tc", pattern};
      ExpectDemandEqualsFiltered(c, "tc/chain");
    }
  }
}

TEST(MagicDifferential, SameGeneration) {
  const std::string program =
      "parent(1, 3). parent(1, 4). parent(2, 5).\n"
      "parent(3, 6). parent(4, 7). parent(5, 8).\n"
      "sg(X, Y) :- parent(P, X), parent(P, Y), X != Y.\n"
      "sg(X, Y) :- parent(A, X), parent(B, Y), sg(A, B).";
  const Pattern patterns[] = {
      {I(6), std::nullopt},
      {std::nullopt, I(7)},
      {I(3), I(4)},
      {I(6), I(8)},  // not same generation: demanded extent must be empty
      {std::nullopt, std::nullopt},
  };
  for (const Pattern& pattern : patterns) {
    ExpectDemandEqualsFiltered(Case{program, nullptr, "", "sg", pattern},
                               "same-generation");
  }
}

TEST(MagicDifferential, StratifiedNegationKeepsNegatedPredicatesWhole) {
  // Negated predicates (and their dependencies) are evaluated from their
  // original rules — the transformed program must stay stratified and the
  // demanded answers exact.
  const std::string program =
      "node(1). node(2). node(3). node(4).\n"
      "edge(1,2). edge(2,3).\n"
      "reach(X) :- edge(1, X).\n"
      "reach(X) :- reach(Y), edge(Y, X).\n"
      "unreach(X) :- node(X), !reach(X), X != 1.\n"
      "island(X) :- unreach(X), !edge(X, 1).";
  for (const std::string& pred : {std::string("unreach"), std::string("island")}) {
    for (const Pattern& pattern :
         {Pattern{I(4)}, Pattern{I(2)}, Pattern{std::nullopt}}) {
      ExpectDemandEqualsFiltered(Case{program, nullptr, "", pred, pattern},
                                 "stratified-negation");
    }
  }
}

TEST(MagicDifferential, MixedArityFacts) {
  const std::string program =
      "r(1). r(1, 2). r(2, 3). r(1, 2, 3).\n"
      "unary(X) :- r(X).\n"
      "pair(X, Y) :- r(X, Y).\n"
      "chain(X, Z) :- r(X, Y), r(Y, Z).\n"
      "wide(X) :- r(X, _, _).";
  ExpectDemandEqualsFiltered(
      Case{program, nullptr, "", "pair", {I(1), std::nullopt}}, "mixed-arity");
  ExpectDemandEqualsFiltered(
      Case{program, nullptr, "", "chain", {std::nullopt, I(3)}}, "mixed-arity");
  ExpectDemandEqualsFiltered(Case{program, nullptr, "", "wide", {I(1)}},
                             "mixed-arity");
  ExpectDemandEqualsFiltered(Case{program, nullptr, "", "unary", {I(1)}},
                             "mixed-arity");
}

TEST(MagicDifferential, TriangleSelfJoin) {
  std::vector<Tuple> edges = benchutil::SkewedTriangleGraph(40, 6, /*seed=*/3);
  const std::string program = "tri(X, Y, Z) :- e(X, Y), e(Y, Z), e(Z, X).";
  const Pattern patterns[] = {
      {I(1), std::nullopt, std::nullopt},
      {std::nullopt, I(2), std::nullopt},
      {I(1), I(2), std::nullopt},
  };
  for (const Pattern& pattern : patterns) {
    ExpectDemandEqualsFiltered(Case{program, &edges, "e", "tri", pattern},
                               "triangle");
  }
}

TEST(MagicDifferential, BoundedPathArithmetic) {
  // Assignments and comparisons ride along in adorned rules; assignments
  // with bound operands extend the sideways binding set.
  std::vector<Tuple> edges = benchutil::RandomGraph(12, 30, 13);
  const std::string program =
      "path(X, Y, D) :- edge(X, Y), D = 1.\n"
      "path(X, Z, D) :- path(X, Y, E), edge(Y, Z), D = E + 1, E < 6.";
  const Pattern patterns[] = {
      {I(0), std::nullopt, std::nullopt},
      {I(0), std::nullopt, I(2)},
      {std::nullopt, I(5), std::nullopt},
  };
  for (const Pattern& pattern : patterns) {
    ExpectDemandEqualsFiltered(Case{program, &edges, "edge", "path", pattern},
                               "bounded-path");
  }
}

// --- random monotone programs from a property generator -------------------

/// Random monotone recursive Datalog over an `edge` EDB — the Datalog-side
/// twin of the Rel generator in tests/property/property_test.cc. Every
/// generated program is scan-safe (literals in binding order), so all three
/// strategies accept it.
struct Generated {
  std::string source;
  std::vector<std::pair<std::string, size_t>> preds;  // (pred, arity)
};

Generated RandomMonotoneDatalog(Rng* rng) {
  Generated out;
  std::string src;

  const char* base_guards[] = {"", ", X != Y", ", X < Y"};
  src += "t(X, Y) :- edge(X, Y)" +
         std::string(base_guards[rng->NextBelow(3)]) + ".\n";
  const char* recursive_shapes[] = {
      "t(X, Z) :- edge(X, Y), t(Y, Z).\n",
      "t(X, Z) :- t(X, Y), edge(Y, Z).\n",
      "t(X, Z) :- t(X, Y), t(Y, Z).\n",
  };
  size_t num_rules = 1 + rng->NextBelow(3);
  for (size_t i = 0; i < num_rules; ++i) {
    src += recursive_shapes[rng->NextBelow(3)];
  }
  out.preds.emplace_back("t", 2);

  if (rng->NextBool(0.5)) {
    src +=
        "podd(X, Y) :- edge(X, Y).\n"
        "podd(X, Z) :- edge(X, Y), peven(Y, Z).\n"
        "peven(X, Z) :- edge(X, Y), podd(Y, Z).\n";
    out.preds.emplace_back("podd", 2);
    out.preds.emplace_back("peven", 2);
  }

  if (rng->NextBool(0.5)) {
    int bound = 2 + static_cast<int>(rng->NextBelow(4));
    src += "dist(X, Y, D) :- edge(X, Y), D = 1.\n";
    src += "dist(X, Z, D) :- dist(X, Y, E), edge(Y, Z), D = E + 1, E < " +
           std::to_string(bound) + ".\n";
    out.preds.emplace_back("dist", 3);
  }

  if (rng->NextBool(0.5)) {
    src += "joined(X, Z) :- t(X, Y), edge(Y, Z).\n";
    out.preds.emplace_back("joined", 2);
  }

  out.source = src;
  return out;
}

/// A random binding pattern: every position bound with probability 1/2
/// (re-rolled once against all-free so most sweeps exercise the rewrite),
/// constants drawn from just past the node range so misses occur too.
Pattern RandomPattern(Rng* rng, size_t arity, int n) {
  for (int attempt = 0; attempt < 2; ++attempt) {
    Pattern p;
    bool any = false;
    for (size_t i = 0; i < arity; ++i) {
      if (rng->NextBool(0.5)) {
        p.emplace_back(I(static_cast<int64_t>(rng->NextBelow(
            static_cast<uint64_t>(n) + 2))));
        any = true;
      } else {
        p.emplace_back(std::nullopt);
      }
    }
    if (any || attempt == 1) return p;
  }
  return Pattern();
}

class MagicProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MagicProperty, RandomProgramsRandomPatterns) {
  Rng rng(GetParam());
  int n = 10 + static_cast<int>(rng.NextBelow(8));
  std::vector<Tuple> edges = benchutil::RandomGraph(
      n, 20 + static_cast<int>(rng.NextBelow(25)), rng.Next());
  Generated gen = RandomMonotoneDatalog(&rng);
  for (const auto& [pred, arity] : gen.preds) {
    for (int trial = 0; trial < 2; ++trial) {
      Pattern pattern = RandomPattern(&rng, arity, n);
      Case c{gen.source, &edges, "edge", pred, pattern};
      ExpectDemandEqualsFiltered(c, "random-program");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MagicProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

// --- structure and stats: the cone must actually shrink --------------------

TEST(MagicTransformShape, LeftLinearTCPointQuery) {
  Program p = ParseDatalog(kTCLeft);
  MagicProgram magic =
      MagicTransform(p, DemandGoal{"tc", {I(0), std::nullopt}});
  EXPECT_TRUE(magic.transformed);
  EXPECT_EQ(magic.goal_pred, AdornedName("tc", "bf"));
  EXPECT_GT(magic.adorned_rules, 0);
  // The magic seed fact is in place.
  auto it = magic.program.facts().find(MagicName("tc", "bf"));
  ASSERT_NE(it, magic.program.facts().end());
  EXPECT_TRUE(it->second.Contains(Tuple({I(0)})));
}

TEST(MagicTransformShape, AllFreeGoalIsIdentity) {
  Program p = ParseDatalog(kTCRight);
  MagicProgram magic =
      MagicTransform(p, DemandGoal{"tc", {std::nullopt, std::nullopt}});
  EXPECT_FALSE(magic.transformed);
  EXPECT_EQ(magic.goal_pred, "tc");
  EXPECT_EQ(magic.adorned_rules, 0);
  EXPECT_EQ(magic.magic_rules, 0);

  // Through Evaluate: stats stay zero and the extent equals the full run.
  std::vector<Tuple> edges = benchutil::RandomGraph(16, 40, 5);
  Program full_p = ParseDatalog(kTCRight);
  for (const Tuple& e : edges) full_p.AddFact("edge", e);
  Relation full = EvaluatePredicate(full_p, "tc", EvalOptions{});
  Program demand_p = ParseDatalog(kTCRight);
  for (const Tuple& e : edges) demand_p.AddFact("edge", e);
  EvalOptions options;
  options.demand_goal = DemandGoal{"tc", {std::nullopt, std::nullopt}};
  EvalStats stats;
  Relation demanded = EvaluatePredicate(demand_p, "tc", options, &stats);
  EXPECT_EQ(demanded, full);
  EXPECT_EQ(demanded.ToString(), full.ToString());
  EXPECT_EQ(stats.adorned_rules, 0);
  EXPECT_EQ(stats.magic_rules, 0);
  EXPECT_EQ(stats.magic_facts, 0u);
}

TEST(MagicStats, PointQueryDerivesFractionOfFullClosure) {
  // Left-linear TC on a chain: the full closure is O(n^2) tuples, the
  // demanded cone of tc(0, Y) is the n-1 tuples leaving node 0. This is
  // the acceptance shape bench_magic measures at n=256.
  std::vector<Tuple> edges = benchutil::ChainGraph(64);

  Program full_p = ParseDatalog(kTCLeft);
  for (const Tuple& e : edges) full_p.AddFact("edge", e);
  EvalStats full_stats;
  Relation full =
      EvaluatePredicate(full_p, "tc", EvalOptions{}, &full_stats);

  Program demand_p = ParseDatalog(kTCLeft);
  for (const Tuple& e : edges) demand_p.AddFact("edge", e);
  EvalOptions options;
  options.demand_goal = DemandGoal{"tc", {I(0), std::nullopt}};
  EvalStats demand_stats;
  Relation demanded =
      EvaluatePredicate(demand_p, "tc", options, &demand_stats);

  EXPECT_EQ(demanded.size(), 63u);  // the cone out of node 0
  EXPECT_EQ(demanded, GoalFilter(full, {I(0), std::nullopt}));
  EXPECT_GT(demand_stats.adorned_rules, 0);
  EXPECT_GT(demand_stats.magic_facts, 0u);
  // The demanded fixpoint derives >= 10x fewer tuples than the closure.
  EXPECT_LE(demand_stats.tuples_derived * 10, full_stats.tuples_derived)
      << "demand: " << demand_stats.ToString()
      << "\nfull: " << full_stats.ToString();
}

TEST(MagicStats, AllBoundDegeneratesToReachabilityCheck) {
  // tc(0, 63) on the 64-chain: the demanded evaluation walks the single
  // forward path (O(n) work) instead of materializing the O(n^2) closure.
  std::vector<Tuple> edges = benchutil::ChainGraph(64);

  Program full_p = ParseDatalog(kTCLeft);
  for (const Tuple& e : edges) full_p.AddFact("edge", e);
  EvalStats full_stats;
  EvaluatePredicate(full_p, "tc", EvalOptions{}, &full_stats);

  for (int64_t target : {63, 0}) {  // reachable; unreachable (no self loop)
    Program p = ParseDatalog(kTCLeft);
    for (const Tuple& e : edges) p.AddFact("edge", e);
    EvalOptions options;
    options.demand_goal = DemandGoal{"tc", {I(0), I(target)}};
    EvalStats stats;
    Relation demanded = EvaluatePredicate(p, "tc", options, &stats);
    if (target == 63) {
      EXPECT_EQ(demanded.ToString(), "{(0, 63)}");
    } else {
      EXPECT_TRUE(demanded.empty());
    }
    EXPECT_LE(stats.tuples_derived * 10, full_stats.tuples_derived);
  }
}

TEST(MagicStats, CountersAgreeAcrossThreadCounts) {
  std::vector<Tuple> edges = benchutil::RandomGraph(32, 96, 5);
  uint64_t derived[2];
  uint64_t magic_facts[2];
  int i = 0;
  for (int threads : {1, 4}) {
    Program p = ParseDatalog(kTCRight);
    for (const Tuple& e : edges) p.AddFact("edge", e);
    EvalOptions options;
    options.num_threads = threads;
    options.demand_goal = DemandGoal{"tc", {I(0), std::nullopt}};
    EvalStats stats;
    EvaluatePredicate(p, "tc", options, &stats);
    derived[i] = stats.tuples_derived;
    magic_facts[i] = stats.magic_facts;
    ++i;
  }
  EXPECT_EQ(derived[0], derived[1]);
  EXPECT_EQ(magic_facts[0], magic_facts[1]);
}

TEST(MagicFilter, FilterByPatternMatchesTypeExactly) {
  Relation extent;
  extent.Insert(Tuple({I(1), I(2)}));
  extent.Insert(Tuple({Value::Float(1.0), I(3)}));
  extent.Insert(Tuple({I(1), I(4), I(9)}));  // other arity: never matches
  Relation got = FilterByPattern(extent, {I(1), std::nullopt});
  EXPECT_EQ(got.ToString(), "{(1, 2)}");
}

// --- edge cases surfaced while building the equivalent-query fuzzer ------

// A goal over an EDB predicate (facts, no rules): nothing to chase, so the
// transform degenerates to the identity — and demanded evaluation still
// returns exactly the goal-filtered facts.
TEST(MagicEdgeCases, GoalOverEdbPredicateIsIdentity) {
  Program p = ParseDatalog(kTCRight);
  std::vector<Tuple> edges = benchutil::RandomGraph(12, 30, 3);
  for (const Tuple& e : edges) p.AddFact("edge", e);

  MagicProgram magic =
      MagicTransform(p, DemandGoal{"edge", {I(0), std::nullopt}});
  EXPECT_FALSE(magic.transformed);
  EXPECT_EQ(magic.goal_pred, "edge");
  EXPECT_EQ(magic.adorned_rules, 0);
  EXPECT_EQ(magic.magic_rules, 0);

  // Differential: demanded == goal-filtered, for bound, all-bound and
  // all-free patterns over the EDB predicate.
  const Pattern patterns[] = {
      {I(0), std::nullopt},
      {std::nullopt, I(3)},
      {edges[0][0], edges[0][1]},        // all-bound, known present
      {I(999), I(999)},                  // all-bound, absent
      {std::nullopt, std::nullopt},      // all-free
  };
  for (const Pattern& pattern : patterns) {
    Case c{kTCRight, &edges, "edge", "edge", pattern};
    ExpectDemandEqualsFiltered(c, "edge/edb-goal");
  }
}

// Repeated variables: in the rule heads (tc(X, X) diagonal), in body atoms
// (self-join positions), and as repeated constants in the goal pattern.
// The sideways-information-passing walk must not double-bind or drop the
// duplicated positions.
TEST(MagicEdgeCases, RepeatedVariablesAndRepeatedGoalConstants) {
  const char kDiag[] =
      "tc(X,Y) :- edge(X,Y). tc(X,Z) :- edge(X,Y), tc(Y,Z)."
      "loop(X) :- tc(X, X)."
      "diag(X, X) :- loop(X)."
      "meet(X, Y) :- tc(X, Z), tc(Y, Z), edge(X, X).";
  std::vector<Tuple> edges = benchutil::CycleGraph(9);
  edges.push_back(Tuple({I(2), I(2)}));  // a self-loop feeds edge(X, X)
  edges.push_back(Tuple({I(4), I(4)}));

  const char* preds[] = {"loop", "diag", "meet"};
  for (const char* pred : preds) {
    std::vector<Pattern> patterns;
    if (std::string(pred) == "loop") {
      patterns = {{I(2)}, {I(3)}, {std::nullopt}};
    } else {
      patterns = {{I(2), I(2)},  // repeated constant, on the diagonal
                  {I(2), I(3)},  // off-diagonal: diag must answer empty
                  {I(2), std::nullopt},
                  {std::nullopt, I(4)},
                  {std::nullopt, std::nullopt}};
    }
    for (const Pattern& pattern : patterns) {
      Case c{kDiag, &edges, "edge", pred, pattern};
      ExpectDemandEqualsFiltered(c, "diag/repeated-vars");
    }
  }
}

// All-free goals across every predicate of a stratified program: each must
// be the identity (transformed == false) AND the demanded answers must
// equal the full fixpoint for that predicate.
TEST(MagicEdgeCases, AllFreeGoalsAcrossAllPredicates) {
  const char kStratified[] =
      "tc(X,Y) :- edge(X,Y). tc(X,Z) :- edge(X,Y), tc(Y,Z)."
      "unreach(X, Y) :- node(X), node(Y), !tc(X, Y).";
  std::vector<Tuple> edges = benchutil::ChainGraph(8);
  Program shape = ParseDatalog(kStratified);
  for (const Tuple& e : edges) shape.AddFact("edge", e);
  for (int i = 0; i < 8; ++i) shape.AddFact("node", Tuple({I(i)}));

  for (const char* pred : {"tc", "unreach"}) {
    MagicProgram magic =
        MagicTransform(shape, DemandGoal{pred, {std::nullopt, std::nullopt}});
    EXPECT_FALSE(magic.transformed) << pred;
    EXPECT_EQ(magic.goal_pred, pred);

    Relation full = EvaluatePredicate(shape, pred, EvalOptions{});
    EvalOptions demand;
    demand.demand_goal = DemandGoal{pred, {std::nullopt, std::nullopt}};
    Relation demanded = EvaluatePredicate(shape, pred, demand);
    EXPECT_EQ(demanded, full) << pred;
    EXPECT_EQ(demanded.ToString(), full.ToString()) << pred;
  }
}

}  // namespace
}  // namespace datalog
}  // namespace rel
