// Round-trip differential suite: every program in the corpus runs natively
// on the Datalog engine, is translated to Rel source with ProgramToRel, and
// re-runs on the Rel engine twice — once on the classic tuple-at-a-time
// fixpoint and once with the recursion lowering enabled (which routes the
// recursive components straight back through the Datalog evaluator). All
// three extents must agree per IDB predicate, byte-identically under sorted
// rendering. This is the trust bridge between the two evaluators that the
// deductive-database integrity-checking literature leans on: each engine
// cross-checks the other over the shared corpus.
//
// The corpus deliberately includes the translator's historical failure
// shapes: strings needing escapes, predicates whose names look like the
// generated variable names, and repeated head variables (body-only variable
// scoping through the single exists(...) wrapper).

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "benchutil/generators.h"
#include "core/engine.h"
#include "datalog/eval.h"
#include "datalog/program.h"
#include "datalog/to_rel.h"

namespace rel {
namespace datalog {
namespace {

Value I(int64_t v) { return Value::Int(v); }

/// Runs the differential comparison for one program. Every rule-head
/// predicate is compared; facts-only predicates round-trip trivially.
void ExpectRoundTrip(const Program& program, const std::string& label) {
  std::map<std::string, Relation> native =
      Evaluate(program, Strategy::kSemiNaive);
  std::string rel_source = ProgramToRel(program);
  std::set<std::string> idb;
  for (const Rule& rule : program.rules()) idb.insert(rule.head.pred);

  for (bool lower : {false, true}) {
    Engine engine;
    engine.options().lower_recursion = lower;
    engine.Define(rel_source);
    for (const std::string& pred : idb) {
      Relation translated = engine.Query("def output : " + pred);
      const Relation& expected = native.at(pred);
      EXPECT_EQ(expected, translated)
          << label << ": '" << pred << "' diverges (lower_recursion="
          << lower << ")\ntranslated program:\n" << rel_source;
      EXPECT_EQ(expected.ToString(), translated.ToString())
          << label << ": sorted rendering of '" << pred << "' not identical";
    }
  }
}

void ExpectRoundTrip(const std::string& source, const std::string& label) {
  ExpectRoundTrip(ParseDatalog(source), label);
}

// --- the eval_test corpus ----------------------------------------------------

TEST(ToRelRoundTrip, TransitiveClosureOverRandomGraphs) {
  for (uint64_t seed : {1u, 7u, 42u}) {
    Program p = ParseDatalog(
        "tc(X,Y) :- edge(X,Y). tc(X,Z) :- edge(X,Y), tc(Y,Z).");
    for (const Tuple& e : benchutil::RandomGraph(20, 60, seed)) {
      p.AddFact("edge", e);
    }
    ExpectRoundTrip(p, "tc/seed" + std::to_string(seed));
  }
}

TEST(ToRelRoundTrip, TransitiveClosureOverChain) {
  Program p = ParseDatalog(
      "tc(X,Y) :- edge(X,Y). tc(X,Z) :- edge(X,Y), tc(Y,Z).");
  for (const Tuple& e : benchutil::ChainGraph(24)) p.AddFact("edge", e);
  ExpectRoundTrip(p, "tc/chain");
}

TEST(ToRelRoundTrip, SameGeneration) {
  ExpectRoundTrip(
      "parent(1, 3). parent(1, 4). parent(2, 5).\n"
      "parent(3, 6). parent(4, 7). parent(5, 8).\n"
      "sg(X, Y) :- parent(P, X), parent(P, Y), X != Y.\n"
      "sg(X, Y) :- parent(A, X), parent(B, Y), sg(A, B).",
      "same-generation");
}

TEST(ToRelRoundTrip, NegationAcrossStrata) {
  ExpectRoundTrip(
      "node(1). node(2). node(3). node(4).\n"
      "edge(1,2). edge(2,3).\n"
      "reach(X) :- edge(1, X).\n"
      "reach(X) :- reach(Y), edge(Y, X).\n"
      "unreach(X) :- node(X), !reach(X), X != 1.\n"
      "island(X) :- unreach(X), !edge(X, 1).",
      "negation");
}

TEST(ToRelRoundTrip, MixedArityFacts) {
  Program p;
  p.AddFact("r", Tuple({I(1)}));
  p.AddFact("r", Tuple({I(1), I(2)}));
  p.AddFact("r", Tuple({I(2), I(3)}));
  p.AddFact("r", Tuple({I(1), I(2), I(3)}));
  Program rules = ParseDatalog(
      "unary(X) :- r(X).\n"
      "pair(X, Y) :- r(X, Y).\n"
      "chain(X, Z) :- r(X, Y), r(Y, Z).\n"
      "wide(X) :- r(X, _, _).");
  for (const Rule& r : rules.rules()) p.AddRule(r);
  ExpectRoundTrip(p, "mixed-arity");
}

TEST(ToRelRoundTrip, ArithmeticAndComparisons) {
  ExpectRoundTrip(
      "n(1). n(2). n(3).\n"
      "double(X, D) :- n(X), D = X * 2.\n"
      "big(X) :- double(_, X), X >= 4.\n"
      "halfsum(H) :- n(X), n(Y), X < Y, H = X + Y.",
      "arithmetic");
}

TEST(ToRelRoundTrip, BoundedPathArithmetic) {
  Program p = ParseDatalog(
      "path(X, Y, D) :- edge(X, Y), D = 1 + 0.\n"
      "path(X, Z, D) :- path(X, Y, E), edge(Y, Z), D = E + 1, E < 6.");
  for (const Tuple& e : benchutil::RandomGraph(10, 25, 13)) {
    p.AddFact("edge", e);
  }
  ExpectRoundTrip(p, "bounded-path");
}

TEST(ToRelRoundTrip, ConstantsInAtoms) {
  Program p = ParseDatalog(
      "tc(X,Y) :- edge(X,Y). tc(X,Z) :- edge(X,Y), tc(Y,Z).\n"
      "goal(Y) :- tc(0, Y).\n"
      "self(X) :- tc(X, X).");
  for (const Tuple& e : benchutil::RandomGraph(12, 36, 9)) {
    p.AddFact("edge", e);
  }
  ExpectRoundTrip(p, "constants");
}

TEST(ToRelRoundTrip, FloatsAndDivision) {
  ExpectRoundTrip(
      "n(6). n(4.0).\n"
      "half(Y) :- n(X), Y = X / 2.\n"
      "shifted(Y) :- n(X), Y = X + 1.",
      "floats");
}

// --- the translator's historical failure shapes ------------------------------

TEST(ToRelRoundTrip, RepeatedHeadVariables) {
  // p(X, X): a repeated Rel binder would shadow the first occurrence and
  // leave it unbound; the translator must alias and equate instead.
  ExpectRoundTrip(
      "node(1). node(2). edge(1, 2). edge(2, 2).\n"
      "loop(X, X) :- node(X).\n"
      "meet(X, Y, X) :- edge(X, Y).\n"
      "twice(X, X) :- edge(X, X).",
      "repeated-head-vars");
}

TEST(ToRelRoundTrip, RepeatedHeadVariableRendering) {
  Program p = ParseDatalog("loop(X, X) :- node(X).");
  EXPECT_EQ(RuleToRel(p.rules()[0]),
            "def loop(v0, v1) : node(v0) and v1 = v0");
}

TEST(ToRelRoundTrip, PredicateNamedLikeVariable) {
  // An unscoped identifier in Rel denotes a relation: a predicate named
  // `v1` must not capture the translator's generated variable names.
  ExpectRoundTrip(
      "v1(1). v1(5).\n"
      "p(X) :- v1(X), X > 1.\n"
      "q(X, Y) :- v1(X), v1(Y), X < Y.",
      "pred-named-v1");
}

TEST(ToRelRoundTrip, StringEscaping) {
  Program p;
  p.AddFact("s", Tuple({Value::String("plain")}));
  p.AddFact("s", Tuple({Value::String("with \"quotes\"")}));
  p.AddFact("s", Tuple({Value::String("back\\slash")}));
  p.AddFact("s", Tuple({Value::String("line\nbreak\ttab")}));
  Program rules = ParseDatalog("t(X) :- s(X). u(X, Y) :- s(X), s(Y), X != Y.");
  for (const Rule& r : rules.rules()) p.AddRule(r);
  ExpectRoundTrip(p, "string-escaping");
}

TEST(ToRelRoundTrip, SymbolicConstants) {
  ExpectRoundTrip(
      "likes(\"ann\", bob). likes(bob, \"carol\"). likes(bob, bob).\n"
      "pair(X, Y) :- likes(X, Y), X != Y.\n"
      "narcissist(X) :- likes(X, X).",
      "symbolic-constants");
}

TEST(ToRelRoundTrip, MinMaxAssignments) {
  // minimum/maximum have no infix form; built through the API.
  Program p;
  p.AddFact("m", Tuple({I(3), I(8)}));
  p.AddFact("m", Tuple({I(7), I(2)}));
  Rule lo;
  lo.head = Atom{"lo", {Term::Var(0), Term::Var(1), Term::Var(2)}};
  lo.body.push_back(Literal::Positive(Atom{"m", {Term::Var(0), Term::Var(1)}}));
  lo.body.push_back(
      Literal::Assign(2, ArithOp::kMin, Term::Var(0), Term::Var(1)));
  p.AddRule(lo);
  Rule hi;
  hi.head = Atom{"hi", {Term::Var(0), Term::Var(1), Term::Var(2)}};
  hi.body.push_back(Literal::Positive(Atom{"m", {Term::Var(0), Term::Var(1)}}));
  hi.body.push_back(
      Literal::Assign(2, ArithOp::kMax, Term::Var(0), Term::Var(1)));
  p.AddRule(hi);
  ExpectRoundTrip(p, "min-max");
}

TEST(ToRelRoundTrip, NegativeConstants) {
  ExpectRoundTrip(
      "q(1). q(-2). q(-7).\n"
      "p(X) :- q(X), X > -3.\n"
      "neg(Y) :- q(X), Y = X * -1.",
      "negative-constants");
}

}  // namespace
}  // namespace datalog
}  // namespace rel
