// Tests for the baseline classical Datalog engine.

#include <gtest/gtest.h>

#include "base/error.h"
#include "benchutil/generators.h"
#include "benchutil/reference.h"
#include "datalog/eval.h"
#include "datalog/program.h"

namespace rel {
namespace datalog {
namespace {

Value I(int64_t v) { return Value::Int(v); }

TEST(DatalogParser, FactsAndRules) {
  Program p = ParseDatalog(
      "edge(1, 2). edge(2, 3).\n"
      "% comment\n"
      "tc(X, Y) :- edge(X, Y).\n"
      "tc(X, Z) :- edge(X, Y), tc(Y, Z).");
  EXPECT_EQ(p.facts().at("edge").size(), 2u);
  EXPECT_EQ(p.rules().size(), 2u);
}

TEST(DatalogParser, LiteralKinds) {
  Program p = ParseDatalog(
      "r(X, D) :- e(X), !blocked(X), X < 10, D = X + 1.");
  const Rule& rule = p.rules()[0];
  ASSERT_EQ(rule.body.size(), 4u);
  EXPECT_EQ(rule.body[0].kind, Literal::Kind::kPositive);
  EXPECT_EQ(rule.body[1].kind, Literal::Kind::kNegative);
  EXPECT_EQ(rule.body[2].kind, Literal::Kind::kCompare);
  EXPECT_EQ(rule.body[3].kind, Literal::Kind::kAssign);
}

TEST(DatalogParser, ConstantsAndStrings) {
  Program p = ParseDatalog("likes(\"ann\", bob). n(42). f(2.5).");
  EXPECT_TRUE(p.facts().at("likes").Contains(
      Tuple({Value::String("ann"), Value::String("bob")})));
  EXPECT_TRUE(p.facts().at("n").Contains(Tuple({I(42)})));
}

TEST(DatalogParser, Errors) {
  EXPECT_THROW(ParseDatalog("p(X)."), RelError);         // non-ground fact
  EXPECT_THROW(ParseDatalog("p(1) :- "), RelError);      // missing body
  EXPECT_THROW(ParseDatalog("p(1)"), RelError);          // missing period
}

TEST(DatalogEval, TransitiveClosure) {
  Program p = ParseDatalog(
      "edge(1,2). edge(2,3). edge(3,4).\n"
      "tc(X,Y) :- edge(X,Y).\n"
      "tc(X,Z) :- edge(X,Y), tc(Y,Z).");
  Relation tc = EvaluatePredicate(p, "tc");
  EXPECT_EQ(tc.size(), 6u);
  EXPECT_TRUE(tc.Contains(Tuple({I(1), I(4)})));
}

TEST(DatalogEval, NaiveAndSemiNaiveAgree) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    Program base;
    for (const Tuple& e : benchutil::RandomGraph(24, 60, seed)) {
      base.AddFact("edge", e);
    }
    Program p1 = base, p2 = base;
    for (Program* p : {&p1, &p2}) {
      Program rules = ParseDatalog(
          "tc(X,Y) :- edge(X,Y). tc(X,Z) :- edge(X,Y), tc(Y,Z).");
      for (const Rule& r : rules.rules()) p->AddRule(r);
    }
    EvalStats naive_stats, semi_stats;
    Relation naive = EvaluatePredicate(p1, "tc", Strategy::kNaive, &naive_stats);
    Relation semi =
        EvaluatePredicate(p2, "tc", Strategy::kSemiNaive, &semi_stats);
    EXPECT_EQ(naive, semi);
    // Semi-naive derives strictly fewer tuples on non-trivial graphs.
    EXPECT_LE(semi_stats.tuples_derived, naive_stats.tuples_derived);
  }
}

TEST(DatalogEval, MatchesReferenceClosure) {
  std::vector<Tuple> edges = benchutil::RandomGraph(30, 70, 99);
  Program p;
  for (const Tuple& e : edges) p.AddFact("edge", e);
  Program rules =
      ParseDatalog("tc(X,Y) :- edge(X,Y). tc(X,Z) :- edge(X,Y), tc(Y,Z).");
  for (const Rule& r : rules.rules()) p.AddRule(r);
  Relation tc = EvaluatePredicate(p, "tc");
  auto ref = benchutil::TransitiveClosureRef(edges);
  EXPECT_EQ(tc.size(), ref.size());
  for (const auto& [a, b] : ref) {
    EXPECT_TRUE(tc.Contains(Tuple({I(a), I(b)})));
  }
}

TEST(DatalogEval, StratifiedNegation) {
  Program p = ParseDatalog(
      "node(1). node(2). node(3).\n"
      "edge(1,2).\n"
      "reach(X) :- edge(1, X).\n"
      "reach(X) :- reach(Y), edge(Y, X).\n"
      "unreach(X) :- node(X), !reach(X), X != 1.");
  Relation u = EvaluatePredicate(p, "unreach");
  EXPECT_EQ(u.ToString(), "{(3)}");
}

TEST(DatalogEval, NonStratifiableRejected) {
  Program p = ParseDatalog("p(X) :- q(X), !p(X). q(1).");
  EXPECT_THROW(Evaluate(p, Strategy::kSemiNaive), RelError);
}

TEST(DatalogEval, UnsafeRuleRejected) {
  Program p = ParseDatalog("p(X, Y) :- q(X).  q(1).");
  EXPECT_THROW(Evaluate(p, Strategy::kSemiNaive), RelError);
}

TEST(DatalogEval, ArithmeticAndComparison) {
  Program p = ParseDatalog(
      "n(1). n(2). n(3).\n"
      "double(X, D) :- n(X), D = X * 2.\n"
      "big(X) :- double(_, X), X >= 4.");
  EXPECT_EQ(EvaluatePredicate(p, "double").size(), 3u);
  EXPECT_EQ(EvaluatePredicate(p, "big").ToString(), "{(4); (6)}");
}

TEST(DatalogEval, BoundedPathLengths) {
  // Classic shortest-path-with-bound using arithmetic.
  Program p = ParseDatalog(
      "edge(1,2). edge(2,3). edge(3,4).\n"
      "path(X, Y, D) :- edge(X, Y), D = 1 + 0.\n"
      "path(X, Z, D) :- path(X, Y, E), edge(Y, Z), D = E + 1, E < 10.");
  Relation paths = EvaluatePredicate(p, "path");
  EXPECT_TRUE(paths.Contains(Tuple({I(1), I(4), I(3)})));
}

TEST(DatalogEval, StatsReportStrataAndIterations) {
  Program p = ParseDatalog(
      "e(1,2). e(2,3).\n"
      "tc(X,Y) :- e(X,Y). tc(X,Z) :- e(X,Y), tc(Y,Z).\n"
      "not_closed(X) :- e(X, _), !tc(X, X).");
  EvalStats stats;
  Evaluate(p, Strategy::kSemiNaive, &stats);
  EXPECT_EQ(stats.strata, 2);
  EXPECT_GE(stats.iterations, 2);
}

}  // namespace
}  // namespace datalog
}  // namespace rel
