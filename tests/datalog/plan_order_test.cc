// Pins the EvalOptions::plan_order_seed contract (datalog/eval.h): every
// seed permutes the planned strategy's join orders but computes the
// identical fixpoint, the same number of rounds, and the same
// tuples_derived — only access-path counters (index_probes, index_builds,
// sorted_builds, driver_scans, leapfrog_joins) may differ. The
// equivalent-query fuzzer (src/fuzz) sweeps the knob over random programs;
// this test pins the contract on a readable 3-rule program, across thread
// counts, including the leapfrog bypass (seeded orders route triangle
// rules through binary join pipelines instead).

#include "datalog/eval.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "benchutil/generators.h"
#include "datalog/program.h"

namespace rel {
namespace datalog {
namespace {

// Three rules: non-linear transitive closure plus a triangle self-join —
// the triangle rule takes the leapfrog path at seed 0 and the binary-join
// path under any non-zero seed, so the sweep crosses both access paths.
Program BuildProgram() {
  Program p = ParseDatalog(
      "tc(X, Y) :- edge(X, Y)."
      "tc(X, Z) :- tc(X, Y), tc(Y, Z)."
      "tri(X, Y, Z) :- edge(X, Y), edge(Y, Z), edge(Z, X).");
  for (const Tuple& t : benchutil::RandomGraph(14, 40, 11)) {
    p.AddFact("edge", t);
  }
  return p;
}

TEST(PlanOrderSeed, AllOrdersComputeTheSameFixpoint) {
  EvalStats base_stats;
  EvalOptions base;
  base.strategy = Strategy::kSemiNaive;
  std::map<std::string, Relation> reference =
      Evaluate(BuildProgram(), base, &base_stats);
  ASSERT_FALSE(reference.at("tc").empty());
  ASSERT_FALSE(reference.at("tri").empty());
  ASSERT_GT(base_stats.leapfrog_joins, 0u);  // seed 0 routes the triangle

  for (uint64_t seed : {1ull, 7ull, 42ull, 0x9E3779B97F4A7C15ull}) {
    for (int threads : {1, 4}) {
      EvalOptions options;
      options.strategy = Strategy::kSemiNaive;
      options.plan_order_seed = seed;
      options.num_threads = threads;
      EvalStats stats;
      std::map<std::string, Relation> got =
          Evaluate(BuildProgram(), options, &stats);
      for (const char* pred : {"tc", "tri"}) {
        EXPECT_EQ(got.at(pred), reference.at(pred))
            << pred << " diverged at seed " << seed << " threads "
            << threads;
        EXPECT_EQ(got.at(pred).ToString(), reference.at(pred).ToString())
            << pred << " rendering not byte-identical at seed " << seed;
      }
      // Cost-equivalence: same rounds, same satisfying body assignments.
      EXPECT_EQ(stats.iterations, base_stats.iterations) << "seed " << seed;
      EXPECT_EQ(stats.tuples_derived, base_stats.tuples_derived)
          << "seed " << seed << " threads " << threads;
      // Non-zero seeds bypass the worst-case-optimal routing entirely.
      EXPECT_EQ(stats.leapfrog_joins, 0u) << "seed " << seed;
    }
  }
}

TEST(PlanOrderSeed, SameSeedIsReproducible) {
  EvalOptions options;
  options.strategy = Strategy::kSemiNaive;
  options.plan_order_seed = 7;
  EvalStats a, b;
  std::map<std::string, Relation> ra = Evaluate(BuildProgram(), options, &a);
  std::map<std::string, Relation> rb = Evaluate(BuildProgram(), options, &b);
  EXPECT_EQ(ra.at("tc"), rb.at("tc"));
  // The permutation is a pure function of (seed, rule, delta occurrence):
  // identical runs take identical access paths, probe for probe.
  EXPECT_EQ(a.index_probes, b.index_probes);
  EXPECT_EQ(a.index_builds, b.index_builds);
  EXPECT_EQ(a.tuples_derived, b.tuples_derived);
}

TEST(PlanOrderSeed, ScanStrategiesIgnoreTheKnob) {
  for (Strategy strategy : {Strategy::kNaive, Strategy::kSemiNaiveScan}) {
    EvalOptions plain;
    plain.strategy = strategy;
    EvalOptions seeded = plain;
    seeded.plan_order_seed = 99;
    EvalStats sp, ss;
    std::map<std::string, Relation> rp =
        Evaluate(BuildProgram(), plain, &sp);
    std::map<std::string, Relation> rs =
        Evaluate(BuildProgram(), seeded, &ss);
    EXPECT_EQ(rp.at("tc"), rs.at("tc"));
    EXPECT_EQ(sp.tuples_derived, ss.tuples_derived);
    EXPECT_EQ(sp.full_scans, ss.full_scans);
  }
}

}  // namespace
}  // namespace datalog
}  // namespace rel
