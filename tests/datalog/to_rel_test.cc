// Differential tests for the Datalog -> Rel translator: the translated
// program must compute the same extents on the Rel engine as the classical
// engine computes natively.

#include "datalog/to_rel.h"

#include <gtest/gtest.h>

#include "benchutil/generators.h"
#include "core/engine.h"
#include "datalog/eval.h"

namespace rel {
namespace datalog {
namespace {

/// Runs `source` on both engines and compares the extent of `pred`.
void ExpectAgreement(const std::string& source, const std::string& pred) {
  Program program = ParseDatalog(source);
  Relation native = EvaluatePredicate(program, pred);

  Engine engine;
  std::string rel_source = ProgramToRel(program);
  Relation translated =
      engine.Query(rel_source + "\ndef output : " + pred);
  EXPECT_EQ(native, translated) << "translated program:\n" << rel_source;
}

TEST(ToRel, FactsBecomeRelationConstants) {
  Program p = ParseDatalog("edge(1, 2). edge(2, 3).");
  EXPECT_EQ(ProgramToRel(p), "def edge {(1, 2) ; (2, 3)}\n");
}

TEST(ToRel, BodyVariablesAreQuantified) {
  Program p = ParseDatalog("tc(X, Z) :- edge(X, Y), tc(Y, Z).");
  std::string rel_source = RuleToRel(p.rules()[0]);
  // Y is body-only: must be existentially quantified.
  EXPECT_NE(rel_source.find("exists("), std::string::npos);
  // Head variables are numbered first (X=v0, Z=v1), then body-only Y=v2.
  EXPECT_EQ(rel_source,
            "def tc(v0, v1) : exists((v2) | edge(v0, v2) and tc(v2, v1))");
}

TEST(ToRel, TransitiveClosureAgrees) {
  ExpectAgreement(
      "edge(1,2). edge(2,3). edge(3,4). edge(4,2).\n"
      "tc(X,Y) :- edge(X,Y).\n"
      "tc(X,Z) :- edge(X,Y), tc(Y,Z).",
      "tc");
}

TEST(ToRel, NegationAgrees) {
  ExpectAgreement(
      "node(1). node(2). node(3). edge(1,2).\n"
      "reach(X) :- edge(1, X).\n"
      "reach(Y) :- reach(X), edge(X, Y).\n"
      "unreach(X) :- node(X), !reach(X), X != 1.",
      "unreach");
}

TEST(ToRel, ArithmeticAndComparisonsAgree) {
  ExpectAgreement(
      "n(1). n(2). n(3).\n"
      "double(X, D) :- n(X), D = X * 2.\n"
      "big(X) :- double(_, X), X >= 4.",
      "big");
}

TEST(ToRel, StringConstantsAgree) {
  ExpectAgreement(
      "likes(\"ann\", bob). likes(bob, \"carol\").\n"
      "pair(X, Y) :- likes(X, Y), X != Y.",
      "pair");
}

TEST(ToRel, RandomGraphClosureAgrees) {
  for (uint64_t seed : {5u, 6u}) {
    Program program;
    for (const Tuple& e : benchutil::RandomGraph(15, 40, seed)) {
      program.AddFact("edge", e);
    }
    Program rules = ParseDatalog(
        "tc(X,Y) :- edge(X,Y). tc(X,Z) :- edge(X,Y), tc(Y,Z).");
    for (const Rule& r : rules.rules()) program.AddRule(r);

    Relation native = EvaluatePredicate(program, "tc");
    Engine engine;
    Relation translated =
        engine.Query(ProgramToRel(program) + "\ndef output : tc");
    EXPECT_EQ(native, translated) << "seed " << seed;
  }
}

}  // namespace
}  // namespace datalog
}  // namespace rel
