// Property test for the line-protocol escaping (src/server/protocol.h):
// UnescapeLine(EscapeLine(s)) == s for arbitrary strings, and EscapeLine
// output never contains a raw newline (the framing invariant the
// line-oriented transport depends on). Strings are fuzz-generated with the
// same deterministic Rng the equivalent-query fuzzer uses — heavy on the
// characters the escaper must handle: '\n', '\\', escape-lookalike pairs
// ("\\n"), and embedded NULs.

#include "server/protocol.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "base/rng.h"

namespace rel {
namespace server {
namespace {

/// A random string biased toward escaping hazards. Length 0..63.
std::string HazardString(Rng& rng) {
  static const char kHazards[] = {'\n', '\\', 'n', '\r', '\t', '\0', '"'};
  size_t len = rng.NextBelow(64);
  std::string s;
  s.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    if (rng.NextBool(0.4)) {
      s += kHazards[rng.NextBelow(sizeof(kHazards))];
    } else {
      s += static_cast<char>(32 + rng.NextBelow(95));  // printable ASCII
    }
  }
  return s;
}

TEST(ProtocolEscape, RoundTripsFuzzedStrings) {
  Rng rng(0xE5CA9E5EEDull);
  for (int i = 0; i < 2000; ++i) {
    std::string s = HazardString(rng);
    std::string escaped = EscapeLine(s);
    EXPECT_EQ(escaped.find('\n'), std::string::npos)
        << "raw newline survives escaping in case " << i;
    EXPECT_EQ(UnescapeLine(escaped), s)
        << "round trip lost case " << i << ": [" << escaped << "]";
  }
}

TEST(ProtocolEscape, RoundTripsTheNastyCorners) {
  const std::string cases[] = {
      "",
      "\n",
      "\\",
      "\\n",          // literal backslash + n, must NOT become a newline
      "\\\n",         // literal backslash then a real newline
      "\\\\n",        // two backslashes then n
      "a\nb\nc",
      std::string("nul\0nul", 7),
      "trailing backslash \\",
      "def output(x) :\n  edge(x, _)",  // multi-line Rel source
  };
  for (const std::string& s : cases) {
    EXPECT_EQ(UnescapeLine(EscapeLine(s)), s);
    EXPECT_EQ(EscapeLine(s).find('\n'), std::string::npos);
  }
}

TEST(ProtocolEscape, UnknownEscapesPassThroughVerbatim) {
  // Documented contract: UnescapeLine leaves escapes it does not know
  // alone, so hand-typed client input degrades gracefully.
  EXPECT_EQ(UnescapeLine("\\t"), "\\t");
  EXPECT_EQ(UnescapeLine("a\\qb"), "a\\qb");
}

}  // namespace
}  // namespace server
}  // namespace rel
