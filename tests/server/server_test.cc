// Server tests: the line protocol (transport-free, via SessionHandler) and
// the TCP LineServer with concurrent clients. Socket tests skip when the
// environment forbids binding (sandboxed CI runners).

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "server/protocol.h"
#include "server/server.h"

namespace rel {
namespace server {
namespace {

TEST(Protocol, EscapeRoundTrip) {
  const std::string multi = "def a : 1\ndef b : 2\\n";
  EXPECT_EQ(UnescapeLine(EscapeLine(multi)), multi);
  EXPECT_EQ(EscapeLine(multi).find('\n'), std::string::npos);
}

TEST(Protocol, EvalAndPing) {
  Engine engine;
  SessionHandler handler(&engine);
  EXPECT_EQ(handler.Handle("ping"), "ok pong");
  EXPECT_EQ(handler.Handle("eval 1 + 2"), "ok {(3)}");
  EXPECT_FALSE(handler.closed());
}

TEST(Protocol, DefExecBaseFlow) {
  Engine engine;
  SessionHandler handler(&engine);
  EXPECT_EQ(handler.Handle("def def E {(1,2);(2,3)}").substr(0, 2), "ok");
  EXPECT_EQ(handler.Handle("eval count[TC[E]]"), "ok {(3)}");
  std::string exec = handler.Handle("exec def insert(:V, x) : TC[E](1, x)");
  EXPECT_EQ(exec.substr(0, 6), "ok +2 ");
  EXPECT_EQ(handler.Handle("base V"), "ok {(2); (3)}");
}

TEST(Protocol, MultiLinePayloadViaEscapes) {
  Engine engine;
  SessionHandler handler(&engine);
  EXPECT_EQ(
      handler.Handle("query def t(x) : x = 1\\ndef output : count[t]"),
      "ok {(1)}");
}

TEST(Protocol, ErrorsBecomeErrResponses) {
  Engine engine;
  SessionHandler handler(&engine);
  EXPECT_EQ(handler.Handle("nonsense").substr(0, 4), "err ");
  EXPECT_EQ(handler.Handle("eval 1 +").substr(0, 4), "err ");
  // The handler survives errors; the session still works.
  EXPECT_EQ(handler.Handle("eval 2 * 2"), "ok {(4)}");
}

TEST(Protocol, QuitClosesHandler) {
  Engine engine;
  SessionHandler handler(&engine);
  EXPECT_EQ(handler.Handle("quit"), "ok bye");
  EXPECT_TRUE(handler.closed());
}

TEST(Protocol, HandlersAreSnapshotIsolated) {
  Engine engine;
  SessionHandler a(&engine), b(&engine);
  a.Handle("exec def insert(:R, x) : x = 1");
  EXPECT_EQ(b.Handle("base R"), "ok {}");  // b still pinned pre-commit
  EXPECT_EQ(b.Handle("refresh").substr(0, 2), "ok");
  EXPECT_EQ(b.Handle("base R"), "ok {(1)}");
}

// --- TCP -------------------------------------------------------------------

/// A minimal blocking line client for the tests.
class TestClient {
 public:
  bool Connect(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
           0;
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  /// Sends one request line and reads one response line.
  std::string RoundTrip(const std::string& request) {
    std::string out = request + "\n";
    if (::send(fd_, out.data(), out.size(), MSG_NOSIGNAL) < 0) return "";
    std::string line;
    char c;
    while (buffer_.find('\n') == std::string::npos) {
      ssize_t n = ::recv(fd_, &c, 1, 0);
      if (n <= 0) return "";
      buffer_ += c;
    }
    size_t eol = buffer_.find('\n');
    line = buffer_.substr(0, eol);
    buffer_.erase(0, eol + 1);
    return line;
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

/// Starts a server on an ephemeral port, or skips the test where sockets
/// are unavailable.
#define START_OR_SKIP(server)                                            \
  do {                                                                   \
    Status s = (server).Start();                                         \
    if (!s.ok()) GTEST_SKIP() << "no sockets here: " << s.ToString();    \
  } while (0)

TEST(LineServer, RoundTripOverTcp) {
  Engine engine;
  ServerOptions options;
  options.num_workers = 2;
  LineServer server(&engine, options);
  START_OR_SKIP(server);

  TestClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  EXPECT_EQ(client.RoundTrip("ping"), "ok pong");
  EXPECT_EQ(client.RoundTrip("eval 6 * 7"), "ok {(42)}");
  EXPECT_EQ(client.RoundTrip("exec def insert(:R, x) : x = 1").substr(0, 5),
            "ok +1");
  EXPECT_EQ(client.RoundTrip("base R"), "ok {(1)}");
  EXPECT_EQ(client.RoundTrip("quit"), "ok bye");
  server.Stop();
  EXPECT_FALSE(server.running());
}

TEST(LineServer, ConcurrentClientsGetIsolatedSessions) {
  Engine engine;
  engine.Insert("R", {Tuple({Value::Int(1)})});
  ServerOptions options;
  options.num_workers = 4;
  LineServer server(&engine, options);
  START_OR_SKIP(server);

  constexpr int kClients = 4;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      TestClient client;
      if (!client.Connect(server.port())) {
        ++failures;
        return;
      }
      // Every client pins its own snapshot, writes its own value, and must
      // read it back (read-your-writes through the pipeline).
      std::string v = std::to_string(100 + i);
      if (client.RoundTrip("exec def insert(:R, x) : x = " + v)
              .substr(0, 5) != "ok +1") {
        ++failures;
        return;
      }
      std::string base = client.RoundTrip("base R");
      if (base.find("(" + v + ")") == std::string::npos) ++failures;
      client.RoundTrip("quit");
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures, 0);
  server.Stop();
  // All four commits landed.
  EXPECT_EQ(engine.Base("R").size(), 1u + kClients);
}

TEST(LineServer, StopUnblocksIdleConnections) {
  Engine engine;
  LineServer server(&engine, {});
  START_OR_SKIP(server);
  TestClient idle;
  ASSERT_TRUE(idle.Connect(server.port()));
  EXPECT_EQ(idle.RoundTrip("ping"), "ok pong");
  // The client now sits idle (blocked server-side in recv); Stop must not
  // hang on it.
  server.Stop();
  EXPECT_FALSE(server.running());
}

}  // namespace
}  // namespace server
}  // namespace rel
