// Tests for the column-major relation storage: arena growth, row-index
// dedup across erase/swap rewrites, iteration stability while inserting,
// TupleRef view validity, and version-based index invalidation.

#include <gtest/gtest.h>

#include <vector>

#include "data/relation.h"
#include "datalog/index.h"

namespace rel {
namespace {

Value I(int64_t v) { return Value::Int(v); }

TEST(ColumnArena, GrowthAcrossRounds) {
  // Simulates fixpoint behavior: many insert waves into one arity, far past
  // several hash-table rehashes and column reallocations.
  Relation r;
  constexpr int kRounds = 10;
  constexpr int kPerRound = 300;
  for (int round = 0; round < kRounds; ++round) {
    for (int i = 0; i < kPerRound; ++i) {
      EXPECT_TRUE(r.Insert(Tuple({I(round), I(i)})));
      EXPECT_FALSE(r.Insert(Tuple({I(round), I(i)})));  // immediate dup
    }
  }
  EXPECT_EQ(r.size(), static_cast<size_t>(kRounds * kPerRound));
  // Every tuple from every round is still findable after all the growth.
  for (int round = 0; round < kRounds; ++round) {
    for (int i = 0; i < kPerRound; ++i) {
      EXPECT_TRUE(r.Contains(Tuple({I(round), I(i)})));
    }
  }
  EXPECT_FALSE(r.Contains(Tuple({I(kRounds), I(0)})));
  const ColumnArena* arena = r.ArenaOfArity(2);
  ASSERT_NE(arena, nullptr);
  EXPECT_EQ(arena->size(), r.size());
  EXPECT_EQ(arena->Column(0).size(), r.size());
}

TEST(ColumnArena, DedupAfterColumnRewrite) {
  // Erase swaps the last row into the erased slot (a column rewrite); the
  // row-index hash table must stay consistent through it.
  Relation r;
  for (int i = 0; i < 100; ++i) r.Insert(Tuple({I(i), I(i * 2)}));
  // Erase from the middle so the swap path (row != last) is exercised.
  for (int i = 10; i < 60; ++i) {
    EXPECT_TRUE(r.Erase(Tuple({I(i), I(i * 2)})));
  }
  EXPECT_EQ(r.size(), 50u);
  // Survivors still dedup — including the rows that were physically moved.
  for (int i = 60; i < 100; ++i) {
    EXPECT_TRUE(r.Contains(Tuple({I(i), I(i * 2)})));
    EXPECT_FALSE(r.Insert(Tuple({I(i), I(i * 2)})));
  }
  // Erased tuples are re-insertable exactly once.
  for (int i = 10; i < 60; ++i) {
    EXPECT_FALSE(r.Contains(Tuple({I(i), I(i * 2)})));
    EXPECT_TRUE(r.Insert(Tuple({I(i), I(i * 2)})));
    EXPECT_FALSE(r.Insert(Tuple({I(i), I(i * 2)})));
  }
  EXPECT_EQ(r.size(), 100u);
}

TEST(ColumnArena, VersionAdvancesOnEveryMutation) {
  Relation r;
  r.Insert(Tuple({I(1), I(2)}));
  const ColumnArena* arena = r.ArenaOfArity(2);
  ASSERT_NE(arena, nullptr);
  uint64_t v1 = arena->version();
  r.Insert(Tuple({I(3), I(4)}));
  uint64_t v2 = arena->version();
  EXPECT_GT(v2, v1);
  r.Erase(Tuple({I(3), I(4)}));
  r.Insert(Tuple({I(5), I(6)}));
  // Same size as at v2, but the content changed — version must differ.
  EXPECT_EQ(arena->size(), 2u);
  EXPECT_GT(arena->version(), v2);
  // A duplicate insert is not a mutation.
  uint64_t v3 = arena->version();
  r.Insert(Tuple({I(5), I(6)}));
  EXPECT_EQ(arena->version(), v3);
}

TEST(Relation, ForEachOfArityStableWhileInserting) {
  // Regression test for the emit-during-iteration pattern: inserting into
  // the relation being iterated must neither crash nor visit the new rows
  // in the same pass (the row count is snapshotted at entry).
  Relation r;
  constexpr int kInitial = 500;  // enough to force column reallocation
  for (int i = 0; i < kInitial; ++i) r.Insert(Tuple({I(i)}));
  int visited = 0;
  r.ForEachOfArity(1, [&](const TupleRef& t) {
    // Insert a fresh tuple derived from the visited one.
    r.Insert(Tuple({I(t[0].AsInt() + kInitial)}));
    ++visited;
  });
  EXPECT_EQ(visited, kInitial);
  EXPECT_EQ(r.size(), static_cast<size_t>(2 * kInitial));
}

TEST(Relation, ForEachStableWhileInsertingNewArity) {
  Relation r;
  for (int i = 0; i < 50; ++i) r.Insert(Tuple({I(i), I(i)}));
  int visited_pairs = 0;
  r.ForEach([&](const TupleRef& t) {
    if (t.arity() == 2) {
      // Derive into a different arity mid-iteration.
      r.Insert(Tuple({I(t[0].AsInt()), I(0), I(0)}));
      ++visited_pairs;
    }
  });
  EXPECT_EQ(visited_pairs, 50);
  EXPECT_EQ(r.CountOfArity(2), 50u);
  EXPECT_EQ(r.CountOfArity(3), 50u);
}

TEST(Relation, ScanPrefixStableWhenCallbackInsertsAndSorts) {
  // Regression: a ScanPrefix callback that inserts rows sorting before the
  // matched run AND forces a sorted view (re-sorting it in place) must not
  // shift the run under the scan — rows were visited twice before the scan
  // snapshotted its run.
  Relation r;
  for (int i = 0; i < 8; ++i) r.Insert(Tuple({I(1), I(i)}));
  int visited = 0;
  r.ScanPrefix(Tuple({I(1)}), [&](const TupleRef& row) {
    EXPECT_EQ(row[0], I(1));
    ++visited;
    r.Insert(Tuple({I(0), I(100 + visited)}));  // sorts before the run
    (void)r.TuplesOfArity(2);                   // forces the re-sort
    return true;
  });
  EXPECT_EQ(visited, 8);
  EXPECT_EQ(r.size(), 16u);
}

TEST(Relation, TupleRefStaysValidAcrossInserts) {
  Relation r;
  r.Insert(Tuple({I(7), I(8), I(9)}));
  const ColumnArena* arena = r.ArenaOfArity(3);
  ASSERT_NE(arena, nullptr);
  TupleRef ref = arena->Row(0);
  // Push the columns through several reallocations.
  for (int i = 0; i < 2000; ++i) r.Insert(Tuple({I(i), I(i), I(i)}));
  EXPECT_EQ(ref[0], I(7));
  EXPECT_EQ(ref[1], I(8));
  EXPECT_EQ(ref[2], I(9));
  EXPECT_EQ(ref.ToTuple(), Tuple({I(7), I(8), I(9)}));
}

TEST(Relation, MixedArityRoundTrip) {
  // A mixed-arity predicate (the paper's Prefix/Perm shape) written into
  // columnar storage and read back through every access path.
  std::vector<Tuple> tuples = {
      Tuple{},
      Tuple({I(1)}),
      Tuple({I(1), I(2)}),
      Tuple({I(1), I(2), I(3)}),
      Tuple({I(2), I(1)}),
  };
  Relation r = Relation::FromTuples(tuples);
  EXPECT_EQ(r.size(), 5u);
  EXPECT_EQ(r.Arities(), (std::vector<size_t>{0, 1, 2, 3}));
  for (const Tuple& t : tuples) EXPECT_TRUE(r.Contains(t));

  // Sorted round-trip is deterministic and ordered by (arity, lex).
  std::vector<Tuple> sorted = r.SortedTuples();
  ASSERT_EQ(sorted.size(), 5u);
  EXPECT_EQ(sorted[0], Tuple{});
  EXPECT_EQ(sorted[1], Tuple({I(1)}));
  EXPECT_EQ(sorted[2], Tuple({I(1), I(2)}));
  EXPECT_EQ(sorted[3], Tuple({I(2), I(1)}));
  EXPECT_EQ(sorted[4], Tuple({I(1), I(2), I(3)}));

  // Prefix scan crosses arity blocks; suffixes strip the prefix.
  Relation suffixes = r.Suffixes(Tuple({I(1)}));
  EXPECT_EQ(suffixes.size(), 3u);  // <>, (2), (2,3)
  EXPECT_TRUE(suffixes.Contains(Tuple{}));
  EXPECT_TRUE(suffixes.Contains(Tuple({I(2)})));
  EXPECT_TRUE(suffixes.Contains(Tuple({I(2), I(3)})));

  // Round-trip through copy + set algebra preserves equality and hash.
  Relation copy = r.Union(Relation());
  EXPECT_EQ(copy, r);
  EXPECT_EQ(copy.Hash(), r.Hash());
}

TEST(IndexCache, RebuildsOnVersionNotSize) {
  // Indexes store row indices into the arena; an erase+insert cycle that
  // returns to the same size must still invalidate them.
  Relation r;
  r.Insert(Tuple({I(1), I(10)}));
  r.Insert(Tuple({I(2), I(20)}));

  datalog::IndexCache cache;
  uint64_t builds = 0;
  const datalog::HashIndex& index = cache.Get("p", r, 2, {0}, &builds);
  EXPECT_EQ(builds, 1u);
  int hits = 0;
  index.Probe({I(2)}, [&](const TupleRef& row) {
    EXPECT_EQ(row[1], I(20));
    ++hits;
  });
  EXPECT_EQ(hits, 1);

  r.Erase(Tuple({I(2), I(20)}));
  r.Insert(Tuple({I(2), I(99)}));  // same size, different content

  const datalog::HashIndex& again = cache.Get("p", r, 2, {0}, &builds);
  EXPECT_EQ(builds, 2u);
  hits = 0;
  again.Probe({I(2)}, [&](const TupleRef& row) {
    EXPECT_EQ(row[1], I(99));
    ++hits;
  });
  EXPECT_EQ(hits, 1);
}

TEST(IndexCache, RebuildsWhenArityArenaIsRecreated) {
  // Erasing the last row of an arity destroys its arena; a new arena may be
  // allocated at the same address with a version that could collide. The
  // cache keys on the process-unique arena id, so it must rebuild.
  Relation r;
  r.Insert(Tuple({I(1), I(10)}));
  datalog::IndexCache cache;
  uint64_t builds = 0;
  cache.Get("p", r, 2, {0}, &builds);
  EXPECT_EQ(builds, 1u);
  r.Erase(Tuple({I(1), I(10)}));   // arity-2 arena destroyed
  r.Insert(Tuple({I(1), I(77)}));  // fresh arena, possibly same address
  const datalog::HashIndex& index = cache.Get("p", r, 2, {0}, &builds);
  EXPECT_EQ(builds, 2u);
  int hits = 0;
  index.Probe({I(1)}, [&](const TupleRef& row) {
    EXPECT_EQ(row[1], I(77));
    ++hits;
  });
  EXPECT_EQ(hits, 1);
}

TEST(IndexCache, SortedColumnsCachedPerVersion) {
  Relation r;
  r.Insert(Tuple({I(3), I(1)}));
  r.Insert(Tuple({I(1), I(2)}));

  datalog::IndexCache cache;
  uint64_t builds = 0;
  const joins::SortedColumns& swapped = cache.GetSorted("p", r, 2, {1, 0},
                                                        &builds);
  EXPECT_EQ(builds, 1u);
  ASSERT_EQ(swapped.rows, 2u);
  // Permuted column 0 is stored column 1, sorted: (1,3), (2,1).
  EXPECT_EQ(swapped.cols[0], (std::vector<Value>{I(1), I(2)}));
  EXPECT_EQ(swapped.cols[1], (std::vector<Value>{I(3), I(1)}));

  // Unchanged relation: cache hit, no rebuild.
  cache.GetSorted("p", r, 2, {1, 0}, &builds);
  EXPECT_EQ(builds, 1u);

  r.Insert(Tuple({I(0), I(0)}));
  const joins::SortedColumns& rebuilt = cache.GetSorted("p", r, 2, {1, 0},
                                                        &builds);
  EXPECT_EQ(builds, 2u);
  EXPECT_EQ(rebuilt.rows, 3u);
}

// --- the ForEachOfArityRange / swap-last-erase contract ----------------------
//
// Erase swaps the last row into the erased slot and shrinks the columns, so
// row indices held across an in-loop mutation go stale. The pinned contract
// (src/data/relation.h): ranged iteration re-clamps to the shrunken row
// count — it never hands out a row index past the end — and visitation
// becomes lossy (the swapped-in row may be skipped), while erase-free
// iteration stays exactly-once with ranges partitioning the arena.

TEST(ForEachRangeErase, DisjointRangesPartitionExactlyWithoutMutation) {
  Relation r;
  constexpr int kRows = 1000;
  for (int i = 0; i < kRows; ++i) r.Insert(Tuple({I(i), I(i + 1)}));
  // Chunked like the parallel evaluator's driver scans: arbitrary cuts.
  std::vector<std::pair<size_t, size_t>> ranges = {
      {0, 137}, {137, 512}, {512, 513}, {513, 1000}, {1000, 2000}};
  std::vector<int> seen(kRows, 0);
  for (const auto& [begin, end] : ranges) {
    r.ForEachOfArityRange(2, begin, end, [&](const TupleRef& t) {
      seen[static_cast<int>(t[0].AsInt())]++;
    });
  }
  for (int i = 0; i < kRows; ++i) {
    EXPECT_EQ(seen[i], 1) << "row " << i << " visited " << seen[i] << " times";
  }
}

TEST(ForEachRangeErase, EraseDuringRangedIterationTruncatesSafely) {
  // fn erases the row it is handed (plus never the last remaining tuple of
  // the arity): the loop must re-clamp to the shrinking arena instead of
  // dereferencing stale row indices past the new end.
  Relation r;
  constexpr int kRows = 64;
  for (int i = 0; i < kRows; ++i) r.Insert(Tuple({I(i)}));
  size_t visited = 0;
  r.ForEachOfArityRange(1, 0, kRows, [&](const TupleRef& t) {
    ++visited;
    if (r.size() > 1) {
      Tuple victim({t[0]});
      EXPECT_TRUE(r.Erase(victim));
    }
  });
  // Every handed-out row was a live row: with one erase per visit, the
  // clamp stops the loop near the midpoint instead of running to kRows.
  EXPECT_GE(visited, static_cast<size_t>(kRows) / 2);
  EXPECT_LE(visited, static_cast<size_t>(kRows));
  // The relation is still structurally consistent after the churn.
  size_t remaining = 0;
  r.ForEachOfArity(1, [&](const TupleRef&) { ++remaining; });
  EXPECT_EQ(remaining, r.size());
  // One erase per visit: the survivors plus the visits account for every
  // original row (the size > 1 guard never fires at this scale).
  EXPECT_EQ(r.size() + visited, static_cast<size_t>(kRows));
}

TEST(ForEachRangeErase, SwappedInRowsMaySkipButNeverDangle) {
  // Erasing an already-visited row moves the (unvisited) tail row into
  // visited territory: the contract allows skipping it, but every TupleRef
  // handed out must be a live row whose values round-trip.
  Relation r;
  constexpr int kRows = 100;
  for (int i = 0; i < kRows; ++i) r.Insert(Tuple({I(i), I(i * 10)}));
  std::vector<int64_t> handed;
  r.ForEachOfArityRange(2, 0, kRows, [&](const TupleRef& t) {
    int64_t key = t[0].AsInt();
    EXPECT_EQ(t[1].AsInt(), key * 10) << "dangling or torn row";
    handed.push_back(key);
    if (key % 3 == 0 && r.size() > 1) {
      r.Erase(Tuple({I(key), I(key * 10)}));
    }
  });
  // No duplicates among handed-out rows (a stale index could revisit).
  std::sort(handed.begin(), handed.end());
  EXPECT_TRUE(std::adjacent_find(handed.begin(), handed.end()) ==
              handed.end());
}

TEST(ForEachRangeErase, EraseInvalidatesVersionAndSortedViews) {
  // Downstream structures key on (id, version): an erase between rounds
  // must bump the version so stale sorted views / indexes rebuild instead
  // of dereferencing renumbered rows.
  Relation r;
  for (int i = 0; i < 10; ++i) r.Insert(Tuple({I(i), I(i)}));
  const ColumnArena* arena = r.ArenaOfArity(2);
  ASSERT_NE(arena, nullptr);
  (void)arena->SortedRows();
  uint64_t version_before = arena->version();
  ASSERT_TRUE(r.Erase(Tuple({I(4), I(4)})));
  EXPECT_GT(arena->version(), version_before);
  // The rebuilt sorted view covers exactly the surviving rows.
  EXPECT_EQ(arena->SortedRows().size(), 9u);
  EXPECT_EQ(arena->SortedTuples().size(), 9u);
}

TEST(ForEachRangeErase, ErasingTheLastTupleOfAnArityDropsTheArena) {
  // The documented hard exception: when an arity empties, its arena node is
  // destroyed (blocks_ holds only non-empty arenas — AsBool/operator==
  // depend on it), so erasing the final tuple of the arity being iterated
  // is unsupported mid-flight. Pin the invariant that motivates it.
  Relation r;
  r.Insert(Tuple({I(1)}));
  r.Insert(Tuple({I(2), I(3)}));
  ASSERT_NE(r.ArenaOfArity(1), nullptr);
  ASSERT_TRUE(r.Erase(Tuple({I(1)})));
  EXPECT_EQ(r.ArenaOfArity(1), nullptr);
  EXPECT_EQ(r.Arities(), std::vector<size_t>{2});
  // An erase+reinsert sequence lands in a fresh arena with a fresh id, so
  // (id, version)-keyed caches cannot alias the destroyed arena.
  uint64_t old_id = r.ArenaOfArity(2)->id();
  ASSERT_TRUE(r.Erase(Tuple({I(2), I(3)})));
  r.Insert(Tuple({I(2), I(3)}));
  EXPECT_NE(r.ArenaOfArity(2)->id(), old_id);
}

}  // namespace
}  // namespace rel
