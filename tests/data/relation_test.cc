#include "data/relation.h"

#include <gtest/gtest.h>

#include "data/database.h"

namespace rel {
namespace {

Value I(int64_t v) { return Value::Int(v); }

TEST(Tuple, SliceConcatCompare) {
  Tuple t({I(1), I(2), I(3)});
  EXPECT_EQ(t.Slice(1, 3), Tuple({I(2), I(3)}));
  EXPECT_EQ(t.Slice(0, 0), Tuple{});
  EXPECT_EQ(Tuple({I(1)}).Concat(Tuple({I(2)})), Tuple({I(1), I(2)}));
  EXPECT_TRUE(t.StartsWith(Tuple({I(1), I(2)})));
  EXPECT_FALSE(t.StartsWith(Tuple({I(2)})));
  // Prefixes order before extensions.
  EXPECT_LT(Tuple({I(1)}), Tuple({I(1), I(0)}));
}

TEST(Relation, SetSemantics) {
  Relation r;
  EXPECT_TRUE(r.Insert(Tuple({I(1)})));
  EXPECT_FALSE(r.Insert(Tuple({I(1)})));  // duplicate collapses
  EXPECT_EQ(r.size(), 1u);
}

TEST(Relation, MixedArity) {
  Relation r;
  r.Insert(Tuple{});
  r.Insert(Tuple({I(1)}));
  r.Insert(Tuple({I(1), I(2)}));
  EXPECT_EQ(r.size(), 3u);
  EXPECT_EQ(r.Arities(), (std::vector<size_t>{0, 1, 2}));
  EXPECT_EQ(r.SortedTuples().size(), 3u);
}

TEST(Relation, BooleanEncoding) {
  EXPECT_TRUE(Relation::True().AsBool());
  EXPECT_TRUE(Relation::True().IsBoolean());
  EXPECT_FALSE(Relation::False().AsBool());
  EXPECT_TRUE(Relation::False().IsBoolean());
  Relation r = Relation::Singleton(Tuple({I(1)}));
  EXPECT_FALSE(r.IsBoolean());
}

TEST(Relation, PrefixScanAndSuffixes) {
  Relation r = Relation::FromTuples({
      Tuple({I(1), I(10)}),
      Tuple({I(1), I(20)}),
      Tuple({I(2), I(30)}),
      Tuple({I(1), I(20), I(99)}),  // different arity also matches prefix
  });
  Relation suffixes = r.Suffixes(Tuple({I(1)}));
  EXPECT_EQ(suffixes.size(), 3u);
  EXPECT_TRUE(suffixes.Contains(Tuple({I(10)})));
  EXPECT_TRUE(suffixes.Contains(Tuple({I(20), I(99)})));

  int count = 0;
  r.ScanPrefix(Tuple({I(1)}), [&count](const TupleRef&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 3);
}

TEST(Relation, ScanPrefixEarlyStop) {
  Relation r = Relation::FromTuples(
      {Tuple({I(1), I(1)}), Tuple({I(1), I(2)}), Tuple({I(1), I(3)})});
  int count = 0;
  r.ScanPrefix(Tuple({I(1)}), [&count](const TupleRef&) {
    ++count;
    return count < 2;
  });
  EXPECT_EQ(count, 2);
}

TEST(Relation, SetAlgebra) {
  Relation a = Relation::FromTuples({Tuple({I(1)}), Tuple({I(2)})});
  Relation b = Relation::FromTuples({Tuple({I(2)}), Tuple({I(3)})});
  EXPECT_EQ(a.Union(b).size(), 3u);
  EXPECT_EQ(a.Intersect(b).size(), 1u);
  EXPECT_EQ(a.Minus(b).size(), 1u);
  EXPECT_TRUE(a.Minus(b).Contains(Tuple({I(1)})));
}

TEST(Relation, EqualityAndHashAreOrderInsensitive) {
  Relation a, b;
  a.Insert(Tuple({I(1)}));
  a.Insert(Tuple({I(2)}));
  b.Insert(Tuple({I(2)}));
  b.Insert(Tuple({I(1)}));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  b.Insert(Tuple({I(3)}));
  EXPECT_NE(a, b);
}

TEST(Relation, EraseMaintainsInvariants) {
  Relation r = Relation::FromTuples({Tuple({I(1)}), Tuple({I(2)})});
  EXPECT_TRUE(r.Erase(Tuple({I(1)})));
  EXPECT_FALSE(r.Erase(Tuple({I(1)})));
  EXPECT_EQ(r.size(), 1u);
  EXPECT_FALSE(r.Contains(Tuple({I(1)})));
}

TEST(Database, InsertDeleteVersioning) {
  Database db;
  uint64_t v0 = db.version();
  db.Insert("R", Tuple({I(1)}));
  EXPECT_GT(db.version(), v0);
  EXPECT_TRUE(db.Has("R"));
  db.Delete("R", Tuple({I(1)}));
  EXPECT_FALSE(db.Has("R"));  // empty relations are dropped
  EXPECT_EQ(db.Get("R").size(), 0u);
  db.Insert("A", Tuple({I(1)}));
  db.Insert("B", Tuple({I(2)}));
  EXPECT_EQ(db.Names(), (std::vector<std::string>{"A", "B"}));
  EXPECT_EQ(db.TotalTuples(), 2u);
}

}  // namespace
}  // namespace rel
