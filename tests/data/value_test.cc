#include "data/value.h"

#include <gtest/gtest.h>

namespace rel {
namespace {

TEST(Value, KindsAndAccessors) {
  EXPECT_EQ(Value::Int(42).AsInt(), 42);
  EXPECT_DOUBLE_EQ(Value::Float(2.5).AsFloat(), 2.5);
  EXPECT_EQ(Value::String("hi").AsString(), "hi");
  Value e = Value::Entity("product", "P1");
  EXPECT_EQ(e.EntityConcept(), "product");
  EXPECT_EQ(e.EntityId(), "P1");
  EXPECT_TRUE(Value::Int(1).is_number());
  EXPECT_TRUE(Value::Float(1).is_number());
  EXPECT_FALSE(Value::String("1").is_number());
}

TEST(Value, StrictOrderingByKindThenContent) {
  // Int < Float < String < Entity.
  EXPECT_LT(Value::Int(99), Value::Float(0.0));
  EXPECT_LT(Value::Float(99), Value::String("a"));
  EXPECT_LT(Value::String("z"), Value::Entity("c", "a"));
  EXPECT_LT(Value::Int(1), Value::Int(2));
  EXPECT_LT(Value::String("a"), Value::String("b"));
}

TEST(Value, StrictEqualityIsKindSensitive) {
  EXPECT_NE(Value::Int(1), Value::Float(1.0));
  EXPECT_EQ(Value::Int(1), Value::Int(1));
  EXPECT_EQ(Value::String("x"), Value::String("x"));
  EXPECT_NE(Value::Entity("a", "x"), Value::Entity("b", "x"));
}

TEST(Value, NumericCompareBridgesIntAndFloat) {
  EXPECT_EQ(Value::Int(1).NumericCompare(Value::Float(1.0)),
            Value::Ordering::kEqual);
  EXPECT_EQ(Value::Int(1).NumericCompare(Value::Float(1.5)),
            Value::Ordering::kLess);
  EXPECT_EQ(Value::Float(2.0).NumericCompare(Value::Int(1)),
            Value::Ordering::kGreater);
  EXPECT_EQ(Value::Int(1).NumericCompare(Value::String("1")),
            Value::Ordering::kUnordered);
  EXPECT_EQ(Value::String("a").NumericCompare(Value::String("b")),
            Value::Ordering::kLess);
}

TEST(Value, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(7).Hash(), Value::Int(7).Hash());
  EXPECT_EQ(Value::String("abc").Hash(), Value::String("abc").Hash());
  EXPECT_NE(Value::Int(7).Hash(), Value::Int(8).Hash());
}

TEST(Value, ToString) {
  EXPECT_EQ(Value::Int(-3).ToString(), "-3");
  EXPECT_EQ(Value::Float(1.5).ToString(), "1.5");
  EXPECT_EQ(Value::Float(2.0).ToString(), "2.0");
  EXPECT_EQ(Value::String("hi").ToString(), "\"hi\"");
  EXPECT_EQ(Value::Entity("product", "P1").ToString(), "product:\"P1\"");
}

}  // namespace
}  // namespace rel
