// Tests for the join algorithms: binary hash join vs Leapfrog Triejoin.

#include <gtest/gtest.h>

#include <algorithm>

#include "benchutil/generators.h"
#include "benchutil/reference.h"
#include "joins/hash_join.h"
#include "joins/leapfrog.h"

namespace rel {
namespace joins {
namespace {

Value I(int64_t v) { return Value::Int(v); }

TEST(HashJoin, Basic) {
  std::vector<Tuple> left = {Tuple({I(1), I(2)}), Tuple({I(3), I(4)})};
  std::vector<Tuple> right = {Tuple({I(2), I(9)}), Tuple({I(2), I(8)}),
                              Tuple({I(5), I(7)})};
  std::vector<Tuple> out = HashJoin(left, {1}, right, {0});
  std::sort(out.begin(), out.end());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], Tuple({I(1), I(2), I(8)}));
  EXPECT_EQ(out[1], Tuple({I(1), I(2), I(9)}));
}

TEST(HashJoin, EmptyInputs) {
  std::vector<Tuple> rows = {Tuple({I(1), I(2)})};
  EXPECT_TRUE(HashJoin({}, {0}, rows, {0}).empty());
  EXPECT_TRUE(HashJoin(rows, {0}, {}, {0}).empty());
}

TEST(HashJoin, MultiColumnKeys) {
  std::vector<Tuple> left = {Tuple({I(1), I(2), I(3)})};
  std::vector<Tuple> right = {Tuple({I(1), I(2), I(77)}),
                              Tuple({I(1), I(9), I(88)})};
  std::vector<Tuple> out = HashJoin(left, {0, 1}, right, {0, 1});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], Tuple({I(1), I(2), I(3), I(77)}));
}

TEST(Leapfrog, TwoWayJoinMatchesHashJoin) {
  std::vector<Tuple> r = benchutil::RandomGraph(40, 120, 7);
  std::vector<Tuple> s = benchutil::RandomGraph(40, 120, 8);
  // R(x,y) ⋈ S(y,z).
  SortedColumns r_sorted = ToSortedColumns(r);
  SortedColumns s_sorted = ToSortedColumns(s);
  std::vector<AtomSpec> atoms = {{&r_sorted, {0, 1}}, {&s_sorted, {1, 2}}};
  size_t lftj = LeapfrogJoinCount(3, atoms);
  EXPECT_EQ(lftj, HashJoin(r, {1}, s, {0}).size());
}

TEST(Leapfrog, EmitsBindings) {
  SortedColumns e =
      ToSortedColumns({Tuple({I(1), I(2)}), Tuple({I(2), I(3)})});
  std::vector<AtomSpec> atoms = {{&e, {0, 1}}, {&e, {1, 2}}};
  std::vector<std::vector<Value>> results;
  LeapfrogJoin(3, atoms,
               [&results](const std::vector<Value>& b) { results.push_back(b); });
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0], (std::vector<Value>{I(1), I(2), I(3)}));
}

TEST(Leapfrog, TriangleCountsAgreeOnRandomGraphs) {
  for (uint64_t seed : {11u, 22u, 33u, 44u}) {
    std::vector<Tuple> edges = benchutil::RandomGraph(25, 140, seed);
    size_t expected = benchutil::CountTrianglesRef(edges);
    EXPECT_EQ(CountTrianglesLeapfrog(edges), expected) << "seed " << seed;
    EXPECT_EQ(CountTrianglesBinaryJoin(edges), expected) << "seed " << seed;
  }
}

TEST(Leapfrog, TriangleCountsAgreeOnSkewedGraphs) {
  std::vector<Tuple> edges = benchutil::SkewedTriangleGraph(60, 8, 5);
  size_t expected = benchutil::CountTrianglesRef(edges);
  EXPECT_GT(expected, 0u);
  EXPECT_EQ(CountTrianglesLeapfrog(edges), expected);
  EXPECT_EQ(CountTrianglesBinaryJoin(edges), expected);
}

TEST(Leapfrog, EmptyRelation) {
  SortedColumns empty = ToSortedColumns({}, {0, 1});
  std::vector<AtomSpec> atoms = {{&empty, {0, 1}}};
  EXPECT_EQ(LeapfrogJoinCount(2, atoms), 0u);
  EXPECT_EQ(CountTrianglesLeapfrog({}), 0u);
}

TEST(Leapfrog, DuplicateKeyRuns) {
  // Multiple rows with the same leading value exercise the run detection.
  std::vector<Tuple> r = {Tuple({I(1), I(1)}), Tuple({I(1), I(2)}),
                          Tuple({I(1), I(3)}), Tuple({I(2), I(3)})};
  SortedColumns r_sorted = ToSortedColumns(r);
  std::vector<AtomSpec> atoms = {{&r_sorted, {0, 1}}, {&r_sorted, {1, 2}}};
  // Join R(x,y), R(y,z): y in {1,2,3} ∩ heads {1,2}.
  // (1,1,{1,2,3}), (1,2,3), (2,3,-)... count pairs.
  size_t expected = HashJoin(r, {1}, r, {0}).size();
  EXPECT_EQ(LeapfrogJoinCount(3, atoms), expected);
}

TEST(Leapfrog, ToSortedColumnsPermutesAndSorts) {
  std::vector<Tuple> rows = {Tuple({I(3), I(1)}), Tuple({I(1), I(2)}),
                             Tuple({I(2), I(0)})};
  SortedColumns swapped = ToSortedColumns(rows, {1, 0});
  ASSERT_EQ(swapped.arity(), 2u);
  ASSERT_EQ(swapped.rows, 3u);
  // Sorted by (col1, col0) of the input: (0,2), (1,3), (2,1).
  EXPECT_EQ(swapped.cols[0], (std::vector<Value>{I(0), I(1), I(2)}));
  EXPECT_EQ(swapped.cols[1], (std::vector<Value>{I(2), I(3), I(1)}));
}

}  // namespace
}  // namespace joins
}  // namespace rel
