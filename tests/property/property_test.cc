// Property-based tests: parameterized sweeps over random workloads checking
// cross-implementation agreement (Rel engine vs baseline Datalog vs
// handwritten references) and algebraic invariants of the libraries.

#include <gtest/gtest.h>

#include <numeric>

#include "base/rng.h"
#include "benchutil/generators.h"
#include "benchutil/reference.h"
#include "core/engine.h"
#include "datalog/eval.h"
#include "joins/hash_join.h"
#include "joins/leapfrog.h"
#include "kg/gnf.h"

namespace rel {
namespace {

Value I(int64_t v) { return Value::Int(v); }

// --- differential: transitive closure across three engines ------------------

struct GraphCase {
  int n;
  int m;
  uint64_t seed;
};

class ClosureProperty : public ::testing::TestWithParam<GraphCase> {};

TEST_P(ClosureProperty, RelEqualsDatalogEqualsReference) {
  const GraphCase& param = GetParam();
  std::vector<Tuple> edges =
      benchutil::RandomGraph(param.n, param.m, param.seed);

  // Rel engine (through the second-order stdlib TC).
  Engine engine;
  engine.Insert("E", edges);
  Relation rel_tc = engine.Query("def output : TC[E]");

  // Baseline Datalog engine.
  datalog::Program program = datalog::ParseDatalog(
      "tc(X,Y) :- edge(X,Y). tc(X,Z) :- edge(X,Y), tc(Y,Z).");
  for (const Tuple& e : edges) program.AddFact("edge", e);
  Relation datalog_tc = datalog::EvaluatePredicate(program, "tc");

  // Handwritten reference.
  auto ref = benchutil::TransitiveClosureRef(edges);

  EXPECT_EQ(rel_tc, datalog_tc);
  ASSERT_EQ(rel_tc.size(), ref.size());
  for (const auto& [a, b] : ref) {
    EXPECT_TRUE(rel_tc.Contains(Tuple({I(a), I(b)})));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Graphs, ClosureProperty,
    ::testing::Values(GraphCase{8, 12, 1}, GraphCase{12, 30, 2},
                      GraphCase{16, 20, 3}, GraphCase{16, 64, 4},
                      GraphCase{24, 48, 5}, GraphCase{10, 90, 6}),
    [](const ::testing::TestParamInfo<GraphCase>& info) {
      return "n" + std::to_string(info.param.n) + "m" +
             std::to_string(info.param.m) + "s" +
             std::to_string(info.param.seed);
    });

// --- differential: APSP vs BFS ------------------------------------------------

class ApspProperty : public ::testing::TestWithParam<GraphCase> {};

TEST_P(ApspProperty, BothFormulationsMatchBfs) {
  const GraphCase& param = GetParam();
  std::vector<Tuple> edges =
      benchutil::RandomGraph(param.n, param.m, param.seed);
  std::vector<Tuple> nodes = benchutil::NodeSet(param.n);

  Engine engine;
  engine.Insert("E", edges);
  engine.Insert("V", nodes);
  Relation apsp = engine.Query("def output : APSP[V, E]");
  Relation guarded = engine.Query("def output : APSP_guarded[V, E]");

  auto ref = benchutil::ApspRef(param.n, edges);

  // The guarded formulation is exactly BFS.
  ASSERT_EQ(guarded.size(), ref.size());
  for (const auto& [pair, dist] : ref) {
    EXPECT_TRUE(
        guarded.Contains(Tuple({I(pair.first), I(pair.second), I(dist)})))
        << pair.first << "->" << pair.second << " = " << dist;
  }

  // The min formulation (read literally, as the engine evaluates it) derives
  // every BFS distance, but on cyclic graphs it additionally derives
  // (x, x, c) for cycle lengths c — rule 2 has no "not already shorter"
  // guard. Check: BFS ⊆ APSP, min per pair == BFS, extras are diagonal.
  std::map<std::pair<int64_t, int64_t>, int64_t> min_per_pair;
  for (const Tuple& t : apsp.TuplesOfArity(3)) {
    auto key = std::make_pair(t[0].AsInt(), t[1].AsInt());
    auto it = min_per_pair.find(key);
    if (it == min_per_pair.end() || t[2].AsInt() < it->second) {
      min_per_pair[key] = t[2].AsInt();
    }
    if (ref.count(key)) {
      EXPECT_GE(t[2].AsInt(), ref.at(key));
    }
    if (t[2].AsInt() > 0 && ref.count(key) && t[2].AsInt() != ref.at(key)) {
      EXPECT_EQ(key.first, key.second)
          << "non-diagonal extra " << t.ToString();
    }
  }
  ASSERT_EQ(min_per_pair.size(), ref.size());
  for (const auto& [pair, dist] : ref) {
    EXPECT_EQ(min_per_pair.at(pair), dist);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Graphs, ApspProperty,
    ::testing::Values(GraphCase{6, 10, 11}, GraphCase{8, 20, 12},
                      GraphCase{10, 15, 13}, GraphCase{12, 40, 14}),
    [](const ::testing::TestParamInfo<GraphCase>& info) {
      return "n" + std::to_string(info.param.n) + "s" +
             std::to_string(info.param.seed);
    });

// --- differential: matrix multiplication --------------------------------------

class MatMulProperty : public ::testing::TestWithParam<int> {};

TEST_P(MatMulProperty, RelMatchesReference) {
  int seed = GetParam();
  std::vector<Tuple> a = benchutil::SparseMatrix(8, 8, 0.4, seed);
  std::vector<Tuple> b = benchutil::SparseMatrix(8, 8, 0.4, seed + 100);
  Engine engine;
  engine.Insert("A", a);
  engine.Insert("B", b);
  Relation rel_product = engine.Query("def output : MatrixMult[A, B]");
  std::vector<Tuple> ref = benchutil::MatMulRef(a, b);
  ASSERT_EQ(rel_product.size(), ref.size());
  for (const Tuple& t : ref) {
    Relation cell = rel_product.Suffixes(t.Slice(0, 2));
    ASSERT_EQ(cell.size(), 1u);
    EXPECT_NEAR(cell.SortedTuples()[0][0].AsDouble(), t[2].AsDouble(), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatMulProperty, ::testing::Range(1, 7));

// --- permutations: |Perm(t)| == n! --------------------------------------------

class PermProperty : public ::testing::TestWithParam<int> {};

TEST_P(PermProperty, CountsFactorial) {
  int n = GetParam();
  std::string tuple = "(";
  for (int i = 1; i <= n; ++i) {
    tuple += (i > 1 ? "," : "") + std::to_string(i * 10);
  }
  tuple += ")";
  Engine engine;
  engine.Define("def R {" + tuple + "}\n"
                "def Perm(x...) : R(x...)\n"
                "def Perm(x...,a,y...,b,z...) : Perm(x...,b,y...,a,z...)");
  Relation perms = engine.Query("def output : Perm");
  int64_t factorial = 1;
  for (int i = 2; i <= n; ++i) factorial *= i;
  EXPECT_EQ(perms.size(), static_cast<size_t>(factorial));
}

INSTANTIATE_TEST_SUITE_P(Arities, PermProperty, ::testing::Range(1, 5));

// --- reduce: order-independence for commutative/associative operators ---------

class ReduceProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReduceProperty, SumIndependentOfInsertionOrder) {
  Rng rng(GetParam());
  std::vector<int64_t> values;
  int64_t expected = 0;
  for (int i = 0; i < 20; ++i) {
    int64_t v = static_cast<int64_t>(rng.NextBelow(1000));
    values.push_back(v);
    expected += v;
  }
  // Insert under distinct keys (set semantics would collapse duplicates).
  std::vector<Tuple> forward, backward;
  for (size_t i = 0; i < values.size(); ++i) {
    forward.push_back(Tuple({I(static_cast<int64_t>(i)), I(values[i])}));
  }
  backward.assign(forward.rbegin(), forward.rend());

  Engine e1, e2;
  e1.Insert("R", forward);
  e2.Insert("R", backward);
  EXPECT_EQ(e1.Eval("sum[R]").ToString(), "{(" + std::to_string(expected) + ")}");
  EXPECT_EQ(e1.Eval("sum[R]"), e2.Eval("sum[R]"));
  EXPECT_EQ(e1.Eval("min[R]"), e2.Eval("min[R]"));
  EXPECT_EQ(e1.Eval("max[R]"), e2.Eval("max[R]"));
  EXPECT_EQ(e1.Eval("count[R]").ToString(), "{(20)}");
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReduceProperty,
                         ::testing::Values(21u, 22u, 23u, 24u));

// --- joins: hash join == LFTJ on random inputs ---------------------------------

class JoinProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JoinProperty, HashEqualsLeapfrog) {
  uint64_t seed = GetParam();
  std::vector<Tuple> r = benchutil::RandomGraph(20, 60, seed);
  std::vector<Tuple> s = benchutil::RandomGraph(20, 60, seed * 31 + 7);
  joins::SortedColumns r_sorted = joins::ToSortedColumns(r);
  joins::SortedColumns s_sorted = joins::ToSortedColumns(s);
  std::vector<joins::AtomSpec> atoms = {{&r_sorted, {0, 1}},
                                        {&s_sorted, {1, 2}}};
  EXPECT_EQ(joins::LeapfrogJoinCount(3, atoms),
            joins::HashJoin(r, {1}, s, {0}).size());
  EXPECT_EQ(joins::CountTrianglesLeapfrog(r),
            benchutil::CountTrianglesRef(r));
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinProperty,
                         ::testing::Values(31u, 32u, 33u, 34u, 35u));

// --- grouped aggregation: Rel == reference -------------------------------------

class GroupSumProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GroupSumProperty, RelMatchesReference) {
  benchutil::OrdersWorkload w = benchutil::MakeOrders(20, 12, 3, 3, GetParam());
  Engine engine;
  engine.Insert("PaymentOrder", w.payment_order);
  engine.Insert("PaymentAmount", w.payment_amount);
  engine.Insert("OrderProductQuantity", w.order_product_quantity);
  Relation grouped = engine.Query(
      "def Ord(x) : OrderProductQuantity(x,_,_)\n"
      "def OPA(x,y,z) : PaymentOrder(y,x) and PaymentAmount(y,z)\n"
      "def Paid[x in Ord] : sum[OPA[x]] <++ 0\n"
      "def output : Paid");

  std::map<Value, Value> amounts;
  for (const Tuple& t : w.payment_amount) amounts.emplace(t[0], t[1]);
  std::map<Value, int64_t> expected;
  for (const Tuple& t : w.order_product_quantity) expected[t[0]];
  for (const Tuple& t : w.payment_order) {
    if (expected.count(t[1])) expected[t[1]] += amounts.at(t[0]).AsInt();
  }
  ASSERT_EQ(grouped.size(), expected.size());
  for (const auto& [order, total] : expected) {
    EXPECT_TRUE(grouped.Contains(Tuple({order, I(total)})))
        << order.ToString() << " -> " << total;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroupSumProperty,
                         ::testing::Values(41u, 42u, 43u, 44u));

// --- GNF round trip --------------------------------------------------------------

class GnfProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GnfProperty, DecomposeReassembleIsLossless) {
  Rng rng(GetParam());
  kg::RecordSpec spec{"item", "Item", {"A", "B", "C"}};
  std::vector<kg::WideRow> rows;
  for (int i = 0; i < 25; ++i) {
    kg::WideRow row;
    row.id = "id" + std::to_string(i);
    for (int a = 0; a < 3; ++a) {
      if (rng.NextBool(0.3)) {
        row.values.push_back(std::nullopt);  // random NULLs
      } else {
        row.values.push_back(I(static_cast<int64_t>(rng.NextBelow(100))));
      }
    }
    // Ensure the row is visible in at least one relation.
    if (!row.values[0] && !row.values[1] && !row.values[2]) {
      row.values[0] = I(0);
    }
    rows.push_back(std::move(row));
  }
  kg::EntityRegistry registry;
  Database db;
  DecomposeRecords(spec, rows, &registry, &db);

  kg::Schema schema;
  DeclareRecord(spec, &schema);
  EXPECT_TRUE(schema.Validate(db).empty());

  std::vector<kg::WideRow> back = ReassembleRecords(spec, db);
  ASSERT_EQ(back.size(), rows.size());
  std::map<std::string, const kg::WideRow*> by_id;
  for (const kg::WideRow& row : rows) by_id[row.id] = &row;
  for (const kg::WideRow& row : back) {
    const kg::WideRow* original = by_id.at(row.id);
    for (int a = 0; a < 3; ++a) {
      EXPECT_EQ(row.values[a].has_value(), original->values[a].has_value());
      if (row.values[a]) EXPECT_EQ(*row.values[a], *original->values[a]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GnfProperty,
                         ::testing::Values(51u, 52u, 53u, 54u));

// --- relational algebra laws (stdlib) -------------------------------------------

class AlgebraProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AlgebraProperty, SetLawsHold) {
  uint64_t seed = GetParam();
  std::vector<Tuple> a = benchutil::RandomGraph(10, 25, seed);
  std::vector<Tuple> b = benchutil::RandomGraph(10, 25, seed + 1000);
  Engine engine;
  engine.Insert("A", a);
  engine.Insert("B", b);

  size_t a_size = engine.Eval("A").size();
  size_t b_size = engine.Eval("B").size();
  size_t union_size = engine.Eval("Union[A, B]").size();
  size_t inter_size = engine.Eval("Intersect[A, B]").size();
  size_t minus_size = engine.Eval("Minus[A, B]").size();

  // |A ∪ B| = |A| + |B| - |A ∩ B| and |A \ B| = |A| - |A ∩ B|.
  EXPECT_EQ(union_size, a_size + b_size - inter_size);
  EXPECT_EQ(minus_size, a_size - inter_size);
  // Product cardinality multiplies.
  EXPECT_EQ(engine.Eval("Product[A, B]").size(), a_size * b_size);
  // Idempotence.
  EXPECT_EQ(engine.Eval("Union[A, A]").size(), a_size);
  EXPECT_EQ(engine.Eval("Intersect[A, A]").size(), a_size);
  EXPECT_EQ(engine.Eval("Minus[A, A]").size(), 0u);
  // Commutativity of union/intersection.
  EXPECT_EQ(engine.Eval("Union[A, B]"), engine.Eval("Union[B, A]"));
  EXPECT_EQ(engine.Eval("Intersect[A, B]"), engine.Eval("Intersect[B, A]"));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlgebraProperty,
                         ::testing::Values(61u, 62u, 63u));

// --- PageRank: sums to 1, matches reference ranks --------------------------------

class PageRankProperty : public ::testing::TestWithParam<int> {};

TEST_P(PageRankProperty, MassConservedAndMatchesReference) {
  int n = GetParam();
  std::vector<Tuple> g = benchutil::StochasticMatrix(n, 2, 77);
  Engine engine;
  engine.Insert("G", g);
  Relation pr = engine.Query("def output : PageRank[G]");
  // The relational vector is sparse: nodes with no inbound links have no
  // entry (a relation stores no explicit zeros).
  ASSERT_GT(pr.size(), 0u);
  ASSERT_LE(pr.size(), static_cast<size_t>(n));
  double total = 0;
  std::map<int64_t, double> rel_pr;
  for (const Tuple& t : pr.TuplesOfArity(2)) {
    total += t[1].AsDouble();
    rel_pr[t[0].AsInt()] = t[1].AsDouble();
  }
  EXPECT_NEAR(total, 1.0, 1e-6);  // column-stochastic G conserves mass

  std::vector<double> ref = benchutil::PageRankRef(n, g, 0.005);
  for (int i = 1; i <= n; ++i) {
    double rel_value = rel_pr.count(i) ? rel_pr[i] : 0.0;
    // Same stop threshold: entries agree to within the tolerance.
    EXPECT_NEAR(rel_value, ref[i], 0.02) << "node " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PageRankProperty,
                         ::testing::Values(4, 8, 12));

// --- property: random monotone recursion, lowered vs tuple-at-a-time ---------
//
// Generates random monotone recursive Rel programs (all within the
// Datalog-lowerable fragment by construction), then evaluates every derived
// predicate three ways: the classic Interp saturation loop, the lowering
// path sequentially, and the lowering path on 4 threads. All three extents
// must be equal with byte-identical sorted renderings.

class LoweringProperty : public ::testing::TestWithParam<uint64_t> {};

namespace lowering_gen {

/// One random program: source text plus the derived predicates to compare.
struct Generated {
  std::string source;
  std::vector<std::string> preds;
};

Generated RandomMonotoneProgram(Rng* rng) {
  Generated out;
  std::string src;

  // Component 1: transitive-closure-like `t`, with a randomly chosen base
  // guard and 1..3 recursive rules of random linearity.
  const char* base_guard = "";
  switch (rng->NextBelow(3)) {
    case 0: base_guard = ""; break;
    case 1: base_guard = " and x != y"; break;
    case 2: base_guard = " and x < y"; break;
  }
  src += "def t(x, y) : edge(x, y)" + std::string(base_guard) + "\n";
  const char* recursive_shapes[] = {
      "def t(x, z) : exists((y) | edge(x, y) and t(y, z))\n",
      "def t(x, z) : exists((y) | t(x, y) and edge(y, z))\n",
      "def t(x, z) : exists((y) | t(x, y) and t(y, z))\n",
  };
  size_t num_rules = 1 + rng->NextBelow(3);
  for (size_t i = 0; i < num_rules; ++i) {
    src += recursive_shapes[rng->NextBelow(3)];
  }
  out.preds.push_back("t");

  // Component 2 (coin flip): mutual recursion over two predicates.
  if (rng->NextBool(0.5)) {
    src +=
        "def podd(x, y) : edge(x, y)\n"
        "def podd(x, z) : exists((y) | edge(x, y) and peven(y, z))\n"
        "def peven(x, z) : exists((y) | edge(x, y) and podd(y, z))\n";
    out.preds.push_back("podd");
    out.preds.push_back("peven");
  }

  // Component 3 (coin flip): depth-bounded arithmetic recursion, with a
  // random bound so the fixpoint terminates on both paths.
  if (rng->NextBool(0.5)) {
    int bound = 2 + static_cast<int>(rng->NextBelow(4));
    src += "def dist(x, y, d) : edge(x, y) and d = 1\n";
    src += "def dist(x, z, d) : exists((y, e) | dist(x, y, e) and "
           "edge(y, z) and d = e + 1 and e < " +
           std::to_string(bound) + ")\n";
    out.preds.push_back("dist");
  }

  // A non-recursive consumer joining the recursive extent (coin flip),
  // exercising the member-as-external hand-off.
  if (rng->NextBool(0.5)) {
    src += "def joined(x, z) : exists((y) | t(x, y) and edge(y, z))\n";
    out.preds.push_back("joined");
  }

  out.source = src;
  return out;
}

}  // namespace lowering_gen

TEST_P(LoweringProperty, LoweredEqualsInterpAcrossThreadCounts) {
  Rng rng(GetParam());
  std::vector<Tuple> edges =
      benchutil::RandomGraph(10 + static_cast<int>(rng.NextBelow(8)),
                            20 + static_cast<int>(rng.NextBelow(25)),
                            rng.Next());
  lowering_gen::Generated gen = lowering_gen::RandomMonotoneProgram(&rng);

  struct Config {
    bool lower;
    int threads;
  };
  const Config configs[] = {{false, 1}, {true, 1}, {true, 4}};
  std::map<std::string, Relation> reference;
  std::map<std::string, std::string> reference_rendering;
  for (const Config& config : configs) {
    Engine engine;
    engine.options().lower_recursion = config.lower;
    engine.options().num_threads = config.threads;
    engine.Insert("edge", edges);
    for (const std::string& pred : gen.preds) {
      Relation got = engine.Query(gen.source + "def output : " + pred);
      if (!config.lower) {
        EXPECT_EQ(engine.last_lowering_stats().components_lowered, 0);
        reference[pred] = got;
        reference_rendering[pred] = got.ToString();
        continue;
      }
      // Every generated component is in the fragment: the lowering must
      // actually fire, and agree byte-for-byte.
      EXPECT_GE(engine.last_lowering_stats().components_lowered, 1)
          << "lowering did not fire for:\n" << gen.source;
      EXPECT_EQ(reference[pred], got)
          << "threads=" << config.threads << " pred='" << pred
          << "' diverges for:\n" << gen.source;
      EXPECT_EQ(reference_rendering[pred], got.ToString())
          << "rendering not byte-identical, pred='" << pred << "'";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LoweringProperty,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707,
                                           808));

// --- property: random binding patterns under the demand transform ------------
//
// The same random monotone programs, queried through applications with
// random binding patterns (constants at bound positions, fresh variables at
// free ones). With InterpOptions::demand_transform on, a bound pattern on a
// recursive predicate routes through the magic-set rewrite and must return
// exactly what the full evaluation returns for the same query; an all-free
// pattern must be a no-op (no demand evaluation fires), and an all-bound
// pattern degenerates to a boolean reachability check.

class DemandProperty : public ::testing::TestWithParam<uint64_t> {};

namespace demand_gen {

/// Query text for `pred` under `pattern`: bound positions become integer
/// literals, free ones output variables. All-bound yields a boolean query.
std::string QueryFor(const std::string& pred,
                     const std::vector<std::optional<int64_t>>& pattern) {
  std::string head;
  std::string args;
  for (size_t i = 0; i < pattern.size(); ++i) {
    if (i) args += ", ";
    if (pattern[i]) {
      args += std::to_string(*pattern[i]);
    } else {
      std::string var = "q" + std::to_string(i);
      head += head.empty() ? var : ", " + var;
      args += var;
    }
  }
  std::string out = "def output";
  if (!head.empty()) out += "(" + head + ")";
  return out + " : " + pred + "(" + args + ")";
}

}  // namespace demand_gen

TEST_P(DemandProperty, DemandedQueriesEqualFullEvaluation) {
  Rng rng(GetParam());
  int n = 10 + static_cast<int>(rng.NextBelow(8));
  std::vector<Tuple> edges = benchutil::RandomGraph(
      n, 20 + static_cast<int>(rng.NextBelow(25)), rng.Next());
  lowering_gen::Generated gen = lowering_gen::RandomMonotoneProgram(&rng);

  std::map<std::string, size_t> arity;
  for (const std::string& pred : gen.preds) {
    arity[pred] = pred == "dist" ? 3 : 2;
  }
  // The generator's recursive components; `joined` is non-recursive and
  // must fall back to the ordinary instance path.
  auto is_recursive = [](const std::string& pred) { return pred != "joined"; };

  for (const std::string& pred : gen.preds) {
    for (int trial = 0; trial < 3; ++trial) {
      // trial 0: random pattern; trial 1: all-free; trial 2: all-bound.
      std::vector<std::optional<int64_t>> pattern;
      bool any_bound = false;
      for (size_t i = 0; i < arity[pred]; ++i) {
        bool bind = trial == 2 || (trial == 0 && rng.NextBool(0.5));
        if (bind) {
          pattern.emplace_back(
              static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(n) + 2)));
          any_bound = true;
        } else {
          pattern.emplace_back(std::nullopt);
        }
      }
      std::string query = demand_gen::QueryFor(pred, pattern);

      Engine full;
      full.Insert("edge", edges);
      Relation expected = full.Query(gen.source + query);

      Engine demand;
      demand.options().demand_transform = true;
      demand.Insert("edge", edges);
      Relation got = demand.Query(gen.source + query);

      EXPECT_EQ(expected, got)
          << "demand diverges for query '" << query << "' over:\n"
          << gen.source;
      EXPECT_EQ(expected.ToString(), got.ToString())
          << "rendering not byte-identical for '" << query << "'";
      if (any_bound && is_recursive(pred)) {
        EXPECT_GE(demand.last_lowering_stats().components_demanded, 1)
            << "demand did not fire for '" << query << "' over:\n"
            << gen.source;
      }
      if (!any_bound) {
        EXPECT_EQ(demand.last_lowering_stats().components_demanded, 0)
            << "all-free pattern must not demand-evaluate: '" << query << "'";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DemandProperty,
                         ::testing::Values(111, 222, 333, 444, 555, 666, 777,
                                           888));

}  // namespace
}  // namespace rel
