// Tests for the GNF-schema -> Rel integrity-constraint bridge: the
// generated `ic` rules enforce on the Engine what Schema::Validate checks
// on the Database.

#include <gtest/gtest.h>

#include "base/error.h"
#include "core/engine.h"
#include "kg/schema.h"

namespace rel {
namespace kg {
namespace {

Value I(int64_t v) { return Value::Int(v); }

class SchemaRel : public ::testing::Test {
 protected:
  SchemaRel() {
    schema_.DeclareKeyValue("ProductPrice", {"product"});
    schema_.DeclareKeyValue("OrderProductQuantity", {"order", "product"});
    engine_.Define(schema_.ToRelConstraints());
  }

  Value Product(const char* id) { return Value::Entity("product", id); }

  Schema schema_;
  Engine engine_;
};

TEST_F(SchemaRel, GeneratedSourceParsesAndLists) {
  std::string source = schema_.ToRelConstraints();
  EXPECT_NE(source.find("ic ProductPrice_functional(k0)"), std::string::npos);
  EXPECT_NE(source.find("ic OrderProductQuantity_functional(k0, k1)"),
            std::string::npos);
  EXPECT_NE(source.find("implies not Entity(x)"), std::string::npos);
}

TEST_F(SchemaRel, ConformingTransactionCommits) {
  engine_.Insert("ProductPrice", {Tuple({Product("P1"), I(10)})});
  EXPECT_NO_THROW(engine_.CheckConstraints());
  TxnResult txn = engine_.Exec(
      "def insert(:OrderProductQuantity, o, p, q) :\n"
      "  o = \"O1\" and p = \"P1\" and q = 2");
  EXPECT_EQ(txn.inserted, 1u);
}

TEST_F(SchemaRel, FunctionalDependencyEnforcedOnEngine) {
  engine_.Insert("ProductPrice", {Tuple({Product("P1"), I(10)})});
  // A second price for P1 violates the generated FD constraint and the
  // transaction rolls back.
  EXPECT_THROW(
      engine_.Exec("def insert(:ProductPrice, p, x) :\n"
                   "  ProductPrice(p, _) and x = 99"),
      ConstraintViolation);
  EXPECT_EQ(engine_.Base("ProductPrice").size(), 1u);
}

TEST_F(SchemaRel, MultiKeyFunctionalDependency) {
  engine_.Insert("OrderProductQuantity",
                 {Tuple({Value::Entity("order", "O1"), Product("P1"), I(2)})});
  EXPECT_NO_THROW(engine_.CheckConstraints());
  engine_.Insert("OrderProductQuantity",
                 {Tuple({Value::Entity("order", "O1"), Product("P1"), I(5)})});
  EXPECT_THROW(engine_.CheckConstraints(), ConstraintViolation);
}

TEST_F(SchemaRel, ValueColumnRejectsEntities) {
  engine_.Insert("ProductPrice",
                 {Tuple({Product("P1"), Product("P2")})});  // entity as price
  EXPECT_THROW(engine_.CheckConstraints(), ConstraintViolation);
}

TEST_F(SchemaRel, EngineAndValidateAgree) {
  // The two enforcement paths (Database-level Validate, Engine-level ics)
  // accept and reject the same states.
  Database db;
  db.Insert("ProductPrice", Tuple({Product("P1"), I(10)}));
  db.Insert("ProductPrice", Tuple({Product("P1"), I(20)}));
  EXPECT_FALSE(schema_.Validate(db).empty());

  Engine engine;
  engine.Define(schema_.ToRelConstraints());
  engine.Insert("ProductPrice", {Tuple({Product("P1"), I(10)}),
                                 Tuple({Product("P1"), I(20)})});
  EXPECT_THROW(engine.CheckConstraints(), ConstraintViolation);
}

}  // namespace
}  // namespace kg
}  // namespace rel
