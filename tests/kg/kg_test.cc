// Tests for the GNF / knowledge-graph layer (Section 2).

#include <gtest/gtest.h>

#include "base/error.h"
#include "kg/entity.h"
#include "kg/gnf.h"
#include "kg/schema.h"

namespace rel {
namespace kg {
namespace {

Value I(int64_t v) { return Value::Int(v); }
Value S(const char* s) { return Value::String(s); }

TEST(EntityRegistry, UniqueIdentifierProperty) {
  EntityRegistry registry;
  Value p = registry.Get("product", "P1");
  EXPECT_EQ(p.EntityConcept(), "product");
  // Same concept: fine (idempotent).
  EXPECT_EQ(registry.Get("product", "P1"), p);
  // Different concept for the same id: forbidden (Section 2, condition (2)).
  EXPECT_THROW(registry.Get("order", "P1"), ConstraintViolation);
  EXPECT_EQ(registry.ConceptOf("P1"), "product");
}

TEST(EntityRegistry, MintGeneratesDistinctIds) {
  EntityRegistry registry;
  Value a = registry.Mint("order");
  Value b = registry.Mint("order");
  EXPECT_NE(a, b);
  EXPECT_EQ(registry.IdsOf("order").size(), 2u);
}

class SchemaTest : public ::testing::Test {
 protected:
  SchemaTest() {
    // The GNF schema of Section 2.
    schema_.DeclareKeyValue("ProductPrice", {"product"});
    schema_.DeclareKeyValue("ProductName", {"product"});
    schema_.DeclareKeyValue("OrderCustomer", {"order"}, "customer");
    schema_.DeclareKeyValue("OrderProductQuantity", {"order", "product"});
    schema_.DeclareKeyValue("PaymentAmount", {"payment"});
    schema_.DeclareAllKey("PaymentOrder", {"payment", "order"});
  }

  Value Product(const char* id) { return Value::Entity("product", id); }
  Value Order(const char* id) { return Value::Entity("order", id); }
  Value Payment(const char* id) { return Value::Entity("payment", id); }

  Schema schema_;
  Database db_;
};

TEST_F(SchemaTest, ValidDatabaseConforms) {
  db_.Insert("ProductPrice", Tuple({Product("P1"), I(10)}));
  db_.Insert("OrderProductQuantity", Tuple({Order("O1"), Product("P1"), I(2)}));
  db_.Insert("PaymentOrder", Tuple({Payment("Pmt1"), Order("O1")}));
  EXPECT_TRUE(schema_.Validate(db_).empty());
  EXPECT_NO_THROW(schema_.Enforce(db_));
}

TEST_F(SchemaTest, FunctionalDependencyViolation) {
  db_.Insert("ProductPrice", Tuple({Product("P1"), I(10)}));
  db_.Insert("ProductPrice", Tuple({Product("P1"), I(20)}));
  std::vector<Violation> v = schema_.Validate(db_);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].relation, "ProductPrice");
  EXPECT_THROW(schema_.Enforce(db_), ConstraintViolation);
}

TEST_F(SchemaTest, AllKeyRelationsAllowManyFacts) {
  db_.Insert("PaymentOrder", Tuple({Payment("Pmt1"), Order("O1")}));
  db_.Insert("PaymentOrder", Tuple({Payment("Pmt2"), Order("O1")}));
  EXPECT_TRUE(schema_.Validate(db_).empty());
}

TEST_F(SchemaTest, WrongConceptDetected) {
  db_.Insert("ProductPrice", Tuple({Order("O1"), I(10)}));
  EXPECT_FALSE(schema_.Validate(db_).empty());
}

TEST_F(SchemaTest, SharedIdentifierAcrossConceptsDetected) {
  // The identifier "X" used by two disjoint concepts violates the
  // unique-identifier property (Section 2, condition (2)).
  db_.Insert("ProductPrice", Tuple({Product("X"), I(10)}));
  db_.Insert("OrderCustomer",
             Tuple({Value::Entity("order", "X"),
                    Value::Entity("customer", "c1")}));
  std::vector<Violation> v = schema_.Validate(db_);
  ASSERT_FALSE(v.empty());
  bool found = false;
  for (const Violation& violation : v) {
    if (violation.message.find("two concepts") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(SchemaTest, ArityViolation) {
  db_.Insert("ProductPrice", Tuple({Product("P1")}));
  EXPECT_FALSE(schema_.Validate(db_).empty());
}

TEST_F(SchemaTest, EntityInValueColumn) {
  db_.Insert("ProductPrice", Tuple({Product("P1"), Product("P2")}));
  EXPECT_FALSE(schema_.Validate(db_).empty());
}

TEST(SchemaDecl, Errors) {
  Schema s;
  s.DeclareKeyValue("R", {"a"});
  EXPECT_THROW(s.DeclareKeyValue("R", {"a"}), RelError);  // duplicate
  EXPECT_THROW(s.Get("NoSuch"), RelError);
  RelationSchema zero;
  zero.name = "Z";
  zero.arity = 0;
  EXPECT_THROW(s.Declare(zero), RelError);
}

TEST(Gnf, DecomposeAndReassembleRoundTrip) {
  RecordSpec spec{"product", "Product", {"Name", "Price"}};
  Schema schema;
  DeclareRecord(spec, &schema);
  EXPECT_TRUE(schema.Has("ProductName"));
  EXPECT_TRUE(schema.Has("ProductPrice"));

  EntityRegistry registry;
  Database db;
  std::vector<WideRow> rows = {
      {"P1", {S("widget"), I(10)}},
      {"P2", {S("gadget"), std::nullopt}},  // NULL price
      {"P3", {std::nullopt, I(30)}},        // NULL name
  };
  DecomposeRecords(spec, rows, &registry, &db);

  // NULLs become absent tuples — no null markers anywhere (Section 2).
  EXPECT_EQ(db.Get("ProductName").size(), 2u);
  EXPECT_EQ(db.Get("ProductPrice").size(), 2u);
  EXPECT_TRUE(schema.Validate(db).empty());

  std::vector<WideRow> back = ReassembleRecords(spec, db);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back[0].id, "P1");
  EXPECT_EQ(*back[0].values[0], S("widget"));
  EXPECT_EQ(*back[0].values[1], I(10));
  EXPECT_FALSE(back[1].values[1].has_value());
  EXPECT_FALSE(back[2].values[0].has_value());
}

TEST(Gnf, DecomposeChecksArity) {
  RecordSpec spec{"product", "Product", {"Name"}};
  EntityRegistry registry;
  Database db;
  std::vector<WideRow> bad = {{"P1", {S("a"), I(1)}}};
  EXPECT_THROW(DecomposeRecords(spec, bad, &registry, &db), RelError);
}

}  // namespace
}  // namespace kg
}  // namespace rel
