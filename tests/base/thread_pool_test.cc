// Tests for the work-stealing task pool: completion, nested fork-join,
// slot stability, counter accounting, and exception propagation.

#include "base/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

namespace rel {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  ThreadPool::TaskGroup group(&pool);
  constexpr int kTasks = 5000;
  for (int i = 0; i < kTasks; ++i) {
    group.Run([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  group.Wait();
  EXPECT_EQ(counter.load(), kTasks);
  EXPECT_EQ(pool.stats().TotalTasks(), static_cast<uint64_t>(kTasks));
}

TEST(ThreadPool, NestedGroupsDoNotDeadlock) {
  // Every task forks its own children and waits — the fork-join shape the
  // evaluator uses (unit task -> per-round chunk tasks). With more waiting
  // tasks than workers this deadlocks unless Wait() helps.
  ThreadPool pool(2);
  std::atomic<int> leaves{0};
  ThreadPool::TaskGroup group(&pool);
  for (int i = 0; i < 8; ++i) {
    group.Run([&pool, &leaves] {
      ThreadPool::TaskGroup inner(&pool);
      for (int j = 0; j < 16; ++j) {
        inner.Run(
            [&leaves] { leaves.fetch_add(1, std::memory_order_relaxed); });
      }
      inner.Wait();
    });
  }
  group.Wait();
  EXPECT_EQ(leaves.load(), 8 * 16);
}

TEST(ThreadPool, SlotsAreStableAndInRange) {
  ThreadPool pool(3);
  // The submitting (non-worker) thread maps to the extra helper slot.
  EXPECT_EQ(pool.CurrentSlot(), 3);
  EXPECT_EQ(pool.num_slots(), 4);

  std::mutex mu;
  std::set<int> seen;
  ThreadPool::TaskGroup group(&pool);
  for (int i = 0; i < 64; ++i) {
    group.Run([&] {
      int slot = pool.CurrentSlot();
      // Within a task the slot must be consistent across calls.
      EXPECT_EQ(slot, pool.CurrentSlot());
      EXPECT_GE(slot, 0);
      EXPECT_LT(slot, pool.num_slots());
      std::lock_guard<std::mutex> lock(mu);
      seen.insert(slot);
    });
  }
  group.Wait();
  EXPECT_FALSE(seen.empty());
}

TEST(ThreadPool, FirstTaskExceptionRethrownFromWait) {
  ThreadPool pool(2);
  ThreadPool::TaskGroup group(&pool);
  std::atomic<int> ran{0};
  for (int i = 0; i < 10; ++i) {
    group.Run([&ran, i] {
      ran.fetch_add(1, std::memory_order_relaxed);
      if (i == 3) throw std::runtime_error("task 3 failed");
    });
  }
  EXPECT_THROW(group.Wait(), std::runtime_error);
  // All tasks still completed (the group drains fully before rethrowing).
  EXPECT_EQ(ran.load(), 10);
  // The group is reusable after the error was consumed.
  group.Run([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  group.Wait();
  EXPECT_EQ(ran.load(), 11);
}

TEST(ThreadPool, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::HardwareThreads(), 1);
}

TEST(ThreadPool, SingleWorkerStillCompletesForkJoin) {
  // Degenerate pool: everything must run via help or the lone worker.
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  ThreadPool::TaskGroup group(&pool);
  for (int i = 0; i < 100; ++i) {
    group.Run([&] {
      ThreadPool::TaskGroup inner(&pool);
      inner.Run([&] { counter.fetch_add(1, std::memory_order_relaxed); });
      inner.Wait();
    });
  }
  group.Wait();
  EXPECT_EQ(counter.load(), 100);
}

}  // namespace
}  // namespace rel
