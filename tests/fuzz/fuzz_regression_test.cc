// Regression and property tests for the equivalent-query fuzzer (src/fuzz).
//
// Three layers:
//   * corpus replay — every committed reproducer in tests/fuzz/corpus/ (the
//     minimized output of past fuzzer findings) must run discrepancy-free
//     across the full configuration lattice, deterministically: fixed
//     seeds, no time or ambient randomness anywhere in the pipeline;
//   * generator properties — determinism, corpus-format round-tripping,
//     and grammar coverage (recursion, negation, goals, empty extents all
//     actually occur at the default dials);
//   * a fresh differential sweep at pinned seeds — a bounded slice of what
//     examples/fuzz.cpp runs at scale, so every CI configuration (ASan,
//     TSan with REL_EVAL_THREADS, plain) differential-tests the engines on
//     every run.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/generator.h"
#include "fuzz/minimize.h"
#include "fuzz/runner.h"
#include "fuzz/update_stream.h"

namespace rel {
namespace fuzz {
namespace {

#ifndef REL_FUZZ_CORPUS_DIR
#error "REL_FUZZ_CORPUS_DIR must point at tests/fuzz/corpus (see CMakeLists)"
#endif

std::vector<std::filesystem::path> CorpusFiles() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(REL_FUZZ_CORPUS_DIR)) {
    if (entry.path().extension() == ".dl") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string ReadFile(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(FuzzCorpus, EveryReproducerReplaysClean) {
  std::vector<std::filesystem::path> files = CorpusFiles();
  ASSERT_FALSE(files.empty()) << "corpus directory is empty: "
                              << REL_FUZZ_CORPUS_DIR;
  for (const auto& path : files) {
    FuzzCase c = CaseFromText(ReadFile(path));
    RunResult result = RunCase(c);
    EXPECT_TRUE(result.ok())
        << path.filename() << " regressed:\n" << FormatResult(c, result);
    EXPECT_GT(result.configs_run, 1) << path.filename();
  }
}

TEST(FuzzCorpus, ReplayIsDeterministic) {
  for (const auto& path : CorpusFiles()) {
    FuzzCase c = CaseFromText(ReadFile(path));
    // Loading, re-rendering and re-loading is the identity on the rendered
    // form — the corpus format carries everything the runner consumes.
    FuzzCase again = CaseFromText(CaseToText(c));
    EXPECT_EQ(CaseToText(c), CaseToText(again)) << path.filename();
    EXPECT_EQ(c.seed, again.seed);
    EXPECT_EQ(c.idb_preds, again.idb_preds);
  }
}

TEST(FuzzGenerator, DeterministicInSeed) {
  for (uint64_t seed : {0u, 1u, 42u, 999u}) {
    FuzzCase a = GenerateCase(seed);
    FuzzCase b = GenerateCase(seed);
    EXPECT_EQ(CaseToText(a), CaseToText(b)) << "seed " << seed;
  }
  EXPECT_NE(CaseToText(GenerateCase(1)), CaseToText(GenerateCase(2)));
}

TEST(FuzzGenerator, TextRoundTripPreservesTheCase) {
  for (uint64_t seed = 100; seed < 140; ++seed) {
    FuzzCase c = GenerateCase(seed);
    FuzzCase back = CaseFromText(CaseToText(c));
    EXPECT_EQ(back.seed, c.seed);
    EXPECT_EQ(back.idb_preds, c.idb_preds);
    EXPECT_EQ(back.goal.has_value(), c.goal.has_value());
    if (c.goal && back.goal) {
      EXPECT_EQ(back.goal->pred, c.goal->pred);
      EXPECT_EQ(back.goal->pattern.size(), c.goal->pattern.size());
    }
    EXPECT_EQ(back.program.rules().size(), c.program.rules().size());
    // Facts survive exactly (sorted rendering both ways).
    EXPECT_EQ(back.program.facts(), c.program.facts()) << "seed " << seed;
    // The round trip is the identity up to rule-variable renumbering
    // (ParseDatalog assigns ids in first-occurrence order), so one
    // normalizing round trip reaches a byte-stable fixpoint.
    FuzzCase back2 = CaseFromText(CaseToText(back));
    EXPECT_EQ(CaseToText(back2), CaseToText(back)) << "seed " << seed;
  }
}

TEST(FuzzGenerator, GrammarCoverageAtDefaultDials) {
  int with_goal = 0, with_all_free_goal = 0, with_edb_goal = 0;
  int with_negation = 0, with_recursion = 0, with_empty_edb = 0;
  int with_aggregate = 0;
  bool agg_ops_seen[4] = {false, false, false, false};
  const int kSeeds = 300;
  for (uint64_t seed = 0; seed < kSeeds; ++seed) {
    FuzzCase c = GenerateCase(seed);
    if (c.program.HasAggregates()) ++with_aggregate;
    for (const auto& rule : c.program.rules()) {
      if (rule.agg) agg_ops_seen[static_cast<int>(rule.agg->op)] = true;
    }
    if (c.goal) {
      ++with_goal;
      if (!c.goal->AnyBound()) ++with_all_free_goal;
      if (!std::binary_search(c.idb_preds.begin(), c.idb_preds.end(),
                              c.goal->pred)) {
        ++with_edb_goal;
      }
    }
    bool neg = false, rec = false;
    for (const auto& rule : c.program.rules()) {
      for (const auto& lit : rule.body) {
        using Kind = datalog::Literal::Kind;
        if (lit.kind == Kind::kNegative) neg = true;
        if (lit.kind == Kind::kPositive &&
            std::binary_search(c.idb_preds.begin(), c.idb_preds.end(),
                               lit.atom.pred)) {
          rec = true;  // IDB-referencing body: recursion or layering
        }
      }
    }
    if (neg) ++with_negation;
    if (rec) ++with_recursion;
    // An EDB predicate whose extent came out empty is simply absent from
    // facts(); the default dials declare two EDB predicates.
    if (c.program.facts().size() < 2) ++with_empty_edb;
  }
  // The exact fractions are seed-dependent; what matters is that every
  // production of the grammar is reachable and common.
  EXPECT_GT(with_goal, kSeeds / 3);
  EXPECT_GT(with_all_free_goal, 0);
  EXPECT_GT(with_edb_goal, 0);
  EXPECT_GT(with_negation, kSeeds / 4);
  EXPECT_GT(with_recursion, kSeeds / 4);
  EXPECT_GT(with_empty_edb, 0);
  EXPECT_GT(with_aggregate, kSeeds / 4);
  for (int op = 0; op < 4; ++op) {
    EXPECT_TRUE(agg_ops_seen[op]) << "aggregate op " << op << " never drawn";
  }
}

TEST(FuzzMinimize, PassingCaseIsReturnedUnchanged) {
  FuzzCase c = GenerateCase(42);
  ASSERT_TRUE(RunCase(c).ok());
  FuzzCase m = Minimize(c);
  EXPECT_EQ(CaseToText(m), CaseToText(c));
}

// The bounded fresh sweep: 25 pinned seeds through the full lattice. The
// CLI (examples/fuzz.cpp) runs thousands; this slice keeps every CI
// configuration honest without dominating suite time.
TEST(FuzzSweep, PinnedSeedsAreDiscrepancyFree) {
  for (uint64_t seed = 42; seed < 67; ++seed) {
    FuzzCase c = GenerateCase(seed);
    RunResult result = RunCase(c);
    EXPECT_TRUE(result.ok()) << FormatResult(c, result);
  }
}

// --- update streams (the incremental-maintenance differential arm) ---

TEST(FuzzUpdateStream, DeterministicInSeedAndTextRoundTrips) {
  for (uint64_t seed : {0u, 7u, 42u, 321u}) {
    UpdateStream a = GenerateUpdateStream(seed);
    UpdateStream b = GenerateUpdateStream(seed);
    EXPECT_EQ(StreamToText(a), StreamToText(b)) << "seed " << seed;
    // The corpus format carries everything the runner consumes: one
    // normalizing round trip reaches a byte-stable fixpoint (rule-variable
    // renumbering, as for plain cases), and the steps survive exactly.
    UpdateStream back = StreamFromText(StreamToText(a));
    EXPECT_EQ(StreamToText(StreamFromText(StreamToText(back))),
              StreamToText(back))
        << "seed " << seed;
    ASSERT_EQ(back.steps.size(), a.steps.size()) << "seed " << seed;
    for (size_t i = 0; i < a.steps.size(); ++i) {
      EXPECT_EQ(back.steps[i].is_insert, a.steps[i].is_insert);
      EXPECT_EQ(back.steps[i].pred, a.steps[i].pred);
      EXPECT_EQ(back.steps[i].tuple, a.steps[i].tuple);
    }
  }
}

// Pinned update-stream seeds through the full lattice: the incremental arm
// (EvaluateDelta + DRed with a persistent IndexCache) against the
// recompute oracle after every step. The CLI (examples/fuzz.cpp
// --updates) runs hundreds; this slice keeps every CI configuration —
// including TSan with REL_EVAL_THREADS — honest on every run, and asserts
// the delta path is actually exercised (not all-fallback).
TEST(FuzzUpdateStream, PinnedStreamsAreDiscrepancyFree) {
  // Aggregates are excluded here: EvaluateDelta refuses aggregate-bearing
  // programs (every step would take the recompute fallback), and this test
  // asserts the delta path itself is exercised. The aggregate → fallback
  // arm is pinned separately below.
  StreamOptions opts;
  opts.generator.allow_aggregates = false;
  uint64_t incremental = 0, fallback = 0;
  for (uint64_t seed = 42; seed < 54; ++seed) {
    UpdateStream s = GenerateUpdateStream(seed, opts);
    RunResult result = RunUpdateStream(s, {}, &incremental, &fallback);
    EXPECT_TRUE(result.ok()) << FormatStreamResult(s, result);
  }
  EXPECT_GT(incremental, 0u) << "no stream step took the EvaluateDelta path";
}

// Streams over aggregate-bearing programs: EvaluateDelta must refuse every
// step (supported=false, never a wrong answer or a throw), and the
// recompute fallback must keep all arms byte-identical to the oracle.
TEST(FuzzUpdateStream, AggregateStreamsFallBackCleanly) {
  uint64_t incremental = 0, fallback = 0;
  int aggregate_streams = 0;
  for (uint64_t seed = 42; seed < 50; ++seed) {
    UpdateStream s = GenerateUpdateStream(seed);
    if (!s.base.program.HasAggregates()) continue;
    ++aggregate_streams;
    RunResult result = RunUpdateStream(s, {}, &incremental, &fallback);
    EXPECT_TRUE(result.ok()) << FormatStreamResult(s, result);
  }
  ASSERT_GT(aggregate_streams, 0) << "no pinned seed drew an aggregate";
  EXPECT_EQ(incremental, 0u)
      << "EvaluateDelta maintained an aggregate program";
  EXPECT_GT(fallback, 0u);
}

// A second profile with different dials (tiny dense domain, no
// comparisons) — the shape that historically surfaced the
// multi-recursive-occurrence stats anomaly.
TEST(FuzzSweep, DenseRecursiveProfileIsDiscrepancyFree) {
  GeneratorOptions lean;
  lean.num_edb = 1;
  lean.num_idb = 4;
  lean.max_arity = 2;
  lean.value_domain = 5;
  lean.edb_rows = 14;
  lean.allow_comparisons = false;
  for (uint64_t seed = 500; seed < 515; ++seed) {
    FuzzCase c = GenerateCase(seed, lean);
    RunResult result = RunCase(c);
    EXPECT_TRUE(result.ok()) << FormatResult(c, result);
  }
}

}  // namespace
}  // namespace fuzz
}  // namespace rel
