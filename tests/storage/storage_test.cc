// Unit tests for the durability layer: CRC32, the byte codecs of
// src/data/serialize.h (Value / Tuple / ColumnArena-backed Relation /
// Database round-trips), the WAL record format and its truncating reader,
// snapshot encode/decode with corruption detection, and the Store / Engine
// integration over the in-memory file system. The randomized crash sweep
// lives in crash_recovery_test.cc; this file pins the formats and the
// structured-error (no-throw-to-exit) degradation paths.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "base/crc32.h"
#include "base/error.h"
#include "core/engine.h"
#include "data/serialize.h"
#include "storage/file.h"
#include "storage/snapshot.h"
#include "storage/store.h"
#include "storage/wal.h"

namespace rel {
namespace {

using storage::DurabilityOptions;
using storage::FaultPlan;
using storage::MemFileSystem;
using storage::RecoveryReport;
using storage::SnapshotData;
using storage::WalReadResult;
using storage::WalRecord;
using storage::WalRecordType;

Value I(int64_t v) { return Value::Int(v); }
Value F(double v) { return Value::Float(v); }
Value S(const char* s) { return Value::String(s); }
Value E(const char* c, const char* id) { return Value::Entity(c, id); }

// --- CRC32 -------------------------------------------------------------------

TEST(Crc32, KnownAnswer) {
  // The standard CRC-32/IEEE check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  std::string data = "write-ahead log record payload";
  uint32_t whole = Crc32(data);
  uint32_t split = Crc32(data.substr(10), Crc32(data.substr(0, 10)));
  EXPECT_EQ(whole, split);
  EXPECT_NE(Crc32("a"), Crc32("b"));
}

// --- value / tuple codecs ----------------------------------------------------

Value RoundTripValue(const Value& v, bool with_table) {
  std::string buf;
  ByteWriter w(&buf);
  StringTable table;
  EncodeValue(&w, v, with_table ? &table : nullptr);

  std::vector<std::string> loaded;
  for (std::string_view s : table.strings()) loaded.emplace_back(s);
  ByteReader r(buf);
  Value out;
  EXPECT_TRUE(DecodeValue(&r, with_table ? &loaded : nullptr, &out));
  EXPECT_TRUE(r.done());
  return out;
}

TEST(Serialize, ValueRoundTripsAllKinds) {
  for (bool table : {false, true}) {
    for (const Value& v :
         {I(0), I(-1), I(std::numeric_limits<int64_t>::min()),
          I(std::numeric_limits<int64_t>::max()), F(0.0), F(-2.5),
          F(std::numeric_limits<double>::infinity()), S(""), S("hello"),
          S("with \"quotes\" and \n newlines"), E("person", "p-1"),
          E("", "")}) {
      Value out = RoundTripValue(v, table);
      EXPECT_EQ(v.Compare(out), 0) << v.ToString();
      EXPECT_EQ(v.ToString(), out.ToString());
    }
  }
}

TEST(Serialize, NanRoundTripsBitExactly) {
  // NaN is the source of kUnordered comparisons; it must survive by bit
  // pattern even though NaN != NaN.
  double nan = std::nan("0x7ff");
  Value out = RoundTripValue(F(nan), /*with_table=*/false);
  ASSERT_TRUE(out.is_float());
  EXPECT_TRUE(std::isnan(out.AsFloat()));
  uint64_t before, after;
  std::memcpy(&before, &nan, 8);
  double restored = out.AsFloat();
  std::memcpy(&after, &restored, 8);
  EXPECT_EQ(before, after);
  EXPECT_EQ(F(nan).NumericCompare(out), Value::Ordering::kUnordered);
}

TEST(Serialize, NegativeZeroKeepsItsSign) {
  Value out = RoundTripValue(F(-0.0), /*with_table=*/false);
  EXPECT_TRUE(std::signbit(out.AsFloat()));
}

TEST(Serialize, TupleRoundTripsIncludingEmpty) {
  for (const Tuple& t : {Tuple{}, Tuple({I(1)}), Tuple({I(1), S("x"), F(2.5)}),
                         Tuple({E("c", "id"), I(-7)})}) {
    std::string buf;
    ByteWriter w(&buf);
    EncodeTuple(&w, t, nullptr);
    ByteReader r(buf);
    Tuple out;
    ASSERT_TRUE(DecodeTuple(&r, nullptr, &out));
    EXPECT_EQ(t, out);
  }
}

TEST(Serialize, TruncatedInputFailsCleanly) {
  std::string buf;
  ByteWriter w(&buf);
  EncodeValue(&w, S("some string"), nullptr);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    ByteReader r(std::string_view(buf).substr(0, cut));
    Value out;
    EXPECT_FALSE(DecodeValue(&r, nullptr, &out)) << "cut at " << cut;
  }
  // Unknown kind tag.
  std::string bad = buf;
  bad[0] = 0x7f;
  ByteReader r(bad);
  Value out;
  EXPECT_FALSE(DecodeValue(&r, nullptr, &out));
}

TEST(Serialize, TableReferenceOutOfRangeFails)
{
  std::string buf;
  ByteWriter w(&buf);
  StringTable table;
  EncodeValue(&w, S("only-entry"), &table);
  std::vector<std::string> empty_table;  // decoder sees no strings
  ByteReader r(buf);
  Value out;
  EXPECT_FALSE(DecodeValue(&r, &empty_table, &out));
}

// --- relation / database codecs ----------------------------------------------

Relation RoundTripRelation(const Relation& rel) {
  std::string buf;
  ByteWriter w(&buf);
  StringTable table;
  EncodeRelation(&w, rel, &table);
  std::vector<std::string> loaded;
  for (std::string_view s : table.strings()) loaded.emplace_back(s);
  ByteReader r(buf);
  Relation out;
  EXPECT_TRUE(DecodeRelation(&r, &loaded, &out));
  EXPECT_TRUE(r.done());
  return out;
}

TEST(Serialize, RelationRoundTripsMixedArity) {
  Relation rel;
  rel.Insert(Tuple({I(1), I(2)}));
  rel.Insert(Tuple({I(1)}));
  rel.Insert(Tuple({S("a"), S("b"), S("a")}));
  rel.Insert(Tuple({E("c", "x"), F(1.5)}));
  rel.Insert(Tuple{});  // the empty tuple: boolean TRUE lives in arity 0
  Relation out = RoundTripRelation(rel);
  EXPECT_EQ(rel, out);
  // Byte-identical rendering after save/load — the satellite's contract.
  EXPECT_EQ(rel.ToString(), out.ToString());
}

TEST(Serialize, EmptyRelationAndBooleans) {
  EXPECT_EQ(RoundTripRelation(Relation()).ToString(), "{}");
  EXPECT_EQ(RoundTripRelation(Relation::True()).ToString(),
            Relation::True().ToString());
  EXPECT_TRUE(RoundTripRelation(Relation::True()).AsBool());
}

TEST(Serialize, RelationWithUnorderedValues) {
  Relation rel;
  rel.Insert(Tuple({I(1), F(std::nan(""))}));
  rel.Insert(Tuple({I(2), F(1.0)}));
  Relation out = RoundTripRelation(rel);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(rel.ToString(), out.ToString());
}

TEST(Serialize, EncodingIsCanonicalAcrossInsertionOrder) {
  // Rows are written in sorted order, so equal content encodes equal bytes
  // regardless of how it was built — snapshots of equal databases match.
  Relation a, b;
  a.Insert(Tuple({I(1)}));
  a.Insert(Tuple({I(2)}));
  b.Insert(Tuple({I(2)}));
  b.Insert(Tuple({I(1)}));
  std::string ba, bb;
  ByteWriter wa(&ba), wb(&bb);
  EncodeRelation(&wa, a, nullptr);
  EncodeRelation(&wb, b, nullptr);
  EXPECT_EQ(ba, bb);
}

TEST(Serialize, DatabaseRoundTripsWithInternedStringsShared) {
  Database db;
  for (int i = 0; i < 50; ++i) {
    db.Insert("Edge", Tuple({I(i), I(i + 1), S("shared-label")}));
  }
  db.Insert("Tags", Tuple({S("shared-label"), E("concept", "shared-label")}));
  db.Insert("T", Tuple({}));

  std::string buf;
  StringTable table;
  {
    ByteWriter w(&buf);
    EncodeDatabase(&w, db, &table);
  }
  // The table deduplicates: "shared-label" (and friends) appear once.
  EXPECT_EQ(table.strings().size(), 2u);  // "shared-label", "concept"

  std::vector<std::string> loaded;
  for (std::string_view s : table.strings()) loaded.emplace_back(s);
  ByteReader r(buf);
  Database out;
  ASSERT_TRUE(DecodeDatabase(&r, &loaded, &out));
  ASSERT_TRUE(r.done());
  EXPECT_EQ(out.Names(), db.Names());
  for (const std::string& name : db.Names()) {
    EXPECT_EQ(out.Get(name).ToString(), db.Get(name).ToString()) << name;
  }
  EXPECT_EQ(out.TotalTuples(), db.TotalTuples());
}

// --- WAL format --------------------------------------------------------------

std::string EncodeLog(const std::vector<WalRecord>& records) {
  std::string out;
  for (const WalRecord& rec : records) EncodeWalRecord(rec, &out);
  return out;
}

std::vector<WalRecord> SampleTxn(uint64_t id) {
  WalRecord begin, commit;
  begin.type = WalRecordType::kBegin;
  begin.txn_id = id;
  commit.type = WalRecordType::kCommit;
  commit.txn_id = id;
  WalRecord fact = WalRecord::Fact("Edge", Tuple({I(1), S("x")}));
  fact.txn_id = id;
  WalRecord retract = WalRecord::Retract("Edge", Tuple({I(0), S("y")}));
  retract.txn_id = id;
  return {begin, fact, retract, commit};
}

TEST(Wal, CleanLogRoundTrips) {
  std::string image = EncodeLog(SampleTxn(7));
  WalReadResult result = storage::ReadWal(image);
  EXPECT_FALSE(result.truncated);
  EXPECT_EQ(result.valid_bytes, image.size());
  ASSERT_EQ(result.records.size(), 4u);
  EXPECT_EQ(result.records[0].type, WalRecordType::kBegin);
  EXPECT_EQ(result.records[1].type, WalRecordType::kFact);
  EXPECT_EQ(result.records[1].name, "Edge");
  EXPECT_EQ(result.records[1].tuple, Tuple({I(1), S("x")}));
  EXPECT_EQ(result.records[2].type, WalRecordType::kRetract);
  EXPECT_EQ(result.records[3].type, WalRecordType::kCommit);
  for (const WalRecord& rec : result.records) EXPECT_EQ(rec.txn_id, 7u);
}

TEST(Wal, EmptyImageIsClean) {
  WalReadResult result = storage::ReadWal("");
  EXPECT_FALSE(result.truncated);
  EXPECT_EQ(result.valid_bytes, 0u);
}

// Byte offsets at which each record of `records` (appended in order after
// `base` bytes) starts, plus the end-of-log offset.
std::vector<size_t> RecordBoundaries(size_t base,
                                     const std::vector<WalRecord>& records) {
  std::vector<size_t> bounds = {base};
  std::string buf;
  for (const WalRecord& rec : records) {
    EncodeWalRecord(rec, &buf);
    bounds.push_back(base + buf.size());
  }
  return bounds;
}

TEST(Wal, TornTailTruncatesAtRecordBoundary) {
  std::string first = EncodeLog(SampleTxn(1));
  std::vector<WalRecord> second = SampleTxn(2);
  std::string image = first + EncodeLog(second);
  std::vector<size_t> bounds = RecordBoundaries(first.size(), second);
  // Chop the image everywhere inside the second transaction. The reader
  // must keep every fully-landed record, report a tear exactly when the
  // cut splits a frame, and never trust a byte past the last boundary.
  for (size_t cut = first.size() + 1; cut < image.size(); ++cut) {
    WalReadResult result = storage::ReadWal(image.substr(0, cut));
    size_t last_whole = 0;
    for (size_t b : bounds) {
      if (b <= cut) last_whole = b;
    }
    EXPECT_EQ(result.valid_bytes, last_whole) << cut;
    EXPECT_EQ(result.truncated, cut != last_whole) << cut;
    EXPECT_GE(result.records.size(), 4u) << cut;
    // Never a partial record: record count matches the boundary index.
    size_t whole_records = 0;
    for (size_t b : bounds) {
      if (b <= cut && b > first.size()) ++whole_records;
    }
    EXPECT_EQ(result.records.size(), 4u + whole_records) << cut;
  }
}

TEST(Wal, BitFlipStopsTheScan) {
  std::string first = EncodeLog(SampleTxn(1));
  std::vector<WalRecord> second = SampleTxn(2);
  std::string image = first + EncodeLog(second);
  std::vector<size_t> bounds = RecordBoundaries(first.size(), second);
  // Flip a bit in every byte position of the second txn in turn: the scan
  // must stop exactly at the start of the record containing the flip —
  // records before it survive, nothing after it is trusted.
  for (size_t pos = first.size(); pos < image.size(); ++pos) {
    std::string corrupt = image;
    corrupt[pos] ^= 0x10;
    WalReadResult result = storage::ReadWal(corrupt);
    size_t record_start = 0;
    for (size_t b : bounds) {
      if (b <= pos) record_start = b;
    }
    EXPECT_TRUE(result.truncated) << pos;
    EXPECT_EQ(result.valid_bytes, record_start) << pos;
    EXPECT_GE(result.records.size(), 4u) << pos;
  }
}

TEST(Wal, DefineRecordRoundTrips) {
  WalRecord def;
  def.type = WalRecordType::kDefine;
  def.txn_id = 3;
  def.source = "def d(x) : x = 1\nic c() requires d(1)";
  std::string image;
  EncodeWalRecord(def, &image);
  WalReadResult result = storage::ReadWal(image);
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.records[0].source, def.source);
}

// --- snapshot format ---------------------------------------------------------

SnapshotData SampleSnapshot() {
  SnapshotData data;
  data.db.Insert("Edge", Tuple({I(1), I(2)}));
  data.db.Insert("Edge", Tuple({I(2), I(3)}));
  data.db.Insert("Name", Tuple({E("person", "p1"), S("Ada")}));
  data.model_sources = {"def reach(x, y) : Edge(x, y)",
                        "ic has_names() requires count[Name] > 0"};
  data.last_txn_id = 42;
  return data;
}

TEST(Snapshot, RoundTrips) {
  SnapshotData data = SampleSnapshot();
  std::string image;
  storage::EncodeSnapshot(data, &image);
  SnapshotData out;
  ASSERT_TRUE(storage::DecodeSnapshot(image, &out).ok());
  EXPECT_EQ(out.last_txn_id, 42u);
  EXPECT_EQ(out.model_sources, data.model_sources);
  EXPECT_EQ(out.db.Names(), data.db.Names());
  for (const std::string& name : data.db.Names()) {
    EXPECT_EQ(out.db.Get(name).ToString(), data.db.Get(name).ToString());
  }
}

TEST(Snapshot, AnySingleBitFlipIsDetected) {
  std::string image;
  storage::EncodeSnapshot(SampleSnapshot(), &image);
  for (size_t pos = 0; pos < image.size(); ++pos) {
    std::string corrupt = image;
    corrupt[pos] ^= 0x04;
    SnapshotData out;
    Status s = storage::DecodeSnapshot(corrupt, &out);
    EXPECT_FALSE(s.ok()) << "flip at " << pos;
    EXPECT_EQ(s.kind(), ErrorKind::kCorruption) << "flip at " << pos;
  }
}

TEST(Snapshot, TruncationIsDetected) {
  std::string image;
  storage::EncodeSnapshot(SampleSnapshot(), &image);
  for (size_t cut : {size_t{0}, size_t{4}, size_t{11}, image.size() - 1}) {
    SnapshotData out;
    EXPECT_FALSE(storage::DecodeSnapshot(image.substr(0, cut), &out).ok());
  }
}

// --- store + engine integration over the mem file system ---------------------

TEST(Store, FreshAttachCommitRecoverElsewhere) {
  auto fs = std::make_shared<MemFileSystem>();
  {
    Engine engine;
    RecoveryReport report = engine.AttachStorage("db", {}, fs);
    ASSERT_TRUE(report.status.ok()) << report.status.ToString();
    EXPECT_EQ(report.recovered_txns, 0u);
    engine.Define("def doubled(x) : exists((y) | Num(y) and x = y + y)");
    TxnResult txn = engine.Exec("def insert(:Num, x) : x = 1 or x = 2");
    EXPECT_GT(txn.txn_id, 0u);
    engine.Exec("def delete(:Num, x) : Num(x) and x = 1\n"
                "def insert(:Num, x) : x = 3");
    // No Checkpoint: recovery must reconstruct purely from the WAL.
  }
  Engine recovered;
  RecoveryReport report = recovered.AttachStorage("db", {}, fs);
  ASSERT_TRUE(report.status.ok()) << report.status.ToString();
  EXPECT_EQ(report.replayed_txns, 2u);
  EXPECT_FALSE(report.wal_truncated);
  EXPECT_EQ(recovered.Base("Num").ToString(), "{(2); (3)}");
  // The model came back too: Define'd rules answer queries again.
  EXPECT_EQ(recovered.Query("def output : doubled").ToString(), "{(4); (6)}");
}

TEST(Store, CheckpointRotatesAndRecoversFromSnapshot) {
  auto fs = std::make_shared<MemFileSystem>();
  {
    Engine engine;
    ASSERT_TRUE(engine.AttachStorage("db", {}, fs).status.ok());
    engine.Exec("def insert(:R, x) : x = 1 or x = 2 or x = 3");
    ASSERT_TRUE(engine.Checkpoint().ok());
    engine.Exec("def insert(:R, x) : x = 4");  // lands in the new epoch's WAL
  }
  ASSERT_TRUE(fs->Exists("db/snap-1"));
  Engine recovered;
  RecoveryReport report = recovered.AttachStorage("db", {}, fs);
  ASSERT_TRUE(report.status.ok());
  EXPECT_EQ(report.snapshot_txn, 1u);
  EXPECT_EQ(report.replayed_txns, 1u);
  EXPECT_EQ(recovered.Base("R").ToString(), "{(1); (2); (3); (4)}");
}

TEST(Store, IntegrityConstraintsSurviveRecovery) {
  auto fs = std::make_shared<MemFileSystem>();
  {
    Engine engine;
    ASSERT_TRUE(engine.AttachStorage("db", {}, fs).status.ok());
    engine.Define("ic positive(x) requires Num(x) implies x > 0");
    engine.Exec("def insert(:Num, x) : x = 5");
  }
  Engine recovered;
  ASSERT_TRUE(recovered.AttachStorage("db", {}, fs).status.ok());
  recovered.CheckConstraints();  // recovered state satisfies recovered ICs
  EXPECT_THROW(recovered.Exec("def insert(:Num, x) : x = 0 - 7"),
               ConstraintViolation);
  EXPECT_EQ(recovered.Base("Num").ToString(), "{(5)}");
}

TEST(Store, TornWalTailDegradesToReportNotThrow) {
  auto fs = std::make_shared<MemFileSystem>();
  {
    Engine engine;
    ASSERT_TRUE(engine.AttachStorage("db", {}, fs).status.ok());
    engine.Exec("def insert(:R, x) : x = 1");
    engine.Exec("def insert(:R, x) : x = 2");
  }
  // Tear bytes off the WAL tail by hand.
  auto files = fs->FilesAsIs();
  std::string& wal = files["db/wal-0"];
  ASSERT_GT(wal.size(), 6u);
  wal.resize(wal.size() - 5);
  auto damaged = std::make_shared<MemFileSystem>(files);

  Engine recovered;
  RecoveryReport report = recovered.AttachStorage("db", {}, damaged);
  ASSERT_TRUE(report.status.ok()) << "corruption must degrade, not fail";
  EXPECT_TRUE(report.wal_truncated);
  EXPECT_EQ(report.replayed_txns, 1u);
  EXPECT_NE(report.detail.find("truncated"), std::string::npos);
  EXPECT_EQ(recovered.Base("R").ToString(), "{(1)}");
  // The trimmed WAL accepts new commits, and they survive the next recovery.
  recovered.Exec("def insert(:R, x) : x = 9");
  Engine again;
  ASSERT_TRUE(again.AttachStorage("db", {}, damaged).status.ok());
  EXPECT_EQ(again.Base("R").ToString(), "{(1); (9)}");
}

TEST(Store, CorruptSnapshotFallsBackOneEpoch) {
  auto fs = std::make_shared<MemFileSystem>();
  {
    Engine engine;
    ASSERT_TRUE(engine.AttachStorage("db", {}, fs).status.ok());
    engine.Exec("def insert(:R, x) : x = 1");
    ASSERT_TRUE(engine.Checkpoint().ok());
    engine.Exec("def insert(:R, x) : x = 2");
    ASSERT_TRUE(engine.Checkpoint().ok());
  }
  // Corrupt the newest snapshot after the fact; the previous epoch's
  // snapshot + WAL are still on disk (retention keeps one fallback epoch).
  auto files = fs->FilesAsIs();
  ASSERT_TRUE(files.count("db/snap-2"));
  ASSERT_TRUE(files.count("db/snap-1"));
  files["db/snap-2"][20] ^= 0x01;
  auto damaged = std::make_shared<MemFileSystem>(files);

  Engine recovered;
  RecoveryReport report = recovered.AttachStorage("db", {}, damaged);
  ASSERT_TRUE(report.status.ok());
  EXPECT_NE(report.detail.find("skipped snap-2"), std::string::npos)
      << report.detail;
  EXPECT_EQ(report.snapshot_txn, 1u);
  EXPECT_EQ(recovered.Base("R").ToString(), "{(1); (2)}")
      << "epoch-1 WAL replay must restore txn 2";
}

TEST(Store, WalAppendFailureRollsBackAndSurfacesKIo) {
  auto fs = std::make_shared<MemFileSystem>();
  Engine engine;
  ASSERT_TRUE(engine.AttachStorage("db", {}, fs).status.ok());
  engine.Exec("def insert(:R, x) : x = 1");

  FaultPlan plan;
  plan.kind = FaultPlan::Kind::kFailWrite;
  plan.at_write = 1;  // next append dies
  fs->SetFault(plan);
  try {
    engine.Exec("def insert(:R, x) : x = 2");
    FAIL() << "expected kIo";
  } catch (const RelError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kIo);
    EXPECT_NE(std::string(e.what()).find("rolled back"), std::string::npos);
  }
  // The in-memory state rolled back with it: durable and in-memory agree.
  EXPECT_EQ(engine.Base("R").ToString(), "{(1)}");
}

TEST(Store, FailedCheckpointKeepsPreviousEpoch) {
  auto fs = std::make_shared<MemFileSystem>();
  Engine engine;
  ASSERT_TRUE(engine.AttachStorage("db", {}, fs).status.ok());
  engine.Exec("def insert(:R, x) : x = 1");

  // Bit-flip the snapshot as it is written: read-back verification must
  // reject it and keep the old epoch serving.
  FaultPlan plan;
  plan.kind = FaultPlan::Kind::kBitFlip;
  plan.at_write = 1;
  plan.offset = 25;
  fs->SetFault(plan);
  Status s = engine.Checkpoint();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.kind(), ErrorKind::kCorruption);
  fs->SetFault({});
  EXPECT_FALSE(fs->Exists("db/snap-1"));
  EXPECT_FALSE(fs->Exists("db/snap-tmp"));

  // Still fully functional on the old epoch, and a later checkpoint works.
  engine.Exec("def insert(:R, x) : x = 2");
  ASSERT_TRUE(engine.Checkpoint().ok());
  Engine recovered;
  ASSERT_TRUE(recovered.AttachStorage("db", {}, fs).status.ok());
  EXPECT_EQ(recovered.Base("R").ToString(), "{(1); (2)}");
}

TEST(Store, GroupCommitBuffersSyncs) {
  auto fs = std::make_shared<MemFileSystem>();
  DurabilityOptions opts;
  opts.group_commit = 3;
  Engine engine;
  ASSERT_TRUE(engine.AttachStorage("db", opts, fs).status.ok());
  engine.Exec("def insert(:R, x) : x = 1");
  engine.Exec("def insert(:R, x) : x = 2");
  // Two commits: acknowledged, appended, but not yet synced.
  EXPECT_LT(fs->FilesSynced()["db/wal-0"].size(),
            fs->FilesAsIs()["db/wal-0"].size());
  // A crash losing the cache would keep a clean (possibly empty) prefix.
  Engine lossy;
  RecoveryReport lost =
      lossy.AttachStorage("db", {}, std::make_shared<MemFileSystem>(
                                        fs->FilesSynced()));
  ASSERT_TRUE(lost.status.ok());
  EXPECT_EQ(lost.replayed_txns, 0u);
  // The third commit crosses the group boundary and syncs all three.
  engine.Exec("def insert(:R, x) : x = 3");
  EXPECT_EQ(fs->FilesSynced()["db/wal-0"].size(),
            fs->FilesAsIs()["db/wal-0"].size());
  // FlushWal syncs an incomplete group on demand.
  engine.Exec("def insert(:R, x) : x = 4");
  EXPECT_LT(fs->FilesSynced()["db/wal-0"].size(),
            fs->FilesAsIs()["db/wal-0"].size());
  ASSERT_TRUE(engine.FlushWal().ok());
  EXPECT_EQ(fs->FilesSynced()["db/wal-0"].size(),
            fs->FilesAsIs()["db/wal-0"].size());
}

TEST(Store, ProgrammaticBulkOpsAreLogged) {
  auto fs = std::make_shared<MemFileSystem>();
  {
    Engine engine;
    ASSERT_TRUE(engine.AttachStorage("db", {}, fs).status.ok());
    engine.Insert("Mix", {Tuple({I(1), S("a")}), Tuple({F(2.5), E("c", "x")})});
    engine.DeleteTuples("Mix", {Tuple({I(1), S("a")})});
  }
  Engine recovered;
  ASSERT_TRUE(recovered.AttachStorage("db", {}, fs).status.ok());
  EXPECT_EQ(recovered.Base("Mix").ToString(),
            Relation::Singleton(Tuple({F(2.5), E("c", "x")})).ToString());
}

TEST(Store, PreAttachDefinesAreLoggedOnAttach) {
  auto fs = std::make_shared<MemFileSystem>();
  {
    Engine engine;
    engine.Define("def two(x) : x = 2");  // before any storage exists
    ASSERT_TRUE(engine.AttachStorage("db", {}, fs).status.ok());
    engine.Exec("def insert(:R, x) : two(x)");
  }
  Engine recovered;
  ASSERT_TRUE(recovered.AttachStorage("db", {}, fs).status.ok());
  EXPECT_EQ(recovered.Base("R").ToString(), "{(2)}");
  EXPECT_EQ(recovered.Query("def output : two").ToString(), "{(2)}");
}

TEST(Store, SecondAttachIsRejected) {
  auto fs = std::make_shared<MemFileSystem>();
  Engine engine;
  ASSERT_TRUE(engine.AttachStorage("db", {}, fs).status.ok());
  RecoveryReport second = engine.AttachStorage("db2", {}, fs);
  EXPECT_FALSE(second.status.ok());
  EXPECT_EQ(second.status.kind(), ErrorKind::kTransaction);
}

TEST(Store, RecoveryReplacesDatabaseUnderDemandTransform) {
  // Satellite regression: demanded-cone memos must not leak across the
  // Database replacement that recovery performs.
  auto fs = std::make_shared<MemFileSystem>();
  {
    Engine writer;
    ASSERT_TRUE(writer.AttachStorage("db", {}, fs).status.ok());
    writer.Define(
        "def tc(x, y) : edge(x, y)\n"
        "def tc(x, z) : exists((y) | edge(x, y) and tc(y, z))");
    writer.Exec("def insert(:edge, x, y) : (x = 1 and y = 2) or "
                "(x = 2 and y = 3)");
  }
  Engine reader;
  reader.options().demand_transform = true;
  // Warm the (per-transaction) demand path on unrelated pre-attach state.
  reader.Define(
      "def tc(x, y) : edge(x, y)\n"
      "def tc(x, z) : exists((y) | edge(x, y) and tc(y, z))");
  reader.Insert("edge", {Tuple({I(7), I(8)})});
  EXPECT_EQ(reader.Query("def output(y) : tc(7, y)").ToString(), "{(8)}");
  // This engine was not fresh, so attach merges model sources; the database
  // itself is REPLACED by the recovered image.
  ASSERT_TRUE(reader.AttachStorage("db", {}, fs).status.ok());
  EXPECT_EQ(reader.Query("def output(y) : tc(1, y)").ToString(),
            "{(2); (3)}");
  EXPECT_EQ(reader.Query("def output(y) : tc(7, y)").size(), 0u)
      << "stale pre-recovery extent leaked through the demand memo";
}

}  // namespace
}  // namespace rel
