// The crash-point sweep: the durability subsystem's central correctness
// argument, run as a test.
//
// A fixed, deterministic workload (transactions over ints/floats/strings/
// entities, model Defines, an aborting constraint violation, checkpoints)
// is executed twice — once against a durable Engine on the in-memory file
// system, once against a plain in-memory "oracle" Engine. The oracle records
// the full database rendering and installed-rule count after every logged
// unit (data transaction or Define), giving the exact sequence of states a
// correct recovery is allowed to return.
//
// A dry run counts every Append the workload issues; the sweep then re-runs
// the workload once per (write index, fault kind) pair — fail-stop write
// failure, torn write, silent bit flip — captures the crash image (both
// with and without the page cache), recovers from it, and checks the
// invariant:
//
//   the recovered state is EXACTLY the oracle's state after some prefix of
//   k committed units, with k == acked for fail-stop faults (no committed
//   transaction lost, no partial transaction visible), and k <= acked for
//   silent bit flips (a corrupted suffix may be lost, never a torn state).
//
// After every recovery the store must still accept a new transaction and
// survive one more recovery — corruption degrades, it does not wedge.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "storage/file.h"
#include "storage/store.h"

namespace rel {
namespace {

using storage::DurabilityOptions;
using storage::FaultPlan;
using storage::MemFileSystem;
using storage::RecoveryReport;

// --- the workload ------------------------------------------------------------

struct Action {
  enum class Kind { kExec, kBulkInsert, kDefine, kCheckpoint, kAbortingExec };
  Kind kind;
  std::string source;  // kExec / kDefine / kAbortingExec
  /// kBulkInsert payload.
  std::string relation;
  std::vector<Tuple> tuples;
  /// True for actions that append to the WAL when they succeed (data
  /// transactions and Defines) — the oracle snapshots state after each.
  bool unit = false;
};

Action Exec(std::string source) {
  return {Action::Kind::kExec, std::move(source), "", {}, true};
}
Action Define(std::string source) {
  return {Action::Kind::kDefine, std::move(source), "", {}, true};
}

std::vector<Action> Workload() {
  Value nan = Value::Float(std::nan(""));
  std::vector<Action> actions;
  actions.push_back(Define(
      "def reach(x, y) : edge(x, y)\n"
      "def reach(x, z) : exists((y) | edge(x, y) and reach(y, z))\n"
      "ic marker_positive() requires forall((x) | marker(x) implies x > 0)"));
  actions.push_back(Exec(
      "def insert(:edge, x, y) : (x = 1 and y = 2) or (x = 2 and y = 3)\n"
      "def insert(:marker, x) : x = 1"));
  // Mixed value kinds, including NaN, via the programmatic path.
  actions.push_back({Action::Kind::kBulkInsert, "", "mix",
                     {Tuple({Value::Float(2.5), Value::String("alpha")}),
                      Tuple({Value::Entity("node", "n-1"), Value::Int(7)}),
                      Tuple({nan, Value::String("")})},
                     true});
  actions.push_back(Exec(
      "def delete(:edge, x, y) : edge(x, y) and x = 1\n"
      "def insert(:marker, x) : x = 2"));
  actions.push_back({Action::Kind::kCheckpoint, "", "", {}, false});
  actions.push_back(Define("ic has_edges() requires count[edge] > 0"));
  actions.push_back(Exec(
      "def insert(:edge, x, y) : x = 10 and y = 11\n"
      "def insert(:marker, x) : x = 3"));
  // Violates marker_positive: must roll back everywhere, durably included.
  actions.push_back(
      {Action::Kind::kAbortingExec, "def insert(:marker, x) : x = 0 - 5"});
  actions.push_back(Exec("def insert(:marker, x) : x = 4"));
  actions.push_back({Action::Kind::kCheckpoint, "", "", {}, false});
  actions.push_back(Exec("def insert(:marker, x) : x = 5"));
  return actions;
}

/// The state fingerprint recovery is judged against: every base relation's
/// rendering plus the installed-rule count (rules/ICs are durable state
/// too). Each workload unit changes the fingerprint, so oracle indices are
/// distinguishable.
struct Fingerprint {
  std::string db;
  size_t rules = 0;
  bool operator==(const Fingerprint& other) const {
    return db == other.db && rules == other.rules;
  }
};

Fingerprint FingerprintOf(const Engine& engine) {
  Fingerprint fp;
  for (const std::string& name : engine.db().Names()) {
    fp.db += name + "=" + engine.db().Get(name).ToString() + "\n";
  }
  fp.rules = engine.installed_rules();
  return fp;
}

/// Runs the workload, tolerating I/O failures from injected faults (a dead
/// device makes every later durable action throw RelError — the workload
/// presses on, as a client with retries would). Returns the number of units
/// the engine ACKNOWLEDGED, i.e. whose call returned normally; if `oracle`
/// is non-null, appends the fingerprint after each acknowledged unit.
size_t RunWorkload(Engine* engine, std::vector<Fingerprint>* oracle) {
  size_t acked = 0;
  for (const Action& action : Workload()) {
    bool ok = true;
    try {
      switch (action.kind) {
        case Action::Kind::kExec:
          engine->Exec(action.source);
          break;
        case Action::Kind::kBulkInsert:
          engine->Insert(action.relation, action.tuples);
          break;
        case Action::Kind::kDefine:
          engine->Define(action.source);
          break;
        case Action::Kind::kCheckpoint:
          engine->Checkpoint();  // failure keeps the previous epoch serving
          break;
        case Action::Kind::kAbortingExec:
          // Normally rejected by the marker_positive constraint. If an
          // earlier injected fault killed the Define that installs it, the
          // insert sails past the (absent) check and dies at the WAL
          // instead — the outer catch handles that; either way nothing may
          // be applied.
          try {
            engine->Exec(action.source);
            ADD_FAILURE() << "negative marker was accepted";
          } catch (const ConstraintViolation&) {
          }
          break;
      }
    } catch (const RelError&) {
      ok = false;  // injected device failure; nothing was acknowledged
    }
    if (ok && action.unit) {
      ++acked;
      if (oracle != nullptr) oracle->push_back(FingerprintOf(*engine));
    }
  }
  return acked;
}

/// Index k such that `fp` equals the oracle state after k units, or -1.
int MatchOracle(const std::vector<Fingerprint>& states, const Fingerprint& fp) {
  for (size_t k = 0; k < states.size(); ++k) {
    if (states[k] == fp) return static_cast<int>(k);
  }
  return -1;
}

/// Recovers a fresh engine from `image`, asserts the recovered state is
/// some oracle prefix, proves the store still accepts and persists a new
/// transaction, and returns the matched prefix index.
int RecoverAndCheck(const std::map<std::string, std::string>& image,
                    const std::vector<Fingerprint>& states,
                    const std::string& context) {
  auto fs = std::make_shared<MemFileSystem>(image);
  Engine engine;
  RecoveryReport report = engine.AttachStorage("db", {}, fs);
  EXPECT_TRUE(report.status.ok()) << context << ": " << report.status.ToString();
  if (!report.status.ok()) return -1;

  Fingerprint fp = FingerprintOf(engine);
  int k = MatchOracle(states, fp);
  EXPECT_GE(k, 0) << context
                  << ": recovered state matches no committed prefix.\n"
                  << "recovered:\n"
                  << fp.db << "rules=" << fp.rules << "\n"
                  << "recovery: " << report.detail;
  // Recovered integrity constraints hold over recovered data.
  engine.CheckConstraints();

  // The store is live after recovery: one more commit, one more recovery.
  engine.Exec("def insert(:marker, x) : x = 99");
  Engine again;
  RecoveryReport second = again.AttachStorage("db", {}, fs);
  EXPECT_TRUE(second.status.ok()) << context;
  EXPECT_TRUE(again.Base("marker").Contains(Tuple({Value::Int(99)})))
      << context << ": post-recovery commit lost";
  return k;
}

// --- the sweep ---------------------------------------------------------------

class CrashRecoverySweep : public ::testing::Test {
 protected:
  void SetUp() override {
    // The oracle: the same workload on a purely in-memory engine.
    Engine oracle;
    states_.push_back(FingerprintOf(oracle));  // k = 0: stdlib only
    size_t units = RunWorkload(&oracle, &states_);
    ASSERT_EQ(units + 1, states_.size());

    // Dry run on a fault-free durable engine: count the workload's writes
    // and pin that the no-fault path recovers the full final state.
    auto fs = std::make_shared<MemFileSystem>();
    Engine durable;
    ASSERT_TRUE(durable.AttachStorage("db", {}, fs).status.ok());
    size_t acked = RunWorkload(&durable, nullptr);
    ASSERT_EQ(acked, units);
    ASSERT_EQ(FingerprintOf(durable), states_.back());
    total_writes_ = fs->writes();
    ASSERT_GT(total_writes_, 20u) << "workload too small to be interesting";

    // Sanity: the fingerprint sequence is strictly distinguishing, so a
    // MatchOracle hit identifies a unique prefix.
    for (size_t a = 0; a < states_.size(); ++a) {
      for (size_t b = a + 1; b < states_.size(); ++b) {
        ASSERT_FALSE(states_[a] == states_[b]) << a << " vs " << b;
      }
    }
  }

  /// Runs the workload with `plan` armed, then recovers from the crash
  /// images. Returns the acked-unit count of the faulted run.
  void SweepPoint(FaultPlan plan, const std::string& context,
                  bool exact_prefix) {
    auto fs = std::make_shared<MemFileSystem>();
    Engine engine;
    ASSERT_TRUE(engine.AttachStorage("db", {}, fs).status.ok());
    fs->SetFault(plan);
    size_t acked = RunWorkload(&engine, nullptr);
    ASSERT_TRUE(fs->fault_fired()) << context;
    fs->SetFault({});  // the crash images are read without faults

    // Crash now: sweep both "OS flushed everything" and "page cache lost".
    // With fsync-on-commit, every acknowledged unit was synced, so both
    // images must satisfy the invariant.
    for (bool synced_only : {false, true}) {
      std::string where = context + (synced_only ? " [synced]" : " [as-is]");
      int k = RecoverAndCheck(
          synced_only ? fs->FilesSynced() : fs->FilesAsIs(), states_, where);
      if (k < 0) continue;  // already failed above with context
      if (exact_prefix) {
        EXPECT_EQ(static_cast<size_t>(k), acked)
            << where << ": fail-stop fault must lose nothing acknowledged "
            << "and expose nothing unacknowledged";
      } else {
        EXPECT_LE(static_cast<size_t>(k), acked)
            << where << ": recovery invented state beyond the ack horizon";
      }
    }
  }

  std::vector<Fingerprint> states_;
  uint64_t total_writes_ = 0;
};

TEST_F(CrashRecoverySweep, FailedWriteAtEveryPoint) {
  for (uint64_t i = 1; i <= total_writes_; ++i) {
    FaultPlan plan;
    plan.kind = FaultPlan::Kind::kFailWrite;
    plan.at_write = i;
    SweepPoint(plan, "fail-write at " + std::to_string(i),
               /*exact_prefix=*/true);
  }
}

TEST_F(CrashRecoverySweep, TornWriteAtEveryPoint) {
  for (uint64_t i = 1; i <= total_writes_; ++i) {
    FaultPlan plan;
    plan.kind = FaultPlan::Kind::kTornWrite;
    plan.at_write = i;
    plan.offset = i % 3;  // 0 = half the write, else keep i%3 bytes
    SweepPoint(plan, "torn-write at " + std::to_string(i),
               /*exact_prefix=*/true);
  }
}

TEST_F(CrashRecoverySweep, BitFlipAtEveryPoint) {
  for (uint64_t i = 1; i <= total_writes_; ++i) {
    FaultPlan plan;
    plan.kind = FaultPlan::Kind::kBitFlip;
    plan.at_write = i;
    plan.offset = i * 7;  // wander across byte positions (mod write size)
    // Silent corruption may cost a committed suffix, never consistency:
    // the recovered state is still an exact prefix, k <= acked.
    SweepPoint(plan, "bit-flip at " + std::to_string(i),
               /*exact_prefix=*/false);
  }
}

TEST_F(CrashRecoverySweep, GroupCommitCrashKeepsAPrefix) {
  // With group commit, acknowledged-but-unsynced transactions may be lost
  // when the page cache is — but what survives must still be an exact
  // oracle prefix, and the as-is image must keep everything acknowledged.
  DurabilityOptions opts;
  opts.group_commit = 4;
  auto fs = std::make_shared<MemFileSystem>();
  Engine engine;
  ASSERT_TRUE(engine.AttachStorage("db", opts, fs).status.ok());
  size_t acked = RunWorkload(&engine, nullptr);

  int k_asis = RecoverAndCheck(fs->FilesAsIs(), states_, "group-commit as-is");
  EXPECT_EQ(static_cast<size_t>(k_asis), acked);
  int k_synced =
      RecoverAndCheck(fs->FilesSynced(), states_, "group-commit synced");
  ASSERT_GE(k_synced, 0);
  EXPECT_LE(static_cast<size_t>(k_synced), acked);
}

TEST_F(CrashRecoverySweep, RepeatedCrashesConverge) {
  // Crash, recover, crash again mid-recovery-era commits: iterated partial
  // progress must never regress below what the previous recovery restored.
  auto fs = std::make_shared<MemFileSystem>();
  {
    Engine engine;
    ASSERT_TRUE(engine.AttachStorage("db", {}, fs).status.ok());
    FaultPlan plan;
    plan.kind = FaultPlan::Kind::kTornWrite;
    plan.at_write = 9;
    fs->SetFault(plan);
    RunWorkload(&engine, nullptr);
    fs->SetFault({});
  }
  int prev = -1;
  std::map<std::string, std::string> image = fs->FilesAsIs();
  for (int round = 0; round < 3; ++round) {
    auto crashed = std::make_shared<MemFileSystem>(image);
    Engine engine;
    RecoveryReport report = engine.AttachStorage("db", {}, crashed);
    ASSERT_TRUE(report.status.ok());
    int k = MatchOracle(states_, FingerprintOf(engine));
    ASSERT_GE(k, 0) << "round " << round;
    EXPECT_GE(k, prev) << "recovery lost ground on round " << round;
    prev = k;
    image = crashed->FilesAsIs();
  }
}

}  // namespace
}  // namespace rel
