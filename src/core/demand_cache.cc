#include "core/demand_cache.h"

#include <utility>

#include "datalog/magic.h"

namespace rel {

void DemandCache::Maintain(const DatabaseDelta& delta,
                           const datalog::EvalOptions& opts) {
  // Two phases: decide and extract first, re-insert after. Re-keyed nodes
  // sort after every from_version node (db_version leads the key order), so
  // inserting them mid-iteration would revisit them as stale and drop them.
  std::vector<std::map<Key, Entry>::node_type> keep;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.db_version != delta.from_version ||
        it->second.payload == nullptr) {
      it = entries_.erase(it);
      continue;
    }
    MaintainResult result = MaintainExtents(it->second.payload.get(), delta,
                                            opts, &maintain_stats_);
    if (result == MaintainResult::kUnsupported) {
      it = entries_.erase(it);
      continue;
    }
    if (result == MaintainResult::kMaintained) {
      // The cone is a pure function of the maintained extents: re-filter.
      Entry& entry = it->second;
      auto goal = entry.payload->extents.find(entry.goal_pred);
      entry.cone = goal == entry.payload->extents.end()
                       ? Relation()
                       : datalog::FilterByPattern(goal->second, entry.pattern);
      ++maintained_;
    } else {
      ++restamped_;
    }
    auto next = std::next(it);
    auto node = entries_.extract(it);
    node.key().db_version = delta.to_version;
    keep.push_back(std::move(node));
    it = next;
  }
  for (auto& node : keep) entries_.insert(std::move(node));
}

void DemandCache::ClearAffected(const std::set<std::string>& names) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    bool affected = it->second.payload == nullptr;
    if (!affected) {
      for (const std::string& n : it->second.payload->closure) {
        if (names.count(n)) {
          affected = true;
          break;
        }
      }
    }
    it = affected ? entries_.erase(it) : std::next(it);
  }
}

}  // namespace rel
