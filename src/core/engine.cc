#include "core/engine.h"

#include <algorithm>
#include <exception>
#include <utility>

#include "base/error.h"
#include "base/thread_pool.h"
#include "core/parser.h"

namespace rel {

namespace {

/// The synthetic rule whose solutions are the violating bindings of
/// `ic name(params) requires F`: the parameter bindings for which F fails
/// (with no parameters the constraint is simply the truth of F).
std::shared_ptr<Def> ViolationRule(const Def& ic) {
  auto rule = std::make_shared<Def>();
  rule->name = "$violations_" + ic.name;
  rule->params = ic.params;
  auto neg = MakeExpr(ExprKind::kNot, ic.line, 0);
  neg->children = {ic.body};
  rule->body = neg;
  rule->square_head = false;
  return rule;
}

/// Formats a non-empty violation set for the ConstraintViolation message.
std::string ViolationDetail(const Relation& violations) {
  return violations.size() <= 10
             ? violations.ToString()
             : std::to_string(violations.size()) + " violating bindings";
}

/// How many commit deltas each snapshot carries. Sessions more than this
/// many commits behind fall back to dropping their caches on re-pin.
constexpr size_t kRecentDeltaWindow = 8;

/// EvalOptions for incremental cache maintenance, mirroring the lowering
/// path's mapping (LoweredEvalOptions in interp.cc): same thread count and
/// seed so maintained extents are byte-identical to recomputation.
datalog::EvalOptions MaintainEvalOptions(const InterpOptions& options) {
  datalog::EvalOptions eval_options;
  eval_options.num_threads = options.num_threads;
  eval_options.max_iterations = std::max(options.max_iterations, 1);
  eval_options.plan_order_seed = options.plan_order_seed;
  return eval_options;
}

/// insert/delete control tuples are (:RName, v1, ..., vk).
bool SplitControlTuple(const Tuple& t, std::string* name, Tuple* payload) {
  if (t.arity() == 0) return false;
  const Value& head = t[0];
  if (!head.is_entity() || head.EntityConcept() != "rel") return false;
  *name = head.EntityId();
  *payload = t.Slice(1, t.arity());
  return true;
}

}  // namespace

Engine::Engine() : Engine(/*load_stdlib=*/true) {}

Engine::Engine(bool load_stdlib)
    : rules_(std::make_shared<std::vector<std::shared_ptr<Def>>>()),
      rules_analysis_(std::make_shared<const ProgramAnalysis>(*rules_)) {
  std::lock_guard<std::mutex> writer(writer_mu_);
  if (load_stdlib) DefineLocked(StdlibSource(), /*internal=*/true);
  Publish();
}

Engine::~Engine() = default;

// --- sessions & snapshots ---

std::unique_ptr<Session> Engine::OpenSession() {
  return std::unique_ptr<Session>(new Session(this, SnapshotNow(), options_));
}

std::shared_ptr<const Snapshot> Engine::SnapshotNow() const {
  std::lock_guard<std::mutex> lock(head_mu_);
  return head_;
}

std::shared_ptr<const Snapshot> Engine::Publish() {
  // Freeze before copying: the snapshot shares the working copy's relation
  // objects, so forcing the lazy sorted views here makes every subsequent
  // const read on the published side write-free.
  db_.FreezeViews();
  auto snap = std::make_shared<Snapshot>();
  snap->db = std::make_shared<const Database>(db_);
  snap->rules = rules_;
  snap->rules_analysis = rules_analysis_;
  snap->rules_version = rules_version_;
  snap->txn_id = last_txn_id_;
  snap->db_epoch = db_epoch_;
  snap->recent_deltas.assign(recent_deltas_.begin(), recent_deltas_.end());
  std::shared_ptr<const Snapshot> out = std::move(snap);
  std::lock_guard<std::mutex> lock(head_mu_);
  head_ = out;
  return out;
}

void Engine::RollbackToHead() {
  std::shared_ptr<const Snapshot> head;
  {
    std::lock_guard<std::mutex> lock(head_mu_);
    head = head_;
  }
  // A copy-on-write re-copy: O(#relations) pointer copies, no tuple data.
  db_ = *head->db;
  // Discard writer-cache entries born of the aborted transaction. Maintain()
  // re-keys every surviving entry to the transaction's post-version, so
  // everything above the head version belongs to the abort; entries at the
  // head version describe the state we just rolled back to and stay.
  writer_cache_.DropAbove(head->version());
}

// --- model installation ---

void Engine::Define(const std::string& source) {
  DefineTxn(source, /*internal=*/false, nullptr);
}

void Engine::DefineTxn(const std::string& source, bool internal,
                       std::shared_ptr<const Snapshot>* published) {
  std::lock_guard<std::mutex> writer(writer_mu_);
  DefineLocked(source, internal);
  std::shared_ptr<const Snapshot> snap = Publish();
  if (published != nullptr) *published = std::move(snap);
}

void Engine::DefineLocked(const std::string& source, bool internal) {
  std::vector<std::shared_ptr<Def>> defs = ParseToSharedDefs(source);
  // Write-ahead: a model change that cannot be made durable is not made.
  if (!internal && store_ != nullptr) {
    Status s = store_->LogDefine(source);
    if (!s.ok()) {
      throw RelError(s.kind(),
                     "define not installed (WAL append failed): " +
                         s.message());
    }
  }
  // The published vector is immutable (sessions hold it); extend a copy.
  auto next = std::make_shared<std::vector<std::shared_ptr<Def>>>(*rules_);
  next->insert(next->end(), defs.begin(), defs.end());
  rules_ = std::move(next);
  ++rules_version_;
  if (!internal) model_sources_.push_back(source);
  // New rules can extend relations cached extents were computed from — drop
  // exactly the components that can read one of the new names. New
  // constraints see pre-existing data, so the next commit must run a full
  // integrity pass before delta specialization resumes.
  std::set<std::string> defined;
  for (const auto& def : defs) defined.insert(def->name);
  writer_cache_.ClearAffected(defined);
  ic_full_pass_needed_ = true;
  // Re-analyze the (immutable) rule set once per Define; every transaction
  // and query extends this analysis with its own defs instead of paying a
  // full prelude analysis per Interp.
  rules_analysis_ = std::make_shared<const ProgramAnalysis>(*rules_);
}

// --- the single-session facade ---

Session& Engine::FacadeSession() {
  if (facade_ == nullptr) {
    facade_ = std::unique_ptr<Session>(
        new Session(this, SnapshotNow(), options_));
  }
  return *facade_;
}

Relation Engine::Query(const std::string& source) {
  Session& session = FacadeSession();
  session.options_ = options_;
  session.Refresh();
  Relation out = session.Query(source);
  lowering_stats_ = session.lowering_stats_;
  return out;
}

Relation Engine::Eval(const std::string& expression) {
  return Query("def output : " + expression);
}

TxnResult Engine::Exec(const std::string& source) {
  Session& session = FacadeSession();
  session.options_ = options_;
  TxnResult result = session.Exec(source);
  lowering_stats_ = session.lowering_stats_;
  return result;
}

void Engine::Insert(const std::string& name, const std::vector<Tuple>& tuples) {
  ApplyBulk(name, tuples, /*is_insert=*/true, nullptr);
}

void Engine::DeleteTuples(const std::string& name,
                          const std::vector<Tuple>& tuples) {
  ApplyBulk(name, tuples, /*is_insert=*/false, nullptr);
}

// --- the commit pipeline ---

TxnResult Engine::ExecTxn(const std::string& source, const InterpOptions& opts,
                          LoweringStats* stats,
                          std::shared_ptr<const Snapshot>* published) {
  std::lock_guard<std::mutex> writer(writer_mu_);

  std::vector<std::shared_ptr<Def>> combined = *rules_;
  for (auto& def : ParseToSharedDefs(source)) combined.push_back(std::move(def));

  // Writer-side Interps never use the session's demand cache: an aborted
  // transaction's working database versions can be re-issued by a later
  // commit with different content, so only published snapshot versions may
  // become cache keys (see core/demand_cache.h). The writer's own extent
  // cache is safe because RollbackToHead() drops every above-head entry.
  InterpOptions writer_opts = opts;
  writer_opts.demand_cache = nullptr;
  writer_opts.shared_defs = rules_->size();
  writer_opts.extent_cache = &writer_cache_;
  writer_opts.shared_analysis = rules_analysis_.get();

  Interp interp(&db_, combined, writer_opts);
  TxnResult result;
  if (interp.HasDefs("output")) {
    result.output = interp.EvalInstance("output", 0, {});
  }

  // Compute the updates against the pre-state...
  Relation inserts, deletes;
  if (interp.HasDefs("insert")) inserts = interp.EvalInstance("insert", 0, {});
  if (interp.HasDefs("delete")) deletes = interp.EvalInstance("delete", 0, {});
  if (stats != nullptr) *stats = interp.lowering_stats();

  if (inserts.empty() && deletes.empty()) {
    // Still check constraints: the transaction's ic rules apply to the
    // current state. Nothing changed, so the delta is empty — persistent
    // constraints validated for the head carry over; only the
    // transaction's own ic rules run. Nothing is published — the caller
    // re-pins the current head.
    const std::set<std::string> no_changes;
    bool full_pass = CheckConstraintsWith(&interp, writer_opts, &no_changes,
                                          writer_opts.shared_defs);
    if (full_pass) ic_full_pass_needed_ = false;
    result.snapshot_version = db_.version();
    if (published != nullptr) *published = SnapshotNow();
    return result;
  }

  // ... then apply them (deletes first, as both were computed against the
  // same snapshot) and validate the post-state. Mutations copy-on-write the
  // working copy only; pinned snapshots are untouched. The applied updates
  // are collected as WAL ops so the transaction can be logged after it
  // passes constraint checking.
  std::vector<storage::WalRecord> ops;
  auto delta = std::make_shared<DatabaseDelta>();
  delta->from_version = db_.version();
  delta->db_epoch = db_epoch_;
  for (const Tuple& t : deletes.SortedTuples()) {
    std::string name;
    Tuple payload;
    if (!SplitControlTuple(t, &name, &payload)) {
      RollbackToHead();
      throw RelError(ErrorKind::kType,
                     "delete tuples must start with a :RelationName");
    }
    if (db_.Delete(name, payload)) delta->RecordDelete(name, payload);
    if (store_ != nullptr) {
      ops.push_back(storage::WalRecord::Retract(name, payload));
    }
    ++result.deleted;
  }
  for (const Tuple& t : inserts.SortedTuples()) {
    std::string name;
    Tuple payload;
    if (!SplitControlTuple(t, &name, &payload)) {
      RollbackToHead();
      throw RelError(ErrorKind::kType,
                     "insert tuples must start with a :RelationName");
    }
    if (db_.Insert(name, payload)) delta->RecordInsert(name, payload);
    if (store_ != nullptr) {
      ops.push_back(storage::WalRecord::Fact(name, payload));
    }
    ++result.inserted;
  }
  delta->to_version = db_.version();

  // The maintain step: carry cached lowered-component fixpoints across the
  // commit instead of recomputing them — the post-state constraint check
  // (and every later transaction) resumes semi-naive evaluation from the
  // delta (insert) or runs DRed (delete); see core/extent_cache.h.
  writer_cache_.Maintain(*delta, MaintainEvalOptions(writer_opts));

  // The effective net change, for Decker-style constraint specialization:
  // only constraints whose transitive read set intersects these relations
  // (or the transaction's own defs) can have changed their verdict.
  std::set<std::string> net_changed;
  for (const auto& [name, change] : delta->changes) {
    if (!change.inserted.empty() || !change.deleted.empty()) {
      net_changed.insert(name);
    }
  }

  bool full_pass = false;
  try {
    Interp post(&db_, combined, writer_opts);
    full_pass = CheckConstraintsWith(&post, writer_opts, &net_changed,
                                     writer_opts.shared_defs);
  } catch (...) {
    RollbackToHead();  // abort: roll back the transaction
    throw;
  }

  // Durability point: the transaction is acknowledged only after its WAL
  // records (commit included) are appended — and, per the fsync policy,
  // synced. A failed append aborts exactly like a constraint violation.
  if (store_ != nullptr && !ops.empty()) {
    Status s = store_->LogTransaction(ops, &result.txn_id);
    if (!s.ok()) {
      RollbackToHead();
      throw RelError(s.kind(), "transaction rolled back (WAL append failed): " +
                                   s.message());
    }
  }
  if (result.txn_id != 0) last_txn_id_ = result.txn_id;

  // Publish the commit's delta alongside the snapshot so sessions can
  // maintain their demand/extent caches on re-pin instead of dropping them.
  if (delta->to_version != delta->from_version || !delta->empty()) {
    recent_deltas_.push_back(std::move(delta));
    while (recent_deltas_.size() > kRecentDeltaWindow) {
      recent_deltas_.pop_front();
    }
  }

  // The ack: atomically publish the post-state. From this point every new
  // pin (and every session that adopts `published`) sees the commit.
  std::shared_ptr<const Snapshot> snap = Publish();
  result.snapshot_version = snap->version();
  if (published != nullptr) *published = std::move(snap);
  if (full_pass) ic_full_pass_needed_ = false;
  return result;
}

void Engine::ApplyBulk(const std::string& name,
                       const std::vector<Tuple>& tuples, bool is_insert,
                       std::shared_ptr<const Snapshot>* published) {
  std::lock_guard<std::mutex> writer(writer_mu_);
  if (store_ != nullptr && !tuples.empty()) {
    std::vector<storage::WalRecord> ops;
    ops.reserve(tuples.size());
    for (const Tuple& t : tuples) {
      ops.push_back(is_insert ? storage::WalRecord::Fact(name, t)
                              : storage::WalRecord::Retract(name, t));
    }
    uint64_t txn_id = 0;
    Status s = store_->LogTransaction(ops, &txn_id);
    if (!s.ok()) {
      throw RelError(s.kind(),
                     std::string(is_insert ? "bulk insert" : "bulk delete") +
                         " not applied (WAL append failed): " + s.message());
    }
    last_txn_id_ = txn_id;
  }
  auto delta = std::make_shared<DatabaseDelta>();
  delta->from_version = db_.version();
  delta->db_epoch = db_epoch_;
  for (const Tuple& t : tuples) {
    if (is_insert) {
      if (db_.Insert(name, t)) delta->RecordInsert(name, t);
    } else {
      if (db_.Delete(name, t)) delta->RecordDelete(name, t);
    }
  }
  delta->to_version = db_.version();
  writer_cache_.Maintain(*delta, MaintainEvalOptions(options_));
  if (delta->to_version != delta->from_version || !delta->empty()) {
    recent_deltas_.push_back(std::move(delta));
    while (recent_deltas_.size() > kRecentDeltaWindow) {
      recent_deltas_.pop_front();
    }
  }
  // Bulk loads skip constraint checking by design, so the resulting head
  // has no verified base for delta-specialized checks.
  ic_full_pass_needed_ = true;
  std::shared_ptr<const Snapshot> snap = Publish();
  if (published != nullptr) *published = std::move(snap);
}

// --- integrity constraints ---

void Engine::CheckConstraints() {
  std::shared_ptr<const Snapshot> snap = SnapshotNow();
  InterpOptions opts = options_;
  opts.demand_cache = nullptr;
  opts.extent_cache = nullptr;
  opts.shared_defs = 0;
  opts.shared_analysis = nullptr;
  Interp interp(snap->db.get(), *snap->rules, opts);
  CheckConstraintsWith(&interp, opts);
}

bool Engine::CheckConstraintsWith(Interp* interp, const InterpOptions& opts,
                                  const std::set<std::string>* changed,
                                  size_t shared_defs) {
  const std::vector<std::shared_ptr<Def>>& ics = interp->ics();
  if (ics.empty()) return true;

  // Decker-style delta specialization (callers passing `changed` hold
  // writer_mu_, which also guards ic_full_pass_needed_ and ic_stats_): a
  // constraint is checked iff it is transaction-local, or its transitive
  // read set reaches a changed relation or a transaction-local def. All
  // other persistent constraints kept their pre-state verdict — sound only
  // when the pre-state itself passed a full check since the last rule
  // change or bulk load, hence the ic_full_pass_needed_ gate.
  std::vector<size_t> to_check;
  to_check.reserve(ics.size());
  const bool prune = changed != nullptr && !ic_full_pass_needed_;
  if (!prune) {
    for (size_t i = 0; i < ics.size(); ++i) to_check.push_back(i);
  } else {
    const std::vector<std::shared_ptr<Def>>& defs = interp->defs();
    std::set<const Def*> persistent;
    for (size_t i = 0; i < shared_defs && i < defs.size(); ++i) {
      persistent.insert(defs[i].get());
    }
    std::set<std::string> txn_local;
    for (size_t i = shared_defs; i < defs.size(); ++i) {
      txn_local.insert(defs[i]->name);
    }
    for (size_t i = 0; i < ics.size(); ++i) {
      const Def& ic = *ics[i];
      bool must_check = persistent.count(&ic) == 0;
      if (!must_check) {
        for (const std::string& root : interp->analysis().DefReferences(ic)) {
          for (const std::string& name : interp->ReferencesClosure(root)) {
            if (changed->count(name) != 0 || txn_local.count(name) != 0) {
              must_check = true;
              break;
            }
          }
          if (must_check) break;
        }
      }
      if (must_check) {
        to_check.push_back(i);
      } else {
        ++ic_stats_.skipped;
      }
    }
  }
  if (changed != nullptr) ic_stats_.checked += to_check.size();
  const bool full_pass = to_check.size() == ics.size();
  if (to_check.empty()) return full_pass;

  int num_threads = opts.num_threads == 0 ? ThreadPool::HardwareThreads()
                                          : opts.num_threads;
  num_threads = std::min<int>(num_threads, static_cast<int>(to_check.size()));

  if (num_threads <= 1) {
    // The solver caches compiled rules by Def address; keep every synthetic
    // violation rule alive until the interp is done with them, or a freed
    // address could be reused by the next rule and hit a stale cache entry.
    std::vector<std::shared_ptr<Def>> keep_alive;
    for (size_t i : to_check) {
      const auto& ic = ics[i];
      keep_alive.push_back(ViolationRule(*ic));
      Relation violations =
          interp->solver().EvalRule(*keep_alive.back(), {}, nullptr);
      if (!violations.empty()) {
        throw ConstraintViolation(ic->name,
                                  "violated by " + ViolationDetail(violations));
      }
    }
    return full_pass;
  }

  // Parallel: constraints are independent reads of the same database, so
  // each one gets its own task and its own Interp (the solver's memo tables
  // are single-threaded). Two preparations make the shared reads pure:
  // the Interner is internally synchronized, and the base relations' lazy
  // sorted views are forced here, before the first task runs — at the
  // arena level, which caches the views without materializing the
  // relation-wide tuple copy Relation::SortedTuples() would build.
  for (const std::string& name : interp->db().Names()) {
    const Relation& rel = interp->db().Get(name);
    for (size_t arity : rel.Arities()) {
      rel.ArenaOfArity(arity)->SortedTuples();
    }
  }

  struct Outcome {
    bool violated = false;
    std::string detail;
    std::exception_ptr error;
  };
  std::vector<Outcome> outcomes(ics.size());
  {
    ThreadPool pool(num_threads);
    ThreadPool::TaskGroup group(&pool);
    // One task per worker over a strided constraint subset, not one per
    // constraint: each Interp construction re-runs analysis over the whole
    // def set, so build num_threads of them, not to_check.size().
    for (int worker = 0; worker < num_threads; ++worker) {
      group.Run([interp, worker, num_threads, opts, &outcomes, &to_check] {
        InterpOptions sequential = opts;
        sequential.num_threads = 1;
        // Worker Interps never share the writer's extent cache: it is
        // externally synchronized by writer_mu_, which these tasks do not
        // hold.
        sequential.extent_cache = nullptr;
        Interp local(&interp->db(), interp->defs(), sequential);
        // Same Def-address-reuse hazard as the sequential path: the solver
        // caches compiled rules by address, so every synthetic rule this
        // Interp saw must stay alive as long as the Interp does.
        std::vector<std::shared_ptr<Def>> keep_alive;
        for (size_t k = static_cast<size_t>(worker); k < to_check.size();
             k += static_cast<size_t>(num_threads)) {
          size_t i = to_check[k];
          try {
            keep_alive.push_back(ViolationRule(*interp->ics()[i]));
            Relation violations =
                local.solver().EvalRule(*keep_alive.back(), {}, nullptr);
            if (!violations.empty()) {
              outcomes[i].violated = true;
              outcomes[i].detail = ViolationDetail(violations);
            }
          } catch (...) {
            outcomes[i].error = std::current_exception();
          }
        }
      });
    }
    group.Wait();
  }
  // Deterministic report: the first failure in declaration order, exactly
  // what the sequential path would have thrown.
  for (size_t i : to_check) {
    if (outcomes[i].error) std::rethrow_exception(outcomes[i].error);
    if (outcomes[i].violated) {
      throw ConstraintViolation(ics[i]->name,
                                "violated by " + outcomes[i].detail);
    }
  }
  return full_pass;
}

// --- reads over the newest snapshot ---

const Database& Engine::db() const {
  std::lock_guard<std::mutex> lock(head_mu_);
  return *head_->db;
}

const Relation& Engine::Base(const std::string& name) const {
  return db().Get(name);
}

size_t Engine::installed_rules() const { return SnapshotNow()->rules->size(); }

// --- durability ---

storage::RecoveryReport Engine::AttachStorage(
    const std::string& dir, storage::DurabilityOptions opts,
    std::shared_ptr<storage::FileSystem> fs) {
  std::lock_guard<std::mutex> writer(writer_mu_);
  storage::RecoveryReport report;
  if (store_ != nullptr) {
    report.status =
        Status::Error(ErrorKind::kTransaction, "storage already attached");
    return report;
  }
  if (fs == nullptr) fs = std::make_shared<storage::PosixFileSystem>();
  auto store = std::make_unique<storage::Store>(std::move(fs), dir, opts);
  storage::SnapshotData data;
  report = store->Recover(&data);
  if (!report.status.ok()) return report;

  // Install the recovered model (snapshot sources + WAL define records),
  // then adopt the recovered database. Rules Define'd on this engine
  // before attaching stay installed; they are logged to the store below so
  // the next snapshot captures them.
  std::vector<std::string> pre_attach = std::move(model_sources_);
  model_sources_.clear();
  for (const std::string& source : data.model_sources) {
    DefineLocked(source, /*internal=*/true);
    model_sources_.push_back(source);
  }
  for (const std::string& source : pre_attach) {
    model_sources_.push_back(source);
  }
  db_ = std::move(data.db);
  // The recovered database starts a fresh version timeline: no delta ever
  // leads into it, and no cached extent or constraint verdict survives it.
  ++db_epoch_;
  recent_deltas_.clear();
  writer_cache_.Clear();
  ic_full_pass_needed_ = true;
  store_ = std::move(store);
  Status log_status = Status::Ok();
  for (const std::string& source : pre_attach) {
    Status s = store_->LogDefine(source);
    if (!s.ok()) {
      store_.reset();
      log_status = s;
      break;
    }
  }
  // The recovered state replaces the head even if re-logging failed (the
  // engine is then detached and in-memory, matching the report).
  Publish();
  if (!log_status.ok()) report.status = log_status;
  return report;
}

Status Engine::Checkpoint() {
  std::lock_guard<std::mutex> writer(writer_mu_);
  if (store_ == nullptr) {
    return Status::Error(ErrorKind::kTransaction, "no storage attached");
  }
  return store_->Checkpoint(db_, model_sources_);
}

Status Engine::FlushWal() {
  std::lock_guard<std::mutex> writer(writer_mu_);
  if (store_ == nullptr) return Status::Ok();
  return store_->Flush();
}

}  // namespace rel
