#include "core/engine.h"

#include <algorithm>
#include <exception>

#include "base/error.h"
#include "base/thread_pool.h"
#include "core/parser.h"

namespace rel {

namespace {

/// The synthetic rule whose solutions are the violating bindings of
/// `ic name(params) requires F`: the parameter bindings for which F fails
/// (with no parameters the constraint is simply the truth of F).
std::shared_ptr<Def> ViolationRule(const Def& ic) {
  auto rule = std::make_shared<Def>();
  rule->name = "$violations_" + ic.name;
  rule->params = ic.params;
  auto neg = MakeExpr(ExprKind::kNot, ic.line, 0);
  neg->children = {ic.body};
  rule->body = neg;
  rule->square_head = false;
  return rule;
}

/// Formats a non-empty violation set for the ConstraintViolation message.
std::string ViolationDetail(const Relation& violations) {
  return violations.size() <= 10
             ? violations.ToString()
             : std::to_string(violations.size()) + " violating bindings";
}

std::vector<std::shared_ptr<Def>> ParseToDefs(const std::string& source) {
  Program program = ParseProgram(source);
  std::vector<std::shared_ptr<Def>> out;
  out.reserve(program.defs.size());
  for (Def& def : program.defs) {
    out.push_back(std::make_shared<Def>(std::move(def)));
  }
  return out;
}

/// insert/delete control tuples are (:RName, v1, ..., vk).
bool SplitControlTuple(const Tuple& t, std::string* name, Tuple* payload) {
  if (t.arity() == 0) return false;
  const Value& head = t[0];
  if (!head.is_entity() || head.EntityConcept() != "rel") return false;
  *name = head.EntityId();
  *payload = t.Slice(1, t.arity());
  return true;
}

}  // namespace

Engine::Engine() : Engine(/*load_stdlib=*/true) {}

Engine::Engine(bool load_stdlib) {
  if (load_stdlib) DefineImpl(StdlibSource(), /*internal=*/true);
}

void Engine::Define(const std::string& source) {
  DefineImpl(source, /*internal=*/false);
}

void Engine::DefineImpl(const std::string& source, bool internal) {
  std::vector<std::shared_ptr<Def>> defs = ParseToDefs(source);
  // Write-ahead: a model change that cannot be made durable is not made.
  if (!internal && store_ != nullptr) {
    Status s = store_->LogDefine(source);
    if (!s.ok()) {
      throw RelError(s.kind(),
                     "define not installed (WAL append failed): " +
                         s.message());
    }
  }
  persistent_.insert(persistent_.end(), defs.begin(), defs.end());
  if (!internal) model_sources_.push_back(source);
}

Relation Engine::Query(const std::string& source) {
  return Run(source, /*apply=*/false).output;
}

Relation Engine::Eval(const std::string& expression) {
  return Query("def output : " + expression);
}

TxnResult Engine::Exec(const std::string& source) {
  return Run(source, /*apply=*/true);
}

TxnResult Engine::Run(const std::string& source, bool apply) {
  std::vector<std::shared_ptr<Def>> combined = persistent_;
  for (auto& def : ParseToDefs(source)) combined.push_back(std::move(def));

  Interp interp(&db_, combined, options_);
  TxnResult result;
  if (interp.HasDefs("output")) {
    result.output = interp.EvalInstance("output", 0, {});
  }
  lowering_stats_ = interp.lowering_stats();
  if (!apply) return result;

  // Compute the updates against the pre-state...
  Relation inserts, deletes;
  if (interp.HasDefs("insert")) inserts = interp.EvalInstance("insert", 0, {});
  if (interp.HasDefs("delete")) deletes = interp.EvalInstance("delete", 0, {});
  lowering_stats_ = interp.lowering_stats();

  if (inserts.empty() && deletes.empty()) {
    // Still check constraints: the transaction's ic rules apply to the
    // current state.
    CheckConstraintsWith(&interp);
    return result;
  }

  // ... then apply them (deletes first, as both were computed against the
  // same snapshot) and validate the post-state. The applied updates are
  // collected as WAL ops so the transaction can be logged after it passes
  // constraint checking.
  Database backup = db_;
  std::vector<storage::WalRecord> ops;
  for (const Tuple& t : deletes.SortedTuples()) {
    std::string name;
    Tuple payload;
    if (!SplitControlTuple(t, &name, &payload)) {
      db_ = std::move(backup);
      throw RelError(ErrorKind::kType,
                     "delete tuples must start with a :RelationName");
    }
    db_.Delete(name, payload);
    if (store_ != nullptr) ops.push_back(storage::WalRecord::Retract(name, payload));
    ++result.deleted;
  }
  for (const Tuple& t : inserts.SortedTuples()) {
    std::string name;
    Tuple payload;
    if (!SplitControlTuple(t, &name, &payload)) {
      db_ = std::move(backup);
      throw RelError(ErrorKind::kType,
                     "insert tuples must start with a :RelationName");
    }
    db_.Insert(name, payload);
    if (store_ != nullptr) ops.push_back(storage::WalRecord::Fact(name, payload));
    ++result.inserted;
  }

  try {
    Interp post(&db_, combined, options_);
    CheckConstraintsWith(&post);
  } catch (...) {
    db_ = std::move(backup);  // abort: roll back the transaction
    throw;
  }

  // Durability point: the transaction is acknowledged only after its WAL
  // records (commit included) are appended — and, per the fsync policy,
  // synced. A failed append aborts exactly like a constraint violation.
  if (store_ != nullptr && !ops.empty()) {
    Status s = store_->LogTransaction(ops, &result.txn_id);
    if (!s.ok()) {
      db_ = std::move(backup);
      throw RelError(s.kind(), "transaction rolled back (WAL append failed): " +
                                   s.message());
    }
  }
  return result;
}

void Engine::CheckConstraintsWith(Interp* interp) {
  const std::vector<std::shared_ptr<Def>>& ics = interp->ics();
  if (ics.empty()) return;

  int num_threads = options_.num_threads == 0 ? ThreadPool::HardwareThreads()
                                              : options_.num_threads;
  num_threads = std::min<int>(num_threads, static_cast<int>(ics.size()));

  if (num_threads <= 1) {
    // The solver caches compiled rules by Def address; keep every synthetic
    // violation rule alive until the interp is done with them, or a freed
    // address could be reused by the next rule and hit a stale cache entry.
    std::vector<std::shared_ptr<Def>> keep_alive;
    for (const auto& ic : ics) {
      keep_alive.push_back(ViolationRule(*ic));
      Relation violations =
          interp->solver().EvalRule(*keep_alive.back(), {}, nullptr);
      if (!violations.empty()) {
        throw ConstraintViolation(ic->name,
                                  "violated by " + ViolationDetail(violations));
      }
    }
    return;
  }

  // Parallel: constraints are independent reads of the same database, so
  // each one gets its own task and its own Interp (the solver's memo tables
  // are single-threaded). Two preparations make the shared reads pure:
  // the Interner is internally synchronized, and the base relations' lazy
  // sorted views are forced here, before the first task runs — at the
  // arena level, which caches the views without materializing the
  // relation-wide tuple copy Relation::SortedTuples() would build.
  for (const std::string& name : interp->db().Names()) {
    const Relation& rel = interp->db().Get(name);
    for (size_t arity : rel.Arities()) {
      rel.ArenaOfArity(arity)->SortedTuples();
    }
  }

  struct Outcome {
    bool violated = false;
    std::string detail;
    std::exception_ptr error;
  };
  std::vector<Outcome> outcomes(ics.size());
  {
    ThreadPool pool(num_threads);
    ThreadPool::TaskGroup group(&pool);
    // One task per worker over a strided constraint subset, not one per
    // constraint: each Interp construction re-runs analysis over the whole
    // def set, so build num_threads of them, not ics.size().
    for (int worker = 0; worker < num_threads; ++worker) {
      group.Run([this, interp, worker, num_threads, &outcomes] {
        InterpOptions sequential = options_;
        sequential.num_threads = 1;
        Interp local(&interp->db(), interp->defs(), sequential);
        // Same Def-address-reuse hazard as the sequential path: the solver
        // caches compiled rules by address, so every synthetic rule this
        // Interp saw must stay alive as long as the Interp does.
        std::vector<std::shared_ptr<Def>> keep_alive;
        for (size_t i = static_cast<size_t>(worker); i < interp->ics().size();
             i += static_cast<size_t>(num_threads)) {
          try {
            keep_alive.push_back(ViolationRule(*interp->ics()[i]));
            Relation violations =
                local.solver().EvalRule(*keep_alive.back(), {}, nullptr);
            if (!violations.empty()) {
              outcomes[i].violated = true;
              outcomes[i].detail = ViolationDetail(violations);
            }
          } catch (...) {
            outcomes[i].error = std::current_exception();
          }
        }
      });
    }
    group.Wait();
  }
  // Deterministic report: the first failure in declaration order, exactly
  // what the sequential path would have thrown.
  for (size_t i = 0; i < ics.size(); ++i) {
    if (outcomes[i].error) std::rethrow_exception(outcomes[i].error);
    if (outcomes[i].violated) {
      throw ConstraintViolation(ics[i]->name,
                                "violated by " + outcomes[i].detail);
    }
  }
}

void Engine::CheckConstraints() {
  Interp interp(&db_, persistent_, options_);
  CheckConstraintsWith(&interp);
}

void Engine::Insert(const std::string& name, const std::vector<Tuple>& tuples) {
  if (store_ != nullptr && !tuples.empty()) {
    std::vector<storage::WalRecord> ops;
    ops.reserve(tuples.size());
    for (const Tuple& t : tuples) {
      ops.push_back(storage::WalRecord::Fact(name, t));
    }
    Status s = store_->LogTransaction(ops, nullptr);
    if (!s.ok()) {
      throw RelError(s.kind(),
                     "bulk insert not applied (WAL append failed): " +
                         s.message());
    }
  }
  for (const Tuple& t : tuples) db_.Insert(name, t);
}

void Engine::DeleteTuples(const std::string& name,
                          const std::vector<Tuple>& tuples) {
  if (store_ != nullptr && !tuples.empty()) {
    std::vector<storage::WalRecord> ops;
    ops.reserve(tuples.size());
    for (const Tuple& t : tuples) {
      ops.push_back(storage::WalRecord::Retract(name, t));
    }
    Status s = store_->LogTransaction(ops, nullptr);
    if (!s.ok()) {
      throw RelError(s.kind(),
                     "bulk delete not applied (WAL append failed): " +
                         s.message());
    }
  }
  for (const Tuple& t : tuples) db_.Delete(name, t);
}

const Relation& Engine::Base(const std::string& name) const {
  return db_.Get(name);
}

storage::RecoveryReport Engine::AttachStorage(
    const std::string& dir, storage::DurabilityOptions opts,
    std::shared_ptr<storage::FileSystem> fs) {
  storage::RecoveryReport report;
  if (store_ != nullptr) {
    report.status =
        Status::Error(ErrorKind::kTransaction, "storage already attached");
    return report;
  }
  if (fs == nullptr) fs = std::make_shared<storage::PosixFileSystem>();
  auto store = std::make_unique<storage::Store>(std::move(fs), dir, opts);
  storage::SnapshotData data;
  report = store->Recover(&data);
  if (!report.status.ok()) return report;

  // Install the recovered model (snapshot sources + WAL define records),
  // then adopt the recovered database. Rules Define'd on this engine
  // before attaching stay installed; they are logged to the store below so
  // the next snapshot captures them.
  std::vector<std::string> pre_attach = std::move(model_sources_);
  model_sources_.clear();
  for (const std::string& source : data.model_sources) {
    DefineImpl(source, /*internal=*/true);
    model_sources_.push_back(source);
  }
  for (const std::string& source : pre_attach) {
    model_sources_.push_back(source);
  }
  db_ = std::move(data.db);
  store_ = std::move(store);
  for (const std::string& source : pre_attach) {
    Status s = store_->LogDefine(source);
    if (!s.ok()) {
      store_.reset();
      report.status = s;
      return report;
    }
  }
  return report;
}

Status Engine::Checkpoint() {
  if (store_ == nullptr) {
    return Status::Error(ErrorKind::kTransaction, "no storage attached");
  }
  return store_->Checkpoint(db_, model_sources_);
}

Status Engine::FlushWal() {
  if (store_ == nullptr) return Status::Ok();
  return store_->Flush();
}

}  // namespace rel
