#include "core/engine.h"

#include "base/error.h"
#include "core/parser.h"

namespace rel {

namespace {

std::vector<std::shared_ptr<Def>> ParseToDefs(const std::string& source) {
  Program program = ParseProgram(source);
  std::vector<std::shared_ptr<Def>> out;
  out.reserve(program.defs.size());
  for (Def& def : program.defs) {
    out.push_back(std::make_shared<Def>(std::move(def)));
  }
  return out;
}

/// insert/delete control tuples are (:RName, v1, ..., vk).
bool SplitControlTuple(const Tuple& t, std::string* name, Tuple* payload) {
  if (t.arity() == 0) return false;
  const Value& head = t[0];
  if (!head.is_entity() || head.EntityConcept() != "rel") return false;
  *name = head.EntityId();
  *payload = t.Slice(1, t.arity());
  return true;
}

}  // namespace

Engine::Engine() : Engine(/*load_stdlib=*/true) {}

Engine::Engine(bool load_stdlib) {
  if (load_stdlib) Define(StdlibSource());
}

void Engine::Define(const std::string& source) {
  std::vector<std::shared_ptr<Def>> defs = ParseToDefs(source);
  persistent_.insert(persistent_.end(), defs.begin(), defs.end());
}

Relation Engine::Query(const std::string& source) {
  return Run(source, /*apply=*/false).output;
}

Relation Engine::Eval(const std::string& expression) {
  return Query("def output : " + expression);
}

TxnResult Engine::Exec(const std::string& source) {
  return Run(source, /*apply=*/true);
}

TxnResult Engine::Run(const std::string& source, bool apply) {
  std::vector<std::shared_ptr<Def>> combined = persistent_;
  for (auto& def : ParseToDefs(source)) combined.push_back(std::move(def));

  Interp interp(&db_, combined, options_);
  TxnResult result;
  if (interp.HasDefs("output")) {
    result.output = interp.EvalInstance("output", 0, {});
  }
  if (!apply) return result;

  // Compute the updates against the pre-state...
  Relation inserts, deletes;
  if (interp.HasDefs("insert")) inserts = interp.EvalInstance("insert", 0, {});
  if (interp.HasDefs("delete")) deletes = interp.EvalInstance("delete", 0, {});

  if (inserts.empty() && deletes.empty()) {
    // Still check constraints: the transaction's ic rules apply to the
    // current state.
    CheckConstraintsWith(&interp);
    return result;
  }

  // ... then apply them (deletes first, as both were computed against the
  // same snapshot) and validate the post-state.
  Database backup = db_;
  for (const Tuple& t : deletes.SortedTuples()) {
    std::string name;
    Tuple payload;
    if (!SplitControlTuple(t, &name, &payload)) {
      db_ = std::move(backup);
      throw RelError(ErrorKind::kType,
                     "delete tuples must start with a :RelationName");
    }
    db_.Delete(name, payload);
    ++result.deleted;
  }
  for (const Tuple& t : inserts.SortedTuples()) {
    std::string name;
    Tuple payload;
    if (!SplitControlTuple(t, &name, &payload)) {
      db_ = std::move(backup);
      throw RelError(ErrorKind::kType,
                     "insert tuples must start with a :RelationName");
    }
    db_.Insert(name, payload);
    ++result.inserted;
  }

  try {
    Interp post(&db_, combined, options_);
    CheckConstraintsWith(&post);
  } catch (...) {
    db_ = std::move(backup);  // abort: roll back the transaction
    throw;
  }
  return result;
}

void Engine::CheckConstraintsWith(Interp* interp) {
  // The solver caches compiled rules by Def address; keep every synthetic
  // violation rule alive until the interp is done with them, or a freed
  // address could be reused by the next rule and hit a stale cache entry.
  std::vector<std::shared_ptr<Def>> keep_alive;
  for (const auto& ic : interp->ics()) {
    // The violations of `ic name(params) requires F` are the parameter
    // bindings for which F fails; with no parameters the constraint is
    // simply the truth of F.
    auto violation_rule = std::make_shared<Def>();
    violation_rule->name = "$violations_" + ic->name;
    violation_rule->params = ic->params;
    auto neg = MakeExpr(ExprKind::kNot, ic->line, 0);
    neg->children = {ic->body};
    violation_rule->body = neg;
    violation_rule->square_head = false;
    keep_alive.push_back(violation_rule);

    Relation violations =
        interp->solver().EvalRule(*violation_rule, {}, nullptr);
    if (!violations.empty()) {
      std::string detail = violations.size() <= 10
                               ? violations.ToString()
                               : std::to_string(violations.size()) +
                                     " violating bindings";
      throw ConstraintViolation(ic->name, "violated by " + detail);
    }
  }
}

void Engine::CheckConstraints() {
  Interp interp(&db_, persistent_, options_);
  CheckConstraintsWith(&interp);
}

void Engine::Insert(const std::string& name, const std::vector<Tuple>& tuples) {
  for (const Tuple& t : tuples) db_.Insert(name, t);
}

void Engine::DeleteTuples(const std::string& name,
                          const std::vector<Tuple>& tuples) {
  for (const Tuple& t : tuples) db_.Delete(name, t);
}

const Relation& Engine::Base(const std::string& name) const {
  return db_.Get(name);
}

}  // namespace rel
