// Tokens of the Rel language (Figure 2 of the paper plus the syntactic sugar
// used throughout the text: infix arithmetic, comparison operators, `where`,
// `<++`, `.`, `in`, `@inline`, and the `:Name` relation-name literals used
// with control relations).

#ifndef REL_CORE_TOKEN_H_
#define REL_CORE_TOKEN_H_

#include <cstdint>
#include <string>

namespace rel {

enum class TokenKind {
  kEof,
  kIdent,       // payload: text
  kTupleVar,    // x... ; payload: text without dots
  kWildcard,    // _
  kWildcardTuple,  // _...
  kInt,         // payload: int_value
  kFloat,       // payload: float_value
  kString,      // payload: text (unescaped contents)

  // Keywords.
  kDef,
  kIc,
  kRequires,
  kAnd,
  kOr,
  kNot,
  kExists,
  kForall,
  kImplies,
  kIff,
  kXor,
  kWhere,
  kIn,
  kTrue,
  kFalse,

  // Punctuation.
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kLBrace,
  kRBrace,
  kComma,
  kSemi,
  kColon,
  kBar,

  // Operators.
  kEq,
  kNeq,
  kLt,
  kLe,
  kGt,
  kGe,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kCaret,
  kDot,
  kLeftOverride,  // <++
  kQuestion,      // ?
  kAmp,           // &
  kAt,            // @ (for @inline)
};

/// Human-readable token name for diagnostics.
const char* TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;      // identifiers, strings
  int64_t int_value = 0;
  double float_value = 0;
  int line = 1;
  int column = 1;

  std::string Describe() const;
};

}  // namespace rel

#endif  // REL_CORE_TOKEN_H_
