#include "core/session.h"

#include <algorithm>
#include <set>
#include <utility>

#include "core/engine.h"
#include "core/parser.h"

namespace rel {

namespace {

/// Mirrors the lowering path's InterpOptions → EvalOptions mapping (see
/// LoweredEvalOptions in interp.cc and MaintainEvalOptions in engine.cc) so
/// maintained extents are byte-identical to recomputation.
datalog::EvalOptions MaintainEvalOptions(const InterpOptions& options) {
  datalog::EvalOptions eval_options;
  eval_options.num_threads = options.num_threads;
  eval_options.max_iterations = std::max(options.max_iterations, 1);
  eval_options.plan_order_seed = options.plan_order_seed;
  return eval_options;
}

/// True when `next` is a pure extension of `prev` (same shared defs, in
/// order, plus appended ones); fills `added` with the appended names.
bool RulesExtended(const std::vector<std::shared_ptr<Def>>& prev,
                   const std::vector<std::shared_ptr<Def>>& next,
                   std::set<std::string>* added) {
  if (next.size() < prev.size()) return false;
  for (size_t i = 0; i < prev.size(); ++i) {
    if (next[i] != prev[i]) return false;
  }
  for (size_t i = prev.size(); i < next.size(); ++i) {
    added->insert(next[i]->name);
  }
  return true;
}

}  // namespace

Session::Session(Engine* engine, std::shared_ptr<const Snapshot> snap,
                 InterpOptions options)
    : engine_(engine), snap_(std::move(snap)), options_(std::move(options)) {}

Session::~Session() = default;

void Session::Refresh() { Adopt(engine_->SnapshotNow()); }

void Session::Adopt(std::shared_ptr<const Snapshot> snap) {
  if (snap == nullptr || snap == snap_) return;

  if (snap->rules_version != snap_->rules_version) {
    std::set<std::string> added;
    if (RulesExtended(*snap_->rules, *snap->rules, &added)) {
      // Define only ever appends: a new rule invalidates exactly the cached
      // cones/extents whose closure can read one of the new names — the
      // rest were derived from relations the new rules cannot reach and
      // keep serving hits.
      demand_cache_.ClearAffected(added);
      extent_cache_.ClearAffected(added);
    } else {
      demand_cache_.Clear();
      extent_cache_.Clear();
    }
  }

  // Database maintenance: walk the published commit-delta chain from the
  // pinned version to the new head, moving both caches along incrementally
  // (O(|delta cone|) per entry per commit). A pin that predates the chain
  // window — or a wholesale database swap (epoch bump) — falls back to
  // dropping.
  if (snap->db_epoch == snap_->db_epoch && snap->version() == snap_->version()) {
    // Same database state; every cached version key is still the pin.
  } else {
    bool walked = snap->db_epoch == snap_->db_epoch;
    if (walked) {
      const datalog::EvalOptions eval_opts = MaintainEvalOptions(options_);
      uint64_t at = snap_->version();
      const auto& chain = snap->recent_deltas;
      size_t i = 0;
      while (i < chain.size() && chain[i]->from_version != at) ++i;
      if (i == chain.size()) walked = false;
      for (; walked && i < chain.size() && at != snap->version(); ++i) {
        const DatabaseDelta& delta = *chain[i];
        if (delta.db_epoch != snap->db_epoch || delta.from_version != at) {
          walked = false;
          break;
        }
        demand_cache_.Maintain(delta, eval_opts);
        extent_cache_.Maintain(delta, eval_opts);
        at = delta.to_version;
      }
      if (at != snap->version()) walked = false;
    }
    if (!walked) {
      extent_cache_.Clear();
      demand_cache_.Retain(snap->version());
    }
  }
  snap_ = std::move(snap);
}

Relation Session::Query(const std::string& source) {
  // The whole read runs against the pinned snapshot: parse the source as
  // transaction-local rules appended to the snapshot's persistent prefix,
  // evaluate `output`, and never look at the engine's live state.
  std::vector<std::shared_ptr<Def>> combined = *snap_->rules;
  for (auto& def : ParseToSharedDefs(source)) combined.push_back(std::move(def));

  InterpOptions opts = options_;
  opts.shared_defs = snap_->rules->size();
  opts.demand_cache = &demand_cache_;
  opts.extent_cache = &extent_cache_;
  opts.shared_analysis = snap_->rules_analysis.get();
  Interp interp(snap_->db.get(), std::move(combined), opts);
  Relation out;
  if (interp.HasDefs("output")) {
    out = interp.EvalInstance("output", 0, {});
  }
  lowering_stats_ = interp.lowering_stats();
  return out;
}

Relation Session::Eval(const std::string& expression) {
  return Query("def output : " + expression);
}

const Relation& Session::Base(const std::string& name) const {
  return snap_->db->Get(name);
}

TxnResult Session::Exec(const std::string& source) {
  std::shared_ptr<const Snapshot> published;
  TxnResult result =
      engine_->ExecTxn(source, options_, &lowering_stats_, &published);
  Adopt(std::move(published));  // read-your-writes
  return result;
}

void Session::Define(const std::string& source) {
  std::shared_ptr<const Snapshot> published;
  engine_->DefineTxn(source, /*internal=*/false, &published);
  Adopt(std::move(published));
}

void Session::Insert(const std::string& name,
                     const std::vector<Tuple>& tuples) {
  std::shared_ptr<const Snapshot> published;
  engine_->ApplyBulk(name, tuples, /*is_insert=*/true, &published);
  Adopt(std::move(published));
}

void Session::DeleteTuples(const std::string& name,
                           const std::vector<Tuple>& tuples) {
  std::shared_ptr<const Snapshot> published;
  engine_->ApplyBulk(name, tuples, /*is_insert=*/false, &published);
  Adopt(std::move(published));
}

}  // namespace rel
