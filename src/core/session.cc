#include "core/session.h"

#include <utility>

#include "core/engine.h"
#include "core/parser.h"

namespace rel {

Session::Session(Engine* engine, std::shared_ptr<const Snapshot> snap,
                 InterpOptions options)
    : engine_(engine), snap_(std::move(snap)), options_(std::move(options)) {}

Session::~Session() = default;

void Session::Refresh() { Adopt(engine_->SnapshotNow()); }

void Session::Adopt(std::shared_ptr<const Snapshot> snap) {
  if (snap == nullptr || snap == snap_) return;
  if (snap->rules_version != snap_->rules_version) {
    // Every cached cone was derived under the old rule set; none survive.
    demand_cache_.Clear();
  } else {
    demand_cache_.Retain(snap->version());
  }
  snap_ = std::move(snap);
}

Relation Session::Query(const std::string& source) {
  // The whole read runs against the pinned snapshot: parse the source as
  // transaction-local rules appended to the snapshot's persistent prefix,
  // evaluate `output`, and never look at the engine's live state.
  std::vector<std::shared_ptr<Def>> combined = *snap_->rules;
  for (auto& def : ParseToSharedDefs(source)) combined.push_back(std::move(def));

  InterpOptions opts = options_;
  opts.shared_defs = snap_->rules->size();
  opts.demand_cache = &demand_cache_;
  Interp interp(snap_->db.get(), std::move(combined), opts);
  Relation out;
  if (interp.HasDefs("output")) {
    out = interp.EvalInstance("output", 0, {});
  }
  lowering_stats_ = interp.lowering_stats();
  return out;
}

Relation Session::Eval(const std::string& expression) {
  return Query("def output : " + expression);
}

const Relation& Session::Base(const std::string& name) const {
  return snap_->db->Get(name);
}

TxnResult Session::Exec(const std::string& source) {
  std::shared_ptr<const Snapshot> published;
  TxnResult result =
      engine_->ExecTxn(source, options_, &lowering_stats_, &published);
  Adopt(std::move(published));  // read-your-writes
  return result;
}

void Session::Define(const std::string& source) {
  std::shared_ptr<const Snapshot> published;
  engine_->DefineTxn(source, /*internal=*/false, &published);
  Adopt(std::move(published));
}

void Session::Insert(const std::string& name,
                     const std::vector<Tuple>& tuples) {
  std::shared_ptr<const Snapshot> published;
  engine_->ApplyBulk(name, tuples, /*is_insert=*/true, &published);
  Adopt(std::move(published));
}

void Session::DeleteTuples(const std::string& name,
                           const std::vector<Tuple>& tuples) {
  std::shared_ptr<const Snapshot> published;
  engine_->ApplyBulk(name, tuples, /*is_insert=*/false, &published);
  Adopt(std::move(published));
}

}  // namespace rel
