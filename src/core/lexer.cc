#include "core/lexer.h"

#include <cctype>
#include <unordered_map>

#include "base/error.h"

namespace rel {

namespace {

const std::unordered_map<std::string, TokenKind>& Keywords() {
  static auto* keywords = new std::unordered_map<std::string, TokenKind>{
      {"def", TokenKind::kDef},         {"ic", TokenKind::kIc},
      {"requires", TokenKind::kRequires}, {"and", TokenKind::kAnd},
      {"or", TokenKind::kOr},           {"not", TokenKind::kNot},
      {"exists", TokenKind::kExists},   {"forall", TokenKind::kForall},
      {"implies", TokenKind::kImplies}, {"iff", TokenKind::kIff},
      {"xor", TokenKind::kXor},         {"where", TokenKind::kWhere},
      {"in", TokenKind::kIn},           {"true", TokenKind::kTrue},
      {"false", TokenKind::kFalse},
  };
  return *keywords;
}

class LexerImpl {
 public:
  explicit LexerImpl(std::string_view source) : src_(source) {}

  std::vector<Token> Run() {
    std::vector<Token> tokens;
    for (;;) {
      SkipWhitespaceAndComments();
      Token token = NextToken();
      bool at_end = token.kind == TokenKind::kEof;
      tokens.push_back(std::move(token));
      if (at_end) break;
    }
    return tokens;
  }

 private:
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  char Advance() {
    char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  bool Match(char expected) {
    if (Peek() != expected) return false;
    Advance();
    return true;
  }

  [[noreturn]] void Fail(const std::string& message) const {
    throw ParseError(message, line_, column_);
  }

  void SkipWhitespaceAndComments() {
    for (;;) {
      char c = Peek();
      if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
        Advance();
      } else if (c == '/' && Peek(1) == '/') {
        while (Peek() != '\n' && Peek() != '\0') Advance();
      } else if (c == '/' && Peek(1) == '*') {
        int start_line = line_;
        Advance();
        Advance();
        while (!(Peek() == '*' && Peek(1) == '/')) {
          if (Peek() == '\0') {
            throw ParseError("unterminated block comment", start_line, 1);
          }
          Advance();
        }
        Advance();
        Advance();
      } else {
        return;
      }
    }
  }

  Token MakeToken(TokenKind kind) const {
    Token t;
    t.kind = kind;
    t.line = token_line_;
    t.column = token_column_;
    return t;
  }

  bool ConsumeDots() {
    // Consume a literal "..." if present.
    if (Peek() == '.' && Peek(1) == '.' && Peek(2) == '.') {
      Advance();
      Advance();
      Advance();
      return true;
    }
    return false;
  }

  Token LexIdentifier() {
    std::string text;
    while (std::isalnum(static_cast<unsigned char>(Peek())) || Peek() == '_') {
      text.push_back(Advance());
    }
    if (text == "_") {
      if (ConsumeDots()) return MakeToken(TokenKind::kWildcardTuple);
      return MakeToken(TokenKind::kWildcard);
    }
    if (ConsumeDots()) {
      Token t = MakeToken(TokenKind::kTupleVar);
      t.text = std::move(text);
      return t;
    }
    auto it = Keywords().find(text);
    if (it != Keywords().end()) return MakeToken(it->second);
    Token t = MakeToken(TokenKind::kIdent);
    t.text = std::move(text);
    return t;
  }

  Token LexNumber() {
    std::string text;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) {
      text.push_back(Advance());
    }
    bool is_float = false;
    // A '.' makes a float only when followed by a digit; "1..3" or a
    // dot-join after a number must not swallow the dot. And "1.0" has space
    // before ".0" in the paper's PageRank listing ("1 .0/d"), so we also
    // treat "digit '.' digit" with no intervening chars as float — spaces
    // were an artifact of the paper's line breaking, normalized by callers.
    if (Peek() == '.' && std::isdigit(static_cast<unsigned char>(Peek(1)))) {
      is_float = true;
      text.push_back(Advance());
      while (std::isdigit(static_cast<unsigned char>(Peek()))) {
        text.push_back(Advance());
      }
    }
    if (Peek() == 'e' || Peek() == 'E') {
      size_t save = pos_;
      std::string exp;
      exp.push_back(Advance());
      if (Peek() == '+' || Peek() == '-') exp.push_back(Advance());
      if (std::isdigit(static_cast<unsigned char>(Peek()))) {
        while (std::isdigit(static_cast<unsigned char>(Peek()))) {
          exp.push_back(Advance());
        }
        text += exp;
        is_float = true;
      } else {
        pos_ = save;  // 'e' was the start of an identifier, not an exponent
      }
    }
    if (is_float) {
      Token t = MakeToken(TokenKind::kFloat);
      t.float_value = std::stod(text);
      return t;
    }
    Token t = MakeToken(TokenKind::kInt);
    t.int_value = std::stoll(text);
    return t;
  }

  Token LexString() {
    Advance();  // opening quote
    std::string text;
    for (;;) {
      char c = Peek();
      if (c == '\0') Fail("unterminated string literal");
      if (c == '"') {
        Advance();
        break;
      }
      if (c == '\\') {
        Advance();
        char esc = Advance();
        switch (esc) {
          case 'n': text.push_back('\n'); break;
          case 't': text.push_back('\t'); break;
          case '\\': text.push_back('\\'); break;
          case '"': text.push_back('"'); break;
          default: Fail(std::string("unknown escape '\\") + esc + "'");
        }
      } else {
        text.push_back(Advance());
      }
    }
    Token t = MakeToken(TokenKind::kString);
    t.text = std::move(text);
    return t;
  }

  Token NextToken() {
    token_line_ = line_;
    token_column_ = column_;
    char c = Peek();
    if (c == '\0') return MakeToken(TokenKind::kEof);
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return LexIdentifier();
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      return LexNumber();
    }
    if (c == '"') return LexString();
    Advance();
    switch (c) {
      case '(': return MakeToken(TokenKind::kLParen);
      case ')': return MakeToken(TokenKind::kRParen);
      case '[': return MakeToken(TokenKind::kLBracket);
      case ']': return MakeToken(TokenKind::kRBracket);
      case '{': return MakeToken(TokenKind::kLBrace);
      case '}': return MakeToken(TokenKind::kRBrace);
      case ',': return MakeToken(TokenKind::kComma);
      case ';': return MakeToken(TokenKind::kSemi);
      case ':': return MakeToken(TokenKind::kColon);
      case '|': return MakeToken(TokenKind::kBar);
      case '=': return MakeToken(TokenKind::kEq);
      case '+': return MakeToken(TokenKind::kPlus);
      case '*': return MakeToken(TokenKind::kStar);
      case '/': return MakeToken(TokenKind::kSlash);
      case '%': return MakeToken(TokenKind::kPercent);
      case '^': return MakeToken(TokenKind::kCaret);
      case '?': return MakeToken(TokenKind::kQuestion);
      case '&': return MakeToken(TokenKind::kAmp);
      case '@': return MakeToken(TokenKind::kAt);
      case '-': return MakeToken(TokenKind::kMinus);
      case '!':
        if (Match('=')) return MakeToken(TokenKind::kNeq);
        Fail("expected '=' after '!'");
      case '<':
        if (Match('=')) return MakeToken(TokenKind::kLe);
        if (Peek() == '+' && Peek(1) == '+') {
          Advance();
          Advance();
          return MakeToken(TokenKind::kLeftOverride);
        }
        return MakeToken(TokenKind::kLt);
      case '>':
        if (Match('=')) return MakeToken(TokenKind::kGe);
        return MakeToken(TokenKind::kGt);
      case '.':
        if (Peek() == '.' && Peek(1) == '.') {
          Advance();
          Advance();
          Fail("'...' must follow an identifier or '_'");
        }
        return MakeToken(TokenKind::kDot);
      default:
        Fail(std::string("unexpected character '") + c + "'");
    }
  }

  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
  int token_line_ = 1;
  int token_column_ = 1;
};

}  // namespace

std::vector<Token> Lex(std::string_view source) {
  return LexerImpl(source).Run();
}

}  // namespace rel
