// Engine: the public entry point of the Rel library.
//
// An Engine owns a Database of base relations and a set of installed
// (persistent) rules — the standard library plus anything passed to
// Define(). Each Exec()/Query() runs one *transaction* (Section 3.4):
//   - rules in the source are in effect for that transaction only;
//   - the computed `output` relation is returned;
//   - for Exec(), the control relations `insert` and `delete` are applied
//     to the database, and all integrity constraints are checked against
//     the post-state; a violation aborts and rolls back (Section 3.5).

#ifndef REL_CORE_ENGINE_H_
#define REL_CORE_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/ast.h"
#include "core/interp.h"
#include "data/database.h"
#include "storage/store.h"

namespace rel {

/// Result of one transaction.
struct TxnResult {
  Relation output;
  size_t inserted = 0;  // tuples added to base relations
  size_t deleted = 0;   // tuples removed from base relations
  /// WAL id of this transaction when durability is attached and the
  /// transaction changed base relations; 0 otherwise.
  uint64_t txn_id = 0;
};

class Engine {
 public:
  /// Constructs an engine with the standard library installed.
  Engine();

  /// `load_stdlib = false` gives a bare engine (used by language tests).
  explicit Engine(bool load_stdlib);

  /// Installs persistent rules and integrity constraints ("the model").
  /// Throws ParseError on bad syntax.
  void Define(const std::string& source);

  /// Runs `source` as a read-only query: evaluates and returns `output`.
  /// insert/delete rules in the source are *not* applied.
  Relation Query(const std::string& source);

  /// Evaluates a single expression (e.g. "TC[{(1,2);(2,3)}]").
  Relation Eval(const std::string& expression);

  /// Runs `source` as a full transaction; returns output and the applied
  /// update counts. Throws ConstraintViolation (and rolls back) if an
  /// integrity constraint fails.
  TxnResult Exec(const std::string& source);

  /// Programmatic base-relation updates (bulk loading). Integrity
  /// constraints are not checked here; call CheckConstraints() if desired.
  void Insert(const std::string& name, const std::vector<Tuple>& tuples);
  void DeleteTuples(const std::string& name, const std::vector<Tuple>& tuples);

  /// Verifies all installed integrity constraints against the current
  /// database; throws ConstraintViolation on the first failure.
  void CheckConstraints();

  // --- durability (src/storage) ---

  /// Attaches a durable store rooted at `dir` (created if needed). Existing
  /// state is recovered first: the latest valid snapshot is loaded, the WAL
  /// tail replayed (complete transactions only, truncating at the first
  /// torn or corrupt record), recovered model sources are re-installed, and
  /// the recovered database REPLACES this engine's database. Afterwards
  /// every Exec/Insert/DeleteTuples/Define is written ahead to the log —
  /// an Exec whose WAL write fails rolls back and throws RelError(kIo).
  ///
  /// Corruption is degradation, not death: the returned report carries the
  /// truncation point and recovered-transaction count; only an unusable
  /// store (unreadable directory, unopenable WAL) makes `report.status`
  /// non-ok, in which case the engine stays detached and in-memory.
  ///
  /// Rules Define'd before attaching (beyond the stdlib) are logged to the
  /// fresh store so the model round-trips; attach before Define when the
  /// exact install order matters. `fs` is the I/O seam for tests (fault
  /// injection); nullptr uses the real file system.
  storage::RecoveryReport AttachStorage(
      const std::string& dir, storage::DurabilityOptions opts = {},
      std::shared_ptr<storage::FileSystem> fs = nullptr);

  /// Serializes the full database + model into a snapshot checkpoint and
  /// rotates the WAL (see storage/store.h for the crash-safe protocol).
  /// On failure the previous snapshot and WAL stay intact and in use.
  Status Checkpoint();

  /// Makes any group-commit-buffered WAL tail durable now.
  Status FlushWal();

  /// True when a durable store is attached.
  bool durable() const { return store_ != nullptr; }

  /// Read access to a base relation ({} if absent).
  const Relation& Base(const std::string& name) const;

  const Database& db() const { return db_; }
  Database& mutable_db() { return db_; }

  /// Evaluation limits and toggles (iteration caps, num_threads, the
  /// lower_recursion / demand_transform evaluation-path switches).
  InterpOptions& options() { return options_; }

  /// Recursion-lowering counters from the most recent Query/Eval/Exec
  /// (the transaction's main Interp; sibling constraint-checking Interps
  /// are not aggregated). Useful for tests and benchmarks asserting which
  /// evaluation path a recursive component took.
  const LoweringStats& last_lowering_stats() const { return lowering_stats_; }

  /// Number of installed persistent rules (stdlib + Define'd).
  size_t installed_rules() const { return persistent_.size(); }

 private:
  TxnResult Run(const std::string& source, bool apply);
  void CheckConstraintsWith(Interp* interp);
  /// Parses and installs `source`; records it in model_sources_ (and WAL-
  /// logs it when attached) unless `internal` — the stdlib and recovery
  /// replay go through the internal path.
  void DefineImpl(const std::string& source, bool internal);

  Database db_;
  std::vector<std::shared_ptr<Def>> persistent_;
  InterpOptions options_;
  LoweringStats lowering_stats_;
  std::unique_ptr<storage::Store> store_;
  /// Post-stdlib Define history, in install order — what snapshots persist
  /// so rules and integrity constraints recover with the data.
  std::vector<std::string> model_sources_;
};

/// The Rel source text of the standard library (aggregates, relational
/// algebra, linear algebra, graph algorithms — Section 5 of the paper).
const char* StdlibSource();

}  // namespace rel

#endif  // REL_CORE_ENGINE_H_
