// Engine: the shared core of the Rel library — one engine per database,
// serving any number of concurrent Sessions (PR 7 redesign).
//
// State lives in two places:
//
//   * The published head: a `shared_ptr<const Snapshot>` (database +
//     persistent rules as of the last commit). Sessions pin it and run
//     Query/Eval lock-free against the pin — see core/session.h.
//
//   * The writer side: a working Database copy plus the durable store,
//     serialized by a single writer mutex. Every write
//     (Exec/Define/Insert/DeleteTuples, from any session) funnels through
//     the commit pipeline, whose ordering is unchanged from the durability
//     PR: evaluate against the pre-state → apply insert/delete →
//     check integrity constraints on the post-state → write ahead to the
//     WAL → only then acknowledge, by atomically publishing the next
//     snapshot. An abort at any stage rolls the working copy back to the
//     head (a cheap copy-on-write re-copy) and publishes nothing — readers
//     cannot observe a state that was not committed.
//
// Each Exec()/Query() runs one *transaction* (Section 3.4): rules in the
// source are in effect for that transaction only; the computed `output`
// relation is returned; for Exec(), the control relations `insert` and
// `delete` are applied and all integrity constraints are checked against
// the post-state — a violation aborts and rolls back (Section 3.5).
//
// Lock order: writer_mu_ before head_mu_. head_mu_ guards only the head
// pointer swap/read; it is never held during evaluation.
//
// The Engine's own Query/Exec/... methods are a single-session facade over
// an internal auto-refreshing session — the pre-PR-7 API, kept so that
// embedders (and ~everything in tests/) need no session plumbing. The
// facade is NOT thread-safe; concurrent callers must open their own
// sessions.

#ifndef REL_CORE_ENGINE_H_
#define REL_CORE_ENGINE_H_

#include <deque>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "core/ast.h"
#include "core/extent_cache.h"
#include "core/interp.h"
#include "core/session.h"
#include "data/database.h"
#include "storage/store.h"

namespace rel {

/// Result of one transaction.
struct TxnResult {
  Relation output;
  size_t inserted = 0;  // tuples added to base relations
  size_t deleted = 0;   // tuples removed from base relations
  /// WAL id of this transaction when durability is attached and the
  /// transaction changed base relations; 0 otherwise.
  uint64_t txn_id = 0;
  /// Database::version() of the snapshot published by this transaction —
  /// the version a session is pinned to after the ack. A transaction that
  /// changed nothing reports the version it committed against.
  uint64_t snapshot_version = 0;
};

class Engine {
 public:
  /// Constructs an engine with the standard library installed.
  Engine();

  /// `load_stdlib = false` gives a bare engine (used by language tests).
  explicit Engine(bool load_stdlib);

  ~Engine();

  // --- sessions & snapshots ---

  /// Opens a new session pinned to the current head snapshot. Sessions may
  /// be used concurrently with each other and with this engine's facade
  /// methods; each individual session is single-threaded. The session must
  /// not outlive the engine.
  std::unique_ptr<Session> OpenSession();

  /// The currently-published snapshot. Pinning it (keeping the shared_ptr)
  /// guarantees the state stays readable and immutable regardless of later
  /// commits.
  std::shared_ptr<const Snapshot> SnapshotNow() const;

  // --- single-session facade (not thread-safe; see header comment) ---

  /// Installs persistent rules and integrity constraints ("the model")
  /// engine-wide; all sessions see them on their next refresh/write.
  /// Throws ParseError on bad syntax.
  void Define(const std::string& source);

  /// Runs `source` as a read-only query against the newest snapshot:
  /// evaluates and returns `output`. insert/delete rules are not applied.
  Relation Query(const std::string& source);

  /// Evaluates a single expression (e.g. "TC[{(1,2);(2,3)}]") — sugar for
  /// Query("def output : " + expression).
  Relation Eval(const std::string& expression);

  /// Runs `source` as a full transaction through the commit pipeline;
  /// returns output and the applied update counts. Throws
  /// ConstraintViolation (and rolls back) if an integrity constraint fails.
  TxnResult Exec(const std::string& source);

  /// Programmatic base-relation updates (bulk loading), through the same
  /// WAL-first pipeline. Integrity constraints are not checked here; call
  /// CheckConstraints() if desired.
  void Insert(const std::string& name, const std::vector<Tuple>& tuples);
  void DeleteTuples(const std::string& name, const std::vector<Tuple>& tuples);

  /// Verifies all installed integrity constraints against the newest
  /// snapshot; throws ConstraintViolation on the first failure.
  void CheckConstraints();

  // --- durability (src/storage) ---

  /// Attaches a durable store rooted at `dir` (created if needed). Existing
  /// state is recovered first: the latest valid snapshot is loaded, the WAL
  /// tail replayed (complete transactions only, truncating at the first
  /// torn or corrupt record), recovered model sources are re-installed, and
  /// the recovered database REPLACES this engine's database (published as
  /// the new head). Afterwards every Exec/Insert/DeleteTuples/Define is
  /// written ahead to the log — an Exec whose WAL write fails rolls back
  /// and throws RelError(kIo).
  ///
  /// Corruption is degradation, not death: the returned report carries the
  /// truncation point and recovered-transaction count; only an unusable
  /// store (unreadable directory, unopenable WAL) makes `report.status`
  /// non-ok, in which case the engine stays detached and in-memory.
  ///
  /// Rules Define'd before attaching (beyond the stdlib) are logged to the
  /// fresh store so the model round-trips; attach before Define when the
  /// exact install order matters. `fs` is the I/O seam for tests (fault
  /// injection); nullptr uses the real file system.
  storage::RecoveryReport AttachStorage(
      const std::string& dir, storage::DurabilityOptions opts = {},
      std::shared_ptr<storage::FileSystem> fs = nullptr);

  /// Serializes the full database + model into a snapshot checkpoint and
  /// rotates the WAL (see storage/store.h for the crash-safe protocol).
  /// On failure the previous snapshot and WAL stay intact and in use.
  Status Checkpoint();

  /// Makes any group-commit-buffered WAL tail durable now.
  Status FlushWal();

  /// True when a durable store is attached.
  bool durable() const { return store_ != nullptr; }

  /// Read access to a base relation of the newest snapshot ({} if absent).
  /// The reference stays valid until the next commit.
  const Relation& Base(const std::string& name) const;

  /// The newest snapshot's database; the reference stays valid until the
  /// next commit. Sessions wanting a stable view should pin a snapshot.
  const Database& db() const;

  /// Evaluation limits and toggles (iteration caps, num_threads, the
  /// lower_recursion / demand_transform evaluation-path switches). Applied
  /// to facade calls and to writer-side constraint checking; sessions get a
  /// copy at OpenSession() and keep their own.
  InterpOptions& options() { return options_; }

  /// Recursion-lowering counters from the most recent facade
  /// Query/Eval/Exec (the transaction's main Interp; sibling
  /// constraint-checking Interps are not aggregated). Useful for tests and
  /// benchmarks asserting which evaluation path a recursive component took.
  const LoweringStats& last_lowering_stats() const { return lowering_stats_; }

  /// Number of installed persistent rules (stdlib + Define'd).
  size_t installed_rules() const;

  /// Counters for delta-specialized integrity checking (Decker-style): a
  /// committing transaction only re-evaluates constraints whose transitive
  /// read set intersects the relations it changed (or its own local defs);
  /// the rest are skipped, their validity carried over from the pre-state.
  struct IcStats {
    uint64_t checked = 0;
    uint64_t skipped = 0;
  };
  const IcStats& ic_stats() const { return ic_stats_; }

  /// The writer-side extent cache: lowered-component fixpoints maintained
  /// across the commit pipeline's pre-state and post-state evaluations.
  const ExtentCache& writer_extent_cache() const { return writer_cache_; }

 private:
  friend class Session;

  /// The commit pipeline (see header comment). `opts` is the calling
  /// session's option set (its demand cache is NOT used — writer-side
  /// Interps run uncached so aborted working versions never become keys).
  /// On success `*published` is the newly-published (or, for a no-op
  /// transaction, current) head.
  TxnResult ExecTxn(const std::string& source, const InterpOptions& opts,
                    LoweringStats* stats,
                    std::shared_ptr<const Snapshot>* published);

  /// Installs rules: WAL-log (unless internal) → extend the persistent rule
  /// vector → bump rules_version_ → publish.
  void DefineTxn(const std::string& source, bool internal,
                 std::shared_ptr<const Snapshot>* published);

  /// Bulk insert/delete: WAL-log first, then apply and publish.
  void ApplyBulk(const std::string& name, const std::vector<Tuple>& tuples,
                 bool is_insert, std::shared_ptr<const Snapshot>* published);

  /// Runs integrity constraints known to `interp`, parallelizing per
  /// `opts.num_threads`. Throws ConstraintViolation for the first failing
  /// constraint in declaration order. When `changed` is non-null (and the
  /// head state has passed a full check since the last rule change), the
  /// pass is specialized to the delta: a persistent constraint whose
  /// transitive read set misses both `changed` and the transaction's local
  /// defs (the first `shared_defs` entries of interp->defs() are
  /// persistent) is skipped. Returns true iff every constraint was
  /// evaluated (a full pass).
  bool CheckConstraintsWith(Interp* interp, const InterpOptions& opts,
                            const std::set<std::string>* changed = nullptr,
                            size_t shared_defs = 0);

  /// Requires writer_mu_. Parses and installs `source` into the rule
  /// vector; records it in model_sources_ (and WAL-logs it when attached)
  /// unless `internal` — the stdlib and recovery replay go through the
  /// internal path. Does not publish.
  void DefineLocked(const std::string& source, bool internal);

  /// Requires writer_mu_. Freezes the working database's lazy views, copies
  /// it (copy-on-write), and atomically swaps the head to a new Snapshot.
  std::shared_ptr<const Snapshot> Publish();

  /// Requires writer_mu_. Rolls the working database back to the published
  /// head (a shared copy-on-write copy — O(#relations)).
  void RollbackToHead();

  /// The facade's internal session (created on first use, re-pinned and
  /// re-optioned per call).
  Session& FacadeSession();

  // Published head. head_mu_ guards only the pointer; never held during
  // evaluation or I/O.
  mutable std::mutex head_mu_;
  std::shared_ptr<const Snapshot> head_;

  // Writer state, serialized by writer_mu_ (lock order: writer_mu_ before
  // head_mu_). db_ is the working copy; between commits its content equals
  // *head_->db (sharing every relation copy-on-write).
  std::mutex writer_mu_;
  Database db_;
  std::shared_ptr<const std::vector<std::shared_ptr<Def>>> rules_;
  /// Dependency/SCC analysis of `rules_`, rebuilt on every Define and
  /// published with each snapshot; Interps extend it with their
  /// transaction-local defs instead of re-analyzing the prelude per
  /// transaction (see ProgramAnalysis's extension constructor).
  std::shared_ptr<const ProgramAnalysis> rules_analysis_;
  uint64_t rules_version_ = 0;
  uint64_t last_txn_id_ = 0;
  std::unique_ptr<storage::Store> store_;
  /// Post-stdlib Define history, in install order — what snapshots persist
  /// so rules and integrity constraints recover with the data.
  std::vector<std::string> model_sources_;

  /// Writer-side extent cache, keyed by working-database versions. Abort
  /// safety: Maintain() re-keys every surviving entry to the transaction's
  /// post-version, so RollbackToHead()'s DropAbove(head version) discards
  /// exactly the aborted transaction's entries while the pre-state's
  /// survive (see core/extent_cache.h).
  ExtentCache writer_cache_;
  /// Bumped whenever db_ is replaced wholesale (AttachStorage recovery):
  /// deltas from different epochs must never be composed.
  uint64_t db_epoch_ = 0;
  /// The last few commit deltas, oldest first, published with each
  /// snapshot so sessions can maintain their caches across re-pins.
  std::deque<std::shared_ptr<const DatabaseDelta>> recent_deltas_;
  /// True until the current head state has passed a full constraint pass:
  /// set by construction, Define (new constraints see old data), bulk
  /// loads (unchecked by design), and recovery. While set, delta
  /// specialization is disabled — Decker's induction needs a verified base.
  bool ic_full_pass_needed_ = true;
  IcStats ic_stats_;

  InterpOptions options_;
  LoweringStats lowering_stats_;
  /// Facade session; declared last so it dies before the state it points
  /// into.
  std::unique_ptr<Session> facade_;
};

/// The Rel source text of the standard library (aggregates, relational
/// algebra, linear algebra, graph algorithms — Section 5 of the paper).
const char* StdlibSource();

}  // namespace rel

#endif  // REL_CORE_ENGINE_H_
