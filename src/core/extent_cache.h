// ExtentCache: derived state that survives updates (the incremental-
// maintenance tentpole).
//
// PR 5's recursion lowering evaluates a qualifying Rel component on the
// planned Datalog engine, but the fixpoint died with the transaction's
// Interp: every transaction recomputed the closure from scratch even when
// the database had not changed — or had changed by one tuple. This cache
// hoists the lowered fixpoint out of the transaction and, where possible,
// *maintains* it under base-relation deltas instead of recomputing:
//
//   * insert → resume semi-naive evaluation with the inserted tuples as the
//     delta against the cached fixpoint (datalog::EvaluateDelta);
//   * delete → DRed: over-delete everything derivable from the deleted
//     tuples, then re-derive what has alternative support;
//   * unsupported shapes (negation over an affected predicate, wholesale
//     Put/Drop) → the entry is dropped and the next transaction recomputes.
//
// Ownership mirrors core/demand_cache.h: one cache per owner (the Engine's
// writer side, or a Session), externally synchronized, never shared. An
// entry is keyed by its component (sorted member list) and stamped with the
// Database::version() it is valid for; owners maintain entries forward
// along the commit pipeline's DatabaseDelta chain (engine writer: inside
// ExecTxn/ApplyBulk; sessions: Snapshot::recent_deltas on Adopt) and must
// Clear()/ClearAffected() on rule-set changes and DropAbove() on rollback
// (maintenance mutates entries in place, so an aborted transaction's
// working versions cannot be restored — only discarded; version counters
// alias across rollback, exactly like the demand-cache hazard).
//
// The correctness bar: maintained extents are byte-identical to the
// from-scratch fixpoint at the new version (pinned by tests/core/
// maintain_test.cc and the update-stream fuzzer differentially against
// full recomputation).

#ifndef REL_CORE_EXTENT_CACHE_H_
#define REL_CORE_EXTENT_CACHE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "data/database.h"
#include "data/relation.h"
#include "datalog/eval.h"
#include "datalog/index.h"
#include "datalog/program.h"

namespace rel {

/// A cached Datalog fixpoint plus everything needed to move it forward
/// under a DatabaseDelta. Shared between the component cache below and the
/// demand-cone payloads in core/demand_cache.h.
struct MaintainableExtents {
  /// The program whose fixpoint `extents` is (rules are what matter;
  /// program.facts() is the EDB at the version the entry was built at and
  /// is not consulted during maintenance).
  datalog::Program program;
  /// The full fixpoint: every EDB and IDB predicate's extent, mutated in
  /// place by maintenance. Map nodes (and so arena addresses) are stable;
  /// the persistent IndexCache below depends on that.
  std::map<std::string, Relation> extents;
  /// Post-version base facts of predicates that are BOTH rule heads and
  /// database base relations (DRed re-derivation support; see
  /// datalog::EvaluateDelta's base_facts contract). Updated in lockstep
  /// with the delta.
  std::map<std::string, Relation> base_facts;
  /// Rule-head predicates of `program` that are database relation names
  /// (the ones whose base_facts must track deltas).
  std::set<std::string> head_preds;
  /// Database relation names feeding the program's EDB — the names whose
  /// DatabaseDelta changes translate into an EdbDelta.
  std::set<std::string> base_names;
  /// Rel-level name closure of the component (members, externals, and
  /// everything reachable from their rules). The relevance filter: a delta
  /// touching none of these leaves the extents valid as-is.
  std::set<std::string> closure;
  /// False when the extents cannot be maintained (an external with rules:
  /// its EDB snapshot is a derived value a base delta changes opaquely).
  /// Such entries survive irrelevant deltas but drop on relevant ones.
  bool maintainable = false;
  /// Persistent across maintenance calls so indexes over grown extents take
  /// the pure-append fast path (EvalStats::index_appends) instead of
  /// rebuilding. unique_ptr: IndexCache holds mutexes and cannot move.
  std::unique_ptr<datalog::IndexCache> cache =
      std::make_unique<datalog::IndexCache>();
};

enum class MaintainResult {
  kUntouched,    // delta does not intersect the closure: extents valid as-is
  kMaintained,   // extents moved to the delta's post-state incrementally
  kUnsupported,  // cannot maintain: caller must drop the entry
};

/// Moves `e` forward under `delta`. kUnsupported when the delta is
/// wholesale, touches the closure of a non-maintainable entry, or hits a
/// shape EvaluateDelta rejects. `stats`, when non-null, accumulates the
/// incremental evaluation's counters.
MaintainResult MaintainExtents(MaintainableExtents* e,
                               const DatabaseDelta& delta,
                               const datalog::EvalOptions& opts,
                               datalog::EvalStats* stats);

/// Per-owner cache of lowered-component fixpoints, keyed by component
/// identity (sorted member list) and stamped with a database version.
/// Externally synchronized; see the header comment for the ownership and
/// invalidation contract.
class ExtentCache {
 public:
  struct Entry {
    uint64_t db_version = 0;
    MaintainableExtents ext;
  };

  /// The key for the component whose sorted members are `members`.
  static std::string KeyFor(const std::vector<std::string>& members);

  /// The entry for `key` valid at exactly `db_version`, or nullptr. Counts
  /// a hit or a miss.
  const Entry* Lookup(const std::string& key, uint64_t db_version);

  /// Stores (replacing any previous entry for `key`); the returned
  /// reference is stable until the entry is dropped.
  Entry& Store(std::string key, Entry entry);

  /// Moves every entry at delta.from_version to delta.to_version —
  /// incrementally where the delta is relevant, by re-stamping where it is
  /// not — and drops entries that cannot follow (stale version, wholesale
  /// delta, unmaintainable shape). `opts` configures the incremental
  /// evaluation (threads, iteration cap, plan seed).
  void Maintain(const DatabaseDelta& delta, const datalog::EvalOptions& opts);

  /// Drops every entry stamped with a version greater than `db_version` —
  /// the rollback hook: an aborted transaction's working versions alias
  /// future commits and must not survive as keys.
  void DropAbove(uint64_t db_version);

  /// Drops every entry whose closure intersects `names` (rule-set changes:
  /// a new def for a name only invalidates the components that can read
  /// it).
  void ClearAffected(const std::set<std::string>& names);

  void Clear() { entries_.clear(); }

  size_t size() const { return entries_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t maintained() const { return maintained_; }
  uint64_t restamped() const { return restamped_; }
  uint64_t dropped() const { return dropped_; }
  /// Accumulated counters of every incremental evaluation this cache ran
  /// (delta_inserts / delta_deletes / rederived / index_appends ...).
  const datalog::EvalStats& maintain_stats() const { return maintain_stats_; }

 private:
  /// unique_ptr: entries hold an IndexCache whose indexes point into the
  /// entry's own extents — neither may move after Store.
  std::map<std::string, std::unique_ptr<Entry>> entries_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t maintained_ = 0;
  uint64_t restamped_ = 0;
  uint64_t dropped_ = 0;
  datalog::EvalStats maintain_stats_;
};

}  // namespace rel

#endif  // REL_CORE_EXTENT_CACHE_H_
