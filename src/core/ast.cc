#include "core/ast.h"

namespace rel {

namespace {

std::string BindingToString(const Binding& b) {
  std::string out;
  switch (b.kind) {
    case Binding::Kind::kVar:
      out = b.name;
      break;
    case Binding::Kind::kTupleVar:
      out = b.name + "...";
      break;
    case Binding::Kind::kRelVar:
      out = "{" + b.name + "}";
      break;
    case Binding::Kind::kLiteral:
      out = b.literal.ToString();
      break;
    case Binding::Kind::kWildcard:
      out = "_";
      break;
  }
  if (b.domain) out += " in " + b.domain->ToString();
  return out;
}

std::string JoinChildren(const std::vector<ExprPtr>& children,
                         const char* sep) {
  std::string out;
  for (size_t i = 0; i < children.size(); ++i) {
    if (i > 0) out += sep;
    out += children[i]->ToString();
  }
  return out;
}

std::string BindingsToString(const std::vector<Binding>& bindings) {
  std::string out;
  for (size_t i = 0; i < bindings.size(); ++i) {
    if (i > 0) out += ", ";
    out += BindingToString(bindings[i]);
  }
  return out;
}

}  // namespace

const char* ExprKindName(ExprKind kind) {
  switch (kind) {
    case ExprKind::kLiteral: return "literal";
    case ExprKind::kRelNameLit: return "relation-name literal";
    case ExprKind::kIdent: return "identifier";
    case ExprKind::kTupleVar: return "tuple variable";
    case ExprKind::kWildcard: return "wildcard";
    case ExprKind::kWildcardTuple: return "tuple wildcard";
    case ExprKind::kProduct: return "product";
    case ExprKind::kUnion: return "union";
    case ExprKind::kWhere: return "where";
    case ExprKind::kAbstraction: return "abstraction";
    case ExprKind::kApplication: return "application";
    case ExprKind::kAnd: return "and";
    case ExprKind::kOr: return "or";
    case ExprKind::kNot: return "not";
    case ExprKind::kExists: return "exists";
    case ExprKind::kForall: return "forall";
    case ExprKind::kTrueLit: return "true";
    case ExprKind::kFalseLit: return "false";
  }
  return "?";
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      return literal.ToString();
    case ExprKind::kRelNameLit:
      return ":" + name;
    case ExprKind::kIdent:
      return name;
    case ExprKind::kTupleVar:
      return name + "...";
    case ExprKind::kWildcard:
      return "_";
    case ExprKind::kWildcardTuple:
      return "_...";
    case ExprKind::kProduct:
      return "(" + JoinChildren(children, ", ") + ")";
    case ExprKind::kUnion:
      return "{" + JoinChildren(children, "; ") + "}";
    case ExprKind::kWhere:
      return "(" + children[0]->ToString() + " where " +
             children[1]->ToString() + ")";
    case ExprKind::kAbstraction: {
      const char* open = square ? "[" : "(";
      const char* close = square ? "]" : ")";
      return std::string("{") + open + BindingsToString(bindings) + close +
             ": " + body->ToString() + "}";
    }
    case ExprKind::kApplication: {
      std::string out = target->ToString();
      out += full ? "(" : "[";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) out += ", ";
        const Arg& a = args[i];
        if (a.annotation == Annotation::kFirstOrder) {
          out += "?{" + a.expr->ToString() + "}";
        } else if (a.annotation == Annotation::kSecondOrder) {
          out += "&{" + a.expr->ToString() + "}";
        } else {
          out += a.expr->ToString();
        }
      }
      out += full ? ")" : "]";
      return out;
    }
    case ExprKind::kAnd:
      return "(" + JoinChildren(children, " and ") + ")";
    case ExprKind::kOr:
      return "(" + JoinChildren(children, " or ") + ")";
    case ExprKind::kNot:
      return "not " + children[0]->ToString();
    case ExprKind::kExists:
      return "exists((" + BindingsToString(bindings) + ") | " +
             body->ToString() + ")";
    case ExprKind::kForall:
      return "forall((" + BindingsToString(bindings) + ") | " +
             body->ToString() + ")";
    case ExprKind::kTrueLit:
      return "true";
    case ExprKind::kFalseLit:
      return "false";
  }
  return "?";
}

std::string Def::ToString() const {
  std::string out = is_ic ? "ic " : "def ";
  if (inline_hint) out = "@inline " + out;
  out += name;
  out += square_head ? "[" : "(";
  out += BindingsToString(params);
  out += square_head ? "]" : ")";
  out += is_ic ? " requires " : " : ";
  out += body->ToString();
  return out;
}

ExprPtr MakeExpr(ExprKind kind, int line, int column) {
  auto e = std::make_shared<Expr>();
  e->kind = kind;
  e->line = line;
  e->column = column;
  return e;
}

ExprPtr MakeLiteral(Value v, int line, int column) {
  auto e = MakeExpr(ExprKind::kLiteral, line, column);
  e->literal = v;
  return e;
}

ExprPtr MakeIdent(const std::string& name, int line, int column) {
  auto e = MakeExpr(ExprKind::kIdent, line, column);
  e->name = name;
  return e;
}

ExprPtr MakeApplication(const std::string& callee, std::vector<Arg> args,
                        bool full, int line, int column) {
  auto e = MakeExpr(ExprKind::kApplication, line, column);
  e->target = MakeIdent(callee, line, column);
  e->args = std::move(args);
  e->full = full;
  return e;
}

}  // namespace rel
