#include "core/analysis.h"

#include <algorithm>
#include <cstdint>
#include <functional>

#include "core/builtins.h"
#include "core/parser.h"

namespace rel {

namespace {

/// Binding names introduced by an abstraction/quantifier/rule head.
void AddLocals(const std::vector<Binding>& bindings,
               std::set<std::string>* locals) {
  for (const Binding& b : bindings) {
    if (b.kind == Binding::Kind::kVar || b.kind == Binding::Kind::kTupleVar ||
        b.kind == Binding::Kind::kRelVar) {
      locals->insert(b.name);
    }
  }
}

/// The stdlib aggregation combinators whose single second-order argument is
/// an aggregation input. Name-based, so a user redefinition of e.g. `min`
/// could mislabel an edge — which is why the lowering pass re-verifies each
/// aggregate use structurally (canonical `reduce[rel_primitive_*, A]` body)
/// before acting on an aggregation-recursive verdict. The interpreter never
/// consumes the split (UsesReplacement treats both non-monotone polarities
/// alike), so a mislabel can only cost a rejected lowering attempt.
bool IsAggregationCombinator(const std::string& name) {
  return name == "min" || name == "max" || name == "sum" || name == "count";
}

}  // namespace

ProgramAnalysis::ProgramAnalysis(const std::vector<std::shared_ptr<Def>>& defs)
    : ProgramAnalysis(nullptr, 0, defs) {}

ProgramAnalysis::ProgramAnalysis(
    const ProgramAnalysis* prefix, size_t prefix_size,
    const std::vector<std::shared_ptr<Def>>& defs) {
  // Extension safety: every appended non-ic def must name a relation the
  // prefix neither defines nor references. Then all new dependency edges
  // run from appended names to prefix names (never back), so no prefix
  // component, signature, or monotonicity verdict can change.
  size_t begin = 0;
  if (prefix != nullptr && prefix_size <= defs.size()) {
    bool safe = true;
    for (size_t i = prefix_size; i < defs.size() && safe; ++i) {
      const Def& def = *defs[i];
      if (def.is_ic) continue;  // ics take no part in the dependency graph
      safe = !prefix->HasRules(def.name) && !prefix->IsReferenced(def.name);
    }
    if (safe) {
      base_ = prefix;
      begin = prefix_size;
    }
  }

  // Pass 1: signatures (leading relation-variable parameter counts).
  for (size_t i = begin; i < defs.size(); ++i) {
    const auto& def = defs[i];
    if (def->is_ic) continue;
    size_t so = 0;
    while (so < def->params.size() &&
           def->params[so].kind == Binding::Kind::kRelVar) {
      ++so;
    }
    size_t& entry = max_sig_[def->name];
    entry = std::max(entry, so);
  }

  // Pass 2: references.
  for (size_t i = begin; i < defs.size(); ++i) {
    const auto& def = defs[i];
    if (def->is_ic) continue;
    std::set<std::string> locals;
    AddLocals(def->params, &locals);
    std::vector<Ref>& refs = edges_[def->name];
    for (const Binding& b : def->params) {
      if (b.domain) CollectRefs(b.domain, Polarity::kMonotone, &locals, &refs);
    }
    CollectRefs(def->body, Polarity::kMonotone, &locals, &refs);
    for (const Ref& ref : refs) {
      referenced_.insert(ref.target);
      // A def uses aggregation when some reference flows through an
      // aggregation input, or when it applies one of the combinators
      // directly (the callee ident is itself a ref). The second clause
      // matters when the aggregation input names no relation at all —
      // `sum[(v) : range(0, n, 1, v)]` reads only a builtin generator, so
      // the input produces no refs, yet the def still qualifies for the
      // aggregate lowering. False positives (a combinator applied in some
      // non-canonical way) are harmless: the lowering validates structure
      // and falls back to the interpreter.
      if (ref.polarity == Polarity::kAggregation ||
          IsAggregationCombinator(ref.target)) {
        aggregation_users_.insert(def->name);
      }
    }
  }

  // Pass 3: Tarjan SCC over names with local rules. In extension mode the
  // graph is the appended slice only: an edge into a prefix-ruled name
  // cannot close a cycle (the prefix never references appended names, by
  // the safety check), so those targets are skipped like base relations.
  std::map<std::string, int> index, low;
  std::vector<std::string> stack;
  std::set<std::string> on_stack;
  int next_index = 0;
  int next_component = base_ == nullptr ? 0 : base_->component_limit_;

  std::function<void(const std::string&)> strongconnect =
      [&](const std::string& v) {
        index[v] = low[v] = next_index++;
        stack.push_back(v);
        on_stack.insert(v);
        auto it = edges_.find(v);
        if (it != edges_.end()) {
          for (const Ref& ref : it->second) {
            if (!edges_.count(ref.target)) continue;  // base or builtin
            if (!index.count(ref.target)) {
              strongconnect(ref.target);
              low[v] = std::min(low[v], low[ref.target]);
            } else if (on_stack.count(ref.target)) {
              low[v] = std::min(low[v], index[ref.target]);
            }
          }
        }
        if (low[v] == index[v]) {
          int comp = next_component++;
          for (;;) {
            std::string w = stack.back();
            stack.pop_back();
            on_stack.erase(w);
            component_[w] = comp;
            if (w == v) break;
          }
        }
      };

  for (const auto& [name, refs] : edges_) {
    (void)refs;
    if (!index.count(name)) strongconnect(name);
  }
  component_limit_ = next_component;

  // Pass 4: classify components. Local maps only: a local edge into a
  // prefix component is cross-component by construction.
  for (const auto& [name, refs] : edges_) {
    int comp = component_[name];
    for (const Ref& ref : refs) {
      auto it = component_.find(ref.target);
      if (it == component_.end()) continue;
      if (it->second != comp) continue;
      recursive_components_.insert(comp);
      if (ref.polarity != Polarity::kMonotone) {
        replacement_components_.insert(comp);
        if (ref.polarity == Polarity::kAggregation) {
          aggregation_components_.insert(comp);
        } else {
          nonmonotone_components_.insert(comp);
        }
      }
    }
  }
}

bool ProgramAnalysis::HasRules(const std::string& name) const {
  if (edges_.count(name)) return true;
  return base_ != nullptr && base_->HasRules(name);
}

bool ProgramAnalysis::IsReferenced(const std::string& name) const {
  if (referenced_.count(name)) return true;
  return base_ != nullptr && base_->IsReferenced(name);
}

size_t ProgramAnalysis::SigOf(const std::string& name) const {
  auto it = max_sig_.find(name);
  if (it != max_sig_.end()) return it->second;
  return base_ == nullptr ? 0 : base_->SigOf(name);
}

void ProgramAnalysis::CollectRefs(const ExprPtr& expr, Polarity polarity,
                                  std::set<std::string>* locals,
                                  std::vector<Ref>* out) const {
  if (!expr) return;
  switch (expr->kind) {
    case ExprKind::kIdent:
      if (!locals->count(expr->name) && !FindBuiltin(expr->name)) {
        out->push_back({expr->name, polarity});
      }
      return;
    case ExprKind::kLiteral:
    case ExprKind::kRelNameLit:
    case ExprKind::kTupleVar:
    case ExprKind::kWildcard:
    case ExprKind::kWildcardTuple:
    case ExprKind::kTrueLit:
    case ExprKind::kFalseLit:
      return;
    case ExprKind::kNot:
      // Polarity flips: an even number of negations is monotone again. A
      // negation inside an aggregation input is no longer aggregation-shaped
      // (and keeps the historical parity verdict: non-monotone -> monotone).
      CollectRefs(expr->children[0],
                  polarity == Polarity::kMonotone ? Polarity::kNonMonotone
                                                  : Polarity::kMonotone,
                  locals, out);
      return;
    case ExprKind::kForall: {
      std::set<std::string> inner = *locals;
      AddLocals(expr->bindings, &inner);
      for (const Binding& b : expr->bindings) {
        if (b.domain) CollectRefs(b.domain, polarity, locals, out);
      }
      CollectRefs(expr->body, Polarity::kNonMonotone, &inner, out);
      return;
    }
    case ExprKind::kExists:
    case ExprKind::kAbstraction: {
      std::set<std::string> inner = *locals;
      AddLocals(expr->bindings, &inner);
      for (const Binding& b : expr->bindings) {
        if (b.domain) CollectRefs(b.domain, polarity, locals, out);
      }
      CollectRefs(expr->body, polarity, &inner, out);
      return;
    }
    case ExprKind::kApplication: {
      CollectRefs(expr->target, polarity, locals, out);
      // Which leading arguments are second-order, and does the callee make
      // them aggregation inputs? `reduce`'s second operand and the single
      // relation argument of the stdlib combinators min/max/sum/count are
      // aggregation-shaped; every other second-order position (including
      // reduce's fold operator) is conservatively kNonMonotone.
      size_t sig = 0;
      bool aggregation_callee = false;
      size_t reduce_input = SIZE_MAX;  // arg index of reduce's input, if any
      if (expr->target->kind == ExprKind::kIdent) {
        const std::string& callee = expr->target->name;
        if (callee == builtin_names::kReduce) {
          sig = 2;
          reduce_input = 1;
        } else if (!locals->count(callee)) {
          sig = SigOf(callee);
          aggregation_callee = IsAggregationCombinator(callee);
        }
      }
      for (size_t i = 0; i < expr->args.size(); ++i) {
        const Arg& arg = expr->args[i];
        if (!arg.expr) continue;
        bool so = i < sig || arg.annotation == Annotation::kSecondOrder;
        // References inside second-order arguments are conservatively
        // non-monotone: aggregation, emptiness tests and higher-order
        // operators may all invert polarity. Aggregation inputs get the
        // kAggregation refinement — unless the surrounding context is
        // already non-monotone for a non-aggregation reason.
        Polarity child = polarity;
        if (so) {
          bool agg_input = aggregation_callee || i == reduce_input;
          child = agg_input && polarity != Polarity::kNonMonotone
                      ? Polarity::kAggregation
                      : Polarity::kNonMonotone;
        }
        CollectRefs(arg.expr, child, locals, out);
      }
      return;
    }
    default:
      for (const ExprPtr& child : expr->children) {
        CollectRefs(child, polarity, locals, out);
      }
      if (expr->body) CollectRefs(expr->body, polarity, locals, out);
      if (expr->target) CollectRefs(expr->target, polarity, locals, out);
      return;
  }
}

bool ProgramAnalysis::UsesReplacement(const std::string& name) const {
  auto it = component_.find(name);
  if (it == component_.end()) {
    return base_ != nullptr && base_->UsesReplacement(name);
  }
  return replacement_components_.count(it->second) > 0;
}

bool ProgramAnalysis::AggregationRecursive(const std::string& name) const {
  auto it = component_.find(name);
  if (it == component_.end()) {
    return base_ != nullptr && base_->AggregationRecursive(name);
  }
  return recursive_components_.count(it->second) > 0 &&
         aggregation_components_.count(it->second) > 0 &&
         nonmonotone_components_.count(it->second) == 0;
}

bool ProgramAnalysis::UsesAggregation(const std::string& name) const {
  if (aggregation_users_.count(name)) return true;
  // Names with local edges never delegate (an appended def fully shadows
  // lookups for its name); names without rules here may live in the base.
  if (edges_.count(name)) return false;
  return base_ != nullptr && base_->UsesAggregation(name);
}

bool ProgramAnalysis::IsRecursive(const std::string& name) const {
  auto it = component_.find(name);
  if (it == component_.end()) {
    return base_ != nullptr && base_->IsRecursive(name);
  }
  return recursive_components_.count(it->second) > 0;
}

int ProgramAnalysis::ComponentOf(const std::string& name) const {
  auto it = component_.find(name);
  if (it == component_.end()) {
    return base_ == nullptr ? -1 : base_->ComponentOf(name);
  }
  return it->second;
}

std::vector<std::string> ProgramAnalysis::ComponentMembers(
    const std::string& name) const {
  std::vector<std::string> out;
  auto it = component_.find(name);
  if (it == component_.end()) {
    // A component lives entirely on one side: appended names never join a
    // prefix component (extension safety), so delegate whole.
    return base_ == nullptr ? out : base_->ComponentMembers(name);
  }
  for (const auto& [member, comp] : component_) {
    if (comp == it->second) out.push_back(member);
  }
  return out;  // std::map iteration is already sorted
}

std::set<std::string> ProgramAnalysis::DefReferences(const Def& def) const {
  std::set<std::string> locals;
  AddLocals(def.params, &locals);
  std::vector<Ref> refs;
  for (const Binding& b : def.params) {
    if (b.domain) CollectRefs(b.domain, Polarity::kMonotone, &locals, &refs);
  }
  CollectRefs(def.body, Polarity::kMonotone, &locals, &refs);
  std::set<std::string> out;
  for (const Ref& ref : refs) out.insert(ref.target);
  return out;
}

std::set<std::string> ProgramAnalysis::References(
    const std::string& name) const {
  auto it = edges_.find(name);
  if (it == edges_.end()) {
    return base_ == nullptr ? std::set<std::string>{}
                            : base_->References(name);
  }
  std::set<std::string> out;
  for (const Ref& ref : it->second) out.insert(ref.target);
  return out;
}

}  // namespace rel
