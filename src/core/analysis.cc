#include "core/analysis.h"

#include <algorithm>
#include <functional>

#include "core/builtins.h"
#include "core/parser.h"

namespace rel {

namespace {

/// Binding names introduced by an abstraction/quantifier/rule head.
void AddLocals(const std::vector<Binding>& bindings,
               std::set<std::string>* locals) {
  for (const Binding& b : bindings) {
    if (b.kind == Binding::Kind::kVar || b.kind == Binding::Kind::kTupleVar ||
        b.kind == Binding::Kind::kRelVar) {
      locals->insert(b.name);
    }
  }
}

}  // namespace

ProgramAnalysis::ProgramAnalysis(const std::vector<std::shared_ptr<Def>>& defs)
    : ProgramAnalysis(nullptr, 0, defs) {}

ProgramAnalysis::ProgramAnalysis(
    const ProgramAnalysis* prefix, size_t prefix_size,
    const std::vector<std::shared_ptr<Def>>& defs) {
  // Extension safety: every appended non-ic def must name a relation the
  // prefix neither defines nor references. Then all new dependency edges
  // run from appended names to prefix names (never back), so no prefix
  // component, signature, or monotonicity verdict can change.
  size_t begin = 0;
  if (prefix != nullptr && prefix_size <= defs.size()) {
    bool safe = true;
    for (size_t i = prefix_size; i < defs.size() && safe; ++i) {
      const Def& def = *defs[i];
      if (def.is_ic) continue;  // ics take no part in the dependency graph
      safe = !prefix->HasRules(def.name) && !prefix->IsReferenced(def.name);
    }
    if (safe) {
      base_ = prefix;
      begin = prefix_size;
    }
  }

  // Pass 1: signatures (leading relation-variable parameter counts).
  for (size_t i = begin; i < defs.size(); ++i) {
    const auto& def = defs[i];
    if (def->is_ic) continue;
    size_t so = 0;
    while (so < def->params.size() &&
           def->params[so].kind == Binding::Kind::kRelVar) {
      ++so;
    }
    size_t& entry = max_sig_[def->name];
    entry = std::max(entry, so);
  }

  // Pass 2: references.
  for (size_t i = begin; i < defs.size(); ++i) {
    const auto& def = defs[i];
    if (def->is_ic) continue;
    std::set<std::string> locals;
    AddLocals(def->params, &locals);
    std::vector<Ref>& refs = edges_[def->name];
    for (const Binding& b : def->params) {
      if (b.domain) CollectRefs(b.domain, /*non_monotone=*/false, &locals, &refs);
    }
    CollectRefs(def->body, /*non_monotone=*/false, &locals, &refs);
    for (const Ref& ref : refs) referenced_.insert(ref.target);
  }

  // Pass 3: Tarjan SCC over names with local rules. In extension mode the
  // graph is the appended slice only: an edge into a prefix-ruled name
  // cannot close a cycle (the prefix never references appended names, by
  // the safety check), so those targets are skipped like base relations.
  std::map<std::string, int> index, low;
  std::vector<std::string> stack;
  std::set<std::string> on_stack;
  int next_index = 0;
  int next_component = base_ == nullptr ? 0 : base_->component_limit_;

  std::function<void(const std::string&)> strongconnect =
      [&](const std::string& v) {
        index[v] = low[v] = next_index++;
        stack.push_back(v);
        on_stack.insert(v);
        auto it = edges_.find(v);
        if (it != edges_.end()) {
          for (const Ref& ref : it->second) {
            if (!edges_.count(ref.target)) continue;  // base or builtin
            if (!index.count(ref.target)) {
              strongconnect(ref.target);
              low[v] = std::min(low[v], low[ref.target]);
            } else if (on_stack.count(ref.target)) {
              low[v] = std::min(low[v], index[ref.target]);
            }
          }
        }
        if (low[v] == index[v]) {
          int comp = next_component++;
          for (;;) {
            std::string w = stack.back();
            stack.pop_back();
            on_stack.erase(w);
            component_[w] = comp;
            if (w == v) break;
          }
        }
      };

  for (const auto& [name, refs] : edges_) {
    (void)refs;
    if (!index.count(name)) strongconnect(name);
  }
  component_limit_ = next_component;

  // Pass 4: classify components. Local maps only: a local edge into a
  // prefix component is cross-component by construction.
  for (const auto& [name, refs] : edges_) {
    int comp = component_[name];
    for (const Ref& ref : refs) {
      auto it = component_.find(ref.target);
      if (it == component_.end()) continue;
      if (it->second != comp) continue;
      recursive_components_.insert(comp);
      if (ref.non_monotone) replacement_components_.insert(comp);
    }
  }
}

bool ProgramAnalysis::HasRules(const std::string& name) const {
  if (edges_.count(name)) return true;
  return base_ != nullptr && base_->HasRules(name);
}

bool ProgramAnalysis::IsReferenced(const std::string& name) const {
  if (referenced_.count(name)) return true;
  return base_ != nullptr && base_->IsReferenced(name);
}

size_t ProgramAnalysis::SigOf(const std::string& name) const {
  auto it = max_sig_.find(name);
  if (it != max_sig_.end()) return it->second;
  return base_ == nullptr ? 0 : base_->SigOf(name);
}

void ProgramAnalysis::CollectRefs(const ExprPtr& expr, bool non_monotone,
                                  std::set<std::string>* locals,
                                  std::vector<Ref>* out) const {
  if (!expr) return;
  switch (expr->kind) {
    case ExprKind::kIdent:
      if (!locals->count(expr->name) && !FindBuiltin(expr->name)) {
        out->push_back({expr->name, non_monotone});
      }
      return;
    case ExprKind::kLiteral:
    case ExprKind::kRelNameLit:
    case ExprKind::kTupleVar:
    case ExprKind::kWildcard:
    case ExprKind::kWildcardTuple:
    case ExprKind::kTrueLit:
    case ExprKind::kFalseLit:
      return;
    case ExprKind::kNot:
      // Polarity flips: an even number of negations is monotone again.
      CollectRefs(expr->children[0], !non_monotone, locals, out);
      return;
    case ExprKind::kForall: {
      std::set<std::string> inner = *locals;
      AddLocals(expr->bindings, &inner);
      for (const Binding& b : expr->bindings) {
        if (b.domain) CollectRefs(b.domain, non_monotone, locals, out);
      }
      CollectRefs(expr->body, /*non_monotone=*/true, &inner, out);
      return;
    }
    case ExprKind::kExists:
    case ExprKind::kAbstraction: {
      std::set<std::string> inner = *locals;
      AddLocals(expr->bindings, &inner);
      for (const Binding& b : expr->bindings) {
        if (b.domain) CollectRefs(b.domain, non_monotone, locals, out);
      }
      CollectRefs(expr->body, non_monotone, &inner, out);
      return;
    }
    case ExprKind::kApplication: {
      CollectRefs(expr->target, non_monotone, locals, out);
      // Which leading arguments are second-order?
      size_t sig = 0;
      if (expr->target->kind == ExprKind::kIdent) {
        const std::string& callee = expr->target->name;
        if (callee == builtin_names::kReduce) {
          sig = 2;
        } else if (!locals->count(callee)) {
          sig = SigOf(callee);
        }
      }
      for (size_t i = 0; i < expr->args.size(); ++i) {
        const Arg& arg = expr->args[i];
        if (!arg.expr) continue;
        bool so = i < sig || arg.annotation == Annotation::kSecondOrder;
        // References inside second-order arguments are conservatively
        // non-monotone: aggregation, emptiness tests and higher-order
        // operators may all invert polarity.
        CollectRefs(arg.expr, non_monotone || so, locals, out);
      }
      return;
    }
    default:
      for (const ExprPtr& child : expr->children) {
        CollectRefs(child, non_monotone, locals, out);
      }
      if (expr->body) CollectRefs(expr->body, non_monotone, locals, out);
      if (expr->target) CollectRefs(expr->target, non_monotone, locals, out);
      return;
  }
}

bool ProgramAnalysis::UsesReplacement(const std::string& name) const {
  auto it = component_.find(name);
  if (it == component_.end()) {
    return base_ != nullptr && base_->UsesReplacement(name);
  }
  return replacement_components_.count(it->second) > 0;
}

bool ProgramAnalysis::IsRecursive(const std::string& name) const {
  auto it = component_.find(name);
  if (it == component_.end()) {
    return base_ != nullptr && base_->IsRecursive(name);
  }
  return recursive_components_.count(it->second) > 0;
}

int ProgramAnalysis::ComponentOf(const std::string& name) const {
  auto it = component_.find(name);
  if (it == component_.end()) {
    return base_ == nullptr ? -1 : base_->ComponentOf(name);
  }
  return it->second;
}

std::vector<std::string> ProgramAnalysis::ComponentMembers(
    const std::string& name) const {
  std::vector<std::string> out;
  auto it = component_.find(name);
  if (it == component_.end()) {
    // A component lives entirely on one side: appended names never join a
    // prefix component (extension safety), so delegate whole.
    return base_ == nullptr ? out : base_->ComponentMembers(name);
  }
  for (const auto& [member, comp] : component_) {
    if (comp == it->second) out.push_back(member);
  }
  return out;  // std::map iteration is already sorted
}

std::set<std::string> ProgramAnalysis::DefReferences(const Def& def) const {
  std::set<std::string> locals;
  AddLocals(def.params, &locals);
  std::vector<Ref> refs;
  for (const Binding& b : def.params) {
    if (b.domain) CollectRefs(b.domain, /*non_monotone=*/false, &locals, &refs);
  }
  CollectRefs(def.body, /*non_monotone=*/false, &locals, &refs);
  std::set<std::string> out;
  for (const Ref& ref : refs) out.insert(ref.target);
  return out;
}

std::set<std::string> ProgramAnalysis::References(
    const std::string& name) const {
  auto it = edges_.find(name);
  if (it == edges_.end()) {
    return base_ == nullptr ? std::set<std::string>{}
                            : base_->References(name);
  }
  std::set<std::string> out;
  for (const Ref& ref : it->second) out.insert(ref.target);
  return out;
}

}  // namespace rel
