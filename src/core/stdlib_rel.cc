// The Rel standard library, written in Rel (Section 5 of the paper).
//
// Following the paper's philosophy ("define a small core and provide the
// functionality to build libraries"), everything here is an ordinary library
// definition: aggregates are built from the single `reduce` primitive
// (Section 5.2), relational algebra, linear algebra and the graph library
// are plain Rel rules (Sections 5.3–5.4). Arithmetic wrappers delegate to
// rel_primitive_* externals exactly as described in Section 5.1.

#include "core/engine.h"

namespace rel {

const char* StdlibSource() {
  return R"rel(
// ===========================================================================
// Arithmetic and scalar functions (Section 5.1): thin wrappers over the
// rel_primitive_* externals. These are unsafe standalone (infinite), so the
// engine inlines them at call sites; @inline records that intent.
// ===========================================================================
@inline def add[x, y] = rel_primitive_add[x, y]
@inline def subtract[x, y] = rel_primitive_subtract[x, y]
@inline def multiply[x, y] = rel_primitive_multiply[x, y]
@inline def divide[x, y] = rel_primitive_divide[x, y]
@inline def modulo[x, y] = rel_primitive_modulo[x, y]
@inline def power[x, y] = rel_primitive_power[x, y]
@inline def minimum[x, y] = rel_primitive_minimum[x, y]
@inline def maximum[x, y] = rel_primitive_maximum[x, y]
@inline def log[x, y] = rel_primitive_log[x, y]
@inline def sqrt[x] = rel_primitive_sqrt[x]
@inline def natural_log[x] = rel_primitive_natural_log[x]
@inline def natural_exp[x] = rel_primitive_natural_exp[x]
@inline def abs_value[x] = rel_primitive_abs[x]
@inline def floor[x] = rel_primitive_floor[x]
@inline def ceil[x] = rel_primitive_ceil[x]
@inline def round[x] = rel_primitive_round[x]
@inline def concat[x, y] = rel_primitive_concat[x, y]
@inline def string_length[x] = rel_primitive_string_length[x]
@inline def uppercase[x] = rel_primitive_uppercase[x]
@inline def lowercase[x] = rel_primitive_lowercase[x]
@inline def substring[s, i, j] = rel_primitive_substring[s, i, j]
@inline def parse_int[s] = rel_primitive_parse_int[s]
@inline def parse_float[s] = rel_primitive_parse_float[s]
@inline def string[x] = rel_primitive_string[x]

// Infix operators as library relations (Section 5.1).
def (+)(x, y, z) : rel_primitive_add(x, y, z)
def (-)(x, y, z) : rel_primitive_subtract(x, y, z)
def (*)(x, y, z) : rel_primitive_multiply(x, y, z)
def (/)(x, y, z) : rel_primitive_divide(x, y, z)
def (%)(x, y, z) : rel_primitive_modulo(x, y, z)
def (^)(x, y, z) : rel_primitive_power(x, y, z)

// ===========================================================================
// Core relational operators (Sections 5.1 and 5.3.1).
// ===========================================================================

// Emptiness test: true iff R has no tuples.
def empty({R}) : not exists((x...) | R(x...))

// Join on the last position of A and the first of B, dropping it (infix .).
def dot_join({A}, {B}, x..., y...) : exists((t) | A(x..., t) and B(t, y...))

// A with B's entries for keys A does not define (infix <++).
def left_override({A}, {B}, x...) : A(x...)
def left_override({A}, {B}, x..., v) : B(x..., v) and not A(x..., _)

// Relational algebra as a library: Cartesian product, set operators,
// selection. Arity-independent thanks to tuple variables.
def Product({A}, {B}, x..., y...) : A(x...) and B(y...)
def Union({A}, {B}, x...) : A(x...) or B(x...)
def Intersect({A}, {B}, x...) : A(x...) and B(x...)
def Minus({A}, {B}, x...) : A(x...) and not B(x...)
def Select({A}, {Cond}, x...) : A(x...) and Cond(x...)

// ===========================================================================
// Aggregation (Section 5.2): everything reduces to `reduce`.
// ===========================================================================
def sum[{A}] : reduce[rel_primitive_add, A]
def count[{A}] : reduce[rel_primitive_add, (A, 1)]
def min[{A}] : reduce[rel_primitive_minimum, A]
def max[{A}] : reduce[rel_primitive_maximum, A]
def prod[{A}] : reduce[rel_primitive_multiply, A]
def avg[{A}] : sum[A] / count[A]

// Rows of A whose last column attains the extreme value.
def Argmin[{A}] : {A.(min[A])}
def Argmax[{A}] : {A.(max[A])}

// ===========================================================================
// Linear algebra (Section 5.3.2): vectors are (index, value) pairs,
// matrices are (row, col, value) triples.
// ===========================================================================
def ScalarProd[{U}, {V}] : sum[[k] : U[k] * V[k]]
def MatrixMult[{A}, {B}, i, j] : sum[[k] : A[i, k] * B[k, j]]
def MatrixVector[{A}, {V}, i] : sum[[k] : A[i, k] * V[k]]
def Transpose({A}, i, j, v) : A(j, i, v)
def dimension[{Matrix}] : max[(k) : Matrix(k, _, _)]

// ===========================================================================
// Graph library (Section 5.4). A graph is an edge relation E (pairs of
// nodes); V, when needed, is the node set.
// ===========================================================================
def Nodes({E}, x) : E(x, _) or E(_, x)

def TC({E}, x, y) : E(x, y)
def TC({E}, x, y) : exists((z) | E(x, z) and TC[E](z, y))

def indegree[{E}, x in Nodes[E]] : count[(y) : E(y, x)] <++ 0
def outdegree[{E}, x in Nodes[E]] : count[(y) : E(x, y)] <++ 0

def triangle_count[{E}] :
    count[(x, y, z) : E(x, y) and E(y, z) and E(z, x)
                      and x < y and y < z] <++ 0

// Symmetric view of a directed edge relation.
def UndirectedEdge({E}, x, y) : E(x, y) or E(y, x)

// Reflexive-transitive reachability.
def Reachable({E}, x, y) : Nodes[E](x) and x = y
def Reachable({E}, x, y) : TC[E](x, y)

// Weakly connected components by minimum-label propagation: every node is
// labeled with the smallest node reachable over undirected edges. The
// recursion through `min` is non-stratified; replacement iteration
// converges because labels only decrease.
def connected_component({E}, x, l) :
    Nodes[E](x) and
    l = min[(y) : y = x or
                  exists((z) | UndirectedEdge[E](x, z) and
                               connected_component[E](z, y))]

// All-pairs shortest paths, aggregation formulation (Sections 1 and 5.4).
def APSP({V}, {E}, x, y, 0) : V(x) and V(y) and x = y
def APSP({V}, {E}, x, y, i) :
    i = min[(j) : exists((z) | E(x, z) and APSP[V, E](z, y, j - 1))]

// All-pairs shortest paths, guarded formulation (Section 5.4).
def APSP_guarded({V}, {E}, x, y, 0) : V(x) and V(y) and x = y
def APSP_guarded({V}, {E}, x, y, i) :
    exists((z in V) | E(x, z) and APSP_guarded[V, E](z, y, i - 1)) and
    not exists((j in Int) | j < i and APSP_guarded[V, E](x, y, j))

// PageRank with a stop condition (Section 5.4): iterate next = G * P until
// the max-norm delta between consecutive vectors is at most 0.005. The
// recursion through `empty` / `not` is non-stratified; the engine gives it
// the replacement-fixpoint semantics described in DESIGN.md.
def pagerank_vector[d, i] : 1.0 / d where range(1, d, 1, i)
def pagerank_delta[{V1}, {V2}] : max[[k] : rel_primitive_abs[V1[k] - V2[k]]]
def pagerank_next[{G}, {P}] : MatrixVector[G, P]
def pagerank_stop({G}, {P}) : pagerank_delta[pagerank_next[G, P], P] > 0.005

def PageRank[{G}] : pagerank_vector[dimension[G]] where empty(PageRank[G])
def PageRank[{G}] :
    pagerank_next[G, PageRank[G]]
    where not empty(PageRank[G]) and pagerank_stop(G, PageRank[G])
def PageRank[{G}] :
    PageRank[G]
    where not empty(PageRank[G]) and not pagerank_stop(G, PageRank[G])
)rel";
}

}  // namespace rel
