// Recursive-descent parser for Rel (grammar of Figure 2 plus the paper's
// infix sugar). See ast.h for the desugarings applied during parsing.

#ifndef REL_CORE_PARSER_H_
#define REL_CORE_PARSER_H_

#include <memory>
#include <string_view>
#include <vector>

#include "core/ast.h"

namespace rel {

/// Parses a whole program (a sequence of `def` / `ic` rules).
Program ParseProgram(std::string_view source);

/// Parses a whole program into individually-owned defs — the form the
/// Engine and Session append to a shared persistent rule prefix.
std::vector<std::shared_ptr<Def>> ParseToSharedDefs(std::string_view source);

/// Parses a single expression (used by tests and the REPL-style API).
ExprPtr ParseExpression(std::string_view source);

/// Names of the builtin relations that the infix operators desugar to.
/// Exposed so the builtin registry and the parser cannot drift apart.
namespace builtin_names {
inline constexpr char kAdd[] = "rel_primitive_add";
inline constexpr char kSubtract[] = "rel_primitive_subtract";
inline constexpr char kMultiply[] = "rel_primitive_multiply";
inline constexpr char kDivide[] = "rel_primitive_divide";
inline constexpr char kModulo[] = "rel_primitive_modulo";
inline constexpr char kPower[] = "rel_primitive_power";
inline constexpr char kNegate[] = "rel_primitive_negate";
inline constexpr char kEq[] = "rel_primitive_eq";
inline constexpr char kNeq[] = "rel_primitive_neq";
inline constexpr char kLt[] = "rel_primitive_lt";
inline constexpr char kLe[] = "rel_primitive_lt_eq";
inline constexpr char kGt[] = "rel_primitive_gt";
inline constexpr char kGe[] = "rel_primitive_gt_eq";
inline constexpr char kDotJoin[] = "dot_join";
inline constexpr char kLeftOverride[] = "left_override";
inline constexpr char kReduce[] = "reduce";
}  // namespace builtin_names

}  // namespace rel

#endif  // REL_CORE_PARSER_H_
