#include "core/builtins.h"

#include <cmath>
#include <map>
#include <memory>
#include <regex>

#include "base/error.h"

namespace rel {

namespace {

bool NumericEqual(const Value& a, const Value& b) {
  return a.NumericCompare(b) == Value::Ordering::kEqual;
}

bool BothNumbers(const Value& a, const Value& b) {
  return a.is_number() && b.is_number();
}

// --- arithmetic kernels -----------------------------------------------------

/// Signed-overflow guard for the int lanes of +, -, * and ^: i64 wraparound
/// is UB, so the checked lanes raise kType instead — the SAME error the
/// classical engine's CheckedI64 raises (datalog/eval.cc), so the
/// differential suites see one behavior on both paths instead of two
/// different wrapped values.
int64_t CheckedInt(int64_t a, const char* op, int64_t b, bool overflow,
                   int64_t r) {
  if (overflow) {
    throw RelError(ErrorKind::kType,
                   "integer overflow: " + std::to_string(a) + " " + op + " " +
                       std::to_string(b) + " exceeds the int64 range");
  }
  return r;
}

std::optional<Value> NumAdd(const Value& a, const Value& b) {
  if (!BothNumbers(a, b)) return std::nullopt;
  if (a.is_int() && b.is_int()) {
    int64_t r = 0;
    bool o = __builtin_add_overflow(a.AsInt(), b.AsInt(), &r);
    return Value::Int(CheckedInt(a.AsInt(), "+", b.AsInt(), o, r));
  }
  return Value::Float(a.AsDouble() + b.AsDouble());
}

std::optional<Value> NumSub(const Value& a, const Value& b) {
  if (!BothNumbers(a, b)) return std::nullopt;
  if (a.is_int() && b.is_int()) {
    int64_t r = 0;
    bool o = __builtin_sub_overflow(a.AsInt(), b.AsInt(), &r);
    return Value::Int(CheckedInt(a.AsInt(), "-", b.AsInt(), o, r));
  }
  return Value::Float(a.AsDouble() - b.AsDouble());
}

std::optional<Value> NumMul(const Value& a, const Value& b) {
  if (!BothNumbers(a, b)) return std::nullopt;
  if (a.is_int() && b.is_int()) {
    int64_t r = 0;
    bool o = __builtin_mul_overflow(a.AsInt(), b.AsInt(), &r);
    return Value::Int(CheckedInt(a.AsInt(), "*", b.AsInt(), o, r));
  }
  return Value::Float(a.AsDouble() * b.AsDouble());
}

// Division: exact integer division stays an Int so that integer workloads
// (the paper's addUp example divides by 10) keep recursing over Int; any
// inexact division produces a Float.
std::optional<Value> NumDiv(const Value& a, const Value& b) {
  if (!BothNumbers(a, b)) return std::nullopt;
  if (a.is_int() && b.is_int()) {
    if (b.AsInt() == 0) return std::nullopt;
    if (b.AsInt() == -1) {
      // INT64_MIN / -1 overflows (and the % below traps); promote that one
      // case to float, matching datalog/eval.cc.
      if (a.AsInt() == INT64_MIN) {
        return Value::Float(-static_cast<double>(a.AsInt()));
      }
      return Value::Int(-a.AsInt());
    }
    if (a.AsInt() % b.AsInt() == 0) return Value::Int(a.AsInt() / b.AsInt());
    return Value::Float(a.AsDouble() / b.AsDouble());
  }
  if (b.AsDouble() == 0.0) return std::nullopt;
  return Value::Float(a.AsDouble() / b.AsDouble());
}

std::optional<Value> NumMod(const Value& a, const Value& b) {
  if (!a.is_int() || !b.is_int() || b.AsInt() == 0) return std::nullopt;
  // x % -1 is 0 for all x, but the instruction traps on INT64_MIN (UB).
  if (b.AsInt() == -1) return Value::Int(0);
  return Value::Int(a.AsInt() % b.AsInt());
}

std::optional<Value> NumPow(const Value& a, const Value& b) {
  if (!BothNumbers(a, b)) return std::nullopt;
  if (a.is_int() && b.is_int() && b.AsInt() >= 0) {
    int64_t result = 1;
    int64_t base = a.AsInt();
    for (int64_t i = 0; i < b.AsInt(); ++i) {
      bool o = __builtin_mul_overflow(result, base, &result);
      CheckedInt(a.AsInt(), "^", b.AsInt(), o, result);
    }
    return Value::Int(result);
  }
  return Value::Float(std::pow(a.AsDouble(), b.AsDouble()));
}

std::optional<Value> NumMin(const Value& a, const Value& b) {
  auto c = a.NumericCompare(b);
  if (c == Value::Ordering::kUnordered) return std::nullopt;
  return c == Value::Ordering::kGreater ? b : a;
}

std::optional<Value> NumMax(const Value& a, const Value& b) {
  auto c = a.NumericCompare(b);
  if (c == Value::Ordering::kUnordered) return std::nullopt;
  return c == Value::Ordering::kLess ? b : a;
}

// --- builtin implementations ------------------------------------------------

using BinaryFn = std::optional<Value> (*)(const Value&, const Value&);

/// Ternary relation op(x, y, z) with z = fwd(x, y) and optional inverses
/// y = inv_y(x, z), x = inv_x(y, z). Every inverse result is verified
/// against fwd so approximate inverses cannot produce tuples that are not
/// in the relation.
class TernaryOp : public Builtin {
 public:
  TernaryOp(std::string name, BinaryFn fwd, BinaryFn inv_y, BinaryFn inv_x)
      : Builtin(std::move(name), 3), fwd_(fwd), inv_y_(inv_y), inv_x_(inv_x) {}

  bool Supports(const std::vector<bool>& bound) const override {
    if (bound[0] && bound[1]) return true;
    if (inv_y_ && bound[0] && bound[2]) return true;
    if (inv_x_ && bound[1] && bound[2]) return true;
    return false;
  }

  void Eval(const std::vector<std::optional<Value>>& args,
            const BuiltinEmit& emit) const override {
    const auto& x = args[0];
    const auto& y = args[1];
    const auto& z = args[2];
    if (x && y) {
      std::optional<Value> r = fwd_(*x, *y);
      if (!r) return;
      if (z && !NumericEqual(*r, *z)) return;
      emit({*x, *y, z ? *z : *r});
      return;
    }
    if (x && z && inv_y_) {
      std::optional<Value> r = inv_y_(*x, *z);
      if (!r) return;
      std::optional<Value> check = fwd_(*x, *r);
      if (!check || !NumericEqual(*check, *z)) return;
      emit({*x, *r, *z});
      return;
    }
    if (y && z && inv_x_) {
      std::optional<Value> r = inv_x_(*y, *z);
      if (!r) return;
      std::optional<Value> check = fwd_(*r, *y);
      if (!check || !NumericEqual(*check, *z)) return;
      emit({*r, *y, *z});
      return;
    }
  }

 private:
  BinaryFn fwd_;
  BinaryFn inv_y_;  // y from (x, z)
  BinaryFn inv_x_;  // x from (y, z)
};

/// eq(x, y): supports testing and binding either side from the other.
class EqBuiltin : public Builtin {
 public:
  EqBuiltin() : Builtin("eq", 2) {}

  bool Supports(const std::vector<bool>& bound) const override {
    return bound[0] || bound[1];
  }

  void Eval(const std::vector<std::optional<Value>>& args,
            const BuiltinEmit& emit) const override {
    if (args[0] && args[1]) {
      if (args[0]->NumericCompare(*args[1]) == Value::Ordering::kEqual) {
        emit({*args[0], *args[1]});
      }
    } else if (args[0]) {
      emit({*args[0], *args[0]});
    } else if (args[1]) {
      emit({*args[1], *args[1]});
    }
  }
};

/// Binary comparison relations; both arguments must be bound.
class CompareBuiltin : public Builtin {
 public:
  using Pred = bool (*)(Value::Ordering);
  CompareBuiltin(std::string name, Pred pred)
      : Builtin(std::move(name), 2), pred_(pred) {}

  bool Supports(const std::vector<bool>& bound) const override {
    return bound[0] && bound[1];
  }

  void Eval(const std::vector<std::optional<Value>>& args,
            const BuiltinEmit& emit) const override {
    Value::Ordering o = args[0]->NumericCompare(*args[1]);
    if (o == Value::Ordering::kUnordered) return;
    if (pred_(o)) emit({*args[0], *args[1]});
  }

 private:
  Pred pred_;
};

/// negate(x, y): y = -x, invertible.
class NegateBuiltin : public Builtin {
 public:
  NegateBuiltin() : Builtin("negate", 2) {}

  bool Supports(const std::vector<bool>& bound) const override {
    return bound[0] || bound[1];
  }

  void Eval(const std::vector<std::optional<Value>>& args,
            const BuiltinEmit& emit) const override {
    auto negate = [](const Value& v) -> std::optional<Value> {
      if (v.is_int()) return Value::Int(-v.AsInt());
      if (v.is_float()) return Value::Float(-v.AsFloat());
      return std::nullopt;
    };
    if (args[0]) {
      std::optional<Value> r = negate(*args[0]);
      if (!r) return;
      if (args[1] && !NumericEqual(*r, *args[1])) return;
      emit({*args[0], args[1] ? *args[1] : *r});
    } else if (args[1]) {
      std::optional<Value> r = negate(*args[1]);
      if (!r) return;
      emit({*r, *args[1]});
    }
  }
};

/// Type predicates Int(x), Float(x), ...
class TypePredBuiltin : public Builtin {
 public:
  using Pred = bool (*)(const Value&);
  TypePredBuiltin(std::string name, Pred pred)
      : Builtin(std::move(name), 1), pred_(pred) {}

  bool Supports(const std::vector<bool>& bound) const override {
    return bound[0];
  }

  void Eval(const std::vector<std::optional<Value>>& args,
            const BuiltinEmit& emit) const override {
    if (pred_(*args[0])) emit({*args[0]});
  }

 private:
  Pred pred_;
};

/// range(lo, hi, step, x): x = lo, lo+step, ..., <= hi (inclusive, as in the
/// paper's PageRank helper `range(1,d,1,i)`). Enumerable when the first
/// three arguments are bound.
class RangeBuiltin : public Builtin {
 public:
  RangeBuiltin() : Builtin("range", 4) {}

  bool Supports(const std::vector<bool>& bound) const override {
    return bound[0] && bound[1] && bound[2];
  }

  void Eval(const std::vector<std::optional<Value>>& args,
            const BuiltinEmit& emit) const override {
    if (!args[0]->is_int() || !args[1]->is_int() || !args[2]->is_int()) return;
    int64_t lo = args[0]->AsInt();
    int64_t hi = args[1]->AsInt();
    int64_t step = args[2]->AsInt();
    if (step <= 0) return;
    if (args[3]) {
      if (!args[3]->is_int()) return;
      int64_t x = args[3]->AsInt();
      if (x >= lo && x <= hi && (x - lo) % step == 0) {
        emit({*args[0], *args[1], *args[2], *args[3]});
      }
      return;
    }
    for (int64_t x = lo; x <= hi; x += step) {
      emit({*args[0], *args[1], *args[2], Value::Int(x)});
    }
  }
};

/// Unary float function f(x, y) with y = fn(x); first argument must be bound.
class UnaryMathBuiltin : public Builtin {
 public:
  using Fn = std::optional<Value> (*)(const Value&);
  UnaryMathBuiltin(std::string name, Fn fn)
      : Builtin(std::move(name), 2), fn_(fn) {}

  bool Supports(const std::vector<bool>& bound) const override {
    return bound[0];
  }

  void Eval(const std::vector<std::optional<Value>>& args,
            const BuiltinEmit& emit) const override {
    std::optional<Value> r = fn_(*args[0]);
    if (!r) return;
    if (args[1] && !NumericEqual(*r, *args[1])) return;
    emit({*args[0], args[1] ? *args[1] : *r});
  }

 private:
  Fn fn_;
};

/// General lambda-backed builtin for the string operations.
class LambdaBuiltin : public Builtin {
 public:
  using EvalFn = std::function<void(const std::vector<std::optional<Value>>&,
                                    const BuiltinEmit&)>;
  LambdaBuiltin(std::string name, size_t arity, std::vector<bool> required,
                EvalFn fn)
      : Builtin(std::move(name), arity),
        required_(std::move(required)),
        fn_(std::move(fn)) {}

  bool Supports(const std::vector<bool>& bound) const override {
    for (size_t i = 0; i < required_.size(); ++i) {
      if (required_[i] && !bound[i]) return false;
    }
    return true;
  }

  void Eval(const std::vector<std::optional<Value>>& args,
            const BuiltinEmit& emit) const override {
    fn_(args, emit);
  }

 private:
  std::vector<bool> required_;
  EvalFn fn_;
};

// Emits `r` if it agrees with the (possibly bound) expectation `expect`.
void EmitChecked(const std::vector<std::optional<Value>>& args, Value r,
                 const BuiltinEmit& emit) {
  size_t last = args.size() - 1;
  if (args[last] && *args[last] != r) return;
  std::vector<Value> out;
  out.reserve(args.size());
  for (size_t i = 0; i < last; ++i) out.push_back(*args[i]);
  out.push_back(r);
  emit(out);
}

std::optional<Value> FloatFn(const Value& v, double (*fn)(double)) {
  if (!v.is_number()) return std::nullopt;
  double r = fn(v.AsDouble());
  if (std::isnan(r)) return std::nullopt;
  return Value::Float(r);
}

// --- registry ---------------------------------------------------------------

std::map<std::string, std::unique_ptr<Builtin>> MakeRegistry() {
  std::map<std::string, std::unique_ptr<Builtin>> reg;
  auto add = [&reg](Builtin* b) { reg.emplace(b->name(), b); };

  add(new TernaryOp("add", NumAdd, /*inv_y=*/
                    [](const Value& x, const Value& z) { return NumSub(z, x); },
                    /*inv_x=*/
                    [](const Value& y, const Value& z) { return NumSub(z, y); }));
  add(new TernaryOp("subtract", NumSub,
                    [](const Value& x, const Value& z) { return NumSub(x, z); },
                    [](const Value& y, const Value& z) { return NumAdd(z, y); }));
  add(new TernaryOp("multiply", NumMul,
                    [](const Value& x, const Value& z) { return NumDiv(z, x); },
                    [](const Value& y, const Value& z) { return NumDiv(z, y); }));
  add(new TernaryOp("divide", NumDiv,
                    [](const Value& x, const Value& z) { return NumDiv(x, z); },
                    [](const Value& y, const Value& z) { return NumMul(z, y); }));
  add(new TernaryOp("modulo", NumMod, nullptr, nullptr));
  add(new TernaryOp("power", NumPow, nullptr, nullptr));
  add(new TernaryOp("minimum", NumMin, nullptr, nullptr));
  add(new TernaryOp("maximum", NumMax, nullptr, nullptr));
  add(new TernaryOp("log", /*fwd: log base x of y*/
                    [](const Value& b, const Value& x) -> std::optional<Value> {
                      if (!BothNumbers(b, x)) return std::nullopt;
                      if (b.AsDouble() <= 0 || b.AsDouble() == 1 ||
                          x.AsDouble() <= 0) {
                        return std::nullopt;
                      }
                      return Value::Float(std::log(x.AsDouble()) /
                                          std::log(b.AsDouble()));
                    },
                    nullptr, nullptr));

  add(new EqBuiltin());
  add(new CompareBuiltin(
      "neq", [](Value::Ordering o) { return o != Value::Ordering::kEqual; }));
  add(new CompareBuiltin(
      "lt", [](Value::Ordering o) { return o == Value::Ordering::kLess; }));
  add(new CompareBuiltin("lt_eq", [](Value::Ordering o) {
    return o != Value::Ordering::kGreater;
  }));
  add(new CompareBuiltin(
      "gt", [](Value::Ordering o) { return o == Value::Ordering::kGreater; }));
  add(new CompareBuiltin(
      "gt_eq", [](Value::Ordering o) { return o != Value::Ordering::kLess; }));

  add(new NegateBuiltin());

  add(new TypePredBuiltin("Int", [](const Value& v) { return v.is_int(); }));
  add(new TypePredBuiltin("Float",
                          [](const Value& v) { return v.is_float(); }));
  add(new TypePredBuiltin("String",
                          [](const Value& v) { return v.is_string(); }));
  add(new TypePredBuiltin("Entity",
                          [](const Value& v) { return v.is_entity(); }));
  add(new TypePredBuiltin("Number",
                          [](const Value& v) { return v.is_number(); }));

  add(new RangeBuiltin());

  add(new UnaryMathBuiltin("sqrt", [](const Value& v) {
    if (!v.is_number() || v.AsDouble() < 0) return std::optional<Value>();
    return std::optional<Value>(Value::Float(std::sqrt(v.AsDouble())));
  }));
  add(new UnaryMathBuiltin("natural_log", [](const Value& v) {
    if (!v.is_number() || v.AsDouble() <= 0) return std::optional<Value>();
    return std::optional<Value>(Value::Float(std::log(v.AsDouble())));
  }));
  add(new UnaryMathBuiltin(
      "natural_exp", [](const Value& v) { return FloatFn(v, std::exp); }));
  add(new UnaryMathBuiltin("sin",
                           [](const Value& v) { return FloatFn(v, std::sin); }));
  add(new UnaryMathBuiltin("cos",
                           [](const Value& v) { return FloatFn(v, std::cos); }));
  add(new UnaryMathBuiltin("tan",
                           [](const Value& v) { return FloatFn(v, std::tan); }));
  add(new UnaryMathBuiltin("abs", [](const Value& v) -> std::optional<Value> {
    if (v.is_int()) return Value::Int(std::abs(v.AsInt()));
    if (v.is_float()) return Value::Float(std::fabs(v.AsFloat()));
    return std::nullopt;
  }));
  add(new UnaryMathBuiltin("floor", [](const Value& v) -> std::optional<Value> {
    if (!v.is_number()) return std::nullopt;
    return Value::Int(static_cast<int64_t>(std::floor(v.AsDouble())));
  }));
  add(new UnaryMathBuiltin("ceil", [](const Value& v) -> std::optional<Value> {
    if (!v.is_number()) return std::nullopt;
    return Value::Int(static_cast<int64_t>(std::ceil(v.AsDouble())));
  }));
  add(new UnaryMathBuiltin("round", [](const Value& v) -> std::optional<Value> {
    if (!v.is_number()) return std::nullopt;
    return Value::Int(static_cast<int64_t>(std::llround(v.AsDouble())));
  }));
  add(new UnaryMathBuiltin("int", [](const Value& v) -> std::optional<Value> {
    if (!v.is_number()) return std::nullopt;
    return Value::Int(static_cast<int64_t>(v.AsDouble()));
  }));
  add(new UnaryMathBuiltin("float", [](const Value& v) -> std::optional<Value> {
    if (!v.is_number()) return std::nullopt;
    return Value::Float(v.AsDouble());
  }));

  // --- string builtins ---
  add(new LambdaBuiltin(
      "concat", 3, {true, true, false},
      [](const std::vector<std::optional<Value>>& args,
         const BuiltinEmit& emit) {
        if (!args[0]->is_string() || !args[1]->is_string()) return;
        EmitChecked(args,
                    Value::String(args[0]->AsString() + args[1]->AsString()),
                    emit);
      }));
  add(new LambdaBuiltin(
      "string_length", 2, {true, false},
      [](const std::vector<std::optional<Value>>& args,
         const BuiltinEmit& emit) {
        if (!args[0]->is_string()) return;
        EmitChecked(
            args,
            Value::Int(static_cast<int64_t>(args[0]->AsString().size())),
            emit);
      }));
  add(new LambdaBuiltin(
      "uppercase", 2, {true, false},
      [](const std::vector<std::optional<Value>>& args,
         const BuiltinEmit& emit) {
        if (!args[0]->is_string()) return;
        std::string s = args[0]->AsString();
        for (char& c : s) c = static_cast<char>(std::toupper(c));
        EmitChecked(args, Value::String(s), emit);
      }));
  add(new LambdaBuiltin(
      "lowercase", 2, {true, false},
      [](const std::vector<std::optional<Value>>& args,
         const BuiltinEmit& emit) {
        if (!args[0]->is_string()) return;
        std::string s = args[0]->AsString();
        for (char& c : s) c = static_cast<char>(std::tolower(c));
        EmitChecked(args, Value::String(s), emit);
      }));
  add(new LambdaBuiltin(
      "substring", 4, {true, true, true, false},
      [](const std::vector<std::optional<Value>>& args,
         const BuiltinEmit& emit) {
        // substring(s, from, to, r): 1-based inclusive bounds.
        if (!args[0]->is_string() || !args[1]->is_int() || !args[2]->is_int())
          return;
        const std::string& s = args[0]->AsString();
        int64_t from = args[1]->AsInt();
        int64_t to = args[2]->AsInt();
        if (from < 1 || to < from - 1 ||
            to > static_cast<int64_t>(s.size())) {
          return;
        }
        EmitChecked(args, Value::String(s.substr(from - 1, to - from + 1)),
                    emit);
      }));
  add(new LambdaBuiltin(
      "contains", 2, {true, true},
      [](const std::vector<std::optional<Value>>& args,
         const BuiltinEmit& emit) {
        if (!args[0]->is_string() || !args[1]->is_string()) return;
        if (args[0]->AsString().find(args[1]->AsString()) !=
            std::string::npos) {
          emit({*args[0], *args[1]});
        }
      }));
  add(new LambdaBuiltin(
      "starts_with", 2, {true, true},
      [](const std::vector<std::optional<Value>>& args,
         const BuiltinEmit& emit) {
        if (!args[0]->is_string() || !args[1]->is_string()) return;
        const std::string& s = args[0]->AsString();
        const std::string& p = args[1]->AsString();
        if (s.size() >= p.size() && s.compare(0, p.size(), p) == 0) {
          emit({*args[0], *args[1]});
        }
      }));
  add(new LambdaBuiltin(
      "ends_with", 2, {true, true},
      [](const std::vector<std::optional<Value>>& args,
         const BuiltinEmit& emit) {
        if (!args[0]->is_string() || !args[1]->is_string()) return;
        const std::string& s = args[0]->AsString();
        const std::string& p = args[1]->AsString();
        if (s.size() >= p.size() &&
            s.compare(s.size() - p.size(), p.size(), p) == 0) {
          emit({*args[0], *args[1]});
        }
      }));
  add(new LambdaBuiltin(
      "regex_match", 2, {true, true},
      [](const std::vector<std::optional<Value>>& args,
         const BuiltinEmit& emit) {
        if (!args[0]->is_string() || !args[1]->is_string()) return;
        try {
          std::regex re(args[0]->AsString());
          if (std::regex_match(args[1]->AsString(), re)) {
            emit({*args[0], *args[1]});
          }
        } catch (const std::regex_error&) {
          // A malformed pattern simply matches nothing.
        }
      }));
  add(new LambdaBuiltin(
      "string", 2, {true, false},
      [](const std::vector<std::optional<Value>>& args,
         const BuiltinEmit& emit) {
        // Unquoted rendering for strings; Rel literal syntax otherwise.
        Value r = args[0]->is_string() ? *args[0]
                                       : Value::String(args[0]->ToString());
        if (args[0]->is_string()) r = *args[0];
        EmitChecked(args, r, emit);
      }));
  add(new LambdaBuiltin(
      "parse_int", 2, {true, false},
      [](const std::vector<std::optional<Value>>& args,
         const BuiltinEmit& emit) {
        if (!args[0]->is_string()) return;
        try {
          size_t consumed = 0;
          int64_t v = std::stoll(args[0]->AsString(), &consumed);
          if (consumed != args[0]->AsString().size()) return;
          EmitChecked(args, Value::Int(v), emit);
        } catch (const std::exception&) {
        }
      }));
  add(new LambdaBuiltin(
      "parse_float", 2, {true, false},
      [](const std::vector<std::optional<Value>>& args,
         const BuiltinEmit& emit) {
        if (!args[0]->is_string()) return;
        try {
          size_t consumed = 0;
          double v = std::stod(args[0]->AsString(), &consumed);
          if (consumed != args[0]->AsString().size()) return;
          EmitChecked(args, Value::Float(v), emit);
        } catch (const std::exception&) {
        }
      }));

  return reg;
}

const std::map<std::string, std::unique_ptr<Builtin>>& Registry() {
  static auto* registry =
      new std::map<std::string, std::unique_ptr<Builtin>>(MakeRegistry());
  return *registry;
}

}  // namespace

const Builtin* FindBuiltin(const std::string& name) {
  constexpr std::string_view kPrefix = "rel_primitive_";
  std::string key = name;
  if (key.size() > kPrefix.size() &&
      key.compare(0, kPrefix.size(), kPrefix) == 0) {
    key = key.substr(kPrefix.size());
  }
  auto it = Registry().find(key);
  return it == Registry().end() ? nullptr : it->second.get();
}

std::vector<std::string> BuiltinNames() {
  std::vector<std::string> names;
  for (const auto& [name, builtin] : Registry()) {
    (void)builtin;
    names.push_back(name);
  }
  return names;
}

std::optional<Value> ApplyAsFunction(const Builtin& builtin,
                                     const std::vector<Value>& inputs) {
  if (inputs.size() + 1 != builtin.arity()) return std::nullopt;
  std::vector<std::optional<Value>> args(builtin.arity());
  std::vector<bool> bound(builtin.arity(), true);
  bound.back() = false;
  for (size_t i = 0; i < inputs.size(); ++i) args[i] = inputs[i];
  if (!builtin.Supports(bound)) return std::nullopt;
  std::optional<Value> result;
  builtin.Eval(args, [&result](const std::vector<Value>& tuple) {
    if (!result) result = tuple.back();
  });
  return result;
}

}  // namespace rel
