// Lexer for Rel source text.

#ifndef REL_CORE_LEXER_H_
#define REL_CORE_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "core/token.h"

namespace rel {

/// Tokenizes `source` in one pass. Throws ParseError on malformed input
/// (unterminated strings/comments, stray characters). The returned vector
/// always ends with a kEof token.
std::vector<Token> Lex(std::string_view source);

}  // namespace rel

#endif  // REL_CORE_LEXER_H_
