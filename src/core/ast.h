// Abstract syntax of Rel (Figure 2 of the paper).
//
// The parser desugars the paper's infix notation into this core:
//   x + y            -> Application(rel_primitive_add, [x, y], partial)
//   x = y            -> Application(rel_primitive_eq, (x, y), full)
//   A . B            -> Application(dot_join, [&A, &B], partial)
//   A <++ B          -> Application(left_override, [&A, &B], partial)
//   F1, F2 (formulas)-> And / Product depending on context (same semantics)
//   implies/iff/xor  -> and/or/not combinations
// Everything else matches the grammar one-to-one.

#ifndef REL_CORE_AST_H_
#define REL_CORE_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "data/value.h"

namespace rel {

struct Expr;
using ExprPtr = std::shared_ptr<Expr>;

/// FOBinding / Binding from the grammar: a variable introduced by an
/// abstraction head, quantifier or rule head.
struct Binding {
  enum class Kind {
    kVar,       // x        (first-order variable)
    kTupleVar,  // x...     (tuple variable)
    kRelVar,    // {A}      (relation variable — second-order parameter)
    kLiteral,   // 0        (constant pattern in a rule head)
    kWildcard,  // _        (anonymous; allowed in heads)
  };
  Kind kind = Kind::kVar;
  std::string name;   // kVar / kTupleVar / kRelVar
  ExprPtr domain;     // optional `in` restriction: x in Expr
  Value literal;      // kLiteral
};

/// ?{e} / &{e} argument annotations (Addendum A disambiguation).
enum class Annotation {
  kNone,         // infer from the callee's definitions
  kFirstOrder,   // ?{e}
  kSecondOrder,  // &{e}
};

/// An argument of a relational application.
struct Arg {
  ExprPtr expr;  // null for wildcard arguments
  Annotation annotation = Annotation::kNone;
};

enum class ExprKind {
  kLiteral,        // 42, 3.5, "text"
  kRelNameLit,     // :Name — the name of a relation passed as a value
  kIdent,          // x or RName (resolved against scope during compilation)
  kTupleVar,       // x...
  kWildcard,       // _
  kWildcardTuple,  // _...
  kProduct,        // (e1, ..., en), n >= 2 — Cartesian product
  kUnion,          // {e1; ...; en}
  kWhere,          // e where f
  kAbstraction,    // [bindings]: e   or   (bindings): f   (square flag)
  kApplication,    // t[args] or t(args)   (full flag distinguishes)
  kAnd,            // f1 and f2
  kOr,             // f1 or f2
  kNot,            // not f
  kExists,         // exists((bindings) | f)
  kForall,         // forall((bindings) | f)
  kTrueLit,        // true, {()}
  kFalseLit,       // false, {}
};

/// A node of the Rel AST. One struct for all kinds (a closed sum type would
/// be nicer, but a single node keeps the recursive-descent parser and the
/// compiler visitors simple); only the fields of the active kind are set.
struct Expr {
  ExprKind kind;

  Value literal;                  // kLiteral
  std::string name;               // kIdent, kTupleVar, kRelNameLit
  std::vector<ExprPtr> children;  // kProduct, kUnion, kAnd, kOr, kNot(1),
                                  // kWhere(2: expr, formula)
  std::vector<Binding> bindings;  // kAbstraction, kExists, kForall
  ExprPtr body;                   // kAbstraction, kExists, kForall
  bool square = false;            // kAbstraction: [..] vs (..)
  ExprPtr target;                 // kApplication
  std::vector<Arg> args;          // kApplication
  bool full = false;              // kApplication: (..) vs [..]

  int line = 0;
  int column = 0;

  /// Compact single-line rendering (for error messages and tests).
  std::string ToString() const;
};

/// Builders.
ExprPtr MakeExpr(ExprKind kind, int line = 0, int column = 0);
ExprPtr MakeLiteral(Value v, int line = 0, int column = 0);
ExprPtr MakeIdent(const std::string& name, int line = 0, int column = 0);
ExprPtr MakeApplication(const std::string& callee, std::vector<Arg> args,
                        bool full, int line = 0, int column = 0);

/// A rule: `def Name(params): body`, `def Name[params]: body`,
/// `def Name {abstraction}` or `ic Name(params) requires body`.
struct Def {
  std::string name;
  std::vector<Binding> params;
  ExprPtr body;
  bool square_head = false;  // [..] head: body is an expression, not formula
  bool is_ic = false;        // integrity constraint
  bool inline_hint = false;  // @inline: always expand at call sites
  int line = 0;

  std::string ToString() const;
};

/// A parsed program: an unordered set of rules (order is irrelevant to the
/// semantics, Section 3.3).
struct Program {
  std::vector<Def> defs;
};

const char* ExprKindName(ExprKind kind);

}  // namespace rel

#endif  // REL_CORE_AST_H_
