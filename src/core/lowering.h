// Lowering Rel recursion onto the classical Datalog evaluator — the inverse
// of datalog/to_rel.h, and the "meet in the middle" step the ROADMAP's
// "Rel-engine recursion via the Datalog planner" item asked for.
//
// A component found by core/analysis qualifies for lowering when its
// fixpoint is expressible in the Datalog engine's fragment — classical
// stratified Datalog plus aggregate rule heads (datalog::Aggregate):
//
//   * monotone recursion (no replacement semantics;
//     ProgramAnalysis::UsesReplacement decides), OR a recursive component
//     whose only non-monotone internal edges flow through aggregation
//     inputs (ProgramAnalysis::AggregationRecursive — the semiring
//     semi-naive path), OR a non-recursive def that applies one of the
//     stdlib combinators min/max/sum/count
//     (ProgramAnalysis::UsesAggregation);
//   * every rule of every member is first-order (`def name(params): body`
//     with no relation-variable parameters and no []-head producing
//     expression outputs) over variable/literal parameters;
//   * every body is a conjunction (possibly under `exists`, and possibly
//     disjunctive: `or` bodies split into one Datalog rule per DNF branch,
//     up to 16 branches) of
//       - full applications of named relations over variables, literals and
//         wildcards (the member predicates themselves, or SCC-external
//         names whose extents are materialized as EDB facts),
//       - negated full applications of SCC-external names,
//       - comparisons (=, !=, <, <=, >, >=), positive or negated — a
//         negated comparison lowers to a kUnordered-faithful complement
//         (datalog::Literal::NegatedCompare), never to a flipped operator —
//         and arithmetic equalities (v = a + b, minimum/maximum and the
//         ternary builtin forms),
//       - `range(lo, hi, step, x)` generator applications (positive only),
//       - relation applications used as values (`A[i, k] * B[k, j]`), and
//       - `true` / `e where f` conjunctions;
//   * an aggregate def takes the head form
//     `def p(group..., r) : conjuncts and r = op[abstraction]` where `op`
//     is a canonical stdlib combinator, `r` is the final parameter and is
//     used nowhere else (a filter on the aggregate result has no
//     classical-fragment equivalent), and the abstraction's binders supply
//     the witness columns and aggregated value. A predicate must be all
//     aggregate rules or all plain rules — the engine refuses mixed
//     predicates (so a plain base def + aggregate recursive def pair does
//     NOT lower; write a single disjunctive aggregate def instead).
//
// Everything else — tuple variables, string builtins, partial
// applications, relation-valued arguments, DNF overflow — rejects the
// component, and the interpreter falls back to its tuple-at-a-time
// fixpoint unchanged. So does every aggregate shape the engine's
// monotonicity qualification refuses (datalog/eval.cc CheckMonotoneRule
// and the emit-once guard for recursive sums). Rejection is always safe:
// lowering only changes how the extent is computed, never what it is.

#ifndef REL_CORE_LOWERING_H_
#define REL_CORE_LOWERING_H_

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/analysis.h"
#include "core/ast.h"
#include "datalog/program.h"

namespace rel {

/// The Datalog translation of one recursive Rel component. `program` holds
/// the SCC's rules only; the caller supplies facts (the member predicates'
/// base tuples plus the materialized extents of `externals`) before calling
/// datalog::Evaluate.
struct LoweredComponent {
  datalog::Program program;
  /// The SCC's predicates (IDB), sorted.
  std::vector<std::string> members;
  /// SCC-external names referenced by the rules, whose extents must be
  /// provided as EDB facts. Sorted; disjoint from `members`.
  std::vector<std::string> externals;
};

/// Attempts to translate the recursive component containing `name` into a
/// Datalog program. `defs` is the full rule set the component lives in
/// (integrity constraints are ignored). Returns nullopt when the component
/// does not qualify; `why`, when non-null, receives a one-line reason for
/// diagnostics and tests. The caller is responsible for checking that the
/// component is recursive and monotone (ProgramAnalysis::IsRecursive /
/// !UsesReplacement) — this function validates expressibility only.
std::optional<LoweredComponent> LowerComponent(
    const std::string& name, const ProgramAnalysis& analysis,
    const std::vector<std::shared_ptr<Def>>& defs, std::string* why);

/// Builds the Datalog demand goal for querying member `name` of a lowered
/// component with a binding pattern (bound positions carry the querying
/// atom's constants — how the interpreter's demand path hands the solver's
/// bound arguments to datalog::EvalOptions::demand_goal). Returns nullopt
/// when `name` is not a member or no position is bound (an all-free query
/// demands the full extent; callers should evaluate normally).
std::optional<datalog::DemandGoal> DemandGoalFor(
    const LoweredComponent& lowered, const std::string& name,
    const std::vector<std::optional<Value>>& pattern);

}  // namespace rel

#endif  // REL_CORE_LOWERING_H_
