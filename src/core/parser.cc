#include "core/parser.h"

#include <optional>

#include "base/error.h"
#include "core/lexer.h"

namespace rel {

namespace {

using builtin_names::kReduce;

class ParserImpl {
 public:
  explicit ParserImpl(std::string_view source) : tokens_(Lex(source)) {}

  Program ParseProgramAll() {
    Program program;
    while (!Check(TokenKind::kEof)) {
      program.defs.push_back(ParseDef());
    }
    return program;
  }

  ExprPtr ParseSingleExpression() {
    ExprPtr e = ParseExpr();
    Expect(TokenKind::kEof, "after expression");
    return e;
  }

 private:
  // --- token plumbing ------------------------------------------------------

  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    if (i >= tokens_.size()) i = tokens_.size() - 1;  // kEof
    return tokens_[i];
  }

  bool Check(TokenKind kind) const { return Peek().kind == kind; }

  const Token& Advance() { return tokens_[pos_++]; }

  bool Match(TokenKind kind) {
    if (!Check(kind)) return false;
    Advance();
    return true;
  }

  const Token& Expect(TokenKind kind, const char* context) {
    if (!Check(kind)) {
      Fail(std::string("expected ") + TokenKindName(kind) + " " + context +
           ", found " + Peek().Describe());
    }
    return Advance();
  }

  [[noreturn]] void Fail(const std::string& message) const {
    throw ParseError(message, Peek().line, Peek().column);
  }

  int Line() const { return Peek().line; }
  int Column() const { return Peek().column; }

  // --- rules ---------------------------------------------------------------

  Def ParseDef() {
    Def def;
    def.line = Line();
    if (Match(TokenKind::kAt)) {
      const Token& hint = Expect(TokenKind::kIdent, "after '@'");
      if (hint.text != "inline") {
        Fail("unknown annotation '@" + hint.text + "'");
      }
      def.inline_hint = true;
    }
    if (Match(TokenKind::kIc)) {
      def.is_ic = true;
      def.name = Expect(TokenKind::kIdent, "after 'ic'").text;
      if (Match(TokenKind::kLParen)) {
        def.params = ParseBindingList(TokenKind::kRParen);
        Expect(TokenKind::kRParen, "after ic parameters");
      }
      Expect(TokenKind::kRequires, "in integrity constraint");
      def.body = ParseExpr();
      return def;
    }
    Expect(TokenKind::kDef, "at start of rule");
    def.name = ParseDefName();
    if (Match(TokenKind::kLParen)) {
      def.params = ParseBindingList(TokenKind::kRParen);
      Expect(TokenKind::kRParen, "after rule parameters");
      def.square_head = false;
      ExpectBodySeparator();
      def.body = ParseExpr();
    } else if (Match(TokenKind::kLBracket)) {
      def.params = ParseBindingList(TokenKind::kRBracket);
      Expect(TokenKind::kRBracket, "after rule parameters");
      def.square_head = true;
      ExpectBodySeparator();
      def.body = ParseExpr();
    } else if (Check(TokenKind::kLBrace)) {
      // `def RName Abstraction` (form (2) of the paper). If the braces hold
      // an abstraction, its bindings become the rule head.
      ExprPtr braced = ParsePrimary();
      if (braced->kind == ExprKind::kAbstraction) {
        def.params = braced->bindings;
        def.square_head = braced->square;
        def.body = braced->body;
      } else {
        def.params.clear();
        def.square_head = true;  // body is an expression
        def.body = braced;
      }
    } else if (Check(TokenKind::kEq) || Check(TokenKind::kColon)) {
      Advance();
      def.params.clear();
      def.square_head = true;
      def.body = ParseExpr();
    } else {
      Fail("expected parameter list, '{', ':' or '=' after 'def " + def.name +
           "'");
    }
    return def;
  }

  std::string ParseDefName() {
    if (Check(TokenKind::kIdent)) return Advance().text;
    // Operator definitions: def (+)(x,y,z) : ...
    if (Match(TokenKind::kLParen)) {
      std::string name;
      switch (Peek().kind) {
        case TokenKind::kPlus: name = "+"; break;
        case TokenKind::kMinus: name = "-"; break;
        case TokenKind::kStar: name = "*"; break;
        case TokenKind::kSlash: name = "/"; break;
        case TokenKind::kPercent: name = "%"; break;
        case TokenKind::kCaret: name = "^"; break;
        case TokenKind::kDot: name = "."; break;
        case TokenKind::kLeftOverride: name = "<++"; break;
        default:
          Fail("expected an operator symbol in 'def (op)'");
      }
      Advance();
      Expect(TokenKind::kRParen, "after operator name");
      return name;
    }
    Fail("expected a relation name after 'def'");
  }

  void ExpectBodySeparator() {
    if (!Match(TokenKind::kColon) && !Match(TokenKind::kEq)) {
      Fail("expected ':' or '=' before rule body");
    }
  }

  // --- bindings ------------------------------------------------------------

  std::vector<Binding> ParseBindingList(TokenKind closing) {
    std::vector<Binding> bindings;
    if (Check(closing)) return bindings;
    bindings.push_back(ParseBinding());
    while (Match(TokenKind::kComma)) {
      bindings.push_back(ParseBinding());
    }
    return bindings;
  }

  Binding ParseBinding() {
    Binding b;
    if (Match(TokenKind::kLBrace)) {
      b.kind = Binding::Kind::kRelVar;
      b.name = Expect(TokenKind::kIdent, "in relation-variable binding").text;
      Expect(TokenKind::kRBrace, "after relation variable");
      return b;
    }
    if (Check(TokenKind::kTupleVar)) {
      b.kind = Binding::Kind::kTupleVar;
      b.name = Advance().text;
      return b;
    }
    if (Match(TokenKind::kWildcard)) {
      b.kind = Binding::Kind::kWildcard;
      return b;
    }
    if (Check(TokenKind::kInt)) {
      b.kind = Binding::Kind::kLiteral;
      b.literal = Value::Int(Advance().int_value);
      return b;
    }
    if (Check(TokenKind::kFloat)) {
      b.kind = Binding::Kind::kLiteral;
      b.literal = Value::Float(Advance().float_value);
      return b;
    }
    if (Check(TokenKind::kString)) {
      b.kind = Binding::Kind::kLiteral;
      b.literal = Value::String(Advance().text);
      return b;
    }
    if (Check(TokenKind::kMinus) && Peek(1).kind == TokenKind::kInt) {
      Advance();
      b.kind = Binding::Kind::kLiteral;
      b.literal = Value::Int(-Advance().int_value);
      return b;
    }
    if (Check(TokenKind::kMinus) && Peek(1).kind == TokenKind::kFloat) {
      Advance();
      b.kind = Binding::Kind::kLiteral;
      b.literal = Value::Float(-Advance().float_value);
      return b;
    }
    if (Check(TokenKind::kColon) && Peek(1).kind == TokenKind::kIdent) {
      // :RName in a head (control relations, Section 3.4).
      Advance();
      b.kind = Binding::Kind::kLiteral;
      b.literal = Value::Entity("rel", Advance().text);
      return b;
    }
    if (Check(TokenKind::kIdent)) {
      b.kind = Binding::Kind::kVar;
      b.name = Advance().text;
      if (Match(TokenKind::kIn)) {
        b.domain = ParseLeftOverride();
      }
      return b;
    }
    Fail("expected a binding, found " + Peek().Describe());
  }

  // Attempts to parse `Bindings <closing> :` from the current position.
  // On success returns the bindings with the cursor after the ':'.
  // On failure restores the cursor and returns nullopt.
  std::optional<std::vector<Binding>> TrySpeculativeBindings(
      TokenKind closing) {
    size_t save = pos_;
    try {
      std::vector<Binding> bindings = ParseBindingList(closing);
      if (Check(closing) && Peek(1).kind == TokenKind::kColon) {
        Advance();  // closing
        Advance();  // ':'
        return bindings;
      }
    } catch (const ParseError&) {
      // fall through to restore
    }
    pos_ = save;
    return std::nullopt;
  }

  // --- expressions, loosest to tightest ------------------------------------

  ExprPtr ParseExpr() { return ParseWhere(); }

  ExprPtr ParseWhere() {
    ExprPtr left = ParseIff();
    while (Match(TokenKind::kWhere)) {
      auto e = MakeExpr(ExprKind::kWhere, left->line, left->column);
      e->children = {left, ParseIff()};
      left = e;
    }
    return left;
  }

  ExprPtr ParseIff() {
    ExprPtr left = ParseImplies();
    while (true) {
      if (Match(TokenKind::kIff)) {
        ExprPtr right = ParseImplies();
        // a iff b  ==  (not a or b) and (not b or a)
        left = MakeAnd(MakeOr(MakeNot(left), right),
                       MakeOr(MakeNot(right), left));
      } else if (Match(TokenKind::kXor)) {
        ExprPtr right = ParseImplies();
        // a xor b  ==  (a and not b) or (not a and b)
        left = MakeOr(MakeAnd(left, MakeNot(right)),
                      MakeAnd(MakeNot(left), right));
      } else {
        return left;
      }
    }
  }

  ExprPtr ParseImplies() {
    ExprPtr left = ParseOr();
    if (Match(TokenKind::kImplies)) {
      ExprPtr right = ParseImplies();  // right-associative
      return MakeOr(MakeNot(left), right);
    }
    return left;
  }

  ExprPtr ParseOr() {
    ExprPtr left = ParseAnd();
    while (Match(TokenKind::kOr)) {
      left = MakeOr(left, ParseAnd());
    }
    return left;
  }

  ExprPtr ParseAnd() {
    ExprPtr left = ParseNot();
    while (Match(TokenKind::kAnd)) {
      left = MakeAnd(left, ParseNot());
    }
    return left;
  }

  ExprPtr ParseNot() {
    if (Match(TokenKind::kNot)) {
      return MakeNot(ParseNot());
    }
    return ParseComparison();
  }

  ExprPtr ParseComparison() {
    ExprPtr left = ParseLeftOverride();
    const char* builtin = nullptr;
    switch (Peek().kind) {
      case TokenKind::kEq: builtin = builtin_names::kEq; break;
      case TokenKind::kNeq: builtin = builtin_names::kNeq; break;
      case TokenKind::kLt: builtin = builtin_names::kLt; break;
      case TokenKind::kLe: builtin = builtin_names::kLe; break;
      case TokenKind::kGt: builtin = builtin_names::kGt; break;
      case TokenKind::kGe: builtin = builtin_names::kGe; break;
      default: return left;
    }
    int line = Line();
    int column = Column();
    Advance();
    ExprPtr right = ParseLeftOverride();
    return MakeApplication(builtin, {Arg{left, {}}, Arg{right, {}}},
                           /*full=*/true, line, column);
  }

  ExprPtr ParseLeftOverride() {
    ExprPtr left = ParseAdditive();
    while (Match(TokenKind::kLeftOverride)) {
      left = MakeApplication(
          builtin_names::kLeftOverride,
          {Arg{left, Annotation::kSecondOrder},
           Arg{ParseAdditive(), Annotation::kSecondOrder}},
          /*full=*/false, left->line, left->column);
    }
    return left;
  }

  ExprPtr ParseAdditive() {
    ExprPtr left = ParseMultiplicative();
    while (true) {
      const char* builtin = nullptr;
      if (Check(TokenKind::kPlus)) builtin = builtin_names::kAdd;
      else if (Check(TokenKind::kMinus)) builtin = builtin_names::kSubtract;
      else return left;
      Advance();
      ExprPtr right = ParseMultiplicative();
      left = MakeApplication(builtin, {Arg{left, {}}, Arg{right, {}}},
                             /*full=*/false, left->line, left->column);
    }
  }

  ExprPtr ParseMultiplicative() {
    ExprPtr left = ParseUnary();
    while (true) {
      const char* builtin = nullptr;
      if (Check(TokenKind::kStar)) builtin = builtin_names::kMultiply;
      else if (Check(TokenKind::kSlash)) builtin = builtin_names::kDivide;
      else if (Check(TokenKind::kPercent)) builtin = builtin_names::kModulo;
      else return left;
      Advance();
      ExprPtr right = ParseUnary();
      left = MakeApplication(builtin, {Arg{left, {}}, Arg{right, {}}},
                             /*full=*/false, left->line, left->column);
    }
  }

  ExprPtr ParseUnary() {
    if (Check(TokenKind::kMinus)) {
      int line = Line();
      int column = Column();
      Advance();
      // Fold negative literals so heads like APSP(..., -1) stay constants.
      if (Check(TokenKind::kInt)) {
        return MakeLiteral(Value::Int(-Advance().int_value), line, column);
      }
      if (Check(TokenKind::kFloat)) {
        return MakeLiteral(Value::Float(-Advance().float_value), line, column);
      }
      ExprPtr operand = ParseUnary();
      return MakeApplication(builtin_names::kNegate, {Arg{operand, {}}},
                             /*full=*/false, line, column);
    }
    return ParsePower();
  }

  ExprPtr ParsePower() {
    ExprPtr left = ParseDotJoin();
    if (Match(TokenKind::kCaret)) {
      ExprPtr right = ParseUnary();  // right-associative
      return MakeApplication(builtin_names::kPower,
                             {Arg{left, {}}, Arg{right, {}}},
                             /*full=*/false, left->line, left->column);
    }
    return left;
  }

  ExprPtr ParseDotJoin() {
    ExprPtr left = ParsePostfix();
    while (Match(TokenKind::kDot)) {
      ExprPtr right = ParsePostfix();
      left = MakeApplication(builtin_names::kDotJoin,
                             {Arg{left, Annotation::kSecondOrder},
                              Arg{right, Annotation::kSecondOrder}},
                             /*full=*/false, left->line, left->column);
    }
    return left;
  }

  ExprPtr ParsePostfix() {
    ExprPtr expr = ParsePrimary();
    while (true) {
      if (Check(TokenKind::kLBracket)) {
        // Distinguish application target[..] from a following abstraction
        // argument: '[' directly after an expression is always application.
        Advance();
        auto app = MakeExpr(ExprKind::kApplication, expr->line, expr->column);
        app->target = expr;
        app->full = false;
        app->args = ParseArgList(TokenKind::kRBracket);
        Expect(TokenKind::kRBracket, "after application arguments");
        expr = app;
      } else if (Check(TokenKind::kLParen) && IsApplicationTarget(*expr)) {
        Advance();
        auto app = MakeExpr(ExprKind::kApplication, expr->line, expr->column);
        app->target = expr;
        app->full = true;
        app->args = ParseArgList(TokenKind::kRParen);
        Expect(TokenKind::kRParen, "after application arguments");
        expr = app;
      } else {
        return expr;
      }
    }
  }

  // Full application `t(args)` only applies to relation-like targets; this
  // stops `x and (y or z)` style groupings from being read as applications.
  static bool IsApplicationTarget(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kIdent:
      case ExprKind::kApplication:
      case ExprKind::kUnion:
      case ExprKind::kAbstraction:
        return true;
      default:
        return false;
    }
  }

  std::vector<Arg> ParseArgList(TokenKind closing) {
    std::vector<Arg> args;
    if (Check(closing)) return args;
    args.push_back(ParseArg());
    while (Match(TokenKind::kComma)) {
      args.push_back(ParseArg());
    }
    return args;
  }

  Arg ParseArg() {
    if (Check(TokenKind::kQuestion) && Peek(1).kind == TokenKind::kLBrace) {
      Advance();
      return Arg{ParseAnnotatedBody(), Annotation::kFirstOrder};
    }
    if (Check(TokenKind::kAmp) && Peek(1).kind == TokenKind::kLBrace) {
      Advance();
      return Arg{ParseAnnotatedBody(), Annotation::kSecondOrder};
    }
    return Arg{ParseExpr(), Annotation::kNone};
  }

  // The braces of ?{...} / &{...} double as union braces: ?{11;22} is the
  // annotation applied to the union {11;22}. Reuse the braced-expression
  // parser (cursor is on '{').
  ExprPtr ParseAnnotatedBody() { return ParseBraced(); }

  ExprPtr ParsePrimary() {
    int line = Line();
    int column = Column();
    switch (Peek().kind) {
      case TokenKind::kInt:
        return MakeLiteral(Value::Int(Advance().int_value), line, column);
      case TokenKind::kFloat:
        return MakeLiteral(Value::Float(Advance().float_value), line, column);
      case TokenKind::kString:
        return MakeLiteral(Value::String(Advance().text), line, column);
      case TokenKind::kTrue:
        Advance();
        return MakeExpr(ExprKind::kTrueLit, line, column);
      case TokenKind::kFalse:
        Advance();
        return MakeExpr(ExprKind::kFalseLit, line, column);
      case TokenKind::kIdent:
        return MakeIdent(Advance().text, line, column);
      case TokenKind::kTupleVar: {
        auto e = MakeExpr(ExprKind::kTupleVar, line, column);
        e->name = Advance().text;
        return e;
      }
      case TokenKind::kWildcard:
        Advance();
        return MakeExpr(ExprKind::kWildcard, line, column);
      case TokenKind::kWildcardTuple:
        Advance();
        return MakeExpr(ExprKind::kWildcardTuple, line, column);
      case TokenKind::kColon: {
        Advance();
        auto e = MakeExpr(ExprKind::kRelNameLit, line, column);
        e->name = Expect(TokenKind::kIdent, "after ':'").text;
        return e;
      }
      case TokenKind::kExists:
      case TokenKind::kForall:
        return ParseQuantifier();
      case TokenKind::kLParen:
        return ParseParenthesized();
      case TokenKind::kLBracket:
        return ParseBracketAbstraction();
      case TokenKind::kLBrace:
        return ParseBraced();
      default:
        Fail("expected an expression, found " + Peek().Describe());
    }
  }

  ExprPtr ParseQuantifier() {
    int line = Line();
    int column = Column();
    bool is_exists = Check(TokenKind::kExists);
    Advance();
    Expect(TokenKind::kLParen, "after quantifier");
    std::vector<Binding> bindings;
    if (Match(TokenKind::kLParen)) {
      bindings = ParseBindingList(TokenKind::kRParen);
      Expect(TokenKind::kRParen, "after quantifier bindings");
    } else {
      bindings = ParseBindingList(TokenKind::kBar);
    }
    Expect(TokenKind::kBar, "between quantifier bindings and body");
    ExprPtr body = ParseExpr();
    Expect(TokenKind::kRParen, "after quantifier body");
    auto e = MakeExpr(is_exists ? ExprKind::kExists : ExprKind::kForall, line,
                      column);
    e->bindings = std::move(bindings);
    e->body = body;
    return e;
  }

  ExprPtr ParseParenthesized() {
    int line = Line();
    int column = Column();
    Expect(TokenKind::kLParen, "");
    // `(bindings): formula` — a round abstraction (form (3a)).
    if (auto bindings = TrySpeculativeBindings(TokenKind::kRParen)) {
      auto e = MakeExpr(ExprKind::kAbstraction, line, column);
      e->bindings = std::move(*bindings);
      e->square = false;
      e->body = ParseExpr();
      return e;
    }
    if (Match(TokenKind::kRParen)) {
      // `()` — the empty tuple, i.e. boolean TRUE.
      return MakeExpr(ExprKind::kTrueLit, line, column);
    }
    std::vector<ExprPtr> elements;
    elements.push_back(ParseExpr());
    while (Match(TokenKind::kComma)) {
      elements.push_back(ParseExpr());
    }
    Expect(TokenKind::kRParen, "after parenthesized expression");
    if (elements.size() == 1) return elements[0];
    auto e = MakeExpr(ExprKind::kProduct, line, column);
    e->children = std::move(elements);
    return e;
  }

  ExprPtr ParseBracketAbstraction() {
    int line = Line();
    int column = Column();
    Expect(TokenKind::kLBracket, "");
    if (auto bindings = TrySpeculativeBindings(TokenKind::kRBracket)) {
      auto e = MakeExpr(ExprKind::kAbstraction, line, column);
      e->bindings = std::move(*bindings);
      e->square = true;
      e->body = ParseExpr();
      return e;
    }
    Fail("expected '[bindings] : body' abstraction");
  }

  ExprPtr ParseBraced() {
    int line = Line();
    int column = Column();
    Expect(TokenKind::kLBrace, "");
    if (Match(TokenKind::kRBrace)) {
      // `{}` — the empty relation, i.e. boolean FALSE.
      return MakeExpr(ExprKind::kFalseLit, line, column);
    }
    // `{(bindings): f}` / `{[bindings]: e}` — braced abstraction.
    if (Check(TokenKind::kLParen)) {
      size_t save = pos_;
      Advance();
      if (auto bindings = TrySpeculativeBindings(TokenKind::kRParen)) {
        auto e = MakeExpr(ExprKind::kAbstraction, line, column);
        e->bindings = std::move(*bindings);
        e->square = false;
        e->body = ParseExpr();
        Expect(TokenKind::kRBrace, "after abstraction");
        return e;
      }
      pos_ = save;
    }
    if (Check(TokenKind::kLBracket)) {
      size_t save = pos_;
      Advance();
      if (auto bindings = TrySpeculativeBindings(TokenKind::kRBracket)) {
        auto e = MakeExpr(ExprKind::kAbstraction, line, column);
        e->bindings = std::move(*bindings);
        e->square = true;
        e->body = ParseExpr();
        Expect(TokenKind::kRBrace, "after abstraction");
        return e;
      }
      pos_ = save;
    }
    // `{e1; ...; en}` — union (possibly a single braced expression).
    std::vector<ExprPtr> elements;
    elements.push_back(ParseExpr());
    while (Match(TokenKind::kSemi)) {
      if (Check(TokenKind::kRBrace)) break;  // allow trailing ';'
      elements.push_back(ParseExpr());
    }
    Expect(TokenKind::kRBrace, "after union");
    if (elements.size() == 1) return elements[0];
    auto e = MakeExpr(ExprKind::kUnion, line, column);
    e->children = std::move(elements);
    return e;
  }

  // --- small node builders --------------------------------------------------

  ExprPtr MakeAnd(ExprPtr a, ExprPtr b) {
    auto e = MakeExpr(ExprKind::kAnd, a->line, a->column);
    e->children = {std::move(a), std::move(b)};
    return e;
  }

  ExprPtr MakeOr(ExprPtr a, ExprPtr b) {
    auto e = MakeExpr(ExprKind::kOr, a->line, a->column);
    e->children = {std::move(a), std::move(b)};
    return e;
  }

  ExprPtr MakeNot(ExprPtr a) {
    auto e = MakeExpr(ExprKind::kNot, a->line, a->column);
    e->children = {std::move(a)};
    return e;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Program ParseProgram(std::string_view source) {
  return ParserImpl(source).ParseProgramAll();
}

std::vector<std::shared_ptr<Def>> ParseToSharedDefs(std::string_view source) {
  Program program = ParseProgram(source);
  std::vector<std::shared_ptr<Def>> out;
  out.reserve(program.defs.size());
  for (Def& def : program.defs) {
    out.push_back(std::make_shared<Def>(std::move(def)));
  }
  return out;
}

ExprPtr ParseExpression(std::string_view source) {
  return ParserImpl(source).ParseSingleExpression();
}

}  // namespace rel
