#include "core/lowering.h"

#include <algorithm>
#include <map>

#include "core/builtins.h"
#include "core/parser.h"

namespace rel {

namespace {

using datalog::ArithOp;
using datalog::Atom;
using datalog::CmpOp;
using datalog::Literal;
using datalog::Term;

/// Leading relation-variable parameter count (mirrors
/// Solver::CountSOParams without pulling in the solver).
size_t CountSOParams(const Def& def) {
  size_t n = 0;
  while (n < def.params.size() &&
         def.params[n].kind == Binding::Kind::kRelVar) {
    ++n;
  }
  return n;
}

/// Canonical builtin name: the parser emits `rel_primitive_eq` etc.; the
/// registry also accepts the bare names, so compare against those.
std::string CanonicalBuiltin(const std::string& name) {
  constexpr char kPrefix[] = "rel_primitive_";
  if (name.rfind(kPrefix, 0) == 0) return name.substr(sizeof(kPrefix) - 1);
  return name;
}

std::optional<CmpOp> CmpOpOf(const std::string& canonical) {
  if (canonical == "eq") return CmpOp::kEq;
  if (canonical == "neq") return CmpOp::kNeq;
  if (canonical == "lt") return CmpOp::kLt;
  if (canonical == "lt_eq") return CmpOp::kLe;
  if (canonical == "gt") return CmpOp::kGt;
  if (canonical == "gt_eq") return CmpOp::kGe;
  return std::nullopt;
}

std::optional<ArithOp> ArithOpOf(const std::string& canonical) {
  if (canonical == "add") return ArithOp::kAdd;
  if (canonical == "subtract") return ArithOp::kSub;
  if (canonical == "multiply") return ArithOp::kMul;
  if (canonical == "divide") return ArithOp::kDiv;
  if (canonical == "modulo") return ArithOp::kMod;
  if (canonical == "minimum") return ArithOp::kMin;
  if (canonical == "maximum") return ArithOp::kMax;
  return std::nullopt;
}

/// Unwraps chained partial applications: T[a][b](c) has base T and
/// arguments a, b, c (the solver's FlattenApplication, re-stated here on
/// the uncompiled AST).
void Flatten(const ExprPtr& expr, ExprPtr* base, std::vector<Arg>* args) {
  if (expr->kind == ExprKind::kApplication) {
    if (expr->target->kind == ExprKind::kApplication && !expr->target->full) {
      Flatten(expr->target, base, args);
      for (const Arg& a : expr->args) args->push_back(a);
      return;
    }
    *base = expr->target;
    *args = expr->args;
    return;
  }
  *base = expr;
  args->clear();
}

/// DNF cap: a body with more or-alternatives than this is left unsplit (and
/// then rejected by the formula lowerer, falling back to the interpreter).
constexpr size_t kMaxDnfBranches = 16;

/// Splits a formula into its or-free alternatives, distributing `or` over
/// `and`/`where`/`exists`. Negations are left intact as leaves (a negated
/// disjunction stays unsplit and is rejected downstream). Returns false when
/// the expansion exceeds kMaxDnfBranches; shared subtrees are reused, never
/// cloned — only fresh connective nodes are allocated.
bool SplitOr(const ExprPtr& expr, std::vector<ExprPtr>* out) {
  if (out->size() > kMaxDnfBranches) return false;
  switch (expr->kind) {
    case ExprKind::kOr:
      for (const ExprPtr& c : expr->children) {
        if (!SplitOr(c, out)) return false;
      }
      return true;
    case ExprKind::kAnd:
    case ExprKind::kWhere: {
      std::vector<ExprPtr> left, right;
      if (!SplitOr(expr->children[0], &left) ||
          !SplitOr(expr->children[1], &right)) {
        return false;
      }
      if (left.size() == 1 && right.size() == 1) {
        out->push_back(expr);
        return true;
      }
      if (out->size() + left.size() * right.size() > kMaxDnfBranches + 1) {
        return false;
      }
      for (const ExprPtr& l : left) {
        for (const ExprPtr& r : right) {
          ExprPtr e = MakeExpr(expr->kind, expr->line, expr->column);
          e->children = {l, r};
          out->push_back(e);
        }
      }
      return true;
    }
    case ExprKind::kExists: {
      std::vector<ExprPtr> subs;
      if (!SplitOr(expr->body, &subs)) return false;
      if (subs.size() == 1) {
        out->push_back(expr);
        return true;
      }
      for (const ExprPtr& s : subs) {
        ExprPtr e = MakeExpr(ExprKind::kExists, expr->line, expr->column);
        e->bindings = expr->bindings;
        e->body = s;
        out->push_back(e);
      }
      return true;
    }
    default:
      out->push_back(expr);
      return true;
  }
}

std::vector<ExprPtr> Alternatives(const ExprPtr& expr) {
  std::vector<ExprPtr> out;
  if (!SplitOr(expr, &out) || out.empty()) {
    out.clear();
    out.push_back(expr);
  }
  return out;
}

/// Walks a top-level conjunction spine into its conjuncts.
void FlattenConjunction(const ExprPtr& expr, std::vector<ExprPtr>* out) {
  if (expr->kind == ExprKind::kAnd || expr->kind == ExprKind::kWhere) {
    FlattenConjunction(expr->children[0], out);
    FlattenConjunction(expr->children[1], out);
    return;
  }
  out->push_back(expr);
}

std::optional<datalog::AggOp> AggOpOf(const std::string& name) {
  if (name == "min") return datalog::AggOp::kMin;
  if (name == "max") return datalog::AggOp::kMax;
  if (name == "sum") return datalog::AggOp::kSum;
  if (name == "count") return datalog::AggOp::kCount;
  return std::nullopt;
}

/// Per-component translation context, shared by all of its rules.
struct ComponentContext {
  std::set<std::string> members;
  const std::map<std::string, std::vector<const Def*>>* defs_by_name;
  const std::map<std::string, size_t>* max_sig;
  std::set<std::string>* externals;
};

/// Structurally verifies that every definition of combinator `name` is the
/// canonical stdlib reduction — `def name[{A}] : reduce[rel_primitive_X, A]`
/// (for count, `reduce[rel_primitive_add, (A, 1)]`). The name-level analysis
/// and this translator both key on the names min/max/sum/count; a user
/// redefinition would make that keying unsound, so a shadowed combinator
/// rejects the rule (and the interpreter, which resolves names normally,
/// stays the authority).
bool IsCanonicalCombinator(const std::string& name, datalog::AggOp op,
                           const ComponentContext& ctx) {
  auto it = ctx.defs_by_name->find(name);
  if (it == ctx.defs_by_name->end() || it->second.empty()) return false;
  for (const Def* def : it->second) {
    if (!def->square_head || def->is_ic || def->params.size() != 1 ||
        def->params[0].kind != Binding::Kind::kRelVar ||
        def->params[0].domain != nullptr || !def->body) {
      return false;
    }
    const std::string& rel_param = def->params[0].name;
    ExprPtr base;
    std::vector<Arg> args;
    Flatten(def->body, &base, &args);
    if (base->kind != ExprKind::kIdent ||
        base->name != builtin_names::kReduce || args.size() != 2 ||
        !args[0].expr || !args[1].expr) {
      return false;
    }
    if (args[0].expr->kind != ExprKind::kIdent) return false;
    const std::string prim = CanonicalBuiltin(args[0].expr->name);
    bool prim_ok = false;
    switch (op) {
      case datalog::AggOp::kMin: prim_ok = prim == "minimum"; break;
      case datalog::AggOp::kMax: prim_ok = prim == "maximum"; break;
      case datalog::AggOp::kSum:
      case datalog::AggOp::kCount: prim_ok = prim == "add"; break;
    }
    if (!prim_ok) return false;
    const ExprPtr& input = args[1].expr;
    if (op == datalog::AggOp::kCount) {
      if (input->kind != ExprKind::kProduct || input->children.size() != 2 ||
          input->children[0]->kind != ExprKind::kIdent ||
          input->children[0]->name != rel_param ||
          input->children[1]->kind != ExprKind::kLiteral ||
          !input->children[1]->literal.is_int() ||
          input->children[1]->literal.AsInt() != 1) {
        return false;
      }
    } else if (input->kind != ExprKind::kIdent || input->name != rel_param) {
      return false;
    }
  }
  return true;
}

/// A matched aggregate head form: the conjunct `r = op[abstraction]` (either
/// orientation) whose `r` is the def's final parameter.
struct AggMatch {
  datalog::AggOp op;
  const Expr* abstraction;
};

/// True when the def can carry an aggregate head form at all: a final kVar
/// parameter, unrepeated and undomained, that names the aggregate result.
bool HasResultParam(const Def& def) {
  if (def.params.empty()) return false;
  const Binding& last = def.params.back();
  if (last.kind != Binding::Kind::kVar || last.domain) return false;
  for (size_t i = 0; i + 1 < def.params.size(); ++i) {
    if (def.params[i].kind == Binding::Kind::kVar &&
        def.params[i].name == last.name) {
      return false;
    }
  }
  return true;
}

/// Matches `result = op[(binders): formula]` / `op[...] = result` where
/// `result` is def's final parameter. Returns nullopt (without failing) when
/// the conjunct is anything else; the caller's plain path then rejects the
/// stray aggregate application with its usual diagnostics.
std::optional<AggMatch> MatchAggEq(const ExprPtr& conjunct, const Def& def,
                                   const ComponentContext& ctx) {
  if (!HasResultParam(def)) return std::nullopt;
  const std::string& result = def.params.back().name;
  if (conjunct->kind != ExprKind::kApplication || !conjunct->full) {
    return std::nullopt;
  }
  ExprPtr base;
  std::vector<Arg> args;
  Flatten(conjunct, &base, &args);
  if (base->kind != ExprKind::kIdent || CanonicalBuiltin(base->name) != "eq" ||
      args.size() != 2 || !args[0].expr || !args[1].expr) {
    return std::nullopt;
  }
  for (int side = 0; side < 2; ++side) {
    const ExprPtr& r = args[side].expr;
    const ExprPtr& app = args[1 - side].expr;
    if (r->kind != ExprKind::kIdent || r->name != result) continue;
    if (app->kind != ExprKind::kApplication) continue;
    ExprPtr callee;
    std::vector<Arg> app_args;
    Flatten(app, &callee, &app_args);
    if (callee->kind != ExprKind::kIdent) continue;
    std::optional<datalog::AggOp> op = AggOpOf(callee->name);
    if (!op) continue;
    // The combinator name must not be captured by a def parameter, and must
    // resolve to the canonical stdlib reduction (see IsCanonicalCombinator).
    bool shadowed_by_param = false;
    for (const Binding& b : def.params) shadowed_by_param |= b.name == callee->name;
    if (shadowed_by_param) continue;
    if (!IsCanonicalCombinator(callee->name, *op, ctx)) continue;
    if (app_args.size() != 1 || !app_args[0].expr ||
        app_args[0].expr->kind != ExprKind::kAbstraction) {
      continue;
    }
    return AggMatch{*op, app_args[0].expr.get()};
  }
  return std::nullopt;
}

/// Fuses `Assign(t, op, a, b)` + `Compare(kEq, v, t)` pairs into a direct
/// `Assign(v, op, a, b)` when the rewrite is observationally equivalent:
/// `t` must be a pure lowering temp (its only uses are the assignment target
/// and this equality) and `v` a variable no generator binds and the head
/// does not carry. Under those conditions the planner would have turned the
/// equality into a kBind of `v` to `t`'s value — exactly what the direct
/// assignment produces — so plans, extents, and error behavior are
/// unchanged. `v` bound elsewhere keeps the Compare form: equality against
/// a bound variable is numeric-tolerant (EvalCompare equates Int 1 with
/// Float 1.0) while a bound Assign target checks exact value identity.
///
/// The point of the fusion is the recursive-aggregate monotonicity check
/// (datalog/eval.cc CheckMonotoneRule): `d = d1 + w` over a changing
/// aggregate result must reach the aggregated value as a *tainted
/// assignment* — allowed — rather than a tainted comparison filter, which
/// is (correctly) rejected. Without it, `min[... j = j1 + j2 ...]` over a
/// recursive shortest-path atom can never qualify for the fast path.
void FuseAssignEq(datalog::Rule* rule) {
  using datalog::Literal;
  using datalog::Term;
  // Count every variable occurrence across the rule, and mark variables a
  // generator (positive atom, range output, assignment target) binds.
  std::map<int, int> occurrences;
  std::set<int> generator_bound;
  std::set<int> head_vars;
  auto count_term = [&](const Term& t) {
    if (t.is_var()) ++occurrences[t.var];
  };
  for (const Term& t : rule->head.terms) {
    count_term(t);
    if (t.is_var()) head_vars.insert(t.var);
  }
  for (const Literal& lit : rule->body) {
    switch (lit.kind) {
      case Literal::Kind::kPositive:
      case Literal::Kind::kNegative:
        for (const Term& t : lit.atom.terms) count_term(t);
        if (lit.kind == Literal::Kind::kPositive) {
          for (const Term& t : lit.atom.terms) {
            if (t.is_var()) generator_bound.insert(t.var);
          }
        }
        break;
      case Literal::Kind::kCompare:
        count_term(lit.lhs);
        count_term(lit.rhs);
        break;
      case Literal::Kind::kAssign:
        ++occurrences[lit.target];
        generator_bound.insert(lit.target);
        count_term(lit.lhs);
        count_term(lit.rhs);
        break;
      case Literal::Kind::kRange:
        for (const Term& t : lit.atom.terms) count_term(t);
        if (lit.atom.terms[3].is_var()) {
          generator_bound.insert(lit.atom.terms[3].var);
        }
        break;
    }
  }
  if (rule->agg) {
    count_term(rule->agg->value);
    for (const Term& t : rule->agg->witness) count_term(t);
  }

  std::vector<bool> drop(rule->body.size(), false);
  for (size_t i = 0; i < rule->body.size(); ++i) {
    const Literal& cmp = rule->body[i];
    if (cmp.kind != Literal::Kind::kCompare || cmp.negated ||
        cmp.cmp_op != datalog::CmpOp::kEq) {
      continue;
    }
    for (int side = 0; side < 2; ++side) {
      const Term& vt = side == 0 ? cmp.lhs : cmp.rhs;
      const Term& tt = side == 0 ? cmp.rhs : cmp.lhs;
      if (!vt.is_var() || !tt.is_var() || vt.var == tt.var) continue;
      // The temp side: target of some assignment, used nowhere else.
      if (occurrences[tt.var] != 2) continue;
      // The bindee side: nothing else binds it, and it is not a head
      // variable (incremental re-derivation pre-binds head variables, which
      // would reintroduce the exact-identity check).
      if (generator_bound.count(vt.var) || head_vars.count(vt.var)) continue;
      Literal* assign = nullptr;
      for (Literal& cand : rule->body) {
        if (cand.kind == Literal::Kind::kAssign && cand.target == tt.var) {
          assign = &cand;
          break;
        }
      }
      if (assign == nullptr) continue;
      assign->target = vt.var;
      generator_bound.insert(vt.var);
      drop[i] = true;
      break;
    }
  }
  size_t kept = 0;
  for (size_t i = 0; i < rule->body.size(); ++i) {
    if (drop[i]) continue;
    if (kept != i) rule->body[kept] = std::move(rule->body[i]);
    ++kept;
  }
  rule->body.resize(kept);
}

/// Translates one `def` into one Datalog rule. Fails (returns nullopt with
/// *why set) on any construct outside the classical fragment.
class RuleLowerer {
 public:
  RuleLowerer(const ComponentContext& ctx, std::string* why)
      : ctx_(ctx), why_(why) {
    scopes_.emplace_back();
  }

  /// Lowers one or-free alternative of `def` into one Datalog rule.
  /// `conjuncts` is the alternative's conjunction spine; for an aggregate
  /// head form, `agg` carries the matched combinator (the aggregate-equality
  /// conjunct itself must already be removed from `conjuncts`) and
  /// `agg_body` one or-free alternative of its abstraction body — a formula
  /// for `(binders): f` abstractions, a value expression for `[binders]: e`.
  std::optional<datalog::Rule> Lower(const Def& def,
                                     const std::vector<ExprPtr>& conjuncts,
                                     const AggMatch* agg,
                                     const ExprPtr& agg_body) {
    if (def.square_head) return Fail("[]-headed rule (expression body)");
    if (CountSOParams(def) > 0) return Fail("relation-variable parameters");
    rule_.head.pred = def.name;
    // For an aggregate head form the final parameter is the result column:
    // the Datalog head carries the GROUP columns only and the engine appends
    // the folded result (datalog::Aggregate). The result name is left
    // undeclared, so any other use of it fails the rule — a filter on the
    // aggregate result has no classical-fragment equivalent.
    const size_t head_params = def.params.size() - (agg != nullptr ? 1 : 0);
    for (size_t i = 0; i < head_params; ++i) {
      const Binding& b = def.params[i];
      switch (b.kind) {
        case Binding::Kind::kVar: {
          if (scopes_.back().count(b.name)) {
            return Fail("repeated head variable");
          }
          int id = Declare(b.name);
          rule_.head.terms.push_back(Term::Var(id));
          if (b.domain && !LowerDomain(b.domain, id)) return std::nullopt;
          break;
        }
        case Binding::Kind::kLiteral:
          rule_.head.terms.push_back(Term::Const(b.literal));
          break;
        default:
          return Fail("non-variable head binding");
      }
    }
    for (const ExprPtr& c : conjuncts) {
      if (!LowerFormula(c, /*positive=*/true)) return std::nullopt;
    }
    if (agg != nullptr && !LowerAggregate(*agg, agg_body)) return std::nullopt;
    FuseAssignEq(&rule_);
    return std::move(rule_);
  }

 private:
  std::optional<datalog::Rule> Fail(const std::string& reason) {
    if (why_ && why_->empty()) *why_ = reason;
    return std::nullopt;
  }
  bool FailBool(const std::string& reason) {
    if (why_ && why_->empty()) *why_ = reason;
    return false;
  }

  int Declare(const std::string& name) {
    int id = next_var_++;
    scopes_.back()[name] = id;
    return id;
  }

  const int* Lookup(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto found = it->find(name);
      if (found != it->end()) return &found->second;
    }
    return nullptr;
  }

  /// `x in Expr` binding domains: supported when the domain is a plain
  /// relation name, which becomes a positive membership atom.
  bool LowerDomain(const ExprPtr& domain, int var) {
    if (domain->kind != ExprKind::kIdent || Lookup(domain->name)) {
      return FailBool("unsupported binding domain");
    }
    return EmitRelationAtom(domain->name, {Term::Var(var)},
                            /*positive=*/true);
  }

  /// Classifies `name` as member / external and appends the atom. External
  /// names must be first-order (no second-order definitions): their extents
  /// are materialized as EDB facts by the caller.
  bool EmitRelationAtom(const std::string& name, std::vector<Term> terms,
                        bool positive) {
    if (!ctx_.members.count(name)) {
      auto sig = ctx_.max_sig->find(name);
      if (sig != ctx_.max_sig->end() && sig->second > 0) {
        return FailBool("external relation '" + name +
                        "' has second-order definitions");
      }
      ctx_.externals->insert(name);
    } else if (!positive) {
      // Cannot happen for monotone components, but keep the guard local.
      return FailBool("negated member reference");
    }
    Atom atom;
    atom.pred = name;
    atom.terms = std::move(terms);
    rule_.body.push_back(positive ? Literal::Positive(std::move(atom))
                                  : Literal::Negative(std::move(atom)));
    return true;
  }

  /// A first-order term: a literal, an in-scope variable, a wildcard
  /// (fresh variable), or an arithmetic application reduced to a fresh
  /// variable through an assignment literal. `allow_aux` is false inside
  /// negated atoms and negated comparisons: the assignment would be emitted
  /// positively, outside the negation, so a failing arithmetic (e.g.
  /// "a" + 1) would falsify the whole body where Rel makes the negation
  /// vacuously true.
  std::optional<Term> TermOf(const ExprPtr& e, bool allow_aux = true) {
    if (!e) return Term::Var(next_var_++);  // wildcard argument slot
    switch (e->kind) {
      case ExprKind::kLiteral:
        return Term::Const(e->literal);
      case ExprKind::kRelNameLit:
        return Term::Const(Value::Entity("rel", e->name));
      case ExprKind::kWildcard:
        return Term::Var(next_var_++);
      case ExprKind::kIdent: {
        const int* id = Lookup(e->name);
        if (!id) {
          if (why_ && why_->empty()) {
            *why_ = "relation-valued argument '" + e->name + "'";
          }
          return std::nullopt;
        }
        return Term::Var(*id);
      }
      case ExprKind::kApplication: {
        if (!allow_aux) {
          if (why_ && why_->empty()) {
            *why_ = "computed argument under negation";
          }
          return std::nullopt;
        }
        // Arithmetic subexpression: reduce to a fresh variable.
        ExprPtr base;
        std::vector<Arg> args;
        Flatten(e, &base, &args);
        if (base->kind != ExprKind::kIdent || Lookup(base->name)) {
          if (why_ && why_->empty()) *why_ = "unsupported argument expression";
          return std::nullopt;
        }
        const bool is_defined = ctx_.defs_by_name->count(base->name) > 0;
        if (is_defined || !FindBuiltin(base->name)) {
          // Relation application used as a value: A[i, k] denotes the set of
          // last-column continuations of (i, k) — a positive atom with a
          // fresh result variable. Faithful when A's extent has the uniform
          // arity |args| + 1 (a Rel relation of mixed arities would also
          // admit other suffix widths); the Datalog side pins one arity, as
          // full atom applications already do.
          std::vector<Term> terms;
          terms.reserve(args.size() + 1);
          for (const Arg& arg : args) {
            if (arg.annotation == Annotation::kSecondOrder) {
              if (why_ && why_->empty()) *why_ = "second-order argument";
              return std::nullopt;
            }
            std::optional<Term> t = TermOf(arg.expr);
            if (!t) return std::nullopt;
            terms.push_back(*t);
          }
          int result = next_var_++;
          terms.push_back(Term::Var(result));
          if (!EmitRelationAtom(base->name, std::move(terms),
                                /*positive=*/true)) {
            return std::nullopt;
          }
          return Term::Var(result);
        }
        std::optional<ArithOp> op = ArithOpOf(CanonicalBuiltin(base->name));
        if (!op || args.size() != 2) {
          if (why_ && why_->empty()) {
            *why_ = "unsupported builtin '" + base->name + "'";
          }
          return std::nullopt;
        }
        std::optional<Term> a = TermOf(args[0].expr);
        if (!a) return std::nullopt;
        std::optional<Term> b = TermOf(args[1].expr);
        if (!b) return std::nullopt;
        int target = next_var_++;
        rule_.body.push_back(Literal::Assign(target, *op, *a, *b));
        return Term::Var(target);
      }
      default:
        if (why_ && why_->empty()) *why_ = "unsupported argument expression";
        return std::nullopt;
    }
  }

  /// Translates the matched aggregate combinator into the rule's
  /// datalog::Aggregate: abstraction binders become witness columns (all but
  /// the last, which is the folded value — Rel's aggregates fold the last
  /// column of the deduplicated abstraction extent) and the abstraction body
  /// joins the rule body. The binders open their own scope, so the
  /// abstraction can only read the def's group parameters — exactly Rel's
  /// grouping (a def body has no other named outer variables).
  bool LowerAggregate(const AggMatch& agg, const ExprPtr& agg_body) {
    const Expr& abs = *agg.abstraction;
    scopes_.emplace_back();
    std::vector<int> binder_ids;
    for (const Binding& b : abs.bindings) {
      if (b.kind != Binding::Kind::kVar) {
        scopes_.pop_back();
        return FailBool("non-variable aggregate binder");
      }
      if (scopes_.back().count(b.name)) {
        scopes_.pop_back();
        return FailBool("repeated aggregate binder");
      }
      int id = Declare(b.name);
      binder_ids.push_back(id);
      if (b.domain && !LowerDomain(b.domain, id)) {
        scopes_.pop_back();
        return false;
      }
    }
    datalog::Aggregate out;
    out.op = agg.op;
    if (abs.square) {
      // [binders]: e — the expression computes the folded value; every
      // binder is a witness column.
      std::optional<Term> value = TermOf(agg_body);
      if (!value) {
        scopes_.pop_back();
        return false;
      }
      for (int id : binder_ids) out.witness.push_back(Term::Var(id));
      if (agg.op == datalog::AggOp::kCount) {
        // count[[k]: e] counts distinct (k..., e) rows: the computed value
        // joins the witness and the contribution value is the constant 1.
        out.witness.push_back(*value);
        out.value = Term::Const(Value::Int(1));
      } else {
        out.value = *value;
      }
    } else {
      if (!LowerFormula(agg_body, /*positive=*/true)) {
        scopes_.pop_back();
        return false;
      }
      if (agg.op == datalog::AggOp::kCount) {
        for (int id : binder_ids) out.witness.push_back(Term::Var(id));
        out.value = Term::Const(Value::Int(1));
      } else {
        if (binder_ids.empty()) {
          scopes_.pop_back();
          return FailBool("aggregate abstraction without binders");
        }
        for (size_t i = 0; i + 1 < binder_ids.size(); ++i) {
          out.witness.push_back(Term::Var(binder_ids[i]));
        }
        out.value = Term::Var(binder_ids.back());
      }
    }
    scopes_.pop_back();
    rule_.agg = std::move(out);
    return true;
  }

  /// A full application used as a formula: relation atom, comparison, or
  /// ternary arithmetic builtin.
  bool LowerApplication(const ExprPtr& expr, bool positive) {
    ExprPtr base;
    std::vector<Arg> args;
    Flatten(expr, &base, &args);
    if (base->kind != ExprKind::kIdent) {
      return FailBool("application of a computed relation");
    }
    const std::string& name = base->name;
    if (Lookup(name)) return FailBool("application of a local variable");

    const bool is_defined = ctx_.defs_by_name->count(name) > 0;
    const Builtin* builtin = is_defined ? nullptr : FindBuiltin(name);
    if (builtin) {
      std::string canonical = CanonicalBuiltin(name);
      if (std::optional<CmpOp> cmp = CmpOpOf(canonical)) {
        if (args.size() != 2) return FailBool("comparison arity");
        // Negated comparisons must complement the WHOLE outcome, kUnordered
        // included: `not (x < 1)` holds for x = "a" in Rel, while the naive
        // inverse x >= 1 does not. Literal::NegatedCompare carries exactly
        // that semantics. Computed arguments stay disallowed under negation
        // (allow_aux=false): their auxiliary assignment would be emitted
        // positively, outside the negation, so a failing arithmetic would
        // falsify the body where Rel makes the negation vacuously true.
        std::optional<Term> a = TermOf(args[0].expr, /*allow_aux=*/positive);
        if (!a) return false;
        std::optional<Term> b = TermOf(args[1].expr, /*allow_aux=*/positive);
        if (!b) return false;
        rule_.body.push_back(positive
                                 ? Literal::Compare(*cmp, *a, *b)
                                 : Literal::NegatedCompare(*cmp, *a, *b));
        return true;
      }
      // Other negated builtins (arithmetic equation forms, range) are
      // rejected: their auxiliary assignment cannot be emitted under the
      // negation.
      if (!positive) return FailBool("negated builtin application");
      if (canonical == "range") {
        // range(lo, hi, step, x): same generator semantics as the Datalog
        // kRange literal (program.h), so this is a direct translation.
        if (args.size() != 4) return FailBool("range arity");
        std::vector<Term> terms;
        for (const Arg& arg : args) {
          std::optional<Term> t = TermOf(arg.expr);
          if (!t) return false;
          terms.push_back(*t);
        }
        rule_.body.push_back(
            Literal::Range(terms[0], terms[1], terms[2], terms[3]));
        return true;
      }
      if (std::optional<ArithOp> op = ArithOpOf(canonical)) {
        // add(a, b, c): compute into a fresh variable, then equate with the
        // result term — numeric-tolerant, matching the builtin's semantics.
        if (args.size() != 3) return FailBool("arithmetic builtin arity");
        std::optional<Term> a = TermOf(args[0].expr);
        if (!a) return false;
        std::optional<Term> b = TermOf(args[1].expr);
        if (!b) return false;
        std::optional<Term> c = TermOf(args[2].expr);
        if (!c) return false;
        int target = next_var_++;
        rule_.body.push_back(Literal::Assign(target, *op, *a, *b));
        rule_.body.push_back(
            Literal::Compare(CmpOp::kEq, Term::Var(target), *c));
        return true;
      }
      return FailBool("unsupported builtin '" + name + "'");
    }

    // Named relation (member, defined external, or base).
    std::vector<Term> terms;
    terms.reserve(args.size());
    for (const Arg& arg : args) {
      if (arg.annotation == Annotation::kSecondOrder) {
        return FailBool("second-order argument");
      }
      std::optional<Term> t = TermOf(arg.expr, /*allow_aux=*/positive);
      if (!t) return false;
      terms.push_back(*t);
    }
    return EmitRelationAtom(name, std::move(terms), positive);
  }

  bool LowerFormula(const ExprPtr& expr, bool positive) {
    switch (expr->kind) {
      case ExprKind::kAnd:
      case ExprKind::kWhere:
        if (!positive) return FailBool("negated conjunction");
        return LowerFormula(expr->children[0], true) &&
               LowerFormula(expr->children[1], true);
      case ExprKind::kNot:
        return LowerFormula(expr->children[0], !positive);
      case ExprKind::kExists: {
        if (!positive) return FailBool("negated quantifier");
        scopes_.emplace_back();
        for (const Binding& b : expr->bindings) {
          if (b.kind != Binding::Kind::kVar) {
            scopes_.pop_back();
            return FailBool("non-variable quantifier binding");
          }
          int id = Declare(b.name);
          if (b.domain && !LowerDomain(b.domain, id)) {
            scopes_.pop_back();
            return false;
          }
        }
        bool ok = LowerFormula(expr->body, true);
        scopes_.pop_back();
        return ok;
      }
      case ExprKind::kTrueLit:
        return positive ? true : FailBool("negated true");
      case ExprKind::kApplication:
        if (!expr->full) return FailBool("partial application as formula");
        return LowerApplication(expr, positive);
      default:
        return FailBool(std::string("unsupported construct (") +
                        ExprKindName(expr->kind) + ")");
    }
  }

  const ComponentContext& ctx_;
  std::string* why_;
  std::vector<std::map<std::string, int>> scopes_;
  int next_var_ = 0;
  datalog::Rule rule_;
};

/// Lowers one def into one or more Datalog rules: disjunctive bodies split
/// into or-free alternatives (one rule each), and an aggregate head form
/// additionally splits its abstraction body — the engine folds one merged
/// bucket per group across a predicate's aggregate rules, which is exactly
/// the aggregate of the alternatives' union. Appends to `out`; false (with
/// *why set) on any construct outside the fragment.
bool LowerDef(const Def& def, const ComponentContext& ctx,
              std::vector<datalog::Rule>* out, std::string* why) {
  auto fail = [&](const std::string& reason) {
    if (why && why->empty()) *why = reason;
    return false;
  };
  if (!def.body) return fail("def without a body");
  for (const ExprPtr& branch : Alternatives(def.body)) {
    std::vector<ExprPtr> conjuncts;
    FlattenConjunction(branch, &conjuncts);
    std::optional<AggMatch> agg;
    size_t agg_index = 0;
    for (size_t i = 0; i < conjuncts.size(); ++i) {
      std::optional<AggMatch> m = MatchAggEq(conjuncts[i], def, ctx);
      if (!m) continue;
      if (agg) return fail("multiple aggregates in one rule");
      agg = m;
      agg_index = i;
    }
    if (!agg) {
      RuleLowerer lowerer(ctx, why);
      std::optional<datalog::Rule> rule =
          lowerer.Lower(def, conjuncts, nullptr, nullptr);
      if (!rule) return false;
      out->push_back(std::move(*rule));
      continue;
    }
    conjuncts.erase(conjuncts.begin() + agg_index);
    const Expr& abs = *agg->abstraction;
    std::vector<ExprPtr> agg_bodies =
        abs.square ? std::vector<ExprPtr>{abs.body} : Alternatives(abs.body);
    for (const ExprPtr& agg_body : agg_bodies) {
      RuleLowerer lowerer(ctx, why);
      std::optional<datalog::Rule> rule =
          lowerer.Lower(def, conjuncts, &*agg, agg_body);
      if (!rule) return false;
      out->push_back(std::move(*rule));
    }
  }
  return true;
}

}  // namespace

std::optional<LoweredComponent> LowerComponent(
    const std::string& name, const ProgramAnalysis& analysis,
    const std::vector<std::shared_ptr<Def>>& defs, std::string* why) {
  if (why) why->clear();
  std::vector<std::string> members = analysis.ComponentMembers(name);
  if (members.empty()) {
    if (why) *why = "no rules";
    return std::nullopt;
  }

  std::map<std::string, std::vector<const Def*>> by_name;
  std::map<std::string, size_t> max_sig;
  for (const auto& def : defs) {
    if (def->is_ic) continue;
    by_name[def->name].push_back(def.get());
    size_t& sig = max_sig[def->name];
    sig = std::max(sig, CountSOParams(*def));
  }

  ComponentContext ctx;
  ctx.members.insert(members.begin(), members.end());
  ctx.defs_by_name = &by_name;
  ctx.max_sig = &max_sig;
  std::set<std::string> externals;
  ctx.externals = &externals;

  LoweredComponent out;
  for (const std::string& member : members) {
    if (max_sig[member] > 0) {
      if (why) *why = "member '" + member + "' has second-order definitions";
      return std::nullopt;
    }
    for (const Def* def : by_name[member]) {
      std::vector<datalog::Rule> rules;
      if (!LowerDef(*def, ctx, &rules, why)) return std::nullopt;
      for (datalog::Rule& rule : rules) {
        out.program.AddRule(std::move(rule));
      }
    }
  }
  out.members = std::move(members);
  out.externals.assign(externals.begin(), externals.end());
  return out;
}

std::optional<datalog::DemandGoal> DemandGoalFor(
    const LoweredComponent& lowered, const std::string& name,
    const std::vector<std::optional<Value>>& pattern) {
  bool member = false;
  for (const std::string& m : lowered.members) member |= (m == name);
  if (!member) return std::nullopt;
  // Aggregates are demand-opaque: folding a partial bucket would be wrong,
  // so the magic transform degenerates to the identity and a demanded cone
  // buys nothing over the memoized full extent. Decline the goal so callers
  // evaluate (and memoize) the component whole.
  if (lowered.program.HasAggregates()) return std::nullopt;
  datalog::DemandGoal goal;
  goal.pred = name;
  goal.pattern = pattern;
  if (!goal.AnyBound()) return std::nullopt;
  return goal;
}

}  // namespace rel
