#include "core/lowering.h"

#include <algorithm>
#include <map>

#include "core/builtins.h"

namespace rel {

namespace {

using datalog::ArithOp;
using datalog::Atom;
using datalog::CmpOp;
using datalog::Literal;
using datalog::Term;

/// Leading relation-variable parameter count (mirrors
/// Solver::CountSOParams without pulling in the solver).
size_t CountSOParams(const Def& def) {
  size_t n = 0;
  while (n < def.params.size() &&
         def.params[n].kind == Binding::Kind::kRelVar) {
    ++n;
  }
  return n;
}

/// Canonical builtin name: the parser emits `rel_primitive_eq` etc.; the
/// registry also accepts the bare names, so compare against those.
std::string CanonicalBuiltin(const std::string& name) {
  constexpr char kPrefix[] = "rel_primitive_";
  if (name.rfind(kPrefix, 0) == 0) return name.substr(sizeof(kPrefix) - 1);
  return name;
}

std::optional<CmpOp> CmpOpOf(const std::string& canonical) {
  if (canonical == "eq") return CmpOp::kEq;
  if (canonical == "neq") return CmpOp::kNeq;
  if (canonical == "lt") return CmpOp::kLt;
  if (canonical == "lt_eq") return CmpOp::kLe;
  if (canonical == "gt") return CmpOp::kGt;
  if (canonical == "gt_eq") return CmpOp::kGe;
  return std::nullopt;
}

std::optional<ArithOp> ArithOpOf(const std::string& canonical) {
  if (canonical == "add") return ArithOp::kAdd;
  if (canonical == "subtract") return ArithOp::kSub;
  if (canonical == "multiply") return ArithOp::kMul;
  if (canonical == "divide") return ArithOp::kDiv;
  if (canonical == "modulo") return ArithOp::kMod;
  if (canonical == "minimum") return ArithOp::kMin;
  if (canonical == "maximum") return ArithOp::kMax;
  return std::nullopt;
}

/// Unwraps chained partial applications: T[a][b](c) has base T and
/// arguments a, b, c (the solver's FlattenApplication, re-stated here on
/// the uncompiled AST).
void Flatten(const ExprPtr& expr, ExprPtr* base, std::vector<Arg>* args) {
  if (expr->kind == ExprKind::kApplication) {
    if (expr->target->kind == ExprKind::kApplication && !expr->target->full) {
      Flatten(expr->target, base, args);
      for (const Arg& a : expr->args) args->push_back(a);
      return;
    }
    *base = expr->target;
    *args = expr->args;
    return;
  }
  *base = expr;
  args->clear();
}

/// Per-component translation context, shared by all of its rules.
struct ComponentContext {
  std::set<std::string> members;
  const std::map<std::string, std::vector<const Def*>>* defs_by_name;
  const std::map<std::string, size_t>* max_sig;
  std::set<std::string>* externals;
};

/// Translates one `def` into one Datalog rule. Fails (returns nullopt with
/// *why set) on any construct outside the classical fragment.
class RuleLowerer {
 public:
  RuleLowerer(const ComponentContext& ctx, std::string* why)
      : ctx_(ctx), why_(why) {
    scopes_.emplace_back();
  }

  std::optional<datalog::Rule> Lower(const Def& def) {
    if (def.square_head) return Fail("[]-headed rule (expression body)");
    if (CountSOParams(def) > 0) return Fail("relation-variable parameters");
    rule_.head.pred = def.name;
    for (const Binding& b : def.params) {
      switch (b.kind) {
        case Binding::Kind::kVar: {
          if (scopes_.back().count(b.name)) {
            return Fail("repeated head variable");
          }
          int id = Declare(b.name);
          rule_.head.terms.push_back(Term::Var(id));
          if (b.domain && !LowerDomain(b.domain, id)) return std::nullopt;
          break;
        }
        case Binding::Kind::kLiteral:
          rule_.head.terms.push_back(Term::Const(b.literal));
          break;
        default:
          return Fail("non-variable head binding");
      }
    }
    if (!LowerFormula(def.body, /*positive=*/true)) return std::nullopt;
    return std::move(rule_);
  }

 private:
  std::optional<datalog::Rule> Fail(const std::string& reason) {
    if (why_ && why_->empty()) *why_ = reason;
    return std::nullopt;
  }
  bool FailBool(const std::string& reason) {
    if (why_ && why_->empty()) *why_ = reason;
    return false;
  }

  int Declare(const std::string& name) {
    int id = next_var_++;
    scopes_.back()[name] = id;
    return id;
  }

  const int* Lookup(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto found = it->find(name);
      if (found != it->end()) return &found->second;
    }
    return nullptr;
  }

  /// `x in Expr` binding domains: supported when the domain is a plain
  /// relation name, which becomes a positive membership atom.
  bool LowerDomain(const ExprPtr& domain, int var) {
    if (domain->kind != ExprKind::kIdent || Lookup(domain->name)) {
      return FailBool("unsupported binding domain");
    }
    return EmitRelationAtom(domain->name, {Term::Var(var)},
                            /*positive=*/true);
  }

  /// Classifies `name` as member / external and appends the atom. External
  /// names must be first-order (no second-order definitions): their extents
  /// are materialized as EDB facts by the caller.
  bool EmitRelationAtom(const std::string& name, std::vector<Term> terms,
                        bool positive) {
    if (!ctx_.members.count(name)) {
      auto sig = ctx_.max_sig->find(name);
      if (sig != ctx_.max_sig->end() && sig->second > 0) {
        return FailBool("external relation '" + name +
                        "' has second-order definitions");
      }
      ctx_.externals->insert(name);
    } else if (!positive) {
      // Cannot happen for monotone components, but keep the guard local.
      return FailBool("negated member reference");
    }
    Atom atom;
    atom.pred = name;
    atom.terms = std::move(terms);
    rule_.body.push_back(positive ? Literal::Positive(std::move(atom))
                                  : Literal::Negative(std::move(atom)));
    return true;
  }

  /// A first-order term: a literal, an in-scope variable, a wildcard
  /// (fresh variable), or an arithmetic application reduced to a fresh
  /// variable through an assignment literal. `allow_aux` is false inside
  /// negated atoms and negated comparisons: the assignment would be emitted
  /// positively, outside the negation, so a failing arithmetic (e.g.
  /// "a" + 1) would falsify the whole body where Rel makes the negation
  /// vacuously true.
  std::optional<Term> TermOf(const ExprPtr& e, bool allow_aux = true) {
    if (!e) return Term::Var(next_var_++);  // wildcard argument slot
    switch (e->kind) {
      case ExprKind::kLiteral:
        return Term::Const(e->literal);
      case ExprKind::kRelNameLit:
        return Term::Const(Value::Entity("rel", e->name));
      case ExprKind::kWildcard:
        return Term::Var(next_var_++);
      case ExprKind::kIdent: {
        const int* id = Lookup(e->name);
        if (!id) {
          if (why_ && why_->empty()) {
            *why_ = "relation-valued argument '" + e->name + "'";
          }
          return std::nullopt;
        }
        return Term::Var(*id);
      }
      case ExprKind::kApplication: {
        if (!allow_aux) {
          if (why_ && why_->empty()) {
            *why_ = "computed argument under negation";
          }
          return std::nullopt;
        }
        // Arithmetic subexpression: reduce to a fresh variable.
        ExprPtr base;
        std::vector<Arg> args;
        Flatten(e, &base, &args);
        if (base->kind != ExprKind::kIdent || Lookup(base->name) ||
            ctx_.defs_by_name->count(base->name) || !FindBuiltin(base->name)) {
          if (why_ && why_->empty()) *why_ = "unsupported argument expression";
          return std::nullopt;
        }
        std::optional<ArithOp> op = ArithOpOf(CanonicalBuiltin(base->name));
        if (!op || args.size() != 2) {
          if (why_ && why_->empty()) {
            *why_ = "unsupported builtin '" + base->name + "'";
          }
          return std::nullopt;
        }
        std::optional<Term> a = TermOf(args[0].expr);
        if (!a) return std::nullopt;
        std::optional<Term> b = TermOf(args[1].expr);
        if (!b) return std::nullopt;
        int target = next_var_++;
        rule_.body.push_back(Literal::Assign(target, *op, *a, *b));
        return Term::Var(target);
      }
      default:
        if (why_ && why_->empty()) *why_ = "unsupported argument expression";
        return std::nullopt;
    }
  }

  /// A full application used as a formula: relation atom, comparison, or
  /// ternary arithmetic builtin.
  bool LowerApplication(const ExprPtr& expr, bool positive) {
    ExprPtr base;
    std::vector<Arg> args;
    Flatten(expr, &base, &args);
    if (base->kind != ExprKind::kIdent) {
      return FailBool("application of a computed relation");
    }
    const std::string& name = base->name;
    if (Lookup(name)) return FailBool("application of a local variable");

    const bool is_defined = ctx_.defs_by_name->count(name) > 0;
    const Builtin* builtin = is_defined ? nullptr : FindBuiltin(name);
    if (builtin) {
      std::string canonical = CanonicalBuiltin(name);
      if (std::optional<CmpOp> cmp = CmpOpOf(canonical)) {
        if (args.size() != 2) return FailBool("comparison arity");
        // Negated comparisons must complement the WHOLE outcome, kUnordered
        // included: `not (x < 1)` holds for x = "a" in Rel, while the naive
        // inverse x >= 1 does not. Literal::NegatedCompare carries exactly
        // that semantics. Computed arguments stay disallowed under negation
        // (allow_aux=false): their auxiliary assignment would be emitted
        // positively, outside the negation, so a failing arithmetic would
        // falsify the body where Rel makes the negation vacuously true.
        std::optional<Term> a = TermOf(args[0].expr, /*allow_aux=*/positive);
        if (!a) return false;
        std::optional<Term> b = TermOf(args[1].expr, /*allow_aux=*/positive);
        if (!b) return false;
        rule_.body.push_back(positive
                                 ? Literal::Compare(*cmp, *a, *b)
                                 : Literal::NegatedCompare(*cmp, *a, *b));
        return true;
      }
      // Other negated builtins (arithmetic equation forms) are rejected:
      // their auxiliary assignment cannot be emitted under the negation.
      if (!positive) return FailBool("negated builtin application");
      if (std::optional<ArithOp> op = ArithOpOf(canonical)) {
        // add(a, b, c): compute into a fresh variable, then equate with the
        // result term — numeric-tolerant, matching the builtin's semantics.
        if (args.size() != 3) return FailBool("arithmetic builtin arity");
        std::optional<Term> a = TermOf(args[0].expr);
        if (!a) return false;
        std::optional<Term> b = TermOf(args[1].expr);
        if (!b) return false;
        std::optional<Term> c = TermOf(args[2].expr);
        if (!c) return false;
        int target = next_var_++;
        rule_.body.push_back(Literal::Assign(target, *op, *a, *b));
        rule_.body.push_back(
            Literal::Compare(CmpOp::kEq, Term::Var(target), *c));
        return true;
      }
      return FailBool("unsupported builtin '" + name + "'");
    }

    // Named relation (member, defined external, or base).
    std::vector<Term> terms;
    terms.reserve(args.size());
    for (const Arg& arg : args) {
      if (arg.annotation == Annotation::kSecondOrder) {
        return FailBool("second-order argument");
      }
      std::optional<Term> t = TermOf(arg.expr, /*allow_aux=*/positive);
      if (!t) return false;
      terms.push_back(*t);
    }
    return EmitRelationAtom(name, std::move(terms), positive);
  }

  bool LowerFormula(const ExprPtr& expr, bool positive) {
    switch (expr->kind) {
      case ExprKind::kAnd:
      case ExprKind::kWhere:
        if (!positive) return FailBool("negated conjunction");
        return LowerFormula(expr->children[0], true) &&
               LowerFormula(expr->children[1], true);
      case ExprKind::kNot:
        return LowerFormula(expr->children[0], !positive);
      case ExprKind::kExists: {
        if (!positive) return FailBool("negated quantifier");
        scopes_.emplace_back();
        for (const Binding& b : expr->bindings) {
          if (b.kind != Binding::Kind::kVar) {
            scopes_.pop_back();
            return FailBool("non-variable quantifier binding");
          }
          int id = Declare(b.name);
          if (b.domain && !LowerDomain(b.domain, id)) {
            scopes_.pop_back();
            return false;
          }
        }
        bool ok = LowerFormula(expr->body, true);
        scopes_.pop_back();
        return ok;
      }
      case ExprKind::kTrueLit:
        return positive ? true : FailBool("negated true");
      case ExprKind::kApplication:
        if (!expr->full) return FailBool("partial application as formula");
        return LowerApplication(expr, positive);
      default:
        return FailBool(std::string("unsupported construct (") +
                        ExprKindName(expr->kind) + ")");
    }
  }

  const ComponentContext& ctx_;
  std::string* why_;
  std::vector<std::map<std::string, int>> scopes_;
  int next_var_ = 0;
  datalog::Rule rule_;
};

}  // namespace

std::optional<LoweredComponent> LowerComponent(
    const std::string& name, const ProgramAnalysis& analysis,
    const std::vector<std::shared_ptr<Def>>& defs, std::string* why) {
  if (why) why->clear();
  std::vector<std::string> members = analysis.ComponentMembers(name);
  if (members.empty()) {
    if (why) *why = "no rules";
    return std::nullopt;
  }

  std::map<std::string, std::vector<const Def*>> by_name;
  std::map<std::string, size_t> max_sig;
  for (const auto& def : defs) {
    if (def->is_ic) continue;
    by_name[def->name].push_back(def.get());
    size_t& sig = max_sig[def->name];
    sig = std::max(sig, CountSOParams(*def));
  }

  ComponentContext ctx;
  ctx.members.insert(members.begin(), members.end());
  ctx.defs_by_name = &by_name;
  ctx.max_sig = &max_sig;
  std::set<std::string> externals;
  ctx.externals = &externals;

  LoweredComponent out;
  for (const std::string& member : members) {
    if (max_sig[member] > 0) {
      if (why) *why = "member '" + member + "' has second-order definitions";
      return std::nullopt;
    }
    for (const Def* def : by_name[member]) {
      RuleLowerer lowerer(ctx, why);
      std::optional<datalog::Rule> rule = lowerer.Lower(*def);
      if (!rule) return std::nullopt;
      out.program.AddRule(std::move(*rule));
    }
  }
  out.members = std::move(members);
  out.externals.assign(externals.begin(), externals.end());
  return out;
}

std::optional<datalog::DemandGoal> DemandGoalFor(
    const LoweredComponent& lowered, const std::string& name,
    const std::vector<std::optional<Value>>& pattern) {
  bool member = false;
  for (const std::string& m : lowered.members) member |= (m == name);
  if (!member) return std::nullopt;
  datalog::DemandGoal goal;
  goal.pred = name;
  goal.pattern = pattern;
  if (!goal.AnyBound()) return std::nullopt;
  return goal;
}

}  // namespace rel
