// The interpreter: owns the rule set, evaluates relation *instances*
// (a defined relation specialized by its second-order arguments), and runs
// the fixpoint iteration that gives recursive rules their meaning
// (Section 3.3 and Addendum A).
//
// Two fixpoint modes:
//  - accumulate: least fixpoint by saturation; used when a recursive
//    component only references itself positively (classical stratified
//    Datalog semantics);
//  - replacement: R_{k+1} = base ∪ F(R_k) iterated to a fixed point with an
//    iteration cap; used when a component references itself under negation,
//    aggregation or a second-order argument (the paper's non-stratified
//    programs, e.g. PageRank's stop-condition recursion). This follows the
//    Statelog/Dedalus lineage the paper cites for such programs.

#ifndef REL_CORE_INTERP_H_
#define REL_CORE_INTERP_H_

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/analysis.h"
#include "core/ast.h"
#include "core/solver.h"
#include "data/database.h"

namespace rel {

/// Evaluation limits; exceeded limits raise kNonConvergent.
struct InterpOptions {
  /// Cap on fixpoint iterations per relation instance.
  int max_iterations = 100000;
  /// Cap on distinct relation instances (guards against runaway
  /// specialization chains like f[(A,1)] inside f[{A}]).
  int max_instances = 1000000;
  /// Worker threads for engine-level parallel work. The solver itself is
  /// single-threaded (one Interp mirrors one Rel transaction), but the
  /// Engine checks independent integrity constraints concurrently when this
  /// is > 1, and lowered recursive components (see below) inherit it as
  /// datalog::EvalOptions::num_threads. 0 means one worker per hardware
  /// thread.
  int num_threads = 1;
  /// Evaluate qualifying monotone recursive components with the planned,
  /// indexed Datalog evaluator (src/core/lowering.h) instead of the
  /// tuple-at-a-time saturation loop. Semantics-preserving; disable to force
  /// the classic fixpoint (ablation benchmarks, differential tests).
  bool lower_recursion = true;
};

/// Counters for the recursion-lowering pass, exposed per Interp (and copied
/// to Engine::last_lowering_stats() after each transaction).
struct LoweringStats {
  int components_lowered = 0;   // SCCs evaluated by the Datalog engine
  int components_rejected = 0;  // monotone SCCs outside the Datalog fragment
  uint64_t lowered_tuples = 0;  // tuples spliced back into instances
  std::vector<std::string> lowered_names;    // members, evaluation order
  std::vector<std::string> rejection_notes;  // "name: reason" per rejection
};

/// One evaluation context: a database plus a set of rules. Create one per
/// transaction; memoized results are valid for the lifetime of the object
/// (the database must not change underneath it).
class Interp {
 public:
  Interp(const Database* db, std::vector<std::shared_ptr<Def>> defs,
         InterpOptions options = {});

  const Database& db() const { return *db_; }
  const InterpOptions& options() const { return options_; }
  /// The full rule set this context was built from (used by the Engine to
  /// spin up sibling Interps for parallel constraint checking).
  const std::vector<std::shared_ptr<Def>>& defs() const { return all_defs_; }

  // --- definition lookup ---

  /// True if `name` has at least one rule (of any signature).
  bool HasDefs(const std::string& name) const;

  /// Rules of `name` whose leading relation-variable parameter count is
  /// `sig` (empty vector if none).
  const std::vector<std::shared_ptr<Def>>& DefsOf(const std::string& name,
                                                  size_t sig) const;

  /// Determines how many leading arguments of an application of `name` are
  /// second-order, using the rules' parameter signatures and the ?{}/&{}
  /// annotations of `args` (Addendum A). Throws kAmbiguous when rules
  /// disagree and the annotations do not disambiguate.
  size_t ResolveSig(const std::string& name, const std::vector<Arg>& args) const;

  /// All integrity constraints.
  const std::vector<std::shared_ptr<Def>>& ics() const { return ics_; }

  // --- evaluation ---

  /// Evaluates the instance of `name` (rules with `sig` leading relation
  /// parameters, specialized by `so_args`), running fixpoints as needed.
  /// The reference stays valid until the next call that evaluates the same
  /// instance (callers must copy out what they keep across re-entry).
  const Relation& EvalInstance(const std::string& name, size_t sig,
                               const std::vector<SOValue>& so_args);

  /// Materializes a second-order value into a finite relation. Memoized for
  /// closures. Throws kSafety for builtins and unsafe closures.
  const Relation& MaterializeSO(const SOValue& value);

  /// Evaluates an expression under an environment (used for closures,
  /// second-order arguments, and top-level query expressions).
  Relation EvalExprRel(const ExprPtr& expr, const Env& env);

  /// Applies a second-order value as a binary function (reduce operators):
  /// the unique v with (a, b, v) in the relation, if any.
  std::optional<Value> ApplyBinary(const SOValue& op, const Value& a,
                                   const Value& b);

  /// True if the recursive component of `name` must use replacement
  /// iteration (non-monotone self-reference).
  bool UsesReplacement(const std::string& name) const;

  /// Fresh integer for internal variable naming (shared with the solver).
  int FreshId() { return ++fresh_counter_; }

  /// Bumped every time an in-progress (partial) instance value is read;
  /// memo tables use it to detect results that must not be cached.
  uint64_t partial_reads() const { return partial_reads_; }

  /// Compile cache slot used by the solver (keyed by rule identity).
  std::map<const Def*, std::shared_ptr<void>>& rule_cache() {
    return rule_cache_;
  }

  Solver& solver() { return solver_; }

  /// What the recursion-lowering pass did so far in this context.
  const LoweringStats& lowering_stats() const { return lowering_stats_; }

 private:
  struct InstanceKey {
    std::string name;
    size_t sig;
    std::vector<SOValue> so_args;

    bool operator<(const InstanceKey& other) const;
  };

  struct Instance {
    Relation value;
    bool done = false;
    bool in_progress = false;
    bool provisional = false;   // read a partial value; do not finalize
    bool failed_safety = false; // materialization is unsafe; cached failure
    std::string failure_message;
    int stack_pos = -1;
  };

  const Relation& EvalInstanceImpl(const InstanceKey& key);

  /// Attempts to evaluate the whole recursive component of `name` with the
  /// Datalog engine, splicing every member's extent into `instances_` as a
  /// finished instance. Returns false (and remembers the component as
  /// failed) when the component is outside the Datalog fragment or the
  /// evaluation cannot proceed — the caller then falls back to the
  /// tuple-at-a-time fixpoint.
  bool TryLowerComponent(const std::string& name);

  const Database* db_;
  std::vector<std::shared_ptr<Def>> all_defs_;
  // name -> sig -> rules
  std::map<std::string, std::map<size_t, std::vector<std::shared_ptr<Def>>>>
      defs_;
  std::vector<std::shared_ptr<Def>> ics_;
  ProgramAnalysis analysis_;
  InterpOptions options_;
  Solver solver_;

  std::map<InstanceKey, Instance> instances_;
  std::vector<Instance*> stack_;
  LoweringStats lowering_stats_;
  std::set<int> lowering_failed_components_;
  uint64_t change_tick_ = 0;
  uint64_t partial_reads_ = 0;
  int fresh_counter_ = 0;

  // Closure materialization memo: per closure expression, (env, result).
  // A deque keeps references to stored results stable as entries are added.
  struct ClosureMemoEntry {
    Env env;
    Relation result;
  };
  std::map<const Expr*, std::deque<ClosureMemoEntry>> closure_memo_;
  // Holding area so MaterializeSO can return stable references for
  // non-memoizable (partial-dependent) results.
  std::vector<std::unique_ptr<Relation>> scratch_;

  std::map<const Def*, std::shared_ptr<void>> rule_cache_;
};

}  // namespace rel

#endif  // REL_CORE_INTERP_H_
