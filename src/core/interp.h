// The interpreter: owns the rule set, evaluates relation *instances*
// (a defined relation specialized by its second-order arguments), and runs
// the fixpoint iteration that gives recursive rules their meaning
// (Section 3.3 and Addendum A).
//
// Two fixpoint modes:
//  - accumulate: least fixpoint by saturation; used when a recursive
//    component only references itself positively (classical stratified
//    Datalog semantics);
//  - replacement: R_{k+1} = base ∪ F(R_k) iterated to a fixed point with an
//    iteration cap; used when a component references itself under negation,
//    aggregation or a second-order argument (the paper's non-stratified
//    programs, e.g. PageRank's stop-condition recursion). This follows the
//    Statelog/Dedalus lineage the paper cites for such programs.

#ifndef REL_CORE_INTERP_H_
#define REL_CORE_INTERP_H_

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/analysis.h"
#include "core/ast.h"
#include "core/demand_cache.h"
#include "core/lowering.h"
#include "core/solver.h"
#include "data/database.h"

namespace rel {

class ExtentCache;

/// Evaluation limits; exceeded limits raise kNonConvergent.
struct InterpOptions {
  /// Cap on fixpoint iterations per relation instance.
  int max_iterations = 100000;
  /// Cap on distinct relation instances (guards against runaway
  /// specialization chains like f[(A,1)] inside f[{A}]).
  int max_instances = 1000000;
  /// Worker threads for engine-level parallel work. The solver itself is
  /// single-threaded (one Interp mirrors one Rel transaction), but the
  /// Engine checks independent integrity constraints concurrently when this
  /// is > 1, and lowered recursive components (see below) inherit it as
  /// datalog::EvalOptions::num_threads. 0 means one worker per hardware
  /// thread.
  int num_threads = 1;
  /// Evaluate qualifying monotone recursive components with the planned,
  /// indexed Datalog evaluator (src/core/lowering.h) instead of the
  /// tuple-at-a-time saturation loop. Semantics-preserving; disable to force
  /// the classic fixpoint (ablation benchmarks, differential tests).
  bool lower_recursion = true;
  /// Join-order override for lowered recursive components, forwarded to
  /// datalog::EvalOptions::plan_order_seed (0 = the production greedy
  /// order; any other value is a reproducible pseudo-random permutation
  /// per plan). Answer-invariant by contract; the equivalent-query fuzzer
  /// sweeps it to differential-test the planner through the full Rel path.
  uint64_t plan_order_seed = 0;
  /// Demand-driven recursive queries: when the solver looks up a recursive
  /// component through an application with bound arguments (tc(0, y)),
  /// rewrite the lowered Datalog program with the magic-set transform
  /// (src/datalog/magic.h) so only the demanded cone is derived instead of
  /// the full closure. Answer-preserving: the demanded extent is
  /// byte-identical to the goal-filtered full fixpoint (pinned by the magic
  /// differential suite). The one observable difference is max_iterations
  /// interplay — a query whose FULL fixpoint would exceed the cap can still
  /// succeed when its (smaller) demanded cone converges within it. Off by
  /// default until the differential suite has soaked in CI; flip via
  /// Engine::options().demand_transform.
  bool demand_transform = false;
  /// How many leading entries of the def vector are session-shared
  /// persistent rules; everything after is transaction-local (the parsed
  /// query source). Used to decide when a demanded cone may be served from
  /// or stored into `demand_cache` — a cone whose transitive dependencies
  /// include a transaction-local def must not cross transactions. The
  /// default (0) treats every def as transaction-local, disabling the
  /// shared cache; the Session sets it to its snapshot's rule count.
  size_t shared_defs = 0;
  /// Cross-transaction demand-cone cache (see core/demand_cache.h), keyed
  /// on the database version. Owned by the Session — one per reader,
  /// externally synchronized, so no locks on the read path. nullptr keeps
  /// the per-Interp memo only (cones die with the transaction).
  DemandCache* demand_cache = nullptr;
  /// Cross-transaction cache of lowered-component fixpoints (see
  /// core/extent_cache.h). Owned by the Engine's writer side or by a
  /// Session, externally synchronized, maintained under database deltas by
  /// the owner. The same shared_defs gate as the demand cache applies: a
  /// component whose closure touches a transaction-local def never enters.
  /// nullptr recomputes every lowered fixpoint per transaction (pre-PR-9
  /// behavior).
  ExtentCache* extent_cache = nullptr;
  /// Dependency/SCC analysis of the first `shared_defs` defs, owned by the
  /// Engine and published with each snapshot. When set, the Interp extends
  /// it with the transaction-local defs instead of re-analyzing the whole
  /// prelude per transaction (ProgramAnalysis falls back to a full analysis
  /// when an appended def could perturb prefix components). Must outlive
  /// the Interp; internal plumbing — callers outside Engine/Session leave
  /// it null.
  const ProgramAnalysis* shared_analysis = nullptr;
};

/// Counters for the recursion-lowering pass, exposed per Interp (and copied
/// to Engine::last_lowering_stats() after each transaction).
struct LoweringStats {
  int components_lowered = 0;   // SCCs evaluated by the Datalog engine
  int components_rejected = 0;  // monotone SCCs outside the Datalog fragment
  int components_demanded = 0;  // demand-transformed (magic-set) evaluations
  int demand_cache_hits = 0;    // cones served from the session DemandCache
  int extent_cache_hits = 0;    // components served from the ExtentCache
  uint64_t lowered_tuples = 0;  // tuples spliced back into instances
  uint64_t demanded_tuples = 0; // tuples in demanded extents handed out
  std::vector<std::string> lowered_names;    // members, evaluation order
  std::vector<std::string> rejection_notes;  // "name: reason" per rejection
};

/// One evaluation context: a database plus a set of rules. Create one per
/// transaction; memoized results are valid for the lifetime of the object
/// (the database must not change underneath it).
class Interp {
 public:
  Interp(const Database* db, std::vector<std::shared_ptr<Def>> defs,
         InterpOptions options = {});

  const Database& db() const { return *db_; }
  const InterpOptions& options() const { return options_; }
  /// The full rule set this context was built from (used by the Engine to
  /// spin up sibling Interps for parallel constraint checking).
  const std::vector<std::shared_ptr<Def>>& defs() const { return all_defs_; }

  // --- definition lookup ---

  /// True if `name` has at least one rule (of any signature).
  bool HasDefs(const std::string& name) const;

  /// Rules of `name` whose leading relation-variable parameter count is
  /// `sig` (empty vector if none).
  const std::vector<std::shared_ptr<Def>>& DefsOf(const std::string& name,
                                                  size_t sig) const;

  /// Determines how many leading arguments of an application of `name` are
  /// second-order, using the rules' parameter signatures and the ?{}/&{}
  /// annotations of `args` (Addendum A). Throws kAmbiguous when rules
  /// disagree and the annotations do not disambiguate.
  size_t ResolveSig(const std::string& name, const std::vector<Arg>& args) const;

  /// All integrity constraints.
  const std::vector<std::shared_ptr<Def>>& ics() const { return ics_; }

  // --- evaluation ---

  /// Evaluates the instance of `name` (rules with `sig` leading relation
  /// parameters, specialized by `so_args`), running fixpoints as needed.
  /// The reference stays valid until the next call that evaluates the same
  /// instance (callers must copy out what they keep across re-entry).
  const Relation& EvalInstance(const std::string& name, size_t sig,
                               const std::vector<SOValue>& so_args);

  /// Demand-driven variant of EvalInstance for first-order instances
  /// queried through an application with a binding pattern: bound
  /// positions carry the querying atom's values (constants or variables
  /// the solver has already bound). With options().demand_transform set
  /// and a qualifying monotone recursive component, only the demanded cone
  /// is evaluated (magic-set transform on the lowered Datalog program) and
  /// the returned extent holds exactly the tuples of the full extent that
  /// match the pattern — what the solver's enumeration would keep anyway.
  /// Falls back to EvalInstance (the full extent) whenever no position is
  /// bound, the full extent is already memoized, or the component does not
  /// qualify for lowering. Demanded extents are memoized per (name,
  /// pattern); references stay valid for the lifetime of this Interp. The
  /// component's translation + materialized EDB are built once and shared
  /// across patterns, and after kMaxDemandPatterns distinct patterns the
  /// component stops demanding — one full evaluation then serves every
  /// later lookup, so a join probing many distinct bindings can never run
  /// many cone fixpoints where one closure would be cheaper.
  const Relation& EvalInstanceDemand(
      const std::string& name,
      const std::vector<std::optional<Value>>& pattern);

  /// Cheap pre-filter for the solver's demand gate: true iff
  /// demand_transform is on and `name` heads a monotone recursive
  /// component. Lets ExecAtom skip binding-pattern construction entirely
  /// for the (overwhelmingly common) atoms demand can never help.
  bool DemandEligible(const std::string& name) const;

  /// Materializes a second-order value into a finite relation. Memoized for
  /// closures. Throws kSafety for builtins and unsafe closures.
  const Relation& MaterializeSO(const SOValue& value);

  /// Evaluates an expression under an environment (used for closures,
  /// second-order arguments, and top-level query expressions).
  Relation EvalExprRel(const ExprPtr& expr, const Env& env);

  /// Applies a second-order value as a binary function (reduce operators):
  /// the unique v with (a, b, v) in the relation, if any.
  std::optional<Value> ApplyBinary(const SOValue& op, const Value& a,
                                   const Value& b);

  /// True if the recursive component of `name` must use replacement
  /// iteration (non-monotone self-reference).
  bool UsesReplacement(const std::string& name) const;

  /// The name-level dependency analysis over this context's rule set.
  const ProgramAnalysis& analysis() const { return analysis_; }

  /// Every name transitively reachable from `name` through rule references,
  /// `name` included — the relevance set cache maintenance filters deltas
  /// and rule changes against.
  std::set<std::string> ReferencesClosure(const std::string& name) const;

  /// Fresh integer for internal variable naming (shared with the solver).
  int FreshId() { return ++fresh_counter_; }

  /// Bumped every time an in-progress (partial) instance value is read;
  /// memo tables use it to detect results that must not be cached.
  uint64_t partial_reads() const { return partial_reads_; }

  /// Compile cache slot used by the solver (keyed by rule identity).
  std::map<const Def*, std::shared_ptr<void>>& rule_cache() {
    return rule_cache_;
  }

  Solver& solver() { return solver_; }

  /// What the recursion-lowering pass did so far in this context.
  const LoweringStats& lowering_stats() const { return lowering_stats_; }

 private:
  struct InstanceKey {
    std::string name;
    size_t sig;
    std::vector<SOValue> so_args;

    bool operator<(const InstanceKey& other) const;
  };

  struct Instance {
    Relation value;
    bool done = false;
    bool in_progress = false;
    bool provisional = false;   // read a partial value; do not finalize
    bool failed_safety = false; // materialization is unsafe; cached failure
    std::string failure_message;
    int stack_pos = -1;
  };

  const Relation& EvalInstanceImpl(const InstanceKey& key);

  /// Attempts to evaluate the whole recursive component of `name` with the
  /// Datalog engine, splicing every member's extent into `instances_` as a
  /// finished instance. Returns false (and remembers the component as
  /// failed) when the component is outside the Datalog fragment or the
  /// evaluation cannot proceed — the caller then falls back to the
  /// tuple-at-a-time fixpoint.
  bool TryLowerComponent(const std::string& name);

  /// True iff a demanded cone of `name` is a pure function of the database
  /// and the session-shared rule prefix — i.e. no def reachable from
  /// `name`'s rules (transitively, including `name` itself) is
  /// transaction-local. Only such cones may live in the cross-transaction
  /// demand cache. Memoized per name.
  bool DemandCacheable(const std::string& name);

  /// The shared gate behind DemandCacheable and the extent-cache path: true
  /// iff no def reachable from `name` (itself included) is
  /// transaction-local. Memoized per name.
  bool SharedRulesOnly(const std::string& name);

  /// Fills a cache entry's maintenance metadata for the component `lowered`
  /// rooted at `name`: the name closure, the database relations feeding the
  /// EDB, the members' base facts, and the maintainable verdict (false when
  /// any external has rules — its EDB snapshot is a derived value a base
  /// delta changes opaquely). Program-agnostic: valid for both the plain
  /// lowered program and its magic transform (whose synthetic predicates
  /// never appear in a DatabaseDelta).
  void FillMaintainInfo(const LoweredComponent& lowered,
                        const std::string& name, MaintainableExtents* out);

  /// Shared front half of TryLowerComponent and EvalInstanceDemand:
  /// translates the component of `name` and materializes its EDB (external
  /// extents via EvalInstance, members' base facts from the database).
  /// Returns nullopt after recording the rejection (and remembering the
  /// component as failed) when the component is outside the fragment or an
  /// external has no finite standalone extent.
  std::optional<LoweredComponent> BuildLoweredProgram(const std::string& name);

  const Database* db_;
  std::vector<std::shared_ptr<Def>> all_defs_;
  // name -> sig -> rules
  std::map<std::string, std::map<size_t, std::vector<std::shared_ptr<Def>>>>
      defs_;
  std::vector<std::shared_ptr<Def>> ics_;
  ProgramAnalysis analysis_;
  InterpOptions options_;
  Solver solver_;

  std::map<InstanceKey, Instance> instances_;
  std::vector<Instance*> stack_;
  LoweringStats lowering_stats_;
  std::set<int> lowering_failed_components_;
  /// Demanded-cone extents, memoized per (name, bound-position values).
  /// Pure functions of the (fixed) database and rule set, so entries stay
  /// valid for the Interp's lifetime; map nodes keep references stable.
  std::map<std::pair<std::string, std::vector<std::pair<size_t, Value>>>,
           Relation>
      demand_memo_;
  /// Names defined by transaction-local defs (index >= options.shared_defs)
  /// and the per-name SharedRulesOnly verdicts.
  std::set<std::string> txn_local_names_;
  std::map<std::string, bool> shared_rules_only_;
  /// Per-component demand bookkeeping: the translation + materialized EDB
  /// (built once, reused across patterns) and the distinct-pattern count
  /// driving the kMaxDemandPatterns cutoff.
  static constexpr int kMaxDemandPatterns = 8;
  struct DemandComponent {
    int patterns = 0;
    std::optional<LoweredComponent> lowered;
  };
  std::map<int, DemandComponent> demand_components_;
  uint64_t change_tick_ = 0;
  uint64_t partial_reads_ = 0;
  int fresh_counter_ = 0;

  // Closure materialization memo: per closure expression, (env, result).
  // A deque keeps references to stored results stable as entries are added.
  struct ClosureMemoEntry {
    Env env;
    Relation result;
  };
  std::map<const Expr*, std::deque<ClosureMemoEntry>> closure_memo_;
  // Holding area so MaterializeSO can return stable references for
  // non-memoizable (partial-dependent) results.
  std::vector<std::unique_ptr<Relation>> scratch_;

  std::map<const Def*, std::shared_ptr<void>> rule_cache_;
};

}  // namespace rel

#endif  // REL_CORE_INTERP_H_
