// The constraint solver: Rel's evaluation core.
//
// A rule body (or any expression) is compiled into a set of constraints plus
// a list of output terms. Solving enumerates all variable bindings that
// satisfy the constraints, choosing, at each step, a constraint that is
// *ready* under the current bindings:
//   - a finite atom can always enumerate;
//   - a builtin atom is ready when its binding pattern is supported
//     (Section 3.2's safety rules for infinite relations);
//   - negation, aggregation and second-order arguments are ready when their
//     free variables are bound.
// If no remaining constraint is ready the expression is unsafe and a
// kSafety error is raised — this realizes the paper's conservative safety
// analysis. Unsafe *sub*expressions are fine: a deferred (closure) relation
// argument is inlined at its use site with the use-site bindings, which is
// how `AdditiveInverse` intersected with a finite relation evaluates.

#ifndef REL_CORE_SOLVER_H_
#define REL_CORE_SOLVER_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/ast.h"
#include "core/builtins.h"
#include "data/relation.h"

namespace rel {

class Interp;
struct Env;

/// A second-order value: what a relation variable `{A}` is bound to, and
/// what second-order arguments evaluate to. Exactly one representation is
/// active:
///   - a materialized (finite) relation,
///   - a builtin (infinite) relation,
///   - a deferred closure: an expression with its captured environment,
///     materialized lazily, or inlined at use sites if materialization is
///     unsafe (the paper's "unsafe subexpressions are allowed" rule).
struct SOValue {
  std::shared_ptr<const Relation> rel;
  const Builtin* builtin = nullptr;
  ExprPtr expr;
  std::shared_ptr<const Env> env;

  static SOValue Materialized(Relation r);
  static SOValue ForBuiltin(const Builtin* b);
  static SOValue Closure(ExprPtr e, std::shared_ptr<const Env> env);

  bool IsMaterialized() const { return rel != nullptr; }
  bool IsBuiltin() const { return builtin != nullptr; }
  bool IsClosure() const { return expr != nullptr; }

  bool operator==(const SOValue& other) const;
  size_t Hash() const;
};

/// A runtime environment: first-order variables, tuple variables and
/// relation variables. Used both for captured closures and as the seed
/// environment of a solve.
struct Env {
  std::map<std::string, Value> vars;
  std::map<std::string, Tuple> tuples;
  std::map<std::string, SOValue> rels;

  bool Has(const std::string& name) const {
    return vars.count(name) || tuples.count(name) || rels.count(name);
  }
  bool operator==(const Env& other) const;
  size_t Hash() const;
};

/// A pre-bound rule parameter used when an unsafe definition is inlined at
/// a call site whose arguments are already bound. At most one of the fields
/// is set (value for ordinary parameters, tuple for tuple-variable
/// parameters); both empty means "unbound".
struct Seed {
  std::optional<Value> value;
  std::optional<Tuple> tuple;
};

/// The solver. Stateless apart from its link to the interpreter (which owns
/// definitions, instances, and memo tables); cheap to construct.
class Solver {
 public:
  explicit Solver(Interp* interp) : interp_(interp) {}

  /// Evaluates `expr` to the relation it denotes under `env`.
  /// Throws kSafety if the result would be infinite.
  Relation EvalExpr(const ExprPtr& expr, const Env& env);

  /// True iff the formula holds under `env` (early exit on first witness).
  bool EvalFormula(const ExprPtr& formula, const Env& env);

  /// Evaluates one rule under second-order arguments `so_args` (bound to the
  /// rule's leading {A} parameters, in order). Returns the head tuples
  /// (first-order parameter values concatenated with body outputs).
  ///
  /// `seeds`, when non-null, pre-binds first-order parameters by position
  /// (used when an unsafe definition is inlined at a call site whose
  /// arguments are already bound). seeds->at(i) may be empty (unbound).
  Relation EvalRule(const Def& def, const std::vector<SOValue>& so_args,
                    const std::vector<Seed>* seeds);

  /// Number of second-order (leading {A}) parameters of `def`.
  static size_t CountSOParams(const Def& def);

 private:
  Interp* interp_;
};

}  // namespace rel

#endif  // REL_CORE_SOLVER_H_
