// Builtin relations: the paper's (conceptually) infinite relations such as
// `add`, the comparisons, and the type predicates `Int`, `Float`, ...
// (Section 3.2).
//
// A builtin cannot be enumerated; it is evaluated under a *binding pattern*:
// given which argument positions are bound, it either declines (pattern
// unsupported — the safety analysis then looks for another evaluation order,
// following the paper's external-predicate treatment [Guagliardo et al.,
// ICDT 2025]) or emits every completion of the bound arguments.

#ifndef REL_CORE_BUILTINS_H_
#define REL_CORE_BUILTINS_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "data/value.h"

namespace rel {

/// Callback receiving one completion (all `arity()` values, in order).
using BuiltinEmit = std::function<void(const std::vector<Value>&)>;

/// A builtin ("infinite") relation evaluated under binding patterns.
class Builtin {
 public:
  Builtin(std::string name, size_t arity)
      : name_(std::move(name)), arity_(arity) {}
  virtual ~Builtin() = default;

  const std::string& name() const { return name_; }
  size_t arity() const { return arity_; }

  /// True if the builtin can run when exactly the positions with
  /// bound[i] == true are bound. `bound.size() == arity()`.
  virtual bool Supports(const std::vector<bool>& bound) const = 0;

  /// Evaluates under the given (supported) binding pattern. `args[i]` is set
  /// iff position i is bound. Emits every tuple of the relation that agrees
  /// with the bound positions. Never throws on empty results (e.g. division
  /// by zero emits nothing: the tuple is simply not in the relation).
  virtual void Eval(const std::vector<std::optional<Value>>& args,
                    const BuiltinEmit& emit) const = 0;

 private:
  std::string name_;
  size_t arity_;
};

/// Looks up a builtin by name; nullptr if `name` is not a builtin. All
/// builtins are also reachable under a `rel_primitive_` prefix alias.
const Builtin* FindBuiltin(const std::string& name);

/// Names of all registered builtins (for docs/tests), sorted.
std::vector<std::string> BuiltinNames();

/// Helpers shared with the reduce implementation: applies a binary builtin
/// (e.g. add) as a function of its first arity()-1 arguments. Returns
/// nothing if the builtin does not produce a value for these inputs.
std::optional<Value> ApplyAsFunction(const Builtin& builtin,
                                     const std::vector<Value>& inputs);

}  // namespace rel

#endif  // REL_CORE_BUILTINS_H_
