#include "core/extent_cache.h"

#include <utility>

namespace rel {

namespace {

/// The changed names of `delta` that intersect `names`, or an empty vector.
std::vector<const std::string*> RelevantChanges(const DatabaseDelta& delta,
                                                const std::set<std::string>& names) {
  std::vector<const std::string*> out;
  for (const auto& [name, change] : delta.changes) {
    if (change.inserted.empty() && change.deleted.empty()) continue;
    if (names.count(name)) out.push_back(&name);
  }
  return out;
}

}  // namespace

MaintainResult MaintainExtents(MaintainableExtents* e,
                               const DatabaseDelta& delta,
                               const datalog::EvalOptions& opts,
                               datalog::EvalStats* stats) {
  if (delta.wholesale) return MaintainResult::kUnsupported;
  std::vector<const std::string*> relevant =
      RelevantChanges(delta, e->closure);
  if (relevant.empty()) return MaintainResult::kUntouched;
  if (!e->maintainable) return MaintainResult::kUnsupported;

  datalog::EdbDelta edb;
  for (const std::string* name : relevant) {
    const DatabaseDelta::Change& change = delta.changes.at(*name);
    if (!change.inserted.empty()) edb.inserts[*name] = change.inserted;
    if (!change.deleted.empty()) edb.deletes[*name] = change.deleted;
    // Head predicates double as EDB carriers: their base facts are the
    // re-derivation support set and must track the database exactly.
    if (e->head_preds.count(*name)) {
      Relation& base = e->base_facts[*name];
      base.InsertAll(change.inserted);
      change.deleted.ForEach([&](const TupleRef& t) { base.Erase(t.ToTuple()); });
    }
  }

  datalog::DeltaResult result = datalog::EvaluateDelta(
      e->program, e->base_facts, edb, &e->extents, opts, stats, e->cache.get());
  return result.supported ? MaintainResult::kMaintained
                          : MaintainResult::kUnsupported;
}

std::string ExtentCache::KeyFor(const std::vector<std::string>& members) {
  std::string key;
  for (const std::string& m : members) {
    key += m;
    key += '\x1f';  // cannot occur in source-level names
  }
  return key;
}

const ExtentCache::Entry* ExtentCache::Lookup(const std::string& key,
                                              uint64_t db_version) {
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second->db_version != db_version) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return it->second.get();
}

ExtentCache::Entry& ExtentCache::Store(std::string key, Entry entry) {
  std::unique_ptr<Entry>& slot = entries_[std::move(key)];
  slot = std::make_unique<Entry>(std::move(entry));
  return *slot;
}

void ExtentCache::Maintain(const DatabaseDelta& delta,
                           const datalog::EvalOptions& opts) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    Entry& entry = *it->second;
    if (entry.db_version != delta.from_version) {
      ++dropped_;
      it = entries_.erase(it);
      continue;
    }
    switch (MaintainExtents(&entry.ext, delta, opts, &maintain_stats_)) {
      case MaintainResult::kUntouched:
        ++restamped_;
        entry.db_version = delta.to_version;
        ++it;
        break;
      case MaintainResult::kMaintained:
        ++maintained_;
        entry.db_version = delta.to_version;
        ++it;
        break;
      case MaintainResult::kUnsupported:
        ++dropped_;
        it = entries_.erase(it);
        break;
    }
  }
}

void ExtentCache::DropAbove(uint64_t db_version) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second->db_version > db_version) {
      ++dropped_;
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

void ExtentCache::ClearAffected(const std::set<std::string>& names) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    bool affected = false;
    for (const std::string& n : it->second->ext.closure) {
      if (names.count(n)) {
        affected = true;
        break;
      }
    }
    if (affected) {
      ++dropped_;
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace rel
