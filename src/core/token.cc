#include "core/token.h"

namespace rel {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEof: return "end of input";
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kTupleVar: return "tuple variable";
    case TokenKind::kWildcard: return "'_'";
    case TokenKind::kWildcardTuple: return "'_...'";
    case TokenKind::kInt: return "integer literal";
    case TokenKind::kFloat: return "float literal";
    case TokenKind::kString: return "string literal";
    case TokenKind::kDef: return "'def'";
    case TokenKind::kIc: return "'ic'";
    case TokenKind::kRequires: return "'requires'";
    case TokenKind::kAnd: return "'and'";
    case TokenKind::kOr: return "'or'";
    case TokenKind::kNot: return "'not'";
    case TokenKind::kExists: return "'exists'";
    case TokenKind::kForall: return "'forall'";
    case TokenKind::kImplies: return "'implies'";
    case TokenKind::kIff: return "'iff'";
    case TokenKind::kXor: return "'xor'";
    case TokenKind::kWhere: return "'where'";
    case TokenKind::kIn: return "'in'";
    case TokenKind::kTrue: return "'true'";
    case TokenKind::kFalse: return "'false'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kComma: return "','";
    case TokenKind::kSemi: return "';'";
    case TokenKind::kColon: return "':'";
    case TokenKind::kBar: return "'|'";
    case TokenKind::kEq: return "'='";
    case TokenKind::kNeq: return "'!='";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kPercent: return "'%'";
    case TokenKind::kCaret: return "'^'";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kLeftOverride: return "'<++'";
    case TokenKind::kQuestion: return "'?'";
    case TokenKind::kAmp: return "'&'";
    case TokenKind::kAt: return "'@'";
  }
  return "?";
}

std::string Token::Describe() const {
  switch (kind) {
    case TokenKind::kIdent:
    case TokenKind::kTupleVar:
      return "'" + text + "'";
    case TokenKind::kInt:
      return std::to_string(int_value);
    case TokenKind::kFloat:
      return std::to_string(float_value);
    case TokenKind::kString:
      return "\"" + text + "\"";
    default:
      return TokenKindName(kind);
  }
}

}  // namespace rel
