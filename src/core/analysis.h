// Program analysis: name-level dependency graph, strongly connected
// components, and monotonicity of recursive components.
//
// A reference to relation M inside a rule of N creates an edge N -> M. The
// edge is *non-monotone* when the reference sits under negation, a `forall`,
// or inside a second-order argument (aggregation inputs, `empty`, and any
// relation passed to a higher-order operator — conservative, per
// Section 3.3's stratification discussion). A component with an internal
// non-monotone edge is evaluated with replacement iteration (see interp.h).

#ifndef REL_CORE_ANALYSIS_H_
#define REL_CORE_ANALYSIS_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/ast.h"

namespace rel {

/// Dependency/SCC analysis over a fixed rule set.
class ProgramAnalysis {
 public:
  explicit ProgramAnalysis(const std::vector<std::shared_ptr<Def>>& defs);

  /// True if `name` belongs to a recursive component with a non-monotone
  /// internal edge (must use replacement iteration).
  bool UsesReplacement(const std::string& name) const;

  /// True if `name` is in a recursive component at all (including self
  /// loops).
  bool IsRecursive(const std::string& name) const;

  /// Component id of `name` (-1 if the name has no rules).
  int ComponentOf(const std::string& name) const;

  /// All names in `name`'s component, sorted (a singleton for non-recursive
  /// names with rules; empty if the name has no rules). Used by the
  /// Datalog-lowering pass and by fixpoint diagnostics.
  std::vector<std::string> ComponentMembers(const std::string& name) const;

  /// Names that `name`'s rules reference (for documentation/tests).
  std::set<std::string> References(const std::string& name) const;

 private:
  struct Ref {
    std::string target;
    bool non_monotone;
  };

  void CollectRefs(const ExprPtr& expr, bool non_monotone,
                   std::set<std::string>* locals, std::vector<Ref>* out) const;
  size_t SigOf(const std::string& name) const;

  std::map<std::string, std::vector<Ref>> edges_;
  std::map<std::string, size_t> max_sig_;
  std::map<std::string, int> component_;
  std::set<int> recursive_components_;
  std::set<int> replacement_components_;
};

}  // namespace rel

#endif  // REL_CORE_ANALYSIS_H_
