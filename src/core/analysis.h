// Program analysis: name-level dependency graph, strongly connected
// components, and monotonicity of recursive components.
//
// A reference to relation M inside a rule of N creates an edge N -> M. The
// edge is *non-monotone* when the reference sits under negation, a `forall`,
// or inside a second-order argument (aggregation inputs, `empty`, and any
// relation passed to a higher-order operator — conservative, per
// Section 3.3's stratification discussion). A component with an internal
// non-monotone edge is evaluated with replacement iteration (see interp.h).
//
// Non-monotone edges are further split by *polarity*: an edge that sits in
// the input of one of the stdlib aggregation combinators (min/max/sum/count,
// or the second operand of `reduce`) with no intervening negation, forall or
// other higher-order operator is kAggregation; every other non-monotone
// edge is kNonMonotone. A recursive component whose non-monotone internal
// edges are all kAggregation is *aggregation-recursive*: its replacement
// fixpoint coincides with the monotone aggregate semantics of the Datalog
// engine (the semiring view of Section 5.2), so it is a candidate for the
// lowering fast path. The split never changes UsesReplacement: both
// non-monotone polarities keep replacement iteration on the interpreter.

#ifndef REL_CORE_ANALYSIS_H_
#define REL_CORE_ANALYSIS_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/ast.h"

namespace rel {

/// Dependency/SCC analysis over a fixed rule set.
///
/// Construction is the dominant fixed cost of every transaction and query
/// (each Interp analyzes the stdlib prelude plus the session's rules anew),
/// so the three-argument constructor can *extend* a cached analysis of the
/// shared def prefix instead: when every appended def names a relation the
/// prefix neither defines nor references, the appended defs cannot change
/// any prefix component (all new edges point from new names into old ones),
/// and the analysis only runs over the appended slice, delegating prefix
/// lookups to `prefix`. Otherwise it falls back to analyzing the whole
/// list. The prefix analysis must outlive this one (the Engine keeps it on
/// the published snapshot, so any Interp over that snapshot is covered).
class ProgramAnalysis {
 public:
  explicit ProgramAnalysis(const std::vector<std::shared_ptr<Def>>& defs);

  /// Extends `prefix` — the analysis of defs[0..prefix_size) — with the
  /// remaining defs where safe (see class comment); analyzes all of `defs`
  /// from scratch where not, or when `prefix` is null.
  ProgramAnalysis(const ProgramAnalysis* prefix, size_t prefix_size,
                  const std::vector<std::shared_ptr<Def>>& defs);

  /// True if `name` belongs to a recursive component with a non-monotone
  /// internal edge (must use replacement iteration).
  bool UsesReplacement(const std::string& name) const;

  /// True if `name` belongs to a recursive component that has internal
  /// aggregation edges and no strictly non-monotone internal edge: every
  /// recursive reference either is monotone or flows through an aggregation
  /// input. Such components qualify for the Datalog engine's monotone
  /// aggregate semi-naive evaluation (core/lowering.h); the lowering pass
  /// independently validates that each aggregate use is structurally the
  /// canonical stdlib form before trusting this name-level verdict.
  bool AggregationRecursive(const std::string& name) const;

  /// True if some rule of `name` references a relation through an
  /// aggregation input (kAggregation polarity) — the gate for lowering
  /// non-recursive aggregate definitions onto the planned engine.
  bool UsesAggregation(const std::string& name) const;

  /// True if `name` is in a recursive component at all (including self
  /// loops).
  bool IsRecursive(const std::string& name) const;

  /// Component id of `name` (-1 if the name has no rules).
  int ComponentOf(const std::string& name) const;

  /// All names in `name`'s component, sorted (a singleton for non-recursive
  /// names with rules; empty if the name has no rules). Used by the
  /// Datalog-lowering pass and by fixpoint diagnostics.
  std::vector<std::string> ComponentMembers(const std::string& name) const;

  /// Names that `name`'s rules reference (for documentation/tests).
  std::set<std::string> References(const std::string& name) const;

  /// Names referenced by one def's parameter domains and body. Unlike the
  /// constructor's passes this does NOT skip integrity constraints — it is
  /// how the engine computes an ic's read set for delta-specialized
  /// checking (Decker-style: an ic whose reference closure misses every
  /// changed relation cannot have changed its verdict).
  std::set<std::string> DefReferences(const Def& def) const;

  /// True when this analysis reused a prefix analysis and only processed
  /// the appended defs (observability for tests and counters).
  bool extended() const { return base_ != nullptr; }

 private:
  /// Reference polarity, ordered by how much it constrains evaluation. The
  /// old boolean non_monotone is (polarity != kMonotone); kAggregation is
  /// the refinement that separates "non-monotone because it feeds an
  /// aggregate" from "non-monotone for any other reason".
  enum class Polarity { kMonotone, kAggregation, kNonMonotone };

  struct Ref {
    std::string target;
    Polarity polarity;
  };

  void CollectRefs(const ExprPtr& expr, Polarity polarity,
                   std::set<std::string>* locals, std::vector<Ref>* out) const;
  size_t SigOf(const std::string& name) const;
  /// `name` has rules in this analysis or (transitively) its base.
  bool HasRules(const std::string& name) const;
  /// Some def of this analysis or its base references `name`.
  bool IsReferenced(const std::string& name) const;

  /// The prefix analysis this one extends; lookups that miss the local maps
  /// delegate here. Null for a from-scratch analysis.
  const ProgramAnalysis* base_ = nullptr;
  std::map<std::string, std::vector<Ref>> edges_;
  std::map<std::string, size_t> max_sig_;
  std::map<std::string, int> component_;
  std::set<int> recursive_components_;
  std::set<int> replacement_components_;
  /// Components with an internal kAggregation edge / an internal
  /// kNonMonotone edge (a component can be in both; AggregationRecursive
  /// requires membership in the first set only).
  std::set<int> aggregation_components_;
  std::set<int> nonmonotone_components_;
  /// Names with at least one outgoing kAggregation edge.
  std::set<std::string> aggregation_users_;
  /// Every name referenced by some local def (the extension-safety check:
  /// an appended def must not redefine anything the prefix can read).
  std::set<std::string> referenced_;
  /// One past the largest component id in use, including the base's
  /// (extension components must not collide with prefix component ids).
  int component_limit_ = 0;
};

}  // namespace rel

#endif  // REL_CORE_ANALYSIS_H_
