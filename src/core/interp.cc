#include "core/interp.h"

#include <algorithm>

#include "base/error.h"
#include "core/extent_cache.h"
#include "core/lowering.h"
#include "datalog/eval.h"
#include "datalog/magic.h"

namespace rel {

namespace {

int CompareRelations(const Relation& a, const Relation& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  std::vector<Tuple> ta = a.SortedTuples();
  std::vector<Tuple> tb = b.SortedTuples();
  for (size_t i = 0; i < ta.size(); ++i) {
    int c = ta[i].Compare(tb[i]);
    if (c != 0) return c;
  }
  return 0;
}

int CompareEnvs(const Env& a, const Env& b);

int CompareSOValues(const SOValue& a, const SOValue& b) {
  auto rank = [](const SOValue& v) {
    if (v.IsMaterialized()) return 0;
    if (v.IsBuiltin()) return 1;
    if (v.IsClosure()) return 2;
    return 3;
  };
  if (rank(a) != rank(b)) return rank(a) < rank(b) ? -1 : 1;
  if (a.IsMaterialized()) return CompareRelations(*a.rel, *b.rel);
  if (a.IsBuiltin()) {
    if (a.builtin == b.builtin) return 0;
    return a.builtin->name() < b.builtin->name() ? -1 : 1;
  }
  if (a.IsClosure()) {
    if (a.expr.get() != b.expr.get()) {
      return a.expr.get() < b.expr.get() ? -1 : 1;
    }
    bool ea = a.env != nullptr, eb = b.env != nullptr;
    if (ea != eb) return ea < eb ? -1 : 1;
    if (!ea) return 0;
    return CompareEnvs(*a.env, *b.env);
  }
  return 0;
}

template <typename Map, typename Cmp>
int CompareMaps(const Map& a, const Map& b, Cmp cmp) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  auto ia = a.begin();
  auto ib = b.begin();
  for (; ia != a.end(); ++ia, ++ib) {
    if (ia->first != ib->first) return ia->first < ib->first ? -1 : 1;
    int c = cmp(ia->second, ib->second);
    if (c != 0) return c;
  }
  return 0;
}

int CompareEnvs(const Env& a, const Env& b) {
  int c = CompareMaps(a.vars, b.vars, [](const Value& x, const Value& y) {
    return x.Compare(y);
  });
  if (c != 0) return c;
  c = CompareMaps(a.tuples, b.tuples, [](const Tuple& x, const Tuple& y) {
    return x.Compare(y);
  });
  if (c != 0) return c;
  return CompareMaps(a.rels, b.rels, CompareSOValues);
}

}  // namespace

bool Interp::InstanceKey::operator<(const InstanceKey& other) const {
  if (name != other.name) return name < other.name;
  if (sig != other.sig) return sig < other.sig;
  if (so_args.size() != other.so_args.size()) {
    return so_args.size() < other.so_args.size();
  }
  for (size_t i = 0; i < so_args.size(); ++i) {
    int c = CompareSOValues(so_args[i], other.so_args[i]);
    if (c != 0) return c < 0;
  }
  return false;
}

Interp::Interp(const Database* db, std::vector<std::shared_ptr<Def>> defs,
               InterpOptions options)
    : db_(db),
      all_defs_(std::move(defs)),
      analysis_(options.shared_analysis, options.shared_defs, all_defs_),
      options_(options),
      solver_(this) {
  for (const auto& def : all_defs_) {
    if (def->is_ic) {
      ics_.push_back(def);
    } else {
      defs_[def->name][Solver::CountSOParams(*def)].push_back(def);
    }
  }
  // Everything past the shared prefix was parsed from this transaction's
  // source; a demanded cone that (transitively) reads any of these names is
  // transaction-local and must not enter the cross-transaction cache.
  for (size_t i = options_.shared_defs; i < all_defs_.size(); ++i) {
    txn_local_names_.insert(all_defs_[i]->name);
  }
}

bool Interp::DemandCacheable(const std::string& name) {
  return options_.demand_cache != nullptr && SharedRulesOnly(name);
}

bool Interp::SharedRulesOnly(const std::string& name) {
  auto memo = shared_rules_only_.find(name);
  if (memo != shared_rules_only_.end()) return memo->second;
  // Reachability over the name-level dependency graph: `name` and every
  // def it can read must come from the shared rule prefix. Base relations
  // (names with no rules) are covered by the version key itself.
  bool cacheable = true;
  std::set<std::string> seen{name};
  std::vector<std::string> work{name};
  while (!work.empty()) {
    std::string cur = std::move(work.back());
    work.pop_back();
    if (txn_local_names_.count(cur)) {
      cacheable = false;
      break;
    }
    for (const std::string& ref : analysis_.References(cur)) {
      if (seen.insert(ref).second) work.push_back(ref);
    }
  }
  shared_rules_only_[name] = cacheable;
  return cacheable;
}

std::set<std::string> Interp::ReferencesClosure(const std::string& name) const {
  std::set<std::string> seen{name};
  std::vector<std::string> work{name};
  while (!work.empty()) {
    std::string cur = std::move(work.back());
    work.pop_back();
    for (const std::string& ref : analysis_.References(cur)) {
      if (seen.insert(ref).second) work.push_back(ref);
    }
  }
  return seen;
}

void Interp::FillMaintainInfo(const LoweredComponent& lowered,
                              const std::string& name,
                              MaintainableExtents* out) {
  // Members are one SCC (mutually reachable), so the closure from any one
  // of them covers them all plus everything their rules can read.
  out->closure = ReferencesClosure(name);
  // Aggregate-bearing programs are not incrementally maintainable:
  // datalog::EvaluateDelta refuses them (a delta row can shrink no bucket,
  // but a deletion can), so the cache owner must recompute instead.
  out->maintainable = !lowered.program.HasAggregates();
  for (const std::string& ext : lowered.externals) {
    out->base_names.insert(ext);
    if (HasDefs(ext)) out->maintainable = false;
  }
  for (const std::string& member : lowered.members) {
    out->base_names.insert(member);
    out->head_preds.insert(member);
    if (db_->Has(member)) out->base_facts[member] = db_->Get(member);
  }
}

bool Interp::HasDefs(const std::string& name) const {
  return defs_.count(name) > 0;
}

const std::vector<std::shared_ptr<Def>>& Interp::DefsOf(
    const std::string& name, size_t sig) const {
  static const std::vector<std::shared_ptr<Def>>* empty =
      new std::vector<std::shared_ptr<Def>>();
  auto it = defs_.find(name);
  if (it == defs_.end()) return *empty;
  auto sit = it->second.find(sig);
  if (sit == it->second.end()) return *empty;
  return sit->second;
}

size_t Interp::ResolveSig(const std::string& name,
                          const std::vector<Arg>& args) const {
  auto it = defs_.find(name);
  if (it == defs_.end()) return 0;
  std::set<size_t> candidates;
  for (const auto& [sig, rules] : it->second) {
    (void)rules;
    if (sig <= args.size()) candidates.insert(sig);
  }
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i].annotation == Annotation::kSecondOrder) {
      // Position i is second-order: the signature must cover it.
      for (auto cit = candidates.begin(); cit != candidates.end();) {
        if (*cit <= i) {
          cit = candidates.erase(cit);
        } else {
          ++cit;
        }
      }
    } else if (args[i].annotation == Annotation::kFirstOrder) {
      for (auto cit = candidates.begin(); cit != candidates.end();) {
        if (*cit > i) {
          cit = candidates.erase(cit);
        } else {
          ++cit;
        }
      }
    }
  }
  if (candidates.size() == 1) return *candidates.begin();
  if (candidates.empty()) {
    throw RelError(ErrorKind::kArity,
                   "no definition of '" + name +
                       "' matches this application (check the number of "
                       "relation arguments)");
  }
  throw RelError(ErrorKind::kAmbiguous,
                 "application of '" + name +
                     "' matches both first-order and second-order "
                     "definitions; disambiguate with ?{..} or &{..}");
}

const Relation& Interp::EvalInstance(const std::string& name, size_t sig,
                                     const std::vector<SOValue>& so_args) {
  InstanceKey key{name, sig, so_args};
  return EvalInstanceImpl(key);
}

const Relation& Interp::EvalInstanceImpl(const InstanceKey& key) {
  auto [it, inserted] = instances_.try_emplace(key);
  Instance& inst = it->second;
  if (inserted &&
      instances_.size() > static_cast<size_t>(options_.max_instances)) {
    throw RelError(ErrorKind::kNonConvergent,
                   "too many relation instances (runaway specialization of '" +
                       key.name + "'?)");
  }
  if (inst.failed_safety) {
    throw RelError(ErrorKind::kSafety, inst.failure_message);
  }
  if (inst.done) return inst.value;
  if (inst.in_progress) {
    // Recursive reference: hand out the current partial value and mark
    // everything above the referenced instance as provisional.
    ++partial_reads_;
    for (size_t i = inst.stack_pos + 1; i < stack_.size(); ++i) {
      stack_[i]->provisional = true;
    }
    return inst.value;
  }

  const auto& rules = DefsOf(key.name, key.sig);
  Relation base;
  if (key.sig == 0) base = db_->Get(key.name);
  if (rules.empty()) {
    inst.value = std::move(base);
    inst.done = true;
    return inst.value;
  }

  // Fast path: components that fit the classical Datalog fragment evaluate
  // on the planned, indexed semi-naive engine (src/core/lowering.h) — same
  // least fixpoint, set-at-a-time. Three shapes qualify: monotone recursive
  // components; aggregation-recursive components (replacement mode whose
  // non-monotone self-references all flow through aggregation inputs — the
  // engine's monotone aggregate semi-naive computes the same fixpoint, and
  // its qualification checks throw the component back here otherwise); and
  // non-recursive defs that aggregate (so matmul-style sums run planned
  // too). On success every member of the component (including this
  // instance) is already finished; on failure fall through to the
  // saturation loop unchanged.
  const bool lowerable =
      analysis_.IsRecursive(key.name)
          ? (!analysis_.UsesReplacement(key.name) ||
             analysis_.AggregationRecursive(key.name))
          : analysis_.UsesAggregation(key.name);
  if (options_.lower_recursion && key.sig == 0 && key.so_args.empty() &&
      lowerable && TryLowerComponent(key.name)) {
    InternalCheck(inst.done, "lowered component missing its own instance");
    return inst.value;
  }

  inst.in_progress = true;
  inst.provisional = false;
  inst.stack_pos = static_cast<int>(stack_.size());
  stack_.push_back(&inst);
  bool replacement = analysis_.UsesReplacement(key.name);
  // Start from scratch: a re-evaluation (of a previously provisional
  // instance) must not keep results derived from stale partial values.
  Relation previous = std::move(inst.value);
  inst.value = Relation();
  if (!base.empty() && !replacement) inst.value = base;

  try {
    for (int iter = 0;; ++iter) {
      if (iter > options_.max_iterations) {
        // Hitting the cap must surface as a diagnostic error naming the
        // offending component — never as a silently partial extent (the
        // partial value in inst.value is discarded by the next evaluation).
        std::string component;
        for (const std::string& member :
             analysis_.ComponentMembers(key.name)) {
          if (!component.empty()) component += ", ";
          component += member;
        }
        if (component.empty()) component = key.name;
        throw RelError(
            ErrorKind::kNonConvergent,
            "fixpoint for '" + key.name + "' (recursive component {" +
                component + "}, " +
                (replacement ? "replacement" : "accumulate") +
                " mode) did not converge within max_iterations = " +
                std::to_string(options_.max_iterations) +
                "; the partial extent is discarded");
      }
      uint64_t tick = change_tick_;
      Relation derived = base;
      for (const auto& def : rules) {
        derived.InsertAll(solver_.EvalRule(*def, key.so_args, nullptr));
      }
      bool changed;
      if (replacement) {
        changed = !(derived == inst.value);
        if (changed) inst.value = std::move(derived);
      } else {
        size_t before = inst.value.size();
        inst.value.InsertAll(derived);
        changed = inst.value.size() != before;
      }
      // Iterate until this instance is stable AND no nested instance
      // changed its (final) value during the pass — nested provisional
      // instances are re-evaluated inside EvalRule and drive this loop
      // through change_tick_.
      if (!changed && tick == change_tick_) break;
    }
  } catch (const RelError& err) {
    stack_.pop_back();
    inst.in_progress = false;
    if (err.kind() == ErrorKind::kSafety) {
      inst.failed_safety = true;
      inst.failure_message = err.what();
    }
    throw;
  }

  stack_.pop_back();
  inst.in_progress = false;
  if (!inst.provisional) {
    inst.done = true;
  } else {
    inst.provisional = false;  // re-evaluated on the next request
  }
  // Signal enclosing fixpoints only when the settled value actually moved.
  if (!(inst.value == previous)) ++change_tick_;
  return inst.value;
}

namespace {

/// The Datalog options every lowered evaluation — the full-component splice
/// (TryLowerComponent) and the demanded cone (EvalInstanceDemand) — runs
/// under, so the two paths can never diverge. InterpOptions treats any cap
/// as strict (0 still allows one iteration), while 0 means unbounded to the
/// Datalog engine — clamp to at least 1 so a zero cap can never turn into
/// an infinite lowered fixpoint.
datalog::EvalOptions LoweredEvalOptions(const InterpOptions& options) {
  datalog::EvalOptions eval_options;
  eval_options.strategy = datalog::Strategy::kSemiNaive;
  eval_options.num_threads = options.num_threads;
  eval_options.max_iterations = std::max(options.max_iterations, 1);
  eval_options.plan_order_seed = options.plan_order_seed;
  return eval_options;
}

}  // namespace

std::optional<LoweredComponent> Interp::BuildLoweredProgram(
    const std::string& name) {
  int comp = analysis_.ComponentOf(name);
  if (comp < 0 || lowering_failed_components_.count(comp)) {
    return std::nullopt;
  }
  auto reject =
      [&](const std::string& reason) -> std::optional<LoweredComponent> {
    lowering_failed_components_.insert(comp);
    ++lowering_stats_.components_rejected;
    lowering_stats_.rejection_notes.push_back(name + ": " + reason);
    return std::nullopt;
  };

  std::string why;
  std::optional<LoweredComponent> lowered =
      LowerComponent(name, analysis_, all_defs_, &why);
  if (!lowered) return reject(why);

  // EDB: materialized extents of every out-of-component dependency (each
  // evaluated through the normal instance machinery, so a qualifying
  // dependency component lowers first), then the members' own base facts.
  try {
    for (const std::string& ext : lowered->externals) {
      lowered->program.AddFacts(ext, EvalInstance(ext, 0, {}));
    }
  } catch (const RelError& err) {
    // An unsafe external (e.g. a stdlib arithmetic wrapper) has no finite
    // standalone extent; the solver's use-site inlining may still evaluate
    // the component, so fall back instead of failing.
    if (err.kind() != ErrorKind::kSafety) throw;
    return reject(std::string("unsafe external: ") + err.what());
  }
  for (const std::string& member : lowered->members) {
    if (db_->Has(member)) {
      lowered->program.AddFacts(member, db_->Get(member));
    }
  }
  return lowered;
}

bool Interp::TryLowerComponent(const std::string& name) {
  int comp = analysis_.ComponentOf(name);
  if (comp < 0 || lowering_failed_components_.count(comp)) return false;
  auto reject = [&](const std::string& reason) {
    lowering_failed_components_.insert(comp);
    ++lowering_stats_.components_rejected;
    lowering_stats_.rejection_notes.push_back(name + ": " + reason);
    return false;
  };

  // Splices one member's finished extent into the instance table.
  auto splice = [&](const std::string& member, Relation value) {
    Instance& inst = instances_[InstanceKey{member, 0, {}}];
    // No member can be mid-saturation here: reaching a member's fixpoint at
    // all means an earlier lowering attempt for this component failed, and
    // failed components never retry.
    InternalCheck(!inst.in_progress, "lowering into an in-progress instance");
    inst.value = std::move(value);
    inst.done = true;
    inst.provisional = false;
    lowering_stats_.lowered_tuples += inst.value.size();
    lowering_stats_.lowered_names.push_back(member);
  };

  // Cross-transaction fast path: the owner of the extent cache maintains
  // component fixpoints forward under commit deltas, so a component built
  // from shared rules may already have its extents for this exact database
  // version — splice copies and skip the evaluator entirely.
  const bool cacheable =
      options_.extent_cache != nullptr && SharedRulesOnly(name);
  std::string cache_key;
  if (cacheable) {
    cache_key = ExtentCache::KeyFor(analysis_.ComponentMembers(name));
    if (const ExtentCache::Entry* hit =
            options_.extent_cache->Lookup(cache_key, db_->version())) {
      for (const std::string& member : analysis_.ComponentMembers(name)) {
        auto it = hit->ext.extents.find(member);
        splice(member, it == hit->ext.extents.end() ? Relation() : it->second);
      }
      ++lowering_stats_.components_lowered;
      ++lowering_stats_.extent_cache_hits;
      return true;
    }
  }

  std::optional<LoweredComponent> lowered = BuildLoweredProgram(name);
  if (!lowered) return false;

  // Value-generating recursion (x = y + 1 inside the SCC) can diverge even
  // in the Datalog fragment; the interpreter's iteration cap must survive
  // the lowering (LoweredEvalOptions clamps it). A capped component rejects
  // below and re-runs (and re-caps, with the authoritative diagnostic) on
  // the tuple-at-a-time path.
  std::map<std::string, Relation> extents;
  try {
    extents = datalog::Evaluate(lowered->program, LoweredEvalOptions(options_));
  } catch (const RelError& err) {
    // E.g. a rule that is not range-restricted under any literal order; the
    // tuple-at-a-time solver stays the authority on whether that errors.
    return reject(err.what());
  }

  for (const std::string& member : lowered->members) {
    auto it = extents.find(member);
    // Copy when the cache keeps the authoritative extents, move otherwise.
    Relation value;
    if (it != extents.end()) value = cacheable ? it->second : std::move(it->second);
    splice(member, std::move(value));
  }
  ++lowering_stats_.components_lowered;
  if (cacheable) {
    ExtentCache::Entry entry;
    entry.db_version = db_->version();
    entry.ext.extents = std::move(extents);
    FillMaintainInfo(*lowered, name, &entry.ext);
    entry.ext.program = std::move(lowered->program);
    options_.extent_cache->Store(std::move(cache_key), std::move(entry));
  }
  return true;
}

bool Interp::DemandEligible(const std::string& name) const {
  if (!options_.demand_transform || !options_.lower_recursion) return false;
  return analysis_.IsRecursive(name) && !analysis_.UsesReplacement(name);
}

const Relation& Interp::EvalInstanceDemand(
    const std::string& name,
    const std::vector<std::optional<Value>>& pattern) {
  bool any_bound = false;
  for (const auto& p : pattern) any_bound |= p.has_value();
  if (!any_bound || !DemandEligible(name)) return EvalInstance(name, 0, {});
  // A memoized full extent is strictly cheaper than any demanded cone; and
  // an in-progress instance must keep its partial-value semantics (the
  // saturation loop's recursive references drive convergence through it).
  auto inst = instances_.find(InstanceKey{name, 0, {}});
  if (inst != instances_.end() &&
      (inst->second.done || inst->second.in_progress)) {
    return EvalInstance(name, 0, {});
  }
  int comp = analysis_.ComponentOf(name);
  if (comp < 0 || lowering_failed_components_.count(comp)) {
    return EvalInstance(name, 0, {});
  }

  // Memo key: bound positions and their values; the name is qualified by
  // the pattern arity so tc(0, Y) and tc(0, Y, Z) never share an entry.
  std::vector<std::pair<size_t, Value>> bound;
  for (size_t i = 0; i < pattern.size(); ++i) {
    if (pattern[i]) bound.emplace_back(i, *pattern[i]);
  }
  auto key = std::make_pair(name + "/" + std::to_string(pattern.size()),
                            std::move(bound));
  auto memo = demand_memo_.find(key);
  if (memo != demand_memo_.end()) return memo->second;

  // Session-shared cache: a cone already derived by an earlier transaction
  // against this same database version (and the same shared rules — see
  // DemandCacheable) is returned without touching the evaluator. The
  // reference is stable for the cache's lifetime, which outlives this
  // Interp.
  const bool cacheable = DemandCacheable(name);
  DemandCache::Key cache_key;
  if (cacheable) {
    cache_key = DemandCache::Key{db_->version(), key.first, key.second};
    if (const Relation* hit = options_.demand_cache->Lookup(cache_key)) {
      ++lowering_stats_.demand_cache_hits;
      return *hit;
    }
  }

  // A new pattern. Past the per-component cutoff, many distinct cones cost
  // more than the one closure they overlap in — evaluate the full extent
  // once (memoized done, so every later lookup takes the fast path above)
  // and drop the cached translation.
  DemandComponent& dc = demand_components_[comp];
  if (dc.patterns >= kMaxDemandPatterns) {
    dc.lowered.reset();
    return EvalInstance(name, 0, {});
  }
  // The component's translation and materialized EDB are pattern-
  // independent; build them once and share across this component's cones.
  if (!dc.lowered) {
    dc.lowered = BuildLoweredProgram(name);
    if (!dc.lowered) return EvalInstance(name, 0, {});
  }
  std::optional<datalog::DemandGoal> goal =
      DemandGoalFor(*dc.lowered, name, pattern);
  if (!goal) return EvalInstance(name, 0, {});

  if (cacheable) {
    // Cacheable cones run the magic transform explicitly and keep the
    // transformed program's FULL fixpoint as the entry's maintenance
    // payload: on later commits the session moves it forward with
    // datalog::EvaluateDelta (the magic seed facts never change under
    // base-relation deltas) and re-filters the goal extent, instead of
    // re-running the cone from scratch.
    datalog::MagicProgram magic =
        datalog::MagicTransform(dc.lowered->program, *goal);
    const datalog::Program& prog =
        magic.transformed ? magic.program : dc.lowered->program;
    std::map<std::string, Relation> extents;
    try {
      extents = datalog::Evaluate(prog, LoweredEvalOptions(options_));
    } catch (const RelError&) {
      return EvalInstance(name, 0, {});
    }
    ++dc.patterns;
    Relation cone;
    auto it = extents.find(magic.goal_pred);
    if (it != extents.end()) {
      cone = datalog::FilterByPattern(it->second, goal->pattern);
    }
    ++lowering_stats_.components_demanded;
    lowering_stats_.demanded_tuples += cone.size();
    auto payload = std::make_unique<MaintainableExtents>();
    payload->extents = std::move(extents);
    FillMaintainInfo(*dc.lowered, name, payload.get());
    payload->program =
        magic.transformed ? std::move(magic.program) : dc.lowered->program;
    return options_.demand_cache->Store(std::move(cache_key), std::move(cone),
                                        magic.goal_pred, goal->pattern,
                                        std::move(payload));
  }

  datalog::EvalOptions eval_options = LoweredEvalOptions(options_);
  eval_options.demand_goal = std::move(goal);
  std::map<std::string, Relation> extents;
  try {
    extents = datalog::Evaluate(dc.lowered->program, eval_options);
  } catch (const RelError&) {
    // The tuple-at-a-time path stays the authority on errors (safety under
    // any literal order, non-convergence diagnostics naming the component).
    return EvalInstance(name, 0, {});
  }

  ++dc.patterns;
  Relation cone;
  auto it = extents.find(name);
  if (it != extents.end()) cone = std::move(it->second);
  ++lowering_stats_.components_demanded;
  lowering_stats_.demanded_tuples += cone.size();
  return demand_memo_[key] = std::move(cone);
}

const Relation& Interp::MaterializeSO(const SOValue& value) {
  if (value.IsMaterialized()) return *value.rel;
  if (value.IsBuiltin()) {
    throw RelError(ErrorKind::kSafety, "builtin relation '" +
                                           value.builtin->name() +
                                           "' is infinite");
  }
  InternalCheck(value.IsClosure(), "empty SOValue");
  auto& entries = closure_memo_[value.expr.get()];
  for (const ClosureMemoEntry& entry : entries) {
    if (entry.env == *value.env) return entry.result;
  }
  uint64_t before = partial_reads_;
  Relation result = EvalExprRel(value.expr, *value.env);
  if (partial_reads_ == before) {
    entries.push_back(ClosureMemoEntry{*value.env, std::move(result)});
    return entries.back().result;
  }
  // The result depends on an in-progress fixpoint; do not memoize.
  scratch_.push_back(std::make_unique<Relation>(std::move(result)));
  return *scratch_.back();
}

Relation Interp::EvalExprRel(const ExprPtr& expr, const Env& env) {
  return solver_.EvalExpr(expr, env);
}

std::optional<Value> Interp::ApplyBinary(const SOValue& op, const Value& a,
                                         const Value& b) {
  if (op.IsBuiltin()) {
    return ApplyAsFunction(*op.builtin, {a, b});
  }
  if (op.IsMaterialized()) {
    Relation suffixes = op.rel->Suffixes(Tuple({a, b}));
    std::optional<Value> result;
    for (const Tuple& t : suffixes.SortedTuples()) {
      if (t.arity() != 1) continue;
      if (result) {
        throw RelError(ErrorKind::kType,
                       "reduce operator is not functional: multiple results "
                       "for " +
                           Tuple({a, b}).ToString());
      }
      result = t[0];
    }
    return result;
  }
  InternalCheck(op.IsClosure(), "empty reduce operator");
  auto app = MakeExpr(ExprKind::kApplication);
  app->target = op.expr;
  app->args = {Arg{MakeLiteral(a), Annotation::kNone},
               Arg{MakeLiteral(b), Annotation::kNone}};
  app->full = false;
  Relation result = EvalExprRel(app, *op.env);
  std::optional<Value> out;
  for (const Tuple& t : result.SortedTuples()) {
    if (t.arity() != 1) continue;
    if (out) {
      throw RelError(ErrorKind::kType,
                     "reduce operator is not functional: multiple results");
    }
    out = t[0];
  }
  return out;
}

bool Interp::UsesReplacement(const std::string& name) const {
  return analysis_.UsesReplacement(name);
}

}  // namespace rel
