// Session: a client's handle onto a shared Engine — the unit of
// snapshot-isolated concurrency (ROADMAP item 2's serving half).
//
// The Engine publishes an immutable Snapshot (database + persistent rules)
// at every commit boundary. A Session pins one Snapshot and runs all reads
// against it: Query/Eval never take a lock, never see a concurrent writer's
// partial state, and return byte-identical answers for the lifetime of the
// pin no matter how many transactions commit elsewhere. Refresh() advances
// the pin to the newest published snapshot; a successful write through the
// session re-pins automatically (read-your-writes).
//
// Writes (Exec/Define/Insert/DeleteTuples) funnel into the Engine's
// single-writer commit pipeline: apply → integrity check → WAL → atomic
// publish (see engine.h). There is no optimistic concurrency — writers
// serialize — so a Session write always executes against the newest
// committed state, not against the session's pinned snapshot.
//
// Threading: one Session = one client. A Session must be used from one
// thread at a time (its demand cache and pin are unsynchronized); any
// number of Sessions may run concurrently against the same Engine.

#ifndef REL_CORE_SESSION_H_
#define REL_CORE_SESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "core/demand_cache.h"
#include "core/extent_cache.h"
#include "core/interp.h"
#include "data/database.h"

namespace rel {

class Engine;
struct TxnResult;

/// An immutable, atomically-published view of the engine: the database as
/// of one commit boundary plus the persistent rule set in force then.
/// Pinning is two shared_ptr copies; the snapshot stays valid as long as
/// any holder keeps it, independent of later commits.
struct Snapshot {
  std::shared_ptr<const Database> db;
  std::shared_ptr<const std::vector<std::shared_ptr<Def>>> rules;
  /// Dependency/SCC analysis of `rules`, computed once by the writer;
  /// readers extend it with their query-local defs (InterpOptions::
  /// shared_analysis) instead of re-analyzing the prelude per query.
  std::shared_ptr<const ProgramAnalysis> rules_analysis;
  /// Bumped on every Define; demand caches keyed per rule era.
  uint64_t rules_version = 0;
  /// WAL id of the last durable transaction included (0 when the engine is
  /// not attached to storage or nothing has committed durably yet).
  uint64_t txn_id = 0;
  /// Bumped when the database is replaced wholesale (AttachStorage recovery)
  /// rather than mutated — guards sessions against composing deltas across
  /// unrelated version timelines.
  uint64_t db_epoch = 0;
  /// The most recent commit deltas (oldest first), ending at this snapshot.
  /// A session re-pinning from version V finds the suffix starting at V and
  /// maintains its caches delta-by-delta instead of discarding them; if V
  /// has already scrolled out of the window it falls back to dropping.
  std::vector<std::shared_ptr<const DatabaseDelta>> recent_deltas;

  uint64_t version() const { return db->version(); }
};

class Session {
 public:
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // --- snapshot control ---

  /// Re-pins the newest published snapshot. Demand-cache upkeep: entries
  /// for other database versions are dropped; a rule-set change clears the
  /// cache entirely.
  void Refresh();

  /// The pinned snapshot (stable until Refresh or a successful write).
  const Snapshot& snapshot() const { return *snap_; }
  uint64_t snapshot_version() const { return snap_->version(); }
  uint64_t snapshot_txn() const { return snap_->txn_id; }

  // --- reads: lock-free against the pinned snapshot ---

  /// Runs `source` as a read-only transaction against the pinned snapshot
  /// and returns its `output` relation. insert/delete rules are ignored.
  Relation Query(const std::string& source);

  /// Evaluates a single expression — sugar for
  /// Query("def output : " + expression); both run against one pinned
  /// snapshot for their whole duration.
  Relation Eval(const std::string& expression);

  /// Read access to a base relation of the pinned snapshot ({} if absent).
  /// The reference stays valid while this session holds the pin.
  const Relation& Base(const std::string& name) const;

  /// The pinned snapshot's database (valid while the pin is held).
  const Database& db() const { return *snap_->db; }

  // --- writes: funnel into the engine's single-writer commit pipeline ---

  /// Runs `source` as a full transaction through the commit pipeline.
  /// On success the session re-pins the published post-commit snapshot;
  /// on abort (constraint violation, WAL failure) the pin is unchanged.
  TxnResult Exec(const std::string& source);

  /// Installs persistent rules engine-wide and re-pins.
  void Define(const std::string& source);

  /// Bulk base-relation updates through the pipeline (no constraint check,
  /// matching Engine::Insert/DeleteTuples); re-pins on success.
  void Insert(const std::string& name, const std::vector<Tuple>& tuples);
  void DeleteTuples(const std::string& name, const std::vector<Tuple>& tuples);

  // --- knobs and introspection ---

  /// Per-session evaluation options (seeded from the engine's at open).
  InterpOptions& options() { return options_; }

  /// Lowering/demand counters of this session's most recent Query/Eval/Exec.
  const LoweringStats& last_lowering_stats() const { return lowering_stats_; }

  /// The session's cross-transaction demand-cone cache (hits/misses/size).
  const DemandCache& demand_cache() const { return demand_cache_; }

  /// The session's whole-extent cache for fully-derived components
  /// (maintained across re-pins just like the demand cache).
  const ExtentCache& extent_cache() const { return extent_cache_; }

 private:
  friend class Engine;

  Session(Engine* engine, std::shared_ptr<const Snapshot> snap,
          InterpOptions options);

  /// Adopts a (newer) snapshot as the pin, pruning the demand cache.
  void Adopt(std::shared_ptr<const Snapshot> snap);

  Engine* engine_;
  std::shared_ptr<const Snapshot> snap_;
  InterpOptions options_;
  DemandCache demand_cache_;
  ExtentCache extent_cache_;
  LoweringStats lowering_stats_;
};

}  // namespace rel

#endif  // REL_CORE_SESSION_H_
