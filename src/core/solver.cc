#include "core/solver.h"

#include <algorithm>
#include <functional>
#include <set>

#include "base/error.h"
#include "base/hash.h"
#include "core/interp.h"
#include "core/parser.h"

namespace rel {

// --- SOValue / Env ----------------------------------------------------------

SOValue SOValue::Materialized(Relation r) {
  SOValue v;
  v.rel = std::make_shared<const Relation>(std::move(r));
  return v;
}

SOValue SOValue::ForBuiltin(const Builtin* b) {
  SOValue v;
  v.builtin = b;
  return v;
}

SOValue SOValue::Closure(ExprPtr e, std::shared_ptr<const Env> env) {
  SOValue v;
  v.expr = std::move(e);
  v.env = std::move(env);
  return v;
}

bool SOValue::operator==(const SOValue& other) const {
  if (IsMaterialized() != other.IsMaterialized()) return false;
  if (IsBuiltin() != other.IsBuiltin()) return false;
  if (IsClosure() != other.IsClosure()) return false;
  if (IsMaterialized()) return *rel == *other.rel;
  if (IsBuiltin()) return builtin == other.builtin;
  if (IsClosure()) {
    if (expr.get() != other.expr.get()) return false;
    if ((env == nullptr) != (other.env == nullptr)) return false;
    return env == nullptr || *env == *other.env;
  }
  return true;
}

size_t SOValue::Hash() const {
  if (IsMaterialized()) return HashCombine(1, rel->Hash());
  if (IsBuiltin()) return HashCombine(2, HashOf<const void*>(builtin));
  if (IsClosure()) {
    return HashCombine(HashCombine(3, HashOf<const void*>(expr.get())),
                       env ? env->Hash() : 0);
  }
  return 0;
}

bool Env::operator==(const Env& other) const {
  return vars == other.vars && tuples == other.tuples && rels == other.rels;
}

size_t Env::Hash() const {
  size_t seed = 17;
  for (const auto& [name, value] : vars) {
    seed = HashCombine(seed, HashOf<std::string>(name));
    seed = HashCombine(seed, value.Hash());
  }
  for (const auto& [name, tuple] : tuples) {
    seed = HashCombine(seed, HashOf<std::string>(name));
    seed = HashCombine(seed, tuple.Hash());
  }
  for (const auto& [name, rel] : rels) {
    seed = HashCombine(seed, HashOf<std::string>(name));
    seed = HashCombine(seed, rel.Hash());
  }
  return seed;
}

namespace {

// --- compiled representation ------------------------------------------------

struct CTerm {
  enum class Kind { kConst, kVar, kTupleVar, kWildcard, kWildcardTuple };
  Kind kind = Kind::kWildcard;
  Value cval;
  std::string name;  // internal (renamed) variable name

  static CTerm Const(Value v) {
    CTerm t;
    t.kind = Kind::kConst;
    t.cval = v;
    return t;
  }
  static CTerm Var(std::string n) {
    CTerm t;
    t.kind = Kind::kVar;
    t.name = std::move(n);
    return t;
  }
  static CTerm TupleVar(std::string n) {
    CTerm t;
    t.kind = Kind::kTupleVar;
    t.name = std::move(n);
    return t;
  }
  static CTerm Wildcard() { return CTerm(); }
  static CTerm WildcardTuple() {
    CTerm t;
    t.kind = Kind::kWildcardTuple;
    return t;
  }
};

/// What a source-level name refers to during compilation.
struct ScopeEntry {
  enum class Kind { kVar, kTupleVar, kRelVar };
  Kind kind = Kind::kVar;
  std::string internal;
};

using ScopeMap = std::map<std::string, ScopeEntry>;

/// One captured free variable: source name (as written in the expression),
/// internal name (as bound in solver frames), and kind.
struct FreeVar {
  std::string source;
  std::string internal;
  ScopeEntry::Kind kind;

  bool operator<(const FreeVar& other) const {
    return internal < other.internal;
  }
};

struct CompiledBody;
using BodyPtr = std::shared_ptr<CompiledBody>;

struct Constraint {
  enum class Kind { kAtom, kNegated, kAgg, kDisj };
  enum class Target { kGlobal, kRelVar, kExpr, kBuiltin };

  Kind kind = Kind::kAtom;

  // kAtom
  Target target = Target::kGlobal;
  std::string name;  // kGlobal: relation name; kRelVar: internal relvar name
  size_t sig = 0;    // kGlobal: number of leading second-order arguments
  ExprPtr texpr;     // kExpr: the target expression
  std::vector<FreeVar> texpr_free;
  const Builtin* builtin = nullptr;  // kBuiltin
  std::vector<ExprPtr> so_args;      // second-order argument expressions
  std::vector<std::vector<FreeVar>> so_free;
  std::vector<CTerm> args;

  // kNegated
  BodyPtr neg;
  std::vector<FreeVar> need_bound;

  // kAgg: so_args[0] = operator, so_args[1] = input.
  CTerm agg_result;

  // kDisj
  std::vector<BodyPtr> branches;
  std::string disj_out;  // tuple variable receiving branch outputs; "" = none

  // Scope snapshot at the constraint's compilation point; used to compile
  // guard queries for unbound second-order captures at runtime.
  ScopeMap scope;
  // Lazily compiled guard bodies (one per so-arg / texpr), see ExecGuarded.
  mutable std::vector<BodyPtr> guard_cache;

  std::string describe;
};

using ConstraintPtr = std::shared_ptr<Constraint>;

struct CompiledBody {
  std::vector<ConstraintPtr> constraints;
  std::vector<CTerm> outs;
};

struct CompiledRule {
  std::vector<std::string> relvar_internals;  // leading {A} params, in order
  std::vector<CTerm> head_terms;              // first-order params, in order
  CompiledBody body;
  bool square = false;
};

[[noreturn]] void SafetyFail(const std::string& message) {
  throw RelError(ErrorKind::kSafety, message);
}

[[noreturn]] void TypeFail(const std::string& message) {
  throw RelError(ErrorKind::kType, message);
}

}  // namespace

// --- Compiler ----------------------------------------------------------------

namespace {

class Compiler {
 public:
  explicit Compiler(Interp* interp) : interp_(interp) {
    scopes_.emplace_back();
  }

  /// Adds every name bound in `env` to the base scope (mapping to itself).
  void SeedFromEnv(const Env& env) {
    ScopeMap& base = scopes_.front();
    for (const auto& [name, v] : env.vars) {
      (void)v;
      base[name] = {ScopeEntry::Kind::kVar, name};
    }
    for (const auto& [name, t] : env.tuples) {
      (void)t;
      base[name] = {ScopeEntry::Kind::kTupleVar, name};
    }
    for (const auto& [name, r] : env.rels) {
      (void)r;
      base[name] = {ScopeEntry::Kind::kRelVar, name};
    }
  }

  /// Adds a previously captured scope snapshot (guard compilation).
  void SeedFromSnapshot(const ScopeMap& snapshot) {
    scopes_.front() = snapshot;
  }

  CompiledRule CompileRule(const Def& def) {
    CompiledRule rule;
    rule.square = def.square_head;
    PushScope();
    CompiledBody body;
    bool seen_fo = false;
    for (const Binding& b : def.params) {
      if (b.kind == Binding::Kind::kRelVar) {
        if (seen_fo) {
          TypeFail("relation-variable parameters must come first in '" +
                   def.name + "'");
        }
        std::string internal = Rename(b.name);
        Declare(b.name, ScopeEntry::Kind::kRelVar, internal);
        rule.relvar_internals.push_back(internal);
        continue;
      }
      seen_fo = true;
      rule.head_terms.push_back(CompileBinding(b, &body.constraints));
    }
    CompiledBody inner = CompileBodyExpr(def.body);
    for (auto& c : inner.constraints) body.constraints.push_back(c);
    if (!def.square_head && !inner.outs.empty()) {
      TypeFail("body of a (..)-headed rule must be a formula: def " +
               def.name);
    }
    body.outs = std::move(inner.outs);
    rule.body = std::move(body);
    PopScope();
    return rule;
  }

  CompiledBody CompileTop(const ExprPtr& expr) { return CompileBodyExpr(expr); }

 private:
  // --- scope handling ---

  void PushScope() { scopes_.emplace_back(); }
  void PopScope() { scopes_.pop_back(); }

  std::string Rename(const std::string& name) {
    return name + "$" + std::to_string(interp_->FreshId());
  }

  std::string FreshVar() { return "$v" + std::to_string(interp_->FreshId()); }
  std::string FreshTupleVar() {
    return "$t" + std::to_string(interp_->FreshId());
  }

  void Declare(const std::string& name, ScopeEntry::Kind kind,
               const std::string& internal) {
    scopes_.back()[name] = {kind, internal};
  }

  const ScopeEntry* Lookup(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto found = it->find(name);
      if (found != it->end()) return &found->second;
    }
    return nullptr;
  }

  ScopeMap Snapshot() const {
    ScopeMap out;
    for (const ScopeMap& scope : scopes_) {
      for (const auto& [name, entry] : scope) out[name] = entry;
    }
    return out;
  }

  /// Free variables of `expr` with respect to the current scope: every
  /// in-scope name referenced, after shadowing by local binders.
  std::vector<FreeVar> FreeVars(const ExprPtr& expr) const {
    std::set<FreeVar> acc;
    std::set<std::string> shadow;
    CollectFree(expr, &shadow, &acc);
    return std::vector<FreeVar>(acc.begin(), acc.end());
  }

  void CollectFree(const ExprPtr& expr, std::set<std::string>* shadow,
                   std::set<FreeVar>* acc) const {
    if (!expr) return;
    switch (expr->kind) {
      case ExprKind::kIdent:
      case ExprKind::kTupleVar: {
        if (shadow->count(expr->name)) return;
        const ScopeEntry* entry = Lookup(expr->name);
        if (entry) acc->insert({expr->name, entry->internal, entry->kind});
        return;
      }
      case ExprKind::kAbstraction:
      case ExprKind::kExists:
      case ExprKind::kForall: {
        std::set<std::string> inner = *shadow;
        for (const Binding& b : expr->bindings) {
          if (b.domain) CollectFree(b.domain, shadow, acc);
          if (b.kind == Binding::Kind::kVar ||
              b.kind == Binding::Kind::kTupleVar ||
              b.kind == Binding::Kind::kRelVar) {
            inner.insert(b.name);
          }
        }
        CollectFree(expr->body, &inner, acc);
        return;
      }
      case ExprKind::kApplication: {
        CollectFree(expr->target, shadow, acc);
        for (const Arg& a : expr->args) CollectFree(a.expr, shadow, acc);
        return;
      }
      default:
        for (const ExprPtr& child : expr->children) {
          CollectFree(child, shadow, acc);
        }
        CollectFree(expr->body, shadow, acc);
        CollectFree(expr->target, shadow, acc);
        return;
    }
  }

  // --- binding compilation ---

  CTerm CompileBinding(const Binding& b,
                       std::vector<ConstraintPtr>* constraints) {
    switch (b.kind) {
      case Binding::Kind::kVar: {
        std::string internal = Rename(b.name);
        Declare(b.name, ScopeEntry::Kind::kVar, internal);
        if (b.domain) {
          EmitAtomFromExpr(b.domain, {CTerm::Var(internal)}, constraints);
        }
        return CTerm::Var(internal);
      }
      case Binding::Kind::kTupleVar: {
        std::string internal = Rename(b.name);
        Declare(b.name, ScopeEntry::Kind::kTupleVar, internal);
        return CTerm::TupleVar(internal);
      }
      case Binding::Kind::kLiteral:
        return CTerm::Const(b.literal);
      case Binding::Kind::kWildcard:
        return CTerm::Var(FreshVar());
      case Binding::Kind::kRelVar:
        TypeFail("relation variable binding not allowed here");
    }
    TypeFail("bad binding");
  }

  // --- expression compilation (constraints + output terms) ---

  CompiledBody CompileBodyExpr(const ExprPtr& expr) {
    CompiledBody body;
    switch (expr->kind) {
      case ExprKind::kLiteral:
        body.outs.push_back(CTerm::Const(expr->literal));
        return body;
      case ExprKind::kRelNameLit:
        body.outs.push_back(
            CTerm::Const(Value::Entity("rel", expr->name)));
        return body;
      case ExprKind::kIdent: {
        const ScopeEntry* entry = Lookup(expr->name);
        if (entry) {
          switch (entry->kind) {
            case ScopeEntry::Kind::kVar:
              body.outs.push_back(CTerm::Var(entry->internal));
              return body;
            case ScopeEntry::Kind::kTupleVar:
              body.outs.push_back(CTerm::TupleVar(entry->internal));
              return body;
            case ScopeEntry::Kind::kRelVar: {
              std::string tv = FreshTupleVar();
              EmitAtomFromExpr(expr, {CTerm::TupleVar(tv)},
                               &body.constraints);
              body.outs.push_back(CTerm::TupleVar(tv));
              return body;
            }
          }
        }
        // Global relation (defined, base or builtin) used as an expression.
        if (!interp_->HasDefs(expr->name) && FindBuiltin(expr->name)) {
          const Builtin* b = FindBuiltin(expr->name);
          std::vector<CTerm> terms;
          for (size_t i = 0; i < b->arity(); ++i) {
            terms.push_back(CTerm::Var(FreshVar()));
          }
          EmitAtomFromExpr(expr, terms, &body.constraints);
          body.outs = terms;
          return body;
        }
        {
          std::string tv = FreshTupleVar();
          EmitAtomFromExpr(expr, {CTerm::TupleVar(tv)}, &body.constraints);
          body.outs.push_back(CTerm::TupleVar(tv));
          return body;
        }
      }
      case ExprKind::kTupleVar: {
        const ScopeEntry* entry = Lookup(expr->name);
        if (!entry || entry->kind != ScopeEntry::Kind::kTupleVar) {
          TypeFail("unbound tuple variable '" + expr->name + "...'");
        }
        body.outs.push_back(CTerm::TupleVar(entry->internal));
        return body;
      }
      case ExprKind::kWildcard:
        // J _ K = all values: safe only if some other constraint binds it,
        // which cannot happen for an anonymous variable, so this is caught
        // at emission time as an unbound output.
        body.outs.push_back(CTerm::Var(FreshVar()));
        return body;
      case ExprKind::kWildcardTuple:
        body.outs.push_back(CTerm::TupleVar(FreshTupleVar()));
        return body;
      case ExprKind::kProduct: {
        for (const ExprPtr& child : expr->children) {
          CompiledBody part = CompileBodyExpr(child);
          for (auto& c : part.constraints) body.constraints.push_back(c);
          for (auto& o : part.outs) body.outs.push_back(o);
        }
        return body;
      }
      case ExprKind::kWhere: {
        body = CompileBodyExpr(expr->children[0]);
        CompileFormula(expr->children[1], /*positive=*/true,
                       &body.constraints);
        return body;
      }
      case ExprKind::kUnion: {
        auto c = std::make_shared<Constraint>();
        c->kind = Constraint::Kind::kDisj;
        c->scope = Snapshot();
        c->describe = expr->ToString();
        bool any_outs = false;
        for (const ExprPtr& child : expr->children) {
          auto branch = std::make_shared<CompiledBody>(CompileBodyExpr(child));
          any_outs |= !branch->outs.empty();
          c->branches.push_back(branch);
        }
        if (any_outs) {
          c->disj_out = FreshTupleVar();
          body.outs.push_back(CTerm::TupleVar(c->disj_out));
        }
        body.constraints.push_back(c);
        return body;
      }
      case ExprKind::kAbstraction: {
        // Inline: binder terms become outputs followed by the body's
        // outputs (Figure 3, J[x]:ExprK).
        PushScope();
        for (const Binding& b : expr->bindings) {
          if (b.kind == Binding::Kind::kRelVar) {
            TypeFail("relation variable cannot be bound by an inline "
                     "abstraction");
          }
          body.outs.push_back(CompileBinding(b, &body.constraints));
        }
        CompiledBody inner = CompileBodyExpr(expr->body);
        for (auto& c : inner.constraints) body.constraints.push_back(c);
        for (auto& o : inner.outs) body.outs.push_back(o);
        PopScope();
        return body;
      }
      case ExprKind::kApplication: {
        if (expr->full) {
          CompileFormula(expr, /*positive=*/true, &body.constraints);
          return body;
        }
        return CompilePartialApplication(expr);
      }
      case ExprKind::kAnd:
      case ExprKind::kOr:
      case ExprKind::kNot:
      case ExprKind::kExists:
      case ExprKind::kForall:
      case ExprKind::kTrueLit:
      case ExprKind::kFalseLit:
        CompileFormula(expr, /*positive=*/true, &body.constraints);
        return body;
    }
    TypeFail("cannot compile expression " + expr->ToString());
  }

  /// target[args] in an expression position: the suffixes of matching
  /// tuples become the outputs.
  CompiledBody CompilePartialApplication(const ExprPtr& expr) {
    CompiledBody body;
    // Builtin targets have a fixed arity, so the suffix expands to
    // individual fresh variables instead of a tuple variable.
    ExprPtr base = expr;
    std::vector<Arg> all_args;
    FlattenApplication(expr, &base, &all_args);
    if (base->kind == ExprKind::kIdent && !Lookup(base->name) &&
        !interp_->HasDefs(base->name) &&
        base->name != builtin_names::kReduce && FindBuiltin(base->name)) {
      const Builtin* b = FindBuiltin(base->name);
      if (all_args.size() > b->arity()) {
        throw RelError(ErrorKind::kArity,
                       "builtin '" + base->name + "' takes " +
                           std::to_string(b->arity()) + " arguments");
      }
      std::vector<CTerm> extra;
      for (size_t i = all_args.size(); i < b->arity(); ++i) {
        CTerm v = CTerm::Var(FreshVar());
        extra.push_back(v);
        body.outs.push_back(v);
      }
      EmitAtom(base, all_args, extra, &body.constraints);
      return body;
    }
    std::string tv = FreshTupleVar();
    EmitAtom(base, all_args, {CTerm::TupleVar(tv)}, &body.constraints);
    body.outs.push_back(CTerm::TupleVar(tv));
    return body;
  }

  // --- formula compilation ---

  void CompileFormula(const ExprPtr& expr, bool positive,
                      std::vector<ConstraintPtr>* out) {
    switch (expr->kind) {
      case ExprKind::kAnd:
        if (positive) {
          CompileFormula(expr->children[0], true, out);
          CompileFormula(expr->children[1], true, out);
        } else {
          // not (a and b) == not a or not b
          EmitDisjOfNegations(expr->children, out);
        }
        return;
      case ExprKind::kOr:
        if (positive) {
          auto c = std::make_shared<Constraint>();
          c->kind = Constraint::Kind::kDisj;
          c->scope = Snapshot();
          c->describe = expr->ToString();
          for (const ExprPtr& child : expr->children) {
            auto branch = std::make_shared<CompiledBody>();
            CompileFormula(child, true, &branch->constraints);
            c->branches.push_back(branch);
          }
          out->push_back(c);
        } else {
          // not (a or b) == not a and not b
          CompileFormula(expr->children[0], false, out);
          CompileFormula(expr->children[1], false, out);
        }
        return;
      case ExprKind::kNot:
        CompileFormula(expr->children[0], !positive, out);
        return;
      case ExprKind::kExists:
        if (positive) {
          // Inline: binders become existential locals of the conjunction.
          PushScope();
          for (const Binding& b : expr->bindings) {
            CompileBinding(b, out);
          }
          CompileFormula(expr->body, true, out);
          PopScope();
        } else {
          EmitNegatedSub(expr, out);
        }
        return;
      case ExprKind::kForall: {
        // forall(b | f) == not exists(b | not f)
        auto exists = MakeExpr(ExprKind::kExists, expr->line, expr->column);
        exists->bindings = expr->bindings;
        auto neg = MakeExpr(ExprKind::kNot, expr->line, expr->column);
        neg->children = {expr->body};
        exists->body = neg;
        if (positive) {
          EmitNegatedSub(exists, out);
        } else {
          // not forall == exists not
          CompileFormula(exists, true, out);
        }
        return;
      }
      case ExprKind::kTrueLit:
        if (!positive) EmitFail(out);
        return;
      case ExprKind::kFalseLit:
        if (positive) EmitFail(out);
        return;
      case ExprKind::kWhere:
        // In a formula position `e where f` behaves like a conjunction.
        if (positive) {
          CompileFormula(expr->children[0], true, out);
          CompileFormula(expr->children[1], true, out);
        } else {
          EmitDisjOfNegations(expr->children, out);
        }
        return;
      case ExprKind::kApplication:
        if (expr->full) {
          if (positive) {
            ExprPtr base;
            std::vector<Arg> args;
            FlattenApplication(expr, &base, &args);
            EmitAtom(base, args, {}, out);
          } else {
            EmitNegatedSub(expr, out);
          }
          return;
        }
        // A partial application used as a formula asserts that the result
        // is non-empty (its outputs are dropped).
        if (positive) {
          CompiledBody body = CompileBodyExpr(expr);
          for (auto& c : body.constraints) out->push_back(c);
        } else {
          EmitNegatedSub(expr, out);
        }
        return;
      default: {
        // Any other expression as a formula asserts non-emptiness.
        if (positive) {
          CompiledBody body = CompileBodyExpr(expr);
          for (auto& c : body.constraints) out->push_back(c);
        } else {
          EmitNegatedSub(expr, out);
        }
        return;
      }
    }
  }

  /// Emits `not e1 or not e2` as a disjunction constraint.
  void EmitDisjOfNegations(const std::vector<ExprPtr>& children,
                           std::vector<ConstraintPtr>* out) {
    auto c = std::make_shared<Constraint>();
    c->kind = Constraint::Kind::kDisj;
    c->scope = Snapshot();
    c->describe = "negated conjunction";
    for (const ExprPtr& child : children) {
      auto branch = std::make_shared<CompiledBody>();
      CompileFormula(child, false, &branch->constraints);
      c->branches.push_back(branch);
    }
    out->push_back(c);
  }

  /// Emits a negated sub-formula constraint: the formula is compiled
  /// positively; the constraint succeeds iff it has no solution. All its
  /// free variables must be bound before it runs.
  void EmitNegatedSub(const ExprPtr& formula, std::vector<ConstraintPtr>* out) {
    auto c = std::make_shared<Constraint>();
    c->kind = Constraint::Kind::kNegated;
    c->scope = Snapshot();
    c->describe = "not " + formula->ToString();
    c->need_bound = FreeVars(formula);
    auto sub = std::make_shared<CompiledBody>();
    // Inside the negation the formula is positive again; its outputs (if it
    // is a relation expression) witness non-emptiness and are dropped.
    CompiledBody body = CompileBodyExpr(formula);
    sub->constraints = std::move(body.constraints);
    c->neg = sub;
    out->push_back(c);
  }

  /// Emits a constraint that always fails (compiled `false`): a negation
  /// whose sub-body has the empty solution.
  void EmitFail(std::vector<ConstraintPtr>* out) {
    auto c = std::make_shared<Constraint>();
    c->kind = Constraint::Kind::kNegated;
    c->describe = "false";
    c->neg = std::make_shared<CompiledBody>();
    out->push_back(c);
  }

  // --- atoms ---

  /// Unwraps chained partial applications: T[a][b](c) has base T and args
  /// a, b, c.
  static void FlattenApplication(const ExprPtr& expr, ExprPtr* base,
                                 std::vector<Arg>* args) {
    if (expr->kind == ExprKind::kApplication) {
      ExprPtr target = expr->target;
      if (target->kind == ExprKind::kApplication && !target->full) {
        FlattenApplication(target, base, args);
        for (const Arg& a : expr->args) args->push_back(a);
        return;
      }
      *base = target;
      *args = expr->args;
      return;
    }
    *base = expr;
    args->clear();
  }

  /// Compiles the membership/application of `target_expr` (an arbitrary
  /// relation-valued expression) to the argument terms `terms`:
  /// target_expr(terms) as a constraint.
  void EmitAtomFromExpr(const ExprPtr& target_expr, std::vector<CTerm> terms,
                        std::vector<ConstraintPtr>* out) {
    ExprPtr base;
    std::vector<Arg> args;
    FlattenApplication(target_expr, &base, &args);
    EmitAtom(base, args, std::move(terms), out);
  }

  /// Infers a first-order annotation for unannotated arguments whose shape
  /// can only denote a value: literals, in-scope first-order variables, and
  /// arithmetic (builtin) applications. This is the "examining the
  /// definition" rule of Addendum A that lets the paper's addUp definition
  /// call addUp[(x-x%10)/10] without a ?{} annotation.
  Annotation InferAnnotation(const ExprPtr& e) const {
    switch (e->kind) {
      case ExprKind::kLiteral:
      case ExprKind::kWildcard:
        return Annotation::kFirstOrder;
      case ExprKind::kIdent: {
        const ScopeEntry* entry = Lookup(e->name);
        if (entry && entry->kind == ScopeEntry::Kind::kVar) {
          return Annotation::kFirstOrder;
        }
        return Annotation::kNone;
      }
      case ExprKind::kApplication: {
        ExprPtr base;
        std::vector<Arg> args;
        FlattenApplication(e, &base, &args);
        if (base->kind == ExprKind::kIdent && !Lookup(base->name) &&
            !interp_->HasDefs(base->name) && FindBuiltin(base->name)) {
          return Annotation::kFirstOrder;
        }
        return Annotation::kNone;
      }
      default:
        return Annotation::kNone;
    }
  }

  /// The core atom compiler. `base` is the (flattened) application target,
  /// `args_in` the source-level arguments, `extra` already-compiled trailing
  /// terms (suffix capture or membership variables).
  void EmitAtom(const ExprPtr& base, const std::vector<Arg>& args,
                std::vector<CTerm> extra, std::vector<ConstraintPtr>* out) {
    auto c = std::make_shared<Constraint>();
    c->kind = Constraint::Kind::kAtom;
    c->scope = Snapshot();

    size_t sig = 0;
    if (base->kind == ExprKind::kIdent) {
      const std::string& name = base->name;
      const ScopeEntry* entry = Lookup(name);
      if (entry) {
        switch (entry->kind) {
          case ScopeEntry::Kind::kRelVar:
            c->target = Constraint::Target::kRelVar;
            c->name = entry->internal;
            break;
          case ScopeEntry::Kind::kVar:
          case ScopeEntry::Kind::kTupleVar:
            TypeFail("cannot apply first-order variable '" + name + "'");
        }
      } else if (name == builtin_names::kReduce) {
        // reduce[&{op}, &{input}] / reduce(&{op}, &{input}, ?{v})
        if (args.size() < 2) {
          throw RelError(ErrorKind::kArity,
                         "reduce takes an operator and a relation");
        }
        c->kind = Constraint::Kind::kAgg;
        c->so_args = {args[0].expr, args[1].expr};
        c->so_free = {FreeVars(args[0].expr), FreeVars(args[1].expr)};
        if (args.size() == 3) {
          if (!extra.empty()) {
            throw RelError(ErrorKind::kArity, "reduce takes 3 arguments");
          }
          c->agg_result = CompileArgTerm(args[2], out);
        } else if (args.size() == 2 && extra.size() == 1) {
          c->agg_result = extra[0];
        } else {
          throw RelError(ErrorKind::kArity, "reduce takes 3 arguments");
        }
        c->describe = "reduce";
        out->push_back(c);
        return;
      } else if (interp_->HasDefs(name)) {
        c->target = Constraint::Target::kGlobal;
        c->name = name;
        try {
          sig = interp_->ResolveSig(name, args);
        } catch (const RelError& err) {
          if (err.kind() != ErrorKind::kAmbiguous) throw;
          // Tie-break with annotations inferred from argument shapes
          // (Addendum A: the engine examines the definitions, and argument
          // expressions that can only denote values are first-order).
          std::vector<Arg> inferred = args;
          for (Arg& a : inferred) {
            if (a.expr && a.annotation == Annotation::kNone) {
              a.annotation = InferAnnotation(a.expr);
            }
          }
          sig = interp_->ResolveSig(name, inferred);
        }
        c->sig = sig;
      } else if (FindBuiltin(name)) {
        c->target = Constraint::Target::kBuiltin;
        c->builtin = FindBuiltin(name);
        c->name = name;
        if (args.size() + extra.size() != c->builtin->arity()) {
          throw RelError(ErrorKind::kArity,
                         "builtin '" + name + "' takes " +
                             std::to_string(c->builtin->arity()) +
                             " arguments");
        }
      } else {
        // Base (stored) relation, possibly empty.
        c->target = Constraint::Target::kGlobal;
        c->name = name;
        c->sig = 0;
      }
    } else {
      c->target = Constraint::Target::kExpr;
      c->texpr = base;
      c->texpr_free = FreeVars(base);
    }

    // Second-order arguments.
    for (size_t i = 0; i < sig; ++i) {
      if (i >= args.size()) {
        throw RelError(ErrorKind::kArity,
                       "application of '" + c->name +
                           "' is missing relation arguments");
      }
      if (!args[i].expr) {
        TypeFail("wildcard cannot be a relation argument");
      }
      if (args[i].annotation == Annotation::kFirstOrder) {
        TypeFail("?{..} argument in a second-order position of '" + c->name +
                 "'");
      }
      c->so_args.push_back(args[i].expr);
      c->so_free.push_back(FreeVars(args[i].expr));
    }

    // First-order arguments.
    for (size_t i = sig; i < args.size(); ++i) {
      if (args[i].annotation == Annotation::kSecondOrder) {
        TypeFail("&{..} argument in a first-order position");
      }
      c->args.push_back(CompileArgTerm(args[i], out));
    }
    for (CTerm& t : extra) c->args.push_back(std::move(t));

    c->describe = (base->kind == ExprKind::kIdent ? base->name : "<expr>");
    out->push_back(c);
  }

  /// Compiles one first-order argument to a term, adding membership
  /// constraints for complex expressions (the ?{Expr} semantics of
  /// Addendum A).
  CTerm CompileArgTerm(const Arg& arg, std::vector<ConstraintPtr>* out) {
    const ExprPtr& e = arg.expr;
    switch (e->kind) {
      case ExprKind::kLiteral:
        return CTerm::Const(e->literal);
      case ExprKind::kRelNameLit:
        return CTerm::Const(Value::Entity("rel", e->name));
      case ExprKind::kWildcard:
        return CTerm::Wildcard();
      case ExprKind::kWildcardTuple:
        return CTerm::WildcardTuple();
      case ExprKind::kTupleVar: {
        const ScopeEntry* entry = Lookup(e->name);
        if (!entry || entry->kind != ScopeEntry::Kind::kTupleVar) {
          TypeFail("unbound tuple variable '" + e->name + "...'");
        }
        return CTerm::TupleVar(entry->internal);
      }
      case ExprKind::kIdent: {
        const ScopeEntry* entry = Lookup(e->name);
        if (entry) {
          switch (entry->kind) {
            case ScopeEntry::Kind::kVar:
              return CTerm::Var(entry->internal);
            case ScopeEntry::Kind::kTupleVar:
              return CTerm::TupleVar(entry->internal);
            case ScopeEntry::Kind::kRelVar:
              TypeFail("relation variable '" + e->name +
                       "' used as a first-order argument");
          }
        }
        break;  // fall through to membership compilation
      }
      default:
        break;
    }
    // Complex argument: fresh variable v with v ∈ e.
    CTerm v = CTerm::Var(FreshVar());
    EmitAtomFromExpr(e, {v}, out);
    return v;
  }

  Interp* interp_;
  std::vector<ScopeMap> scopes_;
};

}  // namespace

// --- Executor -----------------------------------------------------------------

namespace {

/// Mutable solving state: current first-order and tuple bindings. The
/// read-only environment (captured values and relation variables) lives in
/// Executor.
struct Frame {
  std::map<std::string, Value> vars;
  std::map<std::string, Tuple> tuples;
};

enum class ExecResult { kDone, kDeferred, kStop };

class Executor {
 public:
  Executor(Interp* interp, const Env* env) : interp_(interp), env_(env) {}

  /// Solves `body`, calling `emit` for every solution frame. Returns false
  /// iff an emit requested a global stop.
  bool Solve(const CompiledBody& body, Frame frame,
             const std::function<bool(const Frame&)>& emit) {
    std::vector<const Constraint*> remaining;
    remaining.reserve(body.constraints.size());
    for (const auto& c : body.constraints) remaining.push_back(c.get());
    return SolveRemaining(remaining, frame, emit);
  }

  /// Evaluates an output term list under a solution frame.
  Tuple EvalOuts(const std::vector<CTerm>& outs, const Frame& frame) const {
    Tuple out;
    for (const CTerm& t : outs) {
      switch (t.kind) {
        case CTerm::Kind::kConst:
          out.Append(t.cval);
          break;
        case CTerm::Kind::kVar: {
          const Value* v = LookupVar(frame, t.name);
          if (!v) {
            SafetyFail("output variable is unbound (expression denotes an "
                       "infinite relation)");
          }
          out.Append(*v);
          break;
        }
        case CTerm::Kind::kTupleVar: {
          const Tuple* tv = LookupTuple(frame, t.name);
          if (!tv) {
            SafetyFail("output tuple variable is unbound (expression denotes "
                       "an infinite relation)");
          }
          out.AppendAll(*tv);
          break;
        }
        case CTerm::Kind::kWildcard:
        case CTerm::Kind::kWildcardTuple:
          SafetyFail("wildcard in an output position denotes an infinite "
                     "relation");
      }
    }
    return out;
  }

 private:
  // --- lookups ---

  const Value* LookupVar(const Frame& frame, const std::string& name) const {
    auto it = frame.vars.find(name);
    if (it != frame.vars.end()) return &it->second;
    auto eit = env_->vars.find(name);
    if (eit != env_->vars.end()) return &eit->second;
    return nullptr;
  }

  const Tuple* LookupTuple(const Frame& frame, const std::string& name) const {
    auto it = frame.tuples.find(name);
    if (it != frame.tuples.end()) return &it->second;
    auto eit = env_->tuples.find(name);
    if (eit != env_->tuples.end()) return &eit->second;
    return nullptr;
  }

  const SOValue* LookupRel(const std::string& name) const {
    auto it = env_->rels.find(name);
    if (it != env_->rels.end()) return &it->second;
    return nullptr;
  }

  bool FreeBound(const std::vector<FreeVar>& frees, const Frame& frame) const {
    for (const FreeVar& f : frees) {
      switch (f.kind) {
        case ScopeEntry::Kind::kVar:
          if (!LookupVar(frame, f.internal)) return false;
          break;
        case ScopeEntry::Kind::kTupleVar:
          if (!LookupTuple(frame, f.internal)) return false;
          break;
        case ScopeEntry::Kind::kRelVar:
          if (!LookupRel(f.internal)) return false;
          break;
      }
    }
    return true;
  }

  // --- the solve loop ---

  bool SolveRemaining(const std::vector<const Constraint*>& remaining,
                      const Frame& frame,
                      const std::function<bool(const Frame&)>& emit) {
    if (remaining.empty()) return emit(frame);

    // Order candidates: cheap filters first, then enumerations with many
    // bound positions, then aggregations and disjunctions.
    std::vector<std::pair<int, size_t>> order;
    order.reserve(remaining.size());
    for (size_t i = 0; i < remaining.size(); ++i) {
      order.emplace_back(Score(*remaining[i], frame), i);
    }
    std::stable_sort(order.begin(), order.end());

    for (const auto& [score, idx] : order) {
      (void)score;
      std::vector<const Constraint*> rest;
      rest.reserve(remaining.size() - 1);
      for (size_t i = 0; i < remaining.size(); ++i) {
        if (i != idx) rest.push_back(remaining[i]);
      }
      bool stop = false;
      ExecResult result = TryExec(*remaining[idx], rest, frame, emit, &stop);
      if (result == ExecResult::kStop) return false;
      if (result == ExecResult::kDone) return !stop;
    }

    std::string what = "no safe evaluation order for: ";
    for (size_t i = 0; i < remaining.size(); ++i) {
      if (i) what += ", ";
      what += remaining[i]->describe;
    }
    SafetyFail(what);
  }

  int Score(const Constraint& c, const Frame& frame) const {
    switch (c.kind) {
      case Constraint::Kind::kNegated:
        return FreeBound(c.need_bound, frame) ? 1 : 100;
      case Constraint::Kind::kAtom: {
        if (c.target == Constraint::Target::kBuiltin) {
          bool all_bound = true;
          for (const CTerm& t : c.args) {
            if (t.kind == CTerm::Kind::kVar && !LookupVar(frame, t.name)) {
              all_bound = false;
            }
            if (t.kind == CTerm::Kind::kWildcard) all_bound = false;
          }
          return all_bound ? 0 : 2;
        }
        bool so_ready = true;
        for (const auto& frees : c.so_free) {
          if (!FreeBound(frees, frame)) so_ready = false;
        }
        if (!FreeBound(c.texpr_free, frame)) so_ready = false;
        if (!so_ready) return 8;  // needs guard extraction
        int unbound = 0;
        for (const CTerm& t : c.args) {
          if (t.kind == CTerm::Kind::kVar && !LookupVar(frame, t.name)) {
            ++unbound;
          }
          if (t.kind == CTerm::Kind::kTupleVar &&
              !LookupTuple(frame, t.name)) {
            ++unbound;
          }
        }
        return 4 + std::min(unbound, 3);
      }
      case Constraint::Kind::kAgg: {
        bool ready = FreeBound(c.so_free[0], frame) &&
                     FreeBound(c.so_free[1], frame);
        return ready ? 3 : 8;
      }
      case Constraint::Kind::kDisj:
        return 9;
    }
    return 50;
  }

  ExecResult TryExec(const Constraint& c,
                     const std::vector<const Constraint*>& rest,
                     const Frame& frame,
                     const std::function<bool(const Frame&)>& emit,
                     bool* stop) {
    switch (c.kind) {
      case Constraint::Kind::kAtom:
        return ExecAtom(c, rest, frame, emit, stop);
      case Constraint::Kind::kNegated:
        return ExecNegated(c, rest, frame, emit, stop);
      case Constraint::Kind::kAgg:
        return ExecAgg(c, rest, frame, emit, stop);
      case Constraint::Kind::kDisj:
        return ExecDisj(c, rest, frame, emit, stop);
    }
    return ExecResult::kDeferred;
  }

  // --- negation ---

  ExecResult ExecNegated(const Constraint& c,
                         const std::vector<const Constraint*>& rest,
                         const Frame& frame,
                         const std::function<bool(const Frame&)>& emit,
                         bool* stop) {
    if (!FreeBound(c.need_bound, frame)) return ExecResult::kDeferred;
    bool found;
    try {
      found = !Solve(*c.neg, frame, [](const Frame&) { return false; });
    } catch (const RelError& err) {
      if (err.kind() == ErrorKind::kSafety) return ExecResult::kDeferred;
      throw;
    }
    if (found) return ExecResult::kDone;  // negation fails: no solutions
    if (!SolveRemaining(rest, frame, emit)) *stop = true;
    return ExecResult::kDone;
  }

  // --- aggregation (reduce) ---

  ExecResult ExecAgg(const Constraint& c,
                     const std::vector<const Constraint*>& rest,
                     const Frame& frame,
                     const std::function<bool(const Frame&)>& emit,
                     bool* stop) {
    if (!FreeBound(c.so_free[0], frame) || !FreeBound(c.so_free[1], frame)) {
      return ExecGuarded(c, rest, frame, emit, stop);
    }
    SOValue op = ResolveSOArg(c, 0, frame);
    SOValue input = ResolveSOArg(c, 1, frame);
    const Relation* in;
    try {
      in = &interp_->MaterializeSO(input);
    } catch (const RelError& err) {
      if (err.kind() == ErrorKind::kSafety) return ExecResult::kDeferred;
      throw;
    }
    if (in->empty()) return ExecResult::kDone;  // reduce over {} is {}
    std::optional<Value> acc;
    for (const Tuple& t : in->SortedTuples()) {
      if (t.arity() == 0) continue;
      const Value& v = t[t.arity() - 1];
      if (!acc) {
        acc = v;
        continue;
      }
      acc = interp_->ApplyBinary(op, *acc, v);
      if (!acc) return ExecResult::kDone;  // operator undefined on inputs
    }
    if (!acc) return ExecResult::kDone;
    // Bind or check the result term.
    Frame next = frame;
    switch (c.agg_result.kind) {
      case CTerm::Kind::kConst:
        if (c.agg_result.cval.NumericCompare(*acc) !=
            Value::Ordering::kEqual) {
          return ExecResult::kDone;
        }
        break;
      case CTerm::Kind::kVar: {
        const Value* bound = LookupVar(frame, c.agg_result.name);
        if (bound) {
          if (bound->NumericCompare(*acc) != Value::Ordering::kEqual) {
            return ExecResult::kDone;
          }
        } else {
          next.vars[c.agg_result.name] = *acc;
        }
        break;
      }
      case CTerm::Kind::kTupleVar: {
        const Tuple* bound = LookupTuple(frame, c.agg_result.name);
        Tuple result({*acc});
        if (bound) {
          if (*bound != result) return ExecResult::kDone;
        } else {
          next.tuples[c.agg_result.name] = result;
        }
        break;
      }
      case CTerm::Kind::kWildcard:
        break;
      case CTerm::Kind::kWildcardTuple:
        break;
    }
    if (!SolveRemaining(rest, next, emit)) *stop = true;
    return ExecResult::kDone;
  }

  // --- guard extraction ---
  //
  // When a second-order argument captures variables that are not yet bound
  // (e.g. `sum[[k]: A[i,k]*V[k]]` with head variable i unbound), enumerate
  // the candidate bindings by solving the capturing expressions themselves.
  // This realizes the paper's "the range of k is guarded by the first
  // columns of U and V" (Section 5.3.2), generalized to the guarded
  // variables of any second-order argument.
  ExecResult ExecGuarded(const Constraint& c,
                         const std::vector<const Constraint*>& rest,
                         const Frame& frame,
                         const std::function<bool(const Frame&)>& emit,
                         bool* stop) {
    // Collect the unbound first-order captures; defer if any tuple or
    // relation capture is unbound (no enumeration strategy).
    std::set<std::string> unbound;
    auto scan = [&](const std::vector<FreeVar>& frees) -> bool {
      for (const FreeVar& f : frees) {
        switch (f.kind) {
          case ScopeEntry::Kind::kVar:
            if (!LookupVar(frame, f.internal)) unbound.insert(f.internal);
            break;
          case ScopeEntry::Kind::kTupleVar:
            if (!LookupTuple(frame, f.internal)) return false;
            break;
          case ScopeEntry::Kind::kRelVar:
            if (!LookupRel(f.internal)) return false;
            break;
        }
      }
      return true;
    };
    for (const auto& frees : c.so_free) {
      if (!scan(frees)) return ExecResult::kDeferred;
    }
    if (!scan(c.texpr_free)) return ExecResult::kDeferred;
    if (unbound.empty()) return ExecResult::kDeferred;  // shouldn't happen

    // Compile (once) the guard bodies: one per second-order argument that
    // mentions an unbound variable.
    if (c.guard_cache.empty()) {
      c.guard_cache.resize(c.so_args.size() + 1);
    }
    std::vector<const CompiledBody*> guards;
    for (size_t i = 0; i < c.so_args.size(); ++i) {
      bool relevant = false;
      for (const FreeVar& f : c.so_free[i]) {
        if (unbound.count(f.internal)) relevant = true;
      }
      if (!relevant) continue;
      if (!c.guard_cache[i]) {
        Compiler compiler(interp_);
        compiler.SeedFromSnapshot(c.scope);
        c.guard_cache[i] =
            std::make_shared<CompiledBody>(compiler.CompileTop(c.so_args[i]));
      }
      guards.push_back(c.guard_cache[i].get());
    }
    if (c.texpr) {
      bool relevant = false;
      for (const FreeVar& f : c.texpr_free) {
        if (unbound.count(f.internal)) relevant = true;
      }
      if (relevant) {
        size_t slot = c.so_args.size();
        if (!c.guard_cache[slot]) {
          Compiler compiler(interp_);
          compiler.SeedFromSnapshot(c.scope);
          c.guard_cache[slot] =
              std::make_shared<CompiledBody>(compiler.CompileTop(c.texpr));
        }
        guards.push_back(c.guard_cache[slot].get());
      }
    }
    if (guards.empty()) return ExecResult::kDeferred;

    // Solve the guards as a conjunction, collecting the distinct
    // assignments of the unbound variables.
    std::vector<Frame> candidates = {frame};
    try {
      for (const CompiledBody* guard : guards) {
        std::vector<Frame> next;
        std::set<std::vector<Value>> seen;
        for (const Frame& cand : candidates) {
          Solve(*guard, cand, [&](const Frame& sol) {
            std::vector<Value> key;
            for (const std::string& u : unbound) {
              const Value* v = LookupVar(sol, u);
              key.push_back(v ? *v : Value());
            }
            if (seen.insert(key).second) {
              // Keep only the guard variables (drop guard-local bindings).
              Frame kept = cand;
              for (const std::string& u : unbound) {
                const Value* v = LookupVar(sol, u);
                if (v) kept.vars[u] = *v;
              }
              next.push_back(std::move(kept));
            }
            return true;
          });
        }
        candidates = std::move(next);
      }
    } catch (const RelError& err) {
      if (err.kind() == ErrorKind::kSafety) return ExecResult::kDeferred;
      throw;
    }

    for (const Frame& cand : candidates) {
      bool sub_stop = false;
      ExecResult r = TryExec(c, rest, cand, emit, &sub_stop);
      if (sub_stop) {
        *stop = true;
        return ExecResult::kDone;
      }
      if (r == ExecResult::kDeferred) return ExecResult::kDeferred;
      if (r == ExecResult::kStop) return ExecResult::kStop;
    }
    return ExecResult::kDone;
  }

  // --- atoms ---

  SOValue ResolveSOArg(const Constraint& c, size_t i,
                       const Frame& frame) const {
    const ExprPtr& e = c.so_args[i];
    if (e->kind == ExprKind::kIdent) {
      auto it = c.scope.find(e->name);
      if (it != c.scope.end()) {
        switch (it->second.kind) {
          case ScopeEntry::Kind::kRelVar: {
            const SOValue* sov = LookupRel(it->second.internal);
            if (!sov) {
              SafetyFail("relation variable '" + e->name + "' is unbound");
            }
            return *sov;
          }
          case ScopeEntry::Kind::kVar:
          case ScopeEntry::Kind::kTupleVar:
            TypeFail("first-order variable '" + e->name +
                     "' used as a relation argument");
        }
      }
      if (!interp_->HasDefs(e->name) && FindBuiltin(e->name)) {
        return SOValue::ForBuiltin(FindBuiltin(e->name));
      }
      return SOValue::Closure(e, std::make_shared<Env>());
    }
    return SOValue::Closure(e, CaptureEnv(c.so_free[i], frame));
  }

  std::shared_ptr<Env> CaptureEnv(const std::vector<FreeVar>& frees,
                                  const Frame& frame) const {
    auto env = std::make_shared<Env>();
    for (const FreeVar& f : frees) {
      switch (f.kind) {
        case ScopeEntry::Kind::kVar: {
          const Value* v = LookupVar(frame, f.internal);
          InternalCheck(v != nullptr, "capture of unbound variable");
          env->vars[f.source] = *v;
          break;
        }
        case ScopeEntry::Kind::kTupleVar: {
          const Tuple* t = LookupTuple(frame, f.internal);
          InternalCheck(t != nullptr, "capture of unbound tuple variable");
          env->tuples[f.source] = *t;
          break;
        }
        case ScopeEntry::Kind::kRelVar: {
          const SOValue* r = LookupRel(f.internal);
          InternalCheck(r != nullptr, "capture of unbound relation variable");
          env->rels[f.source] = *r;
          break;
        }
      }
    }
    return env;
  }

  ExecResult ExecAtom(const Constraint& c,
                      const std::vector<const Constraint*>& rest,
                      const Frame& frame,
                      const std::function<bool(const Frame&)>& emit,
                      bool* stop) {
    if (c.target == Constraint::Target::kBuiltin) {
      return ExecBuiltinAtom(c, *c.builtin, c.args, rest, frame, emit, stop);
    }
    // Readiness of second-order captures.
    for (const auto& frees : c.so_free) {
      if (!FreeBound(frees, frame)) {
        return ExecGuarded(c, rest, frame, emit, stop);
      }
    }
    if (!FreeBound(c.texpr_free, frame)) {
      return ExecGuarded(c, rest, frame, emit, stop);
    }

    if (c.target == Constraint::Target::kGlobal) {
      if (interp_->HasDefs(c.name)) {
        std::vector<SOValue> sovals;
        sovals.reserve(c.so_args.size());
        for (size_t i = 0; i < c.so_args.size(); ++i) {
          sovals.push_back(ResolveSOArg(c, i, frame));
        }
        // The catch must cover ONLY the materialization: a safety error
        // raised later, in the continuation of the solve, is a real error
        // of the enclosing expression, not a cue to inline.
        const Relation* r = nullptr;
        try {
          if (c.sig == 0 && sovals.empty() &&
              interp_->DemandEligible(c.name)) {
            // Demand-driven lookup: hand the interpreter this atom's
            // binding pattern (constants and already-bound variables), so
            // a qualifying recursive component can evaluate just the
            // demanded cone instead of its full fixpoint. The demanded
            // extent contains exactly the full extent's tuples matching
            // the bound positions — the ones the enumeration below would
            // keep anyway. Tuple-variable arguments leave the atom's arity
            // open, so they disable the pattern. DemandEligible pre-filters
            // so this allocation-bearing block never runs for atoms demand
            // cannot help (non-recursive or replacement-mode relations, or
            // the toggle off).
            std::vector<std::optional<Value>> pattern;
            pattern.reserve(c.args.size());
            bool usable = true;
            bool some_bound = false;
            for (const CTerm& t : c.args) {
              if (t.kind == CTerm::Kind::kConst) {
                pattern.emplace_back(t.cval);
                some_bound = true;
              } else if (t.kind == CTerm::Kind::kVar) {
                const Value* v = LookupVar(frame, t.name);
                if (v) {
                  pattern.emplace_back(*v);
                  some_bound = true;
                } else {
                  pattern.emplace_back(std::nullopt);
                }
              } else if (t.kind == CTerm::Kind::kWildcard) {
                pattern.emplace_back(std::nullopt);
              } else {
                usable = false;
                break;
              }
            }
            if (usable && some_bound) {
              r = &interp_->EvalInstanceDemand(c.name, pattern);
            }
          }
          if (r == nullptr) {
            r = &interp_->EvalInstance(c.name, c.sig, sovals);
          }
        } catch (const RelError& err) {
          if (err.kind() != ErrorKind::kSafety) throw;
          return InlineDefs(c, sovals, rest, frame, emit, stop);
        }
        return EnumerateRelation(*r, c.args, rest, frame, emit, stop);
      }
      // Base relation (no rules).
      return EnumerateRelation(interp_->db().Get(c.name), c.args, rest, frame,
                               emit, stop);
    }

    SOValue sov;
    if (c.target == Constraint::Target::kRelVar) {
      const SOValue* found = LookupRel(c.name);
      if (!found) SafetyFail("relation variable '" + c.name + "' is unbound");
      sov = *found;
    } else {
      sov = SOValue::Closure(c.texpr, CaptureEnv(c.texpr_free, frame));
    }
    return ExecSOValueAtom(c, sov, rest, frame, emit, stop);
  }

  ExecResult ExecSOValueAtom(const Constraint& c, const SOValue& sov,
                             const std::vector<const Constraint*>& rest,
                             const Frame& frame,
                             const std::function<bool(const Frame&)>& emit,
                             bool* stop) {
    if (sov.IsBuiltin()) {
      // Adapt argument terms to the builtin's arity; tuple variables are
      // not supported against builtins.
      if (c.args.size() != sov.builtin->arity()) {
        for (const CTerm& t : c.args) {
          if (t.kind == CTerm::Kind::kTupleVar ||
              t.kind == CTerm::Kind::kWildcardTuple) {
            SafetyFail("cannot enumerate builtin relation '" +
                       sov.builtin->name() + "'");
          }
        }
        throw RelError(ErrorKind::kArity,
                       "builtin '" + sov.builtin->name() + "' takes " +
                           std::to_string(sov.builtin->arity()) +
                           " arguments");
      }
      return ExecBuiltinAtom(c, *sov.builtin, c.args, rest, frame, emit, stop);
    }
    if (sov.IsMaterialized()) {
      return EnumerateRelation(*sov.rel, c.args, rest, frame, emit, stop);
    }
    // Closure: try to materialize; on safety failure, inline at this use
    // site with the bound arguments (the paper's "unsafe subexpressions are
    // allowed as long as the whole expression is safe"). As above, the
    // catch must not cover the continuation of the solve.
    const Relation* r = nullptr;
    try {
      r = &interp_->MaterializeSO(sov);
    } catch (const RelError& err) {
      if (err.kind() != ErrorKind::kSafety) throw;
      return InlineClosure(c, sov, rest, frame, emit, stop);
    }
    return EnumerateRelation(*r, c.args, rest, frame, emit, stop);
  }

  ExecResult ExecBuiltinAtom([[maybe_unused]] const Constraint& c,
                             const Builtin& builtin,
                             const std::vector<CTerm>& args,
                             const std::vector<const Constraint*>& rest,
                             const Frame& frame,
                             const std::function<bool(const Frame&)>& emit,
                             bool* stop) {
    if (args.size() != builtin.arity()) {
      throw RelError(ErrorKind::kArity,
                     "builtin '" + builtin.name() + "' takes " +
                         std::to_string(builtin.arity()) + " arguments");
    }
    std::vector<std::optional<Value>> inputs(args.size());
    std::vector<bool> bound(args.size(), false);
    for (size_t i = 0; i < args.size(); ++i) {
      switch (args[i].kind) {
        case CTerm::Kind::kConst:
          inputs[i] = args[i].cval;
          bound[i] = true;
          break;
        case CTerm::Kind::kVar: {
          const Value* v = LookupVar(frame, args[i].name);
          if (v) {
            inputs[i] = *v;
            bound[i] = true;
          }
          break;
        }
        case CTerm::Kind::kWildcard:
          break;
        case CTerm::Kind::kTupleVar:
        case CTerm::Kind::kWildcardTuple:
          SafetyFail("tuple variable argument to builtin '" + builtin.name() +
                     "'");
      }
    }
    if (!builtin.Supports(bound)) return ExecResult::kDeferred;
    std::vector<std::vector<Value>> completions;
    builtin.Eval(inputs, [&completions](const std::vector<Value>& tuple) {
      completions.push_back(tuple);
    });
    for (const std::vector<Value>& tuple : completions) {
      Frame next = frame;
      bool ok = true;
      for (size_t i = 0; i < args.size() && ok; ++i) {
        if (args[i].kind != CTerm::Kind::kVar || bound[i]) continue;
        auto it = next.vars.find(args[i].name);
        if (it != next.vars.end()) {
          if (it->second != tuple[i]) ok = false;
        } else {
          next.vars[args[i].name] = tuple[i];
        }
      }
      if (!ok) continue;
      if (!SolveRemaining(rest, next, emit)) {
        *stop = true;
        return ExecResult::kDone;
      }
    }
    return ExecResult::kDone;
  }

  /// Inlines the rules of a defined relation whose instance cannot be
  /// materialized (it is unsafe standalone, e.g. the stdlib arithmetic
  /// wrappers or the paper's Cond12), seeding the rule parameters with the
  /// bound arguments.
  /// Fully bound argument pattern as a concrete tuple, if possible.
  std::optional<Tuple> BoundArgsTuple(const std::vector<CTerm>& args,
                                      const Frame& frame) const {
    Tuple t;
    for (const CTerm& a : args) {
      switch (a.kind) {
        case CTerm::Kind::kConst:
          t.Append(a.cval);
          break;
        case CTerm::Kind::kVar: {
          const Value* v = LookupVar(frame, a.name);
          if (!v) return std::nullopt;
          t.Append(*v);
          break;
        }
        case CTerm::Kind::kTupleVar: {
          const Tuple* tv = LookupTuple(frame, a.name);
          if (!tv) return std::nullopt;
          t.AppendAll(*tv);
          break;
        }
        case CTerm::Kind::kWildcard:
        case CTerm::Kind::kWildcardTuple:
          return std::nullopt;
      }
    }
    return t;
  }

  /// Aligns a concrete bound tuple with a rule's first-order parameters
  /// (possible when at most one parameter is a tuple variable).
  static std::optional<std::vector<Seed>> SeedsFromTuple(
      const Def& def, const Tuple& bound) {
    std::vector<const Binding*> params;
    int tuple_params = 0;
    for (const Binding& p : def.params) {
      if (p.kind == Binding::Kind::kRelVar) continue;
      params.push_back(&p);
      if (p.kind == Binding::Kind::kTupleVar) ++tuple_params;
    }
    if (tuple_params > 1) return std::nullopt;
    size_t fixed = params.size() - tuple_params;
    if (tuple_params == 0) {
      // The head may extend beyond the parameters (square-headed rules
      // append body outputs), so only require a prefix.
      if (bound.arity() < fixed) return std::nullopt;
    } else if (bound.arity() < fixed) {
      return std::nullopt;
    }
    std::vector<Seed> seeds(params.size());
    size_t pos = 0;
    for (size_t i = 0; i < params.size(); ++i) {
      if (params[i]->kind == Binding::Kind::kTupleVar) {
        size_t len = bound.arity() - fixed;
        seeds[i].tuple = bound.Slice(pos, pos + len);
        pos += len;
      } else {
        if (pos >= bound.arity()) break;
        seeds[i].value = bound[pos];
        ++pos;
      }
    }
    // Positions beyond the parameters seed the rule's body outputs.
    if (tuple_params == 0) {
      for (; pos < bound.arity(); ++pos) {
        Seed s;
        s.value = bound[pos];
        seeds.push_back(s);
      }
    }
    return seeds;
  }

  ExecResult InlineDefs(const Constraint& c, const std::vector<SOValue>& sovals,
                        const std::vector<const Constraint*>& rest,
                        const Frame& frame,
                        const std::function<bool(const Frame&)>& emit,
                        bool* stop) {
    const auto& defs = interp_->DefsOf(c.name, c.sig);
    std::optional<Tuple> bound = BoundArgsTuple(c.args, frame);
    std::vector<std::vector<Frame>> all_matches;
    try {
      for (const auto& def : defs) {
        std::optional<std::vector<Seed>> seeds;
        if (bound) seeds = SeedsFromTuple(*def, *bound);
        if (!seeds) {
          // Positional best-effort seeding: sound position-by-position when
          // no rule parameter is a tuple variable; the argument prefix up
          // to the first tuple pattern aligns with head positions.
          bool simple = true;
          for (const Binding& p : def->params) {
            if (p.kind == Binding::Kind::kTupleVar) simple = false;
          }
          seeds.emplace();
          if (simple) {
            // Seed every single-width bound argument positionally; EvalRule
            // applies trailing seeds to the rule's body outputs, which is
            // what lets builtin inverses fire (e.g. add(y,5,z) with z bound
            // through the stdlib `add` wrapper).
            for (const CTerm& t : c.args) {
              Seed seed;
              if (t.kind == CTerm::Kind::kConst) {
                seed.value = t.cval;
              } else if (t.kind == CTerm::Kind::kVar) {
                const Value* v = LookupVar(frame, t.name);
                if (v) seed.value = *v;
              } else if (t.kind == CTerm::Kind::kTupleVar ||
                         t.kind == CTerm::Kind::kWildcardTuple) {
                break;  // positions after a tuple pattern do not align
              }
              seeds->push_back(seed);
            }
          }
        }
        Relation heads = interp_->solver().EvalRule(*def, sovals, &*seeds);
        std::vector<Frame> matches;
        for (const Tuple& t : heads.SortedTuples()) {
          MatchTuple(c.args, t, frame, &matches);
        }
        all_matches.push_back(std::move(matches));
      }
      // Base facts participate too (a name can have both rules and data).
      if (c.sig == 0 && interp_->db().Has(c.name)) {
        std::vector<Frame> matches;
        CollectMatches(interp_->db().Get(c.name), c.args, frame, &matches);
        all_matches.push_back(std::move(matches));
      }
    } catch (const RelError& err) {
      if (err.kind() == ErrorKind::kSafety) return ExecResult::kDeferred;
      throw;
    }
    for (const auto& matches : all_matches) {
      for (const Frame& m : matches) {
        if (!SolveRemaining(rest, m, emit)) {
          *stop = true;
          return ExecResult::kDone;
        }
      }
    }
    return ExecResult::kDone;
  }

  /// Inlines a closure at its use site: solves the closure's body with the
  /// bound arguments seeded, then matches the produced tuples against the
  /// argument pattern.
  ExecResult InlineClosure(const Constraint& c, const SOValue& sov,
                           const std::vector<const Constraint*>& rest,
                           const Frame& frame,
                           const std::function<bool(const Frame&)>& emit,
                           bool* stop) {
    Compiler compiler(interp_);
    compiler.SeedFromEnv(*sov.env);
    CompiledBody body;
    try {
      body = compiler.CompileTop(sov.expr);
    } catch (const RelError& err) {
      if (err.kind() == ErrorKind::kSafety) return ExecResult::kDeferred;
      throw;
    }
    // Seed sub-frame variables from bound argument positions when the
    // output terms align one-to-one with the arguments.
    Frame sub;
    if (body.outs.size() == c.args.size()) {
      for (size_t i = 0; i < body.outs.size(); ++i) {
        const CTerm& o = body.outs[i];
        const CTerm& a = c.args[i];
        if (o.kind == CTerm::Kind::kVar) {
          if (a.kind == CTerm::Kind::kConst) {
            sub.vars[o.name] = a.cval;
          } else if (a.kind == CTerm::Kind::kVar) {
            const Value* v = LookupVar(frame, a.name);
            if (v) sub.vars[o.name] = *v;
          }
        } else if (o.kind == CTerm::Kind::kTupleVar &&
                   a.kind == CTerm::Kind::kTupleVar) {
          const Tuple* tv = LookupTuple(frame, a.name);
          if (tv) sub.tuples[o.name] = *tv;
        }
      }
    }
    std::vector<Frame> matches;
    try {
      Executor sub_exec(interp_, sov.env.get());
      sub_exec.Solve(body, sub, [&](const Frame& sol) {
        Tuple out = sub_exec.EvalOuts(body.outs, sol);
        MatchTuple(c.args, out, frame, &matches);
        return true;
      });
    } catch (const RelError& err) {
      if (err.kind() == ErrorKind::kSafety) return ExecResult::kDeferred;
      throw;
    }
    for (const Frame& m : matches) {
      if (!SolveRemaining(rest, m, emit)) {
        *stop = true;
        return ExecResult::kDone;
      }
    }
    return ExecResult::kDone;
  }

  // --- relation enumeration and pattern matching ---

  ExecResult EnumerateRelation(const Relation& relation,
                               const std::vector<CTerm>& args,
                               const std::vector<const Constraint*>& rest,
                               const Frame& frame,
                               const std::function<bool(const Frame&)>& emit,
                               bool* stop) {
    std::vector<Frame> matches;
    CollectMatches(relation, args, frame, &matches);
    for (const Frame& m : matches) {
      if (!SolveRemaining(rest, m, emit)) {
        *stop = true;
        return ExecResult::kDone;
      }
    }
    return ExecResult::kDone;
  }

  /// Collects all frame extensions matching `args` against the tuples of
  /// `relation`, using a sorted prefix scan for the leading bound terms.
  void CollectMatches(const Relation& relation, const std::vector<CTerm>& args,
                      const Frame& frame, std::vector<Frame>* out) const {
    Tuple prefix;
    for (const CTerm& t : args) {
      if (t.kind == CTerm::Kind::kConst) {
        prefix.Append(t.cval);
        continue;
      }
      if (t.kind == CTerm::Kind::kVar) {
        const Value* v = LookupVar(frame, t.name);
        if (v) {
          prefix.Append(*v);
          continue;
        }
      }
      if (t.kind == CTerm::Kind::kTupleVar) {
        const Tuple* tv = LookupTuple(frame, t.name);
        if (tv) {
          prefix.AppendAll(*tv);
          continue;
        }
      }
      break;
    }
    relation.ScanPrefix(prefix, [&](const TupleRef& tuple) {
      MatchTuple(args, tuple, frame, out);
      return true;
    });
  }

  /// Matches one tuple against the argument pattern, appending every
  /// resulting frame extension (tuple-variable splits can yield several).
  /// `Row` is either an owning Tuple or a columnar TupleRef row view.
  template <typename Row>
  void MatchTuple(const std::vector<CTerm>& args, const Row& tuple,
                  const Frame& frame, std::vector<Frame>* out) const {
    MatchFrom(args, 0, tuple, 0, frame, out);
  }

  template <typename Row>
  void MatchFrom(const std::vector<CTerm>& args, size_t ai, const Row& tuple,
                 size_t ti, const Frame& frame,
                 std::vector<Frame>* out) const {
    if (ai == args.size()) {
      if (ti == tuple.arity()) out->push_back(frame);
      return;
    }
    const CTerm& t = args[ai];
    switch (t.kind) {
      case CTerm::Kind::kConst:
        if (ti < tuple.arity() && tuple[ti] == t.cval) {
          MatchFrom(args, ai + 1, tuple, ti + 1, frame, out);
        }
        return;
      case CTerm::Kind::kWildcard:
        if (ti < tuple.arity()) {
          MatchFrom(args, ai + 1, tuple, ti + 1, frame, out);
        }
        return;
      case CTerm::Kind::kVar: {
        if (ti >= tuple.arity()) return;
        const Value* v = LookupVar(frame, t.name);
        if (v) {
          if (*v == tuple[ti]) {
            MatchFrom(args, ai + 1, tuple, ti + 1, frame, out);
          }
          return;
        }
        Frame next = frame;
        next.vars[t.name] = tuple[ti];
        MatchFrom(args, ai + 1, tuple, ti + 1, next, out);
        return;
      }
      case CTerm::Kind::kTupleVar: {
        const Tuple* bound = LookupTuple(frame, t.name);
        if (bound) {
          if (ti + bound->arity() > tuple.arity()) return;
          for (size_t i = 0; i < bound->arity(); ++i) {
            if ((*bound)[i] != tuple[ti + i]) return;
          }
          MatchFrom(args, ai + 1, tuple, ti + bound->arity(), frame, out);
          return;
        }
        for (size_t len = 0; ti + len <= tuple.arity(); ++len) {
          Frame next = frame;
          next.tuples[t.name] = tuple.Slice(ti, ti + len);
          MatchFrom(args, ai + 1, tuple, ti + len, next, out);
        }
        return;
      }
      case CTerm::Kind::kWildcardTuple: {
        for (size_t len = 0; ti + len <= tuple.arity(); ++len) {
          MatchFrom(args, ai + 1, tuple, ti + len, frame, out);
        }
        return;
      }
    }
  }

  // --- disjunction ---

  ExecResult ExecDisj(const Constraint& c,
                      const std::vector<const Constraint*>& rest,
                      const Frame& frame,
                      const std::function<bool(const Frame&)>& emit,
                      bool* stop) {
    std::vector<Frame> solutions;
    try {
      for (const BodyPtr& branch : c.branches) {
        Solve(*branch, frame, [&](const Frame& sol) {
          Frame kept = sol;
          if (!c.disj_out.empty()) {
            kept.tuples[c.disj_out] = EvalOuts(branch->outs, sol);
          }
          solutions.push_back(std::move(kept));
          return true;
        });
      }
    } catch (const RelError& err) {
      if (err.kind() == ErrorKind::kSafety) return ExecResult::kDeferred;
      throw;
    }
    for (const Frame& sol : solutions) {
      if (!SolveRemaining(rest, sol, emit)) {
        *stop = true;
        return ExecResult::kDone;
      }
    }
    return ExecResult::kDone;
  }

  Interp* interp_;
  const Env* env_;
};

}  // namespace

// --- Solver public API --------------------------------------------------------

size_t Solver::CountSOParams(const Def& def) {
  size_t n = 0;
  while (n < def.params.size() &&
         def.params[n].kind == Binding::Kind::kRelVar) {
    ++n;
  }
  return n;
}

Relation Solver::EvalExpr(const ExprPtr& expr, const Env& env) {
  Compiler compiler(interp_);
  compiler.SeedFromEnv(env);
  CompiledBody body = compiler.CompileTop(expr);
  Executor executor(interp_, &env);
  Relation out;
  executor.Solve(body, Frame(), [&](const Frame& frame) {
    out.Insert(executor.EvalOuts(body.outs, frame));
    return true;
  });
  return out;
}

bool Solver::EvalFormula(const ExprPtr& formula, const Env& env) {
  Compiler compiler(interp_);
  compiler.SeedFromEnv(env);
  CompiledBody body = compiler.CompileTop(formula);
  Executor executor(interp_, &env);
  bool found = false;
  executor.Solve(body, Frame(), [&found](const Frame&) {
    found = true;
    return false;
  });
  return found;
}

Relation Solver::EvalRule(const Def& def, const std::vector<SOValue>& so_args,
                          const std::vector<Seed>* seeds) {
  // Compile (memoized by rule identity).
  std::shared_ptr<CompiledRule> rule;
  auto& cache = interp_->rule_cache();
  auto it = cache.find(&def);
  if (it != cache.end()) {
    rule = std::static_pointer_cast<CompiledRule>(it->second);
  } else {
    Compiler compiler(interp_);
    rule = std::make_shared<CompiledRule>(compiler.CompileRule(def));
    cache[&def] = rule;
  }

  InternalCheck(so_args.size() == rule->relvar_internals.size(),
                "second-order argument count mismatch");
  Env env;
  for (size_t i = 0; i < so_args.size(); ++i) {
    env.rels[rule->relvar_internals[i]] = so_args[i];
  }

  Frame frame;
  if (seeds) {
    // Seeds align with the head terms, then (for square rules) with the
    // body output terms — the full shape of the emitted head tuple.
    for (size_t i = 0; i < seeds->size(); ++i) {
      const CTerm* t = nullptr;
      if (i < rule->head_terms.size()) {
        t = &rule->head_terms[i];
      } else if (rule->square &&
                 i - rule->head_terms.size() < rule->body.outs.size()) {
        t = &rule->body.outs[i - rule->head_terms.size()];
      } else {
        break;
      }
      const Seed& seed = (*seeds)[i];
      if (seed.value) {
        if (t->kind == CTerm::Kind::kVar) {
          frame.vars[t->name] = *seed.value;
        } else if (t->kind == CTerm::Kind::kConst) {
          if (t->cval != *seed.value) return Relation();
        }
      } else if (seed.tuple) {
        if (t->kind == CTerm::Kind::kTupleVar) {
          frame.tuples[t->name] = *seed.tuple;
        }
      }
    }
  }

  Executor executor(interp_, &env);
  Relation out;
  executor.Solve(rule->body, frame, [&](const Frame& sol) {
    Tuple head = executor.EvalOuts(rule->head_terms, sol);
    if (rule->square) {
      head.AppendAll(executor.EvalOuts(rule->body.outs, sol));
    }
    out.Insert(std::move(head));
    return true;
  });
  return out;
}

}  // namespace rel
