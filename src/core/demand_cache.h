// DemandCache: cross-transaction memoization of demanded cones.
//
// PR 5's magic-set transform answers a point query like tc(0, Y) by deriving
// only the demanded cone — but the per-(pred, pattern) memo lived inside the
// transaction's Interp, so every read-only transaction re-ran the cone
// fixpoint from scratch. This cache hoists that memo out of the transaction:
// it is owned by a Session (one per reader, externally synchronized — no
// locks) and handed to each transaction's Interp via
// InterpOptions::demand_cache.
//
// Correctness keying: an entry is a pure function of
//   (Database::version() of the pinned snapshot, instance, bound values)
// under the *shared persistent rules*. Two guards keep that sound:
//   * the Interp only consults the cache for predicates whose transitive
//     rule dependencies contain no transaction-local def (a query-source
//     `def` extending a relation the cone reads would change the answer);
//   * the owner must Clear() when the persistent rule set changes
//     (Session watches Snapshot::rules_version) and should Retain() the
//     pinned version on re-pin so entries from abandoned snapshots do not
//     accumulate.
// The commit pipeline never attaches a cache to writer-side Interps: an
// aborted transaction's working versions can be re-issued by a later
// commit with different content, so only published snapshot versions are
// ever used as keys.

#ifndef REL_CORE_DEMAND_CACHE_H_
#define REL_CORE_DEMAND_CACHE_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "data/relation.h"
#include "data/value.h"

namespace rel {

class DemandCache {
 public:
  struct Key {
    uint64_t db_version = 0;
    /// "name/arity" — the same qualification the per-Interp memo uses, so
    /// tc(0, Y) and tc(0, Y, Z) never share an entry.
    std::string instance;
    /// Bound positions and their values, ascending by position.
    std::vector<std::pair<size_t, Value>> bound;

    bool operator<(const Key& other) const {
      if (db_version != other.db_version) return db_version < other.db_version;
      if (instance != other.instance) return instance < other.instance;
      return bound < other.bound;
    }
  };

  /// The cached cone for `key`, or nullptr. Counts a hit or a miss.
  const Relation* Lookup(const Key& key) {
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    return &it->second;
  }

  /// Stores (or overwrites) an entry; the returned reference is stable for
  /// the cache's lifetime (map nodes do not move).
  const Relation& Store(Key key, Relation cone) {
    return entries_[std::move(key)] = std::move(cone);
  }

  /// Drops every entry whose version differs from `db_version` — called on
  /// re-pin, so the cache holds cones for the pinned snapshot only.
  void Retain(uint64_t db_version) {
    for (auto it = entries_.begin(); it != entries_.end();) {
      it = it->first.db_version == db_version ? std::next(it)
                                              : entries_.erase(it);
    }
  }

  void Clear() { entries_.clear(); }

  size_t size() const { return entries_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  std::map<Key, Relation> entries_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace rel

#endif  // REL_CORE_DEMAND_CACHE_H_
