// DemandCache: cross-transaction memoization of demanded cones.
//
// PR 5's magic-set transform answers a point query like tc(0, Y) by deriving
// only the demanded cone — but the per-(pred, pattern) memo lived inside the
// transaction's Interp, so every read-only transaction re-ran the cone
// fixpoint from scratch. This cache hoists that memo out of the transaction:
// it is owned by a Session (one per reader, externally synchronized — no
// locks) and handed to each transaction's Interp via
// InterpOptions::demand_cache.
//
// Correctness keying: an entry is a pure function of
//   (Database::version() of the pinned snapshot, instance, bound values)
// under the *shared persistent rules*. Two guards keep that sound:
//   * the Interp only consults the cache for predicates whose transitive
//     rule dependencies contain no transaction-local def (a query-source
//     `def` extending a relation the cone reads would change the answer);
//   * the owner must invalidate on persistent rule-set changes — wholesale
//     Clear(), or ClearAffected() with the new defs' names when the change
//     is a pure extension (entries whose closure cannot read a new name
//     survive; see Session::Adopt) — and should Retain() the pinned version
//     on re-pin so entries from abandoned snapshots do not accumulate.
// The commit pipeline never attaches a cache to writer-side Interps: an
// aborted transaction's working versions can be re-issued by a later
// commit with different content, so only published snapshot versions are
// ever used as keys.
//
// Incremental maintenance (PR 9): entries stored by the cacheable demand
// path carry the full fixpoint of the magic-transformed program as a
// MaintainableExtents payload (core/extent_cache.h). On re-pin across a
// chain of commit deltas the Session calls Maintain() instead of dropping
// everything: each cone is moved to the new version in O(|delta cone|) —
// deltas outside its closure just re-stamp the key; relevant deltas run
// datalog::EvaluateDelta over the transformed program (magic seed facts
// never change under base-relation deltas, so the transformed program's
// EDB delta IS the database delta) and re-filter the goal extent.

#ifndef REL_CORE_DEMAND_CACHE_H_
#define REL_CORE_DEMAND_CACHE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/extent_cache.h"
#include "data/relation.h"
#include "data/value.h"

namespace rel {

class DemandCache {
 public:
  struct Key {
    uint64_t db_version = 0;
    /// "name/arity" — the same qualification the per-Interp memo uses, so
    /// tc(0, Y) and tc(0, Y, Z) never share an entry.
    std::string instance;
    /// Bound positions and their values, ascending by position.
    std::vector<std::pair<size_t, Value>> bound;

    bool operator<(const Key& other) const {
      if (db_version != other.db_version) return db_version < other.db_version;
      if (instance != other.instance) return instance < other.instance;
      return bound < other.bound;
    }
  };

  /// The cached cone for `key`, or nullptr. Counts a hit or a miss.
  const Relation* Lookup(const Key& key) {
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    return &it->second.cone;
  }

  /// Stores (or overwrites) an entry; the returned reference is stable for
  /// the cache's lifetime (map nodes do not move, re-keying included).
  /// `goal_pred`/`pattern`/`payload` make the cone maintainable: the
  /// payload holds the transformed program's full fixpoint and the cone is
  /// FilterByPattern(payload->extents[goal_pred], pattern). Entries stored
  /// without a payload are dropped by the first Maintain()/ClearAffected().
  const Relation& Store(Key key, Relation cone, std::string goal_pred = {},
                        std::vector<std::optional<Value>> pattern = {},
                        std::unique_ptr<MaintainableExtents> payload = nullptr) {
    Entry& entry = entries_[std::move(key)];
    entry.cone = std::move(cone);
    entry.goal_pred = std::move(goal_pred);
    entry.pattern = std::move(pattern);
    entry.payload = std::move(payload);
    return entry.cone;
  }

  /// Moves every entry at delta.from_version to delta.to_version — cones
  /// whose closure the delta misses are re-stamped; relevant cones are
  /// maintained incrementally and re-filtered. Entries that cannot follow
  /// (stale version, no payload, unmaintainable shape) are dropped.
  void Maintain(const DatabaseDelta& delta, const datalog::EvalOptions& opts);

  /// Drops every entry whose closure intersects `names` (and every entry
  /// without a payload) — the rule-extension hook: a new def only kills
  /// the cones that can read it.
  void ClearAffected(const std::set<std::string>& names);

  /// Drops every entry whose version differs from `db_version` — called on
  /// re-pin, so the cache holds cones for the pinned snapshot only.
  void Retain(uint64_t db_version) {
    for (auto it = entries_.begin(); it != entries_.end();) {
      it = it->first.db_version == db_version ? std::next(it)
                                              : entries_.erase(it);
    }
  }

  void Clear() { entries_.clear(); }

  size_t size() const { return entries_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t maintained() const { return maintained_; }
  uint64_t restamped() const { return restamped_; }
  /// Accumulated counters of the incremental cone evaluations.
  const datalog::EvalStats& maintain_stats() const { return maintain_stats_; }

 private:
  struct Entry {
    Relation cone;
    std::string goal_pred;
    std::vector<std::optional<Value>> pattern;
    /// The transformed program's fixpoint; null for cones stored by the
    /// non-cacheable/internal demand path (those never reach this cache)
    /// or legacy stores — dropped on the first maintenance pass.
    std::unique_ptr<MaintainableExtents> payload;
  };

  std::map<Key, Entry> entries_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t maintained_ = 0;
  uint64_t restamped_ = 0;
  datalog::EvalStats maintain_stats_;
};

}  // namespace rel

#endif  // REL_CORE_DEMAND_CACHE_H_
