#include "fuzz/minimize.h"

#include <algorithm>

namespace rel {
namespace fuzz {

namespace {

using datalog::Program;
using datalog::Rule;

/// Rebuilds the bookkeeping a shrink move may have invalidated: idb_preds
/// is re-derived from the surviving rule heads.
void Refresh(FuzzCase* c) {
  std::vector<std::string> idb;
  for (const Rule& rule : c->program.rules()) idb.push_back(rule.head.pred);
  std::sort(idb.begin(), idb.end());
  idb.erase(std::unique(idb.begin(), idb.end()), idb.end());
  c->idb_preds = std::move(idb);
}

/// Copy of `c` with rule `skip_rule` removed, or — when `skip_literal` is
/// non-negative — with only that body literal of the rule removed.
FuzzCase WithoutRulePart(const FuzzCase& c, size_t skip_rule,
                         int skip_literal) {
  FuzzCase out;
  out.seed = c.seed;
  out.goal = c.goal;
  for (const auto& [pred, facts] : c.program.facts()) {
    out.program.AddFacts(pred, facts);
  }
  const auto& rules = c.program.rules();
  for (size_t i = 0; i < rules.size(); ++i) {
    if (i == skip_rule && skip_literal < 0) continue;
    Rule rule = rules[i];
    if (i == skip_rule) {
      rule.body.erase(rule.body.begin() + skip_literal);
    }
    out.program.AddRule(std::move(rule));
  }
  Refresh(&out);
  return out;
}

/// Copy of `c` with one fact of `pred` removed (the `skip`-th in sorted
/// order — sorted so the move is deterministic).
FuzzCase WithoutFact(const FuzzCase& c, const std::string& pred,
                     size_t skip) {
  FuzzCase out;
  out.seed = c.seed;
  out.goal = c.goal;
  out.idb_preds = c.idb_preds;
  for (const auto& [p, facts] : c.program.facts()) {
    if (p != pred) {
      out.program.AddFacts(p, facts);
      continue;
    }
    std::vector<Tuple> tuples = facts.SortedTuples();
    for (size_t i = 0; i < tuples.size(); ++i) {
      if (i != skip) out.program.AddFact(p, tuples[i]);
    }
  }
  for (const Rule& rule : c.program.rules()) {
    out.program.AddRule(rule);
  }
  return out;
}

bool StillFails(const FuzzCase& c, const RunnerOptions& options) {
  return !RunCase(c, options).ok();
}

}  // namespace

FuzzCase Minimize(const FuzzCase& c, const RunnerOptions& options) {
  if (!StillFails(c, options)) return c;
  FuzzCase current = c;

  bool shrunk = true;
  while (shrunk) {
    shrunk = false;

    if (current.goal) {
      FuzzCase candidate = current;
      candidate.goal.reset();
      if (StillFails(candidate, options)) {
        current = std::move(candidate);
        shrunk = true;
      }
    }

    for (size_t i = 0; i < current.program.rules().size();) {
      FuzzCase candidate = WithoutRulePart(current, i, -1);
      if (StillFails(candidate, options)) {
        current = std::move(candidate);
        shrunk = true;
        // The rule list shifted down; retry the same index.
      } else {
        ++i;
      }
    }

    for (size_t i = 0; i < current.program.rules().size(); ++i) {
      for (size_t j = 0; j < current.program.rules()[i].body.size();) {
        if (current.program.rules()[i].body.size() <= 1) break;
        FuzzCase candidate = WithoutRulePart(current, i, static_cast<int>(j));
        if (StillFails(candidate, options)) {
          current = std::move(candidate);
          shrunk = true;
        } else {
          ++j;
        }
      }
    }

    std::vector<std::string> fact_preds;
    for (const auto& [pred, facts] : current.program.facts()) {
      (void)facts;
      fact_preds.push_back(pred);
    }
    for (const std::string& pred : fact_preds) {
      size_t count = current.program.facts().count(pred)
                         ? current.program.facts().at(pred).size()
                         : 0;
      for (size_t i = 0; i < count;) {
        FuzzCase candidate = WithoutFact(current, pred, i);
        if (StillFails(candidate, options)) {
          current = std::move(candidate);
          shrunk = true;
          --count;
        } else {
          ++i;
        }
      }
    }
  }
  return current;
}

}  // namespace fuzz
}  // namespace rel
