// Seeded random program generator for the equivalent-query fuzzer.
//
// Emits well-formed classical Datalog programs covering the lowered
// fragment — recursion (including mutual recursion), negation in stratified
// positions, stratified aggregation (min/max/sum/count heads with group-by),
// mixed arities, repeated variables, constants in atoms and
// comparisons, and optional point-query goals — plus random EDB extents
// built from benchutil/generators. Every program is constructed so that
// ALL evaluation configurations accept it:
//
//   * stratified by construction: each IDB predicate gets a level; positive
//     body atoms reference predicates at the same level or below (same
//     level = recursion), negative atoms reference strictly lower levels
//     or EDB predicates only;
//   * scan-strategy safe: body literals are ordered positive atoms first,
//     then comparisons, then negations, and comparisons/negations use only
//     variables bound by the preceding atoms — so the syntactic-order scan
//     evaluators and the order-independent planner agree on safety;
//   * terminating everywhere: no arithmetic assignments (the one source of
//     value-generating divergence), all constants drawn from a small
//     integer domain.
//
// Generation is deterministic in the seed (SplitMix64 via base/rng.h): the
// same (seed, options) pair yields a byte-identical case on every platform,
// which is what makes the committed corpus replayable.

#ifndef REL_FUZZ_GENERATOR_H_
#define REL_FUZZ_GENERATOR_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "datalog/program.h"

namespace rel {
namespace fuzz {

/// Grammar dials. The defaults keep cases small enough that the full config
/// lattice runs in milliseconds while still reaching every production.
struct GeneratorOptions {
  int num_edb = 2;           // EDB predicates e0..e{n-1}
  int num_idb = 3;           // IDB predicates p0..p{n-1}
  int max_rules_per_idb = 2; // 1..max rules per IDB predicate
  int max_body_atoms = 3;    // 1..max positive atoms per rule body
  int max_arity = 3;         // predicate arities drawn from [1, max]
  int value_domain = 12;     // constants and EDB values in [0, domain)
  int edb_rows = 24;         // target rows per EDB predicate
  bool allow_negation = true;
  bool allow_comparisons = true;
  bool allow_constants = true;
  /// Allow aggregate rule heads (min/max/sum/count with group-by). Aggregate
  /// predicates are stratified like negation on both sides: their bodies
  /// read strictly lower levels (no recursion through the aggregate) and
  /// only strictly higher levels read their extents — so every
  /// configuration, including the Rel translation bridge, accepts the
  /// program without monotone-recursion analysis. Each aggregate predicate
  /// gets exactly one rule: the classical engine folds multi-rule
  /// contributions into one bucket per group, which the per-rule Rel
  /// rendering cannot express (datalog/to_rel.cc refuses it).
  bool allow_aggregates = true;
  /// Probability that the case carries a DemandGoal (point query). The
  /// pattern itself may still come out all-free — that degenerate goal is
  /// a production of the grammar, not an accident.
  double goal_probability = 0.6;
};

/// One generated (or corpus-loaded) fuzz case.
struct FuzzCase {
  uint64_t seed = 0;
  datalog::Program program;
  /// Rule-head predicates, sorted — the extents every configuration must
  /// agree on.
  std::vector<std::string> idb_preds;
  /// Optional point-query goal; bound positions may name values outside
  /// every extent (the empty-cone edge case is deliberate).
  std::optional<datalog::DemandGoal> goal;
};

/// Generates the case for `seed`. Pure function of (seed, options).
FuzzCase GenerateCase(uint64_t seed, const GeneratorOptions& options = {});

/// Renders a case as classical Datalog text plus `% fuzz:` directive
/// comments (seed, goal) — the committed corpus format. Deterministic:
/// facts render in sorted order, rules in program order.
std::string CaseToText(const FuzzCase& c);

/// Parses CaseToText output (directives + ParseDatalog). Inverse of
/// CaseToText up to rule-variable naming; throws RelError(kParse) on
/// malformed directives or program text.
FuzzCase CaseFromText(const std::string& text);

}  // namespace fuzz
}  // namespace rel

#endif  // REL_FUZZ_GENERATOR_H_
