#include "fuzz/runner.h"

#include <algorithm>
#include <map>
#include <optional>
#include <sstream>

#include "base/error.h"
#include "core/engine.h"
#include "core/session.h"
#include "datalog/eval.h"
#include "datalog/magic.h"
#include "datalog/to_rel.h"

namespace rel {
namespace fuzz {

namespace {

using datalog::EvalOptions;
using datalog::EvalStats;
using datalog::Strategy;

/// One configuration's outcome: either an error (kind + message) or the
/// extents of the predicates under comparison, plus stats when the config
/// ran the classical engine directly.
struct Outcome {
  std::string label;
  bool errored = false;
  ErrorKind error_kind = ErrorKind::kInternal;
  std::string error_msg;
  std::map<std::string, Relation> extents;
  EvalStats stats;
  bool has_stats = false;
  bool scan_family = false;  // kNaive / kSemiNaiveScan (order-sensitive)
};

Outcome RunDatalog(const FuzzCase& c, const std::string& label,
                   const EvalOptions& eval_options, bool scan_family) {
  Outcome out;
  out.label = label;
  out.scan_family = scan_family;
  try {
    out.extents = datalog::Evaluate(c.program, eval_options, &out.stats);
    out.has_stats = true;
  } catch (const RelError& e) {
    out.errored = true;
    out.error_kind = e.kind();
    out.error_msg = e.what();
  }
  return out;
}

/// Up-to-three-tuples summary of how two relations differ.
std::string DiffRelations(const Relation& got, const Relation& want) {
  std::ostringstream os;
  os << "got " << got.size() << " tuples, want " << want.size();
  int shown = 0;
  for (const Tuple& t : got.SortedTuples()) {
    if (!want.Contains(t) && shown < 3) {
      os << "; extra " << t.ToString();
      ++shown;
    }
  }
  for (const Tuple& t : want.SortedTuples()) {
    if (!got.Contains(t) && shown < 3) {
      os << "; missing " << t.ToString();
      ++shown;
    }
  }
  return os.str();
}

const Relation& ExtentOf(const std::map<std::string, Relation>& extents,
                         const std::string& pred) {
  static const Relation kEmpty;
  auto it = extents.find(pred);
  return it == extents.end() ? kEmpty : it->second;
}

class CaseRunner {
 public:
  CaseRunner(const FuzzCase& c, const RunnerOptions& opts)
      : c_(c), opts_(opts) {}

  RunResult Run() {
    // The oracle: the naive scan evaluator, sequential, no planner, no
    // indexes — the least code any answer can depend on.
    EvalOptions oracle_opts;
    oracle_opts.strategy = Strategy::kNaive;
    Outcome oracle = RunDatalog(c_, "dl/naive", oracle_opts, true);
    ++result_.configs_run;

    // Planned base point of the lattice, used to re-anchor when the oracle
    // hits a scan-only error (documented divergence: scan strategies are
    // syntactic-order-sensitive for safety).
    EvalOptions planned_opts;
    planned_opts.strategy = Strategy::kSemiNaive;
    Outcome planned = RunDatalog(c_, "dl/semi/s0/t1", planned_opts, false);
    ++result_.configs_run;

    bool reanchored = false;
    const Outcome* ref = &oracle;
    if (oracle.errored) {
      if (oracle.error_kind == ErrorKind::kSafety && !planned.errored) {
        ref = &planned;
        reanchored = true;
      } else {
        // Every configuration must fail the same way the oracle does.
        ExpectSameError(oracle, planned);
        RunErrorLattice(oracle);
        return std::move(result_);
      }
    } else {
      CompareAnswers(*ref, planned);
    }
    if (planned.has_stats) semi_family_.push_back(planned);

    RunLattice(*ref, reanchored);
    if (!reanchored && opts_.run_rel_paths) RunRelPaths(*ref);
    if (opts_.check_stats && answers_clean_) {
      CheckStats(oracle, reanchored);
    }
    return std::move(result_);
  }

 private:
  void Report(const std::string& config, const std::string& kind,
              const std::string& detail) {
    result_.discrepancies.push_back({config, kind, detail});
    if (kind != "stats") answers_clean_ = false;
  }

  void ExpectSameError(const Outcome& ref, const Outcome& got) {
    if (!got.errored) {
      Report(got.label, "error",
             "succeeded where " + ref.label + " threw " +
                 ErrorKindName(ref.error_kind) + " (" + ref.error_msg + ")");
    } else if (got.error_kind != ref.error_kind) {
      Report(got.label, "error",
             std::string("threw ") + ErrorKindName(got.error_kind) +
                 " where " + ref.label + " threw " +
                 ErrorKindName(ref.error_kind));
    }
  }

  void CompareAnswers(const Outcome& ref, const Outcome& got) {
    if (got.errored) {
      Report(got.label, "error",
             std::string("threw ") + ErrorKindName(got.error_kind) + " (" +
                 got.error_msg + ") where " + ref.label + " succeeded");
      return;
    }
    for (const std::string& pred : c_.idb_preds) {
      const Relation& want = ExtentOf(ref.extents, pred);
      const Relation& have = ExtentOf(got.extents, pred);
      if (have != want) {
        Report(got.label, "answer",
               pred + ": " + DiffRelations(have, want) + " (vs " +
                   ref.label + ")");
      }
    }
  }

  /// Demanded answers must equal the goal-filtered reference extent.
  void CompareDemand(const Outcome& ref, const Outcome& got) {
    if (got.errored) {
      Report(got.label, "error",
             std::string("threw ") + ErrorKindName(got.error_kind) + " (" +
                 got.error_msg + ") where " + ref.label + " succeeded");
      return;
    }
    Relation want =
        datalog::FilterByPattern(ExtentOf(ref.extents, c_.goal->pred),
                                 c_.goal->pattern);
    const Relation& have = ExtentOf(got.extents, c_.goal->pred);
    if (have != want) {
      Report(got.label, "answer",
             c_.goal->pred + " (demanded): " + DiffRelations(have, want));
    }
  }

  /// The full datalog lattice when the reference succeeded.
  void RunLattice(const Outcome& ref, bool reanchored) {
    // Scan semi-naive.
    {
      EvalOptions o;
      o.strategy = Strategy::kSemiNaiveScan;
      Outcome out = RunDatalog(c_, "dl/semi-scan", o, true);
      ++result_.configs_run;
      if (reanchored) {
        // Scan strategies must reject the program the same way naive did.
        if (!out.errored || out.error_kind != ErrorKind::kSafety) {
          Report(out.label, "error",
                 "expected kSafety (scan-order divergence) but " +
                     std::string(out.errored ? ErrorKindName(out.error_kind)
                                             : "succeeded"));
        }
      } else {
        CompareAnswers(ref, out);
        if (out.has_stats) semi_family_.push_back(out);
      }
    }
    // Planned: every (seed, threads) point. Seed 0 / t1 already ran.
    std::vector<uint64_t> seeds = {0};
    seeds.insert(seeds.end(), opts_.plan_seeds.begin(),
                 opts_.plan_seeds.end());
    for (uint64_t seed : seeds) {
      for (int threads : opts_.thread_counts) {
        if (seed == 0 && threads == 1) continue;  // the planned base point
        EvalOptions o;
        o.strategy = Strategy::kSemiNaive;
        o.num_threads = threads;
        o.plan_order_seed = seed;
        std::string label = "dl/semi/s" + std::to_string(seed) + "/t" +
                            std::to_string(threads);
        Outcome out = RunDatalog(c_, label, o, false);
        ++result_.configs_run;
        CompareAnswers(ref, out);
        if (out.has_stats) semi_family_.push_back(out);
      }
    }

    // Demand lattice: the same sweep with the goal installed.
    if (!c_.goal || reanchored) return;
    {
      EvalOptions o;
      o.strategy = Strategy::kNaive;
      o.demand_goal = c_.goal;
      Outcome out = RunDatalog(c_, "dl/demand/naive", o, true);
      ++result_.configs_run;
      CompareDemand(ref, out);
    }
    {
      EvalOptions o;
      o.strategy = Strategy::kSemiNaiveScan;
      o.demand_goal = c_.goal;
      Outcome out = RunDatalog(c_, "dl/demand/semi-scan", o, true);
      ++result_.configs_run;
      CompareDemand(ref, out);
      if (out.has_stats) demand_family_.push_back(out);
    }
    for (uint64_t seed : seeds) {
      for (int threads : opts_.thread_counts) {
        EvalOptions o;
        o.strategy = Strategy::kSemiNaive;
        o.num_threads = threads;
        o.plan_order_seed = seed;
        o.demand_goal = c_.goal;
        std::string label = "dl/demand/semi/s" + std::to_string(seed) +
                            "/t" + std::to_string(threads);
        Outcome out = RunDatalog(c_, label, o, false);
        ++result_.configs_run;
        CompareDemand(ref, out);
        if (out.has_stats) demand_family_.push_back(out);
      }
    }
  }

  /// When the oracle errored (and the planner agreed), every other config
  /// must error identically.
  void RunErrorLattice(const Outcome& ref) {
    auto expect_error = [&](const std::string& label, const EvalOptions& o,
                            bool scan) {
      Outcome out = RunDatalog(c_, label, o, scan);
      ++result_.configs_run;
      ExpectSameError(ref, out);
    };
    {
      EvalOptions o;
      o.strategy = Strategy::kSemiNaiveScan;
      expect_error("dl/semi-scan", o, true);
    }
    for (int threads : opts_.thread_counts) {
      EvalOptions o;
      o.strategy = Strategy::kSemiNaive;
      o.num_threads = threads;
      expect_error("dl/semi/s0/t" + std::to_string(threads), o, false);
    }
  }

  /// The Rel engine paths, all through the to_rel translation bridge.
  void RunRelPaths(const Outcome& ref) {
    std::string rel_src;
    try {
      rel_src = datalog::ProgramToRel(c_.program);
    } catch (const RelError& e) {
      Report("rel/to_rel", "error",
             std::string("translation failed: ") + e.what());
      return;
    }
    Engine engine;
    try {
      engine.Define(rel_src);
    } catch (const RelError& e) {
      Report("rel/define", "error",
             std::string("Define failed: ") + e.what());
      return;
    }

    auto query_all = [&](const std::string& label, auto&& query_fn) {
      Outcome out;
      out.label = label;
      try {
        for (const std::string& pred : c_.idb_preds) {
          out.extents[pred] = query_fn("def output : " + pred);
        }
      } catch (const RelError& e) {
        out.errored = true;
        out.error_kind = e.kind();
        out.error_msg = e.what();
      }
      ++result_.configs_run;
      CompareAnswers(ref, out);
    };

    engine.options().lower_recursion = false;
    query_all("rel/interp",
              [&](const std::string& q) { return engine.Query(q); });

    engine.options().lower_recursion = true;
    query_all("rel/lowered",
              [&](const std::string& q) { return engine.Query(q); });

    if (!opts_.plan_seeds.empty()) {
      engine.options().plan_order_seed = opts_.plan_seeds.front();
      query_all("rel/lowered/s" + std::to_string(opts_.plan_seeds.front()),
                [&](const std::string& q) { return engine.Query(q); });
      engine.options().plan_order_seed = 0;
    }

    {
      auto session = engine.OpenSession();
      query_all("rel/session",
                [&](const std::string& q) { return session->Query(q); });
    }

    RunRelDemand(ref, engine);
  }

  /// The engine-level demand path: a point query with bound arguments under
  /// demand_transform. Expected answer: the goal-filtered reference extent
  /// projected onto the goal's free positions. All-bound goals have no free
  /// positions to project onto; they are covered by the datalog demand
  /// lattice instead.
  void RunRelDemand(const Outcome& ref, Engine& engine) {
    if (!c_.goal) return;
    int free_count = 0;
    for (const auto& p : c_.goal->pattern) {
      if (!p.has_value()) ++free_count;
    }
    if (free_count == 0) return;

    std::string head = "def output(";
    std::string body = c_.goal->pred + "(";
    int v = 0;
    for (size_t i = 0; i < c_.goal->pattern.size(); ++i) {
      if (i) body += ", ";
      const auto& pos = c_.goal->pattern[i];
      if (pos.has_value()) {
        body += pos->ToString();
      } else {
        std::string var = "qv" + std::to_string(v++);
        if (v > 1) head += ", ";
        head += var;
        body += var;
      }
    }
    std::string query = head + ") : " + body + ")";

    Relation want;
    Relation filtered = datalog::FilterByPattern(
        ExtentOf(ref.extents, c_.goal->pred), c_.goal->pattern);
    for (const Tuple& t : filtered.SortedTuples()) {
      Tuple proj;
      for (size_t i = 0; i < c_.goal->pattern.size(); ++i) {
        if (!c_.goal->pattern[i].has_value()) proj.Append(t[i]);
      }
      want.Insert(proj);
    }

    engine.options().demand_transform = true;
    engine.options().lower_recursion = true;
    ++result_.configs_run;
    try {
      Relation have = engine.Query(query);
      if (have != want) {
        Report("rel/demand", "answer",
               c_.goal->pred + " via `" + query + "`: " +
                   DiffRelations(have, want));
      }
    } catch (const RelError& e) {
      Report("rel/demand", "error",
             std::string("threw ") + ErrorKindName(e.kind()) + " (" +
                 e.what() + ") on `" + query + "`");
    }
    engine.options().demand_transform = false;
  }

  /// Cross-config EvalStats invariants. Only meaningful when every config
  /// computed the same answers (answer bugs make cost numbers noise).
  void CheckStats(const Outcome& oracle, bool reanchored) {
    if (reanchored || semi_family_.empty()) return;

    // (1) The whole semi-naive family agrees on round structure and on the
    // number of satisfying body assignments.
    const Outcome& base = semi_family_.front();
    for (const Outcome& out : semi_family_) {
      if (!out.has_stats) continue;
      if (out.stats.iterations != base.stats.iterations) {
        Report(out.label, "stats",
               "iterations=" + std::to_string(out.stats.iterations) +
                   " differs from " + base.label + "=" +
                   std::to_string(base.stats.iterations));
      }
      if (out.stats.tuples_derived != base.stats.tuples_derived) {
        Report(out.label, "stats",
               "tuples_derived=" + std::to_string(out.stats.tuples_derived) +
                   " differs from " + base.label + "=" +
                   std::to_string(base.stats.tuples_derived));
      }
    }

    // (2) Across thread counts at a fixed plan seed, the documented
    // deterministic counters are exactly equal.
    CheckThreadInvariance(semi_family_);
    CheckThreadInvariance(demand_family_);

    // (3) Semi-naive never derives dramatically more than naive. The honest
    // bound is per-program: a rule with k recursive (IDB) body atoms runs k
    // delta-variants per round, so an assignment that is all-new in one
    // round derives up to k times where naive derives it once — and when
    // the fixpoint converges in few rounds, naive's re-derivation
    // multiplier cannot absorb that. (Found by this fuzzer: seed 777315,
    // tests/fuzz/corpus/stats_multi_recursive.dl, ratio 1.51 with k=2.)
    if (oracle.has_stats) {
      int max_idb_atoms = 1;
      for (const datalog::Rule& rule : c_.program.rules()) {
        int idb_atoms = 0;
        for (const datalog::Literal& lit : rule.body) {
          if (lit.kind == datalog::Literal::Kind::kPositive &&
              std::binary_search(c_.idb_preds.begin(), c_.idb_preds.end(),
                                 lit.atom.pred)) {
            ++idb_atoms;
          }
        }
        max_idb_atoms = std::max(max_idb_atoms, idb_atoms);
      }
      double ratio =
          std::max(opts_.naive_ratio, static_cast<double>(max_idb_atoms));
      uint64_t bound = static_cast<uint64_t>(
          static_cast<double>(oracle.stats.tuples_derived) * ratio) +
          opts_.naive_slack;
      if (base.stats.tuples_derived > bound) {
        Report(base.label, "stats",
               "tuples_derived=" + std::to_string(base.stats.tuples_derived) +
                   " exceeds naive bound " + std::to_string(bound) + " (" +
                   oracle.label + " derived " +
                   std::to_string(oracle.stats.tuples_derived) + ")");
      }
    }

    // (4) Demand prunes (or at worst modestly inflates) the full fixpoint.
    if (!demand_family_.empty()) {
      const Outcome& dbase = demand_family_.front();
      for (const Outcome& out : demand_family_) {
        if (!out.has_stats) continue;
        if (out.stats.tuples_derived != dbase.stats.tuples_derived) {
          Report(out.label, "stats",
                 "demanded tuples_derived=" +
                     std::to_string(out.stats.tuples_derived) +
                     " differs from " + dbase.label + "=" +
                     std::to_string(dbase.stats.tuples_derived));
        }
      }
      uint64_t bound = static_cast<uint64_t>(
          static_cast<double>(base.stats.tuples_derived) *
              opts_.demand_ratio) + opts_.demand_slack;
      if (dbase.stats.tuples_derived > bound) {
        Report(dbase.label, "stats",
               "demanded tuples_derived=" +
                   std::to_string(dbase.stats.tuples_derived) +
                   " exceeds full-fixpoint bound " + std::to_string(bound));
      }
    }
  }

  /// Groups the planned members of `family` by plan seed (the label up to
  /// its "/t<threads>" suffix; scan members carry no seed/thread structure
  /// and are skipped) and requires the documented thread-invariant counters
  /// to agree exactly within each group.
  void CheckThreadInvariance(const std::vector<Outcome>& family) {
    auto seed_prefix = [](const std::string& label) -> std::string {
      auto pos = label.rfind("/t");
      if (pos == std::string::npos || label.find("/s") == std::string::npos) {
        return "";
      }
      return label.substr(0, pos);
    };
    std::map<std::string, const Outcome*> first_of_seed;
    for (const Outcome& out : family) {
      if (!out.has_stats) continue;
      std::string prefix = seed_prefix(out.label);
      if (prefix.empty()) continue;
      auto [it, inserted] = first_of_seed.emplace(prefix, &out);
      if (inserted) continue;
      const Outcome& base = *it->second;
      auto check = [&](const char* name, uint64_t got, uint64_t want) {
        if (got != want) {
          Report(out.label, "stats",
                 std::string(name) + "=" + std::to_string(got) +
                     " differs across thread counts from " + base.label +
                     "=" + std::to_string(want));
        }
      };
      check("tuples_derived", out.stats.tuples_derived,
            base.stats.tuples_derived);
      check("index_builds", out.stats.index_builds, base.stats.index_builds);
      check("sorted_builds", out.stats.sorted_builds,
            base.stats.sorted_builds);
      check("index_probes", out.stats.index_probes, base.stats.index_probes);
      check("leapfrog_joins", out.stats.leapfrog_joins,
            base.stats.leapfrog_joins);
      check("aggregate_updates", out.stats.aggregate_updates,
            base.stats.aggregate_updates);
      check("groups_improved", out.stats.groups_improved,
            base.stats.groups_improved);
      check("iterations", static_cast<uint64_t>(out.stats.iterations),
            static_cast<uint64_t>(base.stats.iterations));
    }
  }

  const FuzzCase& c_;
  const RunnerOptions& opts_;
  RunResult result_;
  bool answers_clean_ = true;
  std::vector<Outcome> semi_family_;    // full-fixpoint semi-naive configs
  std::vector<Outcome> demand_family_;  // demanded semi-naive configs
};

}  // namespace

RunResult RunCase(const FuzzCase& c, const RunnerOptions& options) {
  return CaseRunner(c, options).Run();
}

std::string FormatResult(const FuzzCase& c, const RunResult& result) {
  if (result.ok()) return "";
  std::ostringstream os;
  os << "=== fuzz case seed=" << c.seed << " (" << result.configs_run
     << " configs, " << result.discrepancies.size() << " discrepancies)\n";
  for (const Discrepancy& d : result.discrepancies) {
    os << "  [" << d.kind << "] " << d.config << ": " << d.detail << "\n";
  }
  os << CaseToText(c);
  return os.str();
}

}  // namespace fuzz
}  // namespace rel
