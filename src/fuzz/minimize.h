// Reproducer minimization for the equivalent-query fuzzer: greedy
// delta-debugging that shrinks a failing case while it still fails.
//
// The shrink moves, tried to a fixpoint (largest-granularity first):
//
//   1. drop the demand goal;
//   2. remove whole rules, one at a time;
//   3. remove body literals, one at a time (the head and remaining body
//      may become unsafe — such candidates fail differently or error
//      everywhere, and are rejected by the still-fails check);
//   4. remove EDB facts, one at a time.
//
// A candidate is kept only when RunCase still reports at least one
// discrepancy. Candidates on which every configuration consistently errors
// produce no discrepancy, so minimization never "simplifies" a genuine
// divergence into a uniformly-broken program. Fact counts are small
// (GeneratorOptions::edb_rows) so the one-at-a-time loop is fast; a
// ddmin-style chunk schedule would only matter for corpora this fuzzer
// does not produce.

#ifndef REL_FUZZ_MINIMIZE_H_
#define REL_FUZZ_MINIMIZE_H_

#include "fuzz/generator.h"
#include "fuzz/runner.h"

namespace rel {
namespace fuzz {

/// Shrinks `c` — which must currently fail under `options` — to a local
/// minimum that still fails. Returns the shrunk case; if `c` does not
/// actually fail, returns it unchanged.
FuzzCase Minimize(const FuzzCase& c, const RunnerOptions& options = {});

}  // namespace fuzz
}  // namespace rel

#endif  // REL_FUZZ_MINIMIZE_H_
