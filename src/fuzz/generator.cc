#include "fuzz/generator.h"

#include <algorithm>
#include <sstream>

#include "base/error.h"
#include "base/rng.h"
#include "benchutil/generators.h"

namespace rel {
namespace fuzz {

namespace {

using datalog::Atom;
using datalog::CmpOp;
using datalog::DemandGoal;
using datalog::Literal;
using datalog::Program;
using datalog::Rule;
using datalog::Term;

/// Picks a uniform element of a non-empty vector.
template <typename T>
const T& Pick(Rng& rng, const std::vector<T>& v) {
  return v[rng.NextBelow(v.size())];
}

/// The six comparison operators, for uniform drawing.
constexpr CmpOp kCmpOps[] = {CmpOp::kEq, CmpOp::kNeq, CmpOp::kLt,
                             CmpOp::kLe, CmpOp::kGt, CmpOp::kGe};

/// One rule for `head_pred`. `pool` collects the variables bound by the
/// positive atoms as they are generated, so later comparisons, negations
/// and the head draw only from bound variables — scan-strategy safety by
/// construction. When `agg_op` is set the head carries head_arity - 1
/// group columns plus an aggregate form (the extent keeps arity
/// head_arity), with value/witness terms drawn from bound variables.
Rule GenerateRule(Rng& rng, const GeneratorOptions& opts,
                  const std::string& head_pred, int head_arity,
                  const std::vector<std::pair<std::string, int>>& pos_preds,
                  const std::vector<std::pair<std::string, int>>& neg_preds,
                  std::optional<datalog::AggOp> agg_op) {
  Rule rule;
  int next_var = 0;
  std::vector<int> pool;  // variables bound by positive atoms so far

  auto atom_term = [&]() -> Term {
    double r = rng.NextDouble();
    if (!pool.empty() && r < 0.45) return Term::Var(Pick(rng, pool));
    if (opts.allow_constants && r < 0.60) {
      return Term::Const(
          Value::Int(static_cast<int64_t>(rng.NextBelow(opts.value_domain))));
    }
    int v = next_var++;
    pool.push_back(v);
    return Term::Var(v);
  };

  int num_atoms = 1 + static_cast<int>(rng.NextBelow(opts.max_body_atoms));
  for (int i = 0; i < num_atoms; ++i) {
    const auto& [pred, arity] = Pick(rng, pos_preds);
    Atom atom;
    atom.pred = pred;
    for (int p = 0; p < arity; ++p) atom.terms.push_back(atom_term());
    rule.body.push_back(Literal::Positive(std::move(atom)));
  }

  if (opts.allow_comparisons && !pool.empty()) {
    int num_cmp = static_cast<int>(rng.NextBelow(3));  // 0..2
    for (int i = 0; i < num_cmp; ++i) {
      Term lhs = Term::Var(Pick(rng, pool));
      Term rhs =
          rng.NextBool(0.6)
              ? Term::Const(Value::Int(
                    static_cast<int64_t>(rng.NextBelow(opts.value_domain))))
              : Term::Var(Pick(rng, pool));
      rule.body.push_back(Literal::Compare(
          kCmpOps[rng.NextBelow(std::size(kCmpOps))], lhs, rhs));
    }
  }

  if (opts.allow_negation && !neg_preds.empty() && rng.NextBool(0.4)) {
    const auto& [pred, arity] = Pick(rng, neg_preds);
    Atom atom;
    atom.pred = pred;
    for (int p = 0; p < arity; ++p) {
      if (!pool.empty() && rng.NextBool(0.7)) {
        atom.terms.push_back(Term::Var(Pick(rng, pool)));
      } else {
        atom.terms.push_back(Term::Const(
            Value::Int(static_cast<int64_t>(rng.NextBelow(opts.value_domain)))));
      }
    }
    rule.body.push_back(Literal::Negative(std::move(atom)));
  }

  rule.head.pred = head_pred;
  int group_arity = agg_op.has_value() ? head_arity - 1 : head_arity;
  for (int p = 0; p < group_arity; ++p) {
    if (!pool.empty() && (!opts.allow_constants || rng.NextBool(0.8))) {
      rule.head.terms.push_back(Term::Var(Pick(rng, pool)));
    } else {
      rule.head.terms.push_back(Term::Const(
          Value::Int(static_cast<int64_t>(rng.NextBelow(opts.value_domain)))));
    }
  }
  if (agg_op.has_value()) {
    datalog::Aggregate agg;
    agg.op = *agg_op;
    auto bound_term = [&]() -> Term {
      if (!pool.empty() && rng.NextBool(0.85)) {
        return Term::Var(Pick(rng, pool));
      }
      return Term::Const(
          Value::Int(static_cast<int64_t>(rng.NextBelow(opts.value_domain))));
    };
    if (*agg_op == datalog::AggOp::kCount) {
      // count(w...) needs at least one witness to render in corpus text.
      agg.value = Term::Const(Value::Int(1));
      int n = 1 + static_cast<int>(rng.NextBelow(2));
      for (int i = 0; i < n; ++i) agg.witness.push_back(bound_term());
    } else {
      agg.value = bound_term();
      int n = static_cast<int>(rng.NextBelow(3));
      for (int i = 0; i < n; ++i) agg.witness.push_back(bound_term());
    }
    rule.agg = std::move(agg);
  }
  return rule;
}

/// Random EDB extent for one predicate. Binary predicates draw a graph
/// shape from benchutil/generators (random / chain / cycle / grid — the
/// depths and densities the recursion benchmarks exercise); other arities
/// get uniform random tuples. A small probability leaves the extent empty:
/// the empty-base-case edge every configuration must agree on.
void FillEdb(Rng& rng, const GeneratorOptions& opts, const std::string& pred,
             int arity, Program* program) {
  if (rng.NextBool(0.08)) return;  // deliberately empty extent
  if (arity == 2) {
    uint64_t sub_seed = rng.Next();
    double shape = rng.NextDouble();
    int n = std::max(2, opts.value_domain);
    std::vector<Tuple> edges;
    if (shape < 0.6) {
      int max_edges = n * (n - 1);
      edges = benchutil::RandomGraph(
          n, std::min(opts.edb_rows, max_edges), sub_seed);
    } else if (shape < 0.75) {
      edges = benchutil::ChainGraph(std::min(n, opts.edb_rows));
    } else if (shape < 0.9) {
      edges = benchutil::CycleGraph(std::min(n, opts.edb_rows));
    } else {
      edges = benchutil::GridGraph(3, std::max(2, n / 3));
    }
    for (const Tuple& t : edges) program->AddFact(pred, t);
    return;
  }
  for (int i = 0; i < opts.edb_rows; ++i) {
    Tuple t;
    for (int p = 0; p < arity; ++p) {
      t.Append(Value::Int(static_cast<int64_t>(rng.NextBelow(opts.value_domain))));
    }
    program->AddFact(pred, std::move(t));
  }
}

std::string RenderValue(const Value& v) {
  if (v.is_string()) return "\"" + v.AsString() + "\"";
  return v.ToString();
}

std::string RenderTerm(const Term& t) {
  if (t.is_var()) return "V" + std::to_string(t.var);
  return RenderValue(t.constant);
}

std::string RenderAtom(const Atom& atom) {
  std::string out = atom.pred + "(";
  for (size_t i = 0; i < atom.terms.size(); ++i) {
    if (i) out += ", ";
    out += RenderTerm(atom.terms[i]);
  }
  return out + ")";
}

const char* AggText(datalog::AggOp op) {
  switch (op) {
    case datalog::AggOp::kMin: return "min";
    case datalog::AggOp::kMax: return "max";
    case datalog::AggOp::kSum: return "sum";
    case datalog::AggOp::kCount: return "count";
  }
  return "min";
}

/// The rule head in parser syntax: group columns, then the aggregate form
/// as the last argument (`op(value)` | `op(value; w...)` | `count(w...)`).
std::string RenderHead(const Rule& rule) {
  std::string out = rule.head.pred + "(";
  for (size_t i = 0; i < rule.head.terms.size(); ++i) {
    if (i) out += ", ";
    out += RenderTerm(rule.head.terms[i]);
  }
  if (rule.agg.has_value()) {
    const datalog::Aggregate& agg = *rule.agg;
    if (!rule.head.terms.empty()) out += ", ";
    out += std::string(AggText(agg.op)) + "(";
    if (agg.op == datalog::AggOp::kCount) {
      InternalCheck(!agg.witness.empty(),
                    "fuzz corpus text cannot express a witness-free count");
      for (size_t i = 0; i < agg.witness.size(); ++i) {
        if (i) out += ", ";
        out += RenderTerm(agg.witness[i]);
      }
    } else {
      out += RenderTerm(agg.value);
      for (size_t i = 0; i < agg.witness.size(); ++i) {
        out += i ? ", " : "; ";
        out += RenderTerm(agg.witness[i]);
      }
    }
    out += ")";
  }
  return out + ")";
}

const char* CmpText(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return "=";
    case CmpOp::kNeq: return "!=";
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
  }
  return "=";
}

const char* ArithText(datalog::ArithOp op) {
  switch (op) {
    case datalog::ArithOp::kAdd: return "+";
    case datalog::ArithOp::kSub: return "-";
    case datalog::ArithOp::kMul: return "*";
    case datalog::ArithOp::kDiv: return "/";
    case datalog::ArithOp::kMod: return "%";
    default: return nullptr;
  }
}

std::string RenderLiteral(const Literal& lit) {
  switch (lit.kind) {
    case Literal::Kind::kPositive:
      return RenderAtom(lit.atom);
    case Literal::Kind::kRange:
      // Renders as a positive range/4 atom, which ParseDatalog converts
      // back to a kRange literal ("range" is a reserved predicate name).
      return RenderAtom(lit.atom);
    case Literal::Kind::kNegative:
      return "!" + RenderAtom(lit.atom);
    case Literal::Kind::kCompare:
      InternalCheck(!lit.negated,
                    "fuzz corpus text cannot express a negated comparison");
      return RenderTerm(lit.lhs) + " " + CmpText(lit.cmp_op) + " " +
             RenderTerm(lit.rhs);
    case Literal::Kind::kAssign: {
      const char* op = ArithText(lit.arith_op);
      InternalCheck(op != nullptr,
                    "fuzz corpus text cannot express min/max assignments");
      return "V" + std::to_string(lit.target) + " = " + RenderTerm(lit.lhs) +
             " " + op + " " + RenderTerm(lit.rhs);
    }
  }
  return "";
}

}  // namespace

FuzzCase GenerateCase(uint64_t seed, const GeneratorOptions& opts) {
  // Decorrelate nearby seeds: sequential CLI seeds (base, base+1, ...) must
  // not produce overlapping random streams.
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL);
  FuzzCase c;
  c.seed = seed;

  // Predicate universe: arities first, then stratification levels.
  std::vector<std::pair<std::string, int>> edb;  // (name, arity)
  for (int i = 0; i < opts.num_edb; ++i) {
    edb.emplace_back("e" + std::to_string(i),
                     1 + static_cast<int>(rng.NextBelow(opts.max_arity)));
  }
  std::vector<std::pair<std::string, int>> idb;
  std::vector<int> level;
  std::vector<std::optional<datalog::AggOp>> agg_op;
  constexpr datalog::AggOp kAggOps[] = {
      datalog::AggOp::kMin, datalog::AggOp::kMax, datalog::AggOp::kSum,
      datalog::AggOp::kCount};
  for (int i = 0; i < opts.num_idb; ++i) {
    idb.emplace_back("p" + std::to_string(i),
                     1 + static_cast<int>(rng.NextBelow(opts.max_arity)));
    level.push_back(static_cast<int>(rng.NextBelow(3)));
    if (opts.allow_aggregates && rng.NextBool(0.25)) {
      agg_op.push_back(kAggOps[rng.NextBelow(std::size(kAggOps))]);
    } else {
      agg_op.push_back(std::nullopt);
    }
  }

  for (const auto& [pred, arity] : edb) {
    FillEdb(rng, opts, pred, arity, &c.program);
  }

  // Rules. Positive references reach any predicate at the same level or
  // below (same level = recursion, possibly mutual); negative references
  // reach strictly lower levels and EDB only — stratified by construction.
  // Aggregate predicates stratify like negation on BOTH sides: their
  // bodies read strictly lower levels only (no recursion through the
  // aggregate, so no monotonicity qualification is needed) and only
  // strictly higher levels read their extents (a plain rule sharing a
  // recursive unit with an aggregate head is rejected by the evaluator).
  for (int i = 0; i < opts.num_idb; ++i) {
    std::vector<std::pair<std::string, int>> pos = edb;
    std::vector<std::pair<std::string, int>> neg = edb;
    for (int j = 0; j < opts.num_idb; ++j) {
      bool strict = agg_op[i].has_value() || agg_op[j].has_value();
      if (strict ? level[j] < level[i] : level[j] <= level[i]) {
        pos.push_back(idb[j]);
      }
      if (level[j] < level[i]) neg.push_back(idb[j]);
    }
    // One rule per aggregate predicate: the classical engine folds multiple
    // rules' contributions into a single bucket per group, which the
    // per-rule Rel rendering cannot express (to_rel.cc refuses it).
    int num_rules =
        agg_op[i].has_value()
            ? 1
            : 1 + static_cast<int>(rng.NextBelow(opts.max_rules_per_idb));
    for (int r = 0; r < num_rules; ++r) {
      c.program.AddRule(GenerateRule(rng, opts, idb[i].first, idb[i].second,
                                     pos, neg, agg_op[i]));
    }
    c.idb_preds.push_back(idb[i].first);
  }
  std::sort(c.idb_preds.begin(), c.idb_preds.end());

  // Optional point-query goal, usually over an IDB predicate, sometimes
  // over EDB (where the demand transform must degenerate to the identity).
  // Bound constants draw from a slightly wider range than the value domain
  // so some cones are provably empty.
  if (rng.NextBool(opts.goal_probability)) {
    const auto& [pred, arity] =
        (!idb.empty() && rng.NextBool(0.8)) ? Pick(rng, idb) : Pick(rng, edb);
    DemandGoal goal;
    goal.pred = pred;
    for (int p = 0; p < arity; ++p) {
      if (rng.NextBool(0.5)) {
        goal.pattern.push_back(Value::Int(
            static_cast<int64_t>(rng.NextBelow(opts.value_domain + 2))));
      } else {
        goal.pattern.push_back(std::nullopt);
      }
    }
    c.goal = std::move(goal);
  }
  return c;
}

std::string CaseToText(const FuzzCase& c) {
  std::ostringstream os;
  os << "% fuzz-seed: " << c.seed << "\n";
  if (c.goal) {
    os << "% fuzz-goal: " << c.goal->pred;
    for (const auto& p : c.goal->pattern) {
      os << " " << (p.has_value() ? RenderValue(*p) : "_");
    }
    os << "\n";
  }
  for (const auto& [pred, facts] : c.program.facts()) {
    for (const Tuple& t : facts.SortedTuples()) {
      os << pred << "(";
      for (size_t i = 0; i < t.arity(); ++i) {
        if (i) os << ", ";
        os << RenderValue(t[i]);
      }
      os << ").\n";
    }
  }
  for (const Rule& rule : c.program.rules()) {
    os << RenderHead(rule) << " :- ";
    for (size_t i = 0; i < rule.body.size(); ++i) {
      if (i) os << ", ";
      os << RenderLiteral(rule.body[i]);
    }
    os << ".\n";
  }
  return os.str();
}

FuzzCase CaseFromText(const std::string& text) {
  FuzzCase c;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag != "%") continue;
    ls >> tag;
    if (tag == "fuzz-seed:") {
      ls >> c.seed;
    } else if (tag == "fuzz-goal:") {
      datalog::DemandGoal goal;
      if (!(ls >> goal.pred)) {
        throw RelError(ErrorKind::kParse, "fuzz-goal directive without pred");
      }
      std::string tok;
      while (ls >> tok) {
        if (tok == "_") {
          goal.pattern.push_back(std::nullopt);
        } else if (tok.size() >= 2 && tok.front() == '"' &&
                   tok.back() == '"') {
          goal.pattern.push_back(
              Value::String(tok.substr(1, tok.size() - 2)));
        } else {
          try {
            goal.pattern.push_back(
                Value::Int(std::stoll(tok)));
          } catch (const std::exception&) {
            throw RelError(ErrorKind::kParse,
                           "bad fuzz-goal pattern token: " + tok);
          }
        }
      }
      c.goal = std::move(goal);
    }
  }
  c.program = datalog::ParseDatalog(text);
  std::vector<std::string> idb;
  for (const Rule& rule : c.program.rules()) idb.push_back(rule.head.pred);
  std::sort(idb.begin(), idb.end());
  idb.erase(std::unique(idb.begin(), idb.end()), idb.end());
  c.idb_preds = std::move(idb);
  return c;
}

}  // namespace fuzz
}  // namespace rel
