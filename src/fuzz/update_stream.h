// Update-stream fuzzing for incremental maintenance (PR 9).
//
// A stream case is a generated base program (src/fuzz/generator.h) plus a
// seeded sequence of single-tuple EDB inserts and deletes. The runner
// executes the stream twice per configuration point of the lattice
// (plan-order seed x thread count):
//
//   * incrementally — one EvaluateDelta per step against the maintained
//     fixpoint, with a persistent IndexCache so the append fast path and
//     DRed both soak; an unsupported step (negation in the delta's cone)
//     falls back to a full recompute, exactly like the production caches;
//   * from scratch — a fresh Evaluate over the post-step EDB, the oracle.
//
// After every step, every predicate extent (and the demanded goal cone,
// when the case carries a goal — the "query" interleaved into the stream)
// must agree byte-for-byte, and the semantic delta counters
// {delta_inserts, delta_deletes, rederived} must agree across all
// configurations — they count set changes, which no join order or thread
// count may alter. Any disagreement is a Discrepancy, shrunk by
// MinimizeStream (drop steps, rules, facts, the goal — largest granularity
// first) and committed to tests/fuzz/corpus/ in the .dl format with
// `% fuzz-update:` directives, replayed by fuzz_regression_test.

#ifndef REL_FUZZ_UPDATE_STREAM_H_
#define REL_FUZZ_UPDATE_STREAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/generator.h"
#include "fuzz/runner.h"

namespace rel {
namespace fuzz {

/// One EDB mutation. No-op steps (inserting a present tuple, deleting an
/// absent one) are legal in the encoding and skipped by the runner.
struct UpdateStep {
  bool is_insert = true;
  std::string pred;
  Tuple tuple;
};

struct UpdateStream {
  FuzzCase base;
  std::vector<UpdateStep> steps;
};

struct StreamOptions {
  int num_steps = 12;
  /// Probability that a step deletes an existing tuple (when any exists).
  double delete_probability = 0.4;
  GeneratorOptions generator;
};

/// Generates the stream for `seed`. Pure function of (seed, options); the
/// base case is GenerateCase(seed) under options.generator.
UpdateStream GenerateUpdateStream(uint64_t seed,
                                  const StreamOptions& options = {});

/// Runs the stream differentially across the lattice (see header comment).
/// `incremental_steps`/`fallback_steps` out-params (optional) report how
/// many per-arm steps took the EvaluateDelta path vs the full-recompute
/// fallback, for coverage accounting.
RunResult RunUpdateStream(const UpdateStream& stream,
                          const RunnerOptions& options = {},
                          uint64_t* incremental_steps = nullptr,
                          uint64_t* fallback_steps = nullptr);

/// Greedy delta-debugging over steps, rules, facts and the goal; returns
/// `stream` unchanged if it does not currently fail.
UpdateStream MinimizeStream(const UpdateStream& stream,
                            const RunnerOptions& options = {});

/// Corpus format: CaseToText(base) plus one `% fuzz-update:` directive per
/// step. StreamFromText inverts it; a stream file also loads as a plain
/// FuzzCase (CaseFromText ignores unknown directives), so committed stream
/// reproducers double as static corpus entries.
std::string StreamToText(const UpdateStream& stream);
UpdateStream StreamFromText(const std::string& text);

/// Human-readable report for a failing stream (header + discrepancies).
std::string FormatStreamResult(const UpdateStream& stream,
                               const RunResult& result);

}  // namespace fuzz
}  // namespace rel

#endif  // REL_FUZZ_UPDATE_STREAM_H_
