// Config-lattice runner for the equivalent-query fuzzer.
//
// One fuzz case is executed under every evaluation configuration the
// repository offers — the classical Datalog engine under each strategy,
// thread count and plan-order seed, with and without the magic-set demand
// transform, plus the Rel engine through the to_rel translation bridge
// (direct interpretation, recursion lowering, a fresh Session snapshot, and
// the demand-transformed engine path) — and every answer is compared
// against a single oracle: the naive scan evaluator, the simplest code in
// the tree.
//
// Beyond answers, the runner cross-checks EvalStats between cost-equivalent
// configurations. The invariants it enforces follow from documented
// contracts (eval.h):
//
//   * across thread counts at a fixed plan seed, {tuples_derived,
//     index_builds, sorted_builds, index_probes, leapfrog_joins,
//     iterations} are exactly equal (parallel evaluation is
//     answer-and-count deterministic);
//   * across the whole semi-naive family — the scan evaluator and every
//     planned (seed, threads) point — iterations and tuples_derived are
//     equal: the number of satisfying body assignments is independent of
//     join order, and the round structure is independent of access paths;
//   * semi-naive never derives dramatically more than naive
//     (tuples_derived ratio bound), and a demanded evaluation never derives
//     dramatically more than the full fixpoint it prunes (magic overhead
//     bound). These two are ratio checks with slack, not equalities.
//
// A violation of any of these — or any answer mismatch, or any
// configuration erroring while the oracle succeeds — is reported as a
// Discrepancy. Error semantics are compared too: when the oracle itself
// throws, every configuration must throw the same ErrorKind, with one
// documented exception (scan strategies are syntactic-order-sensitive for
// safety; a kSafety scan error with a succeeding planner re-anchors the
// comparison on the planner, see eval.h "Intended semantic differences").

#ifndef REL_FUZZ_RUNNER_H_
#define REL_FUZZ_RUNNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/generator.h"

namespace rel {
namespace fuzz {

/// Lattice dials. The defaults run the full lattice; tests narrow them to
/// keep replay cheap where full coverage is pinned elsewhere.
struct RunnerOptions {
  /// Non-zero plan_order_seed values swept for the planned strategy (0, the
  /// production greedy order, is always run).
  std::vector<uint64_t> plan_seeds = {7, 0x9E3779B9};
  /// Thread counts swept for the planned strategy.
  std::vector<int> thread_counts = {1, 2, 4};
  /// Also push the case through the Rel engine (to_rel bridge, lowering,
  /// Session, demand-transformed engine).
  bool run_rel_paths = true;
  /// Cross-check EvalStats invariants between cost-equivalent configs.
  bool check_stats = true;
  /// Semi-naive must satisfy tuples_derived <= naive * ratio + slack,
  /// where the effective ratio is max(naive_ratio, k) for k the largest
  /// number of positive IDB atoms in any rule body: a rule with k
  /// recursive atoms runs k delta-variants per round, legitimately
  /// deriving an all-new assignment up to k times where naive derives it
  /// once (found by this fuzzer — see corpus stats_multi_recursive.dl).
  double naive_ratio = 1.25;
  uint64_t naive_slack = 64;
  /// Demanded evaluation must satisfy tuples_derived <= full * ratio +
  /// slack (the transform adds fact-copy rules, magic facts and adorned
  /// duplicates, so "demand never pays much more than full" needs slack).
  double demand_ratio = 4.0;
  uint64_t demand_slack = 256;
};

/// One disagreement between configurations.
struct Discrepancy {
  std::string config;  // label of the offending configuration
  std::string kind;    // "answer" | "error" | "stats"
  std::string detail;  // human-readable description of the mismatch
};

/// The outcome of running one case across the lattice.
struct RunResult {
  std::vector<Discrepancy> discrepancies;
  int configs_run = 0;
  bool ok() const { return discrepancies.empty(); }
};

/// Runs `c` under the full configuration lattice and cross-checks answers,
/// error kinds and stats. Never throws on engine errors (they become
/// Discrepancies or expected-error matches); only internal runner bugs
/// propagate.
RunResult RunCase(const FuzzCase& c, const RunnerOptions& options = {});

/// Multi-line human-readable report: the case header plus one line per
/// discrepancy. Empty string when the result is clean.
std::string FormatResult(const FuzzCase& c, const RunResult& result);

}  // namespace fuzz
}  // namespace rel

#endif  // REL_FUZZ_RUNNER_H_
