#include "fuzz/update_stream.h"

#include <algorithm>
#include <cstddef>
#include <exception>
#include <map>
#include <memory>
#include <sstream>
#include <utility>

#include "base/error.h"
#include "base/rng.h"
#include "datalog/eval.h"
#include "datalog/index.h"
#include "datalog/magic.h"

namespace rel {
namespace fuzz {

namespace {

using datalog::EdbDelta;
using datalog::EvalOptions;
using datalog::EvalStats;
using datalog::Rule;

std::string RenderValueToken(const Value& v) {
  if (v.is_string()) return "\"" + v.AsString() + "\"";
  return v.ToString();
}

/// A program with `rules` and the given EDB state (facts() of the base
/// program replaced wholesale).
datalog::Program ProgramWith(const datalog::Program& base,
                             const std::map<std::string, Relation>& facts) {
  datalog::Program p;
  for (const Rule& rule : base.rules()) p.AddRule(rule);
  for (const auto& [pred, rel] : facts) {
    if (!rel.empty()) p.AddFacts(pred, rel);
  }
  return p;
}

/// Head predicates that also carry EDB facts: EvaluateDelta's DRed phase
/// needs their surviving base tuples via base_facts.
std::map<std::string, Relation> HeadBaseFacts(
    const datalog::Program& base, const std::map<std::string, Relation>& facts) {
  std::map<std::string, Relation> out;
  for (const Rule& rule : base.rules()) {
    auto it = facts.find(rule.head.pred);
    if (it != facts.end() && !it->second.empty()) out[rule.head.pred] = it->second;
  }
  return out;
}

std::string DescribeStep(size_t index, const UpdateStep& step) {
  std::ostringstream os;
  os << "step " << index << " " << (step.is_insert ? "insert " : "delete ")
     << step.pred << "(";
  for (size_t i = 0; i < step.tuple.arity(); ++i) {
    if (i) os << ", ";
    os << RenderValueToken(step.tuple[i]);
  }
  os << ")";
  return os.str();
}

}  // namespace

UpdateStream GenerateUpdateStream(uint64_t seed, const StreamOptions& options) {
  UpdateStream stream;
  stream.base = GenerateCase(seed, options.generator);

  // The EDB predicates mutated by the stream: every declared EDB predicate,
  // including those whose initial extent came out empty (insert-into-empty
  // is a deliberate edge case). Names and arities follow the generator's
  // e0..e{n-1} convention; arity is recovered from facts or rule bodies.
  std::map<std::string, size_t> edb_arity;
  for (const auto& [pred, rel] : stream.base.program.facts()) {
    rel.ForEach([&edb_arity, pred = pred](const TupleRef& t) {
      edb_arity.emplace(pred, t.arity());
    });
  }
  for (const Rule& rule : stream.base.program.rules()) {
    for (const auto& lit : rule.body) {
      if (lit.kind != datalog::Literal::Kind::kPositive &&
          lit.kind != datalog::Literal::Kind::kNegative) {
        continue;
      }
      const std::string& pred = lit.atom.pred;
      bool is_idb = std::binary_search(stream.base.idb_preds.begin(),
                                       stream.base.idb_preds.end(), pred);
      if (!is_idb) edb_arity.emplace(pred, lit.atom.terms.size());
    }
  }
  if (edb_arity.empty()) return stream;

  std::vector<std::pair<std::string, size_t>> edb(edb_arity.begin(),
                                                  edb_arity.end());
  // Track the evolving extents so deletes target present tuples and
  // inserts prefer absent ones (no-op steps are legal but wasted).
  std::map<std::string, Relation> live = stream.base.program.facts();

  Rng rng(seed ^ 0xA5A5A5A5DEADBEEFull);
  const int domain = options.generator.value_domain;
  for (int i = 0; i < options.num_steps; ++i) {
    UpdateStep step;
    const auto& [pred, arity] = edb[rng.NextBelow(edb.size())];
    step.pred = pred;
    Relation& extent = live[pred];
    if (!extent.empty() && rng.NextBool(options.delete_probability)) {
      step.is_insert = false;
      std::vector<Tuple> tuples = extent.SortedTuples();
      step.tuple = tuples[rng.NextBelow(tuples.size())];
      extent.Erase(step.tuple);
    } else {
      step.is_insert = true;
      std::vector<Value> values;
      for (size_t p = 0; p < arity; ++p) {
        values.push_back(Value::Int(
            static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(domain)))));
      }
      step.tuple = Tuple(std::move(values));
      extent.Insert(step.tuple);
    }
    stream.steps.push_back(std::move(step));
  }
  return stream;
}

RunResult RunUpdateStream(const UpdateStream& stream,
                          const RunnerOptions& options,
                          uint64_t* incremental_steps,
                          uint64_t* fallback_steps) {
  RunResult result;
  uint64_t incremental = 0;
  uint64_t fallback = 0;

  // One maintained arm per lattice point (plan seed x thread count), each
  // with its own persistent index cache.
  struct Arm {
    std::string label;
    EvalOptions opts;
    std::map<std::string, Relation> extents;
    std::unique_ptr<datalog::IndexCache> cache =
        std::make_unique<datalog::IndexCache>();
  };
  std::vector<Arm> arms;
  std::vector<uint64_t> seeds = {0};
  seeds.insert(seeds.end(), options.plan_seeds.begin(),
               options.plan_seeds.end());
  for (int threads : options.thread_counts) {
    for (uint64_t seed : seeds) {
      Arm arm;
      arm.opts.num_threads = threads;
      arm.opts.plan_order_seed = seed;
      arm.label = "inc/s" + std::to_string(seed) + "/t" +
                  std::to_string(threads);
      arms.push_back(std::move(arm));
    }
  }

  EvalOptions oracle_opts;  // semi-naive, one thread, production join order

  std::map<std::string, Relation> facts = stream.base.program.facts();
  try {
    datalog::Program initial = ProgramWith(stream.base.program, facts);
    for (Arm& arm : arms) {
      arm.extents = datalog::Evaluate(initial, arm.opts);
    }
  } catch (const RelError&) {
    // The static fuzzer owns error-semantics comparison; a base case the
    // engine rejects has no maintained fixpoint to stream against.
    return result;
  }

  datalog::Program rules_only = ProgramWith(stream.base.program, {});

  for (size_t index = 0; index < stream.steps.size(); ++index) {
    const UpdateStep& step = stream.steps[index];
    Relation& extent = facts[step.pred];
    EdbDelta delta;
    if (step.is_insert) {
      if (extent.Contains(step.tuple)) continue;  // no-op step
      delta.inserts[step.pred].Insert(step.tuple);
      extent.Insert(step.tuple);
    } else {
      if (!extent.Contains(step.tuple)) continue;  // no-op step
      delta.deletes[step.pred].Insert(step.tuple);
      extent.Erase(step.tuple);
    }

    datalog::Program post = ProgramWith(stream.base.program, facts);
    std::map<std::string, Relation> oracle =
        datalog::Evaluate(post, oracle_opts);
    std::map<std::string, Relation> base_facts =
        HeadBaseFacts(stream.base.program, facts);

    bool have_counters = false;
    uint64_t want_inserts = 0, want_deletes = 0, want_rederived = 0;
    for (Arm& arm : arms) {
      ++result.configs_run;
      EvalStats stats;
      bool supported = false;
      try {
        datalog::DeltaResult dr =
            datalog::EvaluateDelta(rules_only, base_facts, delta, &arm.extents,
                                   arm.opts, &stats, arm.cache.get());
        supported = dr.supported;
      } catch (const std::exception& e) {
        result.discrepancies.push_back(
            {arm.label, "error",
             DescribeStep(index, step) + ": EvaluateDelta threw: " + e.what()});
        supported = false;
      }
      if (supported) {
        ++incremental;
        if (options.check_stats) {
          // The delta counters are semantic set sizes — identical across
          // every join order and thread count.
          if (!have_counters) {
            have_counters = true;
            want_inserts = stats.delta_inserts;
            want_deletes = stats.delta_deletes;
            want_rederived = stats.rederived;
          } else if (stats.delta_inserts != want_inserts ||
                     stats.delta_deletes != want_deletes ||
                     stats.rederived != want_rederived) {
            std::ostringstream os;
            os << DescribeStep(index, step) << ": delta counters diverge: ("
               << stats.delta_inserts << ", " << stats.delta_deletes << ", "
               << stats.rederived << ") vs (" << want_inserts << ", "
               << want_deletes << ", " << want_rederived << ")";
            result.discrepancies.push_back({arm.label, "stats", os.str()});
          }
        }
      } else {
        // Production fallback: recompute from scratch, fresh cache (the old
        // one indexes replaced extents).
        ++fallback;
        arm.extents = datalog::Evaluate(post, arm.opts);
        arm.cache = std::make_unique<datalog::IndexCache>();
      }

      // Every extent the oracle derived must match byte-for-byte.
      for (const auto& [pred, want] : oracle) {
        auto it = arm.extents.find(pred);
        const std::string got =
            it == arm.extents.end() ? "{}" : it->second.ToString();
        if (got != want.ToString()) {
          result.discrepancies.push_back(
              {arm.label, "answer",
               DescribeStep(index, step) + ": " + pred + " = " + got +
                   " want " + want.ToString()});
        }
      }
      // And nothing extra.
      for (const auto& [pred, got] : arm.extents) {
        if (!got.empty() && oracle.find(pred) == oracle.end()) {
          result.discrepancies.push_back(
              {arm.label, "answer",
               DescribeStep(index, step) + ": unexpected extent for " + pred});
        }
      }

      // The interleaved "query": the demanded cone over the maintained
      // fixpoint must equal the goal-filtered oracle extent.
      if (stream.base.goal) {
        const datalog::DemandGoal& goal = *stream.base.goal;
        auto want_it = oracle.find(goal.pred);
        Relation want_cone =
            want_it == oracle.end()
                ? Relation()
                : datalog::FilterByPattern(want_it->second, goal.pattern);
        auto got_it = arm.extents.find(goal.pred);
        Relation got_cone =
            got_it == arm.extents.end()
                ? Relation()
                : datalog::FilterByPattern(got_it->second, goal.pattern);
        if (got_cone.ToString() != want_cone.ToString()) {
          result.discrepancies.push_back(
              {arm.label, "answer",
               DescribeStep(index, step) + ": goal cone " +
                   got_cone.ToString() + " want " + want_cone.ToString()});
        }
      }
    }
  }

  if (incremental_steps != nullptr) *incremental_steps += incremental;
  if (fallback_steps != nullptr) *fallback_steps += fallback;
  return result;
}

UpdateStream MinimizeStream(const UpdateStream& stream,
                            const RunnerOptions& options) {
  auto fails = [&options](const UpdateStream& s) {
    return !RunUpdateStream(s, options).ok();
  };
  if (!fails(stream)) return stream;

  UpdateStream cur = stream;
  bool shrunk = true;
  while (shrunk) {
    shrunk = false;

    // Drop the goal.
    if (cur.base.goal) {
      UpdateStream cand = cur;
      cand.base.goal.reset();
      if (fails(cand)) {
        cur = std::move(cand);
        shrunk = true;
      }
    }

    // Drop steps, one at a time (later steps first: a failing prefix is
    // the common case, so trimming the tail converges fastest).
    for (size_t i = cur.steps.size(); i-- > 0;) {
      UpdateStream cand = cur;
      cand.steps.erase(cand.steps.begin() + static_cast<ptrdiff_t>(i));
      if (fails(cand)) {
        cur = std::move(cand);
        shrunk = true;
      }
    }

    // Drop rules.
    const std::vector<Rule>& rules = cur.base.program.rules();
    for (size_t i = rules.size(); i-- > 0;) {
      datalog::Program p;
      for (size_t j = 0; j < cur.base.program.rules().size(); ++j) {
        if (j != i) p.AddRule(cur.base.program.rules()[j]);
      }
      for (const auto& [pred, rel] : cur.base.program.facts()) {
        p.AddFacts(pred, rel);
      }
      UpdateStream cand = cur;
      cand.base.program = std::move(p);
      if (fails(cand)) {
        cur = std::move(cand);
        shrunk = true;
      }
    }

    // Drop initial facts.
    std::vector<std::pair<std::string, Tuple>> all_facts;
    for (const auto& [pred, rel] : cur.base.program.facts()) {
      for (const Tuple& t : rel.SortedTuples()) all_facts.emplace_back(pred, t);
    }
    for (size_t i = all_facts.size(); i-- > 0;) {
      datalog::Program p;
      for (const Rule& rule : cur.base.program.rules()) p.AddRule(rule);
      for (size_t j = 0; j < all_facts.size(); ++j) {
        if (j != i) p.AddFact(all_facts[j].first, all_facts[j].second);
      }
      UpdateStream cand = cur;
      cand.base.program = std::move(p);
      if (fails(cand)) {
        cur = std::move(cand);
        all_facts.erase(all_facts.begin() + static_cast<ptrdiff_t>(i));
        shrunk = true;
      }
    }
  }
  return cur;
}

std::string StreamToText(const UpdateStream& stream) {
  std::ostringstream os;
  os << CaseToText(stream.base);
  for (const UpdateStep& step : stream.steps) {
    os << "% fuzz-update: " << (step.is_insert ? "insert" : "delete") << " "
       << step.pred;
    for (size_t i = 0; i < step.tuple.arity(); ++i) {
      os << " " << RenderValueToken(step.tuple[i]);
    }
    os << "\n";
  }
  return os.str();
}

UpdateStream StreamFromText(const std::string& text) {
  UpdateStream stream;
  stream.base = CaseFromText(text);
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag != "%") continue;
    ls >> tag;
    if (tag != "fuzz-update:") continue;
    UpdateStep step;
    std::string op;
    if (!(ls >> op >> step.pred) || (op != "insert" && op != "delete")) {
      throw RelError(ErrorKind::kParse, "bad fuzz-update directive: " + line);
    }
    step.is_insert = op == "insert";
    std::vector<Value> values;
    std::string tok;
    while (ls >> tok) {
      if (tok.size() >= 2 && tok.front() == '"' && tok.back() == '"') {
        values.push_back(Value::String(tok.substr(1, tok.size() - 2)));
      } else {
        try {
          values.push_back(Value::Int(std::stoll(tok)));
        } catch (const std::exception&) {
          throw RelError(ErrorKind::kParse,
                         "bad fuzz-update value token: " + tok);
        }
      }
    }
    step.tuple = Tuple(std::move(values));
    stream.steps.push_back(std::move(step));
  }
  return stream;
}

std::string FormatStreamResult(const UpdateStream& stream,
                               const RunResult& result) {
  if (result.ok()) return "";
  std::ostringstream os;
  os << "=== update stream seed=" << stream.base.seed << " ("
     << stream.steps.size() << " steps, " << result.discrepancies.size()
     << " discrepancies)\n";
  os << StreamToText(stream);
  for (const Discrepancy& d : result.discrepancies) {
    os << "  [" << d.kind << "] " << d.config << ": " << d.detail << "\n";
  }
  return os.str();
}

}  // namespace fuzz
}  // namespace rel
