#include "benchutil/generators.h"

#include <map>
#include <set>

#include "base/rng.h"

namespace rel {
namespace benchutil {

namespace {

Value I(int64_t v) { return Value::Int(v); }

}  // namespace

std::vector<Tuple> RandomGraph(int n, int m, uint64_t seed) {
  Rng rng(seed);
  std::set<std::pair<int, int>> seen;
  std::vector<Tuple> edges;
  edges.reserve(m);
  int attempts = 0;
  while (static_cast<int>(edges.size()) < m && attempts < 50 * m) {
    ++attempts;
    int a = static_cast<int>(rng.NextBelow(n));
    int b = static_cast<int>(rng.NextBelow(n));
    if (a == b) continue;
    if (!seen.insert({a, b}).second) continue;
    edges.push_back(Tuple({I(a), I(b)}));
  }
  return edges;
}

std::vector<Tuple> ChainGraph(int n) {
  std::vector<Tuple> edges;
  edges.reserve(n > 0 ? n - 1 : 0);
  for (int i = 0; i + 1 < n; ++i) {
    edges.push_back(Tuple({I(i), I(i + 1)}));
  }
  return edges;
}

std::vector<Tuple> CycleGraph(int n) {
  std::vector<Tuple> edges = ChainGraph(n);
  if (n > 1) edges.push_back(Tuple({I(n - 1), I(0)}));
  return edges;
}

std::vector<Tuple> GridGraph(int w, int h) {
  std::vector<Tuple> edges;
  if (w > 0 && h > 0) edges.reserve(2 * w * h);
  for (int r = 0; r < h; ++r) {
    for (int c = 0; c < w; ++c) {
      int64_t node = static_cast<int64_t>(r) * w + c;
      if (c + 1 < w) edges.push_back(Tuple({I(node), I(node + 1)}));
      if (r + 1 < h) edges.push_back(Tuple({I(node), I(node + w)}));
    }
  }
  return edges;
}

std::vector<Tuple> SkewedTriangleGraph(int n, int hubs, uint64_t seed) {
  Rng rng(seed);
  std::set<std::pair<int, int>> seen;
  auto add = [&seen](int a, int b) {
    if (a != b) seen.insert({a, b});
  };
  // Dense hub core (all pairs, both directions).
  for (int a = 0; a < hubs; ++a) {
    for (int b = 0; b < hubs; ++b) add(a, b);
  }
  // Spokes: each non-hub node attaches to two random hubs (both ways) and
  // to its ring successor.
  for (int v = hubs; v < n; ++v) {
    int h1 = static_cast<int>(rng.NextBelow(hubs));
    int h2 = static_cast<int>(rng.NextBelow(hubs));
    add(v, h1);
    add(h1, v);
    add(v, h2);
    add(h2, v);
    add(v, hubs + (v - hubs + 1) % (n - hubs));
  }
  std::vector<Tuple> edges;
  edges.reserve(seen.size());
  for (const auto& [a, b] : seen) edges.push_back(Tuple({I(a), I(b)}));
  return edges;
}

std::vector<Tuple> NodeSet(int n) {
  std::vector<Tuple> nodes;
  nodes.reserve(n);
  for (int i = 0; i < n; ++i) nodes.push_back(Tuple({I(i)}));
  return nodes;
}

std::vector<Tuple> SparseMatrix(int n, int m, double density, uint64_t seed) {
  Rng rng(seed);
  std::vector<Tuple> entries;
  for (int i = 1; i <= n; ++i) {
    for (int j = 1; j <= m; ++j) {
      if (rng.NextBool(density)) {
        entries.push_back(Tuple({I(i), I(j), Value::Float(rng.NextDouble())}));
      }
    }
  }
  return entries;
}

std::vector<Tuple> StochasticMatrix(int n, int links_per_node, uint64_t seed) {
  Rng rng(seed);
  std::vector<Tuple> entries;
  for (int j = 1; j <= n; ++j) {
    std::set<int> targets;
    while (static_cast<int>(targets.size()) <
           std::min(links_per_node, n - 1)) {
      int i = 1 + static_cast<int>(rng.NextBelow(n));
      if (i != j) targets.insert(i);
    }
    double weight = 1.0 / static_cast<double>(targets.size());
    for (int i : targets) {
      entries.push_back(Tuple({I(i), I(j), Value::Float(weight)}));
    }
  }
  return entries;
}

OrdersWorkload MakeOrders(int orders, int products, int max_lines,
                          int max_payments, uint64_t seed) {
  Rng rng(seed);
  OrdersWorkload w;
  auto order_id = [](int o) { return Value::String("O" + std::to_string(o)); };
  auto product_id = [](int p) {
    return Value::String("P" + std::to_string(p));
  };
  for (int p = 0; p < products; ++p) {
    w.product_price.push_back(
        Tuple({product_id(p), I(1 + static_cast<int64_t>(rng.NextBelow(99)))}));
  }
  int payment = 0;
  for (int o = 0; o < orders; ++o) {
    int lines = 1 + static_cast<int>(rng.NextBelow(max_lines));
    std::set<int> line_products;
    while (static_cast<int>(line_products.size()) <
           std::min(lines, products)) {
      line_products.insert(static_cast<int>(rng.NextBelow(products)));
    }
    for (int p : line_products) {
      w.order_product_quantity.push_back(
          Tuple({order_id(o), product_id(p),
                 I(1 + static_cast<int64_t>(rng.NextBelow(9)))}));
    }
    int payments = static_cast<int>(rng.NextBelow(max_payments + 1));
    for (int k = 0; k < payments; ++k) {
      Value pid = Value::String("Pmt" + std::to_string(payment++));
      w.payment_order.push_back(Tuple({pid, order_id(o)}));
      w.payment_amount.push_back(
          Tuple({pid, I(1 + static_cast<int64_t>(rng.NextBelow(200)))}));
    }
  }
  return w;
}

std::vector<Tuple> OrdersWideTable(const OrdersWorkload& w) {
  std::map<Value, Value> price;
  for (const Tuple& t : w.product_price) price.emplace(t[0], t[1]);
  std::multimap<Value, std::pair<Value, Value>> payments;  // order -> (p, amt)
  std::map<Value, Value> amount;
  for (const Tuple& t : w.payment_amount) amount.emplace(t[0], t[1]);
  for (const Tuple& t : w.payment_order) {
    payments.emplace(t[1], std::make_pair(t[0], amount.at(t[0])));
  }
  std::vector<Tuple> wide;
  for (const Tuple& line : w.order_product_quantity) {
    auto [lo, hi] = payments.equal_range(line[0]);
    for (auto it = lo; it != hi; ++it) {
      wide.push_back(Tuple({line[0], line[1], line[2], price.at(line[1]),
                            it->second.first, it->second.second}));
    }
    if (lo == hi) {
      // No payments: the record model needs a sentinel row ("NULL"s).
      wide.push_back(Tuple({line[0], line[1], line[2], price.at(line[1]),
                            Value::String(""), I(0)}));
    }
  }
  return wide;
}

}  // namespace benchutil
}  // namespace rel
