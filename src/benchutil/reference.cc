#include "benchutil/reference.h"

#include <algorithm>
#include <deque>

namespace rel {
namespace benchutil {

std::set<std::pair<int64_t, int64_t>> TransitiveClosureRef(
    const std::vector<Tuple>& edges) {
  std::map<int64_t, std::vector<int64_t>> adj;
  std::set<int64_t> nodes;
  for (const Tuple& e : edges) {
    adj[e[0].AsInt()].push_back(e[1].AsInt());
    nodes.insert(e[0].AsInt());
    nodes.insert(e[1].AsInt());
  }
  std::set<std::pair<int64_t, int64_t>> closure;
  for (int64_t s : nodes) {
    std::deque<int64_t> queue = {s};
    std::set<int64_t> visited;
    while (!queue.empty()) {
      int64_t u = queue.front();
      queue.pop_front();
      auto it = adj.find(u);
      if (it == adj.end()) continue;
      for (int64_t v : it->second) {
        if (visited.insert(v).second) {
          closure.emplace(s, v);
          queue.push_back(v);
        }
      }
    }
  }
  return closure;
}

std::map<std::pair<int64_t, int64_t>, int64_t> ApspRef(
    int n, const std::vector<Tuple>& edges) {
  std::map<int64_t, std::vector<int64_t>> adj;
  for (const Tuple& e : edges) adj[e[0].AsInt()].push_back(e[1].AsInt());
  std::map<std::pair<int64_t, int64_t>, int64_t> dist;
  for (int64_t s = 0; s < n; ++s) {
    dist[{s, s}] = 0;
    std::deque<int64_t> queue = {s};
    std::map<int64_t, int64_t> d;
    d[s] = 0;
    while (!queue.empty()) {
      int64_t u = queue.front();
      queue.pop_front();
      auto it = adj.find(u);
      if (it == adj.end()) continue;
      for (int64_t v : it->second) {
        if (v < 0 || v >= n) continue;
        if (d.count(v)) continue;
        d[v] = d[u] + 1;
        dist[{s, v}] = d[v];
        queue.push_back(v);
      }
    }
  }
  return dist;
}

std::vector<Tuple> MatMulRef(const std::vector<Tuple>& a,
                             const std::vector<Tuple>& b) {
  // Index B by row.
  std::map<int64_t, std::vector<std::pair<int64_t, double>>> b_rows;
  for (const Tuple& t : b) {
    b_rows[t[0].AsInt()].emplace_back(t[1].AsInt(), t[2].AsDouble());
  }
  std::map<std::pair<int64_t, int64_t>, double> acc;
  for (const Tuple& t : a) {
    auto it = b_rows.find(t[1].AsInt());
    if (it == b_rows.end()) continue;
    double av = t[2].AsDouble();
    int64_t i = t[0].AsInt();
    for (const auto& [j, bv] : it->second) {
      acc[{i, j}] += av * bv;
    }
  }
  std::vector<Tuple> out;
  out.reserve(acc.size());
  for (const auto& [ij, v] : acc) {
    if (v == 0) continue;
    out.push_back(
        Tuple({Value::Int(ij.first), Value::Int(ij.second), Value::Float(v)}));
  }
  return out;
}

std::vector<double> PageRankRef(int n, const std::vector<Tuple>& g, double eps,
                                int* iterations) {
  std::vector<std::tuple<int64_t, int64_t, double>> entries;
  entries.reserve(g.size());
  for (const Tuple& t : g) {
    entries.emplace_back(t[0].AsInt(), t[1].AsInt(), t[2].AsDouble());
  }
  std::vector<double> p(n + 1, 1.0 / n);
  int iters = 0;
  for (;;) {
    ++iters;
    std::vector<double> next(n + 1, 0.0);
    for (const auto& [i, j, v] : entries) next[i] += v * p[j];
    double delta = 0;
    for (int i = 1; i <= n; ++i) {
      delta = std::max(delta, std::abs(next[i] - p[i]));
    }
    p = std::move(next);
    if (delta <= eps) break;
  }
  if (iterations) *iterations = iters;
  return p;
}

std::map<Value, int64_t> GroupSumRef(const std::vector<Tuple>& rows) {
  std::map<Value, int64_t> out;
  for (const Tuple& t : rows) {
    out[t[0]] += t[t.arity() - 1].AsInt();
  }
  return out;
}

size_t CountTrianglesRef(const std::vector<Tuple>& edges) {
  std::set<std::pair<int64_t, int64_t>> edge_set;
  std::map<int64_t, std::vector<int64_t>> adj;
  for (const Tuple& e : edges) {
    edge_set.emplace(e[0].AsInt(), e[1].AsInt());
    adj[e[0].AsInt()].push_back(e[1].AsInt());
  }
  size_t count = 0;
  for (const auto& [x, ys] : adj) {
    for (int64_t y : ys) {
      auto it = adj.find(y);
      if (it == adj.end()) continue;
      for (int64_t z : it->second) {
        if (edge_set.count({z, x})) ++count;
      }
    }
  }
  return count;
}

}  // namespace benchutil
}  // namespace rel
