// Synthetic workload generators for benchmarks and property tests.
//
// The paper's evaluation is qualitative (worked examples + deployment
// claims); these generators provide the controlled synthetic equivalents
// documented in DESIGN.md: random graphs for the recursion workloads,
// sparse matrices for the linear-algebra workloads, and an order/payment
// workload shaped like the Figure 1 schema for aggregation and GNF.

#ifndef REL_BENCHUTIL_GENERATORS_H_
#define REL_BENCHUTIL_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "data/tuple.h"

namespace rel {
namespace benchutil {

/// Directed random graph: `m` distinct edges over nodes 0..n-1 (no self
/// loops). Deterministic in `seed`.
std::vector<Tuple> RandomGraph(int n, int m, uint64_t seed);

/// The path graph 0 -> 1 -> ... -> n-1 (worst-case TC depth).
std::vector<Tuple> ChainGraph(int n);

/// The cycle 0 -> 1 -> ... -> n-1 -> 0.
std::vector<Tuple> CycleGraph(int n);

/// The w x h directed grid: node (r, c) is r*w + c, with edges right
/// ((r,c) -> (r,c+1)) and down ((r,c) -> (r+1,c)). The demanded cone of a
/// corner query covers the whole grid, but along many short paths — the
/// shape between the chain (deep, thin) and the random graph (shallow,
/// dense) in the demand benchmarks.
std::vector<Tuple> GridGraph(int w, int h);

/// A hub-skewed graph: `hubs` nodes connect densely among themselves and to
/// a ring of `n` spokes — triangle-heavy, where binary join plans blow up.
std::vector<Tuple> SkewedTriangleGraph(int n, int hubs, uint64_t seed);

/// Node tuples 0..n-1 (for APSP's V argument).
std::vector<Tuple> NodeSet(int n);

/// Sparse random matrix: triples (row, col, value) with 1-based indexes,
/// about `density` * n * m entries, values in [0, 1).
std::vector<Tuple> SparseMatrix(int n, int m, double density, uint64_t seed);

/// Column-stochastic link matrix for PageRank: each column j holds 1/d(j)
/// for d(j) random out-targets (1-based, n x n). Every column is non-empty.
std::vector<Tuple> StochasticMatrix(int n, int links_per_node, uint64_t seed);

/// An order/payment workload shaped like Figure 1.
struct OrdersWorkload {
  std::vector<Tuple> product_price;           // (product, price)
  std::vector<Tuple> order_product_quantity;  // (order, product, quantity)
  std::vector<Tuple> payment_order;           // (payment, order)
  std::vector<Tuple> payment_amount;          // (payment, amount)
};
OrdersWorkload MakeOrders(int orders, int products, int max_lines,
                          int max_payments, uint64_t seed);

/// The same workload as one wide denormalized table
/// (order, product, quantity, price, payment, amount) — the record-model
/// strawman for the GNF benchmark. NULL-less by construction: rows are the
/// join of the four relations.
std::vector<Tuple> OrdersWideTable(const OrdersWorkload& w);

}  // namespace benchutil
}  // namespace rel

#endif  // REL_BENCHUTIL_GENERATORS_H_
