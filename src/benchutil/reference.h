// Hand-written reference implementations ("what an application programmer
// would write in the host language"): the comparison points for the
// benchmarks and the oracles for property tests.

#ifndef REL_BENCHUTIL_REFERENCE_H_
#define REL_BENCHUTIL_REFERENCE_H_

#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "data/tuple.h"

namespace rel {
namespace benchutil {

/// Transitive closure by BFS from every node. Edges are int pairs.
std::set<std::pair<int64_t, int64_t>> TransitiveClosureRef(
    const std::vector<Tuple>& edges);

/// All-pairs shortest path lengths by BFS (unit weights); absent = no path.
std::map<std::pair<int64_t, int64_t>, int64_t> ApspRef(
    int n, const std::vector<Tuple>& edges);

/// Dense matrix multiply over sparse triple inputs (1-based indexes).
/// Returns the product as sorted triples, zero entries omitted.
std::vector<Tuple> MatMulRef(const std::vector<Tuple>& a,
                             const std::vector<Tuple>& b);

/// PageRank by direct iteration: p <- G * p until max-norm delta <= eps.
/// G is a column-stochastic sparse matrix (1-based triples); returns the
/// vector indexed 1..n. `iterations` reports the count.
std::vector<double> PageRankRef(int n, const std::vector<Tuple>& g, double eps,
                                int* iterations = nullptr);

/// Group-by sum of the last column keyed on the first column.
std::map<Value, int64_t> GroupSumRef(const std::vector<Tuple>& rows);

/// Brute-force ordered triangle count: E(x,y), E(y,z), E(z,x).
size_t CountTrianglesRef(const std::vector<Tuple>& edges);

}  // namespace benchutil
}  // namespace rel

#endif  // REL_BENCHUTIL_REFERENCE_H_
