#include "kg/gnf.h"

#include <algorithm>
#include <map>
#include <set>

#include "base/error.h"

namespace rel {
namespace kg {

namespace {

std::string AttrRelation(const RecordSpec& spec, size_t attr) {
  return spec.relation_prefix + spec.attributes[attr];
}

}  // namespace

void DeclareRecord(const RecordSpec& spec, Schema* schema) {
  for (size_t a = 0; a < spec.attributes.size(); ++a) {
    schema->DeclareKeyValue(AttrRelation(spec, a), {spec.concept_name});
  }
}

void DecomposeRecords(const RecordSpec& spec, const std::vector<WideRow>& rows,
                      EntityRegistry* registry, Database* db) {
  for (const WideRow& row : rows) {
    if (row.values.size() != spec.attributes.size()) {
      throw RelError(ErrorKind::kArity,
                     "wide row for \"" + row.id + "\" has " +
                         std::to_string(row.values.size()) + " values, spec '" +
                         spec.relation_prefix + "' declares " +
                         std::to_string(spec.attributes.size()));
    }
    Value entity = registry->Get(spec.concept_name, row.id);
    for (size_t a = 0; a < spec.attributes.size(); ++a) {
      if (!row.values[a]) continue;  // NULL: the whole tuple is omitted
      db->Insert(AttrRelation(spec, a), Tuple({entity, *row.values[a]}));
    }
  }
}

std::vector<WideRow> ReassembleRecords(const RecordSpec& spec,
                                       const Database& db) {
  // Collect every entity id mentioned by any attribute relation.
  std::set<std::string> ids;
  for (size_t a = 0; a < spec.attributes.size(); ++a) {
    for (const Tuple& t : db.Get(AttrRelation(spec, a)).TuplesOfArity(2)) {
      if (t[0].is_entity()) ids.insert(t[0].EntityId());
    }
  }
  std::vector<WideRow> rows;
  rows.reserve(ids.size());
  for (const std::string& id : ids) {
    WideRow row;
    row.id = id;
    Value entity = Value::Entity(spec.concept_name, id);
    for (size_t a = 0; a < spec.attributes.size(); ++a) {
      Relation suffix =
          db.Get(AttrRelation(spec, a)).Suffixes(Tuple({entity}));
      std::optional<Value> value;
      for (const Tuple& t : suffix.TuplesOfArity(1)) {
        value = t[0];
        break;  // key-value relations are functional; Validate() checks this
      }
      row.values.push_back(value);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace kg
}  // namespace rel
