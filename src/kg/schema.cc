#include "kg/schema.h"

#include <set>

#include "base/error.h"

namespace rel {
namespace kg {

void Schema::Declare(RelationSchema schema) {
  if (schema.arity == 0) {
    throw RelError(ErrorKind::kType,
                   "GNF relation '" + schema.name + "' must have arity >= 1");
  }
  if (!schema.column_concepts.empty() &&
      schema.column_concepts.size() != schema.arity) {
    throw RelError(ErrorKind::kType,
                   "GNF relation '" + schema.name +
                       "': concept list size must equal the arity");
  }
  if (schema.column_concepts.empty()) {
    schema.column_concepts.assign(schema.arity, "");
  }
  auto [it, inserted] = relations_.emplace(schema.name, std::move(schema));
  (void)it;
  if (!inserted) {
    throw RelError(ErrorKind::kType,
                   "duplicate GNF relation declaration '" + it->first + "'");
  }
}

void Schema::DeclareAllKey(const std::string& name,
                           std::vector<std::string> column_concepts) {
  RelationSchema s;
  s.name = name;
  s.arity = column_concepts.size();
  s.kind = RelationKind::kAllKey;
  s.column_concepts = std::move(column_concepts);
  Declare(std::move(s));
}

void Schema::DeclareKeyValue(const std::string& name,
                             std::vector<std::string> key_concepts,
                             std::string value_concept) {
  RelationSchema s;
  s.name = name;
  s.arity = key_concepts.size() + 1;
  s.kind = RelationKind::kKeyValue;
  s.column_concepts = std::move(key_concepts);
  s.column_concepts.push_back(std::move(value_concept));
  Declare(std::move(s));
}

bool Schema::Has(const std::string& name) const {
  return relations_.count(name) > 0;
}

const RelationSchema& Schema::Get(const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    throw RelError(ErrorKind::kUnknownRelation,
                   "no GNF declaration for '" + name + "'");
  }
  return it->second;
}

std::vector<std::string> Schema::Names() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, schema] : relations_) {
    (void)schema;
    names.push_back(name);
  }
  return names;
}

std::vector<Violation> Schema::Validate(const Database& db) const {
  std::vector<Violation> out;
  // Unique-identifier property: identifier -> concept, across the database
  // (Section 2, condition (2): "GNF does not allow disjoint concepts such
  // as product and order to have the same identifier").
  std::map<std::string, std::string> id_concept;

  for (const auto& [name, schema] : relations_) {
    const Relation& rel = db.Get(name);
    // Arity check.
    for (size_t arity : rel.Arities()) {
      if (arity != schema.arity) {
        out.push_back({name, "tuple of arity " + std::to_string(arity) +
                                 " in a relation declared with arity " +
                                 std::to_string(schema.arity)});
      }
    }
    // Column concepts + unique identifiers.
    for (const Tuple& t : rel.TuplesOfArity(schema.arity)) {
      for (size_t i = 0; i < schema.arity; ++i) {
        const std::string& concept_name = schema.column_concepts[i];
        if (concept_name.empty()) {
          if (t[i].is_entity()) {
            out.push_back({name, "column " + std::to_string(i + 1) +
                                     " holds entity " + t[i].ToString() +
                                     " but is declared as a value column"});
          }
          continue;
        }
        if (!t[i].is_entity() || t[i].EntityConcept() != concept_name) {
          out.push_back({name, "column " + std::to_string(i + 1) +
                                   " must hold " + concept_name +
                                   " entities, found " + t[i].ToString()});
          continue;
        }
        auto [it, inserted] =
            id_concept.emplace(t[i].EntityId(), concept_name);
        if (!inserted && it->second != concept_name) {
          out.push_back({name, "identifier \"" + t[i].EntityId() +
                                   "\" is used by two concepts: " +
                                   it->second + " and " + concept_name});
        }
      }
    }
    // Functional dependency for key-value relations.
    if (schema.kind == RelationKind::kKeyValue && schema.arity >= 1) {
      std::map<Tuple, Value> seen;
      for (const Tuple& t : rel.TuplesOfArity(schema.arity)) {
        Tuple key = t.Slice(0, schema.arity - 1);
        const Value& value = t[schema.arity - 1];
        auto [it, inserted] = seen.emplace(key, value);
        if (!inserted && it->second != value) {
          out.push_back({name, "key " + key.ToString() +
                                   " maps to two values: " +
                                   it->second.ToString() + " and " +
                                   value.ToString()});
        }
      }
    }
  }
  return out;
}

std::string Schema::ToRelConstraints() const {
  std::string out;
  for (const auto& [name, schema] : relations_) {
    if (schema.kind == RelationKind::kKeyValue && schema.arity >= 2) {
      // The key determines the value: R(k.., v1) and R(k.., v2) => v1 = v2.
      std::string keys;
      for (size_t i = 0; i + 1 < schema.arity; ++i) {
        if (i) keys += ", ";
        keys += "k" + std::to_string(i);
      }
      out += "ic " + name + "_functional(" + keys + ") requires\n";
      out += "  forall((va, vb) | " + name + "(" + keys + ", va) and " +
             name + "(" + keys + ", vb) implies va = vb)\n";
    }
    // Value columns (empty concept) must not hold entities.
    for (size_t i = 0; i < schema.arity; ++i) {
      if (!schema.column_concepts[i].empty()) continue;
      std::string args;
      for (size_t j = 0; j < schema.arity; ++j) {
        if (j) args += ", ";
        args += (j == i) ? "x" : "_";
      }
      out += "ic " + name + "_col" + std::to_string(i + 1) +
             "_value(x) requires\n  " + name + "(" + args +
             ") implies not Entity(x)\n";
    }
  }
  return out;
}

void Schema::Enforce(const Database& db) const {
  std::vector<Violation> violations = Validate(db);
  if (!violations.empty()) {
    throw ConstraintViolation(
        "gnf:" + violations.front().relation, violations.front().message +
            (violations.size() > 1
                 ? " (+" + std::to_string(violations.size() - 1) + " more)"
                 : ""));
  }
}

}  // namespace kg
}  // namespace rel
