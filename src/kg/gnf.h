// Record-model <-> GNF decomposition (Section 2).
//
// Traditional modeling stores an entity as one wide record
// (Product(product, name, price)); GNF splits it into one relation per
// atomic fact (ProductName, ProductPrice). This module converts both ways,
// turning NULL attributes into absent tuples (GNF needs no nulls) and back.

#ifndef REL_KG_GNF_H_
#define REL_KG_GNF_H_

#include <optional>
#include <string>
#include <vector>

#include "data/database.h"
#include "kg/entity.h"
#include "kg/schema.h"

namespace rel {
namespace kg {

/// Describes a record ("ER-style entity with attributes"): a concept plus
/// named attributes. The GNF decomposition creates one key-value relation
/// per attribute, named <Concept><Attribute> as in the paper
/// (ProductPrice, ProductName, ...).
struct RecordSpec {
  std::string concept_name;              // e.g. "product"
  std::string relation_prefix;           // e.g. "Product"
  std::vector<std::string> attributes;   // e.g. {"Name", "Price"}
};

/// One wide row: an entity id plus one optional value per attribute
/// (nullopt = SQL NULL).
struct WideRow {
  std::string id;
  std::vector<std::optional<Value>> values;
};

/// Declares the GNF relations of `spec` into `schema` (one key-value
/// relation per attribute, keyed by the concept's entities).
void DeclareRecord(const RecordSpec& spec, Schema* schema);

/// Decomposes wide rows into GNF relations inside `db`, registering entity
/// ids in `registry`. NULL attributes simply produce no tuple.
void DecomposeRecords(const RecordSpec& spec, const std::vector<WideRow>& rows,
                      EntityRegistry* registry, Database* db);

/// Reassembles wide rows from the GNF relations (the inverse view). Rows are
/// returned for every entity appearing in any of the attribute relations,
/// with nullopt for missing attributes; sorted by id.
std::vector<WideRow> ReassembleRecords(const RecordSpec& spec,
                                       const Database& db);

}  // namespace kg
}  // namespace rel

#endif  // REL_KG_GNF_H_
