#include "kg/entity.h"

#include "base/error.h"

namespace rel {
namespace kg {

Value EntityRegistry::Get(const std::string& concept_name,
                          const std::string& id) {
  auto [it, inserted] = owner_.emplace(id, concept_name);
  if (!inserted && it->second != concept_name) {
    throw ConstraintViolation(
        "unique_identifier",
        "identifier \"" + id + "\" already belongs to concept '" +
            it->second + "', cannot reuse it for '" + concept_name + "'");
  }
  if (inserted) by_concept_[concept_name].push_back(id);
  return Value::Entity(concept_name, id);
}

Value EntityRegistry::Mint(const std::string& concept_name) {
  std::string id = concept_name + ":" + std::to_string(next_id_++);
  return Get(concept_name, id);
}

std::string EntityRegistry::ConceptOf(const std::string& id) const {
  auto it = owner_.find(id);
  return it == owner_.end() ? "" : it->second;
}

std::vector<std::string> EntityRegistry::IdsOf(
    const std::string& concept_name) const {
  auto it = by_concept_.find(concept_name);
  return it == by_concept_.end() ? std::vector<std::string>() : it->second;
}

}  // namespace kg
}  // namespace rel
