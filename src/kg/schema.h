// Graph Normal Form schemas (Section 2 of the paper).
//
// GNF requires each k-ary relation to be in sixth normal form:
//   - all k columns are the key ("all-key": the relation is a set of facts), or
//   - the first k-1 columns are the key and the last column is the single
//     value ("key-value": the relation is a function).
// plus the unique-identifier property: every entity identifier belongs to
// exactly one concept across the whole database (see entity.h).

#ifndef REL_KG_SCHEMA_H_
#define REL_KG_SCHEMA_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "data/database.h"

namespace rel {
namespace kg {

/// The two 6NF shapes GNF admits (Section 2, condition (1)).
enum class RelationKind {
  kAllKey,    // every column is part of the key
  kKeyValue,  // all columns but the last form the key
};

/// Declares the GNF shape of one relation.
struct RelationSchema {
  std::string name;
  size_t arity = 0;
  RelationKind kind = RelationKind::kAllKey;
  /// For each column: the concept its entities belong to, or empty when the
  /// column holds a plain value (Int/Float/String).
  std::vector<std::string> column_concepts;
};

/// One schema violation found by Validate().
struct Violation {
  std::string relation;
  std::string message;
};

/// A GNF schema: a set of relation declarations plus the concepts they
/// mention.
class Schema {
 public:
  /// Declares a relation; throws kType on duplicate names or a concept list
  /// whose size disagrees with the arity.
  void Declare(RelationSchema schema);

  /// Convenience: an all-key relation (e.g. PaymentOrder(payment, order)).
  void DeclareAllKey(const std::string& name,
                     std::vector<std::string> column_concepts);

  /// Convenience: a key-value relation (e.g. ProductPrice(product, price)).
  void DeclareKeyValue(const std::string& name,
                       std::vector<std::string> key_concepts,
                       std::string value_concept = "");

  bool Has(const std::string& name) const;
  const RelationSchema& Get(const std::string& name) const;
  std::vector<std::string> Names() const;

  /// Checks `db` against this schema:
  ///  - declared arities match,
  ///  - key-value relations are functional (the key determines the value),
  ///  - entity columns hold entities of the declared concept,
  ///  - the unique-identifier property holds across all entity columns.
  /// Returns all violations (empty = conforms).
  std::vector<Violation> Validate(const Database& db) const;

  /// Validate and throw ConstraintViolation on the first problem.
  void Enforce(const Database& db) const;

  /// Renders this schema as Rel integrity constraints (`ic` rules) that an
  /// Engine can install with Define(): functional dependencies for
  /// key-value relations and type checks for value columns. This is the
  /// paper's "rich language of integrity constraints in place of a more
  /// classical database schema" (Section 7), generated from the schema.
  std::string ToRelConstraints() const;

 private:
  std::map<std::string, RelationSchema> relations_;
};

}  // namespace kg
}  // namespace rel

#endif  // REL_KG_SCHEMA_H_
