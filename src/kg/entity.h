// Entity registry: "things, not strings" (Section 2).
//
// Mints database-unique entity identifiers per concept and enforces the
// unique-identifier property at creation time (an id registered under one
// concept cannot be reused by another).

#ifndef REL_KG_ENTITY_H_
#define REL_KG_ENTITY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "data/value.h"

namespace rel {
namespace kg {

class EntityRegistry {
 public:
  /// Registers (or re-fetches) the entity `id` under `concept_name`.
  /// Throws ConstraintViolation if `id` already belongs to a different
  /// concept — the unique-identifier property.
  Value Get(const std::string& concept_name, const std::string& id);

  /// Mints a fresh entity of `concept_name` with a generated id
  /// ("<concept>:<counter>").
  Value Mint(const std::string& concept_name);

  /// The concept owning `id`, or "" if unregistered.
  std::string ConceptOf(const std::string& id) const;

  /// All ids of one concept, in registration order.
  std::vector<std::string> IdsOf(const std::string& concept_name) const;

  size_t size() const { return owner_.size(); }

 private:
  std::map<std::string, std::string> owner_;  // id -> concept
  std::map<std::string, std::vector<std::string>> by_concept_;
  uint64_t next_id_ = 0;
};

}  // namespace kg
}  // namespace rel

#endif  // REL_KG_ENTITY_H_
