// The file-system seam of the durability layer.
//
// All storage I/O — WAL appends, snapshot writes, recovery reads — goes
// through the FileSystem/File interfaces so the crash-recovery harness can
// substitute a deterministic in-memory implementation with injected faults
// (fail the Nth write, tear it partway, flip a bit in it) and then recover
// from the exact byte image a real crash would have left behind. Nothing in
// the engine above this header knows whether bytes go to a disk or a map.
//
// Durability model the in-memory implementation mirrors: Append lands in
// the "page cache" (the file's byte buffer); only Sync advances the durable
// watermark. FilesSynced() is the disk image after a crash that loses the
// page cache, FilesAsIs() the image after a crash where the OS had already
// flushed everything — recovery must cope with both, and the harness sweeps
// both. Metadata operations (Rename, Remove) are treated as immediately
// durable, a simplification the snapshot protocol is designed around (the
// rename happens only after the snapshot bytes are synced and verified).

#ifndef REL_STORAGE_FILE_H_
#define REL_STORAGE_FILE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "base/error.h"

namespace rel::storage {

/// An append-only file handle.
class File {
 public:
  virtual ~File() = default;

  /// Appends `data` at the end of the file. One Append call is the unit of
  /// fault injection: a torn write delivers a strict prefix of one call.
  virtual Status Append(std::string_view data) = 0;

  /// Makes every byte appended so far durable (fsync).
  virtual Status Sync() = 0;

  virtual Status Close() = 0;
};

/// A minimal file system: everything the Store needs, nothing more.
class FileSystem {
 public:
  virtual ~FileSystem() = default;

  /// Opens `path` for appending, creating it if missing; with `truncate`
  /// the file starts empty.
  virtual Status OpenAppend(const std::string& path, bool truncate,
                            std::unique_ptr<File>* out) = 0;

  /// Reads the whole file into `out`.
  virtual Status ReadFile(const std::string& path, std::string* out) = 0;

  /// Atomically renames `from` to `to`, replacing any existing `to`.
  virtual Status Rename(const std::string& from, const std::string& to) = 0;

  virtual Status Remove(const std::string& path) = 0;

  /// Base names of the entries in `dir` (no "." / ".."), sorted.
  virtual Status List(const std::string& dir,
                      std::vector<std::string>* names) = 0;

  /// Creates `dir` (and parents). Existing directories are fine.
  virtual Status CreateDir(const std::string& dir) = 0;

  virtual bool Exists(const std::string& path) = 0;
};

/// The real thing: POSIX files, fsync-backed Sync.
class PosixFileSystem : public FileSystem {
 public:
  Status OpenAppend(const std::string& path, bool truncate,
                    std::unique_ptr<File>* out) override;
  Status ReadFile(const std::string& path, std::string* out) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& path) override;
  Status List(const std::string& dir,
              std::vector<std::string>* names) override;
  Status CreateDir(const std::string& dir) override;
  bool Exists(const std::string& path) override;
};

/// One injected fault, triggered by the Nth Append across the whole file
/// system (1-based; counting restarts when the plan is set).
struct FaultPlan {
  enum class Kind : uint8_t {
    kNone,
    kFailWrite,  ///< the Nth Append writes nothing and the device dies
    kTornWrite,  ///< the Nth Append lands a strict prefix, then the device dies
    kBitFlip,    ///< the Nth Append lands fully but with one byte corrupted;
                 ///< the device stays healthy (silent corruption)
  };
  Kind kind = Kind::kNone;
  uint64_t at_write = 0;  ///< which Append triggers (1-based)
  /// kTornWrite: bytes kept (0 = half the write). kBitFlip: byte offset
  /// within the write to corrupt (modulo its size).
  uint64_t offset = 0;
  uint8_t flip_mask = 0x40;  ///< XORed into the chosen byte on kBitFlip
};

/// Deterministic in-memory file system with fault injection — the substrate
/// of the crash-recovery harness. Thread-safe (a single mutex; nothing here
/// is a hot path).
class MemFileSystem : public FileSystem {
 public:
  MemFileSystem() = default;
  /// Restores a captured disk image (see FilesAsIs / FilesSynced).
  explicit MemFileSystem(std::map<std::string, std::string> files);

  Status OpenAppend(const std::string& path, bool truncate,
                    std::unique_ptr<File>* out) override;
  Status ReadFile(const std::string& path, std::string* out) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& path) override;
  Status List(const std::string& dir,
              std::vector<std::string>* names) override;
  Status CreateDir(const std::string& dir) override;
  bool Exists(const std::string& path) override;

  /// Installs `plan` and resets the write counter. Kind::kNone clears.
  void SetFault(FaultPlan plan);
  /// Append calls observed since the last SetFault.
  uint64_t writes() const;
  /// True once the planned fault has triggered.
  bool fault_fired() const;

  /// Disk image with every appended byte, synced or not (a crash after the
  /// OS flushed its cache).
  std::map<std::string, std::string> FilesAsIs() const;
  /// Disk image truncated to each file's synced watermark (a crash that
  /// loses the page cache).
  std::map<std::string, std::string> FilesSynced() const;

 private:
  friend class MemFile;
  struct Entry {
    std::string data;
    size_t synced = 0;
  };

  /// Applies the fault plan to one Append of `data` against `entry`.
  /// Returns the status the caller should surface.
  Status ApplyWrite(Entry* entry, std::string_view data);

  mutable std::mutex mu_;
  std::map<std::string, Entry> files_;
  FaultPlan plan_;
  uint64_t write_count_ = 0;
  bool fault_fired_ = false;
  bool device_failed_ = false;
};

}  // namespace rel::storage

#endif  // REL_STORAGE_FILE_H_
