// Write-ahead log: the commit pipeline's durability record.
//
// A transaction that changes base relations is logged as
//   begin(txn) · fact/retract(txn, name, tuple)* · commit(txn)
// and is durable once the commit record reaches a Sync (fsync-on-commit,
// with a group-commit knob that syncs every Nth commit instead). Model
// changes (Engine::Define) are logged as self-contained define records.
//
// On-disk framing, one record per File::Append call:
//   [u32 payload_len][u32 crc32(payload)][payload]
// payload = [u8 type][u64 txn_id][type-specific body]
//
// The reader replays records until the first frame that is torn (length
// prefix runs past the end of the file) or corrupt (CRC mismatch, unknown
// type, undecodable body) and reports the byte offset where trust ended.
// Only complete begin..commit groups are handed to recovery: a crash
// mid-transaction leaves a headless tail that is dropped wholesale, which
// is exactly the atomicity half of the recovery invariant.

#ifndef REL_STORAGE_WAL_H_
#define REL_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "data/tuple.h"
#include "storage/file.h"

namespace rel::storage {

enum class WalRecordType : uint8_t {
  kBegin = 1,
  kFact = 2,     ///< insert `tuple` into base relation `name`
  kRetract = 3,  ///< delete `tuple` from base relation `name`
  kCommit = 4,
  kDefine = 5,  ///< install Rel `source` into the persistent model
};

struct WalRecord {
  WalRecordType type = WalRecordType::kBegin;
  uint64_t txn_id = 0;
  std::string name;    // kFact / kRetract
  Tuple tuple;         // kFact / kRetract
  std::string source;  // kDefine

  static WalRecord Fact(std::string name, Tuple tuple);
  static WalRecord Retract(std::string name, Tuple tuple);
};

/// Appends the framed encoding of `rec` to `out`.
void EncodeWalRecord(const WalRecord& rec, std::string* out);

/// Everything the reader could salvage from a WAL byte image.
struct WalReadResult {
  std::vector<WalRecord> records;  ///< valid records, in log order
  bool truncated = false;          ///< stopped before the end of the image
  uint64_t valid_bytes = 0;        ///< offset of the first untrusted byte
  std::string detail;              ///< what ended the scan, when truncated
};

/// Decodes `image`, stopping at the first torn or corrupt frame.
WalReadResult ReadWal(std::string_view image);

struct WalWriterOptions {
  bool fsync_on_commit = true;
  /// Sync every Nth commit (group commit). 1 = every commit is durable
  /// before it is acknowledged; larger values trade the tail of
  /// acknowledged-but-unsynced transactions for fewer fsyncs.
  int group_commit = 1;
};

/// Sequential writer over one WAL file. Single-threaded (the Engine is the
/// single writer; see ARCHITECTURE.md).
class WalWriter {
 public:
  WalWriter(std::unique_ptr<File> file, WalWriterOptions options)
      : file_(std::move(file)), options_(options) {}

  /// Logs begin · ops · commit. Each record is its own Append (its own
  /// fault-injection point); the commit record is followed by a Sync when
  /// the group-commit policy says so. Any failure leaves the transaction
  /// not-durable and the writer unusable for further commits.
  Status LogTransaction(uint64_t txn_id, const std::vector<WalRecord>& ops);

  /// Logs a define record. Model changes are rare, so these always sync.
  Status LogDefine(uint64_t txn_id, const std::string& source);

  /// Syncs any acknowledged-but-unsynced group-commit tail.
  Status Flush();

 private:
  Status AppendRecord(const WalRecord& rec);

  std::unique_ptr<File> file_;
  WalWriterOptions options_;
  int unsynced_commits_ = 0;
  std::string scratch_;
};

}  // namespace rel::storage

#endif  // REL_STORAGE_WAL_H_
