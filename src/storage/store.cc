#include "storage/store.h"

#include <algorithm>

namespace rel::storage {

namespace {

/// Parses "<prefix>-<number>" file names; returns false for anything else.
bool ParseEpochFile(const std::string& name, const char* prefix,
                    uint64_t* epoch) {
  std::string p = std::string(prefix) + "-";
  if (name.size() <= p.size() || name.compare(0, p.size(), p) != 0) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = p.size(); i < name.size(); ++i) {
    char c = name[i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *epoch = value;
  return true;
}

}  // namespace

Store::Store(std::shared_ptr<FileSystem> fs, std::string dir,
             DurabilityOptions options)
    : fs_(std::move(fs)), dir_(std::move(dir)), options_(options) {}

std::string Store::WalPath(uint64_t epoch) const {
  return dir_ + "/wal-" + std::to_string(epoch);
}

std::string Store::SnapPath(uint64_t epoch) const {
  return dir_ + "/snap-" + std::to_string(epoch);
}

Status Store::OpenWal(uint64_t epoch, bool truncate) {
  std::unique_ptr<File> file;
  Status s = fs_->OpenAppend(WalPath(epoch), truncate, &file);
  if (!s.ok()) return s;
  WalWriterOptions wopts;
  wopts.fsync_on_commit = options_.fsync_on_commit;
  wopts.group_commit = std::max(1, options_.group_commit);
  wal_ = std::make_unique<WalWriter>(std::move(file), wopts);
  epoch_ = epoch;
  return Status::Ok();
}

RecoveryReport Store::Recover(SnapshotData* out) {
  RecoveryReport report;
  *out = SnapshotData();

  Status s = fs_->CreateDir(dir_);
  if (!s.ok()) {
    report.status = s;
    return report;
  }
  std::vector<std::string> names;
  s = fs_->List(dir_, &names);
  if (!s.ok()) {
    report.status = s;
    return report;
  }

  // Newest decodable snapshot wins; corrupt ones are reported and skipped.
  std::vector<uint64_t> snapshot_epochs;
  for (const std::string& name : names) {
    uint64_t epoch;
    if (ParseEpochFile(name, "snap", &epoch)) snapshot_epochs.push_back(epoch);
  }
  std::sort(snapshot_epochs.rbegin(), snapshot_epochs.rend());

  uint64_t base_epoch = 0;
  for (uint64_t epoch : snapshot_epochs) {
    std::string image;
    s = fs_->ReadFile(SnapPath(epoch), &image);
    Status decoded = s.ok() ? DecodeSnapshot(image, out) : s;
    if (decoded.ok()) {
      base_epoch = epoch;
      break;
    }
    report.detail += "skipped snap-" + std::to_string(epoch) + " (" +
                     decoded.ToString() + "); ";
    *out = SnapshotData();
  }
  report.snapshot_txn = out->last_txn_id;
  next_txn_ = out->last_txn_id + 1;

  // Replay the epoch's WAL tail: complete committed transactions only.
  std::string image;
  bool have_wal = false;
  uint64_t wal_valid_bytes = 0;
  if (fs_->ReadFile(WalPath(base_epoch), &image).ok()) {
    have_wal = true;
    WalReadResult wal = ReadWal(image);
    report.wal_truncated = wal.truncated;
    report.truncated_at = wal.valid_bytes;
    wal_valid_bytes = wal.valid_bytes;
    if (wal.truncated) {
      report.detail += "wal-" + std::to_string(base_epoch) +
                       " truncated: " + wal.detail + "; ";
    }
    std::vector<const WalRecord*> pending;
    bool in_txn = false;
    for (const WalRecord& rec : wal.records) {
      switch (rec.type) {
        case WalRecordType::kBegin:
          pending.clear();
          in_txn = true;
          break;
        case WalRecordType::kFact:
        case WalRecordType::kRetract:
          if (in_txn) pending.push_back(&rec);
          break;
        case WalRecordType::kCommit:
          if (!in_txn) break;  // stray commit: ignore, nothing to apply
          for (const WalRecord* op : pending) {
            if (op->type == WalRecordType::kFact) {
              out->db.Insert(op->name, op->tuple);
            } else {
              out->db.Delete(op->name, op->tuple);
            }
          }
          pending.clear();
          in_txn = false;
          ++report.replayed_txns;
          next_txn_ = std::max(next_txn_, rec.txn_id + 1);
          break;
        case WalRecordType::kDefine:
          out->model_sources.push_back(rec.source);
          next_txn_ = std::max(next_txn_, rec.txn_id + 1);
          break;
      }
    }
  }
  report.recovered_txns = report.snapshot_txn + report.replayed_txns;
  out->last_txn_id = next_txn_ - 1;

  // A torn or corrupt tail must be chopped off before we append again:
  // new commits written after the garbage would be stranded behind bytes
  // every future reader stops at — committed-then-lost, exactly what the
  // recovery invariant forbids. Rewrite-to-temp + atomic rename, so a
  // crash mid-rewrite leaves the original (still recoverable) file.
  if (report.wal_truncated && have_wal) {
    const std::string tmp = dir_ + "/wal-tmp";
    std::unique_ptr<File> file;
    s = fs_->OpenAppend(tmp, /*truncate=*/true, &file);
    if (s.ok()) s = file->Append(std::string_view(image).substr(0, wal_valid_bytes));
    if (s.ok()) s = file->Sync();
    if (s.ok()) s = file->Close();
    if (s.ok()) s = fs_->Rename(tmp, WalPath(base_epoch));
    if (!s.ok()) {
      // Appending after untrimmed garbage is unsafe; refuse to attach.
      report.status = Status::IoError("could not trim corrupt WAL tail: " +
                                      s.message());
      return report;
    }
    report.detail += "trimmed wal-" + std::to_string(base_epoch) + " to " +
                     std::to_string(wal_valid_bytes) + " bytes; ";
  }

  // Resume appending to the recovered epoch's WAL.
  s = OpenWal(base_epoch, /*truncate=*/false);
  if (!s.ok()) {
    report.status = s;
    return report;
  }
  prev_epoch_ = base_epoch;
  recovered_ = true;
  // Stale scratch files from an interrupted checkpoint or trim are dead
  // weight — recovery never reads them.
  fs_->Remove(dir_ + "/snap-tmp");
  fs_->Remove(dir_ + "/wal-tmp");
  return report;
}

Status Store::LogTransaction(const std::vector<WalRecord>& ops,
                             uint64_t* txn_id) {
  if (!recovered_) {
    return Status::Error(ErrorKind::kTransaction,
                         "Store::Recover must run before logging");
  }
  uint64_t id = next_txn_;
  Status s = wal_->LogTransaction(id, ops);
  if (!s.ok()) return s;
  next_txn_ = id + 1;
  if (txn_id != nullptr) *txn_id = id;
  return Status::Ok();
}

Status Store::LogDefine(const std::string& source) {
  if (!recovered_) {
    return Status::Error(ErrorKind::kTransaction,
                         "Store::Recover must run before logging");
  }
  uint64_t id = next_txn_;
  Status s = wal_->LogDefine(id, source);
  if (!s.ok()) return s;
  next_txn_ = id + 1;
  return Status::Ok();
}

Status Store::Checkpoint(const Database& db,
                         const std::vector<std::string>& model_sources) {
  if (!recovered_) {
    return Status::Error(ErrorKind::kTransaction,
                         "Store::Recover must run before checkpointing");
  }
  // 1. Everything the snapshot will claim must already be durable.
  Status s = wal_->Flush();
  if (!s.ok()) return s;

  SnapshotData data;
  data.db = db;
  data.model_sources = model_sources;
  data.last_txn_id = next_txn_ - 1;
  const uint64_t epoch = data.last_txn_id;
  if (epoch == epoch_ && fs_->Exists(SnapPath(epoch))) {
    return Status::Ok();  // nothing committed since the last checkpoint
  }

  // 2. Write + sync the image off to the side.
  std::string image;
  EncodeSnapshot(data, &image);
  const std::string tmp = dir_ + "/snap-tmp";
  std::unique_ptr<File> file;
  s = fs_->OpenAppend(tmp, /*truncate=*/true, &file);
  if (!s.ok()) return s;
  s = file->Append(image);
  if (s.ok()) s = file->Sync();
  if (s.ok()) s = file->Close();
  if (!s.ok()) {
    fs_->Remove(tmp);
    return s;
  }

  // 3. Read back and verify before touching anything the previous epoch
  // needs: a bit flip on the way down must not retire good state.
  std::string readback;
  s = fs_->ReadFile(tmp, &readback);
  if (s.ok()) {
    SnapshotData check;
    s = DecodeSnapshot(readback, &check);
  }
  if (!s.ok()) {
    fs_->Remove(tmp);
    return Status::Corruption("checkpoint verification failed (" +
                              s.message() + "); keeping previous epoch");
  }

  // 4. Publish.
  s = fs_->Rename(tmp, SnapPath(epoch));
  if (!s.ok()) return s;

  // 5. New epoch's WAL; retire everything older than the fallback epoch.
  const uint64_t old_epoch = epoch_;
  s = OpenWal(epoch, /*truncate=*/true);
  if (!s.ok()) return s;
  prev_epoch_ = old_epoch;
  RetireEpochsBefore(prev_epoch_);
  return Status::Ok();
}

void Store::RetireEpochsBefore(uint64_t keep_from) {
  std::vector<std::string> names;
  if (!fs_->List(dir_, &names).ok()) return;  // best-effort cleanup
  for (const std::string& name : names) {
    uint64_t epoch;
    if ((ParseEpochFile(name, "snap", &epoch) ||
         ParseEpochFile(name, "wal", &epoch)) &&
        epoch < keep_from) {
      fs_->Remove(dir_ + "/" + name);
    }
  }
}

Status Store::Flush() {
  if (!recovered_) return Status::Ok();
  return wal_->Flush();
}

}  // namespace rel::storage
