#include "storage/wal.h"

#include "base/crc32.h"
#include "data/serialize.h"

namespace rel::storage {

namespace {

// A record larger than this is assumed to be a corrupt length prefix, not a
// real record: one WAL record holds one tuple or one source string.
constexpr uint32_t kMaxRecordBytes = 64u << 20;

}  // namespace

WalRecord WalRecord::Fact(std::string name, Tuple tuple) {
  WalRecord rec;
  rec.type = WalRecordType::kFact;
  rec.name = std::move(name);
  rec.tuple = std::move(tuple);
  return rec;
}

WalRecord WalRecord::Retract(std::string name, Tuple tuple) {
  WalRecord rec;
  rec.type = WalRecordType::kRetract;
  rec.name = std::move(name);
  rec.tuple = std::move(tuple);
  return rec;
}

void EncodeWalRecord(const WalRecord& rec, std::string* out) {
  std::string payload;
  ByteWriter w(&payload);
  w.U8(static_cast<uint8_t>(rec.type));
  w.U64(rec.txn_id);
  switch (rec.type) {
    case WalRecordType::kBegin:
    case WalRecordType::kCommit:
      break;
    case WalRecordType::kFact:
    case WalRecordType::kRetract:
      w.Str(rec.name);
      EncodeTuple(&w, rec.tuple, /*table=*/nullptr);
      break;
    case WalRecordType::kDefine:
      w.Str(rec.source);
      break;
  }
  ByteWriter frame(out);
  frame.U32(static_cast<uint32_t>(payload.size()));
  frame.U32(Crc32(payload));
  out->append(payload);
}

namespace {

bool DecodePayload(std::string_view payload, WalRecord* rec) {
  ByteReader r(payload);
  uint8_t type;
  if (!r.U8(&type)) return false;
  if (!r.U64(&rec->txn_id)) return false;
  switch (static_cast<WalRecordType>(type)) {
    case WalRecordType::kBegin:
    case WalRecordType::kCommit:
      rec->type = static_cast<WalRecordType>(type);
      return r.done();
    case WalRecordType::kFact:
    case WalRecordType::kRetract: {
      rec->type = static_cast<WalRecordType>(type);
      std::string_view name;
      if (!r.Str(&name)) return false;
      rec->name = std::string(name);
      if (!DecodeTuple(&r, /*table=*/nullptr, &rec->tuple)) return false;
      return r.done();
    }
    case WalRecordType::kDefine: {
      rec->type = WalRecordType::kDefine;
      std::string_view source;
      if (!r.Str(&source)) return false;
      rec->source = std::string(source);
      return r.done();
    }
  }
  return false;
}

}  // namespace

WalReadResult ReadWal(std::string_view image) {
  WalReadResult result;
  size_t pos = 0;
  while (pos < image.size()) {
    ByteReader header(image.substr(pos));
    uint32_t len, crc;
    if (!header.U32(&len) || !header.U32(&crc)) {
      result.truncated = true;
      result.detail = "torn frame header at offset " + std::to_string(pos);
      break;
    }
    if (len > kMaxRecordBytes || image.size() - pos - 8 < len) {
      result.truncated = true;
      result.detail = "torn record at offset " + std::to_string(pos) +
                      " (length " + std::to_string(len) + ")";
      break;
    }
    std::string_view payload = image.substr(pos + 8, len);
    if (Crc32(payload) != crc) {
      result.truncated = true;
      result.detail = "crc mismatch at offset " + std::to_string(pos);
      break;
    }
    WalRecord rec;
    if (!DecodePayload(payload, &rec)) {
      result.truncated = true;
      result.detail = "undecodable record at offset " + std::to_string(pos);
      break;
    }
    result.records.push_back(std::move(rec));
    pos += 8 + len;
  }
  result.valid_bytes = pos;
  return result;
}

Status WalWriter::AppendRecord(const WalRecord& rec) {
  scratch_.clear();
  EncodeWalRecord(rec, &scratch_);
  return file_->Append(scratch_);
}

Status WalWriter::LogTransaction(uint64_t txn_id,
                                 const std::vector<WalRecord>& ops) {
  WalRecord begin;
  begin.type = WalRecordType::kBegin;
  begin.txn_id = txn_id;
  Status s = AppendRecord(begin);
  if (!s.ok()) return s;
  for (const WalRecord& op : ops) {
    WalRecord stamped = op;
    stamped.txn_id = txn_id;
    s = AppendRecord(stamped);
    if (!s.ok()) return s;
  }
  WalRecord commit;
  commit.type = WalRecordType::kCommit;
  commit.txn_id = txn_id;
  s = AppendRecord(commit);
  if (!s.ok()) return s;
  if (options_.fsync_on_commit) {
    if (++unsynced_commits_ >= options_.group_commit) {
      s = file_->Sync();
      if (!s.ok()) return s;
      unsynced_commits_ = 0;
    }
  }
  return Status::Ok();
}

Status WalWriter::LogDefine(uint64_t txn_id, const std::string& source) {
  WalRecord rec;
  rec.type = WalRecordType::kDefine;
  rec.txn_id = txn_id;
  rec.source = source;
  Status s = AppendRecord(rec);
  if (!s.ok()) return s;
  s = file_->Sync();
  if (!s.ok()) return s;
  unsynced_commits_ = 0;
  return Status::Ok();
}

Status WalWriter::Flush() {
  if (unsynced_commits_ == 0) return Status::Ok();
  Status s = file_->Sync();
  if (!s.ok()) return s;
  unsynced_commits_ = 0;
  return Status::Ok();
}

}  // namespace rel::storage
