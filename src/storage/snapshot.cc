#include "storage/snapshot.h"

#include "base/crc32.h"
#include "data/serialize.h"

namespace rel::storage {

namespace {

constexpr std::string_view kMagic = "RELSNAP1";
constexpr uint32_t kFormatVersion = 1;

}  // namespace

void EncodeSnapshot(const SnapshotData& data, std::string* out) {
  // The string table is discovered while encoding the database body, but
  // must precede it in the payload; encode the body to the side first.
  StringTable table;
  std::string body;
  {
    ByteWriter w(&body);
    EncodeDatabase(&w, data.db, &table);
  }

  std::string payload;
  ByteWriter w(&payload);
  w.U32(kFormatVersion);
  w.U64(data.last_txn_id);
  w.U32(static_cast<uint32_t>(data.model_sources.size()));
  for (const std::string& source : data.model_sources) w.Str(source);
  w.U32(static_cast<uint32_t>(table.strings().size()));
  for (std::string_view s : table.strings()) w.Str(s);
  payload.append(body);

  out->clear();
  out->append(kMagic);
  ByteWriter header(out);
  header.U32(Crc32(payload));
  out->append(payload);
}

Status DecodeSnapshot(std::string_view image, SnapshotData* out) {
  if (image.size() < kMagic.size() + 4 ||
      image.substr(0, kMagic.size()) != kMagic) {
    return Status::Corruption("snapshot: bad magic");
  }
  ByteReader header(image.substr(kMagic.size()));
  uint32_t crc;
  if (!header.U32(&crc)) return Status::Corruption("snapshot: torn header");
  std::string_view payload = image.substr(kMagic.size() + 4);
  if (Crc32(payload) != crc) {
    return Status::Corruption("snapshot: crc mismatch");
  }

  ByteReader r(payload);
  uint32_t version;
  if (!r.U32(&version) || version != kFormatVersion) {
    return Status::Corruption("snapshot: unsupported format version");
  }
  SnapshotData data;
  if (!r.U64(&data.last_txn_id)) {
    return Status::Corruption("snapshot: torn body");
  }
  uint32_t num_sources;
  if (!r.U32(&num_sources)) return Status::Corruption("snapshot: torn body");
  for (uint32_t i = 0; i < num_sources; ++i) {
    std::string_view s;
    if (!r.Str(&s)) return Status::Corruption("snapshot: torn model source");
    data.model_sources.emplace_back(s);
  }
  uint32_t num_strings;
  if (!r.U32(&num_strings)) return Status::Corruption("snapshot: torn body");
  std::vector<std::string> strings;
  strings.reserve(num_strings);
  for (uint32_t i = 0; i < num_strings; ++i) {
    std::string_view s;
    if (!r.Str(&s)) return Status::Corruption("snapshot: torn string table");
    strings.emplace_back(s);
  }
  if (!DecodeDatabase(&r, &strings, &data.db) || !r.done()) {
    return Status::Corruption("snapshot: undecodable database body");
  }
  *out = std::move(data);
  return Status::Ok();
}

}  // namespace rel::storage
