// Snapshot checkpoints: a full serialized image of the engine's durable
// state — the Database (every per-arity ColumnArena, column-major, rows in
// sorted order), the interned strings those columns reference (as a
// deduplicated string table re-interned on load), and the model sources
// (Define'd rules and integrity constraints, replayed through the parser
// on load so schema/IC state recovers with the data).
//
// File format:
//   "RELSNAP1" magic · [u32 crc32(payload)] · payload
//   payload = [u32 format version]
//             [u64 last_txn_id]
//             [u32 source count · inline strings]
//             [u32 string-table count · inline strings]
//             [database body, string values table-referenced]
// The CRC covers the whole payload, so any bit flip anywhere in the file is
// detected and the loader reports corruption instead of deserializing junk.

#ifndef REL_STORAGE_SNAPSHOT_H_
#define REL_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/error.h"
#include "data/database.h"

namespace rel::storage {

/// The durable state a snapshot captures.
struct SnapshotData {
  Database db;
  /// Rel sources installed via Engine::Define after the stdlib, in order.
  std::vector<std::string> model_sources;
  /// Id of the last committed transaction the snapshot includes.
  uint64_t last_txn_id = 0;
};

/// Serializes `data` into `out` (replacing its contents).
void EncodeSnapshot(const SnapshotData& data, std::string* out);

/// Decodes a snapshot image. Returns kCorruption when the magic, CRC or any
/// structural decode fails — the caller falls back to an older snapshot.
Status DecodeSnapshot(std::string_view image, SnapshotData* out);

}  // namespace rel::storage

#endif  // REL_STORAGE_SNAPSHOT_H_
