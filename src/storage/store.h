// Store: the durability orchestrator the Engine talks to.
//
// Directory layout (one store = one directory):
//   wal-<E>    the write-ahead log of epoch E
//   snap-<E>   snapshot covering all transactions with id <= E
//   snap-tmp   an in-flight checkpoint (never read by recovery)
// An epoch is opened by the checkpoint that wrote snap-<E>; epoch 0 has no
// snapshot (the store starts as just wal-0). The current and the previous
// epoch's files are retained so recovery can fall back one epoch if the
// newest snapshot turns out to be unreadable; older epochs are deleted.
//
// Checkpoint protocol (crash-safe at every step):
//   1. flush the current WAL (buffered group commits become durable);
//   2. write the snapshot to snap-tmp, sync it;
//   3. read snap-tmp back and decode it — a write-time bit flip is caught
//      here, while the previous epoch is still intact;
//   4. rename snap-tmp -> snap-<E> (atomic publish);
//   5. start wal-<E> and retire epochs older than the previous one.
// A failure at any step leaves the previous epoch's snapshot + WAL valid
// and the store still appending to them: checkpointing degrades, data
// survives.
//
// Recovery picks the newest epoch whose snapshot decodes (falling back to
// older ones on corruption), replays that epoch's WAL tail — complete
// begin..commit groups only, stopping at the first torn or corrupt record —
// and reports exactly what it did (snapshot epoch, transactions replayed,
// truncation point) instead of throwing.

#ifndef REL_STORAGE_STORE_H_
#define REL_STORAGE_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/error.h"
#include "storage/file.h"
#include "storage/snapshot.h"
#include "storage/wal.h"

namespace rel::storage {

struct DurabilityOptions {
  /// Sync the WAL when a commit record is written. Off trades durability of
  /// the newest transactions for commit latency (crash loses the unsynced
  /// tail, never atomicity).
  bool fsync_on_commit = true;
  /// Sync every Nth commit instead of every one (group commit).
  int group_commit = 1;
};

/// What Recover() found and did. Degradation is reported, not thrown:
/// a non-ok `status` means the store is unusable (directory unreadable,
/// WAL unopenable); everything else — missing snapshot, truncated WAL —
/// recovers to the best consistent prefix and says so here.
struct RecoveryReport {
  Status status;
  uint64_t snapshot_txn = 0;    ///< last txn covered by the loaded snapshot
  uint64_t replayed_txns = 0;   ///< committed txns replayed from the WAL
  uint64_t recovered_txns = 0;  ///< snapshot_txn + replayed (total restored)
  bool wal_truncated = false;   ///< WAL tail was torn or corrupt
  uint64_t truncated_at = 0;    ///< byte offset where WAL trust ended
  std::string detail;           ///< human-readable notes (fallbacks, tears)
};

/// One durable directory. Single-writer: the owning Engine serializes all
/// calls (see ARCHITECTURE.md's threading model).
class Store {
 public:
  Store(std::shared_ptr<FileSystem> fs, std::string dir,
        DurabilityOptions options);

  /// Loads the newest valid snapshot and replays the WAL tail into `out`
  /// (left empty for a fresh directory), then opens the WAL for appending.
  /// Must be called exactly once, before any logging.
  RecoveryReport Recover(SnapshotData* out);

  /// The id the next committed transaction will carry.
  uint64_t next_txn_id() const { return next_txn_; }

  /// Logs one committed transaction (ops are kFact/kRetract records; the
  /// begin/commit envelope and txn id stamping happen here). Returns the
  /// assigned txn id via `*txn_id`. On failure the transaction is not
  /// durable and the caller must roll back its in-memory effects.
  Status LogTransaction(const std::vector<WalRecord>& ops, uint64_t* txn_id);

  /// Logs a model change (always synced).
  Status LogDefine(const std::string& source);

  /// Runs the checkpoint protocol over the given state. `model_sources`
  /// must be the full post-stdlib Define history.
  Status Checkpoint(const Database& db,
                    const std::vector<std::string>& model_sources);

  /// Syncs any group-commit tail.
  Status Flush();

 private:
  std::string WalPath(uint64_t epoch) const;
  std::string SnapPath(uint64_t epoch) const;
  Status OpenWal(uint64_t epoch, bool truncate);
  /// Deletes snap-/wal- files of epochs older than `keep_from`.
  void RetireEpochsBefore(uint64_t keep_from);

  std::shared_ptr<FileSystem> fs_;
  std::string dir_;
  DurabilityOptions options_;
  std::unique_ptr<WalWriter> wal_;
  uint64_t epoch_ = 0;       // epoch of the WAL currently appended to
  uint64_t prev_epoch_ = 0;  // retained fallback epoch
  uint64_t next_txn_ = 1;
  bool recovered_ = false;
};

}  // namespace rel::storage

#endif  // REL_STORAGE_STORE_H_
