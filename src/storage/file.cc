#include "storage/file.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace rel::storage {

namespace {

Status Errno(const std::string& op, const std::string& path) {
  return Status::IoError(op + " " + path + ": " + std::strerror(errno));
}

// --- POSIX -------------------------------------------------------------------

class PosixFile : public File {
 public:
  PosixFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  ~PosixFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    if (fd_ < 0) return Status::IoError("append to closed file " + path_);
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Errno("write", path_);
      }
      p += n;
      left -= static_cast<size_t>(n);
    }
    return Status::Ok();
  }

  Status Sync() override {
    if (fd_ < 0) return Status::IoError("sync of closed file " + path_);
    if (::fsync(fd_) != 0) return Errno("fsync", path_);
    return Status::Ok();
  }

  Status Close() override {
    if (fd_ < 0) return Status::Ok();
    int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return Errno("close", path_);
    return Status::Ok();
  }

 private:
  int fd_;
  std::string path_;
};

}  // namespace

Status PosixFileSystem::OpenAppend(const std::string& path, bool truncate,
                                   std::unique_ptr<File>* out) {
  int flags = O_CREAT | O_WRONLY | O_APPEND | (truncate ? O_TRUNC : 0);
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) return Errno("open", path);
  *out = std::make_unique<PosixFile>(fd, path);
  return Status::Ok();
}

Status PosixFileSystem::ReadFile(const std::string& path, std::string* out) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Errno("open", path);
  out->clear();
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      Status s = Errno("read", path);
      ::close(fd);
      return s;
    }
    if (n == 0) break;
    out->append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return Status::Ok();
}

Status PosixFileSystem::Rename(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) return Errno("rename", from);
  return Status::Ok();
}

Status PosixFileSystem::Remove(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Errno("unlink", path);
  }
  return Status::Ok();
}

Status PosixFileSystem::List(const std::string& dir,
                             std::vector<std::string>* names) {
  names->clear();
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return Errno("opendir", dir);
  while (struct dirent* e = ::readdir(d)) {
    std::string name = e->d_name;
    if (name == "." || name == "..") continue;
    names->push_back(std::move(name));
  }
  ::closedir(d);
  std::sort(names->begin(), names->end());
  return Status::Ok();
}

Status PosixFileSystem::CreateDir(const std::string& dir) {
  // mkdir -p: create each prefix, tolerating ones that already exist.
  for (size_t i = 1; i <= dir.size(); ++i) {
    if (i != dir.size() && dir[i] != '/') continue;
    std::string prefix = dir.substr(0, i);
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return Errno("mkdir", prefix);
    }
  }
  return Status::Ok();
}

bool PosixFileSystem::Exists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

// --- in-memory + fault injection ---------------------------------------------

// At namespace scope (not file-local) so the friend declaration in
// MemFileSystem matches.
class MemFile : public File {
 public:
  MemFile(MemFileSystem* fs, std::string path)
      : fs_(fs), path_(std::move(path)) {}

  Status Append(std::string_view data) override;
  Status Sync() override;
  Status Close() override { return Status::Ok(); }

 private:
  MemFileSystem* fs_;
  std::string path_;
};

MemFileSystem::MemFileSystem(std::map<std::string, std::string> files) {
  for (auto& [path, data] : files) {
    Entry entry;
    entry.synced = data.size();  // a restored image is durable by definition
    entry.data = std::move(data);
    files_.emplace(path, std::move(entry));
  }
}

Status MemFileSystem::ApplyWrite(Entry* entry, std::string_view data) {
  if (device_failed_) return Status::IoError("device failed (injected)");
  ++write_count_;
  const bool hit = plan_.kind != FaultPlan::Kind::kNone && !fault_fired_ &&
                   write_count_ == plan_.at_write;
  if (!hit) {
    entry->data.append(data.data(), data.size());
    return Status::Ok();
  }
  fault_fired_ = true;
  switch (plan_.kind) {
    case FaultPlan::Kind::kNone:
      break;
    case FaultPlan::Kind::kFailWrite:
      device_failed_ = true;
      return Status::IoError("write failed (injected fault)");
    case FaultPlan::Kind::kTornWrite: {
      size_t keep = plan_.offset != 0
                        ? std::min<size_t>(plan_.offset, data.size())
                        : data.size() / 2;
      entry->data.append(data.data(), keep);
      device_failed_ = true;
      return Status::IoError("torn write (injected fault)");
    }
    case FaultPlan::Kind::kBitFlip: {
      std::string corrupted(data);
      if (!corrupted.empty()) {
        corrupted[plan_.offset % corrupted.size()] ^=
            static_cast<char>(plan_.flip_mask);
      }
      entry->data.append(corrupted);
      return Status::Ok();  // silent corruption: the writer never knows
    }
  }
  return Status::Ok();
}

Status MemFile::Append(std::string_view data) {
  std::lock_guard<std::mutex> lock(fs_->mu_);
  return fs_->ApplyWrite(&fs_->files_[path_], data);
}

Status MemFile::Sync() {
  std::lock_guard<std::mutex> lock(fs_->mu_);
  if (fs_->device_failed_) return Status::IoError("device failed (injected)");
  auto it = fs_->files_.find(path_);
  if (it != fs_->files_.end()) it->second.synced = it->second.data.size();
  return Status::Ok();
}

Status MemFileSystem::OpenAppend(const std::string& path, bool truncate,
                                 std::unique_ptr<File>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (device_failed_) return Status::IoError("device failed (injected)");
  Entry& entry = files_[path];
  if (truncate) {
    entry.data.clear();
    entry.synced = 0;
  }
  *out = std::make_unique<MemFile>(this, path);
  return Status::Ok();
}

Status MemFileSystem::ReadFile(const std::string& path, std::string* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::IoError("no such file: " + path);
  *out = it->second.data;
  return Status::Ok();
}

Status MemFileSystem::Rename(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  if (device_failed_) return Status::IoError("device failed (injected)");
  auto it = files_.find(from);
  if (it == files_.end()) return Status::IoError("no such file: " + from);
  files_[to] = std::move(it->second);
  files_.erase(it);
  return Status::Ok();
}

Status MemFileSystem::Remove(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (device_failed_) return Status::IoError("device failed (injected)");
  files_.erase(path);
  return Status::Ok();
}

Status MemFileSystem::List(const std::string& dir,
                           std::vector<std::string>* names) {
  std::lock_guard<std::mutex> lock(mu_);
  names->clear();
  std::string prefix = dir;
  if (!prefix.empty() && prefix.back() != '/') prefix += '/';
  for (const auto& [path, entry] : files_) {
    (void)entry;
    if (path.size() <= prefix.size() || path.compare(0, prefix.size(), prefix))
      continue;
    std::string rest = path.substr(prefix.size());
    if (rest.find('/') == std::string::npos) names->push_back(std::move(rest));
  }
  return Status::Ok();
}

Status MemFileSystem::CreateDir(const std::string& dir) {
  (void)dir;  // directories are implicit in the path map
  return Status::Ok();
}

bool MemFileSystem::Exists(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(path) > 0;
}

void MemFileSystem::SetFault(FaultPlan plan) {
  std::lock_guard<std::mutex> lock(mu_);
  plan_ = plan;
  write_count_ = 0;
  fault_fired_ = false;
  device_failed_ = false;
}

uint64_t MemFileSystem::writes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return write_count_;
}

bool MemFileSystem::fault_fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fault_fired_;
}

std::map<std::string, std::string> MemFileSystem::FilesAsIs() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, std::string> out;
  for (const auto& [path, entry] : files_) out[path] = entry.data;
  return out;
}

std::map<std::string, std::string> MemFileSystem::FilesSynced() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, std::string> out;
  for (const auto& [path, entry] : files_) {
    out[path] = entry.data.substr(0, entry.synced);
  }
  return out;
}

}  // namespace rel::storage
