// Magic-set demand transformation: rewrite a Datalog program so that its
// fixpoint derives only the cone of tuples relevant to one query goal,
// instead of the full closure of every predicate.
//
// Given a goal atom with a binding pattern — say `tc(0, Y)`, i.e. predicate
// `tc` adorned `bf` (first position bound, second free) — the transform
// produces, for every (predicate, adornment) pair reachable from the goal:
//
//   * a *magic predicate* `m@p@a` holding the bound-position values the
//     evaluation actually demands of `p` under adornment `a` (seeded with
//     the goal's constants),
//   * *adorned rule* variants `p@a(...) :- m@p@a(bound...), body...` — the
//     original rules guarded by the magic predicate, so a rule only fires
//     for demanded bindings, and
//   * *magic rules* that propagate demand sideways: for each IDB atom
//     occurrence in a rule body, the bindings available at that point (the
//     enclosing magic guard plus the prefix of the body already evaluated)
//     derive the magic facts of that atom's adornment.
//
// Adornments are computed by a left-to-right sideways-information-passing
// walk: a position is bound when it is a constant or a variable bound by
// the head's bound positions, an earlier positive atom, or an earlier
// arithmetic assignment whose operands are bound. (Equality filters are
// conservatively not treated as binding — fewer bound positions only widen
// the demanded cone, never break it.)
//
// The rewrite is always *sound and complete for the goal*: the transformed
// program's goal extent, restricted to the goal's bound constants, equals
// the goal-filtered full fixpoint — pinned by tests/datalog/magic_test.cc
// across strategies and thread counts. Fragments the transform does not
// chase are evaluated from their ORIGINAL rules instead of being adorned
// (correct, merely un-pruned):
//
//   * predicates referenced under negation (and, transitively, everything
//     their rules depend on) — negation needs the complete extent, and
//     keeping these un-adorned also keeps the transformed program
//     stratified whenever the source program is;
//   * predicates demanded with an all-free adornment at some occurrence —
//     full demand is full evaluation.
//
// An all-free goal (no bound position) degenerates to the identity: the
// original program evaluates unchanged. The driver is
// EvalOptions::demand_goal in datalog/eval.h; the Rel engine reaches this
// through Interp::EvalInstanceDemand (src/core/interp.h) when a recursive
// component is queried with bound arguments.

#ifndef REL_DATALOG_MAGIC_H_
#define REL_DATALOG_MAGIC_H_

#include <string>
#include <vector>

#include "datalog/program.h"

namespace rel {
namespace datalog {

/// The result of MagicTransform.
struct MagicProgram {
  /// The rewritten program. Empty when !transformed — evaluate the
  /// original program instead (the identity rewrite is not materialized,
  /// so an all-free goal never pays an EDB copy).
  Program program;
  /// The predicate whose extent holds the goal's answers: the goal's
  /// adorned name when transformed, the original name otherwise. Restrict
  /// it to the goal's bound constants (FilterByPattern) to get exactly the
  /// goal-filtered fixpoint.
  std::string goal_pred;
  /// False when the rewrite degenerated to the identity (all-free goal,
  /// goal predicate without rules, or goal inside the kept-original set).
  bool transformed = false;
  /// Rules specialized to an adornment, including the fact-copy rules that
  /// splice a predicate's EDB facts into its adorned extent.
  int adorned_rules = 0;
  /// Demand-propagation rules deriving magic predicates.
  int magic_rules = 0;
  /// Every magic predicate name (for EvalStats::magic_facts accounting).
  std::vector<std::string> magic_preds;
};

/// Rewrites `program` for `goal`. Pure function of its inputs; the returned
/// program shares no state with the input. The goal's pattern length fixes
/// the goal arity — rules of other arities for the same predicate cannot
/// produce goal answers and are not chased.
MagicProgram MagicTransform(const Program& program, const DemandGoal& goal);

/// The tuples of `extent` with the pattern's arity whose bound positions
/// equal the pattern's constants (type-exact Value equality — the same
/// matching the evaluator's constant-probe path uses).
Relation FilterByPattern(const Relation& extent,
                         const std::vector<std::optional<Value>>& pattern);

/// The adorned / magic predicate names the transform generates. Exposed so
/// tests and stats can recognize them; '@' cannot occur in source-level
/// predicate names, so the namespaces never collide.
std::string AdornedName(const std::string& pred, const std::string& adornment);
std::string MagicName(const std::string& pred, const std::string& adornment);

}  // namespace datalog
}  // namespace rel

#endif  // REL_DATALOG_MAGIC_H_
