// Bottom-up evaluation for the classical Datalog engine: stratified negation,
// naive or semi-naive iteration, planned indexed joins.
//
// Evaluation design (the fast path, Strategy::kSemiNaive):
//
//   * Planning. For every (rule, delta-occurrence) pair the evaluator builds
//     a join plan once per stratum. The forced delta atom (if any) is placed
//     first; the remaining positive literals are ordered greedily by number
//     of bound columns (descending) with estimated cardinality as the
//     tie-break — sideways information passing. Comparisons, assignments and
//     negations are hoisted to the earliest point at which their variables
//     are bound, so they prune the join as soon as possible. Safety (range
//     restriction) is checked at plan time.
//
//   * Indexed access paths. Every positive literal with at least one bound
//     column is evaluated by probing a generalized hash index mapping
//     (predicate, arity, bound-position set) -> rows, built lazily per
//     fixpoint round by an IndexCache (src/datalog/index.h) and shared
//     across rules. Only leading all-free atoms and delta atoms are scanned.
//
//   * Worst-case optimal routing. Rules whose bodies are pure all-variable
//     conjunctions of two or more atoms (triangle-style self-joins) are
//     routed through joins::LeapfrogJoin; column-permuted sorted copies are
//     materialized where an atom's column order disagrees with the global
//     variable order, so the triejoin precondition always holds.
//
//   * Parallel evaluation. With EvalOptions::num_threads > 1 the indexed
//     strategy runs on a work-stealing ThreadPool (src/base/thread_pool.h).
//     Rules are grouped into *units* — the strongly-connected recursion
//     components of the predicate dependency graph, one fixpoint loop each —
//     and units with no dependency path between them evaluate concurrently
//     (the stratum DAG). Within a unit's round, every (rule, delta-atom)
//     plan is a task, and large driver scans split into row-range chunks.
//     Tasks emit through the span-based scratch path into per-thread
//     staging relations; at the round barrier the staging buffers are
//     deduplicated and merged into the canonical extents. Relations and
//     hash indexes therefore stay single-writer — reads during a round are
//     lock-free and the computed extents equal the sequential ones exactly
//     (every sorted view renders byte-identically; only the *unspecified*
//     insertion order seen by unsorted iteration like ForEach may vary
//     with scheduling).
//
//   * Recursive aggregation. Rules with an aggregate head (min/max/sum/
//     count over group-by columns; program.h Aggregate) run inside the same
//     fixpoint loops: each body match contributes a (witness..., value) row
//     to its group's set-deduplicated bucket, dirty groups refold at the
//     round barrier, and a changed (group..., result) row replaces the old
//     extent row and enters the next delta — monotone aggregate *updates*
//     instead of set union. Recursive min/max rules must be statically
//     monotone (a taint analysis over the aggregated value's dataflow);
//     recursive sum/count must be level-stratified, enforced dynamically (a
//     contribution reaching a group after the group first emitted throws
//     kType). Stratified-position aggregates are the degenerate
//     non-recursive case. Aggregate programs are refused by the magic-set
//     transform (demand goals fall back to full evaluation + goal filter)
//     and by EvaluateDelta (supported=false; callers recompute).
//
// The nested-loop scan evaluator is retained behind Strategy::kNaive and
// Strategy::kSemiNaiveScan as an ablation baseline for benchmarks; both
// always run sequentially.
//
// Intended semantic differences, both consequences of the scan strategies
// evaluating body literals in syntactic order:
//
//   * Safety. A comparison/negation written before the atom that binds its
//     variables throws kSafety under the scan strategies; the planned
//     strategy is order-independent and accepts every rule that is safe
//     under SOME literal order.
//
//   * Mixed int/float equality. When `V = c` appears syntactically before
//     the atom or assignment that produces V, the scan strategies bind V
//     to c and later compare type-exactly (Int 5 != Float 5.0); the
//     planned strategy always evaluates such equalities as numeric-tolerant
//     filters after V is produced, matching what the scan strategies do
//     when the equality is written after the producer. On programs whose
//     values are consistently typed (or whose equalities follow their
//     producers) all strategies agree.

#ifndef REL_DATALOG_EVAL_H_
#define REL_DATALOG_EVAL_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "datalog/program.h"

namespace rel {
namespace datalog {

class IndexCache;  // datalog/index.h

/// Evaluation strategy. kSemiNaive (the default) uses planned, indexed
/// joins; the other two are scan-based ablation baselines for benchmarks:
/// kNaive re-derives everything each round, kSemiNaiveScan is the pre-index
/// semi-naive nested-loop evaluator.
enum class Strategy { kNaive, kSemiNaive, kSemiNaiveScan };

/// Evaluation options.
struct EvalOptions {
  Strategy strategy = Strategy::kSemiNaive;
  /// Worker threads for the indexed strategy. 1 (the default) evaluates on
  /// the calling thread with zero pool overhead; 0 means one worker per
  /// hardware thread. The scan ablation strategies ignore this and always
  /// run sequentially. The computed extents are identical for every value
  /// (unsorted iteration order, unspecified by contract, is the one thing
  /// that may differ).
  int num_threads = 1;
  /// Cap on fixpoint rounds per recursion unit; 0 means unbounded. Pure
  /// Datalog over a finite EDB always terminates, but arithmetic
  /// assignments can generate fresh values forever (n(X) :- n(Y), X = Y+1),
  /// so callers embedding this evaluator — notably the Rel engine's
  /// recursion lowering, which inherits InterpOptions::max_iterations here —
  /// need the same guard the Rel interpreter has. Exceeding the cap throws
  /// kNonConvergent naming the unit's head predicates.
  int max_iterations = 0;
  /// Deterministic join-order override for the planned strategy. 0 (the
  /// default) keeps the production order — greedy by bound-column count
  /// with estimated cardinality as tie-break. Any other value permutes the
  /// positive-atom order of every plan pseudo-randomly instead (seeded per
  /// (rule, delta occurrence) so the permutation is reproducible across
  /// runs and platforms) and bypasses the leapfrog routing, so rules that
  /// would take the worst-case-optimal path run through ordinary binary
  /// join pipelines as well. Every seed computes the identical fixpoint,
  /// the same number of rounds, and the same tuples_derived (the count of
  /// satisfying body assignments is order-independent); only the access-
  /// path counters (index_probes, driver_scans, index_builds) may differ.
  /// The equivalent-query fuzzer (src/fuzz) sweeps this knob to
  /// differential-test the planner; the scan strategies ignore it.
  uint64_t plan_order_seed = 0;
  /// Demand-driven evaluation: when set, the program is rewritten by the
  /// magic-set transform (datalog/magic.h) before unit scheduling, so the
  /// fixpoint derives only the cone relevant to this goal. The returned
  /// extent map holds, under the goal's predicate name, exactly the
  /// goal-filtered answers (byte-identical to filtering the full fixpoint
  /// by the bound constants); the adorned and magic predicates appear under
  /// their internal '@'-names for inspection. An all-free pattern is a
  /// no-op (the transform degenerates to the identity). Works under every
  /// strategy and thread count.
  std::optional<DemandGoal> demand_goal;
};

/// Evaluation statistics (exposed for benchmarks and tests). Under parallel
/// evaluation every counter is aggregated across threads at barriers — a
/// single coherent total, never a per-thread interleaving. tuples_derived,
/// index_builds, sorted_builds, index_probes and leapfrog_joins are
/// identical across num_threads values; driver_scans/delta_scans count one
/// scan per *chunk task*, so they scale with the chunking factor.
struct EvalStats {
  int strata = 0;               // numeric strata (negation depth + 1)
  int units = 0;                // recursion components scheduled on the DAG
  int threads = 1;              // workers the evaluation actually used
  int iterations = 0;           // total fixpoint iterations across units
  uint64_t tuples_derived = 0;  // insertions attempted (incl. duplicates)
  uint64_t index_builds = 0;    // hash indexes fully (re)built by the cache
  uint64_t index_appends = 0;   // hash indexes extended in place after
                                // provably append-only arena growth (the
                                // incremental fast path; a fresh evaluation
                                // with a fresh cache never takes it)
  uint64_t sorted_builds = 0;   // column-permuted sorted copies (re)built
                                // by the cache for LeapfrogJoin
  uint64_t index_probes = 0;    // indexed lookups of bound-column literals
  uint64_t full_scans = 0;      // bound-column literals evaluated by scan
                                // (always 0 under the indexed strategy)
  uint64_t driver_scans = 0;    // unavoidable scans of all-free leading atoms
  uint64_t delta_scans = 0;     // scans of the semi-naive delta occurrence
  uint64_t leapfrog_joins = 0;  // rules routed through LeapfrogJoin
  // Aggregation (rules with an aggregate head; 0 otherwise). Both counters
  // are deterministic across strategies in the semi-naive family and across
  // thread counts: contributions are set-deduplicated before counting and
  // groups refold at round barriers.
  uint64_t aggregate_updates = 0;  // distinct contribution rows added to
                                   // group buckets across all rounds
  uint64_t groups_improved = 0;    // group result rows created or replaced
                                   // at round barriers (a group that refolds
                                   // to its previous value counts 0)
  uint64_t par_tasks = 0;       // pool tasks executed (0 when sequential)
  uint64_t par_steals = 0;      // tasks taken from another worker's queue
  uint64_t par_merges = 0;      // staging relations merged at round barriers
  // Incremental maintenance (EvaluateDelta only; all 0 under Evaluate):
  uint64_t delta_inserts = 0;   // tuples newly added to maintained extents
  uint64_t delta_deletes = 0;   // tuples removed from maintained extents
                                // (over-deleted tuples that survived
                                // re-derivation are in neither counter)
  uint64_t rederived = 0;       // over-deleted tuples restored by the DRed
                                // re-derivation phase
  // Demand transformation (all 0 unless EvalOptions::demand_goal is set
  // and the rewrite actually fired; set once at the top level, like strata):
  int adorned_rules = 0;        // rule variants specialized to an adornment
  int magic_rules = 0;          // demand-propagation rules generated
  uint64_t magic_facts = 0;     // demand tuples in magic extents at fixpoint

  /// One stable line per field, deterministic order — safe to print and
  /// diff regardless of how many threads produced the numbers.
  std::string ToString() const;
};

/// Evaluates `program` to a fixpoint and returns all predicate extents.
/// Throws kSafety if a rule is not range-restricted and kType if the
/// program cannot be stratified.
std::map<std::string, Relation> Evaluate(const Program& program,
                                         const EvalOptions& options,
                                         EvalStats* stats = nullptr);

/// Strategy-only overload. num_threads comes from the REL_EVAL_THREADS
/// environment variable when set (how CI runs the whole suite under TSan
/// with a parallel evaluator), else 1.
std::map<std::string, Relation> Evaluate(const Program& program,
                                         Strategy strategy,
                                         EvalStats* stats = nullptr);

/// A set-semantics update to the EDB, already split into effect-free parts:
/// `inserts` holds tuples absent from the pre-update EDB, `deletes` tuples
/// present in it (callers cancel insert-then-delete pairs; Engine builds
/// this from Database mutation results). Predicates not mentioned are
/// unchanged.
struct EdbDelta {
  std::map<std::string, Relation> inserts;
  std::map<std::string, Relation> deletes;
  bool empty() const;
};

/// Outcome of EvaluateDelta. When `supported` is false the extents were
/// left untouched and the caller must fall back to a full Evaluate;
/// `unsupported_reason` says why (for logs and tests).
struct DeltaResult {
  bool supported = true;
  std::string unsupported_reason;
};

/// Incrementally maintains a previously computed fixpoint under an EDB
/// delta, in place:
///
///   * `extents` holds the full fixpoint of `program` over the *pre-update*
///     EDB (exactly what Evaluate returned, including the EDB predicates'
///     own extents). On success it is mutated to the fixpoint over the
///     post-update EDB — byte-identical (per SortedTuples) to re-running
///     Evaluate from scratch under any strategy and thread count.
///   * `program.facts()` is ignored; `base_facts` must instead hold the
///     post-update EDB extents of every predicate that is BOTH a rule head
///     and an EDB fact carrier (their base tuples are not derivable and the
///     delete path needs to know they survive). Pure-EDB predicates need
///     no entry — their extents are maintained directly from the delta.
///
/// Inserts resume semi-naive evaluation with the inserted tuples as the
/// delta against the cached fixpoint, reusing the planned, indexed,
/// parallel machinery (options.num_threads honored). Deletes run DRed:
/// over-delete everything derivable from a deleted tuple, then re-derive
/// what has an alternative proof (point probes with pre-bound head
/// variables); the delete phases run sequentially — deletions shrink cones,
/// they are never the bulk cost. Unsupported shapes — a negative literal
/// on a predicate transitively affected by the delta, or a demand_goal in
/// `options` — return supported=false without touching anything.
/// options.strategy is ignored (the planned engine is the only maintained
/// path). Pass a persistent `cache` keyed to these extents to amortize
/// index builds across updates (indexes extend in place on append-only
/// growth; see index_appends).
DeltaResult EvaluateDelta(const Program& program,
                          const std::map<std::string, Relation>& base_facts,
                          const EdbDelta& delta,
                          std::map<std::string, Relation>* extents,
                          const EvalOptions& options = {},
                          EvalStats* stats = nullptr,
                          IndexCache* cache = nullptr);

/// Convenience: evaluates and returns one predicate's extent.
Relation EvaluatePredicate(const Program& program, const std::string& pred,
                           const EvalOptions& options, EvalStats* stats = nullptr);
Relation EvaluatePredicate(const Program& program, const std::string& pred,
                           Strategy strategy = Strategy::kSemiNaive,
                           EvalStats* stats = nullptr);

}  // namespace datalog
}  // namespace rel

#endif  // REL_DATALOG_EVAL_H_
