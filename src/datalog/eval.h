// Bottom-up evaluation for the classical Datalog engine: stratified negation,
// naive or semi-naive iteration, set-at-a-time joins with hash indexes.

#ifndef REL_DATALOG_EVAL_H_
#define REL_DATALOG_EVAL_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "datalog/program.h"

namespace rel {
namespace datalog {

/// Evaluation strategy; naive exists for the ablation benchmark.
enum class Strategy { kNaive, kSemiNaive };

/// Evaluation statistics (exposed for benchmarks and tests).
struct EvalStats {
  int strata = 0;
  int iterations = 0;        // total fixpoint iterations across strata
  uint64_t tuples_derived = 0;  // insertions attempted (incl. duplicates)
};

/// Evaluates `program` to a fixpoint and returns all predicate extents.
/// Throws kSafety if a rule is not range-restricted and kType if the
/// program cannot be stratified.
std::map<std::string, Relation> Evaluate(const Program& program,
                                         Strategy strategy,
                                         EvalStats* stats = nullptr);

/// Convenience: evaluates and returns one predicate's extent.
Relation EvaluatePredicate(const Program& program, const std::string& pred,
                           Strategy strategy = Strategy::kSemiNaive,
                           EvalStats* stats = nullptr);

}  // namespace datalog
}  // namespace rel

#endif  // REL_DATALOG_EVAL_H_
