#include "datalog/magic.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <utility>

namespace rel {
namespace datalog {

namespace {

int MaxVarOf(const Rule& rule) {
  int max_var = -1;
  auto scan_atom = [&max_var](const Atom& atom) {
    for (const Term& t : atom.terms) {
      if (t.is_var()) max_var = std::max(max_var, t.var);
    }
  };
  scan_atom(rule.head);
  for (const Literal& lit : rule.body) {
    scan_atom(lit.atom);
    if (lit.lhs.is_var()) max_var = std::max(max_var, lit.lhs.var);
    if (lit.rhs.is_var()) max_var = std::max(max_var, lit.rhs.var);
    max_var = std::max(max_var, lit.target);
  }
  return max_var;
}

bool SameTerm(const Term& a, const Term& b) {
  if (a.is_var() != b.is_var()) return false;
  if (a.is_var()) return a.var == b.var;
  return a.constant == b.constant;
}

bool SameAtom(const Atom& a, const Atom& b) {
  if (a.pred != b.pred || a.terms.size() != b.terms.size()) return false;
  for (size_t i = 0; i < a.terms.size(); ++i) {
    if (!SameTerm(a.terms[i], b.terms[i])) return false;
  }
  return true;
}

/// The whole transform state for one MagicTransform call.
class Transformer {
 public:
  Transformer(const Program& program, const DemandGoal& goal)
      : program_(program), goal_(goal) {
    for (const Rule& rule : program.rules()) {
      rules_of_[rule.head.pred].push_back(&rule);
    }
    for (const auto& p : goal.pattern) {
      goal_ad_ += p.has_value() ? 'b' : 'f';
    }
  }

  MagicProgram Run() {
    if (!goal_.AnyBound() || rules_of_.count(goal_.pred) == 0) {
      return Identity();
    }

    // Predicates that must keep their original (un-adorned) rules: anything
    // referenced under negation, transitively closed over rule bodies, plus
    // — discovered by dry walks — anything demanded all-free somewhere in
    // the cone. The walk's adornments depend on this set (kept atoms are
    // not chased), so iterate to a fixpoint; the set only grows, bounded by
    // the number of IDB predicates.
    for (const Rule& rule : program_.rules()) {
      for (const Literal& lit : rule.body) {
        if (lit.kind == Literal::Kind::kNegative &&
            rules_of_.count(lit.atom.pred)) {
          AddKeepClosure(lit.atom.pred);
        }
      }
    }
    for (;;) {
      if (keep_.count(goal_.pred)) return Identity();
      MagicProgram scratch;
      std::set<std::string> grow;
      Walk(&scratch, &grow);
      if (grow.empty()) break;
      for (const std::string& p : grow) AddKeepClosure(p);
    }

    MagicProgram out;
    Walk(&out, nullptr);
    // Original rules of the kept predicates that the cone references.
    std::set<std::string> copied;
    while (!needed_.empty()) {
      std::string p = *needed_.begin();
      needed_.erase(needed_.begin());
      if (!copied.insert(p).second) continue;
      auto it = rules_of_.find(p);
      if (it == rules_of_.end()) continue;
      for (const Rule* rule : it->second) {
        out.program.AddRule(*rule);
        for (const Literal& lit : rule->body) {
          if ((lit.kind == Literal::Kind::kPositive ||
               lit.kind == Literal::Kind::kNegative) &&
              rules_of_.count(lit.atom.pred) && !copied.count(lit.atom.pred)) {
            needed_.insert(lit.atom.pred);
          }
        }
      }
    }
    // Every EDB fact carries over: adorned rules read base extents under
    // their original names (fact-copy rules splice IDB predicates' facts
    // into the adorned extents).
    for (const auto& [pred, facts] : program_.facts()) {
      out.program.AddFacts(pred, facts);
    }
    // Seed: the goal's own demand.
    Tuple seed;
    for (const auto& p : goal_.pattern) {
      if (p.has_value()) seed.Append(*p);
    }
    out.program.AddFact(MagicName(goal_.pred, goal_ad_), std::move(seed));

    out.goal_pred = AdornedName(goal_.pred, goal_ad_);
    out.transformed = true;
    return out;
  }

 private:
  MagicProgram Identity() const {
    // `program` stays empty: callers evaluate the ORIGINAL program when
    // !transformed, so the identity path never pays an EDB deep copy.
    MagicProgram out;
    out.goal_pred = goal_.pred;
    out.transformed = false;
    return out;
  }

  void AddKeepClosure(const std::string& pred) {
    std::deque<std::string> work{pred};
    while (!work.empty()) {
      std::string p = work.front();
      work.pop_front();
      auto it = rules_of_.find(p);
      if (it == rules_of_.end() || !keep_.insert(p).second) continue;
      for (const Rule* rule : it->second) {
        for (const Literal& lit : rule->body) {
          if (lit.kind == Literal::Kind::kPositive ||
              lit.kind == Literal::Kind::kNegative) {
            work.push_back(lit.atom.pred);
          }
        }
      }
    }
  }

  /// One pass over the demanded cone. With `grow` non-null this is a dry
  /// run under the current keep set: all-free IDB occurrences land in
  /// `grow` (the keep fixpoint's next additions) and `out` is scratch.
  /// With `grow` null the keep set is final; rules are emitted for real
  /// and kept/EDB references are recorded in needed_.
  void Walk(MagicProgram* out, std::set<std::string>* grow) {
    needed_.clear();
    std::set<std::pair<std::string, std::string>> seen;
    std::deque<std::pair<std::string, std::string>> work;
    auto enqueue = [&](const std::string& p, const std::string& ad) {
      if (seen.emplace(p, ad).second) work.emplace_back(p, ad);
    };
    enqueue(goal_.pred, goal_ad_);
    while (!work.empty()) {
      auto [pred, ad] = work.front();
      work.pop_front();
      out->magic_preds.push_back(MagicName(pred, ad));
      auto rules_it = rules_of_.find(pred);
      if (rules_it != rules_of_.end()) {
        for (const Rule* rule : rules_it->second) {
          if (rule->head.terms.size() != ad.size()) continue;
          AdornRule(*rule, pred, ad, out, grow, enqueue);
        }
      }
      // Fact-copy rule: the predicate's base facts of the goal arity flow
      // into the adorned extent (the original rules are gone, so the
      // original name is pure EDB here unless the predicate is also kept —
      // in which case the copy still only narrows to the demanded subset).
      auto facts_it = program_.facts().find(pred);
      if (facts_it != program_.facts().end() &&
          facts_it->second.CountOfArity(ad.size()) > 0) {
        Rule copy;
        copy.head.pred = AdornedName(pred, ad);
        Atom guard;
        guard.pred = MagicName(pred, ad);
        Atom source;
        source.pred = pred;
        for (size_t i = 0; i < ad.size(); ++i) {
          Term v = Term::Var(static_cast<int>(i));
          copy.head.terms.push_back(v);
          source.terms.push_back(v);
          if (ad[i] == 'b') guard.terms.push_back(v);
        }
        copy.body.push_back(Literal::Positive(std::move(guard)));
        copy.body.push_back(Literal::Positive(std::move(source)));
        out->program.AddRule(std::move(copy));
        ++out->adorned_rules;
      }
    }
  }

  template <typename EnqueueFn>
  void AdornRule(const Rule& rule, const std::string& pred,
                 const std::string& ad, MagicProgram* out,
                 std::set<std::string>* grow, EnqueueFn&& enqueue) {
    std::vector<bool> bound(static_cast<size_t>(MaxVarOf(rule) + 1), false);
    auto term_bound = [&](const Term& t) {
      return !t.is_var() || bound[t.var];
    };
    auto atom_vars_bound = [&](const Atom& atom) {
      for (const Term& t : atom.terms) {
        if (!term_bound(t)) return false;
      }
      return true;
    };

    Rule adorned;
    adorned.head.pred = AdornedName(pred, ad);
    adorned.head.terms = rule.head.terms;
    Atom guard;
    guard.pred = MagicName(pred, ad);
    for (size_t i = 0; i < ad.size(); ++i) {
      if (ad[i] != 'b') continue;
      guard.terms.push_back(rule.head.terms[i]);
      if (rule.head.terms[i].is_var()) bound[rule.head.terms[i].var] = true;
    }
    Literal guard_lit = Literal::Positive(std::move(guard));
    adorned.body.push_back(guard_lit);
    // The literals a magic rule emitted mid-body may reuse: the guard plus
    // every already-passed literal whose variables are fully bound (atoms
    // always are, once passed). Filters excluded here only widen demand.
    std::vector<Literal> prefix{guard_lit};

    for (const Literal& lit : rule.body) {
      switch (lit.kind) {
        case Literal::Kind::kPositive: {
          const std::string& q = lit.atom.pred;
          const bool chase = rules_of_.count(q) > 0 && keep_.count(q) == 0;
          if (chase) {
            std::string a2;
            bool any_b = false;
            for (const Term& t : lit.atom.terms) {
              bool b = term_bound(t);
              a2 += b ? 'b' : 'f';
              any_b |= b;
            }
            if (!any_b) {
              // All-free demand: the predicate must be evaluated in full.
              // Dry walks record it for the keep fixpoint; the final walk
              // never reaches here (the fixpoint has converged).
              if (grow) grow->insert(q);
              needed_.insert(q);
              adorned.body.push_back(lit);
            } else {
              Rule magic;
              magic.head.pred = MagicName(q, a2);
              for (size_t i = 0; i < lit.atom.terms.size(); ++i) {
                if (a2[i] == 'b') magic.head.terms.push_back(lit.atom.terms[i]);
              }
              // Skip the tautology m(X) :- m(X) that a recursive atom
              // guarded by its own adornment produces.
              bool tautology = prefix.size() == 1 &&
                               SameAtom(magic.head, prefix.front().atom);
              if (!tautology) {
                magic.body = prefix;
                out->program.AddRule(std::move(magic));
                ++out->magic_rules;
              }
              enqueue(q, a2);
              Literal renamed = lit;
              renamed.atom.pred = AdornedName(q, a2);
              adorned.body.push_back(std::move(renamed));
            }
          } else {
            if (rules_of_.count(q)) needed_.insert(q);
            adorned.body.push_back(lit);
          }
          prefix.push_back(adorned.body.back());
          for (const Term& t : lit.atom.terms) {
            if (t.is_var()) bound[t.var] = true;
          }
          break;
        }
        case Literal::Kind::kNegative: {
          if (rules_of_.count(lit.atom.pred)) needed_.insert(lit.atom.pred);
          adorned.body.push_back(lit);
          if (atom_vars_bound(lit.atom)) prefix.push_back(lit);
          break;
        }
        case Literal::Kind::kCompare: {
          adorned.body.push_back(lit);
          if (term_bound(lit.lhs) && term_bound(lit.rhs)) {
            prefix.push_back(lit);
          }
          break;
        }
        case Literal::Kind::kAssign: {
          adorned.body.push_back(lit);
          if (term_bound(lit.lhs) && term_bound(lit.rhs)) {
            prefix.push_back(lit);
            bound[lit.target] = true;
          }
          break;
        }
        case Literal::Kind::kRange: {
          adorned.body.push_back(lit);
          if (term_bound(lit.atom.terms[0]) &&
              term_bound(lit.atom.terms[1]) &&
              term_bound(lit.atom.terms[2])) {
            prefix.push_back(lit);
            const Term& x = lit.atom.terms[3];
            if (x.is_var()) bound[x.var] = true;
          }
          break;
        }
      }
    }
    out->program.AddRule(std::move(adorned));
    ++out->adorned_rules;
  }

  const Program& program_;
  const DemandGoal& goal_;
  std::string goal_ad_;
  std::map<std::string, std::vector<const Rule*>> rules_of_;
  std::set<std::string> keep_;
  std::set<std::string> needed_;
};

}  // namespace

std::string AdornedName(const std::string& pred, const std::string& adornment) {
  return pred + "@" + adornment;
}

std::string MagicName(const std::string& pred, const std::string& adornment) {
  return "m@" + pred + "@" + adornment;
}

MagicProgram MagicTransform(const Program& program, const DemandGoal& goal) {
  if (program.HasAggregates()) {
    // Aggregate rules are demand-opaque: a group's result folds over its
    // WHOLE contribution bucket, so restricting the body to the demanded
    // bindings would fold partial buckets into wrong values (and a magic
    // guard atom on an aggregate rule would shrink the bucket the same
    // way). Degenerate to the identity — callers evaluate the original
    // program in full and apply the goal filter afterwards, which is the
    // documented fallback for every untransformable goal.
    MagicProgram out;
    out.goal_pred = goal.pred;
    out.transformed = false;
    return out;
  }
  return Transformer(program, goal).Run();
}

Relation FilterByPattern(const Relation& extent,
                         const std::vector<std::optional<Value>>& pattern) {
  Relation out;
  extent.ForEachOfArity(pattern.size(), [&](const TupleRef& row) {
    for (size_t i = 0; i < pattern.size(); ++i) {
      if (pattern[i].has_value() && !(row[i] == *pattern[i])) return;
    }
    out.Insert(row);
  });
  return out;
}

}  // namespace datalog
}  // namespace rel
