// Generalized hash indexes for the Datalog evaluator.
//
// A HashIndex maps a fixed set of key columns of one ColumnArena (the
// column-major storage behind one arity of a Relation) to the row indices
// carrying those key values — no tuple copies; probes hand out TupleRef row
// views. The evaluator probes it instead of scanning the whole extent
// whenever a body literal has at least one column bound by the enclosing
// join prefix.
//
// An IndexCache memoizes two kinds of derived access structures per
// predicate so they are built at most once per fixpoint round and shared
// across rules:
//   * hash indexes keyed by (predicate, arity, bound-position set), and
//   * column-permuted sorted copies (joins::SortedColumns) keyed by
//     (predicate, arity, column order) — the triejoin inputs, previously
//     rebuilt on every LeapfrogJoin call.
// Both invalidate on the arena's version counter, which advances on every
// mutation (growth between fixpoint rounds, but also erase+reinsert cycles
// a size check would miss).
//
// Thread safety: the cache may be shared by concurrent evaluation tasks.
// Entry lookup/creation happens under the cache mutex; each entry then
// carries its own build-once latch, so concurrent requesters of the same
// (pred, arity, bound-set) index serialize on that entry — one builds, the
// rest wait and reuse — while builds of *different* indexes proceed in
// parallel. Probing the returned reference is lock-free; this is sound
// because relations only mutate at evaluation round barriers (the
// single-writer discipline in src/datalog/eval.cc), so an index can never
// be rebuilt while probes of it are in flight.

#ifndef REL_DATALOG_INDEX_H_
#define REL_DATALOG_INDEX_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "base/flat_index.h"
#include "data/relation.h"
#include "joins/leapfrog.h"

namespace rel {
namespace datalog {

/// A hash index over one column arena for a fixed set of key positions.
class HashIndex {
 public:
  HashIndex() = default;

  /// Builds over `arena` keyed on `key_positions`. `arena` is not owned; it
  /// must outlive the index and keep its rows stable while the index is in
  /// use (the cache rebuilds whenever the arena's version moves).
  void Build(const ColumnArena* arena, std::vector<size_t> key_positions);
  /// Extends a built index over rows the arena gained since Build/Append —
  /// callers must have proven the growth was append-only (no erase touched
  /// the rows already indexed; see IndexCache::Get for the version
  /// arithmetic that certifies this). Same key positions, same arena id.
  void Append(const ColumnArena* arena);
  /// Resets to the unbuilt state (used when the indexed arity vanishes).
  void Clear();

  bool built() const { return arena_ != nullptr; }
  const ColumnArena* arena() const { return arena_; }
  uint64_t built_id() const { return built_id_; }
  uint64_t built_version() const { return built_version_; }
  size_t built_size() const { return built_size_; }
  const std::vector<size_t>& key_positions() const { return keys_; }

  /// Invokes fn(TupleRef) for every row whose key columns equal `key`; `key`
  /// is ordered like the key_positions passed to Build. Storage is a shared
  /// FlatHashIndex (base/flat_index.h); key columns are verified here.
  template <typename Fn>
  void Probe(const std::vector<Value>& key, Fn&& fn) const {
    if (!arena_) return;
    entries_.Probe(KeyHash(key), [&](uint32_t row) {
      for (size_t k = 0; k < keys_.size(); ++k) {
        if (arena_->At(row, keys_[k]) != key[k]) return;
      }
      fn(arena_->Row(row));
    });
  }

 private:
  size_t KeyHash(const std::vector<Value>& key) const;
  size_t RowKeyHash(size_t row) const;

  const ColumnArena* arena_ = nullptr;
  uint64_t built_id_ = 0;
  uint64_t built_version_ = 0;
  size_t built_size_ = 0;
  std::vector<size_t> keys_;
  FlatHashIndex entries_;
};

/// Cache of derived access structures, rebuilt lazily when the backing
/// arena's version has moved (relations only change between fixpoint
/// rounds, so entries live for at least a whole round). Safe to share
/// across evaluation tasks; see the threading notes at the top of the file.
class IndexCache {
 public:
  /// Returns the (built) index over `rel`'s tuples of `arity` keyed on
  /// `key_positions`, building or rebuilding it first when needed.
  /// Increments *build_counter on every full (re)build when non-null (the
  /// counter is incremented under the entry latch).
  ///
  /// Incremental fast path: when the arena is the same storage the entry
  /// was built over and has only *grown by appends* since, the stale index
  /// is extended instead of rebuilt — O(new) instead of O(total). The arena
  /// version counter advances exactly once per effective insert or erase
  /// (data/relation.cc), so `version_delta == size_delta` with a grown size
  /// certifies that every version tick was an insert — append-only growth.
  /// Such extensions increment *append_counter (when non-null) rather than
  /// build_counter, keeping the documented cross-config equality of
  /// index_builds intact for evaluations that never take the fast path.
  const HashIndex& Get(const std::string& pred, const Relation& rel,
                       size_t arity, const std::vector<size_t>& key_positions,
                       uint64_t* build_counter,
                       uint64_t* append_counter = nullptr);

  /// Returns `rel`'s tuples of `arity` with columns permuted into
  /// `col_order` (output column k = stored column col_order[k]) and rows
  /// sorted lexicographically — the Leapfrog Triejoin input format.
  /// Built/rebuilt on demand like Get; increments *build_counter on builds.
  const joins::SortedColumns& GetSorted(const std::string& pred,
                                        const Relation& rel, size_t arity,
                                        const std::vector<size_t>& col_order,
                                        uint64_t* build_counter);

 private:
  using Key = std::tuple<std::string, size_t, std::vector<size_t>>;

  /// Map nodes are stable, so entry addresses survive later insertions and
  /// the per-entry latch can be held after the map mutex is released.
  struct IndexEntry {
    std::mutex latch;
    HashIndex index;
  };

  struct SortedEntry {
    std::mutex latch;
    uint64_t built_id = 0;
    uint64_t built_version = 0;
    bool built = false;
    joins::SortedColumns data;
  };

  std::mutex mu_;  // guards the two maps' structure only
  std::map<Key, IndexEntry> cache_;
  std::map<Key, SortedEntry> sorted_cache_;
};

}  // namespace datalog
}  // namespace rel

#endif  // REL_DATALOG_INDEX_H_
