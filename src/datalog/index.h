// Generalized hash indexes for the Datalog evaluator.
//
// A HashIndex maps a fixed set of key columns of one tuple vector to the
// rows carrying those key values; the evaluator probes it instead of
// scanning the whole extent whenever a body literal has at least one column
// bound by the enclosing join prefix. An IndexCache memoizes indexes per
// (predicate, arity, bound-position set) so they are built at most once per
// fixpoint round and shared across rules.

#ifndef REL_DATALOG_INDEX_H_
#define REL_DATALOG_INDEX_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "data/relation.h"

namespace rel {
namespace datalog {

/// A hash index over one tuple vector for a fixed set of key positions.
class HashIndex {
 public:
  HashIndex() = default;

  /// Builds over `rows` keyed on `key_positions`. `rows` is not owned; it
  /// must outlive the index and keep its first built_size() elements stable
  /// while the index is in use (the cache rebuilds on growth).
  void Build(const std::vector<Tuple>* rows, std::vector<size_t> key_positions);

  bool built() const { return rows_ != nullptr; }
  size_t built_size() const { return built_size_; }
  const std::vector<size_t>& key_positions() const { return keys_; }

  /// Invokes fn(row) for every row whose key columns equal `key`; `key` is
  /// ordered like the key_positions passed to Build.
  ///
  /// Storage is a flat (hash, row) array sorted by hash — binary search plus
  /// a contiguous run beats a node-based multimap on probe-heavy workloads.
  template <typename Fn>
  void Probe(const std::vector<Value>& key, Fn&& fn) const {
    size_t h = KeyHash(key);
    auto lo = std::lower_bound(
        entries_.begin(), entries_.end(), h,
        [](const Entry& e, size_t hash) { return e.hash < hash; });
    for (; lo != entries_.end() && lo->hash == h; ++lo) {
      const Tuple& row = (*rows_)[lo->row];
      bool match = true;
      for (size_t k = 0; k < keys_.size() && match; ++k) {
        match = row[keys_[k]] == key[k];
      }
      if (match) fn(row);
    }
  }

 private:
  struct Entry {
    size_t hash;
    uint32_t row;
  };

  size_t KeyHash(const std::vector<Value>& key) const;
  size_t RowHash(const Tuple& row) const;

  const std::vector<Tuple>* rows_ = nullptr;
  size_t built_size_ = 0;
  std::vector<size_t> keys_;
  std::vector<Entry> entries_;
};

/// Cache of hash indexes keyed by (predicate, arity, bound-position set).
/// Indexes are built lazily on first probe and rebuilt when the indexed
/// extent has grown. Relations only grow during fixpoint evaluation, and the
/// evaluator only merges deltas between rounds, so a size comparison is a
/// sufficient invalidation test.
class IndexCache {
 public:
  /// Returns the (built) index over `rel`'s tuples of `arity` keyed on
  /// `key_positions`, building or rebuilding it first when needed.
  /// Increments *build_counter on every (re)build when non-null.
  const HashIndex& Get(const std::string& pred, const Relation& rel,
                       size_t arity, const std::vector<size_t>& key_positions,
                       uint64_t* build_counter);

 private:
  using Key = std::tuple<std::string, size_t, std::vector<size_t>>;
  std::map<Key, HashIndex> cache_;
};

}  // namespace datalog
}  // namespace rel

#endif  // REL_DATALOG_INDEX_H_
