#include "datalog/eval.h"

#include <algorithm>
#include <functional>
#include <optional>
#include <set>
#include <unordered_map>

#include "base/error.h"
#include "base/hash.h"

namespace rel {
namespace datalog {

namespace {

// --- stratification ----------------------------------------------------------

/// Assigns each predicate a stratum such that positive dependencies stay
/// within or below, and negative dependencies come from strictly below.
/// Classic iterate-to-fixpoint algorithm; throws kType on negative cycles.
std::map<std::string, int> Stratify(const Program& program) {
  std::map<std::string, int> stratum;
  for (const std::string& pred : program.Predicates()) stratum[pred] = 0;
  size_t n = stratum.size();
  bool changed = true;
  size_t rounds = 0;
  while (changed) {
    changed = false;
    if (++rounds > n + 1) {
      throw RelError(ErrorKind::kType,
                     "datalog program is not stratifiable (negation in a "
                     "recursive cycle)");
    }
    for (const Rule& rule : program.rules()) {
      int& head = stratum[rule.head.pred];
      for (const Literal& lit : rule.body) {
        if (lit.kind == Literal::Kind::kPositive) {
          if (stratum[lit.atom.pred] > head) {
            head = stratum[lit.atom.pred];
            changed = true;
          }
        } else if (lit.kind == Literal::Kind::kNegative) {
          if (stratum[lit.atom.pred] + 1 > head) {
            head = stratum[lit.atom.pred] + 1;
            changed = true;
          }
        }
      }
    }
  }
  return stratum;
}

// --- join machinery -----------------------------------------------------------

/// A hash index over one relation for a fixed set of key positions.
class HashIndex {
 public:
  HashIndex(const std::vector<Tuple>& rows, const std::vector<size_t>& keys)
      : rows_(rows), keys_(keys) {
    buckets_.reserve(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      buckets_.emplace(KeyHash(rows[i]), i);
    }
  }

  template <typename Fn>
  void Probe(const Tuple& probe_keys, Fn&& fn) const {
    size_t h = ProbeHash(probe_keys);
    auto [lo, hi] = buckets_.equal_range(h);
    for (auto it = lo; it != hi; ++it) {
      const Tuple& row = rows_[it->second];
      bool match = true;
      for (size_t k = 0; k < keys_.size(); ++k) {
        if (row[keys_[k]] != probe_keys[k]) {
          match = false;
          break;
        }
      }
      if (match) fn(row);
    }
  }

 private:
  size_t KeyHash(const Tuple& row) const {
    size_t h = 0x51ed;
    for (size_t k : keys_) h = HashCombine(h, row[k].Hash());
    return h;
  }
  size_t ProbeHash(const Tuple& keys) const {
    size_t h = 0x51ed;
    for (size_t i = 0; i < keys.arity(); ++i) {
      h = HashCombine(h, keys[i].Hash());
    }
    return h;
  }

  const std::vector<Tuple>& rows_;
  std::vector<size_t> keys_;
  std::unordered_multimap<size_t, size_t> buckets_;
};

std::optional<Value> EvalArith(ArithOp op, const Value& a, const Value& b) {
  auto both_int = a.is_int() && b.is_int();
  if (!a.is_number() || !b.is_number()) return std::nullopt;
  switch (op) {
    case ArithOp::kAdd:
      return both_int ? Value::Int(a.AsInt() + b.AsInt())
                      : Value::Float(a.AsDouble() + b.AsDouble());
    case ArithOp::kSub:
      return both_int ? Value::Int(a.AsInt() - b.AsInt())
                      : Value::Float(a.AsDouble() - b.AsDouble());
    case ArithOp::kMul:
      return both_int ? Value::Int(a.AsInt() * b.AsInt())
                      : Value::Float(a.AsDouble() * b.AsDouble());
    case ArithOp::kDiv:
      if (b.AsDouble() == 0) return std::nullopt;
      if (both_int && a.AsInt() % b.AsInt() == 0) {
        return Value::Int(a.AsInt() / b.AsInt());
      }
      return Value::Float(a.AsDouble() / b.AsDouble());
    case ArithOp::kMod:
      if (!both_int || b.AsInt() == 0) return std::nullopt;
      return Value::Int(a.AsInt() % b.AsInt());
    case ArithOp::kMin:
      return a.NumericCompare(b) == Value::Ordering::kGreater ? b : a;
    case ArithOp::kMax:
      return a.NumericCompare(b) == Value::Ordering::kLess ? b : a;
  }
  return std::nullopt;
}

bool EvalCompare(CmpOp op, const Value& a, const Value& b) {
  Value::Ordering o = a.NumericCompare(b);
  switch (op) {
    case CmpOp::kEq: return o == Value::Ordering::kEqual;
    case CmpOp::kNeq: return o != Value::Ordering::kEqual &&
                             o != Value::Ordering::kUnordered;
    case CmpOp::kLt: return o == Value::Ordering::kLess;
    case CmpOp::kLe: return o == Value::Ordering::kLess ||
                            o == Value::Ordering::kEqual;
    case CmpOp::kGt: return o == Value::Ordering::kGreater;
    case CmpOp::kGe: return o == Value::Ordering::kGreater ||
                            o == Value::Ordering::kEqual;
  }
  return false;
}

/// Mutable per-rule binding vector (variables are dense ids).
using Bindings = std::vector<std::optional<Value>>;

int MaxVar(const Rule& rule) {
  int max_var = -1;
  auto scan_atom = [&max_var](const Atom& atom) {
    for (const Term& t : atom.terms) {
      if (t.is_var()) max_var = std::max(max_var, t.var);
    }
  };
  scan_atom(rule.head);
  for (const Literal& lit : rule.body) {
    scan_atom(lit.atom);
    if (lit.lhs.is_var()) max_var = std::max(max_var, lit.lhs.var);
    if (lit.rhs.is_var()) max_var = std::max(max_var, lit.rhs.var);
    max_var = std::max(max_var, lit.target);
  }
  return max_var;
}

/// The evaluator state: predicate extents plus per-iteration deltas.
struct State {
  std::map<std::string, Relation> full;
  std::map<std::string, Relation> delta;

  const Relation& Full(const std::string& pred) const {
    static const Relation* empty = new Relation();
    auto it = full.find(pred);
    return it == full.end() ? *empty : it->second;
  }
};

/// Evaluates one rule; `delta_index`, when >= 0, forces that positive-atom
/// occurrence to range over the delta relation (semi-naive evaluation).
void EvalRuleOnce(const Rule& rule, const State& state, int delta_index,
                  Relation* out, EvalStats* stats) {
  Bindings bindings(static_cast<size_t>(MaxVar(rule) + 1));

  // Recursive nested-loop over body literals with per-literal hash probes.
  std::function<void(size_t)> step = [&](size_t li) {
    if (li == rule.body.size()) {
      Tuple head;
      for (const Term& t : rule.head.terms) {
        if (t.is_var()) {
          if (!bindings[t.var]) {
            throw RelError(ErrorKind::kSafety,
                           "head variable unbound in rule for '" +
                               rule.head.pred + "'");
          }
          head.Append(*bindings[t.var]);
        } else {
          head.Append(t.constant);
        }
      }
      if (stats) ++stats->tuples_derived;
      out->Insert(std::move(head));
      return;
    }
    const Literal& lit = rule.body[li];
    auto value_of = [&](const Term& t) -> std::optional<Value> {
      if (!t.is_var()) return t.constant;
      return bindings[t.var];
    };
    switch (lit.kind) {
      case Literal::Kind::kPositive: {
        bool use_delta = static_cast<int>(li) == delta_index;
        static const std::vector<Tuple>* empty_rows = new std::vector<Tuple>();
        const std::vector<Tuple>* rows = empty_rows;
        if (use_delta) {
          auto it = state.delta.find(lit.atom.pred);
          if (it != state.delta.end()) {
            rows = &it->second.TuplesOfArity(lit.atom.terms.size());
          }
        } else {
          rows = &state.Full(lit.atom.pred)
                      .TuplesOfArity(lit.atom.terms.size());
        }
        for (const Tuple& row : *rows) {
          bool ok = true;
          std::vector<int> newly_bound;
          for (size_t i = 0; i < lit.atom.terms.size() && ok; ++i) {
            const Term& t = lit.atom.terms[i];
            if (!t.is_var()) {
              ok = row[i] == t.constant;
            } else if (bindings[t.var]) {
              ok = row[i] == *bindings[t.var];
            } else {
              bindings[t.var] = row[i];
              newly_bound.push_back(t.var);
            }
          }
          if (ok) step(li + 1);
          for (int v : newly_bound) bindings[v].reset();
        }
        return;
      }
      case Literal::Kind::kNegative: {
        Tuple probe;
        for (const Term& t : lit.atom.terms) {
          std::optional<Value> v = value_of(t);
          if (!v) {
            throw RelError(ErrorKind::kSafety,
                           "variable in negated atom of rule for '" +
                               rule.head.pred + "' is unbound");
          }
          probe.Append(*v);
        }
        if (!state.Full(lit.atom.pred).Contains(probe)) step(li + 1);
        return;
      }
      case Literal::Kind::kCompare: {
        std::optional<Value> a = value_of(lit.lhs);
        std::optional<Value> b = value_of(lit.rhs);
        if (!a || !b) {
          // `V = c` with V unbound acts as a binding.
          if (lit.cmp_op == CmpOp::kEq && lit.lhs.is_var() && !a && b) {
            bindings[lit.lhs.var] = *b;
            step(li + 1);
            bindings[lit.lhs.var].reset();
            return;
          }
          throw RelError(ErrorKind::kSafety,
                         "comparison over unbound variables in rule for '" +
                             rule.head.pred + "'");
        }
        if (EvalCompare(lit.cmp_op, *a, *b)) step(li + 1);
        return;
      }
      case Literal::Kind::kAssign: {
        std::optional<Value> a = value_of(lit.lhs);
        std::optional<Value> b = value_of(lit.rhs);
        if (!a || !b) {
          throw RelError(ErrorKind::kSafety,
                         "assignment over unbound variables in rule for '" +
                             rule.head.pred + "'");
        }
        std::optional<Value> r = EvalArith(lit.arith_op, *a, *b);
        if (!r) return;
        if (bindings[lit.target]) {
          if (*bindings[lit.target] == *r) step(li + 1);
          return;
        }
        bindings[lit.target] = *r;
        step(li + 1);
        bindings[lit.target].reset();
        return;
      }
    }
  };
  step(0);
}

}  // namespace

std::map<std::string, Relation> Evaluate(const Program& program,
                                         Strategy strategy, EvalStats* stats) {
  EvalStats local;
  EvalStats* s = stats ? stats : &local;
  std::map<std::string, int> stratum = Stratify(program);
  int max_stratum = 0;
  for (const auto& [pred, st] : stratum) {
    (void)pred;
    max_stratum = std::max(max_stratum, st);
  }
  s->strata = max_stratum + 1;

  State state;
  state.full = program.facts();

  for (int st = 0; st <= max_stratum; ++st) {
    std::vector<const Rule*> rules;
    for (const Rule& rule : program.rules()) {
      if (stratum[rule.head.pred] == st) rules.push_back(&rule);
    }
    if (rules.empty()) continue;

    // Initial round: evaluate every rule fully.
    std::map<std::string, Relation> added;
    for (const Rule* rule : rules) {
      Relation derived;
      EvalRuleOnce(*rule, state, /*delta_index=*/-1, &derived, s);
      for (const Tuple& t : derived.SortedTuples()) {
        if (!state.full[rule->head.pred].Contains(t)) {
          added[rule->head.pred].Insert(t);
        }
      }
    }
    for (auto& [pred, rel] : added) state.full[pred].InsertAll(rel);
    state.delta = std::move(added);
    ++s->iterations;

    // Iterate to fixpoint within the stratum.
    for (;;) {
      bool any_delta = false;
      for (const auto& [pred, rel] : state.delta) {
        (void)pred;
        if (!rel.empty()) any_delta = true;
      }
      if (!any_delta) break;
      ++s->iterations;
      std::map<std::string, Relation> next_added;
      for (const Rule* rule : rules) {
        if (strategy == Strategy::kSemiNaive) {
          // One pass per recursive-atom occurrence, with that occurrence
          // restricted to the delta.
          for (size_t li = 0; li < rule->body.size(); ++li) {
            const Literal& lit = rule->body[li];
            if (lit.kind != Literal::Kind::kPositive) continue;
            if (stratum[lit.atom.pred] != st) continue;
            Relation derived;
            EvalRuleOnce(*rule, state, static_cast<int>(li), &derived, s);
            for (const Tuple& t : derived.SortedTuples()) {
              if (!state.full[rule->head.pred].Contains(t)) {
                next_added[rule->head.pred].Insert(t);
              }
            }
          }
        } else {
          Relation derived;
          EvalRuleOnce(*rule, state, /*delta_index=*/-1, &derived, s);
          for (const Tuple& t : derived.SortedTuples()) {
            if (!state.full[rule->head.pred].Contains(t)) {
              next_added[rule->head.pred].Insert(t);
            }
          }
        }
      }
      for (auto& [pred, rel] : next_added) state.full[pred].InsertAll(rel);
      state.delta = std::move(next_added);
    }
    state.delta.clear();
  }
  return state.full;
}

Relation EvaluatePredicate(const Program& program, const std::string& pred,
                           Strategy strategy, EvalStats* stats) {
  std::map<std::string, Relation> all = Evaluate(program, strategy, stats);
  auto it = all.find(pred);
  return it == all.end() ? Relation() : it->second;
}

}  // namespace datalog
}  // namespace rel
